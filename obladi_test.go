package obladi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"obladi/internal/storage"
)

func openTest(t *testing.T, opt Options) *DB {
	t.Helper()
	if opt.BatchInterval == 0 {
		opt.BatchInterval = 300 * time.Microsecond
		opt.EagerBatches = true
	}
	if opt.KeySeed == nil {
		opt.KeySeed = []byte("obladi-test")
	}
	db, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := openTest(t, Options{})
	err := db.Update(func(tx *Txn) error {
		return tx.Write("greeting", []byte("hello"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	err = db.View(func(tx *Txn) error {
		v, found, err := tx.Read("greeting")
		if err != nil {
			return err
		}
		if !found {
			return errors.New("not found")
		}
		got = v
		return nil
	})
	if err != nil || string(got) != "hello" {
		t.Fatalf("view: %q %v", got, err)
	}
}

func TestUpdateRetriesOnConflict(t *testing.T) {
	db := openTest(t, Options{})
	must(t, db.Update(func(tx *Txn) error { return tx.Write("n", []byte{0}) }))
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- db.Update(func(tx *Txn) error {
				v, _, err := tx.Read("n")
				if err != nil {
					return err
				}
				return tx.Write("n", []byte{v[0] + 1})
			})
		}()
	}
	wg.Wait()
	close(errs)
	ok := 0
	for err := range errs {
		if err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no increment committed")
	}
	var final byte
	must(t, db.View(func(tx *Txn) error {
		v, _, err := tx.Read("n")
		if err != nil {
			return err
		}
		final = v[0]
		return nil
	}))
	if int(final) != ok {
		t.Fatalf("counter %d, committed %d (lost update)", final, ok)
	}
}

func TestReadManyAPI(t *testing.T) {
	db := openTest(t, Options{})
	must(t, db.Update(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			if err := tx.Write(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	}))
	must(t, db.View(func(tx *Txn) error {
		res, err := tx.ReadMany([]string{"k0", "k4", "nope"})
		if err != nil {
			return err
		}
		if !res[0].Found || string(res[0].Value) != "v0" {
			return fmt.Errorf("k0 = %+v", res[0])
		}
		if !res[1].Found || string(res[1].Value) != "v4" {
			return fmt.Errorf("k4 = %+v", res[1])
		}
		if res[2].Found {
			return errors.New("phantom key found")
		}
		return nil
	}))
}

func TestDeleteAPI(t *testing.T) {
	db := openTest(t, Options{})
	must(t, db.Update(func(tx *Txn) error { return tx.Write("k", []byte("v")) }))
	must(t, db.Update(func(tx *Txn) error { return tx.Delete("k") }))
	must(t, db.View(func(tx *Txn) error {
		_, found, err := tx.Read("k")
		if err != nil {
			return err
		}
		if found {
			return errors.New("deleted key visible")
		}
		return nil
	}))
}

func TestManualModeAPI(t *testing.T) {
	db, err := Open(Options{KeySeed: []byte("manual")}) // BatchInterval 0: manual
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx := db.Begin()
	must(t, tx.Write("m", []byte("v")))
	ch := tx.CommitAsync()
	// Drive one full epoch by hand: R read batches + the boundary.
	for i := 0; i < 5; i++ {
		must(t, db.Advance())
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 2 {
		t.Fatalf("epoch = %d after one manual epoch", db.Epoch())
	}
}

func TestRemoteStorage(t *testing.T) {
	backend := storage.NewMemBackend(1 << 12)
	srv, err := storage.NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	db := openTest(t, Options{
		MaxKeys:    512,
		RemoteAddr: srv.Addr(),
	})
	must(t, db.Update(func(tx *Txn) error { return tx.Write("remote", []byte("yes")) }))
	must(t, db.View(func(tx *Txn) error {
		v, found, err := tx.Read("remote")
		if err != nil || !found || string(v) != "yes" {
			return fmt.Errorf("remote read: %q %v %v", v, found, err)
		}
		return nil
	}))
}

func TestCrashRecoveryThroughAPI(t *testing.T) {
	backend := storage.NewMemBackend(1 << 12)
	srv, err := storage.NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	opt := Options{
		MaxKeys:       512,
		RemoteAddr:    srv.Addr(),
		KeySeed:       []byte("recovery-seed"),
		BatchInterval: 300 * time.Microsecond,
		EagerBatches:  true,
	}
	db1, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	must(t, db1.Update(func(tx *Txn) error { return tx.Write("persist", []byte("me")) }))
	// Simulated crash: sever the proxy's storage connections mid-flight and
	// let it fail-stop (nothing is flushed or committed on the way down),
	// then wait for its goroutines to quiesce so the "dead" instance cannot
	// keep racing the recovering one on the shared storage server. The
	// acknowledged epoch is already durable; everything after it is lost.
	storage.CloseAll(db1.backends)
	db1.Close()

	db2, err := Open(opt)
	if err != nil {
		t.Fatalf("reopen/recover: %v", err)
	}
	defer db2.Close()
	must(t, db2.View(func(tx *Txn) error {
		v, found, err := tx.Read("persist")
		if err != nil || !found || string(v) != "me" {
			return fmt.Errorf("after recovery: %q %v %v", v, found, err)
		}
		return nil
	}))
}

func TestSimulatedLatencyProfiles(t *testing.T) {
	for _, prof := range []string{"server", "dynamo"} {
		db := openTest(t, Options{MaxKeys: 256, SimulatedLatency: prof})
		must(t, db.Update(func(tx *Txn) error { return tx.Write("k", []byte("v")) }))
	}
	if _, err := Open(Options{SimulatedLatency: "nonsense"}); err == nil {
		t.Fatal("bogus latency profile accepted")
	}
}

func TestStatsExposed(t *testing.T) {
	db := openTest(t, Options{})
	must(t, db.Update(func(tx *Txn) error { return tx.Write("k", []byte("v")) }))
	st := db.Stats()
	if st.Epochs == 0 || st.Committed == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if db.Epoch() == 0 {
		t.Fatal("epoch not reported")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedDB drives a 4-shard store through the public API: writes and
// reads spanning every shard, within single transactions.
func TestShardedDB(t *testing.T) {
	db := openTest(t, Options{MaxKeys: 1024, Shards: 4})
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	must(t, db.Update(func(tx *Txn) error {
		for i := 0; i < 24; i++ {
			if err := tx.Write(fmt.Sprintf("sharded-%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	}))
	must(t, db.View(func(tx *Txn) error {
		var keys []string
		for i := 0; i < 24; i++ {
			keys = append(keys, fmt.Sprintf("sharded-%d", i))
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		for i, r := range res {
			if !r.Found || string(r.Value) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("key %d: %+v", i, r)
			}
		}
		return nil
	}))
	if st := db.Stats(); st.Shards != 4 {
		t.Fatalf("stats shards = %d", st.Shards)
	}
}

// TestShardedRemoteStorage runs one obladi-storage server per shard and a
// crash/recovery cycle across all four.
func TestShardedRemoteStorage(t *testing.T) {
	const shards = 4
	var addrs []string
	for i := 0; i < shards; i++ {
		backend := storage.NewMemBackend(1 << 12)
		srv, err := storage.NewServer(backend, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	opt := Options{
		MaxKeys:       512,
		Shards:        shards,
		RemoteAddr:    strings.Join(addrs, ","),
		KeySeed:       []byte("sharded-remote"),
		BatchInterval: 300 * time.Microsecond,
		EagerBatches:  true,
	}
	db1, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	must(t, db1.Update(func(tx *Txn) error {
		for i := 0; i < 12; i++ {
			if err := tx.Write(fmt.Sprintf("remote-%d", i), []byte("yes")); err != nil {
				return err
			}
		}
		return nil
	}))
	// Simulated crash: Close stops the epoch loop without flushing or
	// committing the in-flight epoch — a process death from storage's
	// vantage point (abandoning db1 without Close would leave its epoch
	// loop racing the recovered instance, which no real crash does).
	db1.Close()

	db2, err := Open(opt)
	if err != nil {
		t.Fatalf("sharded reopen/recover: %v", err)
	}
	defer db2.Close()
	must(t, db2.View(func(tx *Txn) error {
		var keys []string
		for i := 0; i < 12; i++ {
			keys = append(keys, fmt.Sprintf("remote-%d", i))
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		for _, r := range res {
			if !r.Found || string(r.Value) != "yes" {
				return fmt.Errorf("%s after recovery: %+v", r.Key, r)
			}
		}
		return nil
	}))
}

func TestShardedRemoteAddrMismatch(t *testing.T) {
	_, err := Open(Options{Shards: 4, RemoteAddr: "localhost:7000,localhost:7001"})
	if err == nil {
		t.Fatal("address/shard count mismatch accepted")
	}
}

// TestFullRestartWithPersistedStorage is the complete durability story: the
// proxy crashes AND the storage server restarts from its snapshot file; the
// recovered deployment serves all committed data.
func TestFullRestartWithPersistedStorage(t *testing.T) {
	dir := t.TempDir()
	snap := dir + "/cloud.snap"

	backend1 := storage.NewMemBackend(1 << 12)
	srv1, err := storage.NewServer(backend1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		MaxKeys:       512,
		RemoteAddr:    srv1.Addr(),
		KeySeed:       []byte("full-restart"),
		BatchInterval: 300 * time.Microsecond,
		EagerBatches:  true,
	}
	db1, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	must(t, db1.Update(func(tx *Txn) error { return tx.Write("durable", []byte("across-restarts")) }))
	// Proxy crashes; storage shuts down cleanly, snapshotting its state.
	srv1.Close()
	must(t, backend1.SaveTo(snap))

	backend2, err := storage.LoadMemBackend(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := storage.NewServer(backend2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	opt.RemoteAddr = srv2.Addr()
	db2, err := Open(opt)
	if err != nil {
		t.Fatalf("recovery against restarted storage: %v", err)
	}
	defer db2.Close()
	must(t, db2.View(func(tx *Txn) error {
		v, found, err := tx.Read("durable")
		if err != nil || !found || string(v) != "across-restarts" {
			return fmt.Errorf("after full restart: %q %v %v", v, found, err)
		}
		return nil
	}))
}
