// Package ringoram implements Ring ORAM (Ren et al., USENIX Security 2015)
// with the Obladi modifications of §6.3 of the paper: dummiless writes and
// stash-cacheability tagging.
//
// The package separates *planning* from *I/O*: PlanRead / PlanWrite /
// PlanEvict / PlanReshuffle mutate client-side metadata and return the exact
// physical slot reads and bucket writes the access requires, without touching
// storage. Callers (the sequential wrapper in this package, and the parallel
// epoch executor in internal/oramexec) perform the I/O and feed results back
// through the matching Complete* methods. This split is what lets Obladi
// pipeline an epoch's physical reads, defer all physical writes to the epoch
// boundary, and replay logged slot choices deterministically after a crash.
package ringoram

import (
	"errors"
	"fmt"
	"math/bits"
)

// Params configures a Ring ORAM instance.
type Params struct {
	// NumBlocks is N, the maximum number of distinct logical keys.
	NumBlocks int
	// Z is the number of real slots per bucket.
	Z int
	// S is the number of dummy slots per bucket.
	S int
	// A is the eviction rate: one evict-path per A logical accesses.
	A int
	// KeySize is the maximum logical key length in bytes.
	KeySize int
	// ValueSize is the maximum value length in bytes. Slots have a fixed
	// physical size derived from KeySize and ValueSize.
	ValueSize int
	// StashLimit bounds the stash; 0 selects a default derived from the
	// tree geometry. The durability layer pads the logged stash to this
	// size so its true size is never revealed.
	StashLimit int
	// DisableEncryption stores slots in plaintext. Only for measuring
	// crypto overhead (the "Parallel" vs "ParallelCrypto" series of
	// Figure 10a); never secure.
	DisableEncryption bool
	// DisableDummilessWrites makes logical writes perform a full physical
	// path read like canonical Ring ORAM, instead of Obladi's
	// direct-to-stash write (§6.3). Ablation knob.
	DisableDummilessWrites bool
	// TolerateCorrupt treats undecryptable target slots as absent keys
	// instead of errors. Required when running against the lossy "dummy"
	// measurement backend; never enable against real storage.
	TolerateCorrupt bool
	// Seed, when non-zero, makes all randomized choices (leaf remaps,
	// dummy-slot selection, permutations) deterministic. Tests only.
	Seed uint64
}

// Geometry is the derived tree shape.
type Geometry struct {
	Levels     int // L: depth of the tree; leaves sit at level L
	Leaves     int // 2^L
	NumBuckets int // 2^(L+1) - 1, heap-ordered, root = 0
	SlotsPer   int // Z + S physical slots per bucket
}

// Validation errors.
var (
	errBadParams = errors.New("ringoram: invalid parameters")
)

// Validate checks the parameters and fills in defaults.
func (p *Params) Validate() error {
	if p.NumBlocks <= 0 {
		return fmt.Errorf("%w: NumBlocks %d", errBadParams, p.NumBlocks)
	}
	if p.Z <= 0 || p.S <= 0 || p.A <= 0 {
		return fmt.Errorf("%w: Z=%d S=%d A=%d must be positive", errBadParams, p.Z, p.S, p.A)
	}
	if p.A > p.S {
		// A bucket must survive A accesses between evictions touching it;
		// with A > S the dummies of a bucket on every path (the root) can
		// be exhausted between two of its evictions faster than early
		// reshuffles amortize. Canonical Ring ORAM requires S >= A.
		return fmt.Errorf("%w: require A (%d) <= S (%d)", errBadParams, p.A, p.S)
	}
	if p.KeySize == 0 {
		p.KeySize = 64
	}
	if p.ValueSize == 0 {
		p.ValueSize = 256
	}
	if p.KeySize < 1 || p.KeySize > 1<<16-1 {
		return fmt.Errorf("%w: KeySize %d", errBadParams, p.KeySize)
	}
	if p.ValueSize < 1 {
		return fmt.Errorf("%w: ValueSize %d", errBadParams, p.ValueSize)
	}
	if p.StashLimit == 0 {
		g := p.Geometry()
		p.StashLimit = p.Z*(g.Levels+1) + 4*p.A + 64
	}
	return nil
}

// Geometry derives the tree shape: the smallest power-of-two leaf count whose
// leaf level alone can hold all N blocks (leaves * Z >= N), matching the
// paper's configurations (e.g. 100K objects at Z=100 -> 10-11 levels).
func (p Params) Geometry() Geometry {
	needLeaves := (p.NumBlocks + p.Z - 1) / p.Z
	l := bits.Len(uint(needLeaves - 1)) // ceil(log2(needLeaves))
	if needLeaves <= 1 {
		l = 0
	}
	if l < 1 {
		l = 1
	}
	leaves := 1 << l
	return Geometry{
		Levels:     l,
		Leaves:     leaves,
		NumBuckets: 2*leaves - 1,
		SlotsPer:   p.Z + p.S,
	}
}

// leafBucket maps a leaf index [0, Leaves) to its heap bucket index.
func (g Geometry) leafBucket(leaf int) int { return g.Leaves - 1 + leaf }

// pathBucket returns the heap index of the bucket at the given level
// (0 = root) on the path from the root to leaf.
func (g Geometry) pathBucket(leaf, level int) int {
	// The bucket at `level` is the ancestor of the leaf bucket obtained by
	// walking up (Levels - level) times.
	b := g.leafBucket(leaf)
	for i := g.Levels; i > level; i-- {
		b = (b - 1) / 2
	}
	return b
}

// path returns all bucket indices from root to leaf, root first.
func (g Geometry) path(leaf int) []int {
	out := make([]int, g.Levels+1)
	for lvl := 0; lvl <= g.Levels; lvl++ {
		out[lvl] = g.pathBucket(leaf, lvl)
	}
	return out
}

// evictLeaf returns the g-th eviction target leaf in Ring ORAM's
// deterministic reverse-lexicographic order: the bit-reversal of the
// eviction counter modulo the leaf count. This determinism is what makes
// crash recovery cheap (§8): the set of buckets written by any epoch is a
// pure function of the eviction counter.
func (g Geometry) evictLeaf(evictCount uint64) int {
	n := uint(evictCount) % uint(g.Leaves)
	return int(bits.Reverse(n) >> (bits.UintSize - g.Levels))
}
