package ringoram

import (
	"fmt"

	"obladi/internal/cryptoutil"
)

// Seq is a synchronous, sequential Ring ORAM: every logical operation's
// physical reads execute one at a time and evictions write back immediately.
// It is the canonical construction the paper benchmarks against (the
// "Sequential" series of Figure 10a) and the reference oracle for the
// parallel executor's tests.
type Seq struct {
	oram  *ORAM
	store Store
}

// NewSeq creates a sequential Ring ORAM over store, initializing the tree.
func NewSeq(store Store, key *cryptoutil.Key, p Params) (*Seq, error) {
	o, err := New(store, key, p)
	if err != nil {
		return nil, err
	}
	return &Seq{oram: o, store: store}, nil
}

// ORAM exposes the underlying client (for inspection in tests).
func (s *Seq) ORAM() *ORAM { return s.oram }

// Read returns the value of key, or found=false if the key was never
// written (or was deleted).
func (s *Seq) Read(key string) ([]byte, bool, error) {
	plan, due, err := s.oram.PlanRead(key)
	if err != nil {
		return nil, false, err
	}
	val, found, err := s.runAccess(plan)
	if err != nil {
		return nil, false, err
	}
	if err := s.maintain(due); err != nil {
		return nil, false, err
	}
	return val, found, nil
}

// Write stores value under key.
func (s *Seq) Write(key string, value []byte) error {
	return s.write(key, value, false)
}

// Delete removes key. The key keeps its position-map entry (removing it
// would leak the delete); subsequent reads observe found=false.
func (s *Seq) Delete(key string) error {
	return s.write(key, nil, true)
}

func (s *Seq) write(key string, value []byte, tombstone bool) error {
	plan, due, err := s.oram.PlanWrite(key, value, tombstone)
	if err != nil {
		return err
	}
	if plan != nil {
		if _, _, err := s.runAccess(plan); err != nil {
			return err
		}
	}
	return s.maintain(due)
}

// DummyRead issues a padding access (used by callers that must keep a fixed
// request rate).
func (s *Seq) DummyRead() error {
	plan, due, err := s.oram.PlanDummyRead()
	if err != nil {
		return err
	}
	if _, _, err := s.runAccess(plan); err != nil {
		return err
	}
	return s.maintain(due)
}

// runAccess performs the plan's physical reads sequentially and completes it.
func (s *Seq) runAccess(plan *AccessPlan) ([]byte, bool, error) {
	var data [][]byte
	if !plan.Cached() {
		data = make([][]byte, len(plan.Reads))
		for i, r := range plan.Reads {
			d, err := s.store.ReadSlot(r.Bucket, r.Slot)
			if err != nil {
				return nil, false, fmt.Errorf("ringoram: reading bucket %d slot %d: %w", r.Bucket, r.Slot, err)
			}
			data[i] = d
		}
	}
	return s.oram.CompleteAccess(plan, data)
}

// maintain runs due early reshuffles, then any due evictions, writing
// buckets back immediately.
func (s *Seq) maintain(reshuffle []int) error {
	for _, b := range reshuffle {
		plan, err := s.oram.PlanReshuffle(b)
		if err != nil {
			return err
		}
		if err := s.runEviction(plan); err != nil {
			return err
		}
	}
	for s.oram.EvictDue() {
		plan, err := s.oram.PlanEvict()
		if err != nil {
			return err
		}
		if err := s.runEviction(plan); err != nil {
			return err
		}
	}
	return nil
}

func (s *Seq) runEviction(plan *EvictPlan) error {
	data := make([][]byte, len(plan.Reads))
	for i, r := range plan.Reads {
		d, err := s.store.ReadSlot(r.Bucket, r.Slot)
		if err != nil {
			return fmt.Errorf("ringoram: eviction read bucket %d slot %d: %w", r.Bucket, r.Slot, err)
		}
		data[i] = d
	}
	writes, err := s.oram.CompleteEvict(plan, data)
	if err != nil {
		return err
	}
	for _, w := range writes {
		if err := s.store.WriteBucket(w.Bucket, w.Slots); err != nil {
			return fmt.Errorf("ringoram: eviction write bucket %d: %w", w.Bucket, err)
		}
	}
	return nil
}
