package ringoram

import "testing"

func TestValidateDefaults(t *testing.T) {
	p := Params{NumBlocks: 100, Z: 4, S: 6, A: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.KeySize != 64 || p.ValueSize != 256 {
		t.Fatalf("defaults not applied: KeySize=%d ValueSize=%d", p.KeySize, p.ValueSize)
	}
	if p.StashLimit <= 0 {
		t.Fatal("no default stash limit")
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Params{
		{NumBlocks: 0, Z: 1, S: 1, A: 1},
		{NumBlocks: 10, Z: 0, S: 1, A: 1},
		{NumBlocks: 10, Z: 1, S: 0, A: 1},
		{NumBlocks: 10, Z: 1, S: 1, A: 0},
		{NumBlocks: 10, Z: 1, S: 2, A: 3}, // A > S
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGeometryShape(t *testing.T) {
	cases := []struct {
		n, z           int
		levels, leaves int
	}{
		{100, 4, 5, 32}, // ceil(100/4)=25 -> 32 leaves
		{100_000, 100, 10, 1024},
		{10_000, 100, 7, 128},       // matches Table 11b: 10K objects, 7 levels
		{1_000_000, 100, 14, 16384}, // 1M objects, 14 levels
		{1, 4, 1, 2},
		{8, 4, 1, 2},
		{9, 4, 2, 4},
	}
	for _, c := range cases {
		g := Params{NumBlocks: c.n, Z: c.z, S: c.z, A: c.z}.Geometry()
		if g.Levels != c.levels || g.Leaves != c.leaves {
			t.Errorf("N=%d Z=%d: levels=%d leaves=%d, want %d/%d", c.n, c.z, g.Levels, g.Leaves, c.levels, c.leaves)
		}
		if g.NumBuckets != 2*g.Leaves-1 {
			t.Errorf("N=%d: buckets=%d leaves=%d", c.n, g.NumBuckets, g.Leaves)
		}
		if g.Leaves*c.z < c.n {
			t.Errorf("N=%d Z=%d: leaf capacity %d < N", c.n, c.z, g.Leaves*c.z)
		}
	}
}

func TestPathBucket(t *testing.T) {
	g := Params{NumBlocks: 32, Z: 4, S: 4, A: 4}.Geometry() // 3 levels, 8 leaves
	if g.Levels != 3 {
		t.Fatalf("levels = %d", g.Levels)
	}
	// Root is always bucket 0.
	for leaf := 0; leaf < g.Leaves; leaf++ {
		if b := g.pathBucket(leaf, 0); b != 0 {
			t.Fatalf("path(%d) level 0 = %d", leaf, b)
		}
		if b := g.pathBucket(leaf, g.Levels); b != g.leafBucket(leaf) {
			t.Fatalf("path(%d) leaf level = %d, want %d", leaf, b, g.leafBucket(leaf))
		}
	}
	// Consecutive levels are parent/child.
	for leaf := 0; leaf < g.Leaves; leaf++ {
		for lvl := 1; lvl <= g.Levels; lvl++ {
			child := g.pathBucket(leaf, lvl)
			parent := g.pathBucket(leaf, lvl-1)
			if (child-1)/2 != parent {
				t.Fatalf("leaf %d: level %d bucket %d not child of %d", leaf, lvl, child, parent)
			}
		}
	}
}

func TestPathRootFirst(t *testing.T) {
	g := Params{NumBlocks: 32, Z: 4, S: 4, A: 4}.Geometry()
	p := g.path(5)
	if len(p) != g.Levels+1 {
		t.Fatalf("path length %d", len(p))
	}
	if p[0] != 0 {
		t.Fatalf("path does not start at root: %v", p)
	}
	if p[len(p)-1] != g.leafBucket(5) {
		t.Fatalf("path does not end at leaf bucket: %v", p)
	}
}

func TestEvictLeafReverseLexicographic(t *testing.T) {
	g := Params{NumBlocks: 32, Z: 4, S: 4, A: 4}.Geometry() // 8 leaves
	// Bit-reversed order for 3 bits: 0,4,2,6,1,5,3,7 then repeats.
	want := []int{0, 4, 2, 6, 1, 5, 3, 7, 0, 4}
	for i, w := range want {
		if got := g.evictLeaf(uint64(i)); got != w {
			t.Fatalf("evictLeaf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestEvictLeafCoversAllLeaves(t *testing.T) {
	g := Params{NumBlocks: 1000, Z: 4, S: 4, A: 4}.Geometry()
	seen := make(map[int]bool)
	for i := 0; i < g.Leaves; i++ {
		seen[g.evictLeaf(uint64(i))] = true
	}
	if len(seen) != g.Leaves {
		t.Fatalf("one eviction cycle covered %d of %d leaves", len(seen), g.Leaves)
	}
}

func TestBucketLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3}
	for b, want := range cases {
		if got := bucketLevel(b); got != want {
			t.Fatalf("bucketLevel(%d) = %d, want %d", b, got, want)
		}
	}
}
