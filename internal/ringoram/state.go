package ringoram

import (
	"errors"
	"fmt"

	"obladi/internal/cryptoutil"
)

// BucketState is the serializable metadata of one bucket.
type BucketState struct {
	Perm     []int
	Addrs    []string
	Valid    []bool
	Count    int
	WriteVer uint64
}

// StashBlock is a serializable stash entry.
type StashBlock struct {
	Key       string
	Value     []byte
	Tombstone bool
	Leaf      int
	Cacheable bool
}

// State is a (full or delta) snapshot of the client metadata that the
// recovery unit logs at epoch boundaries (§8): the position map, the
// permutation/valid maps, the stash, and the access/eviction counters.
type State struct {
	Full        bool
	AccessCount uint64
	EvictCount  uint64
	Pos         map[string]int
	Buckets     map[int]BucketState
	Stash       []StashBlock
}

// Snapshot captures the current metadata. With full=false only entries
// changed since the last ClearDirty call are included (delta checkpointing,
// §8 "Optimizations"); the stash is always captured whole.
func (o *ORAM) Snapshot(full bool) (*State, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := &State{
		Full:        full,
		AccessCount: o.accessCount,
		EvictCount:  o.evictCount,
		Pos:         make(map[string]int),
		Buckets:     make(map[int]BucketState),
	}
	if full {
		for k, v := range o.pos {
			st.Pos[k] = v
		}
		for b := range o.meta {
			st.Buckets[b] = o.bucketState(b)
		}
	} else {
		for k := range o.dirtyKeys {
			if leaf, ok := o.pos[k]; ok {
				st.Pos[k] = leaf
			}
		}
		for b := range o.dirtyBuckets {
			st.Buckets[b] = o.bucketState(b)
		}
	}
	for _, e := range o.stash {
		if e.pending {
			return nil, errors.New("ringoram: snapshot with pending stash entries (mid-epoch snapshot)")
		}
		st.Stash = append(st.Stash, StashBlock{
			Key:       e.key,
			Value:     append([]byte(nil), e.value...),
			Tombstone: e.tombstone,
			Leaf:      e.leaf,
			Cacheable: e.cacheable,
		})
	}
	return st, nil
}

func (o *ORAM) bucketState(b int) BucketState {
	m := &o.meta[b]
	return BucketState{
		Perm:     append([]int(nil), m.perm...),
		Addrs:    append([]string(nil), m.addrs...),
		Valid:    append([]bool(nil), m.valid...),
		Count:    m.count,
		WriteVer: m.writeVer,
	}
}

// DirtyCounts reports how many position-map entries and buckets changed
// since the last ClearDirty. The durability layer uses this for padding
// decisions and the benchmarks for accounting.
func (o *ORAM) DirtyCounts() (keys, buckets int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.dirtyKeys), len(o.dirtyBuckets)
}

// ClearDirty resets delta tracking; call after a checkpoint is durable.
func (o *ORAM) ClearDirty() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.dirtyKeys = make(map[string]struct{})
	o.dirtyBuckets = make(map[int]struct{})
}

// NewFromState reconstructs a client from a full snapshot followed by zero
// or more delta snapshots, in order. No storage writes are performed: the
// shadow-paged tree on the server is reverted separately via RollbackTo.
func NewFromState(key *cryptoutil.Key, p Params, full *State, deltas ...*State) (*ORAM, error) {
	if full == nil || !full.Full {
		return nil, errors.New("ringoram: NewFromState requires a full snapshot")
	}
	o, err := newClient(key, p)
	if err != nil {
		return nil, err
	}
	if len(full.Buckets) != o.geo.NumBuckets {
		return nil, fmt.Errorf("ringoram: snapshot has %d buckets, tree has %d", len(full.Buckets), o.geo.NumBuckets)
	}
	apply := func(st *State) error {
		o.accessCount = st.AccessCount
		o.evictCount = st.EvictCount
		for k, leaf := range st.Pos {
			if leaf < 0 || leaf >= o.geo.Leaves {
				return fmt.Errorf("ringoram: snapshot leaf %d out of range", leaf)
			}
			o.pos[k] = leaf
		}
		for b, bs := range st.Buckets {
			if b < 0 || b >= o.geo.NumBuckets {
				return fmt.Errorf("ringoram: snapshot bucket %d out of range", b)
			}
			if len(bs.Perm) != o.geo.SlotsPer || len(bs.Valid) != o.geo.SlotsPer || len(bs.Addrs) != o.p.Z {
				return fmt.Errorf("ringoram: snapshot bucket %d has wrong shape", b)
			}
			o.meta[b] = bucketMeta{
				perm:     append([]int(nil), bs.Perm...),
				addrs:    append([]string(nil), bs.Addrs...),
				valid:    append([]bool(nil), bs.Valid...),
				count:    bs.Count,
				writeVer: bs.WriteVer,
			}
		}
		// The stash in each snapshot is complete: replace wholesale.
		o.stash = make(map[string]*stashEntry, len(st.Stash))
		for _, sb := range st.Stash {
			o.stash[sb.Key] = &stashEntry{
				key:       sb.Key,
				value:     append([]byte(nil), sb.Value...),
				tombstone: sb.Tombstone,
				leaf:      sb.Leaf,
				cacheable: sb.Cacheable,
			}
		}
		return nil
	}
	if err := apply(full); err != nil {
		return nil, err
	}
	for _, d := range deltas {
		if d.Full {
			return nil, errors.New("ringoram: full snapshot in delta position")
		}
		if err := apply(d); err != nil {
			return nil, err
		}
	}
	// Rebuild the location index from bucket metadata; stash membership
	// overrides (a block cannot be both resident and stashed).
	o.loc = make(map[string]location)
	for b := range o.meta {
		for r, k := range o.meta[b].addrs {
			if k == "" {
				continue
			}
			if _, inStash := o.stash[k]; inStash {
				return nil, fmt.Errorf("ringoram: snapshot places %q both in stash and bucket %d", k, b)
			}
			if prev, dup := o.loc[k]; dup {
				return nil, fmt.Errorf("ringoram: snapshot places %q in buckets %d and %d", k, prev.bucket, b)
			}
			o.loc[k] = location{bucket: b, pos: r}
		}
	}
	o.stashPeak = len(o.stash)
	return o, nil
}
