package ringoram

import (
	"errors"
	"fmt"
	"testing"

	"obladi/internal/cryptoutil"
)

// TestPaperParameters smoke-tests the paper's cloud configuration
// (Z=100, S=196, A=168) at a reduced object count.
func TestPaperParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{
		NumBlocks: 1000,
		Z:         100,
		S:         196,
		A:         168,
		KeySize:   24,
		ValueSize: 64,
		Seed:      13,
	}
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("paper")), p)
	if err != nil {
		t.Fatal(err)
	}
	geo := seq.ORAM().Geometry()
	if geo.SlotsPer != 296 {
		t.Fatalf("slots per bucket = %d, want 296", geo.SlotsPer)
	}
	oracle := map[string]string{}
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%d", i%150)
		v := fmt.Sprintf("v%d", i)
		must(t, seq.Write(k, []byte(v)))
		oracle[k] = v
	}
	for k, want := range oracle {
		v, found, err := seq.Read(k)
		if err != nil || !found || string(v) != want {
			t.Fatalf("%s = %q (%v, %v), want %q", k, v, found, err, want)
		}
	}
	if store.violation != nil {
		t.Fatal(store.violation)
	}
	checkPathInvariant(t, seq.ORAM())
	checkMetaConsistency(t, seq.ORAM())
}

func TestStashOverflowSurfaces(t *testing.T) {
	p := testParams(64)
	p.StashLimit = 2 // absurdly small: force the error path
	seq, _ := newTestSeq(t, p)
	var err error
	for i := 0; i < 16 && err == nil; i++ {
		err = seq.Write(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if !errors.Is(err, ErrStashOverflow) {
		t.Fatalf("expected stash overflow, got %v", err)
	}
}

func TestPathBuckets(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	o := seq.ORAM()
	geo := o.Geometry()
	for leaf := 0; leaf < geo.Leaves; leaf++ {
		path := o.PathBuckets(leaf)
		if len(path) != geo.Levels+1 {
			t.Fatalf("leaf %d: path length %d", leaf, len(path))
		}
		if path[0] != 0 {
			t.Fatalf("leaf %d: path does not start at root", leaf)
		}
	}
	if o.PathBuckets(-1) != nil || o.PathBuckets(geo.Leaves) != nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

func TestNextEvictPathDeterministic(t *testing.T) {
	p := testParams(64)
	seqA, _ := newTestSeq(t, p)
	p2 := p
	p2.Seed = 999 // different randomness must not change the evict schedule
	store := newMapStore()
	seqB, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("other")), p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a := seqA.ORAM().NextEvictPath()
		b := seqB.ORAM().NextEvictPath()
		if len(a) != len(b) {
			t.Fatal("path lengths differ")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("evict path %d diverges at %d: %v vs %v", i, j, a, b)
			}
		}
		// Advance both by one eviction.
		for _, s := range []*Seq{seqA, seqB} {
			plan, err := s.ORAM().PlanEvict()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.runEviction(plan); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEarlyReshuffleTriggers drives one bucket's slot budget to exhaustion
// and verifies the reshuffle fires and restores readability.
func TestEarlyReshuffleTriggers(t *testing.T) {
	p := testParams(64)
	p.S = 4
	p.A = 4
	p.Seed = 77
	seq, store := newTestSeq(t, p)
	// Hammer reads: every access consumes a root slot; S=4 forces frequent
	// root reshuffles between evictions.
	for i := 0; i < 200; i++ {
		must(t, seq.DummyRead())
	}
	if store.violation != nil {
		t.Fatal(store.violation)
	}
	// The bucket invariant holding for 200×(L+1) filler reads with S=4 is
	// only possible if early reshuffles ran.
}

func TestDeleteKeepsPositionMapEntry(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(8))
	must(t, seq.Write("a", []byte("1")))
	before := seq.ORAM().KeyCount()
	must(t, seq.Delete("a"))
	if seq.ORAM().KeyCount() != before {
		t.Fatal("delete changed the position map size (leaks deletions)")
	}
}

func TestCountersMonotonic(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	var lastA, lastE uint64
	for i := 0; i < 30; i++ {
		must(t, seq.Write(fmt.Sprintf("k%d", i%8), []byte("v")))
		a, e := seq.ORAM().Counters()
		if a < lastA || e < lastE {
			t.Fatalf("counters went backwards: %d/%d -> %d/%d", lastA, lastE, a, e)
		}
		lastA, lastE = a, e
	}
	if lastE == 0 {
		t.Fatal("no evictions over 30 writes with A=4")
	}
}
