package ringoram

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"obladi/internal/cryptoutil"
)

// mapStore is an in-memory Store that enforces the bucket invariant from the
// server's perspective: no slot may be read twice between writes of its
// bucket.
type mapStore struct {
	mu        sync.Mutex
	buckets   map[int][][]byte
	readSince map[int]map[int]bool
	violation error
	reads     int
	writes    int
}

func newMapStore() *mapStore {
	return &mapStore{
		buckets:   make(map[int][][]byte),
		readSince: make(map[int]map[int]bool),
	}
}

func (s *mapStore) ReadSlot(bucket, slot int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	slots, ok := s.buckets[bucket]
	if !ok || slot < 0 || slot >= len(slots) {
		return nil, fmt.Errorf("mapStore: no bucket %d slot %d", bucket, slot)
	}
	set := s.readSince[bucket]
	if set == nil {
		set = make(map[int]bool)
		s.readSince[bucket] = set
	}
	if set[slot] && s.violation == nil {
		s.violation = fmt.Errorf("bucket %d slot %d read twice between writes", bucket, slot)
	}
	set[slot] = true
	return slots[slot], nil
}

func (s *mapStore) WriteBucket(bucket int, slots [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	s.buckets[bucket] = slots
	delete(s.readSince, bucket)
	return nil
}

func testParams(n int) Params {
	return Params{
		NumBlocks: n,
		Z:         4,
		S:         6,
		A:         4,
		KeySize:   16,
		ValueSize: 32,
		Seed:      42,
	}
}

func newTestSeq(t *testing.T, p Params) (*Seq, *mapStore) {
	t.Helper()
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("test")), p)
	if err != nil {
		t.Fatal(err)
	}
	return seq, store
}

func TestSeqReadUnknownKey(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	v, found, err := seq.Read("nope")
	if err != nil {
		t.Fatal(err)
	}
	if found || v != nil {
		t.Fatalf("unknown key: %q %v", v, found)
	}
}

func TestSeqWriteRead(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	if err := seq.Write("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := seq.Read("k1")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "v1" {
		t.Fatalf("read %q %v", v, found)
	}
}

func TestSeqOverwrite(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	must(t, seq.Write("k", []byte("old")))
	must(t, seq.Write("k", []byte("new")))
	v, found, err := seq.Read("k")
	if err != nil || !found || string(v) != "new" {
		t.Fatalf("read %q %v %v", v, found, err)
	}
}

func TestSeqDelete(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	must(t, seq.Write("k", []byte("v")))
	must(t, seq.Delete("k"))
	_, found, err := seq.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("deleted key still found")
	}
	// Rewriting after delete works.
	must(t, seq.Write("k", []byte("back")))
	v, found, _ := seq.Read("k")
	if !found || string(v) != "back" {
		t.Fatalf("resurrected key: %q %v", v, found)
	}
}

func TestSeqManyKeysChurn(t *testing.T) {
	const n = 48
	p := testParams(64)
	seq, store := newTestSeq(t, p)
	oracle := make(map[string]string)
	for round := 0; round < 6; round++ {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%02d", i)
			v := fmt.Sprintf("val-%02d-%d", i, round)
			must(t, seq.Write(k, []byte(v)))
			oracle[k] = v
		}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%02d", i)
			v, found, err := seq.Read(k)
			if err != nil {
				t.Fatalf("round %d read %s: %v", round, k, err)
			}
			if !found || string(v) != oracle[k] {
				t.Fatalf("round %d: %s = %q (found=%v), want %q", round, k, v, found, oracle[k])
			}
		}
	}
	if store.violation != nil {
		t.Fatalf("bucket invariant: %v", store.violation)
	}
	if limit := seq.ORAM().Params().StashLimit; seq.ORAM().StashPeak() > limit {
		t.Fatalf("stash peak %d exceeded limit %d", seq.ORAM().StashPeak(), limit)
	}
}

func TestSeqEmptyAndLargeValues(t *testing.T) {
	p := testParams(16)
	seq, _ := newTestSeq(t, p)
	must(t, seq.Write("empty", nil))
	v, found, err := seq.Read("empty")
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty value: %q %v %v", v, found, err)
	}
	maxVal := bytes.Repeat([]byte{0xCC}, p.ValueSize)
	must(t, seq.Write("max", maxVal))
	v, found, _ = seq.Read("max")
	if !found || !bytes.Equal(v, maxVal) {
		t.Fatal("max-size value corrupted")
	}
	if err := seq.Write("big", make([]byte, p.ValueSize+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestSeqCapacity(t *testing.T) {
	p := testParams(8)
	seq, _ := newTestSeq(t, p)
	for i := 0; i < 8; i++ {
		must(t, seq.Write(fmt.Sprintf("k%d", i), []byte("v")))
	}
	err := seq.Write("overflow", []byte("v"))
	if err == nil {
		t.Fatal("write beyond NumBlocks accepted")
	}
	// Existing keys still writable.
	must(t, seq.Write("k0", []byte("v2")))
}

func TestSeqEvictionScheduleDeterministic(t *testing.T) {
	p := testParams(64)
	seq, _ := newTestSeq(t, p)
	for i := 0; i < 3*p.A; i++ {
		must(t, seq.Write(fmt.Sprintf("k%d", i%8), []byte("v")))
	}
	acc, ev := seq.ORAM().Counters()
	if acc != uint64(3*p.A) {
		t.Fatalf("access count %d", acc)
	}
	if ev != 3 {
		t.Fatalf("evictions %d, want 3 (A=%d)", ev, p.A)
	}
}

func TestSeqDummyRead(t *testing.T) {
	seq, store := newTestSeq(t, testParams(64))
	must(t, seq.Write("k", []byte("v")))
	before := store.reads
	must(t, seq.DummyRead())
	if store.reads == before {
		t.Fatal("dummy read issued no storage reads")
	}
	v, found, _ := seq.Read("k")
	if !found || string(v) != "v" {
		t.Fatalf("data disturbed by dummy read: %q %v", v, found)
	}
}

func TestSeqKeyTooLong(t *testing.T) {
	p := testParams(16)
	seq, _ := newTestSeq(t, p)
	longKey := string(bytes.Repeat([]byte("x"), p.KeySize+1))
	err := seq.Write(longKey, []byte("v"))
	if err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestSeqPlaintextMode(t *testing.T) {
	p := testParams(32)
	p.DisableEncryption = true
	store := newMapStore()
	seq, err := NewSeq(store, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	must(t, seq.Write("k", []byte("plain")))
	v, found, err := seq.Read("k")
	if err != nil || !found || string(v) != "plain" {
		t.Fatalf("plaintext mode: %q %v %v", v, found, err)
	}
}

func TestSeqNilKeyRejected(t *testing.T) {
	p := testParams(32)
	if _, err := NewSeq(newMapStore(), nil, p); err == nil {
		t.Fatal("encryption enabled with nil key accepted")
	}
}

func TestSeqNonDummilessWrites(t *testing.T) {
	p := testParams(32)
	p.DisableDummilessWrites = true
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("t")), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%d", i%5)
		must(t, seq.Write(k, []byte(fmt.Sprintf("v%d", i))))
	}
	for i := 15; i < 20; i++ {
		k := fmt.Sprintf("k%d", i%5)
		v, found, err := seq.Read(k)
		if err != nil || !found || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q %v %v", k, v, found, err)
		}
	}
	if store.violation != nil {
		t.Fatalf("bucket invariant: %v", store.violation)
	}
}

func TestSeqDummilessWritesSkipReads(t *testing.T) {
	// A dummiless write between evictions performs zero physical reads.
	p := testParams(64)
	p.A = 6
	seq, store := newTestSeq(t, p)
	before := store.reads
	must(t, seq.Write("w1", []byte("v")))
	if store.reads != before {
		t.Fatalf("dummiless write issued %d reads", store.reads-before)
	}
}

func TestSeqWriteVersionsAdvance(t *testing.T) {
	seq, _ := newTestSeq(t, testParams(64))
	o := seq.ORAM()
	root0 := o.meta[0].writeVer
	for i := 0; i < 2*o.p.A; i++ {
		must(t, seq.Write(fmt.Sprintf("k%d", i), []byte("v")))
	}
	if o.meta[0].writeVer <= root0 {
		t.Fatal("root bucket version did not advance across evictions")
	}
}

func TestSeqTamperDetected(t *testing.T) {
	p := testParams(32)
	p.Seed = 7
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("t")), p)
	if err != nil {
		t.Fatal(err)
	}
	must(t, seq.Write("k", []byte("v")))
	// Force the block into the tree.
	geo := seq.ORAM().Geometry()
	for i := 0; i < 4*geo.Leaves && seq.ORAM().StashSize() > 0; i++ {
		plan, err := seq.ORAM().PlanEvict()
		if err != nil {
			t.Fatal(err)
		}
		if err := seq.runEviction(plan); err != nil {
			t.Fatal(err)
		}
	}
	if seq.ORAM().StashSize() != 0 {
		t.Fatal("could not flush stash")
	}
	// Corrupt every slot the server holds.
	store.mu.Lock()
	for _, slots := range store.buckets {
		for _, s := range slots {
			if len(s) > 0 {
				s[0] ^= 0xFF
			}
		}
	}
	store.readSince = make(map[int]map[int]bool)
	store.mu.Unlock()
	if _, _, err := seq.Read("k"); err == nil {
		t.Fatal("tampered block accepted")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
