package ringoram

import (
	"fmt"
	"testing"

	"obladi/internal/cryptoutil"
)

// BenchmarkSeqAccess measures sequential Ring ORAM logical ops against an
// in-memory store (pure client CPU + metadata cost).
func BenchmarkSeqAccess(b *testing.B) {
	p := Params{NumBlocks: 4096, Z: 8, S: 12, A: 8, KeySize: 24, ValueSize: 64, Seed: 1}
	seq, err := NewSeq(newMapStore(), cryptoutil.KeyFromSeed([]byte("bench")), p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := seq.Write(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if _, _, err := seq.Read(fmt.Sprintf("k%d", i%512)); err != nil {
				b.Fatal(err)
			}
		} else if err := seq.Write(fmt.Sprintf("k%d", i%512), []byte("w")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanRead isolates metadata planning cost (no I/O).
func BenchmarkPlanRead(b *testing.B) {
	p := Params{NumBlocks: 4096, Z: 8, S: 64, A: 8, KeySize: 24, ValueSize: 64, Seed: 1}
	seq, err := NewSeq(newMapStore(), cryptoutil.KeyFromSeed([]byte("bench")), p)
	if err != nil {
		b.Fatal(err)
	}
	o := seq.ORAM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, _, err := o.PlanDummyRead()
		if err != nil {
			b.Fatal(err)
		}
		// Complete immediately against fetched data to keep metadata sane.
		data := make([][]byte, len(plan.Reads))
		for j, r := range plan.Reads {
			d, err := seq.store.ReadSlot(r.Bucket, r.Slot)
			if err != nil {
				b.Fatal(err)
			}
			data[j] = d
		}
		if _, _, err := o.CompleteAccess(plan, data); err != nil {
			b.Fatal(err)
		}
		if o.EvictDue() {
			ep, err := o.PlanEvict()
			if err != nil {
				b.Fatal(err)
			}
			if err := seq.runEviction(ep); err != nil {
				b.Fatal(err)
			}
		}
	}
}
