package ringoram

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"obladi/internal/cryptoutil"
)

// Store is the slot-granularity storage interface the ORAM client drives.
// Implementations decide how writes map onto shadow-paged epochs.
type Store interface {
	ReadSlot(bucket, slot int) ([]byte, error)
	WriteBucket(bucket int, slots [][]byte) error
}

// Public errors.
var (
	// ErrFull is returned when inserting more distinct keys than NumBlocks.
	ErrFull = errors.New("ringoram: capacity exceeded")
	// ErrStashOverflow is returned when the stash exceeds its configured
	// bound. With canonical parameters (S, A from the Ring ORAM analysis)
	// this does not occur except with negligible probability.
	ErrStashOverflow = errors.New("ringoram: stash overflow")
	// ErrCorrupt indicates a slot that failed authentication or decoding.
	ErrCorrupt = errors.New("ringoram: corrupt slot")
	// ErrReplay indicates a logged replay entry inconsistent with the
	// restored metadata.
	ErrReplay = errors.New("ringoram: replay divergence")
)

// bucketMeta is the client-side metadata for one bucket.
type bucketMeta struct {
	perm     []int    // perm[pos] = physical slot; pos < Z real, else dummy
	addrs    []string // addrs[r]: key at real position r ("" = empty)
	valid    []bool   // indexed by physical slot
	count    int      // slots consumed since last write
	writeVer uint64   // bumped on every rewrite; binds slot ciphertexts
}

// location records where a tree-resident key lives.
type location struct {
	bucket int
	pos    int
}

// stashEntry is a client-side buffered block. Entries are shared by pointer
// between the stash map and in-flight plans so that a completion can deliver
// a value to a block that a later-planned eviction has already placed.
type stashEntry struct {
	key       string
	value     []byte
	tombstone bool
	leaf      int
	cacheable bool // safe to serve without a dummy path read (§6.3)
	pending   bool // value not yet delivered by a completion
	arenaVal  bool // value is a slab owned by the ORAM's value arena
}

// ORAM is a Ring ORAM client. Methods are safe for concurrent use, but the
// plan/complete protocol requires completions to be applied in plan order
// (the executor in internal/oramexec enforces this).
type ORAM struct {
	mu  sync.Mutex
	p   Params
	geo Geometry
	cdc codec
	rng *rand.Rand

	pos   map[string]int // key -> leaf
	loc   map[string]location
	stash map[string]*stashEntry
	meta  []bucketMeta

	accessCount uint64 // physical batch slots consumed (reads + writes)
	evictCount  uint64

	dirtyKeys    map[string]struct{}
	dirtyBuckets map[int]struct{}
	stashPeak    int

	// Hot-path scratch, all guarded by mu (planning, completion and sealing
	// are serialized per ORAM): codec plaintext buffers for seal and open,
	// the Appendix A binding encoder, and the seal occupancy index.
	encPlain  []byte
	decPlain  []byte
	bindBuf   []byte
	occ       []*placement
	fillerBuf []int
	varena    valArena
	// planPool and entryPool recycle the read path's two per-access objects.
	// CompleteAccess retires plans; CompleteEvict retires entries once the
	// seal writes them back into the tree. Both guarded by mu.
	planPool  []*AccessPlan
	entryPool []*stashEntry
	// bufPool recycles bucket serialization buffers (one contiguous
	// ciphertext arena + per-slot headers). Writes that reach storage
	// transfer ownership of their buffer to the store and never come back;
	// only superseded or discarded pre-flush versions are recycled.
	bufPool *sync.Pool
}

// bucketBuf is a pooled serialization buffer for one bucket: a contiguous
// ciphertext arena subsliced into per-slot frames.
type bucketBuf struct {
	arena []byte
	slots [][]byte
	pool  *sync.Pool
}

// valArenaChunk sizes the value arena's carve chunks (at least one slab).
const valArenaChunk = 64 << 10

// valArena owns the stash's decoded values: fixed-capacity slabs carved from
// large chunks and recycled through a free list when their stash entry is
// sealed back into the tree, so the steady-state read path allocates nothing
// per decoded slot. All access is guarded by the ORAM's mu. Slabs never shrink
// the value-size bound, so a recycled slab fits any future value.
type valArena struct {
	slab  int // slab capacity (== ValueSize)
	chunk []byte
	free  [][]byte
}

// take returns an empty slab with cap >= a.slab.
func (a *valArena) take() []byte {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		return b[:0]
	}
	if len(a.chunk) < a.slab || a.slab == 0 {
		n := valArenaChunk
		if n < a.slab {
			n = a.slab
		}
		a.chunk = make([]byte, n)
	}
	b := a.chunk[0:0:a.slab]
	a.chunk = a.chunk[a.slab:]
	return b
}

// copyVal clones v into an arena slab.
func (a *valArena) copyVal(v []byte) []byte { return append(a.take(), v...) }

// release returns a slab for reuse. Only slabs handed out by take/copyVal may
// be released; entry.arenaVal is the callers' ownership tag.
func (a *valArena) release(b []byte) { a.free = append(a.free, b) }

// releaseEntryVal recycles an entry's arena slab (if it owns one) before its
// value is replaced or dropped.
func (o *ORAM) releaseEntryVal(e *stashEntry) {
	if e.arenaVal {
		o.varena.release(e.value)
		e.arenaVal = false
	}
	e.value = nil
}

// newPlan takes a retired AccessPlan from the pool (keeping its Reads
// capacity) or allocates a fresh one, zeroed either way. The steady-state
// read path cycles the same handful of plans instead of allocating one (plus
// a Reads slice) per access.
func (o *ORAM) newPlan() *AccessPlan {
	n := len(o.planPool)
	if n == 0 {
		return &AccessPlan{}
	}
	p := o.planPool[n-1]
	o.planPool[n-1] = nil
	o.planPool = o.planPool[:n-1]
	*p = AccessPlan{Reads: p.Reads[:0]}
	return p
}

// newEntry clones v into a pooled stashEntry. Entries go back to the pool
// when an eviction seals them into the tree — the one point where nothing
// (stash, location map, outstanding plans) can still reference them.
func (o *ORAM) newEntry(v stashEntry) *stashEntry {
	n := len(o.entryPool)
	if n == 0 {
		e := new(stashEntry)
		*e = v
		return e
	}
	e := o.entryPool[n-1]
	o.entryPool[n-1] = nil
	o.entryPool = o.entryPool[:n-1]
	*e = v
	return e
}

// SlotRead is one physical slot the caller must fetch.
type SlotRead struct {
	Bucket, Slot int
	// Ver is the bucket version whose ciphertext binding applies.
	Ver uint64
	// target marks the slot holding the access's block.
	target bool
	// entry receives the decoded block for eviction/reshuffle reads.
	entry *stashEntry
}

// AccessPlan is the outcome of planning one logical access.
type AccessPlan struct {
	Key string
	// Leaf is the path read by this access (-1 when no path is read).
	Leaf int
	// Reads lists the physical slots to fetch, root to leaf.
	Reads []SlotRead

	cached      bool // served locally, no I/O
	cachedEntry *stashEntry
	targetIdx   int
	targetEntry *stashEntry
	isWrite     bool
	newValue    []byte
	newTomb     bool
	completed   bool
}

// Cached reports whether the plan requires no storage reads.
func (p *AccessPlan) Cached() bool { return p == nil || p.cached }

// LogSlots returns the physical slot chosen in each bucket along the path,
// for the durability log.
func (p *AccessPlan) LogSlots() []int {
	out := make([]int, len(p.Reads))
	for i, r := range p.Reads {
		out[i] = r.Slot
	}
	return out
}

// BucketWrite is one serialized bucket the caller must write back. Slots
// subslice one contiguous pooled arena; see Recycle for the ownership rule.
type BucketWrite struct {
	Bucket int
	Ver    uint64
	Slots  [][]byte

	buf *bucketBuf
}

// Recycle returns the write's backing arena to the ORAM's buffer pool. Legal
// ONLY while the write never reached storage — a version superseded by a
// later rewrite of the same bucket before the epoch flushed, or a discarded
// epoch buffer. A write handed to the store transfers ownership of its slots
// (and therefore its arena) to the store and must never be recycled. Safe to
// call more than once; Slots must not be used afterwards.
func (w *BucketWrite) Recycle() {
	if b := w.buf; b != nil {
		w.buf = nil
		w.Slots = nil
		b.pool.Put(b)
	}
}

// placement records a block assigned to a bucket by an eviction write phase.
type placement struct {
	key   string
	pos   int
	entry *stashEntry
}

// plannedBucket is the write-phase plan for one bucket.
type plannedBucket struct {
	bucket int
	ver    uint64
	perm   []int
	placed []placement
}

// EvictPlan is the outcome of planning an evict-path or early reshuffle.
type EvictPlan struct {
	// Buckets lists the buckets rewritten, in read order.
	Buckets []int
	// Reads lists all physical slot reads of the read phase.
	Reads []SlotRead
	// readsPerBucket partitions Reads by bucket (parallel to Buckets).
	readsPerBucket [][]int // indices into Reads

	writes    []plannedBucket
	isEvict   bool
	completed bool
}

// LogSlots returns, per bucket, the slots read, for the durability log.
func (p *EvictPlan) LogSlots() [][]int {
	out := make([][]int, len(p.Buckets))
	for i, idxs := range p.readsPerBucket {
		s := make([]int, len(idxs))
		for j, idx := range idxs {
			s[j] = p.Reads[idx].Slot
		}
		out[i] = s
	}
	return out
}

// New creates an ORAM with freshly initialized buckets written to store.
// key may be nil only when p.DisableEncryption is set.
func New(store Store, key *cryptoutil.Key, p Params) (*ORAM, error) {
	o, err := newClient(key, p)
	if err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("ringoram: nil store")
	}
	// Initialize every bucket: empty reals + dummies, fresh permutations.
	// Parallel workers keep setup tolerable for latency-injected stores.
	type job struct {
		bucket int
		slots  [][]byte
	}
	const workers = 16
	jobs := make(chan job)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := store.WriteBucket(j.bucket, j.slots); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	var initErr error
	for b := 0; b < o.geo.NumBuckets; b++ {
		o.meta[b] = o.freshMeta()
		w, err := o.sealBucket(b, o.meta[b], nil)
		if err != nil {
			initErr = err
			break
		}
		// Ownership of the serialization buffer transfers to the store with
		// the write; never recycled.
		jobs <- job{bucket: b, slots: w.Slots}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	if initErr == nil {
		initErr = <-errs
	}
	if initErr != nil {
		return nil, fmt.Errorf("ringoram: initializing tree: %w", initErr)
	}
	return o, nil
}

func newClient(key *cryptoutil.Key, p Params) (*ORAM, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if key == nil && !p.DisableEncryption {
		return nil, errors.New("ringoram: nil key with encryption enabled")
	}
	if p.DisableEncryption {
		key = nil
	}
	geo := p.Geometry()
	seed := p.Seed
	var src rand.Source
	if seed != 0 {
		src = rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	} else {
		src = rand.NewPCG(rand.Uint64(), rand.Uint64())
	}
	var sealer cryptoutil.Sealer
	if key != nil {
		sealer = key
	}
	o := &ORAM{
		p:            p,
		geo:          geo,
		cdc:          codec{keySize: p.KeySize, valueSize: p.ValueSize, key: sealer},
		rng:          rand.New(src),
		pos:          make(map[string]int),
		loc:          make(map[string]location),
		stash:        make(map[string]*stashEntry),
		meta:         make([]bucketMeta, geo.NumBuckets),
		dirtyKeys:    make(map[string]struct{}),
		dirtyBuckets: make(map[int]struct{}),
	}
	o.encPlain = make([]byte, o.cdc.plainSize())
	o.decPlain = make([]byte, 0, o.cdc.plainSize())
	o.varena.slab = p.ValueSize
	o.bindBuf = make([]byte, 0, cryptoutil.BindingSize)
	o.occ = make([]*placement, p.Z)
	slotSize, slotsPer := o.cdc.slotSize(), geo.SlotsPer
	pool := &sync.Pool{}
	pool.New = func() any {
		return &bucketBuf{
			arena: make([]byte, slotsPer*slotSize),
			slots: make([][]byte, slotsPer),
			pool:  pool,
		}
	}
	o.bufPool = pool
	return o, nil
}

// binding encodes the Appendix A (id, epoch, batch=0) freshness triple into
// the ORAM's scratch buffer; caller holds mu and must use it before the next
// binding call.
func (o *ORAM) binding(id, epoch uint64) []byte {
	o.bindBuf = cryptoutil.AppendBinding(o.bindBuf[:0], id, epoch, 0)
	return o.bindBuf
}

func (o *ORAM) freshMeta() bucketMeta {
	n := o.geo.SlotsPer
	m := bucketMeta{
		perm:     o.rng.Perm(n),
		addrs:    make([]string, o.p.Z),
		valid:    make([]bool, n),
		count:    0,
		writeVer: 1,
	}
	for i := range m.valid {
		m.valid[i] = true
	}
	return m
}

// Params returns the validated configuration.
func (o *ORAM) Params() Params { return o.p }

// Geometry returns the derived tree shape.
func (o *ORAM) Geometry() Geometry { return o.geo }

// SlotSize returns the physical slot size in bytes.
func (o *ORAM) SlotSize() int { return o.cdc.slotSize() }

// Counters returns (accessCount, evictCount).
func (o *ORAM) Counters() (uint64, uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.accessCount, o.evictCount
}

// StashSize returns the current number of stash entries.
func (o *ORAM) StashSize() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.stash)
}

// StashPeak returns the high-water mark of the stash.
func (o *ORAM) StashPeak() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stashPeak
}

// PathBuckets returns the buckets on the path from the root to leaf, root
// first. Used by the executor to adjust replayed slot choices for buckets
// it has already rewritten.
func (o *ORAM) PathBuckets(leaf int) []int {
	if leaf < 0 || leaf >= o.geo.Leaves {
		return nil
	}
	return o.geo.path(leaf)
}

// NextEvictPath returns the buckets the next evict-path operation will
// touch (a pure function of the eviction counter).
func (o *ORAM) NextEvictPath() []int {
	o.mu.Lock()
	leaf := o.geo.evictLeaf(o.evictCount)
	o.mu.Unlock()
	return o.geo.path(leaf)
}

// KeyCount returns the number of allocated logical keys.
func (o *ORAM) KeyCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pos)
}

func (o *ORAM) randLeaf() int { return o.rng.IntN(o.geo.Leaves) }

// fillerPositions returns the logical positions usable as dummy reads:
// dummy positions and unoccupied real positions whose slot is still valid.
// The returned slice is mu-guarded scratch, valid until the next call — it
// runs once per consumed slot, so it must not allocate in steady state.
func (o *ORAM) fillerPositions(m *bucketMeta) []int {
	out := o.fillerBuf[:0]
	for pos := 0; pos < o.geo.SlotsPer; pos++ {
		if pos < o.p.Z && m.addrs[pos] != "" {
			continue
		}
		if m.valid[m.perm[pos]] {
			out = append(out, pos)
		}
	}
	o.fillerBuf = out
	return out
}

// consumeFiller invalidates and returns a filler slot of bucket b, honoring
// a forced physical slot during replay (forced < 0 means choose randomly).
func (o *ORAM) consumeFiller(b int, forced int) (int, error) {
	m := &o.meta[b]
	if forced >= 0 {
		if forced >= o.geo.SlotsPer || !m.valid[forced] {
			return 0, fmt.Errorf("%w: bucket %d slot %d not a valid filler", ErrReplay, b, forced)
		}
		for pos := 0; pos < o.p.Z; pos++ {
			if m.perm[pos] == forced && m.addrs[pos] != "" {
				return 0, fmt.Errorf("%w: bucket %d slot %d holds a real block", ErrReplay, b, forced)
			}
		}
		m.valid[forced] = false
		m.count++
		o.dirtyBuckets[b] = struct{}{}
		return forced, nil
	}
	fillers := o.fillerPositions(m)
	if len(fillers) == 0 {
		// Cannot happen when early reshuffles run on schedule; treated as
		// an internal invariant violation.
		return 0, fmt.Errorf("ringoram: bucket %d has no valid filler slot (count=%d)", b, m.count)
	}
	pos := fillers[o.rng.IntN(len(fillers))]
	phys := m.perm[pos]
	m.valid[phys] = false
	m.count++
	o.dirtyBuckets[b] = struct{}{}
	return phys, nil
}

// reshuffleDue lists path buckets whose slot budget is exhausted.
func (o *ORAM) reshuffleDue(path []int) []int {
	var due []int
	for _, b := range path {
		if o.meta[b].count >= o.p.S {
			due = append(due, b)
		}
	}
	return due
}

func (o *ORAM) noteStash() error {
	if len(o.stash) > o.stashPeak {
		o.stashPeak = len(o.stash)
	}
	if len(o.stash) > o.p.StashLimit {
		return fmt.Errorf("%w: %d entries exceed limit %d", ErrStashOverflow, len(o.stash), o.p.StashLimit)
	}
	return nil
}

// PlanRead plans a logical read. It returns the plan and any buckets that
// now require an early reshuffle. A nil error with plan.Cached() true means
// the value can be produced by CompleteAccess with no storage reads.
func (o *ORAM) PlanRead(key string) (*AccessPlan, []int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.planReadLocked(key, -1, nil)
}

// PlanDummyRead plans a padding read: a uniformly random path with one
// filler slot per bucket.
func (o *ORAM) PlanDummyRead() (*AccessPlan, []int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.planReadLocked("", -1, nil)
}

// ReplayRead replays a logged access (key may be "" for padding) using the
// logged leaf and physical slot choices.
func (o *ORAM) ReplayRead(key string, leaf int, slots []int) (*AccessPlan, []int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(slots) != o.geo.Levels+1 {
		return nil, nil, fmt.Errorf("%w: logged %d slots, path has %d buckets", ErrReplay, len(slots), o.geo.Levels+1)
	}
	return o.planReadLocked(key, leaf, slots)
}

func (o *ORAM) planReadLocked(key string, forcedLeaf int, forcedSlots []int) (*AccessPlan, []int, error) {
	// Stash hit.
	if key != "" {
		if e, ok := o.stash[key]; ok {
			e.leaf = o.randLeaf() // remap on every logical access
			o.pos[key] = e.leaf
			o.dirtyKeys[key] = struct{}{}
			if e.cacheable && forcedSlots == nil {
				p := o.newPlan()
				p.Key, p.Leaf, p.cached, p.cachedEntry, p.targetIdx = key, -1, true, e, -1
				return p, nil, nil
			}
			// Non-cacheable resident block: a dummy path read is mandatory
			// to keep the observed path distribution uniform (§6.3). After
			// this logical access the entry is uniformly remapped, hence
			// cacheable again.
			e.cacheable = true
			leaf := forcedLeaf
			if leaf < 0 {
				leaf = o.randLeaf()
			}
			plan, due, err := o.dummyPathLocked(leaf, forcedSlots)
			if err != nil {
				return nil, nil, err
			}
			plan.Key = key
			plan.cachedEntry = e
			return plan, due, nil
		}
	}

	if l, ok := o.loc[key]; key != "" && ok {
		oldLeaf := o.pos[key]
		if forcedLeaf >= 0 && forcedLeaf != oldLeaf {
			return nil, nil, fmt.Errorf("%w: key %q logged leaf %d, position map says %d", ErrReplay, key, forcedLeaf, oldLeaf)
		}
		path := o.geo.path(oldLeaf)
		plan := o.newPlan()
		plan.Key, plan.Leaf, plan.targetIdx = key, oldLeaf, -1
		if cap(plan.Reads) < len(path) {
			plan.Reads = make([]SlotRead, 0, len(path))
		}
		for lvl, b := range path {
			m := &o.meta[b]
			var forced = -1
			if forcedSlots != nil {
				forced = forcedSlots[lvl]
			}
			if b == l.bucket {
				phys := m.perm[l.pos]
				if forced >= 0 && forced != phys {
					return nil, nil, fmt.Errorf("%w: key %q logged slot %d in bucket %d, metadata says %d", ErrReplay, key, forced, b, phys)
				}
				if !m.valid[phys] {
					return nil, nil, fmt.Errorf("ringoram: occupied real slot invalid (bucket %d pos %d)", b, l.pos)
				}
				m.valid[phys] = false
				m.count++
				m.addrs[l.pos] = ""
				o.dirtyBuckets[b] = struct{}{}
				plan.targetIdx = len(plan.Reads)
				plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: m.writeVer, target: true})
				continue
			}
			phys, err := o.consumeFiller(b, forced)
			if err != nil {
				return nil, nil, err
			}
			plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: o.meta[b].writeVer})
		}
		if plan.targetIdx < 0 {
			return nil, nil, fmt.Errorf("ringoram: key %q resides in bucket %d, off its path (leaf %d)", key, l.bucket, oldLeaf)
		}
		delete(o.loc, key)
		e := o.newEntry(stashEntry{key: key, cacheable: true, pending: true})
		o.stash[key] = e
		plan.targetEntry = e
		newLeaf := o.randLeaf()
		o.pos[key] = newLeaf
		e.leaf = newLeaf
		o.dirtyKeys[key] = struct{}{}
		o.accessCount++
		if err := o.noteStash(); err != nil {
			return nil, nil, err
		}
		return plan, o.reshuffleDue(path), nil
	}

	// Unknown key (or explicit padding): pure dummy path read.
	leaf := forcedLeaf
	if leaf < 0 {
		leaf = o.randLeaf()
	}
	plan, due, err := o.dummyPathLocked(leaf, forcedSlots)
	if err != nil {
		return nil, nil, err
	}
	plan.Key = key
	return plan, due, nil
}

// dummyPathLocked consumes one filler slot per bucket along leaf's path.
func (o *ORAM) dummyPathLocked(leaf int, forcedSlots []int) (*AccessPlan, []int, error) {
	path := o.geo.path(leaf)
	plan := o.newPlan()
	plan.Leaf, plan.targetIdx = leaf, -1
	if cap(plan.Reads) < len(path) {
		plan.Reads = make([]SlotRead, 0, len(path))
	}
	for lvl, b := range path {
		forced := -1
		if forcedSlots != nil {
			forced = forcedSlots[lvl]
		}
		phys, err := o.consumeFiller(b, forced)
		if err != nil {
			return nil, nil, err
		}
		plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: o.meta[b].writeVer})
	}
	o.accessCount++
	return plan, o.reshuffleDue(path), nil
}

// PlanWrite plans a logical write (or delete, when tombstone is set). With
// dummiless writes (the default, §6.3) the block goes directly to the stash
// and the returned plan is nil: no storage reads are needed and no
// completion is required.
func (o *ORAM) PlanWrite(key string, value []byte, tombstone bool) (*AccessPlan, []int, error) {
	if key == "" {
		return nil, nil, errors.New("ringoram: empty key")
	}
	if len(key) > o.p.KeySize {
		return nil, nil, fmt.Errorf("ringoram: key of %d bytes exceeds KeySize %d", len(key), o.p.KeySize)
	}
	if len(value) > o.p.ValueSize {
		return nil, nil, fmt.Errorf("ringoram: value of %d bytes exceeds ValueSize %d", len(value), o.p.ValueSize)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, known := o.pos[key]; !known {
		if len(o.pos) >= o.p.NumBlocks {
			return nil, nil, fmt.Errorf("%w: %d keys", ErrFull, len(o.pos))
		}
	}
	if o.p.DisableDummilessWrites {
		// Canonical Ring ORAM: a write is a path read whose completion
		// installs the new value.
		plan, due, err := o.planReadLocked(key, -1, nil)
		if err != nil {
			return nil, nil, err
		}
		if plan.cached {
			// Stash hit: update in place, still no I/O.
			o.releaseEntryVal(plan.cachedEntry)
			plan.cachedEntry.value = append([]byte(nil), value...)
			plan.cachedEntry.tombstone = tombstone
			return nil, nil, nil
		}
		plan.isWrite = true
		plan.newValue = append([]byte(nil), value...)
		plan.newTomb = tombstone
		if plan.targetEntry == nil {
			// Unknown key: the dummy path read allocated nothing; create
			// the stash entry now.
			e := o.newEntry(stashEntry{key: key, leaf: o.randLeaf(), cacheable: true, pending: true})
			o.stash[key] = e
			o.pos[key] = e.leaf
			o.dirtyKeys[key] = struct{}{}
			plan.targetEntry = e
			if err := o.noteStash(); err != nil {
				return nil, nil, err
			}
		}
		return plan, due, nil
	}

	newLeaf := o.randLeaf()
	o.pos[key] = newLeaf
	o.dirtyKeys[key] = struct{}{}
	if e, ok := o.stash[key]; ok {
		o.releaseEntryVal(e)
		e.value = append([]byte(nil), value...)
		e.tombstone = tombstone
		e.leaf = newLeaf
		e.cacheable = true
		e.pending = false
	} else {
		if l, ok := o.loc[key]; ok {
			// Logically remove the stale tree copy without reading it: the
			// slot keeps its (now meaningless) ciphertext and remains valid
			// filler.
			o.meta[l.bucket].addrs[l.pos] = ""
			o.dirtyBuckets[l.bucket] = struct{}{}
			delete(o.loc, key)
		}
		o.stash[key] = o.newEntry(stashEntry{
			key:       key,
			value:     append([]byte(nil), value...),
			tombstone: tombstone,
			leaf:      newLeaf,
			cacheable: true,
		})
	}
	o.accessCount++
	if err := o.noteStash(); err != nil {
		return nil, nil, err
	}
	return nil, nil, nil
}

// BumpWrite advances the access counter by one write-batch slot without any
// logical effect. It pads write batches (keeping the eviction schedule
// workload independent) and replays logged write bumps during recovery.
func (o *ORAM) BumpWrite() {
	o.mu.Lock()
	o.accessCount++
	o.mu.Unlock()
}

// EvictDue reports whether an evict-path operation is owed.
func (o *ORAM) EvictDue() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.accessCount >= uint64(o.p.A)*(o.evictCount+1)
}

// CompleteAccess applies the fetched slot data for an access plan and
// returns the read value (for writes, the returned value is nil). data must
// be parallel to plan.Reads.
func (o *ORAM) CompleteAccess(plan *AccessPlan, data [][]byte) (value []byte, found bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if plan.completed {
		return nil, false, errors.New("ringoram: plan completed twice")
	}
	plan.completed = true
	// Completion is the plan's death in every caller: recycle it on success.
	// Error returns leave it out of the pool so the caller can inspect it.
	defer func() {
		if err == nil {
			o.planPool = append(o.planPool, plan)
		}
	}()
	if !plan.cached && len(data) != len(plan.Reads) {
		return nil, false, fmt.Errorf("ringoram: %d slots delivered, plan has %d", len(data), len(plan.Reads))
	}
	if plan.targetIdx >= 0 && plan.targetEntry.pending {
		r := plan.Reads[plan.targetIdx]
		kind, blk, derr := o.cdc.decodeSlotInto(o.decPlain, data[plan.targetIdx], o.binding(uint64(r.Bucket), r.Ver))
		e := plan.targetEntry
		switch {
		case derr != nil || (kind != slotReal && kind != slotTombstone):
			if !o.p.TolerateCorrupt {
				if derr == nil {
					derr = fmt.Errorf("slot kind %d", kind)
				}
				return nil, false, fmt.Errorf("%w: bucket %d slot %d: %v", ErrCorrupt, r.Bucket, r.Slot, derr)
			}
			o.releaseEntryVal(e)
			e.tombstone = true
			e.pending = false
		case string(blk.keyB) != plan.Key:
			if !o.p.TolerateCorrupt {
				return nil, false, fmt.Errorf("%w: bucket %d slot %d holds key %q, want %q", ErrCorrupt, r.Bucket, r.Slot, blk.keyB, plan.Key)
			}
			o.releaseEntryVal(e)
			e.tombstone = true
			e.pending = false
		default:
			// blk.value aliases the decode scratch: copy it into the stash's
			// value arena, which owns it until the entry is sealed back.
			o.releaseEntryVal(e)
			e.value = o.varena.copyVal(blk.value)
			e.arenaVal = true
			e.tombstone = blk.tombstone
			e.pending = false
		}
	}
	// Resolve the logical result.
	entry := plan.targetEntry
	if entry == nil {
		entry = plan.cachedEntry
	}
	if plan.isWrite {
		if entry == nil {
			return nil, false, errors.New("ringoram: write plan without entry")
		}
		o.releaseEntryVal(entry)
		entry.value = plan.newValue
		entry.tombstone = plan.newTomb
		entry.pending = false
		return nil, true, nil
	}
	if entry == nil {
		return nil, false, nil // unknown key or padding
	}
	if entry.pending {
		return nil, false, errors.New("ringoram: completion out of order: entry still pending")
	}
	if entry.tombstone {
		return nil, false, nil
	}
	return append([]byte(nil), entry.value...), true, nil
}

// PlanEvict plans the next deterministic evict-path operation.
func (o *ORAM) PlanEvict() (*EvictPlan, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	leaf := o.geo.evictLeaf(o.evictCount)
	return o.planEvictionLocked(o.geo.path(leaf), leaf, true, nil)
}

// ReplayEvict replays a logged evict-path with the logged per-bucket slots.
func (o *ORAM) ReplayEvict(slots [][]int) (*EvictPlan, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	leaf := o.geo.evictLeaf(o.evictCount)
	path := o.geo.path(leaf)
	if len(slots) != len(path) {
		return nil, fmt.Errorf("%w: logged %d buckets, evict path has %d", ErrReplay, len(slots), len(path))
	}
	return o.planEvictionLocked(path, leaf, true, slots)
}

// PlanReshuffle plans an early reshuffle of a single bucket.
func (o *ORAM) PlanReshuffle(bucket int) (*EvictPlan, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if bucket < 0 || bucket >= o.geo.NumBuckets {
		return nil, fmt.Errorf("ringoram: reshuffle of bucket %d out of range", bucket)
	}
	return o.planEvictionLocked([]int{bucket}, -1, false, nil)
}

// ReplayReshuffle replays a logged early reshuffle.
func (o *ORAM) ReplayReshuffle(bucket int, slots []int) (*EvictPlan, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if bucket < 0 || bucket >= o.geo.NumBuckets {
		return nil, fmt.Errorf("%w: reshuffle bucket %d out of range", ErrReplay, bucket)
	}
	return o.planEvictionLocked([]int{bucket}, -1, false, [][]int{slots})
}

// bucketLevel returns the depth of a heap bucket index.
func bucketLevel(b int) int {
	lvl := 0
	for b > 0 {
		b = (b - 1) / 2
		lvl++
	}
	return lvl
}

// planEvictionLocked implements the shared read/write planning of evict-path
// (buckets = full path, deepest placement first) and early reshuffle
// (single bucket). forcedSlots, when non-nil, dictates the physical slots of
// the read phase (recovery replay).
func (o *ORAM) planEvictionLocked(buckets []int, targetLeaf int, isEvict bool, forcedSlots [][]int) (*EvictPlan, error) {
	plan := &EvictPlan{Buckets: append([]int(nil), buckets...), isEvict: isEvict}
	plan.Reads = make([]SlotRead, 0, len(buckets)*o.p.Z)
	plan.readsPerBucket = make([][]int, 0, len(buckets))

	// Read phase: every valid occupied real block, padded with fillers to Z
	// reads per bucket. Blocks move to the stash as pending entries.
	for bi, b := range buckets {
		m := &o.meta[b]
		idxs := make([]int, 0, o.p.Z)
		var forced []int
		if forcedSlots != nil {
			forced = forcedSlots[bi]
		}
		var forcedUsed map[int]bool
		if forced != nil {
			forcedUsed = make(map[int]bool, len(forced))
		}
		// Occupied reals first.
		for r := 0; r < o.p.Z; r++ {
			key := m.addrs[r]
			if key == "" {
				continue
			}
			phys := m.perm[r]
			if !m.valid[phys] {
				return nil, fmt.Errorf("ringoram: occupied real slot invalid (bucket %d pos %d)", b, r)
			}
			if forced != nil {
				ok := false
				for _, s := range forced {
					if s == phys {
						ok = true
						break
					}
				}
				if !ok {
					return nil, fmt.Errorf("%w: logged eviction misses real slot %d of bucket %d", ErrReplay, phys, b)
				}
				forcedUsed[phys] = true
			}
			m.valid[phys] = false
			m.count++
			m.addrs[r] = ""
			delete(o.loc, key)
			e := o.newEntry(stashEntry{key: key, leaf: o.pos[key], pending: true})
			o.stash[key] = e
			idxs = append(idxs, len(plan.Reads))
			plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: m.writeVer, entry: e})
		}
		// Pad with fillers.
		if forced != nil {
			for _, s := range forced {
				if forcedUsed[s] {
					continue
				}
				phys, err := o.consumeFiller(b, s)
				if err != nil {
					return nil, err
				}
				idxs = append(idxs, len(plan.Reads))
				plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: m.writeVer})
			}
		} else {
			for len(idxs) < o.p.Z {
				fillers := o.fillerPositions(m)
				if len(fillers) == 0 {
					break // short read phase; harmless and rare
				}
				phys, err := o.consumeFiller(b, m.perm[fillers[o.rng.IntN(len(fillers))]])
				if err != nil {
					return nil, err
				}
				idxs = append(idxs, len(plan.Reads))
				plan.Reads = append(plan.Reads, SlotRead{Bucket: b, Slot: phys, Ver: m.writeVer})
			}
		}
		plan.readsPerBucket = append(plan.readsPerBucket, idxs)
		o.dirtyBuckets[b] = struct{}{}
	}
	if err := o.noteStash(); err != nil {
		return nil, err
	}

	// Write phase planning: place stash blocks as deep as possible.
	order := make([]int, len(buckets))
	copy(order, buckets)
	if isEvict {
		// Deepest first: iterate the path bottom-up.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	placedKeys := make(map[string]bool)
	writesByBucket := make(map[int]*plannedBucket, len(order))
	for _, b := range order {
		lvl := bucketLevel(b)
		pb := &plannedBucket{bucket: b}
		for key, e := range o.stash {
			if placedKeys[key] {
				continue
			}
			if len(pb.placed) >= o.p.Z {
				break
			}
			if o.geo.pathBucket(e.leaf, lvl) != b {
				continue
			}
			pos := len(pb.placed)
			pb.placed = append(pb.placed, placement{key: key, pos: pos, entry: e})
			placedKeys[key] = true
		}
		m := &o.meta[b]
		m.perm = o.rng.Perm(o.geo.SlotsPer)
		for i := range m.valid {
			m.valid[i] = true
		}
		for r := range m.addrs {
			m.addrs[r] = ""
		}
		m.count = 0
		m.writeVer++
		for _, pl := range pb.placed {
			m.addrs[pl.pos] = pl.key
			o.loc[pl.key] = location{bucket: b, pos: pl.pos}
			delete(o.stash, pl.key)
		}
		pb.ver = m.writeVer
		pb.perm = append([]int(nil), m.perm...)
		writesByBucket[b] = pb
		o.dirtyBuckets[b] = struct{}{}
	}
	// Emit writes in read order (root first) for determinism.
	for _, b := range buckets {
		plan.writes = append(plan.writes, *writesByBucket[b])
	}
	if isEvict {
		o.evictCount++
		// Whatever could not be flushed is skewed away from recent evict
		// paths; serving it without a dummy read would leak (§6.3).
		for _, e := range o.stash {
			e.cacheable = false
		}
	}
	return plan, nil
}

// CompleteEvict applies the fetched read-phase data and returns the bucket
// writes the caller must perform (or buffer). data is parallel to
// plan.Reads.
func (o *ORAM) CompleteEvict(plan *EvictPlan, data [][]byte) ([]BucketWrite, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if plan.completed {
		return nil, errors.New("ringoram: eviction completed twice")
	}
	plan.completed = true
	if len(data) != len(plan.Reads) {
		return nil, fmt.Errorf("ringoram: %d slots delivered, plan has %d", len(data), len(plan.Reads))
	}
	for i, r := range plan.Reads {
		if r.entry == nil || !r.entry.pending {
			continue
		}
		kind, blk, err := o.cdc.decodeSlotInto(o.decPlain, data[i], o.binding(uint64(r.Bucket), r.Ver))
		if err != nil || (kind != slotReal && kind != slotTombstone) {
			if !o.p.TolerateCorrupt {
				if err == nil {
					err = fmt.Errorf("slot kind %d", kind)
				}
				return nil, fmt.Errorf("%w: bucket %d slot %d: %v", ErrCorrupt, r.Bucket, r.Slot, err)
			}
			o.releaseEntryVal(r.entry)
			r.entry.tombstone = true
			r.entry.pending = false
			continue
		}
		if string(blk.keyB) != r.entry.key {
			if !o.p.TolerateCorrupt {
				return nil, fmt.Errorf("%w: bucket %d slot %d holds key %q, want %q", ErrCorrupt, r.Bucket, r.Slot, blk.keyB, r.entry.key)
			}
			o.releaseEntryVal(r.entry)
			r.entry.tombstone = true
			r.entry.pending = false
			continue
		}
		o.releaseEntryVal(r.entry)
		r.entry.value = o.varena.copyVal(blk.value)
		r.entry.arenaVal = true
		r.entry.tombstone = blk.tombstone
		r.entry.pending = false
	}
	writes := make([]BucketWrite, 0, len(plan.writes))
	for i := range plan.writes {
		pb := &plan.writes[i]
		w, err := o.sealPlannedBucket(pb)
		if err != nil {
			return nil, err
		}
		writes = append(writes, w)
	}
	// The placed entries left the stash when the write phase planned them and
	// their values are now sealed inside the bucket arenas: recycle the slabs.
	// Plan-ordered completion means no earlier plan still references them, and
	// any later access finds the key in the tree, not in these entries.
	for i := range plan.writes {
		for _, pl := range plan.writes[i].placed {
			if pl.entry != nil {
				o.releaseEntryVal(pl.entry)
				o.entryPool = append(o.entryPool, pl.entry)
			}
		}
	}
	return writes, nil
}

// sealPlannedBucket serializes a bucket per a write-phase plan. Every slot is
// sealed in place into one contiguous pooled arena (two allocations per
// bucket when the pool is cold, zero when warm) instead of one buffer per
// slot; the arena travels with the returned BucketWrite.
func (o *ORAM) sealPlannedBucket(pb *plannedBucket) (BucketWrite, error) {
	bb := o.bufPool.Get().(*bucketBuf)
	slotSize := o.cdc.slotSize()
	binding := o.binding(uint64(pb.bucket), pb.ver)
	occ := o.occ
	for i := range occ {
		occ[i] = nil
	}
	for i := range pb.placed {
		occ[pb.placed[i].pos] = &pb.placed[i]
	}
	for pos := 0; pos < o.geo.SlotsPer; pos++ {
		phys := pb.perm[pos]
		dst := bb.arena[phys*slotSize : phys*slotSize : (phys+1)*slotSize]
		var data []byte
		var err error
		switch {
		case pos >= o.p.Z:
			data, err = o.cdc.encodeSlotTo(dst, slotDummy, block{}, binding, o.encPlain)
		case occ[pos] != nil:
			pl := occ[pos]
			if pl.entry.pending {
				bb.pool.Put(bb)
				return BucketWrite{}, fmt.Errorf("ringoram: serializing bucket %d: block %q still pending (completion order violated)", pb.bucket, pl.key)
			}
			kind := byte(slotReal)
			if pl.entry.tombstone {
				kind = slotTombstone
			}
			data, err = o.cdc.encodeSlotTo(dst, kind, block{key: pl.key, value: pl.entry.value, tombstone: pl.entry.tombstone}, binding, o.encPlain)
		default:
			data, err = o.cdc.encodeSlotTo(dst, slotEmptyReal, block{}, binding, o.encPlain)
		}
		if err != nil {
			bb.pool.Put(bb)
			return BucketWrite{}, err
		}
		bb.slots[phys] = data
	}
	return BucketWrite{Bucket: pb.bucket, Ver: pb.ver, Slots: bb.slots, buf: bb}, nil
}

// sealBucket serializes a bucket straight from current metadata; used for
// tree initialization where all real positions are empty.
func (o *ORAM) sealBucket(bucket int, m bucketMeta, values map[string][]byte) (BucketWrite, error) {
	pb := plannedBucket{bucket: bucket, ver: m.writeVer, perm: m.perm}
	for r, key := range m.addrs {
		if key == "" {
			continue
		}
		pb.placed = append(pb.placed, placement{
			key: key, pos: r,
			entry: &stashEntry{key: key, value: values[key]},
		})
	}
	return o.sealPlannedBucket(&pb)
}
