package ringoram

import (
	"fmt"
	"testing"

	"obladi/internal/cryptoutil"
)

// buildWorkload creates a Seq, applies a deterministic workload, and returns
// it with the expected contents.
func buildWorkload(t *testing.T, seed uint64) (*Seq, *mapStore, map[string]string) {
	t.Helper()
	p := testParams(64)
	p.Seed = seed
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("state")), p)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[string]string)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i%20)
		v := fmt.Sprintf("v%d", i)
		must(t, seq.Write(k, []byte(v)))
		oracle[k] = v
		if i%3 == 0 {
			if _, _, err := seq.Read(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	return seq, store, oracle
}

func TestSnapshotRestoreFull(t *testing.T) {
	seq, store, oracle := buildWorkload(t, 21)
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), st)
	if err != nil {
		t.Fatal(err)
	}
	// Reset the server-side read-tracking: the restored client replays
	// nothing here, it simply resumes; reads against untouched buckets are
	// legitimate after the (conceptual) crash boundary.
	store.mu.Lock()
	store.readSince = make(map[int]map[int]bool)
	store.mu.Unlock()
	seq2 := &Seq{oram: restored, store: store}
	for k, want := range oracle {
		v, found, err := seq2.Read(k)
		if err != nil {
			t.Fatalf("read %s after restore: %v", k, err)
		}
		if !found || string(v) != want {
			t.Fatalf("after restore %s = %q (found=%v), want %q", k, v, found, want)
		}
	}
	checkPathInvariant(t, restored)
	checkMetaConsistency(t, restored)
}

func TestSnapshotCountersPreserved(t *testing.T) {
	seq, _, _ := buildWorkload(t, 22)
	a0, e0 := seq.ORAM().Counters()
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), st)
	if err != nil {
		t.Fatal(err)
	}
	a1, e1 := restored.Counters()
	if a0 != a1 || e0 != e1 {
		t.Fatalf("counters drifted: %d/%d -> %d/%d", a0, e0, a1, e1)
	}
}

func TestSnapshotDelta(t *testing.T) {
	seq, store, _ := buildWorkload(t, 23)
	full, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	seq.ORAM().ClearDirty()
	// More activity -> delta.
	extra := map[string]string{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("d%d", i%6)
		v := fmt.Sprintf("dv%d", i)
		must(t, seq.Write(k, []byte(v)))
		extra[k] = v
	}
	delta, err := seq.ORAM().Snapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full {
		t.Fatal("delta marked full")
	}
	if len(delta.Buckets) == 0 || len(delta.Pos) == 0 {
		t.Fatal("delta captured nothing")
	}
	if len(delta.Buckets) >= len(full.Buckets) {
		t.Fatalf("delta (%d buckets) not smaller than full (%d)", len(delta.Buckets), len(full.Buckets))
	}
	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), full, delta)
	if err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	store.readSince = make(map[int]map[int]bool)
	store.mu.Unlock()
	seq2 := &Seq{oram: restored, store: store}
	for k, want := range extra {
		v, found, err := seq2.Read(k)
		if err != nil || !found || string(v) != want {
			t.Fatalf("delta-restored %s = %q %v %v, want %q", k, v, found, err, want)
		}
	}
	checkMetaConsistency(t, restored)
}

func TestSnapshotRequiresFull(t *testing.T) {
	seq, _, _ := buildWorkload(t, 24)
	delta, err := seq.ORAM().Snapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), delta); err == nil {
		t.Fatal("restore from delta-only accepted")
	}
}

func TestSnapshotRejectsWrongShape(t *testing.T) {
	seq, _, _ := buildWorkload(t, 25)
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	p2 := seq.ORAM().Params()
	p2.NumBlocks = 4 * p2.NumBlocks // different geometry
	if _, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), p2, st); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestDirtyTracking(t *testing.T) {
	seq, _, _ := buildWorkload(t, 26)
	seq.ORAM().ClearDirty()
	k0, b0 := seq.ORAM().DirtyCounts()
	if k0 != 0 || b0 != 0 {
		t.Fatalf("dirty after clear: %d keys, %d buckets", k0, b0)
	}
	must(t, seq.Write("fresh", []byte("v")))
	k1, _ := seq.ORAM().DirtyCounts()
	if k1 == 0 {
		t.Fatal("write did not mark position map dirty")
	}
}

// TestReplayReadProducesSameSlots exercises the recovery replay path: a
// logged access replayed on a restored client consumes the identical
// physical slots.
func TestReplayReadProducesSameSlots(t *testing.T) {
	seq, store, _ := buildWorkload(t, 27)
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	// Original access on the live client ("the epoch that will crash").
	plan, _, err := seq.ORAM().PlanRead("k3")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cached() {
		t.Skip("key landed in stash; no physical read to replay")
	}
	loggedLeaf := plan.Leaf
	loggedSlots := plan.LogSlots()

	// Crash: restore from the snapshot and replay the logged access.
	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), st)
	if err != nil {
		t.Fatal(err)
	}
	replayPlan, _, err := restored.ReplayRead("k3", loggedLeaf, loggedSlots)
	if err != nil {
		t.Fatal(err)
	}
	if replayPlan.Leaf != loggedLeaf {
		t.Fatalf("replay leaf %d, logged %d", replayPlan.Leaf, loggedLeaf)
	}
	got := replayPlan.LogSlots()
	for i := range loggedSlots {
		if got[i] != loggedSlots[i] {
			t.Fatalf("replay slot %d = %d, logged %d", i, got[i], loggedSlots[i])
		}
		if replayPlan.Reads[i].Bucket != plan.Reads[i].Bucket {
			t.Fatalf("replay bucket %d = %d, logged %d", i, replayPlan.Reads[i].Bucket, plan.Reads[i].Bucket)
		}
	}
	// Completing the replayed access yields the key's value.
	store.mu.Lock()
	store.readSince = make(map[int]map[int]bool)
	store.mu.Unlock()
	data := make([][]byte, len(replayPlan.Reads))
	for i, r := range replayPlan.Reads {
		d, err := store.ReadSlot(r.Bucket, r.Slot)
		if err != nil {
			t.Fatal(err)
		}
		data[i] = d
	}
	v, found, err := restored.CompleteAccess(replayPlan, data)
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(v) == 0 {
		t.Fatalf("replayed read lost the value: %q %v", v, found)
	}
}

func TestReplayRejectsDivergence(t *testing.T) {
	seq, _, _ := buildWorkload(t, 28)
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), st)
	if err != nil {
		t.Fatal(err)
	}
	geo := restored.Geometry()
	// Wrong number of slots.
	if _, _, err := restored.ReplayRead("", 0, make([]int, geo.Levels+5)); err == nil {
		t.Fatal("wrong slot count accepted")
	}
	// Out-of-range slot index.
	bad := make([]int, geo.Levels+1)
	for i := range bad {
		bad[i] = geo.SlotsPer + 10
	}
	if _, _, err := restored.ReplayRead("", 0, bad); err == nil {
		t.Fatal("out-of-range slots accepted")
	}
}

func TestReplayEvictMatchesLogged(t *testing.T) {
	seq, _, _ := buildWorkload(t, 29)
	st, err := seq.ORAM().Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	// Live eviction to log.
	plan, err := seq.ORAM().PlanEvict()
	if err != nil {
		t.Fatal(err)
	}
	logged := plan.LogSlots()

	restored, err := NewFromState(cryptoutil.KeyFromSeed([]byte("state")), seq.ORAM().Params(), st)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := restored.ReplayEvict(logged)
	if err != nil {
		t.Fatal(err)
	}
	got := replay.LogSlots()
	if len(got) != len(logged) {
		t.Fatalf("replay read %d buckets, logged %d", len(got), len(logged))
	}
	for i := range logged {
		if len(got[i]) != len(logged[i]) {
			t.Fatalf("bucket %d: replay %d slots, logged %d", i, len(got[i]), len(logged[i]))
		}
		want := make(map[int]bool)
		for _, s := range logged[i] {
			want[s] = true
		}
		for _, s := range got[i] {
			if !want[s] {
				t.Fatalf("bucket %d: replay read slot %d not in log %v", i, s, logged[i])
			}
		}
	}
	_, e0 := seq.ORAM().Counters()
	_, e1 := restored.Counters()
	if e0 != e1 {
		t.Fatalf("eviction counters diverged: %d vs %d", e0, e1)
	}
}

func TestSnapshotWithPendingFails(t *testing.T) {
	seq, _, _ := buildWorkload(t, 30)
	plan, _, err := seq.ORAM().PlanRead("k1")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Cached() {
		// Mid-flight: a pending stash entry exists.
		if _, err := seq.ORAM().Snapshot(true); err == nil {
			t.Fatal("snapshot with pending entries accepted")
		}
		// Finish the access to restore a clean state.
		if _, _, err := seq.runAccess(plan); err != nil {
			t.Fatal(err)
		}
	}
}
