package ringoram

import (
	"encoding/binary"
	"fmt"

	"obladi/internal/cryptoutil"
)

// Slot plaintext layout (fixed size so all slots are indistinguishable):
//
//	kind(u8) | keyLen(u16) | key[KeySize] | valLen(u32) | value[ValueSize]
//
// kind distinguishes dummy filler, an occupied real slot, an empty real slot,
// and a tombstone (a deleted key that still occupies its position-map entry).
const (
	slotDummy     = 0
	slotReal      = 1
	slotEmptyReal = 2
	slotTombstone = 3
)

type codec struct {
	keySize   int
	valueSize int
	key       cryptoutil.Sealer // nil when encryption is disabled
}

// plainSize is the fixed plaintext slot size.
func (c codec) plainSize() int { return 1 + 2 + c.keySize + 4 + c.valueSize }

// slotSize is the on-server physical slot size.
func (c codec) slotSize() int {
	if c.key == nil {
		return c.plainSize()
	}
	return c.key.SealedSize(c.plainSize())
}

// block is a slot's logical content. Encoding reads key; decoding fills keyB
// instead — a view into the decode buffer — because the hot path only ever
// COMPARES the decoded key against the one it planned for (`string(keyB) ==
// want` compiles to an allocation-free comparison), and materializing a
// string per decoded slot was a measurable share of the read path's budget.
type block struct {
	key       string // encode input
	keyB      []byte // decode output; aliases the decode buffer
	value     []byte
	tombstone bool
}

// encodeSlotTo serializes a slot into the plain scratch buffer (cap >=
// plainSize, reused across calls) and appends the sealed frame to dst,
// returning the extended slice. With pre-sized dst and scratch the only
// allocation is none: the hot seal path writes straight into bucket arenas.
// binding authenticates the slot's location and bucket version (Appendix A).
func (c codec) encodeSlotTo(dst []byte, kind byte, b block, binding, plain []byte) ([]byte, error) {
	if len(b.key) > c.keySize {
		return nil, fmt.Errorf("ringoram: key of %d bytes exceeds KeySize %d", len(b.key), c.keySize)
	}
	if len(b.value) > c.valueSize {
		return nil, fmt.Errorf("ringoram: value of %d bytes exceeds ValueSize %d", len(b.value), c.valueSize)
	}
	plain = plain[:c.plainSize()]
	clear(plain)
	plain[0] = kind
	binary.BigEndian.PutUint16(plain[1:3], uint16(len(b.key)))
	copy(plain[3:3+c.keySize], b.key)
	off := 3 + c.keySize
	binary.BigEndian.PutUint32(plain[off:off+4], uint32(len(b.value)))
	copy(plain[off+4:], b.value)
	if c.key == nil {
		return append(dst, plain...), nil
	}
	return c.key.SealTo(dst, plain, binding)
}

// encodeSlot produces the sealed physical representation of a slot in a fresh
// buffer (cold paths and tests; the executor hot path uses encodeSlotTo).
func (c codec) encodeSlot(kind byte, b block, binding []byte) ([]byte, error) {
	return c.encodeSlotTo(make([]byte, 0, c.slotSize()), kind, b, binding, make([]byte, c.plainSize()))
}

// encodeDummy produces a filler slot indistinguishable from a real one.
func (c codec) encodeDummy(binding []byte) ([]byte, error) {
	return c.encodeSlot(slotDummy, block{}, binding)
}

// decodeSlotInto parses a physical slot, decrypting into the scratch buffer
// (cap >= plainSize, reused across calls). It returns the slot kind and, for
// real or tombstone slots, the decoded block. The returned block's value
// ALIASES the decode buffer (the scratch, or data itself when encryption is
// off) and is only valid until the next decode: a caller that retains it must
// copy it out first — the ORAM hot path copies into its stash value arena,
// turning what used to be one heap allocation per decoded slot into a bump
// of a recycled slab.
func (c codec) decodeSlotInto(scratch, data, binding []byte) (byte, block, error) {
	plain := data
	if c.key != nil {
		var err error
		plain, err = c.key.OpenTo(scratch[:0], data, binding)
		if err != nil {
			return 0, block{}, err
		}
	}
	if len(plain) != c.plainSize() {
		return 0, block{}, fmt.Errorf("ringoram: slot of %d bytes, want %d", len(plain), c.plainSize())
	}
	kind := plain[0]
	switch kind {
	case slotDummy, slotEmptyReal:
		return kind, block{}, nil
	case slotReal, slotTombstone:
	default:
		return 0, block{}, fmt.Errorf("ringoram: unknown slot kind %d", kind)
	}
	keyLen := int(binary.BigEndian.Uint16(plain[1:3]))
	if keyLen > c.keySize {
		return 0, block{}, fmt.Errorf("ringoram: corrupt key length %d", keyLen)
	}
	off := 3 + c.keySize
	valLen := int(binary.BigEndian.Uint32(plain[off : off+4]))
	if valLen > c.valueSize {
		return 0, block{}, fmt.Errorf("ringoram: corrupt value length %d", valLen)
	}
	b := block{
		keyB:      plain[3 : 3+keyLen],
		value:     plain[off+4 : off+4+valLen],
		tombstone: kind == slotTombstone,
	}
	return kind, b, nil
}

// decodeSlot parses a physical slot with a fresh scratch buffer.
func (c codec) decodeSlot(data, binding []byte) (byte, block, error) {
	return c.decodeSlotInto(make([]byte, 0, c.plainSize()), data, binding)
}
