package ringoram

import (
	"encoding/binary"
	"fmt"

	"obladi/internal/cryptoutil"
)

// Slot plaintext layout (fixed size so all slots are indistinguishable):
//
//	kind(u8) | keyLen(u16) | key[KeySize] | valLen(u32) | value[ValueSize]
//
// kind distinguishes dummy filler, an occupied real slot, an empty real slot,
// and a tombstone (a deleted key that still occupies its position-map entry).
const (
	slotDummy     = 0
	slotReal      = 1
	slotEmptyReal = 2
	slotTombstone = 3
)

type codec struct {
	keySize   int
	valueSize int
	key       *cryptoutil.Key // nil when encryption is disabled
}

// plainSize is the fixed plaintext slot size.
func (c codec) plainSize() int { return 1 + 2 + c.keySize + 4 + c.valueSize }

// slotSize is the on-server physical slot size.
func (c codec) slotSize() int {
	if c.key == nil {
		return c.plainSize()
	}
	return cryptoutil.SealedSize(c.plainSize())
}

// block is a decoded real slot.
type block struct {
	key       string
	value     []byte
	tombstone bool
}

// encodeSlot produces the sealed physical representation of a slot.
// binding authenticates the slot's location and bucket version (Appendix A).
func (c codec) encodeSlot(kind byte, b block, binding []byte) ([]byte, error) {
	if len(b.key) > c.keySize {
		return nil, fmt.Errorf("ringoram: key of %d bytes exceeds KeySize %d", len(b.key), c.keySize)
	}
	if len(b.value) > c.valueSize {
		return nil, fmt.Errorf("ringoram: value of %d bytes exceeds ValueSize %d", len(b.value), c.valueSize)
	}
	plain := make([]byte, c.plainSize())
	plain[0] = kind
	binary.BigEndian.PutUint16(plain[1:3], uint16(len(b.key)))
	copy(plain[3:3+c.keySize], b.key)
	off := 3 + c.keySize
	binary.BigEndian.PutUint32(plain[off:off+4], uint32(len(b.value)))
	copy(plain[off+4:], b.value)
	if c.key == nil {
		return plain, nil
	}
	return c.key.Seal(plain, binding)
}

// encodeDummy produces a filler slot indistinguishable from a real one.
func (c codec) encodeDummy(binding []byte) ([]byte, error) {
	return c.encodeSlot(slotDummy, block{}, binding)
}

// decodeSlot parses a physical slot. It returns the slot kind and, for real
// or tombstone slots, the decoded block.
func (c codec) decodeSlot(data, binding []byte) (byte, block, error) {
	plain := data
	if c.key != nil {
		var err error
		plain, err = c.key.Open(data, binding)
		if err != nil {
			return 0, block{}, err
		}
	}
	if len(plain) != c.plainSize() {
		return 0, block{}, fmt.Errorf("ringoram: slot of %d bytes, want %d", len(plain), c.plainSize())
	}
	kind := plain[0]
	switch kind {
	case slotDummy, slotEmptyReal:
		return kind, block{}, nil
	case slotReal, slotTombstone:
	default:
		return 0, block{}, fmt.Errorf("ringoram: unknown slot kind %d", kind)
	}
	keyLen := int(binary.BigEndian.Uint16(plain[1:3]))
	if keyLen > c.keySize {
		return 0, block{}, fmt.Errorf("ringoram: corrupt key length %d", keyLen)
	}
	off := 3 + c.keySize
	valLen := int(binary.BigEndian.Uint32(plain[off : off+4]))
	if valLen > c.valueSize {
		return 0, block{}, fmt.Errorf("ringoram: corrupt value length %d", valLen)
	}
	b := block{
		key:       string(plain[3 : 3+keyLen]),
		value:     append([]byte(nil), plain[off+4:off+4+valLen]...),
		tombstone: kind == slotTombstone,
	}
	return kind, b, nil
}
