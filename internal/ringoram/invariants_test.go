package ringoram

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"obladi/internal/cryptoutil"
)

// checkPathInvariant verifies that every allocated key is either in the
// stash or in some bucket on the path from the root to its assigned leaf.
func checkPathInvariant(t *testing.T, o *ORAM) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	for key, leaf := range o.pos {
		if _, inStash := o.stash[key]; inStash {
			continue
		}
		l, inTree := o.loc[key]
		if !inTree {
			t.Fatalf("key %q neither in stash nor in tree", key)
		}
		onPath := false
		for lvl := 0; lvl <= o.geo.Levels; lvl++ {
			if o.geo.pathBucket(leaf, lvl) == l.bucket {
				onPath = true
				break
			}
		}
		if !onPath {
			t.Fatalf("key %q (leaf %d) resides in bucket %d, off its path", key, leaf, l.bucket)
		}
		if got := o.meta[l.bucket].addrs[l.pos]; got != key {
			t.Fatalf("loc index says bucket %d pos %d holds %q, metadata says %q", l.bucket, l.pos, key, got)
		}
	}
}

// checkMetaConsistency verifies structural invariants of the bucket
// metadata: occupied real slots are valid, and the loc index is exactly the
// set of occupied addresses.
func checkMetaConsistency(t *testing.T, o *ORAM) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	occupied := 0
	for b := range o.meta {
		m := &o.meta[b]
		for r, key := range m.addrs {
			if key == "" {
				continue
			}
			occupied++
			if !m.valid[m.perm[r]] {
				t.Fatalf("bucket %d: occupied real slot for %q is invalid", b, key)
			}
			if l, ok := o.loc[key]; !ok || l.bucket != b || l.pos != r {
				t.Fatalf("loc index out of sync for %q", key)
			}
		}
	}
	if occupied != len(o.loc) {
		t.Fatalf("loc index has %d entries, metadata has %d occupied slots", len(o.loc), occupied)
	}
	for key := range o.stash {
		if _, dup := o.loc[key]; dup {
			t.Fatalf("key %q both in stash and tree", key)
		}
	}
}

// randomOps drives a Seq with a random workload checked against a map
// oracle, then verifies all invariants.
func runRandomWorkload(t *testing.T, seed uint64, numKeys, ops int) {
	t.Helper()
	p := testParams(numKeys)
	p.Seed = seed
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("prop")), p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, seed+1))
	oracle := make(map[string]string)
	deleted := make(map[string]bool)
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key-%d", rng.IntN(numKeys))
		switch rng.IntN(10) {
		case 0, 1, 2, 3: // write
			v := fmt.Sprintf("val-%d", i)
			must(t, seq.Write(k, []byte(v)))
			oracle[k] = v
			delete(deleted, k)
		case 4: // delete
			must(t, seq.Delete(k))
			delete(oracle, k)
			deleted[k] = true
		default: // read
			v, found, err := seq.Read(k)
			if err != nil {
				t.Fatalf("op %d read %s: %v", i, k, err)
			}
			want, exists := oracle[k]
			if exists != found {
				t.Fatalf("op %d: %s found=%v, oracle exists=%v (deleted=%v)", i, k, found, exists, deleted[k])
			}
			if exists && string(v) != want {
				t.Fatalf("op %d: %s = %q, want %q", i, k, v, want)
			}
		}
	}
	if store.violation != nil {
		t.Fatalf("bucket invariant: %v", store.violation)
	}
	checkPathInvariant(t, seq.ORAM())
	checkMetaConsistency(t, seq.ORAM())
	if limit := seq.ORAM().Params().StashLimit; seq.ORAM().StashPeak() > limit {
		t.Fatalf("stash peak %d exceeds limit %d", seq.ORAM().StashPeak(), limit)
	}
}

func TestPropertyRandomWorkloads(t *testing.T) {
	f := func(seed uint64) bool {
		runRandomWorkload(t, seed|1, 32, 300)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLargerTree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runRandomWorkload(t, 99, 200, 1500)
}

func TestPropertyRemapChangesLeaf(t *testing.T) {
	// Over many accesses of one key, the assigned leaf must take many
	// distinct values (each access remaps uniformly).
	p := testParams(64)
	p.Seed = 5
	seq, _ := newTestSeq(t, p)
	must(t, seq.Write("k", []byte("v")))
	leaves := make(map[int]bool)
	for i := 0; i < 64; i++ {
		if _, _, err := seq.Read("k"); err != nil {
			t.Fatal(err)
		}
		seq.ORAM().mu.Lock()
		leaves[seq.ORAM().pos["k"]] = true
		seq.ORAM().mu.Unlock()
	}
	geo := seq.ORAM().Geometry()
	// 64 samples over 16 leaves: expect nearly all leaves hit; require > half.
	if len(leaves) <= geo.Leaves/2 {
		t.Fatalf("remapping visited only %d of %d leaves over 64 accesses", len(leaves), geo.Leaves)
	}
}

func TestPropertyPathReadDistributionUniform(t *testing.T) {
	// The leaves of the paths read from storage must be uniformly
	// distributed regardless of the (skewed) workload: accesses to a single
	// hot key must look like random path reads. Chi-square test at a very
	// generous threshold.
	p := testParams(64)
	p.Seed = 11
	store := newMapStore()
	seq, err := NewSeq(store, cryptoutil.KeyFromSeed([]byte("uni")), p)
	if err != nil {
		t.Fatal(err)
	}
	must(t, seq.Write("hot", []byte("v")))
	geo := seq.ORAM().Geometry()
	counts := make([]int, geo.Leaves)
	const samples = 3200
	for i := 0; i < samples; i++ {
		plan, due, err := seq.ORAM().PlanRead("hot")
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cached() {
			// The proxy pads batches: a cache-served request is replaced by
			// a dummy path read, which is what the adversary observes.
			if _, _, err := seq.runAccess(plan); err != nil {
				t.Fatal(err)
			}
			plan, due, err = seq.ORAM().PlanDummyRead()
			if err != nil {
				t.Fatal(err)
			}
		}
		counts[plan.Leaf]++
		if _, _, err := seq.runAccess(plan); err != nil {
			t.Fatal(err)
		}
		must(t, seq.maintain(due))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < samples/2 {
		t.Fatalf("only %d of %d accesses hit storage", total, samples)
	}
	expected := float64(total) / float64(geo.Leaves)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.99th percentile is ~44.3. Anything near
	// uniform passes easily; a skewed distribution fails by miles.
	if chi2 > 60 {
		t.Fatalf("path distribution not uniform: chi2 = %.1f over %d leaves (counts %v)", chi2, geo.Leaves, counts)
	}
}

func TestPropertyStashBoundedUnderHotspot(t *testing.T) {
	// Repeatedly writing a few hot keys must not grow the stash: eviction
	// keeps it bounded.
	p := testParams(64)
	p.Seed = 3
	seq, _ := newTestSeq(t, p)
	for i := 0; i < 2000; i++ {
		must(t, seq.Write(fmt.Sprintf("hot-%d", i%4), []byte(fmt.Sprintf("v%d", i))))
	}
	if peak := seq.ORAM().StashPeak(); peak > 16 {
		t.Fatalf("stash peak %d under a 4-key workload", peak)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	c := codec{keySize: 32, valueSize: 64, key: cryptoutil.KeyFromSeed([]byte("codec"))}
	f := func(rawKey []byte, value []byte, tomb bool) bool {
		if len(rawKey) > 32 {
			rawKey = rawKey[:32]
		}
		if len(rawKey) == 0 {
			rawKey = []byte("k")
		}
		if len(value) > 64 {
			value = value[:64]
		}
		kind := byte(slotReal)
		if tomb {
			kind = slotTombstone
		}
		binding := cryptoutil.Binding(1, 2, 3)
		enc, err := c.encodeSlot(kind, block{key: string(rawKey), value: value, tombstone: tomb}, binding)
		if err != nil {
			return false
		}
		if len(enc) != c.slotSize() {
			return false
		}
		gotKind, blk, err := c.decodeSlot(enc, binding)
		if err != nil || gotKind != kind {
			return false
		}
		return string(blk.keyB) == string(rawKey) && string(blk.value) == string(value) && blk.tombstone == tomb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecDummyIndistinguishableSize(t *testing.T) {
	c := codec{keySize: 16, valueSize: 32, key: cryptoutil.KeyFromSeed([]byte("d"))}
	binding := cryptoutil.Binding(0, 1, 0)
	d, err := c.encodeDummy(binding)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.encodeSlot(slotReal, block{key: "k", value: []byte("v")}, binding)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != len(r) {
		t.Fatalf("dummy slot %d bytes, real slot %d bytes", len(d), len(r))
	}
}

func TestCodecRejectsWrongBinding(t *testing.T) {
	c := codec{keySize: 16, valueSize: 32, key: cryptoutil.KeyFromSeed([]byte("b"))}
	enc, err := c.encodeSlot(slotReal, block{key: "k", value: []byte("v")}, cryptoutil.Binding(3, 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.decodeSlot(enc, cryptoutil.Binding(3, 8, 0)); err == nil {
		t.Fatal("stale bucket version accepted")
	}
}
