// Package enginetest builds the three engines (Obladi, NoPriv, 2PL) in
// test-friendly configurations so workload packages can run their logic and
// invariants against every engine.
package enginetest

import (
	"time"

	"obladi/internal/baseline"
	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/kvtxn"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Engine is a named engine under test.
type Engine struct {
	Name string
	DB   kvtxn.DB
	// Checker is non-nil for Obladi: the bucket-invariant watchdog.
	Checker *storage.InvariantChecker
}

// ObladiOptions tunes the Obladi engine for workload tests.
type ObladiOptions struct {
	NumBlocks      int
	ValueSize      int
	ReadBatches    int
	ReadBatchSize  int
	WriteBatchSize int
	Durability     bool
	Seed           uint64
}

// NewObladi builds an auto-mode Obladi engine over checked memory storage.
func NewObladi(opt ObladiOptions) (Engine, error) {
	if opt.NumBlocks == 0 {
		opt.NumBlocks = 4096
	}
	if opt.ValueSize == 0 {
		opt.ValueSize = 256
	}
	if opt.ReadBatches == 0 {
		opt.ReadBatches = 8
	}
	if opt.ReadBatchSize == 0 {
		opt.ReadBatchSize = 32
	}
	if opt.WriteBatchSize == 0 {
		opt.WriteBatchSize = 64
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	cfg := core.Config{
		Params: ringoram.Params{
			NumBlocks: opt.NumBlocks,
			Z:         8,
			S:         12,
			A:         8,
			KeySize:   48,
			ValueSize: opt.ValueSize,
			Seed:      opt.Seed,
		},
		Key:               cryptoutil.KeyFromSeed([]byte("enginetest")),
		ReadBatches:       opt.ReadBatches,
		ReadBatchSize:     opt.ReadBatchSize,
		WriteBatchSize:    opt.WriteBatchSize,
		BatchInterval:     300 * time.Microsecond,
		EagerBatches:      true,
		DisableDurability: !opt.Durability,
	}
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	p, err := core.New(checker, cfg)
	if err != nil {
		return Engine{}, err
	}
	return Engine{Name: "obladi", DB: kvtxn.ProxyDB{P: p}, Checker: checker}, nil
}

// Baselines returns the NoPriv and 2PL engines over memory storage.
func Baselines() []Engine {
	return []Engine{
		{Name: "nopriv", DB: baseline.NewNoPriv(storage.NewMemBackend(0))},
		{Name: "twopl", DB: baseline.NewTwoPL(storage.NewMemBackend(0))},
	}
}
