// Package enginetest builds the three engines (Obladi, NoPriv, 2PL) in
// test-friendly configurations so workload packages can run their logic and
// invariants against every engine.
package enginetest

import (
	"fmt"
	"time"

	"obladi/internal/baseline"
	"obladi/internal/clientproto"
	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/kvtxn"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Engine is a named engine under test.
type Engine struct {
	Name string
	DB   kvtxn.DB
	// Checkers holds the bucket-invariant watchdog of every Obladi shard
	// (empty for baselines); consult them through Violation.
	Checkers []*storage.InvariantChecker
}

// Violation reports the first bucket-invariant violation on any shard. It is
// safe (and a no-op) on baseline engines, which have no checkers.
func (e Engine) Violation() error {
	for _, c := range e.Checkers {
		if v := c.Violation(); v != nil {
			return v
		}
	}
	return nil
}

// ObladiOptions tunes the Obladi engine for workload tests.
type ObladiOptions struct {
	NumBlocks      int // per-shard ORAM capacity
	Shards         int // key-space partitions (default 1)
	ValueSize      int
	ReadBatches    int
	ReadBatchSize  int
	WriteBatchSize int
	Durability     bool
	Seed           uint64
}

// NewObladi builds an auto-mode Obladi engine over checked memory storage.
func NewObladi(opt ObladiOptions) (Engine, error) {
	if opt.NumBlocks == 0 {
		opt.NumBlocks = 4096
	}
	if opt.ValueSize == 0 {
		opt.ValueSize = 256
	}
	if opt.ReadBatches == 0 {
		opt.ReadBatches = 8
	}
	if opt.ReadBatchSize == 0 {
		opt.ReadBatchSize = 32
	}
	if opt.WriteBatchSize == 0 {
		opt.WriteBatchSize = 64
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Shards == 0 {
		opt.Shards = 1
	}
	cfg := core.Config{
		Params: ringoram.Params{
			NumBlocks: opt.NumBlocks,
			Z:         8,
			S:         12,
			A:         8,
			KeySize:   48,
			ValueSize: opt.ValueSize,
			Seed:      opt.Seed,
		},
		Key:               cryptoutil.KeyFromSeed([]byte("enginetest")),
		ReadBatches:       opt.ReadBatches,
		ReadBatchSize:     opt.ReadBatchSize,
		WriteBatchSize:    opt.WriteBatchSize,
		BatchInterval:     300 * time.Microsecond,
		EagerBatches:      true,
		DisableDurability: !opt.Durability,
	}
	stores := make([]storage.Backend, opt.Shards)
	checkers := make([]*storage.InvariantChecker, opt.Shards)
	for i := range stores {
		checkers[i] = storage.NewInvariantChecker(storage.NewMemBackend(cfg.Params.Geometry().NumBuckets))
		stores[i] = checkers[i]
	}
	p, err := core.NewSharded(stores, cfg)
	if err != nil {
		return Engine{}, err
	}
	name := "obladi"
	if opt.Shards > 1 {
		name = fmt.Sprintf("obladi-%dshard", opt.Shards)
	}
	return Engine{Name: name, DB: kvtxn.ProxyDB{P: p}, Checkers: checkers}, nil
}

// NewObladiMux builds an Obladi engine served over loopback TCP through the
// client protocol server and reached with the multiplexed v2 client — the
// full wire stack a remote application sees. Closing the engine's DB closes
// the client, the server, and the underlying proxy.
func NewObladiMux(opt ObladiOptions) (Engine, error) {
	eng, err := NewObladi(opt)
	if err != nil {
		return Engine{}, err
	}
	srv, err := clientproto.NewServer(eng.DB, "127.0.0.1:0")
	if err != nil {
		eng.DB.Close()
		return Engine{}, err
	}
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		srv.Close()
		eng.DB.Close()
		return Engine{}, err
	}
	return Engine{
		Name:     eng.Name + "-mux",
		DB:       wireDB{client: clientproto.MuxDB{C: mc}, srv: srv, engine: eng.DB},
		Checkers: eng.Checkers,
	}, nil
}

// wireDB chains a wire client over a protocol server over an engine,
// closing all three in order.
type wireDB struct {
	client kvtxn.DB
	srv    *clientproto.Server
	engine kvtxn.DB
}

func (w wireDB) Begin() kvtxn.Txn { return w.client.Begin() }

func (w wireDB) Close() error {
	err := w.client.Close()
	if serr := w.srv.Close(); err == nil {
		err = serr
	}
	if eerr := w.engine.Close(); err == nil {
		err = eerr
	}
	return err
}

// Baselines returns the NoPriv and 2PL engines over memory storage.
func Baselines() []Engine {
	return []Engine{
		{Name: "nopriv", DB: baseline.NewNoPriv(storage.NewMemBackend(0))},
		{Name: "twopl", DB: baseline.NewTwoPL(storage.NewMemBackend(0))},
	}
}
