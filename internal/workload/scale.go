package workload

// The scale harness: drive very many (100k+) concurrent sessions against a
// set of kvtxn.DB handles and measure what overload actually does — offered
// versus committed throughput, committed-transaction latency percentiles,
// and the shed rate. Sessions are open-loop by default (each issues
// transactions on its own exponential clock, whether or not the system keeps
// up), which is the load model that exposes saturation honestly: a
// closed-loop driver self-throttles and hides the overload it was meant to
// create. Sheds are recorded, not retried — the point is to measure the
// shed rate at a given offered load, and a retrying session would convert
// sheds into added offered load and skew the sweep.
//
// The harness takes kvtxn.DB handles rather than dialing connections itself
// so it stays layering-neutral: benchmarks hand it MuxDB/FailoverDB wire
// handles (sessions spread round-robin across connections), unit tests hand
// it an embedded engine.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"obladi/internal/core"
	"obladi/internal/kvtxn"
)

// ScaleConfig drives one RunScale measurement.
type ScaleConfig struct {
	// DBs are the transaction handles sessions are spread over,
	// round-robin. With wire handles, each is one mux connection carrying
	// Sessions/len(DBs) concurrent sessions. Required.
	DBs []kvtxn.DB
	// Sessions is the concurrent session count. Required.
	Sessions int
	// Duration is the measurement window. Required.
	Duration time.Duration
	// Mix chooses keys and the read/write split. Required.
	Mix *Mix
	// Pace is the mean per-session gap between transactions, drawn
	// exponentially (a Poisson session). Offered load ≈ Sessions/Pace.
	// Zero runs closed-loop: every session issues back-to-back
	// transactions, measuring capacity rather than a fixed offered load.
	Pace time.Duration
	// OpsPerTxn is the operation count per transaction (default 2).
	OpsPerTxn int
	// Seed makes key choice and pacing deterministic.
	Seed uint64
}

// ScaleResult is one RunScale measurement.
type ScaleResult struct {
	Sessions int
	Elapsed  time.Duration
	// Attempted counts transactions issued; OfferedRate is their rate.
	Attempted int
	// Committed transactions, with their latency distribution.
	Committed      int
	P50, P99, PMax time.Duration
	// Shed counts transactions refused by overload control (ErrShed);
	// Aborted counts ordinary retryable aborts (conflicts, epoch ends).
	Shed    int
	Aborted int
	// OtherErrs counts everything else; FirstOtherErr samples one. A
	// non-zero count usually means the harness or stack is broken, not
	// overloaded.
	OtherErrs     int
	FirstOtherErr error
}

// OfferedRate is the attempted-transaction rate in txns/s.
func (r ScaleResult) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Attempted) / r.Elapsed.Seconds()
}

// CommitRate is the committed-transaction rate in txns/s.
func (r ScaleResult) CommitRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of attempted transactions that were shed.
func (r ScaleResult) ShedRate() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Attempted)
}

// sessionStats is one session goroutine's private tally, merged after the
// run; 100k sessions contending on one shared mutex per transaction would
// measure the harness, not the system.
type sessionStats struct {
	attempted int
	committed int
	shed      int
	aborted   int
	other     int
	firstErr  error
	latencies []time.Duration
}

// RunScale runs the configured sessions for the window and merges their
// tallies. It returns an error only for a misconfiguration; stack errors
// during the run land in OtherErrs so a sweep completes and reports them.
func RunScale(cfg ScaleConfig) (ScaleResult, error) {
	if len(cfg.DBs) == 0 || cfg.Sessions <= 0 || cfg.Duration <= 0 || cfg.Mix == nil {
		return ScaleResult{}, errors.New("workload: ScaleConfig needs DBs, Sessions, Duration and Mix")
	}
	if cfg.OpsPerTxn <= 0 {
		cfg.OpsPerTxn = 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	stats := make([]sessionStats, cfg.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runSession(ctx, cfg, i, &stats[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := ScaleResult{Sessions: cfg.Sessions, Elapsed: elapsed}
	var all []time.Duration
	for i := range stats {
		s := &stats[i]
		res.Attempted += s.attempted
		res.Committed += s.committed
		res.Shed += s.shed
		res.Aborted += s.aborted
		res.OtherErrs += s.other
		if res.FirstOtherErr == nil {
			res.FirstOtherErr = s.firstErr
		}
		all = append(all, s.latencies...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)*50/100]
		res.P99 = all[len(all)*99/100]
		res.PMax = all[len(all)-1]
	}
	return res, nil
}

// runSession is one session's life: pace, run a transaction, tally.
func runSession(ctx context.Context, cfg ScaleConfig, i int, st *sessionStats) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(i)+1))
	db := cfg.DBs[i%len(cfg.DBs)]
	// Desynchronize session clocks: an initial uniform phase in [0, Pace)
	// turns simultaneous start-up into a steady Poisson stream.
	if cfg.Pace > 0 {
		if !sleepCtx(ctx, time.Duration(rng.Float64()*float64(cfg.Pace))) {
			return
		}
	}
	for ctx.Err() == nil {
		st.attempted++
		lat, err := runScaleTxn(ctx, db, cfg, rng)
		switch {
		case err == nil:
			st.committed++
			st.latencies = append(st.latencies, lat)
		case errors.Is(err, core.ErrShed):
			st.shed++
		case errors.Is(err, kvtxn.ErrAborted):
			st.aborted++
		case ctx.Err() != nil:
			// The window closed mid-transaction; not an error of interest.
			return
		default:
			st.other++
			if st.firstErr == nil {
				st.firstErr = err
			}
		}
		if cfg.Pace > 0 {
			gap := time.Duration(rng.ExpFloat64() * float64(cfg.Pace))
			if !sleepCtx(ctx, gap) {
				return
			}
		}
	}
}

// runScaleTxn executes one transaction of the configured shape and returns
// its latency on commit.
func runScaleTxn(ctx context.Context, db kvtxn.DB, cfg ScaleConfig, rng *rand.Rand) (time.Duration, error) {
	start := time.Now()
	var tx kvtxn.Txn
	if cdb, ok := db.(kvtxn.CtxDB); ok {
		tx = cdb.BeginCtx(ctx)
	} else {
		tx = db.Begin()
	}
	for o := 0; o < cfg.OpsPerTxn; o++ {
		op := cfg.Mix.Next(rng)
		var err error
		if op.Kind == OpRead {
			_, _, err = tx.Read(op.Key)
		} else {
			err = tx.Write(op.Key, []byte(fmt.Sprintf("v%d", rng.IntN(1000))))
		}
		if err != nil {
			tx.Abort()
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// sleepCtx sleeps d or until ctx is done; it reports whether the full sleep
// happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
