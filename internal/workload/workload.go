// Package workload provides YCSB-style workload generation for the
// microbenchmarks: key choosers (uniform, zipfian, latest) and operation
// mixes. The application benchmarks (TPC-C, SmallBank, FreeHealth) live in
// their own packages.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Chooser selects keys from [0, n).
type Chooser interface {
	Next(rng *rand.Rand) int
	N() int
}

// Uniform selects keys uniformly.
type Uniform struct {
	n int
}

// NewUniform creates a uniform chooser over n keys.
func NewUniform(n int) *Uniform {
	if n <= 0 {
		panic("workload: non-positive key count")
	}
	return &Uniform{n: n}
}

// Next implements Chooser.
func (u *Uniform) Next(rng *rand.Rand) int { return rng.IntN(u.n) }

// N implements Chooser.
func (u *Uniform) N() int { return u.n }

// Zipfian selects keys with a zipfian distribution using the Gray et al.
// "quick and dirty" algorithm, as popularized by YCSB. Item 0 is the
// hottest.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian creates a zipfian chooser over n keys with the given skew
// (YCSB default 0.99).
func NewZipfian(n int, theta float64) *Zipfian {
	if n <= 0 {
		panic("workload: non-positive key count")
	}
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Chooser.
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N implements Chooser.
func (z *Zipfian) N() int { return z.n }

// OpKind is a microbenchmark operation type.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  string
}

// Mix generates an operation stream with a fixed read fraction.
type Mix struct {
	chooser   Oracle
	readFrac  float64
	keyPrefix string
}

// Oracle abstracts Chooser for testing.
type Oracle interface {
	Next(rng *rand.Rand) int
	N() int
}

// NewMix creates a generator: readFrac in [0,1], keys named
// "<prefix><index>".
func NewMix(c Oracle, readFrac float64, prefix string) *Mix {
	return &Mix{chooser: c, readFrac: readFrac, keyPrefix: prefix}
}

// Next generates one operation.
func (m *Mix) Next(rng *rand.Rand) Op {
	op := Op{Key: m.Key(m.chooser.Next(rng))}
	if rng.Float64() >= m.readFrac {
		op.Kind = OpWrite
	}
	return op
}

// Key formats the i-th key.
func (m *Mix) Key(i int) string {
	return fmt.Sprintf("%s%08d", m.keyPrefix, i)
}

// Keys returns all n key names (for preloading).
func (m *Mix) Keys() []string {
	out := make([]string, m.chooser.N())
	for i := range out {
		out[i] = m.Key(i)
	}
	return out
}
