package workload_test

import (
	"testing"
	"time"

	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
	"obladi/internal/workload"
)

// TestRunScaleEmbedded sanity-checks the harness over an embedded engine:
// tallies add up, committed work happens, and with a tight slot budget the
// shed column is populated rather than everything hanging on queues.
func TestRunScaleEmbedded(t *testing.T) {
	eng, err := enginetest.NewObladi(enginetest.ObladiOptions{
		NumBlocks:     512,
		ValueSize:     64,
		ReadBatches:   2,
		ReadBatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.DB.Close()

	mix := workload.NewMix(workload.NewZipfian(256, 0.99), 0.9, "s-")
	res, err := workload.RunScale(workload.ScaleConfig{
		DBs:      []kvtxn.DB{eng.DB},
		Sessions: 64,
		Duration: 500 * time.Millisecond,
		Mix:      mix,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("closed-loop run committed nothing")
	}
	if res.Shed == 0 {
		t.Fatal("64 closed-loop sessions on an 8-slot epoch never shed")
	}
	if res.OtherErrs > 0 {
		t.Fatalf("%d unexpected errors, first: %v", res.OtherErrs, res.FirstOtherErr)
	}
	if got := res.Committed + res.Shed + res.Aborted; got > res.Attempted {
		t.Fatalf("tallies exceed attempts: %d > %d", got, res.Attempted)
	}
	if res.P99 < res.P50 || res.PMax < res.P99 {
		t.Fatalf("percentiles disordered: p50=%v p99=%v max=%v", res.P50, res.P99, res.PMax)
	}
	if v := eng.Violation(); v != nil {
		t.Error(v)
	}
}

// TestRunScalePacedOffersLoad checks the open-loop pacing: offered load
// tracks Sessions/Pace rather than system capacity.
func TestRunScalePacedOffersLoad(t *testing.T) {
	eng, err := enginetest.NewObladi(enginetest.ObladiOptions{NumBlocks: 512, ValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.DB.Close()

	mix := workload.NewMix(workload.NewUniform(256), 1.0, "p-")
	res, err := workload.RunScale(workload.ScaleConfig{
		DBs:      []kvtxn.DB{eng.DB},
		Sessions: 50,
		Duration: time.Second,
		Mix:      mix,
		Pace:     100 * time.Millisecond, // ~500 txns/s offered
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expect offered ≈ 500/s; allow a wide band (scheduling, ramp-in).
	if got := res.OfferedRate(); got < 200 || got > 900 {
		t.Fatalf("offered rate %f txns/s, want ~500", got)
	}
	if res.OtherErrs > 0 {
		t.Fatalf("%d unexpected errors, first: %v", res.OtherErrs, res.FirstOtherErr)
	}
}
