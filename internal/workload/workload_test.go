package workload

import (
	"math/rand/v2"
	"testing"
)

func TestUniformCoversRange(t *testing.T) {
	u := NewUniform(16)
	rng := rand.New(rand.NewPCG(1, 2))
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		k := u.Next(rng)
		if k < 0 || k >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform visited %d of 16 keys", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1000, 0.99)
	rng := rand.New(rand.NewPCG(3, 4))
	counts := make([]int, 1000)
	const samples = 50000
	for i := 0; i < samples; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Item 0 must be far hotter than the median item.
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("no skew: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	// Top 10% of keys should receive the majority of accesses.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if top < samples/2 {
		t.Fatalf("top decile got %d of %d accesses", top, samples)
	}
}

func TestZipfianSmallN(t *testing.T) {
	z := NewZipfian(2, 0.99)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 1000; i++ {
		if k := z.Next(rng); k < 0 || k >= 2 {
			t.Fatalf("key %d out of range for n=2", k)
		}
	}
}

func TestMixReadFraction(t *testing.T) {
	m := NewMix(NewUniform(100), 0.75, "k")
	rng := rand.New(rand.NewPCG(7, 8))
	reads := 0
	const samples = 10000
	for i := 0; i < samples; i++ {
		if m.Next(rng).Kind == OpRead {
			reads++
		}
	}
	frac := float64(reads) / samples
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("read fraction %.3f, want ~0.75", frac)
	}
}

func TestMixKeysStableAndDistinct(t *testing.T) {
	m := NewMix(NewUniform(50), 1.0, "x")
	keys := m.Keys()
	if len(keys) != 50 {
		t.Fatalf("Keys() returned %d", len(keys))
	}
	seen := make(map[string]bool)
	for i, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		if k != m.Key(i) {
			t.Fatalf("Keys()[%d] != Key(%d)", i, i)
		}
	}
}
