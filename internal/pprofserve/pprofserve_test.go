package pprofserve

import (
	"io"
	"net/http"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	addr, err := Start("")
	if err != nil || addr != "" {
		t.Fatalf("Start(\"\") = %q, %v; want \"\", nil", addr, err)
	}
}

func TestStartServesPprofIndex(t *testing.T) {
	addr, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("pprof index: empty body")
	}
}

func TestStartBadAddr(t *testing.T) {
	if _, err := Start("256.256.256.256:99999"); err == nil {
		t.Fatal("Start on invalid address: want error")
	}
}
