// Package pprofserve starts the Go runtime's pprof HTTP endpoint for the
// obladi binaries. Profiling the proxy under load is how the hot-path
// allocation budget (see DESIGN.md) is policed in practice: the CPU profile
// shows where seal/open time goes, the heap and allocs profiles show any
// per-slot allocation creeping back into the batch pipeline.
package pprofserve

import (
	"net"
	"net/http"

	// Blank import installs the /debug/pprof handlers on the default mux.
	_ "net/http/pprof"
)

// Start serves the pprof handlers on addr in a background goroutine and
// returns the bound address. An empty addr disables profiling and returns
// ("", nil). The listener stays up for the life of the process — these are
// long-running servers shut down by signal, so there is nothing to tear
// down gracefully.
func Start(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// The default mux carries the pprof handlers via the blank import.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
