package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{nil, {}, []byte("x"), []byte("hello obladi"), make([]byte, 4096)} {
		sealed, err := k.Seal(msg, nil)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", len(msg), err)
		}
		got, err := k.Open(sealed, nil)
		if err != nil {
			t.Fatalf("Open(%d bytes): %v", len(msg), err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch for %d-byte message", len(msg))
		}
	}
}

func TestSealIsRandomized(t *testing.T) {
	k := KeyFromSeed([]byte("seed"))
	msg := []byte("same plaintext")
	a, err := k.Seal(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Seal(msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two Seals of the same plaintext produced identical ciphertexts")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k := KeyFromSeed([]byte("seed"))
	sealed, err := k.Seal([]byte("payload"), Binding(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x40
		if _, err := k.Open(mut, Binding(1, 2, 3)); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestOpenRejectsWrongBinding(t *testing.T) {
	k := KeyFromSeed([]byte("seed"))
	sealed, err := k.Seal([]byte("payload"), Binding(7, 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		Binding(8, 9, 1), // different bucket
		Binding(7, 8, 1), // stale epoch
		Binding(7, 9, 0), // stale batch
		nil,
	}
	for i, b := range bad {
		if _, err := k.Open(sealed, b); err == nil {
			t.Fatalf("binding case %d accepted", i)
		}
	}
	if _, err := k.Open(sealed, Binding(7, 9, 1)); err != nil {
		t.Fatalf("correct binding rejected: %v", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1 := KeyFromSeed([]byte("a"))
	k2 := KeyFromSeed([]byte("b"))
	sealed, err := k1.Seal([]byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Open(sealed, nil); err == nil {
		t.Fatal("ciphertext sealed under k1 opened under k2")
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	k := KeyFromSeed([]byte("seed"))
	sealed, err := k.Seal([]byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(sealed); n++ {
		if _, err := k.Open(sealed[:n], nil); err == nil {
			t.Fatalf("truncated ciphertext of %d bytes accepted", n)
		}
	}
}

func TestKeyFromSeedDeterministic(t *testing.T) {
	a := KeyFromSeed([]byte("s"))
	b := KeyFromSeed([]byte("s"))
	sealed, err := a.Seal([]byte("m"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed, nil); err != nil {
		t.Fatalf("key derived from same seed cannot open: %v", err)
	}
	c := KeyFromSeed([]byte("t"))
	if _, err := c.Open(sealed, nil); err == nil {
		t.Fatal("key derived from different seed opened ciphertext")
	}
}

func TestSealedSize(t *testing.T) {
	k := KeyFromSeed([]byte("seed"))
	for _, n := range []int{0, 1, 15, 16, 17, 1000} {
		sealed, err := k.Seal(make([]byte, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(sealed) != SealedSize(n) {
			t.Fatalf("SealedSize(%d) = %d, sealed length %d", n, SealedSize(n), len(sealed))
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	k := KeyFromSeed([]byte("quick"))
	f := func(msg, binding []byte) bool {
		sealed, err := k.Seal(msg, binding)
		if err != nil {
			return false
		}
		got, err := k.Open(sealed, binding)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomBytes(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 64 || len(b) != 64 {
		t.Fatal("wrong length")
	}
	if bytes.Equal(a, b) {
		t.Fatal("two RandomBytes calls returned identical data")
	}
}
