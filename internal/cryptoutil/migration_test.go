package cryptoutil

import (
	"bytes"
	"errors"
	"testing"
)

// TestCTRSealedFailsUnderGCM proves the migration contract: a frame sealed by
// the seed's CTR+HMAC construction must fail loudly when opened by the GCM
// opener — ErrScheme when the leading IV byte doesn't collide with the scheme
// byte, ErrAuth when it does (1/256 of frames) — and must never decrypt.
func TestCTRSealedFailsUnderGCM(t *testing.T) {
	k := KeyFromSeed([]byte("migrate"))
	ctr := k.CTR()
	msg := []byte("bucket slot plaintext")
	binding := Binding(3, 9, 1)
	sawScheme, sawAuth := false, false
	for i := 0; i < 2000; i++ {
		sealed, err := ctr.Seal(msg, binding)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := k.Open(sealed, binding)
		if err == nil {
			t.Fatalf("iteration %d: CTR frame opened under GCM yielded plaintext %q", i, plain)
		}
		switch {
		case errors.Is(err, ErrScheme):
			sawScheme = true
		case errors.Is(err, ErrAuth):
			sawAuth = true
		default:
			t.Fatalf("iteration %d: unexpected error %v (want ErrScheme or ErrAuth)", i, err)
		}
	}
	if !sawScheme {
		t.Error("no CTR frame failed with ErrScheme")
	}
	// With 2000 random IVs the first byte collides with the scheme byte
	// (probability 1/256 each) except with ~0.04% probability; if this turns
	// flaky the loop count is too low, not the contract wrong.
	if !sawAuth {
		t.Error("no CTR frame with a colliding lead byte failed with ErrAuth")
	}
}

// TestGCMSealedFailsUnderCTR is the reverse direction: GCM frames presented
// to the legacy opener must fail authentication, never decrypt.
func TestGCMSealedFailsUnderCTR(t *testing.T) {
	k := KeyFromSeed([]byte("migrate"))
	ctr := k.CTR()
	binding := Binding(3, 9, 1)
	for i := 0; i < 256; i++ {
		sealed, err := k.Seal([]byte("bucket slot plaintext"), binding)
		if err != nil {
			t.Fatal(err)
		}
		if plain, err := ctr.Open(sealed, binding); err == nil {
			t.Fatalf("GCM frame opened under CTR yielded plaintext %q", plain)
		} else if !errors.Is(err, ErrAuth) {
			t.Fatalf("unexpected error %v (want ErrAuth)", err)
		}
	}
}

// TestCTRSealerRoundTrip pins the legacy construction itself (same format as
// the seed: iv|ct|mac, overhead 48) including binding enforcement.
func TestCTRSealerRoundTrip(t *testing.T) {
	k := KeyFromSeed([]byte("ctr"))
	ctr := k.CTR()
	msg := []byte("legacy payload")
	sealed, err := ctr.Seal(msg, Binding(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != len(msg)+CTROverhead {
		t.Fatalf("sealed %d bytes, want %d", len(sealed), len(msg)+CTROverhead)
	}
	got, err := ctr.Open(sealed, Binding(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: got %q want %q", got, msg)
	}
	if _, err := ctr.Open(sealed, Binding(1, 2, 4)); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong binding: got %v, want ErrAuth", err)
	}
}

// TestSealToOpenToInPlace verifies the appending variants: they extend the
// destination slice, round-trip, and perform zero allocations when the
// destination has spare capacity (the hot path's contract).
func TestSealToOpenToInPlace(t *testing.T) {
	k := KeyFromSeed([]byte("inplace"))
	msg := bytes.Repeat([]byte{0xA5}, 300)
	binding := Binding(7, 7, 7)
	prefix := []byte("prefix:")
	sealed, err := k.SealTo(append([]byte(nil), prefix...), msg, binding)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(sealed, prefix) {
		t.Fatal("SealTo clobbered the destination prefix")
	}
	frame := sealed[len(prefix):]
	if len(frame) != SealedSize(len(msg)) {
		t.Fatalf("frame of %d bytes, want %d", len(frame), SealedSize(len(msg)))
	}
	plain, err := k.OpenTo(append([]byte(nil), prefix...), frame, binding)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain[len(prefix):], msg) {
		t.Fatal("OpenTo round trip mismatch")
	}

	sealBuf := make([]byte, 0, SealedSize(len(msg)))
	openBuf := make([]byte, 0, len(msg))
	bindBuf := make([]byte, 0, BindingSize)
	allocs := testing.AllocsPerRun(200, func() {
		bindBuf = AppendBinding(bindBuf[:0], 7, 7, 7)
		var err error
		sealBuf, err = k.SealTo(sealBuf[:0], msg, bindBuf)
		if err != nil {
			t.Fatal(err)
		}
		openBuf, err = k.OpenTo(openBuf[:0], sealBuf, bindBuf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("SealTo+OpenTo with pre-sized buffers: %.1f allocs/op, want 0", allocs)
	}
}

// TestAppendBinding pins AppendBinding against the allocating wrapper.
func TestAppendBinding(t *testing.T) {
	want := Binding(10, 20, 30)
	got := AppendBinding([]byte("x"), 10, 20, 30)
	if !bytes.Equal(got[1:], want) || got[0] != 'x' {
		t.Fatalf("AppendBinding: got % x want x||% x", got, want)
	}
	if len(want) != BindingSize {
		t.Fatalf("Binding of %d bytes, want %d", len(want), BindingSize)
	}
}

// FuzzOpenSealed extends frame-decode fuzzing to the sealed framing: both
// openers must reject arbitrary frames without panicking, and a valid frame
// must survive the trip while any scheme-byte flip fails loudly.
func FuzzOpenSealed(f *testing.F) {
	k := KeyFromSeed([]byte("fuzz"))
	ctr := k.CTR()
	if s, err := k.Seal([]byte("seed frame"), Binding(1, 2, 3)); err == nil {
		f.Add(s, uint64(1), uint64(2), uint64(3))
	}
	if s, err := ctr.Seal([]byte("legacy seed frame"), Binding(1, 2, 3)); err == nil {
		f.Add(s, uint64(1), uint64(2), uint64(3))
	}
	f.Add([]byte{byte(SchemeGCM)}, uint64(0), uint64(0), uint64(0))
	f.Add([]byte{}, uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, frame []byte, id, epoch, batch uint64) {
		binding := Binding(id, epoch, batch)
		if plain, err := k.Open(frame, binding); err == nil {
			// The fuzzer forging an authentic GCM frame would be a break of
			// AES-GCM itself; anything it opens must round-trip.
			resealed, err := k.Seal(plain, binding)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := k.Open(resealed, binding); err != nil || !bytes.Equal(got, plain) {
				t.Fatalf("reseal round trip: %v", err)
			}
		}
		ctr.Open(frame, binding) //nolint:errcheck // must not panic
		if len(frame) > 0 {
			mut := append([]byte(nil), frame...)
			mut[0] ^= 0xFF
			if _, err := k.Open(mut, binding); err == nil {
				t.Fatal("scheme-byte flip still opened")
			}
		}
	})
}
