// Package cryptoutil provides the randomized authenticated encryption used by
// Obladi for ORAM bucket slots and recovery-log records.
//
// Every ciphertext is freshly randomized (AES-CTR with a random IV) so that
// re-encrypting the same plaintext yields an unlinkable ciphertext, and is
// authenticated with HMAC-SHA256 over the ciphertext and an optional "binding"
// (location, epoch counter, batch counter — see Appendix A of the paper) so a
// malicious server cannot splice stale or relocated blocks.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Key bundles the encryption and MAC secrets held by the trusted proxy.
type Key struct {
	enc [32]byte
	mac [32]byte
}

// NewKey generates a fresh random key pair.
func NewKey() (*Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k.enc[:]); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating encryption key: %w", err)
	}
	if _, err := io.ReadFull(rand.Reader, k.mac[:]); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating mac key: %w", err)
	}
	return &k, nil
}

// KeyFromSeed derives a deterministic key from a seed. Intended for tests and
// benchmarks that need reproducible ciphertexts; production callers should use
// NewKey.
func KeyFromSeed(seed []byte) *Key {
	var k Key
	h := sha256.Sum256(append([]byte("obladi-enc:"), seed...))
	copy(k.enc[:], h[:])
	h = sha256.Sum256(append([]byte("obladi-mac:"), seed...))
	copy(k.mac[:], h[:])
	return &k
}

const (
	ivSize  = aes.BlockSize
	macSize = sha256.Size
)

// Overhead is the number of bytes Seal adds to a plaintext.
const Overhead = ivSize + macSize

// ErrAuth is returned when a ciphertext fails authentication: it was
// tampered with, truncated, or bound to a different location/counter.
var ErrAuth = errors.New("cryptoutil: message authentication failed")

// Seal encrypts plaintext with a fresh random IV and appends a MAC computed
// over iv || ciphertext || binding. The binding never travels with the
// message; Open must be called with an identical binding.
func (k *Key) Seal(plaintext, binding []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	out := make([]byte, ivSize+len(plaintext)+macSize)
	iv := out[:ivSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating iv: %w", err)
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[ivSize:ivSize+len(plaintext)], plaintext)
	k.sum(out[:ivSize+len(plaintext)], binding, out[ivSize+len(plaintext):ivSize+len(plaintext)])
	return out, nil
}

// Open authenticates and decrypts a message produced by Seal with the same
// binding. The returned slice is freshly allocated.
func (k *Key) Open(sealed, binding []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrAuth
	}
	body := sealed[:len(sealed)-macSize]
	var want [macSize]byte
	k.sum(body, binding, want[:0])
	if !hmac.Equal(want[:], sealed[len(sealed)-macSize:]) {
		return nil, ErrAuth
	}
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	plaintext := make([]byte, len(body)-ivSize)
	cipher.NewCTR(block, body[:ivSize]).XORKeyStream(plaintext, body[ivSize:])
	return plaintext, nil
}

func (k *Key) sum(body, binding, dst []byte) []byte {
	m := hmac.New(sha256.New, k.mac[:])
	var lenbuf [8]byte
	binary.BigEndian.PutUint64(lenbuf[:], uint64(len(body)))
	m.Write(lenbuf[:])
	m.Write(body)
	m.Write(binding)
	return m.Sum(dst)
}

// Binding encodes an (identifier, epoch, batch) triple into the byte string
// MACed alongside a ciphertext, implementing the freshness counters of
// Appendix A. Identifier is typically a bucket index or a log-record kind.
func Binding(id uint64, epoch uint64, batch uint64) []byte {
	b := make([]byte, 24)
	binary.BigEndian.PutUint64(b[0:], id)
	binary.BigEndian.PutUint64(b[8:], epoch)
	binary.BigEndian.PutUint64(b[16:], batch)
	return b
}

// SealedSize reports the ciphertext size for a plaintext of n bytes.
func SealedSize(n int) int { return n + Overhead }

// RandomBytes fills a fresh slice of length n with cryptographically random
// bytes. Used to manufacture dummy slots that are indistinguishable from
// sealed real slots.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	return b, nil
}
