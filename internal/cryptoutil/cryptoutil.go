// Package cryptoutil provides the randomized authenticated encryption used by
// Obladi for ORAM bucket slots and recovery-log records.
//
// Every ciphertext is freshly randomized (a random nonce per seal) so that
// re-encrypting the same plaintext yields an unlinkable ciphertext, and is
// authenticated together with an optional "binding" (location, epoch counter,
// batch counter — see Appendix A of the paper) so a malicious server cannot
// splice stale or relocated blocks.
//
// The current construction is single-pass AES-GCM (hardware-accelerated on
// amd64/arm64) with the binding as additional authenticated data and a scheme
// byte leading every frame:
//
//	scheme(1) | nonce(12) | ciphertext | tag(16)
//
// The seed's two-pass AES-CTR + HMAC-SHA256 construction is retained as
// CTRSealer — its frames carry no scheme byte — so migration tests can prove
// that state sealed under one scheme fails loudly (ErrScheme or ErrAuth,
// never garbage plaintext) when opened under the other.
package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Scheme identifies a sealing construction. GCM frames carry their scheme as
// the leading byte; the legacy CTR frames predate the byte and carry none.
type Scheme byte

// Known schemes. Values are wire format: do not renumber.
const (
	// SchemeCTR is the seed's AES-CTR + HMAC-SHA256 two-pass construction.
	SchemeCTR Scheme = 1
	// SchemeGCM is the AES-GCM single-pass construction.
	SchemeGCM Scheme = 2
)

// Sealer is the authenticated-encryption interface the hot path uses. SealTo
// and OpenTo append to caller-provided buffers (pass a slice with sufficient
// spare capacity for a zero-allocation seal or open); Seal and Open are the
// allocating conveniences. A Sealer is safe for concurrent use.
type Sealer interface {
	// SealTo appends the sealed frame for plaintext to dst and returns the
	// extended slice. The binding never travels with the message; OpenTo
	// must be called with an identical binding.
	SealTo(dst, plaintext, binding []byte) ([]byte, error)
	// OpenTo authenticates sealed under binding and appends the plaintext
	// to dst, returning the extended slice.
	OpenTo(dst, sealed, binding []byte) ([]byte, error)
	// Seal is SealTo into a fresh buffer.
	Seal(plaintext, binding []byte) ([]byte, error)
	// Open is OpenTo into a fresh buffer.
	Open(sealed, binding []byte) ([]byte, error)
	// Overhead is the number of bytes SealTo adds to a plaintext.
	Overhead() int
	// SealedSize reports the frame size for a plaintext of n bytes.
	SealedSize(n int) int
	// Scheme identifies the construction.
	Scheme() Scheme
}

// Key bundles the secrets held by the trusted proxy, with the AES cipher and
// GCM AEAD constructed once at key creation (not per seal). Key itself is the
// SchemeGCM Sealer; CTR() derives the legacy sealer over the same secrets.
type Key struct {
	enc  [32]byte
	mac  [32]byte
	aead cipher.AEAD
}

// initCiphers builds the cached cipher state. The key sizes are fixed, so
// construction cannot fail; any error is a programming bug.
func (k *Key) initCiphers() {
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		panic(fmt.Sprintf("cryptoutil: aes.NewCipher with fixed-size key: %v", err))
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		panic(fmt.Sprintf("cryptoutil: cipher.NewGCM: %v", err))
	}
	k.aead = aead
}

// newCTRBlock builds a fresh AES block cipher for a CTR stream. The legacy
// sealer cannot share the GCM-cached block on all platforms (crypto/aes may
// specialize the value handed to NewGCM), so it caches its own in CTR().
func (k *Key) newCTRBlock() cipher.Block {
	block, err := aes.NewCipher(k.enc[:])
	if err != nil {
		panic(fmt.Sprintf("cryptoutil: aes.NewCipher with fixed-size key: %v", err))
	}
	return block
}

// NewKey generates a fresh random key pair.
func NewKey() (*Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k.enc[:]); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating encryption key: %w", err)
	}
	if _, err := io.ReadFull(rand.Reader, k.mac[:]); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating mac key: %w", err)
	}
	k.initCiphers()
	return &k, nil
}

// KeyFromSeed derives a deterministic key from a seed. Intended for tests and
// benchmarks that need reproducible ciphertexts; production callers should use
// NewKey.
func KeyFromSeed(seed []byte) *Key {
	var k Key
	h := sha256.Sum256(append([]byte("obladi-enc:"), seed...))
	copy(k.enc[:], h[:])
	h = sha256.Sum256(append([]byte("obladi-mac:"), seed...))
	copy(k.mac[:], h[:])
	k.initCiphers()
	return &k
}

const (
	ivSize    = aes.BlockSize
	macSize   = sha256.Size
	nonceSize = 12 // standard GCM nonce
	tagSize   = 16 // GCM tag
)

// Overhead is the number of bytes the default (GCM) scheme adds to a
// plaintext: scheme byte + nonce + tag.
const Overhead = 1 + nonceSize + tagSize

// CTROverhead is the legacy scheme's overhead: IV + HMAC-SHA256 tag.
const CTROverhead = ivSize + macSize

// ErrAuth is returned when a ciphertext fails authentication: it was
// tampered with, truncated, or bound to a different location/counter.
var ErrAuth = errors.New("cryptoutil: message authentication failed")

// ErrScheme is returned when a frame's scheme byte does not match the opener:
// state sealed under a different (e.g. pre-GCM) construction. It is loud by
// design — mis-decrypting another scheme's frame must never yield plaintext.
var ErrScheme = errors.New("cryptoutil: sealing scheme mismatch")

// grow extends b by n bytes, reallocating only when spare capacity is short
// (the hot path pre-sizes buffers so this is allocation-free).
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[: len(b)+n : cap(b)]
	}
	nb := make([]byte, len(b)+n)
	copy(nb, b)
	return nb
}

// Scheme identifies Key as the GCM construction.
func (k *Key) Scheme() Scheme { return SchemeGCM }

// Overhead implements Sealer for the GCM construction.
func (k *Key) Overhead() int { return Overhead }

// SealedSize implements Sealer for the GCM construction.
func (k *Key) SealedSize(n int) int { return n + Overhead }

// SealTo appends scheme|nonce|ciphertext|tag for plaintext to dst and returns
// the extended slice. The binding is authenticated as GCM additional data; it
// never travels with the message, and OpenTo must present it identically.
// With enough spare capacity in dst the call performs no allocation.
func (k *Key) SealTo(dst, plaintext, binding []byte) ([]byte, error) {
	off := len(dst)
	dst = grow(dst, len(plaintext)+Overhead)
	frame := dst[off:]
	frame[0] = byte(SchemeGCM)
	nonce := frame[1 : 1+nonceSize]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating nonce: %w", err)
	}
	k.aead.Seal(frame[:1+nonceSize], nonce, plaintext, binding)
	return dst, nil
}

// Seal encrypts plaintext into a fresh buffer; see SealTo.
func (k *Key) Seal(plaintext, binding []byte) ([]byte, error) {
	return k.SealTo(make([]byte, 0, len(plaintext)+Overhead), plaintext, binding)
}

// OpenTo authenticates a frame produced by SealTo under the same binding and
// appends the plaintext to dst, returning the extended slice. A frame led by
// a different scheme byte fails with ErrScheme; an authentic-looking but
// forged/stale/relocated frame fails with ErrAuth.
func (k *Key) OpenTo(dst, sealed, binding []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrAuth
	}
	if Scheme(sealed[0]) != SchemeGCM {
		return nil, fmt.Errorf("%w: frame scheme %d, opener is GCM", ErrScheme, sealed[0])
	}
	off := len(dst)
	dst = grow(dst, len(sealed)-Overhead)
	nonce := sealed[1 : 1+nonceSize]
	if _, err := k.aead.Open(dst[off:off], nonce, sealed[1+nonceSize:], binding); err != nil {
		return nil, ErrAuth
	}
	return dst, nil
}

// Open authenticates and decrypts into a fresh buffer; see OpenTo.
func (k *Key) Open(sealed, binding []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrAuth
	}
	return k.OpenTo(make([]byte, 0, len(sealed)-Overhead), sealed, binding)
}

var _ Sealer = (*Key)(nil)

// CTRSealer is the seed's two-pass construction: AES-CTR under a random IV,
// authenticated with HMAC-SHA256 over iv || ciphertext || binding. Frames are
// iv(16)|ciphertext|mac(32) with no scheme byte. It exists for migration
// coverage (and for reading state written before the GCM cutover in tests);
// new state is always sealed with the GCM scheme.
type CTRSealer struct {
	k     *Key
	block cipher.Block
}

// CTR returns the legacy sealer over the same secrets, with its AES cipher
// constructed once here rather than per call.
func (k *Key) CTR() *CTRSealer {
	return &CTRSealer{k: k, block: k.newCTRBlock()}
}

// Scheme identifies the legacy construction.
func (s *CTRSealer) Scheme() Scheme { return SchemeCTR }

// Overhead implements Sealer for the legacy construction.
func (s *CTRSealer) Overhead() int { return CTROverhead }

// SealedSize implements Sealer for the legacy construction.
func (s *CTRSealer) SealedSize(n int) int { return n + CTROverhead }

// SealTo appends iv|ciphertext|mac for plaintext to dst.
func (s *CTRSealer) SealTo(dst, plaintext, binding []byte) ([]byte, error) {
	off := len(dst)
	dst = grow(dst, len(plaintext)+CTROverhead)
	frame := dst[off:]
	iv := frame[:ivSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("cryptoutil: generating iv: %w", err)
	}
	cipher.NewCTR(s.block, iv).XORKeyStream(frame[ivSize:ivSize+len(plaintext)], plaintext)
	s.k.sum(frame[:ivSize+len(plaintext)], binding, frame[ivSize+len(plaintext):ivSize+len(plaintext)])
	return dst, nil
}

// Seal encrypts plaintext into a fresh buffer; see SealTo.
func (s *CTRSealer) Seal(plaintext, binding []byte) ([]byte, error) {
	return s.SealTo(make([]byte, 0, len(plaintext)+CTROverhead), plaintext, binding)
}

// OpenTo authenticates a legacy frame and appends the plaintext to dst.
func (s *CTRSealer) OpenTo(dst, sealed, binding []byte) ([]byte, error) {
	if len(sealed) < CTROverhead {
		return nil, ErrAuth
	}
	body := sealed[:len(sealed)-macSize]
	var want [macSize]byte
	s.k.sum(body, binding, want[:0])
	if !hmac.Equal(want[:], sealed[len(sealed)-macSize:]) {
		return nil, ErrAuth
	}
	off := len(dst)
	dst = grow(dst, len(body)-ivSize)
	cipher.NewCTR(s.block, body[:ivSize]).XORKeyStream(dst[off:], body[ivSize:])
	return dst, nil
}

// Open authenticates and decrypts into a fresh buffer; see OpenTo.
func (s *CTRSealer) Open(sealed, binding []byte) ([]byte, error) {
	if len(sealed) < CTROverhead {
		return nil, ErrAuth
	}
	return s.OpenTo(make([]byte, 0, len(sealed)-CTROverhead), sealed, binding)
}

var _ Sealer = (*CTRSealer)(nil)

func (k *Key) sum(body, binding, dst []byte) []byte {
	m := hmac.New(sha256.New, k.mac[:])
	var lenbuf [8]byte
	binary.BigEndian.PutUint64(lenbuf[:], uint64(len(body)))
	m.Write(lenbuf[:])
	m.Write(body)
	m.Write(binding)
	return m.Sum(dst)
}

// BindingSize is the encoded size of an (id, epoch, batch) binding.
const BindingSize = 24

// AppendBinding appends the (identifier, epoch, batch) freshness triple of
// Appendix A to dst and returns the extended slice. Identifier is typically a
// bucket index or a log-record kind. Hot-path callers reuse one scratch
// buffer (dst[:0]) so encoding a binding allocates nothing.
func AppendBinding(dst []byte, id, epoch, batch uint64) []byte {
	off := len(dst)
	dst = grow(dst, BindingSize)
	binary.BigEndian.PutUint64(dst[off:], id)
	binary.BigEndian.PutUint64(dst[off+8:], epoch)
	binary.BigEndian.PutUint64(dst[off+16:], batch)
	return dst
}

// Binding encodes an (id, epoch, batch) triple into a fresh byte string; a
// thin allocating wrapper over AppendBinding kept for tests and cold paths.
func Binding(id, epoch, batch uint64) []byte {
	return AppendBinding(make([]byte, 0, BindingSize), id, epoch, batch)
}

// SealedSize reports the frame size for a plaintext of n bytes under the
// default (GCM) scheme.
func SealedSize(n int) int { return n + Overhead }

// RandomBytes fills a fresh slice of length n with cryptographically random
// bytes. Used to manufacture dummy slots that are indistinguishable from
// sealed real slots.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("cryptoutil: %w", err)
	}
	return b, nil
}
