package cryptoutil

import "testing"

func BenchmarkSeal256(b *testing.B) {
	k := KeyFromSeed([]byte("bench"))
	msg := make([]byte, 256)
	binding := Binding(1, 2, 3)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Seal(msg, binding); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen256(b *testing.B) {
	k := KeyFromSeed([]byte("bench"))
	binding := Binding(1, 2, 3)
	sealed, err := k.Seal(make([]byte, 256), binding)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Open(sealed, binding); err != nil {
			b.Fatal(err)
		}
	}
}
