package kvtxn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// Tuple is a flat record of string fields, the row representation shared by
// the application workloads. Encoding is length-prefixed, so fields may
// contain arbitrary bytes.
type Tuple []string

// Encode serializes the tuple.
func (t Tuple) Encode() []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(t)))
	for _, f := range t {
		out = binary.AppendUvarint(out, uint64(len(f)))
		out = append(out, f...)
	}
	return out
}

// DecodeTuple parses an encoded tuple.
func DecodeTuple(data []byte) (Tuple, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > 1<<16 {
		return nil, errors.New("kvtxn: corrupt tuple header")
	}
	data = data[k:]
	out := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < l {
			return nil, fmt.Errorf("kvtxn: corrupt tuple field %d", i)
		}
		out = append(out, string(data[k:k+int(l)]))
		data = data[k+int(l):]
	}
	return out, nil
}

// Int parses field i as an integer.
func (t Tuple) Int(i int) (int64, error) {
	if i < 0 || i >= len(t) {
		return 0, fmt.Errorf("kvtxn: tuple has no field %d", i)
	}
	return strconv.ParseInt(t[i], 10, 64)
}

// MustInt parses field i, panicking on corruption (loader-verified data).
func (t Tuple) MustInt(i int) int64 {
	v, err := t.Int(i)
	if err != nil {
		panic(err)
	}
	return v
}

// SetInt replaces field i with an integer.
func (t Tuple) SetInt(i int, v int64) {
	t[i] = strconv.FormatInt(v, 10)
}

// Itoa converts for tuple construction.
func Itoa(v int64) string { return strconv.FormatInt(v, 10) }
