package kvtxn

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

func newProxyDB(t *testing.T) ProxyDB {
	t.Helper()
	cfg := core.Config{
		Params: ringoram.Params{
			NumBlocks: 256, Z: 4, S: 6, A: 4, KeySize: 24, ValueSize: 64, Seed: 3,
		},
		Key:               cryptoutil.KeyFromSeed([]byte("kvtxn")),
		ReadBatches:       4,
		ReadBatchSize:     8,
		WriteBatchSize:    16,
		BatchInterval:     300 * time.Microsecond,
		EagerBatches:      true,
		DisableDurability: true,
	}
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := core.New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := ProxyDB{P: p}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestProxyDBRoundTrip(t *testing.T) {
	db := newProxyDB(t)
	err := RunWithRetries(db, 10, func(tx Txn) error {
		return tx.Write("k", []byte("v"))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = RunWithRetries(db, 10, func(tx Txn) error {
		v, found, err := tx.Read("k")
		if err != nil {
			return err
		}
		if !found || string(v) != "v" {
			return fmt.Errorf("read %q %v", v, found)
		}
		res, err := tx.ReadMany([]string{"k", "missing"})
		if err != nil {
			return err
		}
		if !res[0].Found || res[1].Found {
			return fmt.Errorf("readmany: %+v", res)
		}
		return tx.Delete("k")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProxyDBWrapsAborts(t *testing.T) {
	db := newProxyDB(t)
	// An epoch-capacity error must surface as kvtxn.ErrAborted so generic
	// retry loops work.
	tx := db.Begin()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = tx.Write(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err == nil {
		t.Skip("write batch never filled")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("capacity error not wrapped: %v", err)
	}
	tx.Abort()
}

func TestRunWithRetriesGivesUp(t *testing.T) {
	db := newProxyDB(t)
	calls := 0
	err := RunWithRetries(db, 3, func(tx Txn) error {
		calls++
		return fmt.Errorf("%w: synthetic", ErrAborted)
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 { // initial + 3 retries
		t.Fatalf("fn called %d times", calls)
	}
}

func TestRunWithRetriesStopsOnRealError(t *testing.T) {
	db := newProxyDB(t)
	boom := errors.New("boom")
	calls := 0
	err := RunWithRetries(db, 5, func(tx Txn) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	cases := []Tuple{
		{},
		{""},
		{"a"},
		{"a", "b", "c"},
		{"with|pipe", "with,comma", "with\x00nul"},
		{string(make([]byte, 1000))},
	}
	for i, tc := range cases {
		enc := tc.Encode()
		got, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(tc) {
			t.Fatalf("case %d: %d fields, want %d", i, len(got), len(tc))
		}
		for j := range tc {
			if got[j] != tc[j] {
				t.Fatalf("case %d field %d: %q != %q", i, j, got[j], tc[j])
			}
		}
	}
}

func TestTupleQuick(t *testing.T) {
	f := func(fields []string) bool {
		tup := Tuple(fields)
		got, err := DecodeTuple(tup.Encode())
		if err != nil {
			return false
		}
		if len(got) != len(fields) {
			return false
		}
		for i := range fields {
			if got[i] != fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCorruptRejected(t *testing.T) {
	if _, err := DecodeTuple(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := DecodeTuple([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage varint accepted")
	}
	good := Tuple{"abc", "def"}.Encode()
	if _, err := DecodeTuple(good[:len(good)-2]); err == nil {
		t.Fatal("truncated tuple accepted")
	}
}

func TestTupleIntHelpers(t *testing.T) {
	tup := Tuple{"42", "notanumber"}
	v, err := tup.Int(0)
	if err != nil || v != 42 {
		t.Fatalf("Int(0) = %d, %v", v, err)
	}
	if _, err := tup.Int(1); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := tup.Int(5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	tup.SetInt(0, -7)
	if tup.MustInt(0) != -7 {
		t.Fatalf("SetInt round trip: %s", tup[0])
	}
	if Itoa(123) != "123" {
		t.Fatal("Itoa")
	}
}
