// Package kvtxn defines the transactional key-value interface shared by
// Obladi and the evaluation baselines (NoPriv, 2PL). The application
// workloads (TPC-C, SmallBank, FreeHealth, YCSB) are written against these
// interfaces so every engine runs the identical business logic.
package kvtxn

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"obladi/internal/core"
)

// ErrAborted is the engine-independent abort signal. Engines wrap their own
// abort errors so errors.Is(err, ErrAborted) holds.
var ErrAborted = errors.New("kvtxn: transaction aborted")

// DB is a transactional key-value store.
type DB interface {
	// Begin starts a transaction.
	Begin() Txn
	// Close releases the engine.
	Close() error
}

// Txn is a single-goroutine transaction handle.
type Txn interface {
	// Read returns the visible value of key.
	Read(key string) (value []byte, found bool, err error)
	// ReadMany reads independent keys, batching fetches where the engine
	// supports it. Results are parallel to keys.
	ReadMany(keys []string) ([]Value, error)
	// Write stores value under key.
	Write(key string, value []byte) error
	// Delete removes key.
	Delete(key string) error
	// Commit makes the transaction durable; a nil result is a durable
	// commit acknowledgment.
	Commit() error
	// Abort discards the transaction.
	Abort()
}

// Value is one ReadMany result.
type Value struct {
	Key   string
	Value []byte
	Found bool
}

// CtxDB is the optional DB extension for engines whose transactions honor a
// context: cancellation aborts the transaction and unblocks its waits. The
// protocol server uses it to tie a wire session's transactions to the
// connection's lifetime.
type CtxDB interface {
	DB
	// BeginCtx starts a transaction bound to ctx.
	BeginCtx(ctx context.Context) Txn
}

// ReadFuture is a pending asynchronous read.
type ReadFuture interface {
	// Wait blocks until the read resolves or ctx is done. A nil ctx means
	// the transaction's own context (so futures of a context-bound
	// transaction stay cancellable without re-threading the context).
	Wait(ctx context.Context) (value []byte, found bool, err error)
}

// AsyncTxn is the optional Txn extension for engines that can register a
// read without blocking, so a pipelined caller (one wire session worker, say)
// can issue a transaction's whole read set before the first batch fires.
// Futures may be resolved from goroutines other than the transaction's.
type AsyncTxn interface {
	Txn
	// ReadAsync registers a read and returns immediately.
	ReadAsync(key string) ReadFuture
}

// ProxyDB adapts the Obladi proxy to the DB interface.
type ProxyDB struct {
	P *core.Proxy
}

var (
	_ DB    = ProxyDB{}
	_ CtxDB = ProxyDB{}
)

// Begin implements DB.
func (d ProxyDB) Begin() Txn { return &proxyTxn{t: d.P.Begin()} }

// BeginCtx implements CtxDB.
func (d ProxyDB) BeginCtx(ctx context.Context) Txn { return &proxyTxn{t: d.P.BeginCtx(ctx)} }

// Close implements DB.
func (d ProxyDB) Close() error { return d.P.Close() }

type proxyTxn struct {
	t *core.Txn
}

var _ AsyncTxn = (*proxyTxn)(nil)

func (p *proxyTxn) Read(key string) ([]byte, bool, error) {
	v, found, err := p.t.Read(key)
	return v, found, wrapAbort(err)
}

// ReadAsync implements AsyncTxn.
func (p *proxyTxn) ReadAsync(key string) ReadFuture {
	return proxyFuture{f: p.t.ReadAsync(key)}
}

type proxyFuture struct {
	f *core.Future
}

func (pf proxyFuture) Wait(ctx context.Context) ([]byte, bool, error) {
	v, found, err := pf.f.Wait(ctx)
	return v, found, wrapAbort(err)
}

func (p *proxyTxn) ReadMany(keys []string) ([]Value, error) {
	res, err := p.t.ReadMany(keys)
	if err != nil {
		return nil, wrapAbort(err)
	}
	out := make([]Value, len(res))
	for i, r := range res {
		out[i] = Value{Key: r.Key, Value: r.Value, Found: r.Found}
	}
	return out, nil
}

func (p *proxyTxn) Write(key string, value []byte) error {
	return wrapAbort(p.t.Write(key, value))
}

func (p *proxyTxn) Delete(key string) error {
	return wrapAbort(p.t.Delete(key))
}

func (p *proxyTxn) Commit() error { return wrapAbort(p.t.Commit()) }

func (p *proxyTxn) Abort() { p.t.Abort() }

func wrapAbort(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrAborted) || errors.Is(err, core.ErrEpochFull) {
		return errors.Join(ErrAborted, err)
	}
	return err
}

// RunWithRetries executes fn in a transaction, retrying on aborts up to
// maxRetries times. fn must be idempotent. The final Commit is included in
// the retry scope. Load-sheds (core.ErrShed: the proxy is saturated, not
// conflicted) retry too, but behind a jittered exponential backoff — an
// immediate replay would land in the same exhausted epoch and keep the
// proxy saturated.
func RunWithRetries(db DB, maxRetries int, fn func(Txn) error) error {
	var last error
	shedBackoff := time.Millisecond
	for attempt := 0; attempt <= maxRetries; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if errors.Is(err, core.ErrShed) {
			time.Sleep(shedBackoff/2 + rand.N(shedBackoff/2+1))
			if shedBackoff *= 2; shedBackoff > 250*time.Millisecond {
				shedBackoff = 250 * time.Millisecond
			}
		}
		last = err
	}
	return last
}
