// Package kvtxn defines the transactional key-value interface shared by
// Obladi and the evaluation baselines (NoPriv, 2PL). The application
// workloads (TPC-C, SmallBank, FreeHealth, YCSB) are written against these
// interfaces so every engine runs the identical business logic.
package kvtxn

import (
	"errors"

	"obladi/internal/core"
)

// ErrAborted is the engine-independent abort signal. Engines wrap their own
// abort errors so errors.Is(err, ErrAborted) holds.
var ErrAborted = errors.New("kvtxn: transaction aborted")

// DB is a transactional key-value store.
type DB interface {
	// Begin starts a transaction.
	Begin() Txn
	// Close releases the engine.
	Close() error
}

// Txn is a single-goroutine transaction handle.
type Txn interface {
	// Read returns the visible value of key.
	Read(key string) (value []byte, found bool, err error)
	// ReadMany reads independent keys, batching fetches where the engine
	// supports it. Results are parallel to keys.
	ReadMany(keys []string) ([]Value, error)
	// Write stores value under key.
	Write(key string, value []byte) error
	// Delete removes key.
	Delete(key string) error
	// Commit makes the transaction durable; a nil result is a durable
	// commit acknowledgment.
	Commit() error
	// Abort discards the transaction.
	Abort()
}

// Value is one ReadMany result.
type Value struct {
	Key   string
	Value []byte
	Found bool
}

// ProxyDB adapts the Obladi proxy to the DB interface.
type ProxyDB struct {
	P *core.Proxy
}

var _ DB = ProxyDB{}

// Begin implements DB.
func (d ProxyDB) Begin() Txn { return &proxyTxn{t: d.P.Begin()} }

// Close implements DB.
func (d ProxyDB) Close() error { return d.P.Close() }

type proxyTxn struct {
	t *core.Txn
}

func (p *proxyTxn) Read(key string) ([]byte, bool, error) {
	v, found, err := p.t.Read(key)
	return v, found, wrapAbort(err)
}

func (p *proxyTxn) ReadMany(keys []string) ([]Value, error) {
	res, err := p.t.ReadMany(keys)
	if err != nil {
		return nil, wrapAbort(err)
	}
	out := make([]Value, len(res))
	for i, r := range res {
		out[i] = Value{Key: r.Key, Value: r.Value, Found: r.Found}
	}
	return out, nil
}

func (p *proxyTxn) Write(key string, value []byte) error {
	return wrapAbort(p.t.Write(key, value))
}

func (p *proxyTxn) Delete(key string) error {
	return wrapAbort(p.t.Delete(key))
}

func (p *proxyTxn) Commit() error { return wrapAbort(p.t.Commit()) }

func (p *proxyTxn) Abort() { p.t.Abort() }

func wrapAbort(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrAborted) || errors.Is(err, core.ErrEpochFull) {
		return errors.Join(ErrAborted, err)
	}
	return err
}

// RunWithRetries executes fn in a transaction, retrying on aborts up to
// maxRetries times. fn must be idempotent. The final Commit is included in
// the retry scope.
func RunWithRetries(db DB, maxRetries int, fn func(Txn) error) error {
	var last error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		last = err
	}
	return last
}
