package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// quickCfg is an extra-small configuration so harness tests stay fast.
func quickCfg() Config {
	return Config{Quick: true, LatencyScale: 0.5, Seed: 7}
}

func TestNamesAndDescribe(t *testing.T) {
	names := Names()
	if len(names) != 19 {
		t.Fatalf("expected 19 experiments (every table and figure, plus shards, pipeline, vector, client, disk, recovery, hotpath, failover and scale), got %d: %v", len(names), names)
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Fatalf("experiment %q has no description", n)
		}
	}
	if _, err := Run("nonsense", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPrintFormatsRows(t *testing.T) {
	rows := []Row{
		{Experiment: "figX", Series: "s", X: "1", Value: 12.5, Unit: "ops/s"},
		{Experiment: "figX", Series: "s", X: "2", Value: 13.5, Unit: "ops/s"},
	}
	var buf bytes.Buffer
	if err := Print(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "12.50") {
		t.Fatalf("print output:\n%s", out)
	}
}

func TestFig10aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig10a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(series, x string) float64 {
		for _, r := range rows {
			if r.Series == series && r.X == x {
				return r.Value
			}
		}
		t.Fatalf("missing row %s/%s", series, x)
		return 0
	}
	// Shape assertions from the paper: parallelism hurts on the dummy
	// backend (CPU bound) but wins by a large factor on the WAN backend.
	if seq, par := get("Sequential", "server WAN"), get("Parallel", "server WAN"); par < 3*seq {
		t.Errorf("parallel (%.0f) should dominate sequential (%.0f) on WAN", par, seq)
	}
	if seq, par := get("Sequential", "server"), get("Parallel", "server"); par < seq {
		t.Errorf("parallel (%.0f) should beat sequential (%.0f) on server", par, seq)
	}
	// Crypto costs something on the CPU-bound dummy backend.
	if plain, crypto := get("Parallel", "dummy"), get("ParallelCrypto", "dummy"); crypto > plain*1.5 {
		t.Errorf("crypto (%.0f) unexpectedly faster than plain (%.0f) on dummy", crypto, plain)
	}
}

func TestFig10bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig10b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Throughput on the latency-bound server backend must grow with batch
	// size (inter-request parallelism).
	var first, last float64
	for _, r := range rows {
		if r.Series == "server" {
			if first == 0 {
				first = r.Value
			}
			last = r.Value
		}
	}
	if first == 0 || last <= first {
		t.Errorf("server throughput did not grow with batch size: %v -> %v", first, last)
	}
}

func TestFig10dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig10d(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Delayed visibility ("Normal") must beat write-through ("Write Back")
	// on the remote backends.
	vals := map[string]map[string]float64{}
	for _, r := range rows {
		if vals[r.X] == nil {
			vals[r.X] = map[string]float64{}
		}
		vals[r.X][r.Series] = r.Value
	}
	for _, backend := range []string{"server", "server WAN"} {
		if vals[backend]["Normal"] < vals[backend]["Write Back"] {
			t.Errorf("%s: delayed visibility (%.0f) slower than write-through (%.0f)",
				backend, vals[backend]["Normal"], vals[backend]["Write Back"])
		}
	}
}

func TestTable11bProducesAllRows(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table11b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Levels": false, "Slowdown": false, "RecTime": false, "Network": false, "Pos": false, "Perm": false, "Paths": false}
	for _, r := range rows {
		if _, ok := want[r.Series]; ok {
			want[r.Series] = true
		}
	}
	for series, seen := range want {
		if !seen {
			t.Errorf("table11b missing series %q", series)
		}
	}
	// Levels must grow with database size.
	var levels []float64
	for _, r := range rows {
		if r.Series == "Levels" {
			levels = append(levels, r.Value)
		}
	}
	if len(levels) < 2 || levels[1] <= levels[0] {
		t.Errorf("levels do not grow with size: %v", levels)
	}
}

func TestAblationEpochCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationEpochCommit(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestAblationReadCache(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := AblationReadCache(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestFig11aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig11a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rarer full checkpoints must not reduce throughput. Per-backend runs
	// are short, so assert on the cross-backend average of first vs last
	// frequency points.
	bySeries := map[string][]float64{}
	for _, r := range rows {
		bySeries[r.Series] = append(bySeries[r.Series], r.Value)
	}
	var first, last float64
	for series, vals := range bySeries {
		if len(vals) < 2 {
			t.Fatalf("%s: %d points", series, len(vals))
		}
		first += vals[0]
		last += vals[len(vals)-1]
	}
	if last < first*0.85 {
		t.Errorf("throughput fell as full checkpoints got rarer: %.0f -> %.0f", first, last)
	}
}

func TestPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Pipeline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]map[string]float64{}
	for _, r := range rows {
		if vals[r.X] == nil {
			vals[r.X] = map[string]float64{}
		}
		vals[r.X][r.Series] = r.Value
	}
	// Overlapping epoch e's write-back + durability with epoch e+1's read
	// batches must beat paying the full boundary inline on every
	// latency-injected backend.
	for backend, v := range vals {
		if v["Pipelined"] <= v["Synchronous"] {
			t.Errorf("%s: pipelined boundary (%.0f txns/s) did not beat synchronous (%.0f txns/s)",
				backend, v["Pipelined"], v["Synchronous"])
		}
	}
}

func TestVectorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Vector(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]map[string]float64{}
	for _, r := range rows {
		if vals[r.X] == nil {
			vals[r.X] = map[string]float64{}
		}
		vals[r.X][r.Series] = r.Value
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("%s/%s: bad latency percentiles p50=%.2f p99=%.2f", r.Series, r.X, r.P50ms, r.P99ms)
		}
	}
	// Packing a stage's reads into one frame must beat call-per-slot
	// wherever round trips dominate; the WAN profile is the headline case.
	for _, backend := range []string{"server WAN", "dynamo"} {
		if vals[backend]["Vectored"] <= vals[backend]["Scalar"] {
			t.Errorf("%s: vectored I/O (%.0f txns/s) did not beat scalar (%.0f txns/s)",
				backend, vals[backend]["Vectored"], vals[backend]["Scalar"])
		}
	}
}

func TestDiskShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Disk(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// mem/disk x scalar/vectored, the four 2-shard group-commit rows
	// (Mem, Mem+fsync, Disk, Disk+logheap at Vectored/group), and the
	// logheap fsync-wave count.
	if len(rows) != 9 {
		t.Fatalf("expected 4 single-shard + 4 group rows + waves row: %+v", rows)
	}
	vals := map[string]map[string]float64{}
	for _, r := range rows {
		if vals[r.Series] == nil {
			vals[r.Series] = map[string]float64{}
		}
		vals[r.Series][r.X] = r.Value
		if r.Value <= 0 {
			t.Errorf("%s/%s: nonpositive throughput %f", r.Series, r.X, r.Value)
		}
		if r.X == "fsync-waves" {
			continue // a counter, not a latency measurement
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("%s/%s: bad latency percentiles p50=%.2f p99=%.2f", r.Series, r.X, r.P50ms, r.P99ms)
		}
	}
	for _, want := range []struct{ series, x string }{
		{"Mem", "Scalar"}, {"Mem", "Vectored"}, {"Disk", "Scalar"}, {"Disk", "Vectored"},
		{"Mem", "Vectored/group"}, {"Mem+fsync", "Vectored/group"}, {"Disk", "Vectored/group"},
		{"Disk+logheap", "Vectored/group"}, {"Disk+logheap", "fsync-waves"},
	} {
		if _, ok := vals[want.series][want.x]; !ok {
			t.Errorf("missing row %s/%s", want.series, want.x)
		}
	}
	// Durability costs real fsyncs, but the disk backend must stay within
	// sight of memory on a local filesystem, not collapse.
	if vals["Disk"]["Vectored"] < vals["Mem"]["Vectored"]/50 {
		t.Errorf("disk vectored (%.0f txns/s) collapsed vs mem (%.0f txns/s)",
			vals["Disk"]["Vectored"], vals["Mem"]["Vectored"])
	}
	if vals["Disk"]["Vectored/group"] < vals["Mem"]["Vectored/group"]/50 {
		t.Errorf("disk group (%.0f txns/s) collapsed vs mem group (%.0f txns/s)",
			vals["Disk"]["Vectored/group"], vals["Mem"]["Vectored/group"])
	}
}

func TestRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Recovery(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 1/2/4-worker replay rows for both backends: %+v", rows)
	}
	for i, workers := range []string{"1-workers", "2-workers", "4-workers",
		"1-workers", "2-workers", "4-workers"} {
		r := rows[i]
		series := "Replay"
		if i >= 3 {
			series = "Replay+logheap"
		}
		if r.X != workers || r.Series != series {
			t.Fatalf("row %d = %s/%s, want %s/%s", i, r.Series, r.X, series, workers)
		}
		if r.Value <= 0 {
			t.Errorf("%s: nonpositive recovery time %f", r.X, r.Value)
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("%s: bad latency percentiles p50=%.2f p99=%.2f", r.X, r.P50ms, r.P99ms)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_x.json"
	rows := []Row{{Experiment: "x", Series: "s", X: "p", Value: 10, Unit: "ops/s", Profile: "p", Shards: 2, P50ms: 1.5, P99ms: 2.5}}
	if err := WriteJSON(path, "x", rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Rows       []Row  `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if doc.Experiment != "x" || len(doc.Rows) != 1 || doc.Rows[0] != rows[0] {
		t.Fatalf("round trip mismatch: %+v", doc)
	}
}

func TestShardScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := ShardScale(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]float64{}
	for _, r := range rows {
		if r.Series == "Total" {
			total[r.X] = r.Value
		}
	}
	if len(total) != 3 {
		t.Fatalf("expected totals for 1/2/4 shards: %+v", rows)
	}
	// Four shards quadruple the aggregate batch capacity against independent
	// capped-concurrency backends; demand a conservative 1.5x.
	if total["4"] < total["1"]*1.5 {
		t.Errorf("sharding did not scale: 1 shard %.0f ops/s, 4 shards %.0f ops/s", total["1"], total["4"])
	}
	if total["2"] < total["1"] {
		t.Errorf("2 shards (%.0f) slower than 1 (%.0f)", total["2"], total["1"])
	}
}

func TestFig10eShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Fig10e(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// On the WAN backend, larger epochs must help (more local serving and
	// write dedup).
	var wan []float64
	for _, r := range rows {
		if r.Series == "server WAN" {
			wan = append(wan, r.Value)
		}
	}
	if len(wan) < 2 {
		t.Fatalf("missing WAN series: %+v", rows)
	}
	if wan[len(wan)-1] <= wan[0]*0.9 {
		t.Errorf("WAN gain did not grow with epoch size: %v", wan)
	}
}
