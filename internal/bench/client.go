package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obladi"
	"obladi/internal/clientproto"
	"obladi/internal/kvtxn"
)

// ClientPlane measures the client plane redesign (beyond the paper): the
// same read-modify-write workload driven over real loopback TCP through the
// legacy line protocol (one synchronous session per connection) versus the
// multiplexed v2 protocol (many pipelined sessions per connection), at a
// fixed connection count. The proxy runs the `server` latency profile on its
// storage side, so epochs cost what they cost in the paper's deployment;
// the x-axis is the connection count, and the gap at fixed x is what
// multiplexing buys — the line protocol can fill an epoch only by opening
// ever more connections, the mux protocol fills it from a handful.
//
// Committed-transaction counts come from the public DB.Stats() counters
// (server-side truth), not from client bookkeeping.
func ClientPlane(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const sessionsPerConn = 8
	connCounts := []int{1, 4, 8}
	runFor := 2 * time.Second
	if cfg.Quick {
		connCounts = []int{1, 4}
		runFor = 1 * time.Second
	}
	var rows []Row
	for _, conns := range connCounts {
		for _, mode := range []string{"Line", "Mux"} {
			row, err := runClientPlane(cfg, mode, conns, sessionsPerConn, runFor)
			if err != nil {
				return nil, fmt.Errorf("bench: client %s/%d conns: %w", mode, conns, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runClientPlane(cfg Config, mode string, conns, sessionsPerConn int, runFor time.Duration) (Row, error) {
	const numKeys = 2048
	db, err := obladi.Open(obladi.Options{
		MaxKeys:        numKeys * 2,
		MaxValueSize:   64,
		ReadBatches:    4,
		ReadBatchSize:  128,
		WriteBatchSize: 128,
		BatchInterval:  2 * time.Millisecond,
		// The client plane is the subject; durability round trips belong to
		// the pipeline experiment.
		DisableDurability: true,
		SimulatedLatency:  "server",
		KeySeed:           []byte("client-bench"),
	})
	if err != nil {
		return Row{}, err
	}
	defer db.Close()
	srv, err := clientproto.NewServer(clientproto.WrapDB(db), "127.0.0.1:0")
	if err != nil {
		return Row{}, err
	}
	defer srv.Close()

	// One transaction: read a random key, write it back. Retries on aborts
	// (epoch fate sharing) like any Obladi client.
	runTxn := func(tx kvtxn.Txn, key string) error {
		v, found, err := tx.Read(key)
		if err != nil {
			tx.Abort()
			return err
		}
		next := byte(0)
		if found && len(v) > 0 {
			next = v[0] + 1
		}
		if err := tx.Write(key, []byte{next}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}

	var mu sync.Mutex
	var latencies []time.Duration
	record := func(d time.Duration) {
		mu.Lock()
		latencies = append(latencies, d)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	workerErrs := make(chan error, 64)
	worker := func(begin func() kvtxn.Txn, seed uint64, deadline time.Time) {
		defer wg.Done()
		rng := newRand(seed)
		for time.Now().Before(deadline) {
			key := fmt.Sprintf("c-%d", rng.IntN(numKeys))
			start := time.Now()
			if err := runTxn(begin(), key); err != nil {
				if errors.Is(err, kvtxn.ErrAborted) {
					continue
				}
				// A dead worker would silently deflate the series; surface
				// the failure instead of reporting a skewed comparison.
				select {
				case workerErrs <- err:
				default:
				}
				return
			}
			record(time.Since(start))
		}
	}

	before := db.Stats()
	start := time.Now()
	deadline := start.Add(runFor)
	switch mode {
	case "Line":
		// The line protocol's hard limit: one transaction session in flight
		// per TCP connection.
		clients := make([]*lineDB, 0, conns)
		for i := 0; i < conns; i++ {
			c, err := clientproto.DialClient(srv.Addr())
			if err != nil {
				return Row{}, err
			}
			defer c.Close()
			clients = append(clients, &lineDB{c: c})
			wg.Add(1)
			go worker(clients[i].Begin, cfg.Seed+uint64(i), deadline)
		}
	case "Mux":
		// The mux protocol multiplexes sessionsPerConn concurrent sessions
		// over each connection.
		for i := 0; i < conns; i++ {
			mc, err := clientproto.DialMux(srv.Addr())
			if err != nil {
				return Row{}, err
			}
			defer mc.Close()
			mdb := clientproto.MuxDB{C: mc}
			for s := 0; s < sessionsPerConn; s++ {
				wg.Add(1)
				go worker(mdb.Begin, cfg.Seed+uint64(i*sessionsPerConn+s), deadline)
			}
		}
	default:
		return Row{}, fmt.Errorf("unknown mode %q", mode)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-workerErrs:
		return Row{}, fmt.Errorf("worker died: %w", err)
	default:
	}
	committed := db.Stats().Committed - before.Committed
	if committed == 0 {
		return Row{}, fmt.Errorf("committed nothing")
	}
	return Row{
		Experiment: "client",
		Series:     mode,
		X:          fmt.Sprintf("%d conns", conns),
		Value:      opsPerSec(int(committed), elapsed),
		Unit:       "txns/s",
		Profile:    "server",
		Shards:     1,
		P50ms:      percentile(latencies, 50),
		P99ms:      percentile(latencies, 99),
	}, nil
}

// lineDB adapts the single-session line client to a Begin-shaped interface
// for the worker loop. The line protocol carries one transaction at a time,
// so Begin blocks the connection until Commit/Abort — which is the point of
// the comparison.
type lineDB struct {
	c *clientproto.Client
}

func (d *lineDB) Begin() kvtxn.Txn { return &lineTxn{c: d.c} }

type lineTxn struct {
	c     *clientproto.Client
	begun bool
	dead  bool
}

func (t *lineTxn) ensureBegin() error {
	if t.begun {
		return nil
	}
	if err := t.c.Begin(); err != nil {
		t.dead = true
		return err
	}
	t.begun = true
	return nil
}

func (t *lineTxn) wrap(err error) error {
	if err == nil {
		return nil
	}
	// The line protocol flattens errors to strings; treat every server-side
	// error as a retryable abort (matching how its interactive clients
	// behave) so the worker loop retries rather than bailing.
	return fmt.Errorf("%w: %v", kvtxn.ErrAborted, err)
}

func (t *lineTxn) Read(key string) ([]byte, bool, error) {
	if err := t.ensureBegin(); err != nil {
		return nil, false, t.wrap(err)
	}
	v, found, err := t.c.Read(key)
	return v, found, t.wrap(err)
}

func (t *lineTxn) ReadMany(keys []string) ([]kvtxn.Value, error) {
	out := make([]kvtxn.Value, 0, len(keys))
	for _, k := range keys {
		v, found, err := t.Read(k)
		if err != nil {
			return nil, err
		}
		out = append(out, kvtxn.Value{Key: k, Value: v, Found: found})
	}
	return out, nil
}

func (t *lineTxn) Write(key string, value []byte) error {
	if err := t.ensureBegin(); err != nil {
		return t.wrap(err)
	}
	return t.wrap(t.c.Write(key, value))
}

func (t *lineTxn) Delete(key string) error {
	if err := t.ensureBegin(); err != nil {
		return t.wrap(err)
	}
	return t.wrap(t.c.Delete(key))
}

func (t *lineTxn) Commit() error {
	if !t.begun || t.dead {
		return t.wrap(fmt.Errorf("no open session"))
	}
	t.begun = false
	return t.wrap(t.c.Commit())
}

func (t *lineTxn) Abort() {
	if t.begun && !t.dead {
		t.c.Abort()
	}
	t.begun = false
}
