package bench

import (
	"fmt"
	"os"
	"time"

	"obladi/internal/storage"
)

// Recovery measures cold-start crash recovery of the disk backend — heap
// replay, KV replay and segmented recovery-log replay with per-record crc32c
// verification — at 1, 2 and 4 replay workers (beyond the paper: pFSCK-style
// parallel check/replay). One worker is the serial baseline; the parallel
// rows show how much of the reopen is the embarrassingly parallel per-file
// scan. The store is built once with a small segment roll-over so the log
// fans out into enough segments for the worker pool to matter.
func Recovery(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	epochs, iters := 16, 20
	if cfg.Quick {
		epochs, iters = 8, 5
	}
	dir, err := os.MkdirTemp("", "obladi-bench-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := buildRecoveryStore(dir, epochs); err != nil {
		return nil, err
	}
	var rows []Row
	for _, workers := range []int{1, 2, 4} {
		times := make([]time.Duration, 0, iters)
		var total time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			b, err := storage.OpenDiskBackendOpts(dir, 0, storage.DiskOptions{RecoveryWorkers: workers})
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			if err := b.Close(); err != nil {
				return nil, err
			}
			times = append(times, d)
			total += d
		}
		rows = append(rows, Row{
			Experiment: "recovery",
			Series:     "Replay",
			X:          fmt.Sprintf("%d-workers", workers),
			Value:      float64(total) / float64(iters) / float64(time.Millisecond),
			Unit:       "ms/recovery",
			Profile:    "Disk",
			P50ms:      percentile(times, 50),
			P99ms:      percentile(times, 99),
		})
	}
	lhRows, err := recoveryLogHeap(cfg, epochs, iters)
	if err != nil {
		return nil, err
	}
	return append(rows, lhRows...), nil
}

// recoveryLogHeap measures the same cold start for a 2-shard logheap group:
// the reopen scans mixed WAL+bucket segments, demuxes per-shard streams,
// loads each shard's index checkpoint and replays only the records above its
// watermark — the parallel segment scan plus the index rebuild the unified
// log trades the heap file for.
func recoveryLogHeap(cfg Config, epochs, iters int) ([]Row, error) {
	const shards = 2
	dir, err := os.MkdirTemp("", "obladi-bench-recovery-lh-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := buildLogHeapRecoveryStore(dir, shards, epochs); err != nil {
		return nil, err
	}
	var rows []Row
	for _, workers := range []int{1, 2, 4} {
		times := make([]time.Duration, 0, iters)
		var total time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			g, err := storage.OpenDiskGroupOpts(dir, shards, 0, storage.DiskOptions{
				LogHeap: true, RecoveryWorkers: workers,
			})
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			if err := g.Close(); err != nil {
				return nil, err
			}
			times = append(times, d)
			total += d
		}
		rows = append(rows, Row{
			Experiment: "recovery",
			Series:     "Replay+logheap",
			X:          fmt.Sprintf("%d-workers", workers),
			Value:      float64(total) / float64(iters) / float64(time.Millisecond),
			Unit:       "ms/recovery",
			Profile:    "Disk+logheap",
			Shards:     shards,
			P50ms:      percentile(times, 50),
			P99ms:      percentile(times, 99),
		})
	}
	return rows, nil
}

// buildLogHeapRecoveryStore populates a logheap group dir: every shard's
// bucket versions, WAL records and epoch commits multiplexed into one
// many-segment physical log, plus per-shard KV entries. The graceful close
// installs each shard's index checkpoint, so the measured reopen does what a
// production restart does: load checkpoints, then scan and demux the mixed
// segments above the watermarks.
func buildLogHeapRecoveryStore(dir string, shards, epochs int) error {
	g, err := storage.OpenDiskGroupOpts(dir, shards, 64, storage.DiskOptions{
		LogHeap: true, SegMaxBytes: 32 << 10,
	})
	if err != nil {
		return err
	}
	views := g.Backends()
	payload := make([]byte, 512)
	for e := uint64(1); e <= uint64(epochs); e++ {
		for s, v := range views {
			var writes []storage.BucketWrite
			for bucket := 0; bucket < 64; bucket++ {
				writes = append(writes, storage.BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{payload, payload}})
			}
			if err := v.WriteBuckets(writes); err != nil {
				return err
			}
			for r := 0; r < 32; r++ {
				if _, err := v.Append(payload); err != nil {
					return err
				}
			}
			if err := v.Put(fmt.Sprintf("ckpt-%d-%d", s, e), payload); err != nil {
				return err
			}
		}
		for _, v := range views {
			if err := v.CommitEpoch(e); err != nil {
				return err
			}
		}
	}
	return g.Close()
}

// buildRecoveryStore populates dir with a bucket heap, KV entries and a
// many-segment recovery log, so a reopen has real replay work in every
// namespace.
func buildRecoveryStore(dir string, epochs int) error {
	b, err := storage.OpenDiskBackendOpts(dir, 64, storage.DiskOptions{SegMaxBytes: 32 << 10})
	if err != nil {
		return err
	}
	payload := make([]byte, 512)
	for e := uint64(1); e <= uint64(epochs); e++ {
		var writes []storage.BucketWrite
		for bucket := 0; bucket < 64; bucket++ {
			writes = append(writes, storage.BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{payload, payload}})
		}
		if err := b.WriteBuckets(writes); err != nil {
			return err
		}
		for r := 0; r < 64; r++ {
			if _, err := b.Append(payload); err != nil {
				return err
			}
		}
		if err := b.Put(fmt.Sprintf("ckpt-%d", e), payload); err != nil {
			return err
		}
		if err := b.CommitEpoch(e); err != nil {
			return err
		}
	}
	return b.Close()
}
