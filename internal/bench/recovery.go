package bench

import (
	"fmt"
	"os"
	"time"

	"obladi/internal/storage"
)

// Recovery measures cold-start crash recovery of the disk backend — heap
// replay, KV replay and segmented recovery-log replay with per-record crc32c
// verification — at 1, 2 and 4 replay workers (beyond the paper: pFSCK-style
// parallel check/replay). One worker is the serial baseline; the parallel
// rows show how much of the reopen is the embarrassingly parallel per-file
// scan. The store is built once with a small segment roll-over so the log
// fans out into enough segments for the worker pool to matter.
func Recovery(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	epochs, iters := 16, 20
	if cfg.Quick {
		epochs, iters = 8, 5
	}
	dir, err := os.MkdirTemp("", "obladi-bench-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := buildRecoveryStore(dir, epochs); err != nil {
		return nil, err
	}
	var rows []Row
	for _, workers := range []int{1, 2, 4} {
		times := make([]time.Duration, 0, iters)
		var total time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			b, err := storage.OpenDiskBackendOpts(dir, 0, storage.DiskOptions{RecoveryWorkers: workers})
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			if err := b.Close(); err != nil {
				return nil, err
			}
			times = append(times, d)
			total += d
		}
		rows = append(rows, Row{
			Experiment: "recovery",
			Series:     "Replay",
			X:          fmt.Sprintf("%d-workers", workers),
			Value:      float64(total) / float64(iters) / float64(time.Millisecond),
			Unit:       "ms/recovery",
			Profile:    "Disk",
			P50ms:      percentile(times, 50),
			P99ms:      percentile(times, 99),
		})
	}
	return rows, nil
}

// buildRecoveryStore populates dir with a bucket heap, KV entries and a
// many-segment recovery log, so a reopen has real replay work in every
// namespace.
func buildRecoveryStore(dir string, epochs int) error {
	b, err := storage.OpenDiskBackendOpts(dir, 64, storage.DiskOptions{SegMaxBytes: 32 << 10})
	if err != nil {
		return err
	}
	payload := make([]byte, 512)
	for e := uint64(1); e <= uint64(epochs); e++ {
		var writes []storage.BucketWrite
		for bucket := 0; bucket < 64; bucket++ {
			writes = append(writes, storage.BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{payload, payload}})
		}
		if err := b.WriteBuckets(writes); err != nil {
			return err
		}
		for r := 0; r < 64; r++ {
			if _, err := b.Append(payload); err != nil {
				return err
			}
		}
		if err := b.Put(fmt.Sprintf("ckpt-%d", e), payload); err != nil {
			return err
		}
		if err := b.CommitEpoch(e); err != nil {
			return err
		}
	}
	return b.Close()
}
