package bench

import (
	"fmt"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
	"obladi/internal/wal"
	"obladi/internal/workload"
)

// microParams builds the ORAM configuration for the Figure 10
// microbenchmarks: the paper instantiates 100K objects; quick mode shrinks
// to 4K with proportionally smaller Z/S/A.
func microParams(cfg Config, crypto bool) ringoram.Params {
	p := ringoram.Params{
		Z: 16, S: 24, A: 16,
		KeySize:           24,
		ValueSize:         64,
		Seed:              cfg.Seed,
		DisableEncryption: !crypto,
		TolerateCorrupt:   true, // the dummy backend returns garbage
	}
	if cfg.Quick {
		p.NumBlocks = 4_000
	} else {
		p.NumBlocks = 100_000
	}
	return p
}

// microBackend builds a backend for a latency profile over the geometry.
func microBackend(p ringoram.Params, prof storage.Profile, scale float64) storage.Backend {
	n := p.Geometry().NumBuckets
	if prof.Name == "dummy" {
		return storage.NewDummyBackend(n, 1)
	}
	return storage.WithLatency(storage.NewMemBackend(n), prof.Scaled(scale))
}

// microProfiles returns the four backends of Figure 10, in plot order.
func microProfiles(cfg Config) []storage.Profile {
	return storage.Profiles()
}

// runSeqOps runs n sequential ORAM ops and returns the duration.
func runSeqOps(seq *ringoram.Seq, mix *workload.Mix, n int, seed uint64) (time.Duration, error) {
	rng := newRand(seed)
	start := time.Now()
	for i := 0; i < n; i++ {
		op := mix.Next(rng)
		if op.Kind == workload.OpRead {
			if _, _, err := seq.Read(op.Key); err != nil {
				return 0, err
			}
		} else if err := seq.Write(op.Key, []byte("v")); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// runExecBatches drives the executor with read batches of the given size
// for nBatches epochs of batchesPerEpoch, returning ops and duration.
func runExecBatches(exec *oramexec.Executor, store storage.BucketStore, mix *workload.Mix, batchSize, batches, batchesPerEpoch int, seed uint64) (int, time.Duration, error) {
	rng := newRand(seed)
	ops := 0
	epoch := exec.Epoch()
	start := time.Now()
	for b := 0; b < batches; b++ {
		if b%batchesPerEpoch == 0 {
			epoch++
			exec.BeginEpoch(epoch)
		}
		readOps := make([]oramexec.ReadOp, batchSize)
		seen := make(map[string]bool, batchSize)
		for i := range readOps {
			// Distinct keys per batch (the proxy deduplicates upstream).
			for {
				k := mix.Next(rng).Key
				if !seen[k] {
					seen[k] = true
					readOps[i].Key = k
					break
				}
			}
		}
		plan, err := exec.PlanReadBatch(readOps)
		if err != nil {
			return 0, 0, err
		}
		if _, err := exec.Execute(plan); err != nil {
			return 0, 0, err
		}
		ops += batchSize
		if (b+1)%batchesPerEpoch == 0 {
			if _, err := exec.Flush(); err != nil {
				return 0, 0, err
			}
			if err := store.CommitEpoch(epoch); err != nil {
				return 0, 0, err
			}
		}
	}
	return ops, time.Since(start), nil
}

// Fig10a reproduces Figure 10a: sequential vs parallel vs parallel+crypto
// throughput at batch size 500 across the four backends.
func Fig10a(cfg Config) ([]Row, error) {
	batchSize := 500
	batches := 4
	seqOps := 400
	if cfg.Quick {
		batchSize, batches, seqOps = 100, 2, 60
	}
	var rows []Row
	for _, prof := range microProfiles(cfg) {
		scale := cfg.LatencyScale
		// Sequential (crypto on, as in canonical Ring ORAM).
		{
			p := microParams(cfg, true)
			backend := microBackend(p, prof, scale)
			seq, err := ringoram.NewSeq(oramexec.StoreAdapter{B: backend, Epoch: 1}, cryptoutil.KeyFromSeed([]byte("f10a")), p)
			if err != nil {
				return nil, err
			}
			mix := workload.NewMix(workload.NewUniform(p.NumBlocks), 1.0, "k")
			n := seqOps
			if prof.Name == "server WAN" {
				// WAN sequential ops cost ~path × RTT each; a handful
				// suffices for a rate estimate and keeps runtime sane.
				n = seqOps / 8
				if n < 4 {
					n = 4
				}
			}
			d, err := runSeqOps(seq, mix, n, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Experiment: "fig10a", Series: "Sequential", X: prof.Name, Value: opsPerSec(n, d), Unit: "ops/s"})
			backend.Close()
		}
		for _, crypto := range []bool{false, true} {
			series := "Parallel"
			if crypto {
				series = "ParallelCrypto"
			}
			p := microParams(cfg, crypto)
			backend := microBackend(p, prof, scale)
			var key *cryptoutil.Key
			if crypto {
				key = cryptoutil.KeyFromSeed([]byte("f10a"))
			}
			oram, err := oramexec.InitORAM(backend, key, p)
			if err != nil {
				return nil, err
			}
			exec := oramexec.New(oram, backend, oramexec.Config{Parallelism: 256})
			mix := workload.NewMix(workload.NewUniform(p.NumBlocks), 1.0, "k")
			ops, d, err := runExecBatches(exec, backend, mix, batchSize, batches, 1, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Experiment: "fig10a", Series: series, X: prof.Name, Value: opsPerSec(ops, d), Unit: "ops/s"})
			backend.Close()
		}
	}
	return rows, nil
}

// Fig10b reproduces Figure 10b: parallel ORAM throughput vs batch size.
func Fig10b(cfg Config) ([]Row, error) {
	return fig10bc(cfg, false)
}

// Fig10c reproduces Figure 10c: batch latency vs batch size.
func Fig10c(cfg Config) ([]Row, error) {
	return fig10bc(cfg, true)
}

func fig10bc(cfg Config, latency bool) ([]Row, error) {
	sizes := []int{1, 10, 100, 500, 1000, 2000}
	batches := 4
	if cfg.Quick {
		sizes = []int{1, 10, 100, 500}
		batches = 2
	}
	exp := "fig10b"
	if latency {
		exp = "fig10c"
	}
	var rows []Row
	for _, prof := range microProfiles(cfg) {
		p := microParams(cfg, true)
		backend := microBackend(p, prof, cfg.LatencyScale/4)
		oram, err := oramexec.InitORAM(backend, cryptoutil.KeyFromSeed([]byte("f10b")), p)
		if err != nil {
			return nil, err
		}
		exec := oramexec.New(oram, backend, oramexec.Config{Parallelism: 512})
		mix := workload.NewMix(workload.NewUniform(p.NumBlocks), 1.0, "k")
		for _, size := range sizes {
			if size > p.NumBlocks/2 {
				continue
			}
			// Small batches need more rounds for a stable rate estimate.
			rounds := batches
			if size < 100 {
				rounds = batches * 8
			}
			ops, d, err := runExecBatches(exec, backend, mix, size, rounds, 1, cfg.Seed)
			if err != nil {
				return nil, err
			}
			if latency {
				per := d / time.Duration(rounds)
				rows = append(rows, Row{Experiment: exp, Series: prof.Name, X: fmt.Sprint(size), Value: float64(per.Microseconds()) / 1000, Unit: "ms/batch"})
			} else {
				rows = append(rows, Row{Experiment: exp, Series: prof.Name, X: fmt.Sprint(size), Value: opsPerSec(ops, d), Unit: "ops/s"})
			}
		}
		backend.Close()
	}
	return rows, nil
}

// Fig10d reproduces Figure 10d: delayed visibility (buffered, deduplicated
// epoch write-back) vs immediate write-back, with epochs of eight batches.
func Fig10d(cfg Config) ([]Row, error) {
	batchSize, epochs := 200, 2
	if cfg.Quick {
		batchSize = 64
	}
	const batchesPerEpoch = 8
	var rows []Row
	for _, prof := range microProfiles(cfg) {
		for _, writeThrough := range []bool{false, true} {
			series := "Normal"
			if writeThrough {
				series = "Write Back"
			}
			p := microParams(cfg, true)
			backend := microBackend(p, prof, cfg.LatencyScale/4)
			oram, err := oramexec.InitORAM(backend, cryptoutil.KeyFromSeed([]byte("f10d")), p)
			if err != nil {
				return nil, err
			}
			exec := oramexec.New(oram, backend, oramexec.Config{Parallelism: 256, WriteThrough: writeThrough})
			mix := workload.NewMix(workload.NewUniform(p.NumBlocks), 1.0, "k")
			ops, d, err := runExecBatches(exec, backend, mix, batchSize, epochs*batchesPerEpoch, batchesPerEpoch, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Experiment: "fig10d", Series: series, X: prof.Name, Value: opsPerSec(ops, d), Unit: "ops/s"})
			backend.Close()
		}
	}
	return rows, nil
}

// Fig10e reproduces Figure 10e: relative throughput increase as the epoch
// grows from 2 to 2^7 batches.
func Fig10e(cfg Config) ([]Row, error) {
	batchSize := 168 // one eviction per batch at A=168 in the paper; scaled
	epochSizes := []int{2, 8, 32, 128}
	if cfg.Quick {
		batchSize = 48
		epochSizes = []int{2, 8, 32}
	}
	var rows []Row
	for _, prof := range microProfiles(cfg) {
		var baselineRate float64
		for i, bpe := range append([]int{1}, epochSizes...) {
			p := microParams(cfg, true)
			backend := microBackend(p, prof, cfg.LatencyScale/8)
			oram, err := oramexec.InitORAM(backend, cryptoutil.KeyFromSeed([]byte("f10e")), p)
			if err != nil {
				return nil, err
			}
			exec := oramexec.New(oram, backend, oramexec.Config{Parallelism: 256})
			mix := workload.NewMix(workload.NewUniform(p.NumBlocks), 1.0, "k")
			ops, d, err := runExecBatches(exec, backend, mix, batchSize, bpe, bpe, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rate := opsPerSec(ops, d)
			if i == 0 {
				baselineRate = rate
				backend.Close()
				continue
			}
			rows = append(rows, Row{Experiment: "fig10e", Series: prof.Name, X: fmt.Sprint(bpe), Value: rate / baselineRate, Unit: "x vs 1 batch"})
			backend.Close()
		}
	}
	return rows, nil
}

// Fig11a reproduces Figure 11a: throughput vs full-checkpoint frequency
// with durability enabled.
func Fig11a(cfg Config) ([]Row, error) {
	freqs := []int{1, 4, 16, 64}
	profiles := []storage.Profile{storage.ProfileServer, storage.ProfileServerWAN, storage.ProfileDynamo}
	numKeys := 4_000
	txns := 160
	if cfg.Quick {
		freqs = []int{1, 4, 16}
		numKeys = 2_000
		txns = 96
	}
	var rows []Row
	for _, prof := range profiles {
		for _, freq := range freqs {
			rate, err := proxyThroughput(cfg, proxyOpts{
				numKeys:    numKeys,
				profile:    prof,
				scale:      cfg.LatencyScale / 8,
				durability: true,
				ckptEvery:  freq,
				txns:       txns,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Experiment: "fig11a", Series: prof.Name, X: fmt.Sprint(freq), Value: rate, Unit: "ops/s"})
		}
	}
	return rows, nil
}

// Table11b reproduces Table 11b: recovery cost breakdown by database size.
func Table11b(cfg Config) ([]Row, error) {
	sizes := []int{10_000, 100_000}
	if cfg.Quick {
		sizes = []int{2_000, 10_000}
	}
	var rows []Row
	for _, n := range sizes {
		p := ringoram.Params{
			NumBlocks: n, Z: 25, S: 40, A: 25,
			KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
		}
		label := fmt.Sprint(n)
		rows = append(rows, Row{Experiment: "table11b", Series: "Levels", X: label, Value: float64(p.Geometry().Levels), Unit: "levels"})

		// Slowdown: durability on vs off throughput (normal execution).
		base, err := proxyThroughput(cfg, proxyOpts{params: &p, numKeys: n, txns: 40, durability: false})
		if err != nil {
			return nil, err
		}
		durable, err := proxyThroughput(cfg, proxyOpts{params: &p, numKeys: n, txns: 40, durability: true, ckptEvery: 8})
		if err != nil {
			return nil, err
		}
		if base > 0 {
			rows = append(rows, Row{Experiment: "table11b", Series: "Slowdown", X: label, Value: durable / base, Unit: "x"})
		}

		// Recovery time breakdown: build state, crash mid-epoch, recover.
		key := cryptoutil.KeyFromSeed([]byte("t11b"))
		backend := storage.NewMemBackend(p.Geometry().NumBuckets)
		proxy, err := core.New(backend, core.Config{
			Params: p, Key: key,
			ReadBatches: 4, ReadBatchSize: 16, WriteBatchSize: 32,
			FullCheckpointEvery: 4,
		})
		if err != nil {
			return nil, err
		}
		// A few committed epochs plus one in-flight batch.
		for e := 0; e < 3; e++ {
			tx := proxy.Begin()
			for i := 0; i < 8; i++ {
				if err := tx.Write(fmt.Sprintf("k%d-%d", e, i), []byte("v")); err != nil {
					return nil, err
				}
			}
			ch := tx.CommitAsync()
			if err := proxy.EndEpoch(); err != nil {
				return nil, err
			}
			if err := <-ch; err != nil {
				return nil, err
			}
		}
		tx := proxy.Begin()
		go func() { tx.Read("k0-0") }()
		time.Sleep(2 * time.Millisecond) // let the read enqueue
		if err := proxy.StepReadBatch(); err != nil {
			return nil, err
		}
		// Crash: measure recovery.
		logBytesBefore := logBytes(backend)
		wl, err := wal.New(backend, wal.Config{Key: key})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rec, err := wl.Recover()
		if err != nil {
			return nil, err
		}
		restored, err := ringoram.NewFromState(key, p, rec.Full, rec.Deltas...)
		if err != nil {
			return nil, err
		}
		if err := backend.RollbackTo(rec.CommittedEpoch); err != nil {
			return nil, err
		}
		exec := oramexec.New(restored, backend, oramexec.Config{})
		exec.BeginEpoch(rec.CommittedEpoch + 1)
		pathStart := time.Now()
		for _, batch := range rec.AbortedBatches {
			if err := exec.ReplayBatch(batch); err != nil {
				return nil, err
			}
		}
		if _, err := exec.Flush(); err != nil {
			return nil, err
		}
		pathTime := time.Since(pathStart)
		total := time.Since(start)
		rows = append(rows,
			Row{Experiment: "table11b", Series: "RecTime", X: label, Value: float64(total.Microseconds()) / 1000, Unit: "ms"},
			Row{Experiment: "table11b", Series: "Network", X: label, Value: float64(logBytesBefore) / 1024, Unit: "KiB"},
			Row{Experiment: "table11b", Series: "Pos", X: label, Value: float64(rec.Stats.PosEntries), Unit: "entries"},
			Row{Experiment: "table11b", Series: "Perm", X: label, Value: float64(rec.Stats.PermBuckets), Unit: "buckets"},
			Row{Experiment: "table11b", Series: "Paths", X: label, Value: float64(pathTime.Microseconds()) / 1000, Unit: "ms"},
		)
	}
	return rows, nil
}

func logBytes(b *storage.MemBackend) int {
	recs, err := b.Scan(0)
	if err != nil {
		return 0
	}
	total := 0
	for _, r := range recs {
		total += len(r)
	}
	return total
}
