package bench

import (
	"fmt"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// shardStoreProfile models one shard's private storage server: modest
// latency, a bounded number of concurrent request slots, and per-item
// service times, so a single backend saturates under one shard's batch and
// extra shards add aggregate capacity — the deployment the sharded proxy
// targets. The per-item costs matter since I/O went vectored: without them
// one scatter-gather call would amortize the whole batch to a single round
// trip and the experiment would degenerate into a CPU benchmark instead of
// measuring storage capacity scaling.
var shardStoreProfile = storage.Profile{
	Name:           "shardstore",
	Read:           time.Millisecond,
	Write:          time.Millisecond,
	ReadPerSlot:    25 * time.Microsecond,
	WritePerBucket: 30 * time.Microsecond,
	MaxConcurrent:  32,
}

// ShardScale measures aggregate read/write throughput of a uniform
// microbenchmark as the trusted proxy is partitioned into 1, 2 and 4 shards,
// each shard owning an independent (capped-concurrency) storage backend.
// Per-shard batch quotas are fixed — every shard issues R read batches of
// bread and one write batch of bwrite per epoch — so aggregate epoch
// capacity, and with it saturated throughput, grows with the shard count.
func ShardScale(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const (
		readBatches = 4
		readBatch   = 16
		writeBatch  = 32
		numKeys     = 2048 // uniform key space, shared by all configurations
	)
	epochs := 6
	if cfg.Quick {
		epochs = 3
	}
	var rows []Row
	for _, shards := range []int{1, 2, 4} {
		p := ringoram.Params{
			// Equal per-shard geometry across configurations keeps path
			// lengths comparable; capacity headroom absorbs hash skew.
			NumBlocks: numKeys,
			Z:         16, S: 24, A: 16,
			KeySize: 24, ValueSize: 64,
			Seed: cfg.Seed,
		}
		// This experiment measures the latency/capacity-bound regime the
		// sharded deployment targets; below a floor the run degenerates into
		// a CPU benchmark of N-fold dummy traffic.
		scale := cfg.LatencyScale
		if scale < 0.5 {
			scale = 0.5
		}
		prof := shardStoreProfile.Scaled(scale)
		stores := make([]storage.Backend, shards)
		for i := range stores {
			stores[i] = storage.WithLatency(storage.NewMemBackend(p.Geometry().NumBuckets), prof)
		}
		proxy, err := core.NewSharded(stores, core.Config{
			Params: p, Key: cryptoutil.KeyFromSeed([]byte("shardscale")),
			ReadBatches:       readBatches,
			ReadBatchSize:     readBatch,
			WriteBatchSize:    writeBatch,
			DisableDurability: true,
			Parallelism:       512,
		})
		if err != nil {
			return nil, err
		}
		rng := newRand(cfg.Seed + uint64(shards))
		// Saturate ~60% of the aggregate quotas: high enough to exercise
		// every shard, low enough that hash skew rarely overflows one.
		readTarget := readBatches * readBatch * shards * 6 / 10
		writeTarget := writeBatch * shards * 6 / 10
		pick := func(n int) []string {
			seen := make(map[string]bool, n)
			out := make([]string, 0, n)
			for len(out) < n {
				k := fmt.Sprintf("u-%d", rng.IntN(numKeys))
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
			return out
		}
		runEpoch := func() (reads, writes int, err error) {
			rtx := proxy.Begin()
			readKeys := pick(readTarget)
			readDone := make(chan error, 1)
			go func() {
				_, rerr := rtx.ReadMany(readKeys)
				readDone <- rerr
			}()
			var chans []<-chan error
			for _, k := range pick(writeTarget) {
				tx := proxy.Begin()
				if werr := tx.Write(k, []byte("v")); werr != nil {
					tx.Abort()
					continue
				}
				chans = append(chans, tx.CommitAsync())
			}
			// ReadMany queues every fetch before blocking; wait for that,
			// then drive the fixed schedule.
			for i := 0; i < 100000 && proxy.PendingFetches() < readTarget; i++ {
				time.Sleep(10 * time.Microsecond)
			}
			for b := 0; b < readBatches; b++ {
				if serr := proxy.StepReadBatch(); serr != nil {
					return 0, 0, serr
				}
			}
			if eerr := proxy.EndEpoch(); eerr != nil {
				return 0, 0, eerr
			}
			if rerr := <-readDone; rerr == nil {
				reads = len(readKeys)
			}
			rtx.Abort()
			for _, ch := range chans {
				if cerr := <-ch; cerr == nil {
					writes++
				}
			}
			return reads, writes, nil
		}
		// Warm-up epoch, then measure.
		if _, _, err := runEpoch(); err != nil {
			proxy.Close()
			return nil, err
		}
		totalReads, totalWrites := 0, 0
		start := time.Now()
		for e := 0; e < epochs; e++ {
			r, w, err := runEpoch()
			if err != nil {
				proxy.Close()
				return nil, err
			}
			totalReads += r
			totalWrites += w
		}
		elapsed := time.Since(start)
		proxy.Close()
		storage.CloseAll(stores)
		x := fmt.Sprint(shards)
		rows = append(rows,
			Row{Experiment: "shards", Series: "Reads", X: x, Value: opsPerSec(totalReads, elapsed), Unit: "reads/s", Shards: shards},
			Row{Experiment: "shards", Series: "Writes", X: x, Value: opsPerSec(totalWrites, elapsed), Unit: "writes/s", Shards: shards},
			Row{Experiment: "shards", Series: "Total", X: x, Value: opsPerSec(totalReads+totalWrites, elapsed), Unit: "ops/s", Shards: shards},
		)
	}
	return rows, nil
}
