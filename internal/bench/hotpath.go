package bench

import (
	"fmt"
	"runtime"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// HotPath measures the proxy's CPU-bound batch hot path (no storage latency,
// no durability): the ORAM executor's slot pipeline — plan, fetch, decrypt,
// re-encrypt, write back — and the end-to-end single-shard proxy on a raw
// in-memory backend. Unlike the latency-profile experiments, every number
// here is pure proxy CPU: crypto construction, allocation churn and batch
// bookkeeping. Three series:
//
//	exec    physical slots/s through a steady-state executor read round
//	allocs  heap allocations per physical slot on the same read path
//	e2e     committed txns/s through the full proxy (MVTSO + batching)
//
// The committed BENCH_hotpath.json holds two runs of this experiment — the
// pre-refactor CTR+HMAC baseline and the pooled AES-GCM hot path — merged
// with a "pre: "/"post: " series prefix.
func HotPath(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	rows, err := hotPathExec(cfg)
	if err != nil {
		return nil, err
	}
	e2e, err := hotPathE2E(cfg)
	if err != nil {
		return nil, err
	}
	return append(rows, e2e...), nil
}

// hotPathParams is the shared geometry: crypto-relevant value size, canonical
// Ring ORAM schedule constants.
func hotPathParams(seed uint64, numKeys int) ringoram.Params {
	return ringoram.Params{
		NumBlocks: numKeys, Z: 16, S: 24, A: 16,
		KeySize: 24, ValueSize: 512, Seed: seed,
	}
}

// execHarness is a steady-state executor over a raw mem backend, preloaded
// with numKeys keys. It is reused by BenchmarkHotPath and the allocation
// regression gate so CI measures exactly what the committed JSON reports.
type execHarness struct {
	exec    *oramexec.Executor
	backend storage.Backend
	keys    []string
	cursor  int
	epoch   uint64
	readOps []oramexec.ReadOp
	padOps  []oramexec.WriteOp
}

const (
	hotReadBatches    = 4
	hotReadBatchSlots = 16
)

func newExecHarness(seed uint64, numKeys int) (*execHarness, error) {
	p := hotPathParams(seed, numKeys)
	backend := storage.NewMemBackend(p.Geometry().NumBuckets)
	key := cryptoutil.KeyFromSeed([]byte("hotpath"))
	oram, err := oramexec.InitORAM(backend, key, p)
	if err != nil {
		return nil, err
	}
	h := &execHarness{
		exec:    oramexec.New(oram, backend, oramexec.Config{}),
		backend: backend,
		keys:    make([]string, numKeys),
		epoch:   1,
		readOps: make([]oramexec.ReadOp, hotReadBatchSlots),
		padOps:  make([]oramexec.WriteOp, hotReadBatchSlots),
	}
	for i := range h.keys {
		h.keys[i] = fmt.Sprintf("hk-%06d", i)
	}
	// Preload every key so steady-state reads decode real target slots.
	value := make([]byte, 256)
	for i := range value {
		value[i] = byte(i)
	}
	h.exec.BeginEpoch(h.epoch)
	for start := 0; start < numKeys; start += 32 {
		end := start + 32
		if end > numKeys {
			end = numKeys
		}
		ops := make([]oramexec.WriteOp, 0, end-start)
		for _, k := range h.keys[start:end] {
			ops = append(ops, oramexec.WriteOp{Key: k, Value: value})
		}
		plan, err := h.exec.PlanWriteBatch(ops)
		if err != nil {
			return nil, err
		}
		if _, err := h.exec.Execute(plan); err != nil {
			return nil, err
		}
	}
	if err := h.endEpoch(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *execHarness) endEpoch() error {
	if _, err := h.exec.Flush(); err != nil {
		return err
	}
	if err := h.backend.CommitEpoch(h.epoch); err != nil {
		return err
	}
	h.epoch++
	h.exec.BeginEpoch(h.epoch)
	return nil
}

// runEpoch drives one steady-state epoch: hotReadBatches read batches of
// existing keys plus a padding-only write batch (keeps the eviction schedule
// honest), then flush + commit. Scratch slices are reused so the harness
// itself stays off the measured allocation profile.
func (h *execHarness) runEpoch() error {
	for b := 0; b < hotReadBatches; b++ {
		for i := range h.readOps {
			h.readOps[i].Key = h.keys[h.cursor]
			h.cursor = (h.cursor + 1) % len(h.keys)
		}
		plan, err := h.exec.PlanReadBatch(h.readOps)
		if err != nil {
			return err
		}
		if _, err := h.exec.Execute(plan); err != nil {
			return err
		}
	}
	plan, err := h.exec.PlanWriteBatch(h.padOps)
	if err != nil {
		return err
	}
	if _, err := h.exec.Execute(plan); err != nil {
		return err
	}
	return h.endEpoch()
}

// slotsProcessed reports physical batch slots consumed so far (remote +
// locally served), the denominator of the per-slot metrics.
func (h *execHarness) slotsProcessed() int64 {
	s := h.exec.Stats()
	return s.RemoteReads + s.LocalReads
}

func (h *execHarness) close() { h.backend.Close() }

func hotPathExec(cfg Config) ([]Row, error) {
	const numKeys = 2048
	epochs := 30
	if cfg.Quick {
		epochs = 8
	}
	h, err := newExecHarness(cfg.Seed, numKeys)
	if err != nil {
		return nil, err
	}
	defer h.close()
	// Warm-up: populate buffers, reach the periodic-eviction regime.
	for i := 0; i < 2; i++ {
		if err := h.runEpoch(); err != nil {
			return nil, err
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	slots0 := h.slotsProcessed()
	epochTimes := make([]time.Duration, 0, epochs)
	start := time.Now()
	for i := 0; i < epochs; i++ {
		es := time.Now()
		if err := h.runEpoch(); err != nil {
			return nil, err
		}
		epochTimes = append(epochTimes, time.Since(es))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	slots := h.slotsProcessed() - slots0
	if slots == 0 {
		return nil, fmt.Errorf("bench: hotpath exec processed no slots")
	}
	allocsPerSlot := float64(m1.Mallocs-m0.Mallocs) / float64(slots)
	return []Row{
		{
			Experiment: "hotpath", Series: "exec", X: "mem-1shard",
			Value: opsPerSec(int(slots), elapsed), Unit: "slots/s",
			Shards: 1,
			P50ms:  percentile(epochTimes, 50),
			P99ms:  percentile(epochTimes, 99),
		},
		{
			Experiment: "hotpath", Series: "allocs", X: "read-path",
			Value: allocsPerSlot, Unit: "allocs/slot", Shards: 1,
		},
	}, nil
}

// hotPathE2E drives the full single-shard proxy (MVTSO, fetch queues, batch
// schedule) on a raw mem backend with durability disabled: committed
// read-write transactions per second when the only cost is proxy CPU.
func hotPathE2E(cfg Config) ([]Row, error) {
	const (
		numKeys       = 1024
		txnsPerEpoch  = 12
		readsPerTxn   = 2
		readBatchSize = 16
		writeBatch    = 64
	)
	epochs := 20
	if cfg.Quick {
		epochs = 6
	}
	p := hotPathParams(cfg.Seed, numKeys)
	backend := storage.NewMemBackend(p.Geometry().NumBuckets)
	defer backend.Close()
	proxy, err := core.New(backend, core.Config{
		Params: p, Key: cryptoutil.KeyFromSeed([]byte("hotpath-e2e")),
		ReadBatches:       hotReadBatches,
		ReadBatchSize:     readBatchSize,
		WriteBatchSize:    writeBatch,
		Boundary:          core.BoundarySync,
		DisableDurability: true,
	})
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("he-%06d", i)
	}
	value := make([]byte, 256)
	stepEpoch := func() error {
		for b := 0; b < hotReadBatches; b++ {
			if err := proxy.StepReadBatch(); err != nil {
				return err
			}
		}
		return proxy.EndEpoch()
	}
	// Preload all keys (write batches cap writes per epoch).
	for start := 0; start < numKeys; start += writeBatch {
		end := start + writeBatch
		if end > numKeys {
			end = numKeys
		}
		chans := make([]<-chan error, 0, end-start)
		for _, k := range keys[start:end] {
			tx := proxy.Begin()
			if err := tx.Write(k, value); err != nil {
				tx.Abort()
				continue
			}
			chans = append(chans, tx.CommitAsync())
		}
		if err := stepEpoch(); err != nil {
			return nil, err
		}
		for _, ch := range chans {
			if err := <-ch; err != nil {
				return nil, fmt.Errorf("bench: hotpath preload commit: %w", err)
			}
		}
	}
	rng := newRand(cfg.Seed + 7)
	writeCursor := 0
	runEpoch := func() ([]*core.Future, []<-chan error, error) {
		futures := make([]*core.Future, 0, txnsPerEpoch*readsPerTxn)
		chans := make([]<-chan error, 0, txnsPerEpoch)
		for i := 0; i < txnsPerEpoch; i++ {
			tx := proxy.Begin()
			for r := 0; r < readsPerTxn; r++ {
				futures = append(futures, tx.ReadAsync(keys[rng.IntN(numKeys)]))
			}
			// Distinct write keys within an epoch: no write-write aborts.
			k := keys[writeCursor]
			writeCursor = (writeCursor + 1) % numKeys
			if err := tx.Write(k, value); err != nil {
				tx.Abort()
				continue
			}
			chans = append(chans, tx.CommitAsync())
		}
		if err := stepEpoch(); err != nil {
			return nil, nil, err
		}
		return futures, chans, nil
	}
	drain := func(futures []*core.Future, chans []<-chan error) int {
		for _, f := range futures {
			f.Value() //nolint:errcheck // padding misses are fine
		}
		n := 0
		for _, ch := range chans {
			if err := <-ch; err == nil {
				n++
			}
		}
		return n
	}
	// Warm-up epoch.
	f, c, err := runEpoch()
	if err != nil {
		return nil, err
	}
	drain(f, c)
	committed := 0
	epochTimes := make([]time.Duration, 0, epochs)
	start := time.Now()
	for e := 0; e < epochs; e++ {
		es := time.Now()
		f, c, err := runEpoch()
		if err != nil {
			return nil, err
		}
		committed += drain(f, c)
		epochTimes = append(epochTimes, time.Since(es))
	}
	elapsed := time.Since(start)
	if committed == 0 {
		return nil, fmt.Errorf("bench: hotpath e2e committed nothing")
	}
	return []Row{{
		Experiment: "hotpath", Series: "e2e", X: "mem-1shard",
		Value: opsPerSec(committed, elapsed), Unit: "txns/s",
		Shards: 1,
		P50ms:  percentile(epochTimes, 50),
		P99ms:  percentile(epochTimes, 99),
	}}, nil
}
