package bench

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"obladi/internal/baseline"
	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/freehealth"
	"obladi/internal/kvtxn"
	"obladi/internal/ringoram"
	"obladi/internal/smallbank"
	"obladi/internal/storage"
	"obladi/internal/tpcc"
	"obladi/internal/workload"
)

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// proxyOpts configures a throwaway Obladi proxy for microbenchmarks.
type proxyOpts struct {
	params     *ringoram.Params // nil = derive from numKeys
	numKeys    int
	profile    storage.Profile
	scale      float64
	durability bool
	ckptEvery  int
	txns       int
}

// proxyThroughput measures committed single-write transactions per second
// on a manually-driven proxy.
func proxyThroughput(cfg Config, opt proxyOpts) (float64, error) {
	p := ringoram.Params{
		NumBlocks: opt.numKeys, Z: 16, S: 24, A: 16,
		KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
	}
	if opt.params != nil {
		p = *opt.params
	}
	var backend storage.Backend = storage.NewMemBackend(p.Geometry().NumBuckets)
	if opt.profile.Name != "" && opt.profile.Name != "dummy" {
		backend = storage.WithLatency(backend, opt.profile.Scaled(opt.scale))
	}
	proxy, err := core.New(backend, core.Config{
		Params: p, Key: cryptoutil.KeyFromSeed([]byte("bench")),
		ReadBatches: 4, ReadBatchSize: 16, WriteBatchSize: 32,
		DisableDurability:   !opt.durability,
		FullCheckpointEvery: opt.ckptEvery,
		Parallelism:         128,
	})
	if err != nil {
		return 0, err
	}
	defer proxy.Close()
	rng := newRand(cfg.Seed)
	start := time.Now()
	done := 0
	for done < opt.txns {
		// A small group of write txns per epoch.
		group := 8
		if opt.txns-done < group {
			group = opt.txns - done
		}
		chans := make([]<-chan error, group)
		for i := 0; i < group; i++ {
			tx := proxy.Begin()
			if err := tx.Write(fmt.Sprintf("key-%d", rng.IntN(opt.numKeys)), []byte("v")); err != nil {
				return 0, err
			}
			chans[i] = tx.CommitAsync()
		}
		if err := proxy.EndEpoch(); err != nil {
			return 0, err
		}
		for _, ch := range chans {
			<-ch // conflicts abort; both outcomes count as completed ops
		}
		done += group
	}
	return opsPerSec(done, time.Since(start)), nil
}

// appEngine is one (engine, app) pairing for Figure 9 / Figure 10f.
type appEngine struct {
	name string
	db   kvtxn.DB
}

// engineSpec identifies the five systems of Figure 9.
type engineSpec struct {
	name string
	wan  bool
	kind string // obladi | nopriv | mysql
}

func fig9Engines() []engineSpec {
	return []engineSpec{
		{"Obladi", false, "obladi"},
		{"NoPriv", false, "nopriv"},
		{"MySQL", false, "mysql"},
		{"ObladiW", true, "obladi"},
		{"NoPrivW", true, "nopriv"},
	}
}

// appSpec describes one application workload.
type appSpec struct {
	name    string
	numKeys int
	valSize int
	// epoch shape per §6.4: TPC-C needs more read batches and a larger
	// write batch; FreeHealth is read-mostly with a small write batch.
	readBatches, readBatch, writeBatch int
	load                               func(db kvtxn.DB, quick bool) error
	next                               func(db kvtxn.DB, seed uint64) func() error
}

func appSpecs(cfg Config) []appSpec {
	tpccCfg := tpcc.Defaults()
	sbCfg := smallbank.Defaults()
	fhCfg := freehealth.Defaults()
	if !cfg.Quick {
		tpccCfg.Warehouses = 4
		tpccCfg.CustomersPerDist = 20
		tpccCfg.Items = 100
		sbCfg.Accounts = 400
		fhCfg.Patients = 80
	}
	return []appSpec{
		{
			name: "TPC-C", numKeys: 16384, valSize: tpcc.MinValueSize * 2,
			readBatches: 8, readBatch: 48, writeBatch: 96,
			load: func(db kvtxn.DB, quick bool) error { return tpcc.Load(db, tpccCfg) },
			next: func(db kvtxn.DB, seed uint64) func() error {
				c := tpcc.NewClient(db, tpccCfg, seed)
				return func() error { _, err := c.Next(); return err }
			},
		},
		{
			name: "FreeHealth", numKeys: 8192, valSize: freehealth.MinValueSize * 2,
			readBatches: 5, readBatch: 32, writeBatch: 24,
			load: func(db kvtxn.DB, quick bool) error { return freehealth.Load(db, fhCfg) },
			next: func(db kvtxn.DB, seed uint64) func() error {
				c := freehealth.NewClient(db, fhCfg, seed)
				return func() error { _, err := c.Next(); return err }
			},
		},
		{
			name: "Smallbank", numKeys: 4096, valSize: 64,
			readBatches: 4, readBatch: 32, writeBatch: 48,
			load: func(db kvtxn.DB, quick bool) error { return smallbank.Load(db, sbCfg) },
			next: func(db kvtxn.DB, seed uint64) func() error {
				c := smallbank.NewClient(db, sbCfg, seed)
				return func() error { _, err := c.Next(); return err }
			},
		},
	}
}

// buildEngine assembles a DB for an engine spec and app spec.
func buildEngine(cfg Config, es engineSpec, as appSpec, batchInterval time.Duration) (*appEngine, error) {
	var prof storage.Profile
	if es.wan {
		prof = storage.ProfileServerWAN.Scaled(cfg.LatencyScale / 8)
	} else {
		prof = storage.ProfileServer.Scaled(cfg.LatencyScale)
	}
	switch es.kind {
	case "obladi":
		p := ringoram.Params{
			NumBlocks: as.numKeys, Z: 16, S: 24, A: 16,
			KeySize: 48, ValueSize: as.valSize, Seed: cfg.Seed,
		}
		var backend storage.Backend = storage.NewMemBackend(p.Geometry().NumBuckets)
		backend = storage.WithLatency(backend, prof)
		proxy, err := core.New(backend, core.Config{
			Params: p, Key: cryptoutil.KeyFromSeed([]byte("fig9")),
			ReadBatches:       as.readBatches,
			ReadBatchSize:     as.readBatch,
			WriteBatchSize:    as.writeBatch,
			BatchInterval:     batchInterval,
			EagerBatches:      true,
			DisableDurability: true, // Figure 9 isolates the data path
			Parallelism:       256,
		})
		if err != nil {
			return nil, err
		}
		return &appEngine{name: es.name, db: kvtxn.ProxyDB{P: proxy}}, nil
	case "nopriv":
		store := storage.WithLatency(storage.NewMemBackend(0), prof)
		return &appEngine{name: es.name, db: baseline.NewNoPriv(store)}, nil
	case "mysql":
		store := storage.WithLatency(storage.NewMemBackend(0), prof)
		return &appEngine{name: es.name, db: baseline.NewTwoPL(store)}, nil
	}
	return nil, fmt.Errorf("bench: unknown engine kind %q", es.kind)
}

// runAppClients drives concurrent clients for a fixed transaction budget and
// returns throughput (committed txns/s) and mean latency.
func runAppClients(db kvtxn.DB, next func(db kvtxn.DB, seed uint64) func() error, clients, txnsPerClient int, seed uint64) (float64, time.Duration) {
	var committed, latencySum int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			run := next(db, seed+uint64(c))
			for i := 0; i < txnsPerClient; i++ {
				t0 := time.Now()
				err := run()
				if err == nil {
					atomic.AddInt64(&committed, 1)
					atomic.AddInt64(&latencySum, int64(time.Since(t0)))
				} else if !errors.Is(err, kvtxn.ErrAborted) {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	n := atomic.LoadInt64(&committed)
	if n == 0 {
		return 0, 0
	}
	return opsPerSec(int(n), elapsed), time.Duration(latencySum / n)
}

// fig9 measures all five engines across the three applications.
func fig9(cfg Config) (map[string]map[string][2]float64, error) {
	// Epoch-based commits need many concurrent clients to amortize: a
	// synchronous client commits once per epoch, so offered concurrency is
	// what fills Obladi's batches (the paper drives hundreds of clients).
	clients, txns := 64, 6
	if cfg.Quick {
		clients, txns = 32, 4
	}
	out := make(map[string]map[string][2]float64)
	for _, as := range appSpecs(cfg) {
		out[as.name] = make(map[string][2]float64)
		for _, es := range fig9Engines() {
			eng, err := buildEngine(cfg, es, as, 500*time.Microsecond)
			if err != nil {
				return nil, err
			}
			if err := as.load(eng.db, cfg.Quick); err != nil {
				eng.db.Close()
				return nil, fmt.Errorf("loading %s on %s: %w", as.name, es.name, err)
			}
			tput, lat := runAppClients(eng.db, as.next, clients, txns, cfg.Seed)
			out[as.name][es.name] = [2]float64{tput, float64(lat.Microseconds()) / 1000}
			eng.db.Close()
		}
	}
	return out, nil
}

// Fig9a reproduces Figure 9a: application throughput per engine.
func Fig9a(cfg Config) ([]Row, error) {
	m, err := fig9(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, as := range appSpecs(cfg) {
		for _, es := range fig9Engines() {
			rows = append(rows, Row{Experiment: "fig9a", Series: es.name, X: as.name, Value: m[as.name][es.name][0], Unit: "txn/s"})
		}
	}
	return rows, nil
}

// Fig9b reproduces Figure 9b: application latency per engine.
func Fig9b(cfg Config) ([]Row, error) {
	m, err := fig9(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, as := range appSpecs(cfg) {
		for _, es := range fig9Engines() {
			rows = append(rows, Row{Experiment: "fig9b", Series: es.name, X: as.name, Value: m[as.name][es.name][1], Unit: "ms"})
		}
	}
	return rows, nil
}

// Fig10f reproduces Figure 10f: application throughput on Obladi as a
// function of the epoch duration (batch interval sweep).
func Fig10f(cfg Config) ([]Row, error) {
	intervals := []time.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond, 12 * time.Millisecond}
	clients, txns := 48, 5
	if cfg.Quick {
		intervals = intervals[:3]
		clients, txns = 24, 4
	}
	var rows []Row
	for _, as := range appSpecs(cfg) {
		for _, iv := range intervals {
			eng, err := buildEngine(cfg, engineSpec{"Obladi", false, "obladi"}, as, iv)
			if err != nil {
				return nil, err
			}
			if err := as.load(eng.db, cfg.Quick); err != nil {
				eng.db.Close()
				return nil, err
			}
			tput, _ := runAppClients(eng.db, as.next, clients, txns, cfg.Seed)
			epochMs := float64((iv * time.Duration(as.readBatches)).Microseconds()) / 1000
			rows = append(rows, Row{Experiment: "fig10f", Series: as.name, X: fmt.Sprintf("%.1fms", epochMs), Value: tput, Unit: "txn/s"})
			eng.db.Close()
		}
	}
	return rows, nil
}

// AblationEpochCommit compares Obladi's delayed epoch commit against an
// epoch of one batch (commit "immediately"), the design decision DESIGN.md
// calls out. Returns throughput for both settings.
func AblationEpochCommit(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	var rows []Row
	for _, bpe := range []int{1, 8} {
		rate, err := proxyThroughput(cfg, proxyOpts{
			numKeys: 2_000,
			profile: storage.ProfileServer,
			scale:   cfg.LatencyScale,
			txns:    32 * bpe,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Experiment: "ablation-epoch", Series: "Obladi", X: fmt.Sprintf("%d batches/epoch", bpe), Value: rate, Unit: "txn/s"})
	}
	return rows, nil
}

// AblationReadCache compares version-cache serving on/off (§6.3).
func AblationReadCache(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	var rows []Row
	for _, disable := range []bool{false, true} {
		p := ringoram.Params{
			NumBlocks: 512, Z: 8, S: 12, A: 8, KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
		}
		backend := storage.WithLatency(storage.NewMemBackend(p.Geometry().NumBuckets), storage.ProfileServer.Scaled(cfg.LatencyScale))
		proxy, err := core.New(backend, core.Config{
			Params: p, Key: cryptoutil.KeyFromSeed([]byte("ab-rc")),
			ReadBatches: 6, ReadBatchSize: 8, WriteBatchSize: 48,
			DisableDurability: true,
			DisableReadCache:  disable,
		})
		if err != nil {
			return nil, err
		}
		// Hot-key workload: many reads of one key per epoch.
		mix := workload.NewMix(workload.NewZipfian(64, 0.99), 1.0, "h")
		rng := newRand(cfg.Seed)
		seedTx := proxy.Begin()
		for i := 0; i < 32; i++ {
			if err := seedTx.Write(mix.Key(i), []byte("v")); err != nil {
				return nil, err
			}
		}
		ch := seedTx.CommitAsync()
		if err := proxy.EndEpoch(); err != nil {
			return nil, err
		}
		<-ch
		start := time.Now()
		const reads = 24
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < reads; i++ {
				tx := proxy.Begin()
				tx.Read(mix.Next(rng).Key)
				tx.Abort()
			}
		}()
	pump:
		for {
			select {
			case <-done:
				break pump
			default:
				if err := proxy.Advance(); err != nil {
					return nil, err
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		name := "cache on"
		if disable {
			name = "cache off"
		}
		rows = append(rows, Row{Experiment: "ablation-readcache", Series: "Obladi", X: name, Value: opsPerSec(reads, time.Since(start)), Unit: "reads/s"})
		proxy.Close()
	}
	return rows, nil
}
