package bench

import (
	"runtime"
	"testing"
)

// BenchmarkHotPath drives the same steady-state executor harness the hotpath
// experiment (and the committed BENCH_hotpath.json) measures: one iteration
// is one epoch — four read batches plus a padding write batch, flush and
// commit — on a single shard over a raw in-memory backend. Run it with
// -benchmem to see the whole-epoch allocation profile; the read-path budget
// is policed separately by TestHotPathReadAllocBudget.
//
//	go test ./internal/bench/ -run=NONE -bench=BenchmarkHotPath -benchmem
func BenchmarkHotPath(b *testing.B) {
	h, err := newExecHarness(42, 2048)
	if err != nil {
		b.Fatal(err)
	}
	defer h.close()
	for i := 0; i < 2; i++ {
		if err := h.runEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	slots0 := h.slotsProcessed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.runEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	slots := h.slotsProcessed() - slots0
	if b.N > 0 && slots > 0 {
		b.ReportMetric(float64(slots)/b.Elapsed().Seconds(), "slots/s")
	}
}

// hotPathReadAllocCeiling is the regression gate for the read hot path:
// steady-state heap allocations per physical batch slot across
// PlanReadBatch+Execute, maintenance (evictions, reshuffles) included. With
// decoded values landing in the stash's slab arena, decoded keys compared
// in place, and plans/stash entries recycled through pools, the pipeline
// measures ~0.7 on this geometry (what remains is mostly the caller-owned
// result copy and per-epoch bookkeeping); the ceiling leaves room for
// run-to-run noise, not for a per-slot allocation creeping back in (the
// pre-pooling pipeline measured ~23, the pre-arena one ~1.6).
const hotPathReadAllocCeiling = 1.0

// TestHotPathReadAllocBudget fails if the executor's read path regresses
// past the allocation budget. Only the read batches are measured: the
// padding write batch, flush and epoch commit run outside the measured
// windows, so the gate tracks exactly the per-slot read pipeline (plan,
// fetch, open, complete) that dominates proxy CPU.
func TestHotPathReadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state epochs")
	}
	h, err := newExecHarness(42, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()
	// Warm-up: fill the task/arena pools, reach the periodic-eviction regime.
	for i := 0; i < 3; i++ {
		if err := h.runEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var mallocs uint64
	var slots int64
	var m0, m1 runtime.MemStats
	const epochs = 12
	for e := 0; e < epochs; e++ {
		for b := 0; b < hotReadBatches; b++ {
			for i := range h.readOps {
				h.readOps[i].Key = h.keys[h.cursor]
				h.cursor = (h.cursor + 1) % len(h.keys)
			}
			s0 := h.slotsProcessed()
			runtime.ReadMemStats(&m0)
			plan, err := h.exec.PlanReadBatch(h.readOps)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.exec.Execute(plan); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&m1)
			mallocs += m1.Mallocs - m0.Mallocs
			slots += h.slotsProcessed() - s0
		}
		// Close the epoch off the books: padding writes, flush, commit.
		plan, err := h.exec.PlanWriteBatch(h.padOps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.exec.Execute(plan); err != nil {
			t.Fatal(err)
		}
		if err := h.endEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if slots == 0 {
		t.Fatal("no slots processed")
	}
	perSlot := float64(mallocs) / float64(slots)
	t.Logf("read path: %.2f allocs/slot over %d slots (%d epochs)", perSlot, slots, epochs)
	if perSlot > hotPathReadAllocCeiling {
		t.Fatalf("read path allocates %.2f/slot, over the %.1f budget — a per-slot allocation crept back into the hot pipeline", perSlot, hotPathReadAllocCeiling)
	}
}
