package bench

import (
	"fmt"
	"os"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Disk measures the durable DiskBackend against the in-memory reference
// (beyond the paper: the paper's evaluation runs against in-memory stores,
// but §8's recovery story assumes the cloud store is the durable entity).
// Committed write transactions per second — and per-epoch latency
// percentiles — for MemBackend vs DiskBackend, each under the executor's
// scalar call-per-slot baseline and the vectored scatter-gather path.
//
// The run keeps durability ON: every epoch pays the disk backend's real
// fsync barriers (WAL appends, checkpoint records, the epoch commit), so the
// mem-vs-disk gap is the honest price of durability, and the scalar-vs-
// vectored split shows DiskBackend's vector-native paths (one lock
// acquisition and coalesced preads per stage) holding up where the scalar
// path pays per-slot overhead.
func Disk(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const (
		readBatches    = 4
		readBatchSize  = 16
		writeBatchSize = 32
		txnsPerEpoch   = 8
		numKeys        = 2048
	)
	epochs := 10
	if cfg.Quick {
		epochs = 5
	}
	type backendMode struct {
		name string
		open func(numBuckets int) (storage.Backend, func(), error)
	}
	backends := []backendMode{
		{"Mem", func(numBuckets int) (storage.Backend, func(), error) {
			b := storage.NewMemBackend(numBuckets)
			return b, func() { b.Close() }, nil
		}},
		{"Disk", func(numBuckets int) (storage.Backend, func(), error) {
			dir, err := os.MkdirTemp("", "obladi-bench-disk-")
			if err != nil {
				return nil, nil, err
			}
			b, err := storage.OpenDiskBackend(dir, numBuckets)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			return b, func() { b.Close(); os.RemoveAll(dir) }, nil
		}},
	}
	var rows []Row
	for _, bm := range backends {
		for _, mode := range []struct {
			name   string
			scalar bool
		}{
			{"Scalar", true},
			{"Vectored", false},
		} {
			p := ringoram.Params{
				NumBlocks: numKeys, Z: 16, S: 24, A: 16,
				KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
			}
			backend, cleanup, err := bm.open(p.Geometry().NumBuckets)
			if err != nil {
				return nil, err
			}
			proxy, err := core.New(backend, core.Config{
				Params: p, Key: cryptoutil.KeyFromSeed([]byte("disk")),
				ReadBatches:     readBatches,
				ReadBatchSize:   readBatchSize,
				WriteBatchSize:  writeBatchSize,
				Boundary:        core.BoundarySync,
				ScalarStorageIO: mode.scalar,
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			rng := newRand(cfg.Seed + 5)
			runEpoch := func() []<-chan error {
				chans := make([]<-chan error, 0, txnsPerEpoch)
				for i := 0; i < txnsPerEpoch; i++ {
					tx := proxy.Begin()
					k := fmt.Sprintf("d-%d-%d", i, rng.IntN(numKeys/txnsPerEpoch))
					if err := tx.Write(k, []byte("v")); err != nil {
						tx.Abort()
						continue
					}
					chans = append(chans, tx.CommitAsync())
				}
				for b := 0; b < readBatches; b++ {
					if err := proxy.StepReadBatch(); err != nil {
						return chans
					}
				}
				proxy.EndEpoch()
				return chans
			}
			for _, ch := range runEpoch() { // warm-up epoch
				<-ch
			}
			start := time.Now()
			var chans []<-chan error
			epochTimes := make([]time.Duration, 0, epochs)
			for e := 0; e < epochs; e++ {
				es := time.Now()
				chans = append(chans, runEpoch()...)
				epochTimes = append(epochTimes, time.Since(es))
			}
			committed := 0
			for _, ch := range chans {
				if err := <-ch; err == nil {
					committed++
				}
			}
			elapsed := time.Since(start)
			proxy.Close()
			cleanup()
			if committed == 0 {
				return nil, fmt.Errorf("bench: disk %s/%s committed nothing", bm.name, mode.name)
			}
			rows = append(rows, Row{
				Experiment: "disk",
				Series:     bm.name,
				X:          mode.name,
				Value:      opsPerSec(committed, elapsed),
				Unit:       "txns/s",
				Profile:    bm.name,
				Shards:     1,
				P50ms:      percentile(epochTimes, 50),
				P99ms:      percentile(epochTimes, 99),
			})
		}
	}
	return rows, nil
}
