package bench

import (
	"fmt"
	"os"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Disk measures the durable DiskBackend against the in-memory reference
// (beyond the paper: the paper's evaluation runs against in-memory stores,
// but §8's recovery story assumes the cloud store is the durable entity).
// Committed write transactions per second — and per-epoch latency
// percentiles — for MemBackend vs DiskBackend, each under the executor's
// scalar call-per-slot baseline and the vectored scatter-gather path.
//
// The run keeps durability ON: every epoch pays the disk backend's real
// fsync barriers (WAL appends, checkpoint records, the epoch commit), so the
// mem-vs-disk gap is the honest price of durability, and the scalar-vs-
// vectored split shows DiskBackend's vector-native paths (one lock
// acquisition and coalesced preads per stage) holding up where the scalar
// path pays per-slot overhead.
//
// The 2-shard section measures group commit: two disk shards sharing one
// data dir route their barriers through one CommitGroup, so a boundary's
// cross-shard fsyncs coalesce into shared flush waves. The mem sides of that
// comparison are the free-durability ceiling (Mem) and the durability-priced
// reference (Mem+fsync): a mem pair paying one *measured* device flush per
// barrier wave, shared through a LatencyGroup the way a CommitGroup wave is
// shared. Disk vs Mem is the raw price of real durability on the host —
// on a single-core box the fsync's kernel CPU steals cycles the proxy
// needs, so this gap is hardware-bound; Disk vs Mem+fsync is the number
// group commit is accountable for: how close the real durable path gets to
// an idealized store that pays exactly one flush per coalesced wave and
// nothing else.
func Disk(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const (
		readBatches    = 4
		readBatchSize  = 16
		writeBatchSize = 32
		txnsPerEpoch   = 8
		numKeys        = 2048
	)
	epochs := 10
	if cfg.Quick {
		epochs = 5
	}
	type backendMode struct {
		name string
		open func(numBuckets int) (storage.Backend, func(), error)
	}
	backends := []backendMode{
		{"Mem", func(numBuckets int) (storage.Backend, func(), error) {
			b := storage.NewMemBackend(numBuckets)
			return b, func() { b.Close() }, nil
		}},
		{"Disk", func(numBuckets int) (storage.Backend, func(), error) {
			dir, err := os.MkdirTemp("", "obladi-bench-disk-")
			if err != nil {
				return nil, nil, err
			}
			b, err := storage.OpenDiskBackend(dir, numBuckets)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			return b, func() { b.Close(); os.RemoveAll(dir) }, nil
		}},
	}
	var rows []Row
	for _, bm := range backends {
		for _, mode := range []struct {
			name   string
			scalar bool
		}{
			{"Scalar", true},
			{"Vectored", false},
		} {
			p := ringoram.Params{
				NumBlocks: numKeys, Z: 16, S: 24, A: 16,
				KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
			}
			backend, cleanup, err := bm.open(p.Geometry().NumBuckets)
			if err != nil {
				return nil, err
			}
			proxy, err := core.New(backend, core.Config{
				Params: p, Key: cryptoutil.KeyFromSeed([]byte("disk")),
				ReadBatches:     readBatches,
				ReadBatchSize:   readBatchSize,
				WriteBatchSize:  writeBatchSize,
				Boundary:        core.BoundarySync,
				ScalarStorageIO: mode.scalar,
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			rng := newRand(cfg.Seed + 5)
			runEpoch := func() []<-chan error {
				chans := make([]<-chan error, 0, txnsPerEpoch)
				for i := 0; i < txnsPerEpoch; i++ {
					tx := proxy.Begin()
					k := fmt.Sprintf("d-%d-%d", i, rng.IntN(numKeys/txnsPerEpoch))
					if err := tx.Write(k, []byte("v")); err != nil {
						tx.Abort()
						continue
					}
					chans = append(chans, tx.CommitAsync())
				}
				for b := 0; b < readBatches; b++ {
					if err := proxy.StepReadBatch(); err != nil {
						return chans
					}
				}
				proxy.EndEpoch()
				return chans
			}
			for _, ch := range runEpoch() { // warm-up epoch
				<-ch
			}
			start := time.Now()
			var chans []<-chan error
			epochTimes := make([]time.Duration, 0, epochs)
			for e := 0; e < epochs; e++ {
				es := time.Now()
				chans = append(chans, runEpoch()...)
				epochTimes = append(epochTimes, time.Since(es))
			}
			committed := 0
			for _, ch := range chans {
				if err := <-ch; err == nil {
					committed++
				}
			}
			elapsed := time.Since(start)
			proxy.Close()
			cleanup()
			if committed == 0 {
				return nil, fmt.Errorf("bench: disk %s/%s committed nothing", bm.name, mode.name)
			}
			rows = append(rows, Row{
				Experiment: "disk",
				Series:     bm.name,
				X:          mode.name,
				Value:      opsPerSec(committed, elapsed),
				Unit:       "txns/s",
				Profile:    bm.name,
				Shards:     1,
				P50ms:      percentile(epochTimes, 50),
				P99ms:      percentile(epochTimes, 99),
			})
		}
	}
	grouped, err := diskGrouped(cfg, epochs)
	if err != nil {
		return nil, err
	}
	return append(rows, grouped...), nil
}

// diskGrouped is the 2-shard group-commit section of the disk experiment.
func diskGrouped(cfg Config, epochs int) ([]Row, error) {
	// Paper-default batch sizes (Table 1: b_read = b_write = 32): the group
	// section models a production epoch, whose compute amortizes the fixed
	// per-batch durability barriers.
	const (
		readBatches    = 4
		readBatchSize  = 32
		writeBatchSize = 32
		txnsPerEpoch   = 16
		numKeys        = 2048
		shards         = 2
	)
	// The disk pair runs first so its CommitGroup stats can price the
	// Mem+fsync reference empirically: that reference charges exactly the
	// average device flush the disk shards paid in this run (same workload,
	// same host, same dirty-page sizes — an idle-host calibration would
	// underprice it several-fold), shared through a LatencyGroup the way a
	// CommitGroup wave shares a real fsync. One wave, one charge.
	fsyncCost := 300 * time.Microsecond // fallback if the disk run syncs nothing
	logheapWaves := 0.0                 // fsync waves per epoch on the unified-log path
	type backendMode struct {
		name    string
		profile string
		open    func(numBuckets int) ([]storage.Backend, func(), error)
	}
	backends := []backendMode{
		{"Disk", "Disk", func(numBuckets int) ([]storage.Backend, func(), error) {
			dir, err := os.MkdirTemp("", "obladi-bench-diskgroup-")
			if err != nil {
				return nil, nil, err
			}
			g, err := storage.OpenDiskGroup(dir, shards, numBuckets)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			cleanup := func() {
				stats := g.Group().Stats()
				if stats.Syncs > 0 {
					fsyncCost = stats.SyncTime / time.Duration(stats.Syncs)
				}
				g.Close()
				os.RemoveAll(dir)
			}
			return g.Backends(), cleanup, nil
		}},
		// The unified log: bucket versions, WAL streams and epoch commits of
		// both shards ride ONE physical segmented log, so FlushSealed costs
		// zero barriers (deferred appends) and the whole cross-shard epoch
		// commit is one record per shard plus the round's single fsync wave.
		{"Disk+logheap", "Disk+logheap", func(numBuckets int) ([]storage.Backend, func(), error) {
			dir, err := os.MkdirTemp("", "obladi-bench-logheap-")
			if err != nil {
				return nil, nil, err
			}
			g, err := storage.OpenDiskGroupOpts(dir, shards, numBuckets, storage.DiskOptions{LogHeap: true})
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			cleanup := func() {
				// Waves per epoch, measured before Close adds its final
				// checkpoint syncs; the warm-up epoch and open are included,
				// slightly overstating the steady-state figure.
				if totalEpochs := epochs + 1; totalEpochs > 0 {
					logheapWaves = float64(g.Group().Stats().Waves) / float64(totalEpochs)
				}
				g.Close()
				os.RemoveAll(dir)
			}
			return g.Backends(), cleanup, nil
		}},
		{"Mem", "Mem", func(numBuckets int) ([]storage.Backend, func(), error) {
			out := make([]storage.Backend, shards)
			for i := range out {
				out[i] = storage.NewMemBackend(numBuckets)
			}
			return out, func() {
				for _, b := range out {
					b.Close()
				}
			}, nil
		}},
		{"Mem+fsync", "Mem+fsync", func(numBuckets int) ([]storage.Backend, func(), error) {
			lg := storage.NewLatencyGroup()
			prof := storage.Profile{Name: "mem+fsync", Write: fsyncCost}
			out := make([]storage.Backend, shards)
			for i := range out {
				out[i] = storage.WithLatencyGroup(storage.NewMemBackend(numBuckets), prof, lg)
			}
			return out, func() {
				for _, b := range out {
					b.Close()
				}
			}, nil
		}},
	}
	var rows []Row
	for _, bm := range backends {
		p := ringoram.Params{
			NumBlocks: numKeys, Z: 16, S: 24, A: 16,
			KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
		}
		stores, cleanup, err := bm.open(p.Geometry().NumBuckets)
		if err != nil {
			return nil, err
		}
		proxy, err := core.NewSharded(stores, core.Config{
			Params: p, Key: cryptoutil.KeyFromSeed([]byte("disk")),
			ReadBatches:    readBatches,
			ReadBatchSize:  readBatchSize,
			WriteBatchSize: writeBatchSize,
			Boundary:       core.BoundarySync,
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		rng := newRand(cfg.Seed + 5)
		runEpoch := func() []<-chan error {
			chans := make([]<-chan error, 0, txnsPerEpoch)
			for i := 0; i < txnsPerEpoch; i++ {
				tx := proxy.Begin()
				k := fmt.Sprintf("d-%d-%d", i, rng.IntN(numKeys/txnsPerEpoch))
				if err := tx.Write(k, []byte("v")); err != nil {
					tx.Abort()
					continue
				}
				chans = append(chans, tx.CommitAsync())
			}
			for b := 0; b < readBatches; b++ {
				if err := proxy.StepReadBatch(); err != nil {
					return chans
				}
			}
			proxy.EndEpoch()
			return chans
		}
		for _, ch := range runEpoch() { // warm-up epoch
			<-ch
		}
		start := time.Now()
		var chans []<-chan error
		epochTimes := make([]time.Duration, 0, epochs)
		for e := 0; e < epochs; e++ {
			es := time.Now()
			chans = append(chans, runEpoch()...)
			epochTimes = append(epochTimes, time.Since(es))
		}
		committed := 0
		for _, ch := range chans {
			if err := <-ch; err == nil {
				committed++
			}
		}
		elapsed := time.Since(start)
		proxy.Close()
		cleanup()
		if committed == 0 {
			return nil, fmt.Errorf("bench: disk group %s committed nothing", bm.name)
		}
		rows = append(rows, Row{
			Experiment: "disk",
			Series:     bm.name,
			X:          "Vectored/group",
			Value:      opsPerSec(committed, elapsed),
			Unit:       "txns/s",
			Profile:    bm.profile,
			Shards:     shards,
			P50ms:      percentile(epochTimes, 50),
			P99ms:      percentile(epochTimes, 99),
		})
	}
	// The disk pair ran first (its stats price the reference); present the
	// rows ceiling-first like the single-shard section.
	rows = append(rows[2:], rows[0], rows[1])
	if logheapWaves > 0 {
		rows = append(rows, Row{
			Experiment: "disk",
			Series:     "Disk+logheap",
			X:          "fsync-waves",
			Value:      logheapWaves,
			Unit:       "waves/epoch",
			Profile:    "Disk+logheap",
			Shards:     shards,
		})
	}
	return rows, nil
}
