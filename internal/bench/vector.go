package bench

import (
	"fmt"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Vector measures the scatter-gather storage plane (beyond the paper,
// extending its §7 batching argument to the wire): committed write
// transactions per second — and per-epoch latency percentiles — with the
// executor's storage I/O vectored (one ReadSlots call per stage, one
// WriteBuckets call per flush) versus the scalar baseline (one ReadSlot
// frame and goroutine per slot, one WriteBucket call per bucket).
//
// Both modes run under the same bounded per-connection request window
// (core.Config.Parallelism): real deployments cap in-flight requests, which
// is precisely what makes un-batched wire traffic expensive — a stage of N
// slot reads needs ceil(N/window) round-trip waves scalar, but exactly one
// vectored. The latency backend charges each vectored call one round trip
// plus per-item service time, so the win is modeled honestly rather than
// assumed.
func Vector(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const (
		readBatches    = 4
		readBatchSize  = 16
		writeBatchSize = 32
		txnsPerEpoch   = 8
		numKeys        = 2048
		// requestWindow models the per-connection in-flight request cap a
		// remote store imposes; it only throttles the scalar path (a
		// vectored stage is one request).
		requestWindow = 32
	)
	epochs := 10
	if cfg.Quick {
		epochs = 5
	}
	profiles := []storage.Profile{storage.ProfileServer, storage.ProfileServerWAN, storage.ProfileDynamo}
	var rows []Row
	for _, prof := range profiles {
		for _, mode := range []struct {
			name   string
			scalar bool
		}{
			{"Scalar", true},
			{"Vectored", false},
		} {
			p := ringoram.Params{
				NumBlocks: numKeys, Z: 16, S: 24, A: 16,
				KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
			}
			// Measure in the latency-bound regime vectoring targets; below a
			// scale floor the run degenerates into a CPU benchmark where the
			// wire overhead being amortized is already nearly free.
			scale := cfg.LatencyScale
			if scale < 0.5 {
				scale = 0.5
			}
			if prof.Name == "server WAN" {
				// Keep the WAN point CI-friendly; ratios are what matter.
				scale /= 2
			}
			backend := storage.WithLatency(storage.NewMemBackend(p.Geometry().NumBuckets), prof.Scaled(scale))
			proxy, err := core.New(backend, core.Config{
				Params: p, Key: cryptoutil.KeyFromSeed([]byte("vector")),
				ReadBatches:     readBatches,
				ReadBatchSize:   readBatchSize,
				WriteBatchSize:  writeBatchSize,
				Boundary:        core.BoundarySync,
				Parallelism:     requestWindow,
				ScalarStorageIO: mode.scalar,
				// Isolate storage I/O: durability round trips are the
				// pipeline experiment's subject, not this one's.
				DisableDurability: true,
			})
			if err != nil {
				return nil, err
			}
			rng := newRand(cfg.Seed + 2)
			runEpoch := func() []<-chan error {
				chans := make([]<-chan error, 0, txnsPerEpoch)
				for i := 0; i < txnsPerEpoch; i++ {
					tx := proxy.Begin()
					// Distinct keys within an epoch: no write-write aborts.
					k := fmt.Sprintf("v-%d-%d", i, rng.IntN(numKeys/txnsPerEpoch))
					if err := tx.Write(k, []byte("v")); err != nil {
						tx.Abort()
						continue
					}
					chans = append(chans, tx.CommitAsync())
				}
				for b := 0; b < readBatches; b++ {
					if err := proxy.StepReadBatch(); err != nil {
						return chans
					}
				}
				proxy.EndEpoch()
				return chans
			}
			// Warm-up epoch (initial evictions), then measure.
			for _, ch := range runEpoch() {
				<-ch
			}
			start := time.Now()
			var chans []<-chan error
			epochTimes := make([]time.Duration, 0, epochs)
			for e := 0; e < epochs; e++ {
				es := time.Now()
				chans = append(chans, runEpoch()...)
				epochTimes = append(epochTimes, time.Since(es))
			}
			committed := 0
			for _, ch := range chans {
				if err := <-ch; err == nil {
					committed++
				}
			}
			elapsed := time.Since(start)
			proxy.Close()
			backend.Close()
			if committed == 0 {
				return nil, fmt.Errorf("bench: vector %s/%s committed nothing", mode.name, prof.Name)
			}
			rows = append(rows, Row{
				Experiment: "vector",
				Series:     mode.name,
				X:          prof.Name,
				Value:      opsPerSec(committed, elapsed),
				Unit:       "txns/s",
				Profile:    prof.Name,
				Shards:     1,
				P50ms:      percentile(epochTimes, 50),
				P99ms:      percentile(epochTimes, 99),
			})
		}
	}
	return rows, nil
}
