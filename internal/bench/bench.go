// Package bench regenerates every table and figure of the paper's
// evaluation (§11). Each experiment returns rows of (series, x, value) that
// print as the same series the paper plots. Absolute numbers depend on the
// host and on the latency scale factor; the experiments are designed so the
// paper's *shape* (who wins, by what factor, where curves bend) reproduces.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks data sizes and run lengths to CI scale.
	Quick bool
	// LatencyScale multiplies the canonical storage latency profiles
	// (1.0 = paper-like; default 0.1 quick / 0.25 full).
	LatencyScale float64
	// Seed makes experiments deterministic where possible.
	Seed uint64
	// ScaleSessions overrides the session sweep of the scale experiment
	// with a single point (0 = the default sweep).
	ScaleSessions int
}

func (c *Config) setDefaults() {
	if c.LatencyScale == 0 {
		if c.Quick {
			c.LatencyScale = 0.1
		} else {
			c.LatencyScale = 0.25
		}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Row is one data point: Experiment/Series identify the curve or bar, X the
// position on the x-axis, Value the measurement. Profile, Shards and the
// latency percentiles are optional annotations experiments fill when they
// apply; they ride into the machine-readable output (-json) so the perf
// trajectory can be tracked across PRs.
type Row struct {
	Experiment string `json:"experiment"`
	Series     string `json:"series"`
	X          string `json:"x"`
	// Value is the measurement in Unit — a throughput for the rate-style
	// experiments (the vector/pipeline/shards rows), but also latencies,
	// ratios or sizes for the figure reproductions, hence the neutral
	// JSON name.
	Value   float64 `json:"value"`
	Unit    string  `json:"unit"`
	Profile string  `json:"profile,omitempty"`
	Shards  int     `json:"shards,omitempty"`
	P50ms   float64 `json:"p50_ms,omitempty"`
	P99ms   float64 `json:"p99_ms,omitempty"`
	// Scale-experiment annotations: concurrent session count, offered
	// (attempted) load in txns/s, and the fraction of it load-shed.
	Sessions int     `json:"sessions,omitempty"`
	Offered  float64 `json:"offered_txns_per_sec,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
}

// WriteJSON writes one experiment's rows as BENCH_<experiment>-style JSON:
// a machine-readable record of throughput (and, where measured, latency
// percentiles) per series/profile/shard-count.
func WriteJSON(path, experiment string, rows []Row) error {
	doc := struct {
		Experiment string `json:"experiment"`
		Rows       []Row  `json:"results"`
	}{Experiment: experiment, Rows: rows}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// percentile returns the p-th percentile (0..100) of durations in
// milliseconds (nearest-rank on a sorted copy).
func percentile(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted)-1)*p/100 + 0.5)
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// Experiment names in paper order.
var experiments = []struct {
	name string
	desc string
	run  func(Config) ([]Row, error)
}{
	{"fig9a", "application throughput (Obladi, NoPriv, MySQL, ObladiW, NoPrivW)", Fig9a},
	{"fig9b", "application latency", Fig9b},
	{"fig10a", "sequential vs parallel vs parallel+crypto ops/s", Fig10a},
	{"fig10b", "throughput vs batch size", Fig10b},
	{"fig10c", "latency vs batch size", Fig10c},
	{"fig10d", "delayed visibility (normal vs write back)", Fig10d},
	{"fig10e", "epoch size impact on ORAM throughput", Fig10e},
	{"fig10f", "epoch size impact on application throughput", Fig10f},
	{"fig11a", "throughput vs checkpoint frequency", Fig11a},
	{"table11b", "recovery time breakdown", Table11b},
	{"shards", "aggregate throughput vs shard count (beyond the paper: sharded proxy)", ShardScale},
	{"pipeline", "epoch-boundary pipelining: synchronous vs overlapped commit stage (beyond the paper)", Pipeline},
	{"vector", "scatter-gather storage I/O vs scalar call-per-slot baseline (beyond the paper)", Vector},
	{"client", "client plane: line vs multiplexed wire protocol at fixed connection counts (beyond the paper)", ClientPlane},
	{"disk", "durable disk backend vs in-memory store, scalar vs vectored I/O, plus 2-shard group commit (beyond the paper)", Disk},
	{"recovery", "crash-recovery time: serial vs parallel segment replay at 1/2/4 workers (beyond the paper)", Recovery},
	{"hotpath", "proxy CPU hot path: executor slot pipeline and single-shard mem throughput, with allocs/slot (beyond the paper)", HotPath},
	{"failover", "hot-standby replication tax (standalone vs replicated vs replica-acked) and measured failover timeline (beyond the paper)", Failover},
	{"scale", "overload control: committed throughput, p99 and shed rate vs session count (to 100k+) and vs offered load past saturation (beyond the paper)", Scale},
}

// Names lists all experiment ids.
func Names() []string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range experiments {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes one experiment by name.
func Run(name string, cfg Config) ([]Row, error) {
	cfg.setDefaults()
	for _, e := range experiments {
		if e.name == name {
			return e.run(cfg)
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names())
}

// Print renders rows as an aligned table grouped by experiment and series.
func Print(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXPERIMENT\tSERIES\tX\tVALUE\tUNIT")
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Experiment != sorted[j].Experiment {
			return sorted[i].Experiment < sorted[j].Experiment
		}
		return false // keep insertion order within an experiment
	})
	for _, r := range sorted {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%s\n", r.Experiment, r.Series, r.X, r.Value, r.Unit)
	}
	return tw.Flush()
}

// opsPerSec converts a count and duration to a rate.
func opsPerSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
