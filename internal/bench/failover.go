package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/replica"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Failover measures the price and payoff of proxy hot-standby replication
// (beyond the paper): committed-transaction throughput on the mem profile in
// three modes — standalone, replicated (local-durable acks, stream is warmth
// only), and replica-acked (commit acks gated on standby receipt) — plus the
// measured failover timeline with a short lease: detection (lease expiry
// after the primary dies), promotion (fence + top-up + wal recovery), and
// time to the first transaction committed on the new primary.
//
//	throughput  committed txns/s per replication mode
//	overhead    replication cost vs standalone, percent
//	failover    detect / promote / first-commit milliseconds
//
// The committed BENCH_failover.json pins the acceptance bar: replica-acked
// throughput within 15% of standalone on the mem profile.
func Failover(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	dur := 3 * time.Second
	if cfg.Quick {
		dur = time.Second
	}
	modes := []string{"standalone", "replicated", "replica-acked"}
	tput := make(map[string]float64, len(modes))
	var rows []Row
	for _, mode := range modes {
		rate, err := failoverThroughput(cfg.Seed, mode, dur)
		if err != nil {
			return nil, fmt.Errorf("failover %s: %w", mode, err)
		}
		tput[mode] = rate
		rows = append(rows, Row{Experiment: "failover", Series: "throughput", X: mode, Value: rate, Unit: "txn/s", Shards: 2})
	}
	for _, mode := range modes[1:] {
		pct := 100 * (1 - tput[mode]/tput["standalone"])
		rows = append(rows, Row{Experiment: "failover", Series: "overhead", X: mode, Value: pct, Unit: "% vs standalone", Shards: 2})
	}
	fo, err := failoverTimeline(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("failover timeline: %w", err)
	}
	return append(rows, fo...), nil
}

// failoverParams is the shared mem-profile geometry: small enough that the
// proxy, not the backend, is the bottleneck, write batches wide enough to
// carry real throughput.
func failoverCoreConfig(seed uint64) core.Config {
	return core.Config{
		Params: ringoram.Params{
			NumBlocks: 2048, Z: 8, S: 12, A: 8,
			KeySize: 24, ValueSize: 128, Seed: seed,
		},
		Key:            cryptoutil.KeyFromSeed([]byte("bench-failover")),
		ReadBatches:    4,
		ReadBatchSize:  16,
		WriteBatchSize: 32,
		BatchInterval:  500 * time.Microsecond,
	}
}

// haHarness is one in-process primary (+ optional standby) on the mem
// profile, the same topology the binaries deploy minus the client wire.
type haHarness struct {
	proxy   *core.Proxy
	sender  *replica.Sender
	standby *replica.Standby
	views   []storage.Backend
	base    core.Config
}

func newHAHarness(seed uint64, mode string, lease time.Duration) (*haHarness, error) {
	const shards = 2
	ccfg := failoverCoreConfig(seed)
	h := &haHarness{base: ccfg}
	raw := make([]storage.Backend, shards)
	h.views = make([]storage.Backend, shards)
	for i := range raw {
		raw[i] = storage.NewMemBackend(ccfg.Params.Geometry().NumBuckets)
		h.views[i] = raw[i]
	}
	if mode != "standalone" {
		var err error
		h.sender, err = replica.NewSender("127.0.0.1:0", replica.SenderConfig{
			Shards:         shards,
			Acked:          mode == "replica-acked",
			HeartbeatEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		ccfg.Replicator = h.sender
		for i := range raw {
			view, _, err := raw[i].(storage.Fenceable).AcquireFence()
			if err != nil {
				return nil, err
			}
			h.views[i] = view
		}
		h.standby, err = replica.NewStandby(h.sender.Addr(), raw, replica.StandbyConfig{
			LeaseTimeout: lease,
			RedialEvery:  5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		deadline := time.Now().Add(5 * time.Second)
		for !h.standby.Stats().Connected {
			if time.Now().After(deadline) {
				return nil, errors.New("standby never attached")
			}
			time.Sleep(time.Millisecond)
		}
	}
	p, err := core.NewSharded(h.views, ccfg)
	if err != nil {
		return nil, err
	}
	h.proxy = p
	return h, nil
}

func (h *haHarness) close() {
	if h.standby != nil {
		h.standby.Stop()
	}
	if h.sender != nil {
		h.sender.Close()
	}
	h.proxy.Close()
}

// failoverThroughput drives write-only commits from a small worker pool for
// dur and reports committed txns/s.
func failoverThroughput(seed uint64, mode string, dur time.Duration) (float64, error) {
	h, err := newHAHarness(seed, mode, time.Second)
	if err != nil {
		return 0, err
	}
	defer h.close()
	const workers = 8
	var committed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := h.proxy.Begin()
				if err := tx.Write(fmt.Sprintf("w%d-%06d", w, i%512), val); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					committed.Add(1)
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(committed.Load()) / elapsed.Seconds(), nil
}

// failoverTimeline kills a replicated primary and times each leg of the
// handoff: lease-expiry detection, promotion (fence + top-up + recovery),
// and the first transaction committed on the promoted proxy.
func failoverTimeline(seed uint64) ([]Row, error) {
	const lease = 250 * time.Millisecond
	h, err := newHAHarness(seed, "replicated", lease)
	if err != nil {
		return nil, err
	}
	defer h.close()
	for i := 0; i < 50; i++ {
		tx := h.proxy.Begin()
		if err := tx.Write(fmt.Sprintf("pre-%04d", i), []byte("v")); err != nil {
			tx.Abort()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}

	// The primary dies: stream and heartbeats stop; the proxy is abandoned.
	killed := time.Now()
	h.sender.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.standby.WaitPrimaryDown(ctx); err != nil {
		return nil, err
	}
	detect := time.Since(killed)

	base, err := core.WALConfigFor(h.base, 0, 2)
	if err != nil {
		return nil, err
	}
	res, err := h.standby.Promote(base)
	if err != nil {
		return nil, err
	}
	if res.Recoveries == nil {
		return nil, errors.New("promotion found no committed state")
	}
	promoted := time.Since(killed)

	ccfg := h.base
	ccfg.Replicator = nil
	p2, err := core.NewShardedFromRecoveries(res.Stores, ccfg, res.Recoveries)
	if err != nil {
		return nil, err
	}
	defer p2.Close()
	tx := p2.Begin()
	if err := tx.Write("post-failover", []byte("v")); err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	firstCommit := time.Since(killed)

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return []Row{
		{Experiment: "failover", Series: "failover", X: "detect (250ms lease)", Value: ms(detect), Unit: "ms", Shards: 2},
		{Experiment: "failover", Series: "failover", X: "promote", Value: ms(promoted), Unit: "ms", Shards: 2},
		{Experiment: "failover", Series: "failover", X: "first-commit", Value: ms(firstCommit), Unit: "ms", Shards: 2},
	}, nil
}
