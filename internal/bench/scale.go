package bench

import (
	"fmt"
	"time"

	"obladi"
	"obladi/internal/clientproto"
	"obladi/internal/kvtxn"
	"obladi/internal/workload"
)

// Scale measures the system at its stated ambition (beyond the paper): very
// many concurrent sessions over the real wire stack, offered load swept past
// saturation, with the overload-control plane deciding what degrades and
// how. Four series:
//
//   - capacity: a closed-loop probe of the stack's committed-transaction
//     capacity, which anchors the offered-load sweep.
//   - sessions: the session count swept to 100k+ on one host, with the
//     per-session pace stretched so aggregate offered load stays at 2x the
//     measured capacity. The axis isolates session *scale* — goroutines,
//     mux session state, per-session fairness — at a constant, saturating
//     load; committed throughput and admitted p99 holding across the sweep
//     is the 100k-sessions-on-one-host claim. (A fixed per-session pace
//     would grow offered load linearly with the count and measure the
//     host's ability to run the harness, not the system.)
//   - offered: the session count held fixed while the per-session pace
//     sweeps offered load from half the measured capacity to 3x past it.
//   - mix: the saturated point re-run across read/write mixes.
//
// Committed counts come from the server's own Stats (wire truth); sheds and
// latencies from the harness (client truth). Sessions are open-loop and do
// NOT retry sheds: the shed rate at a given offered load is the measurement,
// and retries would fold it back into offered load.
func Scale(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	p := scaleParams(cfg)

	stack, err := newScaleStack(cfg, p.conns)
	if err != nil {
		return nil, err
	}
	defer stack.close()

	var rows []Row

	// Closed-loop capacity probe.
	capRes, err := stack.run(cfg, p.probeSessions, 0, p.probeFor, 0.9)
	if err != nil {
		return nil, err
	}
	capacity := capRes.CommitRate()
	if capacity <= 0 {
		return nil, fmt.Errorf("bench: scale capacity probe committed nothing")
	}
	rows = append(rows, scaleRow("capacity", "closed-loop", capRes))

	// Session-count sweep at a fixed 2x-capacity offered load.
	for _, sessions := range p.sessionSweep {
		pace := time.Duration(float64(sessions) / (capacity * 2) * float64(time.Second))
		res, err := stack.run(cfg, sessions, pace, p.runFor, 0.9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, scaleRow("sessions", fmt.Sprintf("%d", sessions), res))
	}

	// Offered-load sweep past saturation at a fixed session count.
	for _, mult := range []float64{0.5, 1, 1.5, 2, 3} {
		offered := capacity * mult
		pace := time.Duration(float64(p.offeredSessions) / offered * float64(time.Second))
		res, err := stack.run(cfg, p.offeredSessions, pace, p.runFor, 0.9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, scaleRow("offered", fmt.Sprintf("%.1fx", mult), res))
	}

	// Read/write-mix sweep at 2x capacity.
	for _, readFrac := range []float64{0.5, 0.95} {
		pace := time.Duration(float64(p.offeredSessions) / (capacity * 2) * float64(time.Second))
		res, err := stack.run(cfg, p.offeredSessions, pace, p.runFor, readFrac)
		if err != nil {
			return nil, err
		}
		rows = append(rows, scaleRow("mix", fmt.Sprintf("%.0f%% reads", readFrac*100), res))
	}
	return rows, nil
}

// scaleParams sizes the sweep: CI-quick stays in seconds, the full run
// reaches 100k+ sessions.
type scaleParamSet struct {
	conns           int
	probeSessions   int
	probeFor        time.Duration
	sessionSweep    []int
	offeredSessions int
	runFor          time.Duration
}

func scaleParams(cfg Config) scaleParamSet {
	if cfg.Quick {
		p := scaleParamSet{
			conns:           4,
			probeSessions:   64,
			probeFor:        time.Second,
			sessionSweep:    []int{500, 2000, 5000},
			offeredSessions: 2000,
			runFor:          1500 * time.Millisecond,
		}
		if cfg.ScaleSessions > 0 {
			p.sessionSweep = []int{cfg.ScaleSessions}
		}
		return p
	}
	p := scaleParamSet{
		conns:           16,
		probeSessions:   256,
		probeFor:        3 * time.Second,
		sessionSweep:    []int{1000, 10000, 50000, 100000, 150000},
		offeredSessions: 10000,
		runFor:          5 * time.Second,
	}
	if cfg.ScaleSessions > 0 {
		p.sessionSweep = []int{cfg.ScaleSessions}
	}
	return p
}

// scaleStack is the wire stack under test: an Obladi proxy served over
// loopback TCP, dialed by a fixed pool of mux connections that the harness
// spreads its sessions over.
type scaleStack struct {
	db      *obladi.DB
	srv     *clientproto.Server
	clients []*clientproto.MuxClient
	handles []kvtxn.DB
}

func newScaleStack(cfg Config, conns int) (*scaleStack, error) {
	db, err := obladi.Open(obladi.Options{
		MaxKeys:        8192,
		MaxValueSize:   64,
		ReadBatches:    4,
		ReadBatchSize:  128,
		WriteBatchSize: 128,
		BatchInterval:  2 * time.Millisecond,
		// Overload control is the subject; durability and storage latency
		// have their own experiments (disk, pipeline).
		DisableDurability: true,
		KeySeed:           []byte("scale-bench"),
	})
	if err != nil {
		return nil, err
	}
	srv, err := clientproto.NewServer(clientproto.WrapDB(db), "127.0.0.1:0")
	if err != nil {
		db.Close()
		return nil, err
	}
	s := &scaleStack{db: db, srv: srv}
	for i := 0; i < conns; i++ {
		mc, err := clientproto.DialMux(srv.Addr())
		if err != nil {
			s.close()
			return nil, err
		}
		s.clients = append(s.clients, mc)
		s.handles = append(s.handles, clientproto.MuxDB{C: mc})
	}
	return s, nil
}

func (s *scaleStack) close() {
	for _, c := range s.clients {
		c.Close()
	}
	s.srv.Close()
	s.db.Close()
}

// run is one harness measurement over the stack.
func (s *scaleStack) run(cfg Config, sessions int, pace, runFor time.Duration, readFrac float64) (workload.ScaleResult, error) {
	mix := workload.NewMix(workload.NewZipfian(4096, 0.99), readFrac, "sc-")
	res, err := workload.RunScale(workload.ScaleConfig{
		DBs:      s.handles,
		Sessions: sessions,
		Duration: runFor,
		Mix:      mix,
		Pace:     pace,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return res, err
	}
	if res.OtherErrs > 0 {
		return res, fmt.Errorf("bench: scale run (%d sessions): %d unexpected errors, first: %w",
			sessions, res.OtherErrs, res.FirstOtherErr)
	}
	return res, nil
}

// scaleRow renders one measurement: Value is committed throughput, the
// shed/offered/latency annotations ride along in the JSON.
func scaleRow(series, x string, res workload.ScaleResult) Row {
	return Row{
		Experiment: "scale",
		Series:     series,
		X:          x,
		Value:      res.CommitRate(),
		Unit:       "txns/s",
		Sessions:   res.Sessions,
		Offered:    res.OfferedRate(),
		ShedRate:   res.ShedRate(),
		P50ms:      float64(res.P50) / float64(time.Millisecond),
		P99ms:      float64(res.P99) / float64(time.Millisecond),
	}
}
