package bench

import (
	"fmt"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Pipeline measures the epoch-boundary pipelining win (beyond the paper's
// figures, quantifying its §7 overlap argument): committed write
// transactions per second on latency-injected backends with the boundary's
// commit stage run synchronously (every epoch pays the full write-back +
// durability round trip before the next epoch starts) versus pipelined
// (epoch e's flush, checkpoint and commit records overlap epoch e+1's read
// batches). Durability is ON — the commit records and checkpoints are
// precisely the round trips the pipeline hides.
func Pipeline(cfg Config) ([]Row, error) {
	cfg.setDefaults()
	const (
		readBatches    = 4
		readBatchSize  = 16
		writeBatchSize = 32
		txnsPerEpoch   = 8
		numKeys        = 2048
	)
	epochs := 12
	if cfg.Quick {
		epochs = 6
	}
	// The pipeline hides storage round trips, so measure in the
	// latency-bound regime it targets (dynamo's slow capped writes, the
	// WAN's fat RTT); below a scale floor the run degenerates into a CPU
	// benchmark where the boundary is already nearly free.
	profiles := []storage.Profile{storage.ProfileDynamo, storage.ProfileServerWAN}
	var rows []Row
	for _, prof := range profiles {
		for _, mode := range []struct {
			name     string
			boundary core.BoundaryMode
		}{
			{"Synchronous", core.BoundarySync},
			{"Pipelined", core.BoundaryPipelined},
		} {
			p := ringoram.Params{
				NumBlocks: numKeys, Z: 16, S: 24, A: 16,
				KeySize: 24, ValueSize: 64, Seed: cfg.Seed,
			}
			scale := cfg.LatencyScale
			if scale < 0.5 {
				scale = 0.5
			}
			if prof.Name == "server WAN" {
				// Keep the WAN point CI-friendly; ratios are what matter.
				scale /= 2
			}
			backend := storage.WithLatency(storage.NewMemBackend(p.Geometry().NumBuckets), prof.Scaled(scale))
			proxy, err := core.New(backend, core.Config{
				Params: p, Key: cryptoutil.KeyFromSeed([]byte("pipeline")),
				ReadBatches:         readBatches,
				ReadBatchSize:       readBatchSize,
				WriteBatchSize:      writeBatchSize,
				Boundary:            mode.boundary,
				FullCheckpointEvery: 4,
				Parallelism:         256,
			})
			if err != nil {
				return nil, err
			}
			rng := newRand(cfg.Seed + 1)
			runEpoch := func(e int) []<-chan error {
				chans := make([]<-chan error, 0, txnsPerEpoch)
				for i := 0; i < txnsPerEpoch; i++ {
					tx := proxy.Begin()
					// Distinct keys within an epoch: no write-write aborts.
					k := fmt.Sprintf("p-%d-%d", i, rng.IntN(numKeys/txnsPerEpoch))
					if err := tx.Write(k, []byte("v")); err != nil {
						tx.Abort()
						continue
					}
					chans = append(chans, tx.CommitAsync())
				}
				// The fixed schedule: R read batches, then the boundary. In
				// pipelined mode EndEpoch returns at the seal, so the next
				// epoch's batches overlap this epoch's commit stage.
				for b := 0; b < readBatches; b++ {
					if err := proxy.StepReadBatch(); err != nil {
						return chans
					}
				}
				proxy.EndEpoch()
				return chans
			}
			// Warm-up epoch (initial evictions), then measure.
			for _, ch := range runEpoch(-1) {
				<-ch
			}
			start := time.Now()
			var chans []<-chan error
			for e := 0; e < epochs; e++ {
				chans = append(chans, runEpoch(e)...)
			}
			committed := 0
			for _, ch := range chans {
				if err := <-ch; err == nil {
					committed++
				}
			}
			elapsed := time.Since(start)
			proxy.Close()
			backend.Close()
			if committed == 0 {
				return nil, fmt.Errorf("bench: pipeline %s/%s committed nothing", mode.name, prof.Name)
			}
			rows = append(rows, Row{Experiment: "pipeline", Series: mode.name, X: prof.Name, Value: opsPerSec(committed, elapsed), Unit: "txns/s", Profile: prof.Name, Shards: 1})
		}
	}
	return rows, nil
}
