package oramexec

import (
	"sort"
	"testing"

	"obladi/internal/storage"
)

// TestExecutorVectoredOneCallPerStage pins the batching guarantee at the
// wire: a normal-mode batch is one stage, so however many slots it reads
// remotely, storage sees at most ONE read call — and an epoch flush pushes
// the whole write-back set in ONE write call.
func TestExecutorVectoredOneCallPerStage(t *testing.T) {
	h := newHarness(t, testParams(64, 7), Config{})
	// Populate enough keys to trigger evictions and real paths.
	h.runWrites(t, map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"}, 8)
	h.endEpoch(t)

	h.rec.Reset()
	res := h.runReads(t, "a", "b", "c", "")
	if !res[0].Found || string(res[0].Value) != "1" {
		t.Fatalf("read a = %+v", res[0])
	}
	calls := h.rec.Calls()
	if calls.ReadSlot != 0 {
		t.Fatalf("vectored executor issued %d scalar ReadSlot calls", calls.ReadSlot)
	}
	if calls.ReadSlots > 1 {
		t.Fatalf("one batch (one stage) issued %d ReadSlots calls, want at most 1", calls.ReadSlots)
	}
	stats := h.exec.Stats()
	if stats.RemoteReads > 0 && calls.ReadSlots != 1 {
		t.Fatalf("%d remote slot reads crossed storage in %d calls", stats.RemoteReads, calls.ReadSlots)
	}

	// The epoch's whole write-back set must flush as one call.
	h.runWrites(t, map[string]string{"a": "1b", "e": "5"}, 8)
	h.rec.Reset()
	n, err := h.exec.Flush()
	if err != nil {
		t.Fatal(err)
	}
	calls = h.rec.Calls()
	if n > 0 && (calls.WriteBuckets != 1 || calls.WriteBucket != 0) {
		t.Fatalf("flush of %d buckets used %d WriteBuckets + %d WriteBucket calls, want exactly 1 + 0",
			n, calls.WriteBuckets, calls.WriteBucket)
	}
	if stats := h.exec.Stats(); stats.WriteCalls == 0 || stats.ReadCalls == 0 {
		t.Fatalf("executor call counters not maintained: %+v", stats)
	}
	h.checkInvariant(t)
}

// TestExecutorSealedFlushOneCall covers the pipelined boundary's path: a
// sealed epoch's detached write-back set crosses storage as a single
// vectored call per shard.
func TestExecutorSealedFlushOneCall(t *testing.T) {
	h := newHarness(t, testParams(64, 8), Config{})
	h.runWrites(t, map[string]string{"x": "1", "y": "2"}, 10)
	sealed, err := h.exec.SealEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if sealed.Buckets() == 0 {
		t.Skip("no buckets buffered this epoch")
	}
	h.rec.Reset()
	n, err := h.exec.FlushSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if n != sealed.Buckets() {
		t.Fatalf("FlushSealed wrote %d of %d buckets", n, sealed.Buckets())
	}
	calls := h.rec.Calls()
	if calls.WriteBuckets != 1 || calls.WriteBucket != 0 {
		t.Fatalf("sealed flush used %d WriteBuckets + %d WriteBucket calls, want exactly 1 + 0",
			calls.WriteBuckets, calls.WriteBucket)
	}
	h.exec.ReleaseSealed(sealed)
}

// TestExecutorScalarBaselineStillScalar pins the ScalarIO knob: the
// benchmark baseline must keep issuing per-slot and per-bucket calls.
func TestExecutorScalarBaselineStillScalar(t *testing.T) {
	h := newHarness(t, testParams(64, 9), Config{ScalarIO: true})
	h.runWrites(t, map[string]string{"a": "1", "b": "2"}, 8)
	h.rec.Reset()
	h.runReads(t, "a", "b")
	calls := h.rec.Calls()
	if calls.ReadSlots != 0 {
		t.Fatalf("scalar baseline issued %d vectored calls", calls.ReadSlots)
	}
	if h.exec.Stats().RemoteReads > 0 && calls.ReadSlot == 0 {
		t.Fatal("scalar baseline issued no ReadSlot calls despite remote reads")
	}
	h.rec.Reset()
	if n, err := h.exec.Flush(); err != nil {
		t.Fatal(err)
	} else if n > 0 {
		calls := h.rec.Calls()
		if calls.WriteBuckets != 0 || calls.WriteBucket != n {
			t.Fatalf("scalar flush of %d buckets used %d WriteBucket + %d WriteBuckets calls",
				n, calls.WriteBucket, calls.WriteBuckets)
		}
	}
}

// TestExecutorVectorTraceShapeMatchesScalar is the security argument for
// vectoring: the adversary-visible trace — which slots of which buckets are
// touched, which bucket versions are written — is identical whether the
// batch crosses the wire as one frame or as many. Scalar issue order is
// goroutine-nondeterministic, so traces compare as multisets.
func TestExecutorVectorTraceShapeMatchesScalar(t *testing.T) {
	run := func(scalar bool) []storage.Event {
		h := newHarness(t, testParams(64, 11), Config{ScalarIO: scalar})
		h.runWrites(t, map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"}, 9)
		h.endEpoch(t)
		h.runReads(t, "k1", "k2", "", "k3")
		h.runWrites(t, map[string]string{"k1": "v1b"}, 11)
		if _, err := h.exec.Flush(); err != nil {
			t.Fatal(err)
		}
		h.checkInvariant(t)
		return h.rec.Events()
	}
	a, b := run(false), run(true)
	sortEvents(a)
	sortEvents(b)
	if len(a) != len(b) {
		t.Fatalf("vectored trace has %d events, scalar %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace multiset diverges at %d: vectored %+v vs scalar %+v", i, a[i], b[i])
		}
	}
}

func sortEvents(ev []storage.Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Bucket != b.Bucket {
			return a.Bucket < b.Bucket
		}
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		return a.Epoch < b.Epoch
	})
}

// TestExecutorWriteThroughVectored: in the Figure 10d ablation each
// eviction is a barrier, but its reads still coalesce per stage and its
// writes ship as one vectored call per eviction.
func TestExecutorWriteThroughVectored(t *testing.T) {
	h := newHarness(t, testParams(64, 12), Config{WriteThrough: true})
	h.rec.Reset()
	h.runWrites(t, map[string]string{"a": "1", "b": "2", "c": "3"}, 9)
	calls := h.rec.Calls()
	if calls.ReadSlot != 0 || calls.WriteBucket != 0 {
		t.Fatalf("write-through vectored mode issued scalar calls: %+v", calls)
	}
	if h.exec.Stats().BucketWrites > 0 && calls.WriteBuckets == 0 {
		t.Fatal("write-through evictions produced no vectored write calls")
	}
	res := h.runReads(t, "b")
	if !res[0].Found || string(res[0].Value) != "2" {
		t.Fatalf("read through write-through store = %+v", res[0])
	}
	h.checkInvariant(t)
}
