package oramexec

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

func testParams(n int, seed uint64) ringoram.Params {
	return ringoram.Params{
		NumBlocks: n,
		Z:         4,
		S:         6,
		A:         4,
		KeySize:   16,
		ValueSize: 32,
		Seed:      seed,
	}
}

type harness struct {
	backend *storage.MemBackend
	checker *storage.InvariantChecker
	rec     *storage.Recorder
	oram    *ringoram.ORAM
	exec    *Executor
	epoch   uint64
}

func newHarness(t *testing.T, p ringoram.Params, cfg Config) *harness {
	t.Helper()
	backend := storage.NewMemBackend(p.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	rec := storage.NewRecorder(checker)
	oram, err := InitORAM(rec, cryptoutil.KeyFromSeed([]byte("exec")), p)
	if err != nil {
		t.Fatal(err)
	}
	exec := New(oram, rec, cfg)
	h := &harness{backend: backend, checker: checker, rec: rec, oram: oram, exec: exec}
	h.begin()
	return h
}

func (h *harness) begin() {
	h.epoch++
	h.exec.BeginEpoch(h.epoch)
}

// runReads executes one read batch and returns its results.
func (h *harness) runReads(t *testing.T, keys ...string) []ReadResult {
	t.Helper()
	ops := make([]ReadOp, len(keys))
	for i, k := range keys {
		ops[i].Key = k
	}
	plan, err := h.exec.PlanReadBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runWrites applies a write batch. Keys are applied in sorted order so runs
// are deterministic (map iteration order would otherwise vary the plans, and
// with them the ORAM's random slot choices, between runs).
func (h *harness) runWrites(t *testing.T, kv map[string]string, pad int) {
	t.Helper()
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ops := make([]WriteOp, 0, len(kv)+pad)
	for _, k := range keys {
		ops = append(ops, WriteOp{Key: k, Value: []byte(kv[k])})
	}
	for i := 0; i < pad; i++ {
		ops = append(ops, WriteOp{})
	}
	plan, err := h.exec.PlanWriteBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.exec.Execute(plan); err != nil {
		t.Fatal(err)
	}
}

// endEpoch flushes and commits.
func (h *harness) endEpoch(t *testing.T) {
	t.Helper()
	if _, err := h.exec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.backend.CommitEpoch(h.epoch); err != nil {
		t.Fatal(err)
	}
	h.begin()
}

func (h *harness) checkInvariant(t *testing.T) {
	t.Helper()
	if v := h.checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestExecutorWriteThenRead(t *testing.T) {
	h := newHarness(t, testParams(64, 1), Config{})
	h.runWrites(t, map[string]string{"a": "1", "b": "2"}, 2)
	h.endEpoch(t)
	res := h.runReads(t, "a", "b", "", "")
	if !res[0].Found || string(res[0].Value) != "1" {
		t.Fatalf("a = %+v", res[0])
	}
	if !res[1].Found || string(res[1].Value) != "2" {
		t.Fatalf("b = %+v", res[1])
	}
	if res[2].Found || res[3].Found {
		t.Fatal("padding dummies returned data")
	}
	h.checkInvariant(t)
}

func TestExecutorReadUnknown(t *testing.T) {
	h := newHarness(t, testParams(64, 2), Config{})
	res := h.runReads(t, "ghost")
	if res[0].Found {
		t.Fatal("unknown key found")
	}
	h.checkInvariant(t)
}

func TestExecutorMultiEpochChurn(t *testing.T) {
	h := newHarness(t, testParams(64, 3), Config{})
	oracle := make(map[string]string)
	rng := rand.New(rand.NewPCG(7, 9))
	for epoch := 0; epoch < 8; epoch++ {
		// One read batch over a random subset.
		var keys []string
		seen := make(map[string]bool)
		for len(keys) < 6 {
			k := fmt.Sprintf("k%d", rng.IntN(24))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		res := h.runReads(t, keys...)
		for _, r := range res {
			want, ok := oracle[r.Key]
			if ok != r.Found {
				t.Fatalf("epoch %d: %s found=%v, want %v", epoch, r.Key, r.Found, ok)
			}
			if ok && string(r.Value) != want {
				t.Fatalf("epoch %d: %s = %q, want %q", epoch, r.Key, r.Value, want)
			}
		}
		// One write batch.
		writes := make(map[string]string)
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("k%d", rng.IntN(24))
			v := fmt.Sprintf("v%d-%d", epoch, i)
			writes[k] = v
			oracle[k] = v
		}
		h.runWrites(t, writes, 2)
		h.endEpoch(t)
	}
	h.checkInvariant(t)
	if h.exec.Stats().Evictions == 0 {
		t.Fatal("no evictions over 8 epochs")
	}
}

func TestExecutorDuplicateKeysRejected(t *testing.T) {
	h := newHarness(t, testParams(64, 4), Config{})
	_, err := h.exec.PlanReadBatch([]ReadOp{{Key: "x"}, {Key: "x"}})
	if err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestExecutorLocalReadsFromBuffer(t *testing.T) {
	h := newHarness(t, testParams(64, 5), Config{})
	// Enough traffic in one epoch to trigger >= 2 evictions: the second
	// eviction's root read must be served from the buffer.
	var keys []string
	for i := 0; i < 12; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	h.runWrites(t, map[string]string{"seed": "v"}, 0)
	h.runReads(t, keys...)
	st := h.exec.Stats()
	if st.Evictions < 2 {
		t.Fatalf("only %d evictions", st.Evictions)
	}
	if st.LocalReads == 0 {
		t.Fatal("no reads served from the epoch buffer")
	}
	h.endEpoch(t)
	h.checkInvariant(t)
}

func TestExecutorWriteDedup(t *testing.T) {
	h := newHarness(t, testParams(64, 6), Config{})
	var keys []string
	for i := 0; i < 16; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	h.runReads(t, keys...)
	st := h.exec.Stats()
	n, err := h.exec.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) >= st.WritesBuffered {
		t.Fatalf("no dedup: %d buffered intents, %d flushed", st.WritesBuffered, n)
	}
	h.checkInvariant(t)
}

func TestExecutorWriteThrough(t *testing.T) {
	p := testParams(64, 7)
	h := newHarness(t, p, Config{WriteThrough: true})
	oracle := map[string]string{}
	for e := 0; e < 3; e++ {
		w := map[string]string{}
		for i := 0; i < 5; i++ {
			k := fmt.Sprintf("k%d", (e*5+i)%12)
			v := fmt.Sprintf("v%d-%d", e, i)
			w[k] = v
			oracle[k] = v
		}
		h.runWrites(t, w, 1)
		var keys []string
		for k := range oracle {
			keys = append(keys, k)
			if len(keys) == 6 {
				break
			}
		}
		res := h.runReads(t, keys...)
		for _, r := range res {
			if !r.Found || string(r.Value) != oracle[r.Key] {
				t.Fatalf("epoch %d: %s = %q (found=%v), want %q", e, r.Key, r.Value, r.Found, oracle[r.Key])
			}
		}
		h.endEpoch(t)
	}
	st := h.exec.Stats()
	if st.LocalReads != 0 {
		t.Fatalf("write-through mode served %d local reads", st.LocalReads)
	}
	if st.BucketWrites != st.WritesBuffered {
		t.Fatalf("write-through dedup mismatch: %d written, %d produced", st.BucketWrites, st.WritesBuffered)
	}
	h.checkInvariant(t)
}

func TestExecutorRollbackDiscardsEpoch(t *testing.T) {
	h := newHarness(t, testParams(64, 8), Config{})
	h.runWrites(t, map[string]string{"durable": "yes"}, 3)
	h.endEpoch(t)

	// Epoch 2: write, flush, but do NOT commit; then roll back.
	h.runWrites(t, map[string]string{"durable": "overwritten", "volatile": "x"}, 2)
	if _, err := h.exec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.rec.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	// A client restored from epoch-1 metadata sees epoch-1 data.
	st, err := h.oram.Snapshot(true)
	if err == nil {
		_ = st // snapshot of post-epoch-2 metadata is NOT what recovery
		// uses; full recovery flow is exercised in internal/core tests.
	}
}

// TestExecutorTraceShapeWorkloadIndependence is the executor-level security
// test: two completely different workloads with identical batch geometry
// must produce storage traces with identical shape (same op kinds, same
// event count per position, same number of bucket writes).
func TestExecutorTraceShapeWorkloadIndependence(t *testing.T) {
	shape := func(seed uint64, keys [][]string, writes []map[string]string) []storage.Op {
		p := testParams(64, seed)
		h := newHarness(t, p, Config{})
		for i := range keys {
			h.runReads(t, keys[i]...)
			h.runWrites(t, writes[i], 4-len(writes[i]))
			h.endEpoch(t)
		}
		h.checkInvariant(t)
		evs := h.rec.Events()
		kinds := make([]storage.Op, len(evs))
		for i, ev := range evs {
			kinds[i] = ev.Op
		}
		return kinds
	}
	// Workload A: scattered cold reads, few writes.
	a := shape(101,
		[][]string{{"a1", "a2", "a3", "a4"}, {"a5", "a6", "a7", "a8"}},
		[]map[string]string{{"w1": "x"}, {"w2": "y"}})
	// Workload B: hot-key reads, different writes.
	b := shape(202,
		[][]string{{"h", "h2", "h3", "h4"}, {"h", "h2", "h5", "h6"}},
		[]map[string]string{{"h": "1"}, {"h2": "2"}})
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d — workload leaks through trace shape", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace op %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestExecutorReplayReproducesTrace is the recovery security test: after a
// crash mid-epoch, the recovery replay must issue exactly the same physical
// reads the adversary already observed.
func TestExecutorReplayReproducesTrace(t *testing.T) {
	p := testParams(64, 9)
	h := newHarness(t, p, Config{})

	// Epoch 1: committed baseline.
	h.runWrites(t, map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"}, 1)
	h.endEpoch(t)
	snap, err := h.oram.Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 2: the epoch that will crash. Record log entries and the trace.
	h.rec.Reset()
	var logged []LogEntry
	plan, err := h.exec.PlanReadBatch([]ReadOp{{Key: "k1"}, {Key: "k3"}, {Key: "ghost"}, {}})
	if err != nil {
		t.Fatal(err)
	}
	logged = append(logged, plan.Log()...)
	if _, err := h.exec.Execute(plan); err != nil {
		t.Fatal(err)
	}
	wplan, err := h.exec.PlanWriteBatch([]WriteOp{{Key: "k2", Value: []byte("doomed")}, {}})
	if err != nil {
		t.Fatal(err)
	}
	logged = append(logged, wplan.Log()...)
	if _, err := h.exec.Execute(wplan); err != nil {
		t.Fatal(err)
	}
	abortedTrace := readMultiset(h.rec.Events())

	// Crash: buffer lost, storage rolled back, metadata restored.
	if err := h.rec.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	restored, err := ringoram.NewFromState(cryptoutil.KeyFromSeed([]byte("exec")), p, snap)
	if err != nil {
		t.Fatal(err)
	}
	exec2 := New(restored, h.rec, Config{})
	exec2.BeginEpoch(3) // recovery epoch
	h.rec.Reset()
	if err := exec2.ReplayBatch(logged); err != nil {
		t.Fatal(err)
	}
	replayTrace := readMultiset(h.rec.Events())
	if len(abortedTrace) != len(replayTrace) {
		t.Fatalf("replay issued %d reads, aborted epoch issued %d", len(replayTrace), len(abortedTrace))
	}
	for k, n := range abortedTrace {
		if replayTrace[k] != n {
			t.Fatalf("replay read-set diverges at %s: %d vs %d", k, replayTrace[k], n)
		}
	}
	// Finish the recovery epoch and verify committed data survived and the
	// aborted write did not.
	if _, err := exec2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.backend.CommitEpoch(3); err != nil {
		t.Fatal(err)
	}
	exec2.BeginEpoch(4)
	res := mustReads(t, exec2, "k1", "k2", "k3")
	want := map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"}
	for _, r := range res {
		if !r.Found || string(r.Value) != want[r.Key] {
			t.Fatalf("after recovery %s = %q (found=%v), want %q", r.Key, r.Value, r.Found, want[r.Key])
		}
	}
	h.checkInvariant(t)
}

func mustReads(t *testing.T, e *Executor, keys ...string) []ReadResult {
	t.Helper()
	ops := make([]ReadOp, len(keys))
	for i, k := range keys {
		ops[i].Key = k
	}
	plan, err := e.PlanReadBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// readMultiset maps "bucket/slot" to read count for all slot-read events.
func readMultiset(evs []storage.Event) map[string]int {
	out := make(map[string]int)
	for _, ev := range evs {
		if ev.Op == storage.OpReadSlot {
			out[fmt.Sprintf("%d/%d", ev.Bucket, ev.Slot)]++
		}
	}
	return out
}

func TestInitORAMRejectsSmallBackend(t *testing.T) {
	p := testParams(64, 10)
	backend := storage.NewMemBackend(3) // far too small
	if _, err := InitORAM(backend, cryptoutil.KeyFromSeed([]byte("x")), p); err == nil {
		t.Fatal("undersized backend accepted")
	}
}

func TestExecutorParallelismCap(t *testing.T) {
	p := testParams(64, 11)
	h := newHarness(t, p, Config{Parallelism: 1})
	h.runWrites(t, map[string]string{"a": "1"}, 0)
	h.endEpoch(t)
	res := h.runReads(t, "a")
	if !res[0].Found || string(res[0].Value) != "1" {
		t.Fatalf("a = %+v", res[0])
	}
	h.checkInvariant(t)
}
