package oramexec

import (
	"fmt"

	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// StoreAdapter adapts a shadow-paged storage.BucketStore to the
// epoch-agnostic ringoram.Store interface by tagging every write with a
// fixed epoch. The sequential baseline (ringoram.Seq) uses it directly;
// initialization uses epoch 0.
type StoreAdapter struct {
	B     storage.BucketStore
	Epoch uint64
}

var _ ringoram.Store = StoreAdapter{}

// ReadSlot implements ringoram.Store.
func (s StoreAdapter) ReadSlot(bucket, slot int) ([]byte, error) {
	return s.B.ReadSlot(bucket, slot)
}

// WriteBucket implements ringoram.Store.
func (s StoreAdapter) WriteBucket(bucket int, slots [][]byte) error {
	return s.B.WriteBucket(bucket, s.Epoch, slots)
}

// InitORAM creates a fresh Ring ORAM client, initializes the tree on the
// backend as epoch 0, and commits it. This is the starting state of every
// Obladi deployment.
func InitORAM(store storage.BucketStore, key *cryptoutil.Key, p ringoram.Params) (*ringoram.ORAM, error) {
	if n, err := store.NumBuckets(); err != nil {
		return nil, err
	} else if need := p.Geometry().NumBuckets; n < need {
		return nil, fmt.Errorf("oramexec: backend has %d buckets, geometry needs %d", n, need)
	}
	// Reinitializing wipes: discard any shadow versions a previous (e.g.
	// non-durable or torn-first-boot) deployment left behind, so the fresh
	// epoch-0 tree starts an ordered version history.
	if err := store.RollbackTo(0); err != nil {
		return nil, err
	}
	o, err := ringoram.New(StoreAdapter{B: store, Epoch: 0}, key, p)
	if err != nil {
		return nil, err
	}
	if err := store.CommitEpoch(0); err != nil {
		return nil, err
	}
	return o, nil
}
