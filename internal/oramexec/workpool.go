package oramexec

import "runtime"

// stageSlots bounds the stage goroutines RunStages keeps live at once across
// the whole process. A stage mixes seal/open CPU with blocking storage I/O,
// so the bound must stay well above the core count — shards blocked on a
// storage round trip cost no CPU, and overlapping them is where shard
// scaling comes from. Several slots per core with a floor caps goroutine
// churn on large shard counts without ever serializing I/O-bound shards.
// The channel doubles as the semaphore.
var stageSlots = make(chan struct{}, stagePoolSize())

func stagePoolSize() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	return n
}

// RunStages runs fn(0..n-1) concurrently on a bounded worker pool and waits
// for all of them. The proxy uses it for independent per-shard stages of one
// batch: each shard's executor is confined to its goroutine, so per-shard
// trace shape is identical to the scalar loop (pinned by
// TestExecutorParallelStagesMatchScalar).
//
// n == 1 dispatches on a dedicated goroutine, skipping the slot accounting
// but keeping the handoff: the yield matches the scalar fan-out's scheduling,
// which clients on few-core hosts depend on to interleave with the epoch
// loop. fn must not call RunStages itself: nested calls could hold every slot
// while waiting for workers that need one (the proxy's fan-outs are flat).
func RunStages(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		done := make(chan struct{})
		go func() { fn(0); close(done) }()
		<-done
		return
	}
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			stageSlots <- struct{}{}
			defer func() {
				<-stageSlots
				done <- struct{}{}
			}()
			fn(i)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
