// Package oramexec is Obladi's parallel ORAM executor (§7 of the paper).
//
// The executor turns a batch of logical operations into one pipelined pass
// over storage: all client-side metadata is planned sequentially (cheap CPU),
// the resulting physical slot reads are coalesced into a single scatter-
// gather storage call per stage (one wire op and one round trip however many
// slots the stage reads), completions are applied in plan order (which
// realizes multilevel serializability: the outcome is identical to the
// sequential execution of the same batch), and all bucket writes produced by
// evictions and early reshuffles are buffered until the end of the epoch,
// deduplicated per bucket, and flushed as one vectored write-back. Reads
// that target a buffered bucket are served locally. Config.ScalarIO restores
// the pre-vectorization call-per-slot behaviour as a benchmark baseline.
//
// Epoch buffers are double-buffered to support the proxy's pipelined epoch
// boundary: SealEpoch detaches the finished epoch's write-back set, which a
// background committer flushes via FlushSealed while the next epoch's
// batches already plan and execute. Until the sealed set is released (or
// superseded by the next seal), reads that target a sealed bucket keep being
// served locally — the sealed versions may not have reached storage yet.
package oramexec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Config tunes the executor.
type Config struct {
	// Parallelism caps concurrent storage operations on the scalar I/O
	// path (default 64). The vectored path issues one storage call per
	// stage, so the cap models per-connection in-flight request slots and
	// only throttles ScalarIO (and scalar write-through) executions.
	Parallelism int
	// WriteThrough disables delayed visibility: eviction writes go to
	// storage immediately and act as pipeline barriers. This is the
	// "Write Back" ablation of Figure 10d and is never used in production.
	WriteThrough bool
	// ScalarIO disables scatter-gather storage calls: every slot read is
	// its own ReadSlot call (goroutine-per-slot) and every write-back
	// bucket its own WriteBucket call. This is the pre-vectorization wire
	// behaviour, kept as the `vector` benchmark's baseline.
	ScalarIO bool
}

func (c *Config) setDefaults() {
	if c.Parallelism <= 0 {
		c.Parallelism = 64
	}
}

// Executor drives a ringoram client against shadow-paged storage.
// Planning and execution are not safe for concurrent use (the proxy
// serializes batch execution per shard), with two exceptions: FlushSealed
// may run from a background committer concurrently with the next epoch's
// planning/execution, and Stats may be read from any goroutine.
type Executor struct {
	oram  *ringoram.ORAM
	store storage.BucketStore
	cfg   Config

	epoch    uint64
	buffered map[int]*bufferedBucket
	// sealed is the previous epoch's detached write-back set, retained so
	// its buckets stay locally servable while (and after) a background
	// committer flushes them. Written only by SealEpoch/ReleaseSealed,
	// which the proxy serializes with planning; the map it points to is
	// immutable after seal, so FlushSealed reads it without locks.
	sealed *SealedEpoch

	// refsBuf and destsBuf are issueVector's scatter-gather scratch, reused
	// across batches. Planning and execution are serialized per executor, so
	// one set per executor is safe.
	refsBuf  []storage.SlotRef
	destsBuf []scatter

	stats statCounters
}

// scatter routes one vectored slot read back to its task's data slot.
type scatter struct {
	t *task
	i int
}

// bufferedBucket is one buffered bucket rewrite, holding the ringoram write
// so its pooled arena can be recycled if a later rewrite of the same bucket
// supersedes it before the epoch flushes. Once flushed (or sealed and then
// flushed) the arena's ownership passes to the store and it is never
// recycled.
type bufferedBucket struct {
	w ringoram.BucketWrite
}

// SealedEpoch is a finished epoch's detached write-back set: every bucket
// the epoch rewrote, deduplicated. It is immutable once sealed.
type SealedEpoch struct {
	epoch   uint64
	buckets map[int]*bufferedBucket
}

// Epoch returns the sealed epoch's number.
func (s *SealedEpoch) Epoch() uint64 { return s.epoch }

// Buckets reports how many distinct buckets the sealed set holds.
func (s *SealedEpoch) Buckets() int { return len(s.buckets) }

// Stats counts executor activity since creation.
type Stats struct {
	RemoteReads    int64 // slot reads issued to storage
	LocalReads     int64 // slot reads served from the epoch buffer
	BucketWrites   int64 // bucket writes flushed to storage
	WritesBuffered int64 // bucket write intents produced by evictions
	Evictions      int64
	Reshuffles     int64
	// ReadCalls and WriteCalls count storage calls (wire ops on a remote
	// deployment): a vectored stage is one call however many slots it
	// carries, a scalar stage one call per slot/bucket. Their ratio to
	// RemoteReads/BucketWrites is the batching factor vectoring buys.
	ReadCalls  int64
	WriteCalls int64
}

// statCounters is the executor's internal, atomically updated counter set.
// Batch execution mutates counters from per-shard goroutines while the
// proxy snapshots Stats (and a background committer flushes sealed epochs)
// from others, so every counter is an atomic.
type statCounters struct {
	remoteReads    atomic.Int64
	localReads     atomic.Int64
	bucketWrites   atomic.Int64
	writesBuffered atomic.Int64
	evictions      atomic.Int64
	reshuffles     atomic.Int64
	readCalls      atomic.Int64
	writeCalls     atomic.Int64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		RemoteReads:    c.remoteReads.Load(),
		LocalReads:     c.localReads.Load(),
		BucketWrites:   c.bucketWrites.Load(),
		WritesBuffered: c.writesBuffered.Load(),
		Evictions:      c.evictions.Load(),
		Reshuffles:     c.reshuffles.Load(),
		ReadCalls:      c.readCalls.Load(),
		WriteCalls:     c.writeCalls.Load(),
	}
}

// LogKind identifies a durability-log entry kind.
type LogKind uint8

// Log entry kinds.
const (
	LogAccess LogKind = iota + 1
	LogEvict
	LogReshuffle
	LogWriteBump
)

// LogEntry is one recovery-log record: enough to deterministically replay
// the adversary-visible reads of an epoch (§8).
type LogEntry struct {
	Kind LogKind
	// Key is the logical key of an access ("" for padding dummies).
	Key string
	// Leaf is the path read by an access.
	Leaf int
	// Slots holds the physical slot per path bucket (access) .
	Slots []int
	// BucketSlots holds the slots read per bucket (evict).
	BucketSlots [][]int
	// Bucket is the reshuffled bucket; Slots holds its read slots.
	Bucket int
}

// task is one planned unit with its physical reads. Tasks are pooled: a
// batch that executes successfully returns its tasks (with their local/data
// backing arrays) for the next batch; error paths abandon the batch and the
// tasks with it.
type task struct {
	access  *ringoram.AccessPlan
	evict   *ringoram.EvictPlan // eviction or reshuffle
	reads   []ringoram.SlotRead
	local   []bool // read i served from the buffer
	data    [][]byte
	pending sync.WaitGroup // outstanding remote reads
	err     error
	errOnce sync.Once
	opIdx   int // index into the batch's results (-1 for maintenance)
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// getTask fetches a cleared task slot from the pool.
func getTask() *task { return taskPool.Get().(*task) }

// putTask resets a finished task and returns it to the pool. The WaitGroup
// is quiescent (completeTask waited it out) and the backing arrays of local
// and data ride along for reuse.
func putTask(t *task) {
	clear(t.data) // drop slot references so pooled tasks don't pin arenas
	t.access = nil
	t.evict = nil
	t.reads = nil
	t.local = t.local[:0]
	t.data = t.data[:0]
	t.err = nil
	t.errOnce = sync.Once{}
	t.opIdx = 0
	taskPool.Put(t)
}

// ensureData sizes t.data for the task's reads, reusing pooled capacity.
func (t *task) ensureData() {
	n := len(t.reads)
	if cap(t.data) < n {
		t.data = make([][]byte, n)
		return
	}
	t.data = t.data[:n]
	clear(t.data)
}

// BatchPlan is a planned batch: metadata already mutated, I/O not yet done.
type BatchPlan struct {
	tasks   []*task
	log     []LogEntry
	results []ReadResult
	// slotArena backs every LogAccess entry's Slots in this plan: one growing
	// buffer per batch instead of one slice per access. Reallocation on growth
	// is safe — handed-out subslices keep the old backing array.
	slotArena []int
}

// Log returns the durability-log entries for this batch, in order. The
// caller must persist them before calling Execute (write-ahead logging).
func (b *BatchPlan) Log() []LogEntry { return b.log }

// ReadOp is one slot of a read batch. An empty key is a padding dummy.
type ReadOp struct {
	Key string
}

// WriteOp is one slot of the epoch's write batch. An empty key is padding.
type WriteOp struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// ReadResult is the outcome of one ReadOp.
type ReadResult struct {
	Key   string
	Value []byte
	Found bool
}

// New creates an executor over an existing ORAM client and storage.
func New(oram *ringoram.ORAM, store storage.BucketStore, cfg Config) *Executor {
	cfg.setDefaults()
	return &Executor{
		oram:     oram,
		store:    store,
		cfg:      cfg,
		buffered: make(map[int]*bufferedBucket),
	}
}

// ORAM returns the underlying client.
func (e *Executor) ORAM() *ringoram.ORAM { return e.oram }

// Stats returns a snapshot of the executor's counters. Safe to call from
// any goroutine, including concurrently with batch execution.
func (e *Executor) Stats() Stats { return e.stats.snapshot() }

// BeginEpoch sets the shadow-paging tag for subsequent bucket writes.
func (e *Executor) BeginEpoch(epoch uint64) {
	e.epoch = epoch
}

// Epoch returns the current epoch tag.
func (e *Executor) Epoch() uint64 { return e.epoch }

// BufferedBuckets reports how many distinct buckets are buffered.
func (e *Executor) BufferedBuckets() int { return len(e.buffered) }

// PlanReadBatch plans a full read batch: one logical access per op plus any
// early reshuffles and evict-paths that fall due. The ops must have distinct
// keys (the proxy deduplicates); padding entries have empty keys.
func (e *Executor) PlanReadBatch(ops []ReadOp) (*BatchPlan, error) {
	plan := &BatchPlan{results: make([]ReadResult, len(ops))}
	seen := make(map[string]bool, len(ops))
	for i, op := range ops {
		if op.Key != "" {
			if seen[op.Key] {
				return nil, fmt.Errorf("oramexec: duplicate key %q in batch (dedup is the caller's job)", op.Key)
			}
			seen[op.Key] = true
		}
		plan.results[i].Key = op.Key
		var ap *ringoram.AccessPlan
		var due []int
		var err error
		if op.Key == "" {
			ap, due, err = e.oram.PlanDummyRead()
		} else {
			ap, due, err = e.oram.PlanRead(op.Key)
		}
		if err != nil {
			return nil, err
		}
		e.appendAccess(plan, ap, i)
		if err := e.planMaintenance(plan, due); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// PlanWriteBatch applies the epoch's write batch logically (dummiless writes
// go straight to the stash) and plans the evictions it triggers. Padding
// entries (empty keys) bump the access counter so the eviction schedule
// stays workload independent.
func (e *Executor) PlanWriteBatch(ops []WriteOp) (*BatchPlan, error) {
	plan := &BatchPlan{}
	for i := range ops {
		op := &ops[i]
		if op.Key == "" {
			e.oram.BumpWrite()
			plan.log = append(plan.log, LogEntry{Kind: LogWriteBump})
		} else {
			ap, due, err := e.oram.PlanWrite(op.Key, op.Value, op.Tombstone)
			if err != nil {
				return nil, err
			}
			if ap != nil {
				// Non-dummiless configuration: the write reads a path.
				e.appendAccess(plan, ap, -1)
				if err := e.planMaintenance(plan, due); err != nil {
					return nil, err
				}
				continue
			}
			plan.log = append(plan.log, LogEntry{Kind: LogWriteBump})
		}
		if err := e.planDueEvictions(plan); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

func (e *Executor) appendAccess(plan *BatchPlan, ap *ringoram.AccessPlan, opIdx int) {
	t := getTask()
	t.access = ap
	t.opIdx = opIdx
	if !ap.Cached() {
		t.reads = ap.Reads
		n := len(plan.slotArena)
		for _, r := range ap.Reads {
			plan.slotArena = append(plan.slotArena, r.Slot)
		}
		plan.log = append(plan.log, LogEntry{
			Kind:  LogAccess,
			Key:   ap.Key,
			Leaf:  ap.Leaf,
			Slots: plan.slotArena[n:len(plan.slotArena):len(plan.slotArena)],
		})
	}
	e.markLocality(t)
	plan.tasks = append(plan.tasks, t)
}

// planMaintenance plans due early reshuffles then due evict-paths.
func (e *Executor) planMaintenance(plan *BatchPlan, reshuffle []int) error {
	for _, b := range reshuffle {
		ep, err := e.oram.PlanReshuffle(b)
		if err != nil {
			return err
		}
		e.stats.reshuffles.Add(1)
		t := getTask()
		t.evict, t.reads, t.opIdx = ep, ep.Reads, -1
		plan.log = append(plan.log, LogEntry{Kind: LogReshuffle, Bucket: b, Slots: ep.LogSlots()[0]})
		e.markLocality(t)
		e.claimBuckets(ep)
		plan.tasks = append(plan.tasks, t)
	}
	return e.planDueEvictions(plan)
}

func (e *Executor) planDueEvictions(plan *BatchPlan) error {
	for e.oram.EvictDue() {
		ep, err := e.oram.PlanEvict()
		if err != nil {
			return err
		}
		e.stats.evictions.Add(1)
		t := getTask()
		t.evict, t.reads, t.opIdx = ep, ep.Reads, -1
		plan.log = append(plan.log, LogEntry{Kind: LogEvict, BucketSlots: ep.LogSlots()})
		e.markLocality(t)
		e.claimBuckets(ep)
		plan.tasks = append(plan.tasks, t)
	}
	return nil
}

// markLocality decides, per slot read, whether it will be served from an
// epoch buffer. The decision is made at plan time: a bucket claimed by an
// earlier-planned eviction is buffered by the time this task completes, and
// a bucket in the sealed (previous-epoch) set holds a version that may not
// have reached storage yet, so it MUST be served locally.
func (e *Executor) markLocality(t *task) {
	if cap(t.local) < len(t.reads) {
		t.local = make([]bool, len(t.reads))
	} else {
		t.local = t.local[:len(t.reads)]
		clear(t.local)
	}
	for i, r := range t.reads {
		if _, ok := e.buffered[r.Bucket]; ok {
			t.local[i] = true
			continue
		}
		if e.sealed != nil {
			if _, ok := e.sealed.buckets[r.Bucket]; ok {
				t.local[i] = true
			}
		}
	}
}

// claimBuckets registers the buckets an eviction plan will rewrite, so that
// later-planned reads are served locally. In write-through mode buckets hit
// storage immediately, so no claim is recorded; instead the plan becomes a
// pipeline barrier.
func (e *Executor) claimBuckets(ep *ringoram.EvictPlan) {
	if e.cfg.WriteThrough {
		return
	}
	for _, b := range ep.Buckets {
		if _, ok := e.buffered[b]; !ok {
			e.buffered[b] = nil // claimed; filled at completion
		}
	}
}

// Execute performs a planned batch as one stage: every non-local slot read
// is coalesced into a single vectored ReadSlots call (or, on the scalar
// path, issued goroutine-per-slot), completions are applied in plan order,
// and eviction writes are buffered (or written through).
func (e *Executor) Execute(plan *BatchPlan) ([]ReadResult, error) {
	var res []ReadResult
	var err error
	if e.cfg.WriteThrough {
		res, err = e.executeStaged(plan)
	} else {
		res, err = e.executeStage(plan, plan.tasks)
	}
	if err == nil {
		// The batch is done with its tasks: return them to the pool. Error
		// paths abandon the batch (a task may still be referenced by an
		// in-flight goroutine that drain waited out, but re-pooling buys
		// nothing on a path that tears the executor down).
		for _, t := range plan.tasks {
			putTask(t)
		}
		plan.tasks = plan.tasks[:0]
	}
	return res, err
}

// executeStaged runs the batch with evictions acting as barriers: each
// eviction's writes reach storage before any later read is issued. This is
// the non-delayed-visibility baseline of Figure 10d.
func (e *Executor) executeStaged(plan *BatchPlan) ([]ReadResult, error) {
	stage := 0
	for stage < len(plan.tasks) {
		// A stage is a maximal run of access tasks plus one trailing
		// eviction (if present).
		end := stage
		for end < len(plan.tasks) && plan.tasks[end].evict == nil {
			end++
		}
		if end < len(plan.tasks) {
			end++ // include the eviction
		}
		if _, err := e.executeStage(plan, plan.tasks[stage:end]); err != nil {
			return nil, err
		}
		stage = end
	}
	return plan.results, nil
}

// executeStage issues one stage's remote reads — one vectored storage call,
// or per-slot calls on the scalar path — then applies completions in plan
// order.
func (e *Executor) executeStage(plan *BatchPlan, tasks []*task) ([]ReadResult, error) {
	if e.cfg.ScalarIO {
		sem := make(chan struct{}, e.cfg.Parallelism)
		for _, t := range tasks {
			e.issueRemote(t, sem)
		}
	} else if err := e.issueVector(tasks); err != nil {
		return nil, err
	}
	for _, t := range tasks {
		if err := e.completeTask(t, plan); err != nil {
			e.drain(plan)
			return nil, err
		}
	}
	return plan.results, nil
}

// issueVector coalesces every non-local read of the stage's tasks into one
// scatter-gather ReadSlots call: the batch crosses the storage boundary as a
// batch, paying one round trip (and one frame) instead of one per slot.
func (e *Executor) issueVector(tasks []*task) error {
	refs := e.refsBuf[:0]
	dests := e.destsBuf[:0]
	locals := int64(0)
	for _, t := range tasks {
		t.ensureData()
		for i, r := range t.reads {
			if t.local[i] {
				locals++
				continue
			}
			refs = append(refs, storage.SlotRef{Bucket: r.Bucket, Slot: r.Slot})
			dests = append(dests, scatter{t: t, i: i})
		}
	}
	// Keep any growth for the next batch. Stale task pointers past the new
	// length are harmless: tasks are pooled and the scratch is overwritten
	// from index zero each batch.
	e.refsBuf, e.destsBuf = refs, dests
	e.stats.remoteReads.Add(int64(len(refs)))
	e.stats.localReads.Add(locals)
	if len(refs) == 0 {
		return nil
	}
	e.stats.readCalls.Add(1)
	data, err := e.store.ReadSlots(refs)
	if err != nil {
		return fmt.Errorf("oramexec: slot read: %w", err)
	}
	if len(data) != len(refs) {
		return fmt.Errorf("oramexec: vectored read returned %d slots for %d refs", len(data), len(refs))
	}
	for k, d := range data {
		dests[k].t.data[dests[k].i] = d
	}
	return nil
}

// issueRemote schedules all non-local reads of a task as individual calls
// (scalar path).
func (e *Executor) issueRemote(t *task, sem chan struct{}) {
	t.ensureData()
	for i := range t.reads {
		if t.local[i] {
			continue
		}
		t.pending.Add(1)
		i := i
		r := t.reads[i]
		sem <- struct{}{}
		e.stats.readCalls.Add(1)
		go func() {
			defer func() {
				<-sem
				t.pending.Done()
			}()
			d, err := e.store.ReadSlot(r.Bucket, r.Slot)
			if err != nil {
				t.errOnce.Do(func() { t.err = err })
				return
			}
			t.data[i] = d
		}()
	}
	locals := int64(0)
	for _, l := range t.local {
		if l {
			locals++
		}
	}
	e.stats.remoteReads.Add(int64(len(t.reads)) - locals)
	e.stats.localReads.Add(locals)
}

// completeTask waits for the task's reads, fills locals from the buffer, and
// applies the completion.
func (e *Executor) completeTask(t *task, plan *BatchPlan) error {
	t.pending.Wait()
	if t.err != nil {
		return fmt.Errorf("oramexec: slot read: %w", t.err)
	}
	for i := range t.reads {
		if !t.local[i] {
			continue
		}
		// The current epoch's buffer supersedes the sealed one: a read
		// planned after a rewrite completes after it (plan order). A read
		// that still sees a nil (claimed, unfilled) current-epoch entry was
		// planned before the claim and is served from the sealed version.
		b := e.buffered[t.reads[i].Bucket]
		if b == nil && e.sealed != nil {
			b = e.sealed.buckets[t.reads[i].Bucket]
		}
		if b == nil {
			return fmt.Errorf("oramexec: bucket %d claimed but not buffered at completion", t.reads[i].Bucket)
		}
		if s := t.reads[i].Slot; s < 0 || s >= len(b.w.Slots) {
			return fmt.Errorf("oramexec: buffered bucket %d has no slot %d", t.reads[i].Bucket, t.reads[i].Slot)
		}
		t.data[i] = b.w.Slots[t.reads[i].Slot]
	}
	switch {
	case t.access != nil:
		val, found, err := e.oram.CompleteAccess(t.access, t.data)
		if err != nil {
			return err
		}
		if t.opIdx >= 0 {
			plan.results[t.opIdx].Value = val
			plan.results[t.opIdx].Found = found
		}
	case t.evict != nil:
		writes, err := e.oram.CompleteEvict(t.evict, t.data)
		if err != nil {
			return err
		}
		e.stats.writesBuffered.Add(int64(len(writes)))
		switch {
		case !e.cfg.WriteThrough:
			for _, w := range writes {
				// A superseded version never reaches storage: its arena goes
				// back to the pool. Completions apply in plan order, so any
				// read planned against the old version already resolved.
				if old := e.buffered[w.Bucket]; old != nil {
					old.w.Recycle()
				}
				e.buffered[w.Bucket] = &bufferedBucket{w: w}
			}
		case e.cfg.ScalarIO:
			for _, w := range writes {
				if err := e.store.WriteBucket(w.Bucket, e.epoch, w.Slots); err != nil {
					return fmt.Errorf("oramexec: write-through bucket %d: %w", w.Bucket, err)
				}
				e.stats.bucketWrites.Add(1)
				e.stats.writeCalls.Add(1)
			}
		case len(writes) > 0:
			// Vectored write-through: the eviction's whole write set in one
			// call, preserving the barrier (writes land before the next
			// stage's reads are issued).
			vec := make([]storage.BucketWrite, len(writes))
			for i, w := range writes {
				vec[i] = storage.BucketWrite{Bucket: w.Bucket, Epoch: e.epoch, Slots: w.Slots}
			}
			if err := e.store.WriteBuckets(vec); err != nil {
				return fmt.Errorf("oramexec: write-through eviction: %w", err)
			}
			e.stats.bucketWrites.Add(int64(len(vec)))
			e.stats.writeCalls.Add(1)
		}
	}
	return nil
}

// drain waits out any in-flight reads after an error so goroutines do not
// outlive the call.
func (e *Executor) drain(plan *BatchPlan) {
	for _, t := range plan.tasks {
		t.pending.Wait()
	}
}

// Flush writes every buffered bucket to storage in parallel and clears the
// buffer. This is the epoch's deterministic write-back set: intermediate
// bucket versions were already superseded in the buffer (write dedup).
func (e *Executor) Flush() (int, error) {
	n, err := e.flushBuckets(e.epoch, e.buffered)
	if err != nil {
		return 0, err
	}
	e.buffered = make(map[int]*bufferedBucket)
	return n, nil
}

// SealEpoch detaches the current epoch's write-back set and opens a fresh
// buffer, so the next epoch's batches can plan and execute while a
// background committer flushes the sealed set via FlushSealed. The sealed
// buckets remain locally servable until ReleaseSealed or the next seal.
// Must be called from the proxy's schedule driver (never concurrently with
// planning or execution).
func (e *Executor) SealEpoch() (*SealedEpoch, error) {
	for b, buf := range e.buffered {
		if buf == nil {
			return nil, fmt.Errorf("oramexec: bucket %d claimed but never filled (incomplete epoch)", b)
		}
	}
	s := &SealedEpoch{epoch: e.epoch, buckets: e.buffered}
	e.sealed = s
	e.buffered = make(map[int]*bufferedBucket)
	return s, nil
}

// FlushSealed writes a sealed epoch's buckets to storage in parallel. It
// only reads the immutable sealed set, so it is safe to run from a
// background committer while the executor plans and executes the next
// epoch's batches. The sealed set stays locally servable afterwards (the
// flushed versions are identical); ReleaseSealed or the next SealEpoch
// retires it.
func (e *Executor) FlushSealed(s *SealedEpoch) (int, error) {
	return e.flushBuckets(s.epoch, s.buckets)
}

// ReleaseSealed stops serving the sealed set locally. Only valid once the
// set is durable on storage and no batch is in flight (the synchronous
// boundary calls it right after FlushSealed; the pipelined boundary lets
// the next SealEpoch supersede it instead).
func (e *Executor) ReleaseSealed(s *SealedEpoch) {
	if e.sealed == s {
		e.sealed = nil
	}
}

func (e *Executor) flushBuckets(epoch uint64, buckets map[int]*bufferedBucket) (int, error) {
	if len(buckets) == 0 {
		return 0, nil
	}
	writes := make([]storage.BucketWrite, 0, len(buckets))
	for b, buf := range buckets {
		if buf == nil {
			return 0, fmt.Errorf("oramexec: bucket %d claimed but never filled (incomplete epoch)", b)
		}
		// Ownership of the slots (and their backing arena) transfers to the
		// store with the write; flushed buckets are never recycled.
		writes = append(writes, storage.BucketWrite{Bucket: b, Epoch: epoch, Slots: buf.w.Slots})
	}
	// Canonical bucket order: the write-back SET is already deterministic
	// (dedup per bucket), and sorting removes map-iteration order from the
	// adversary-visible sequence so every flush of the same set looks the
	// same on the wire.
	sort.Slice(writes, func(i, j int) bool { return writes[i].Bucket < writes[j].Bucket })
	if e.cfg.ScalarIO {
		if err := e.flushScalar(writes); err != nil {
			return 0, fmt.Errorf("oramexec: flushing epoch %d: %w", epoch, err)
		}
	} else {
		// The sealed epoch's entire write-back set crosses the storage
		// boundary in one scatter-gather call.
		e.stats.writeCalls.Add(1)
		if err := e.store.WriteBuckets(writes); err != nil {
			return 0, fmt.Errorf("oramexec: flushing epoch %d: %w", epoch, err)
		}
	}
	n := len(writes)
	e.stats.bucketWrites.Add(int64(n))
	return n, nil
}

// flushScalar is the pre-vectorization write-back: one WriteBucket call per
// bucket, fanned out under the parallelism cap (the `vector` benchmark's
// baseline).
func (e *Executor) flushScalar(writes []storage.BucketWrite) error {
	sem := make(chan struct{}, e.cfg.Parallelism)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for _, w := range writes {
		wg.Add(1)
		w := w
		sem <- struct{}{}
		e.stats.writeCalls.Add(1)
		go func() {
			defer func() {
				<-sem
				wg.Done()
			}()
			if err := e.store.WriteBucket(w.Bucket, w.Epoch, w.Slots); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// DiscardBuffer drops all buffered writes, current and sealed (used when
// abandoning an epoch in tests; a crashed proxy loses the buffers
// implicitly).
func (e *Executor) DiscardBuffer() {
	// Discarded current-epoch buckets never reached storage, so their arenas
	// recycle. Sealed buckets may already be (or be in the middle of) a
	// background flush — their ownership is ambiguous, so they just drop.
	for _, buf := range e.buffered {
		if buf != nil {
			buf.w.Recycle()
		}
	}
	e.buffered = make(map[int]*bufferedBucket)
	e.sealed = nil
}

// ReplayBatch replays logged entries during crash recovery: metadata is
// mutated exactly as the original epoch did (with logged slot choices) and
// the same physical reads are issued. Eviction writes are buffered and
// flushed by the caller as the recovery epoch's write-back.
func (e *Executor) ReplayBatch(entries []LogEntry) error {
	plan := &BatchPlan{}
	for _, le := range entries {
		switch le.Kind {
		case LogAccess:
			// Buckets already rewritten during this replay hold freshly
			// randomized layouts: their logged slot choices are stale, and
			// the reads are served locally anyway (invisible to the
			// adversary). Use free slot choices for them.
			slots := append([]int(nil), le.Slots...)
			for i, b := range e.oram.PathBuckets(le.Leaf) {
				if i >= len(slots) {
					break
				}
				if _, buffered := e.buffered[b]; buffered {
					slots[i] = -1
				}
			}
			ap, due, err := e.oram.ReplayRead(le.Key, le.Leaf, slots)
			if err != nil {
				return err
			}
			e.appendAccess(plan, ap, -1)
			// Reshuffles and evictions appear explicitly in the log;
			// verify alignment instead of re-planning them here.
			if len(due) > 0 {
				// The original run reshuffled these buckets right after
				// this access; the matching LogReshuffle entries follow.
				continue
			}
		case LogWriteBump:
			e.oram.BumpWrite()
		case LogEvict:
			if !e.oram.EvictDue() {
				return errors.New("oramexec: replay divergence: logged eviction not due")
			}
			bslots := append([][]int(nil), le.BucketSlots...)
			for i, b := range e.oram.NextEvictPath() {
				if i >= len(bslots) {
					break
				}
				if _, buffered := e.buffered[b]; buffered {
					bslots[i] = nil // free choice for locally-served buckets
				}
			}
			ep, err := e.oram.ReplayEvict(bslots)
			if err != nil {
				return err
			}
			t := getTask()
			t.evict, t.reads, t.opIdx = ep, ep.Reads, -1
			e.markLocality(t)
			e.claimBuckets(ep)
			plan.tasks = append(plan.tasks, t)
		case LogReshuffle:
			rslots := le.Slots
			if _, buffered := e.buffered[le.Bucket]; buffered {
				rslots = nil
			}
			ep, err := e.oram.ReplayReshuffle(le.Bucket, rslots)
			if err != nil {
				return err
			}
			t := getTask()
			t.evict, t.reads, t.opIdx = ep, ep.Reads, -1
			e.markLocality(t)
			e.claimBuckets(ep)
			plan.tasks = append(plan.tasks, t)
		default:
			return fmt.Errorf("oramexec: unknown log entry kind %d", le.Kind)
		}
	}
	_, err := e.Execute(plan)
	return err
}
