package oramexec

import (
	"fmt"
	"testing"

	"obladi/internal/storage"
)

// TestExecutorNonDummilessWrites runs the executor with canonical (path-
// reading) writes: write batches then carry physical reads.
func TestExecutorNonDummilessWrites(t *testing.T) {
	p := testParams(64, 21)
	p.DisableDummilessWrites = true
	h := newHarness(t, p, Config{})
	oracle := map[string]string{}
	for e := 0; e < 3; e++ {
		w := map[string]string{}
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("k%d", (e*4+i)%10)
			v := fmt.Sprintf("v%d-%d", e, i)
			w[k] = v
			oracle[k] = v
		}
		h.runWrites(t, w, 1)
		h.endEpoch(t)
	}
	var keys []string
	for k := range oracle {
		keys = append(keys, k)
	}
	res := h.runReads(t, keys...)
	for _, r := range res {
		if !r.Found || string(r.Value) != oracle[r.Key] {
			t.Fatalf("%s = %q (found=%v), want %q", r.Key, r.Value, r.Found, oracle[r.Key])
		}
	}
	h.checkInvariant(t)
	if h.exec.Stats().RemoteReads == 0 {
		t.Fatal("non-dummiless writes issued no reads")
	}
}

// TestExecutorDummyBackend runs the executor against the measurement-only
// dummy backend (lossy storage, TolerateCorrupt).
func TestExecutorDummyBackend(t *testing.T) {
	p := testParams(64, 22)
	p.TolerateCorrupt = true
	p.DisableEncryption = true
	backend := storage.NewDummyBackend(p.Geometry().NumBuckets, 1)
	oram, err := InitORAM(backend, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	exec := New(oram, backend, Config{})
	exec.BeginEpoch(1)
	plan, err := exec.PlanReadBatch([]ReadOp{{Key: "a"}, {Key: "b"}, {}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Found {
			t.Fatalf("dummy backend produced data: %+v", r)
		}
	}
	if _, err := exec.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorStatsAccounting cross-checks the executor counters.
func TestExecutorStatsAccounting(t *testing.T) {
	h := newHarness(t, testParams(64, 23), Config{})
	h.runWrites(t, map[string]string{"a": "1", "b": "2"}, 0)
	h.runReads(t, "a", "b", "")
	st := h.exec.Stats()
	if st.RemoteReads+st.LocalReads == 0 {
		t.Fatal("no reads recorded")
	}
	n, err := h.exec.Flush()
	if err != nil {
		t.Fatal(err)
	}
	st = h.exec.Stats()
	if st.BucketWrites != int64(n) {
		t.Fatalf("flush wrote %d, stats say %d", n, st.BucketWrites)
	}
	if h.exec.BufferedBuckets() != 0 {
		t.Fatal("buffer not cleared by flush")
	}
}

// TestReplayUnknownLogKind rejects corrupt log entries.
func TestReplayUnknownLogKind(t *testing.T) {
	h := newHarness(t, testParams(64, 24), Config{})
	if err := h.exec.ReplayBatch([]LogEntry{{Kind: 99}}); err == nil {
		t.Fatal("unknown log kind accepted")
	}
}

// TestStoreAdapterImplementsInterface exercises the adapter passthrough.
func TestStoreAdapterPassthrough(t *testing.T) {
	backend := storage.NewMemBackend(2)
	a := StoreAdapter{B: backend, Epoch: 5}
	if err := a.WriteBucket(1, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSlot(1, 0)
	if err != nil || string(got) != "x" {
		t.Fatalf("adapter round trip: %q %v", got, err)
	}
	// The write must carry the adapter's epoch tag (visible via rollback).
	if err := backend.RollbackTo(4); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadSlot(1, 0); err == nil {
		t.Fatal("write survived rollback below adapter epoch")
	}
}
