package oramexec

import "testing"

// driveShard runs one shard's fixed op sequence (writes, epoch boundary,
// reads, more writes, flush) and returns an error instead of failing the
// test, so it can run from RunStages workers.
func driveShard(h *harness) error {
	writeBatch := func(ops []WriteOp) error {
		plan, err := h.exec.PlanWriteBatch(ops)
		if err != nil {
			return err
		}
		_, err = h.exec.Execute(plan)
		return err
	}
	readBatch := func(keys ...string) error {
		ops := make([]ReadOp, len(keys))
		for i, k := range keys {
			ops[i].Key = k
		}
		plan, err := h.exec.PlanReadBatch(ops)
		if err != nil {
			return err
		}
		_, err = h.exec.Execute(plan)
		return err
	}
	ops := []WriteOp{
		{Key: "k1", Value: []byte("v1")},
		{Key: "k2", Value: []byte("v2")},
		{Key: "k3", Value: []byte("v3")},
	}
	for i := 0; i < 9; i++ {
		ops = append(ops, WriteOp{})
	}
	if err := writeBatch(ops); err != nil {
		return err
	}
	if _, err := h.exec.Flush(); err != nil {
		return err
	}
	if err := h.backend.CommitEpoch(h.epoch); err != nil {
		return err
	}
	h.begin()
	if err := readBatch("k1", "k2", "", "k3"); err != nil {
		return err
	}
	if err := writeBatch([]WriteOp{{Key: "k1", Value: []byte("v1b")}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}}); err != nil {
		return err
	}
	_, err := h.exec.Flush()
	return err
}

// TestExecutorParallelStagesMatchScalar pins the worker-pool guarantee the
// proxy relies on: per-shard stages dispatched concurrently via RunStages
// produce, shard for shard, the exact storage trace of running the same
// shards one after another. Each shard's executor is confined to its worker,
// so within a shard the trace is deterministic — compared event-for-event in
// order, not as a multiset.
func TestExecutorParallelStagesMatchScalar(t *testing.T) {
	const shards = 4
	build := func() []*harness {
		hs := make([]*harness, shards)
		for i := range hs {
			// Distinct seeds across shards, identical seeds across runs.
			hs[i] = newHarness(t, testParams(64, uint64(20+i)), Config{})
			// Drop the init-tree writes: they fan out over parallel setup
			// workers, so their order is not part of the determinism claim.
			hs[i].rec.Reset()
		}
		return hs
	}

	serial := build()
	for i, h := range serial {
		if err := driveShard(h); err != nil {
			t.Fatalf("serial shard %d: %v", i, err)
		}
	}

	parallel := build()
	errs := make([]error, shards)
	RunStages(shards, func(i int) {
		errs[i] = driveShard(parallel[i])
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("parallel shard %d: %v", i, err)
		}
	}

	for i := range serial {
		a, b := serial[i].rec.Events(), parallel[i].rec.Events()
		if len(a) != len(b) {
			t.Fatalf("shard %d: serial trace has %d events, parallel %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("shard %d: trace diverges at event %d: serial %+v vs parallel %+v", i, j, a[j], b[j])
			}
		}
		serial[i].checkInvariant(t)
		parallel[i].checkInvariant(t)
	}
}

// TestRunStagesBounded exercises the pool's edge cases: zero stages is a
// no-op, one stage runs and completes before return, and an n far above the
// slot count still completes with every index visited exactly once.
func TestRunStagesBounded(t *testing.T) {
	RunStages(0, func(int) { t.Fatal("fn called for n=0") })
	single := false
	RunStages(1, func(i int) { single = true })
	if !single {
		t.Fatal("n=1 did not run")
	}
	const n = 4 * 64
	hits := make([]int32, n)
	RunStages(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("stage %d ran %d times", i, h)
		}
	}
}
