// Package baseline implements the two non-private comparison systems of the
// paper's evaluation (§10–11): NoPriv, which shares Obladi's timestamp-
// ordering concurrency control but talks to plain remote storage with no
// batching or epoch delay, and a strict two-phase-locking engine standing in
// for MySQL.
package baseline

import (
	"fmt"
	"sort"
	"sync"

	"obladi/internal/kvtxn"
	"obladi/internal/storage"
)

// ErrAborted wraps kvtxn.ErrAborted for baseline engines.
var ErrAborted = kvtxn.ErrAborted

// npStatus is a NoPriv transaction state.
type npStatus uint8

const (
	npActive npStatus = iota
	npCommitted
	npAborted
)

// npVersion is one version in a NoPriv chain.
type npVersion struct {
	ts         uint64 // 0 = committed base fetched from storage
	value      []byte
	absent     bool
	tombstone  bool
	readMarker uint64
}

type npChain struct {
	versions []*npVersion
	hasBase  bool
}

// NoPriv is the non-private baseline: MVTSO over plain key-value storage.
// Writes buffer locally until commit and are immediately visible to later
// transactions; commits apply synchronously to storage.
type NoPriv struct {
	mu     sync.Mutex
	cond   *sync.Cond
	store  storage.KVStore
	nextTS uint64
	chains map[string]*npChain
	txns   map[uint64]*npTxn
	closed bool
}

var _ kvtxn.DB = (*NoPriv)(nil)

// NewNoPriv creates the baseline over a (typically latency-wrapped) store.
func NewNoPriv(store storage.KVStore) *NoPriv {
	n := &NoPriv{
		store:  store,
		chains: make(map[string]*npChain),
		txns:   make(map[uint64]*npTxn),
	}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// npTxn is a NoPriv transaction.
type npTxn struct {
	db         *NoPriv
	ts         uint64
	status     npStatus
	deps       map[uint64]struct{}
	dependents map[uint64]struct{}
	writes     map[string]struct{}
}

// Begin implements kvtxn.DB.
func (n *NoPriv) Begin() kvtxn.Txn {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextTS++
	t := &npTxn{
		db:         n,
		ts:         n.nextTS,
		deps:       make(map[uint64]struct{}),
		dependents: make(map[uint64]struct{}),
		writes:     make(map[string]struct{}),
	}
	n.txns[t.ts] = t
	return t
}

// Close implements kvtxn.DB.
func (n *NoPriv) Close() error {
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	return nil
}

// fetchBase loads a key's committed value from storage (outside the lock)
// and installs it as the chain's base.
func (n *NoPriv) fetchBase(key string) error {
	v, found, err := n.store.Get(key)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.chains[key]
	if c == nil {
		c = &npChain{}
		n.chains[key] = c
	}
	if !c.hasBase {
		c.hasBase = true
		base := &npVersion{ts: 0, value: v, absent: !found}
		c.versions = append([]*npVersion{base}, c.versions...)
	}
	return nil
}

func (t *npTxn) Read(key string) ([]byte, bool, error) {
	for {
		n := t.db
		n.mu.Lock()
		if t.status == npAborted {
			n.mu.Unlock()
			return nil, false, fmt.Errorf("%w: nopriv read", ErrAborted)
		}
		c := n.chains[key]
		var vis *npVersion
		if c != nil {
			for i := len(c.versions) - 1; i >= 0; i-- {
				if c.versions[i].ts <= t.ts {
					vis = c.versions[i]
					break
				}
			}
		}
		if vis == nil {
			n.mu.Unlock()
			if err := n.fetchBase(key); err != nil {
				return nil, false, err
			}
			continue
		}
		if vis.readMarker < t.ts {
			vis.readMarker = t.ts
		}
		if vis.ts != 0 && vis.ts != t.ts {
			if w, ok := n.txns[vis.ts]; ok && w.status == npActive {
				t.deps[vis.ts] = struct{}{}
				w.dependents[t.ts] = struct{}{}
			}
		}
		defer n.mu.Unlock()
		if vis.absent || vis.tombstone {
			return nil, false, nil
		}
		return append([]byte(nil), vis.value...), true, nil
	}
}

func (t *npTxn) ReadMany(keys []string) ([]kvtxn.Value, error) {
	// Prefetch missing bases in parallel: NoPriv's advantage over a naive
	// client is overlapping storage round trips.
	n := t.db
	var missing []string
	n.mu.Lock()
	for _, k := range keys {
		if c := n.chains[k]; c == nil || !c.hasBase {
			missing = append(missing, k)
		}
	}
	n.mu.Unlock()
	var wg sync.WaitGroup
	errs := make(chan error, len(missing))
	for _, k := range missing {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if err := n.fetchBase(k); err != nil {
				errs <- err
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	out := make([]kvtxn.Value, len(keys))
	for i, k := range keys {
		v, found, err := t.Read(k)
		if err != nil {
			return nil, err
		}
		out[i] = kvtxn.Value{Key: k, Value: v, Found: found}
	}
	return out, nil
}

func (t *npTxn) Write(key string, value []byte) error {
	return t.write(key, value, false)
}

func (t *npTxn) Delete(key string) error {
	return t.write(key, nil, true)
}

func (t *npTxn) write(key string, value []byte, tombstone bool) error {
	n := t.db
	n.mu.Lock()
	defer n.mu.Unlock()
	if t.status != npActive {
		return fmt.Errorf("%w: nopriv write on finished txn", ErrAborted)
	}
	c := n.chains[key]
	if c == nil {
		c = &npChain{}
		n.chains[key] = c
	}
	idx := sort.Search(len(c.versions), func(i int) bool {
		return c.versions[i].ts >= t.ts
	})
	if idx < len(c.versions) && c.versions[idx].ts == t.ts {
		if c.versions[idx].readMarker > t.ts {
			n.abortLocked(t)
			return fmt.Errorf("%w: nopriv rewrite conflict on %q", ErrAborted, key)
		}
		c.versions[idx].value = value
		c.versions[idx].tombstone = tombstone
		t.writes[key] = struct{}{}
		return nil
	}
	if idx > 0 && c.versions[idx-1].readMarker > t.ts {
		n.abortLocked(t)
		return fmt.Errorf("%w: nopriv write conflict on %q", ErrAborted, key)
	}
	v := &npVersion{ts: t.ts, value: value, tombstone: tombstone}
	c.versions = append(c.versions, nil)
	copy(c.versions[idx+1:], c.versions[idx:])
	c.versions[idx] = v
	t.writes[key] = struct{}{}
	return nil
}

// Commit waits for write-read dependencies to decide, then applies this
// transaction's writes to storage synchronously.
func (t *npTxn) Commit() error {
	n := t.db
	n.mu.Lock()
	for {
		if n.closed {
			n.mu.Unlock()
			return fmt.Errorf("%w: store closed", ErrAborted)
		}
		if t.status == npAborted {
			n.mu.Unlock()
			return fmt.Errorf("%w: nopriv commit", ErrAborted)
		}
		pending := false
		for dep := range t.deps {
			d, ok := n.txns[dep]
			if !ok {
				continue // pruned, therefore committed
			}
			if d.status == npAborted {
				n.abortLocked(t)
				n.mu.Unlock()
				return fmt.Errorf("%w: dependency %d aborted", ErrAborted, dep)
			}
			if d.status == npActive {
				pending = true
			}
		}
		if !pending {
			break
		}
		n.cond.Wait()
	}
	// Collect the write set while still active, then apply outside the lock.
	type flush struct {
		key       string
		value     []byte
		tombstone bool
	}
	var flushes []flush
	for key := range t.writes {
		c := n.chains[key]
		for _, v := range c.versions {
			if v.ts == t.ts {
				flushes = append(flushes, flush{key: key, value: v.value, tombstone: v.tombstone})
			}
		}
	}
	n.mu.Unlock()
	for _, f := range flushes {
		var err error
		if f.tombstone {
			err = n.store.Delete(f.key)
		} else {
			err = n.store.Put(f.key, f.value)
		}
		if err != nil {
			n.mu.Lock()
			n.abortLocked(t)
			n.mu.Unlock()
			return err
		}
	}
	n.mu.Lock()
	t.status = npCommitted
	n.pruneLocked(t)
	n.cond.Broadcast()
	n.mu.Unlock()
	return nil
}

func (t *npTxn) Abort() {
	n := t.db
	n.mu.Lock()
	n.abortLocked(t)
	n.cond.Broadcast()
	n.mu.Unlock()
}

// abortLocked removes the txn's versions and cascades to dependents.
func (n *NoPriv) abortLocked(t *npTxn) {
	if t.status != npActive {
		return
	}
	t.status = npAborted
	for key := range t.writes {
		c := n.chains[key]
		if c == nil {
			continue
		}
		for i, v := range c.versions {
			if v.ts == t.ts {
				c.versions = append(c.versions[:i], c.versions[i+1:]...)
				break
			}
		}
	}
	for dep := range t.dependents {
		if r, ok := n.txns[dep]; ok {
			n.abortLocked(r)
		}
	}
	n.cond.Broadcast()
}

// pruneLocked folds a committed transaction's versions into the chain base
// when no active transaction can still need older versions, bounding memory.
func (n *NoPriv) pruneLocked(t *npTxn) {
	minActive := ^uint64(0)
	for ts, tx := range n.txns {
		if tx.status == npActive && ts < minActive {
			minActive = ts
		}
	}
	for key := range t.writes {
		c := n.chains[key]
		if c == nil {
			continue
		}
		// Drop committed versions strictly older than the newest committed
		// version visible to every active transaction.
		keepFrom := 0
		for i, v := range c.versions {
			committed := v.ts == 0
			if v.ts != 0 {
				if tx, ok := n.txns[v.ts]; ok && tx.status == npCommitted {
					committed = true
				}
			}
			if committed && v.ts < minActive {
				keepFrom = i
			}
		}
		if keepFrom > 0 {
			c.versions = append([]*npVersion(nil), c.versions[keepFrom:]...)
		}
	}
	delete(n.txns, t.ts)
}
