package baseline

import (
	"fmt"
	"sync"

	"obladi/internal/kvtxn"
	"obladi/internal/storage"
)

// TwoPL is the "MySQL-like" baseline: strict two-phase locking with
// shared/exclusive locks held until commit, immediate storage writes with an
// undo log, and wait-die deadlock avoidance (an older transaction waits for
// a lock; a younger one aborts).
type TwoPL struct {
	mu     sync.Mutex
	cond   *sync.Cond
	store  storage.KVStore
	nextTS uint64
	locks  map[string]*lockState
	closed bool
}

var _ kvtxn.DB = (*TwoPL)(nil)

// lockState tracks one key's lock.
type lockState struct {
	// sharedHolders maps transaction timestamps holding S locks.
	sharedHolders map[uint64]bool
	// exclusiveHolder is the X holder's timestamp (0 = none).
	exclusiveHolder uint64
}

// NewTwoPL creates the 2PL baseline over a (typically latency-wrapped) store.
func NewTwoPL(store storage.KVStore) *TwoPL {
	d := &TwoPL{
		store: store,
		locks: make(map[string]*lockState),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Begin implements kvtxn.DB.
func (d *TwoPL) Begin() kvtxn.Txn {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextTS++
	return &plTxn{
		db:    d,
		ts:    d.nextTS,
		held:  make(map[string]bool), // key -> exclusive?
		undos: nil,
	}
}

// Close implements kvtxn.DB.
func (d *TwoPL) Close() error {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// undo records a pre-image for rollback.
type undo struct {
	key     string
	value   []byte
	existed bool
}

type plTxn struct {
	db      *TwoPL
	ts      uint64
	held    map[string]bool
	undos   []undo
	aborted bool
	done    bool
}

// acquire takes a lock on key in the requested mode, applying wait-die:
// if the lock is held by an older transaction (smaller timestamp), this
// (younger) transaction aborts rather than waits.
func (t *plTxn) acquire(key string, exclusive bool) error {
	d := t.db
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return fmt.Errorf("%w: store closed", ErrAborted)
		}
		if t.aborted {
			return fmt.Errorf("%w: 2pl txn aborted", ErrAborted)
		}
		ls := d.locks[key]
		if ls == nil {
			ls = &lockState{sharedHolders: make(map[uint64]bool)}
			d.locks[key] = ls
		}
		if t.held[key] {
			// Already hold X, or hold S and want S.
			if !exclusive || t.heldExclusive(key, ls) {
				return nil
			}
		}
		blockers := t.blockers(ls, exclusive)
		if len(blockers) == 0 {
			if exclusive {
				delete(ls.sharedHolders, t.ts)
				ls.exclusiveHolder = t.ts
			} else {
				ls.sharedHolders[t.ts] = true
			}
			t.held[key] = exclusive || t.held[key]
			return nil
		}
		// Wait-die: wait only if we are older than every blocker.
		for _, b := range blockers {
			if t.ts > b {
				t.releaseLocked()
				t.aborted = true
				return fmt.Errorf("%w: wait-die on %q (ts %d vs holder %d)", ErrAborted, key, t.ts, b)
			}
		}
		d.cond.Wait()
	}
}

func (t *plTxn) heldExclusive(key string, ls *lockState) bool {
	return ls.exclusiveHolder == t.ts
}

// blockers lists the timestamps preventing the requested mode.
func (t *plTxn) blockers(ls *lockState, exclusive bool) []uint64 {
	var out []uint64
	if ls.exclusiveHolder != 0 && ls.exclusiveHolder != t.ts {
		out = append(out, ls.exclusiveHolder)
	}
	if exclusive {
		for ts := range ls.sharedHolders {
			if ts != t.ts {
				out = append(out, ts)
			}
		}
	}
	return out
}

// releaseLocked drops every lock this transaction holds. Caller holds d.mu.
func (t *plTxn) releaseLocked() {
	for key := range t.held {
		ls := t.db.locks[key]
		if ls == nil {
			continue
		}
		delete(ls.sharedHolders, t.ts)
		if ls.exclusiveHolder == t.ts {
			ls.exclusiveHolder = 0
		}
		if len(ls.sharedHolders) == 0 && ls.exclusiveHolder == 0 {
			delete(t.db.locks, key)
		}
	}
	t.held = make(map[string]bool)
	t.db.cond.Broadcast()
}

func (t *plTxn) Read(key string) ([]byte, bool, error) {
	if t.done {
		return nil, false, fmt.Errorf("%w: finished txn", ErrAborted)
	}
	if err := t.acquire(key, false); err != nil {
		return nil, false, err
	}
	return t.db.store.Get(key)
}

func (t *plTxn) ReadMany(keys []string) ([]kvtxn.Value, error) {
	if t.done {
		return nil, fmt.Errorf("%w: finished txn", ErrAborted)
	}
	for _, k := range keys {
		if err := t.acquire(k, false); err != nil {
			return nil, err
		}
	}
	out := make([]kvtxn.Value, len(keys))
	var wg sync.WaitGroup
	errs := make(chan error, len(keys))
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k string) {
			defer wg.Done()
			v, found, err := t.db.store.Get(k)
			if err != nil {
				errs <- err
				return
			}
			out[i] = kvtxn.Value{Key: k, Value: v, Found: found}
		}(i, k)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	return out, nil
}

func (t *plTxn) Write(key string, value []byte) error {
	return t.write(key, value, false)
}

func (t *plTxn) Delete(key string) error {
	return t.write(key, nil, true)
}

func (t *plTxn) write(key string, value []byte, tombstone bool) error {
	if t.done {
		return fmt.Errorf("%w: finished txn", ErrAborted)
	}
	if err := t.acquire(key, true); err != nil {
		return err
	}
	old, existed, err := t.db.store.Get(key)
	if err != nil {
		return err
	}
	t.undos = append(t.undos, undo{key: key, value: old, existed: existed})
	if tombstone {
		return t.db.store.Delete(key)
	}
	return t.db.store.Put(key, value)
}

func (t *plTxn) Commit() error {
	if t.done {
		return fmt.Errorf("%w: finished txn", ErrAborted)
	}
	t.done = true
	d := t.db
	d.mu.Lock()
	defer d.mu.Unlock()
	if t.aborted {
		return fmt.Errorf("%w: 2pl commit after abort", ErrAborted)
	}
	t.releaseLocked()
	return nil
}

func (t *plTxn) Abort() {
	if t.done {
		return
	}
	t.done = true
	d := t.db
	// Undo in reverse order (outside d.mu: storage calls may be slow).
	for i := len(t.undos) - 1; i >= 0; i-- {
		u := t.undos[i]
		if u.existed {
			d.store.Put(u.key, u.value)
		} else {
			d.store.Delete(u.key)
		}
	}
	d.mu.Lock()
	t.aborted = true
	t.releaseLocked()
	d.mu.Unlock()
}
