package baseline

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"obladi/internal/kvtxn"
	"obladi/internal/storage"
)

// engines returns constructors for both baselines, so every test runs
// against each.
func engines() map[string]func(storage.KVStore) kvtxn.DB {
	return map[string]func(storage.KVStore) kvtxn.DB{
		"nopriv": func(s storage.KVStore) kvtxn.DB { return NewNoPriv(s) },
		"twopl":  func(s storage.KVStore) kvtxn.DB { return NewTwoPL(s) },
	}
}

func TestBasicCommit(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			tx := db.Begin()
			if err := tx.Write("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx2 := db.Begin()
			v, found, err := tx2.Read("k")
			if err != nil || !found || string(v) != "v" {
				t.Fatalf("read: %q %v %v", v, found, err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadYourWrites(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			tx := db.Begin()
			must(t, tx.Write("k", []byte("mine")))
			v, found, err := tx.Read("k")
			if err != nil || !found || string(v) != "mine" {
				t.Fatalf("own write: %q %v %v", v, found, err)
			}
			must(t, tx.Commit())
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			setup := db.Begin()
			must(t, setup.Write("k", []byte("original")))
			must(t, setup.Commit())
			tx := db.Begin()
			must(t, tx.Write("k", []byte("doomed")))
			must(t, tx.Write("fresh", []byte("doomed-too")))
			tx.Abort()
			check := db.Begin()
			v, found, err := check.Read("k")
			if err != nil || !found || string(v) != "original" {
				t.Fatalf("k after abort: %q %v %v", v, found, err)
			}
			_, found, err = check.Read("fresh")
			if err != nil || found {
				t.Fatalf("fresh after abort: found=%v err=%v", found, err)
			}
			must(t, check.Commit())
		})
	}
}

func TestDelete(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			tx := db.Begin()
			must(t, tx.Write("k", []byte("v")))
			must(t, tx.Commit())
			tx2 := db.Begin()
			must(t, tx2.Delete("k"))
			must(t, tx2.Commit())
			tx3 := db.Begin()
			_, found, err := tx3.Read("k")
			if err != nil || found {
				t.Fatalf("after delete: found=%v err=%v", found, err)
			}
			must(t, tx3.Commit())
		})
	}
}

func TestReadMany(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			setup := db.Begin()
			for i := 0; i < 5; i++ {
				must(t, setup.Write(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))))
			}
			must(t, setup.Commit())
			tx := db.Begin()
			res, err := tx.ReadMany([]string{"k0", "k3", "missing"})
			if err != nil {
				t.Fatal(err)
			}
			if !res[0].Found || string(res[0].Value) != "v0" {
				t.Fatalf("k0 = %+v", res[0])
			}
			if !res[1].Found || string(res[1].Value) != "v3" {
				t.Fatalf("k3 = %+v", res[1])
			}
			if res[2].Found {
				t.Fatal("missing key found")
			}
			must(t, tx.Commit())
		})
	}
}

func TestNoPrivUncommittedVisibleAndCascade(t *testing.T) {
	db := NewNoPriv(storage.NewMemBackend(0))
	defer db.Close()
	t1 := db.Begin()
	must(t, t1.Write("a", []byte("from-t1")))
	t2 := db.Begin()
	v, found, err := t2.Read("a")
	if err != nil || !found || string(v) != "from-t1" {
		t.Fatalf("t2 read: %q %v %v", v, found, err)
	}
	t1.Abort()
	if err := t2.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("t2 commit after dependency abort: %v", err)
	}
}

func TestNoPrivCommitWaitsForDependency(t *testing.T) {
	db := NewNoPriv(storage.NewMemBackend(0))
	defer db.Close()
	t1 := db.Begin()
	must(t, t1.Write("a", []byte("x")))
	t2 := db.Begin()
	if _, _, err := t2.Read("a"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t2.Commit() }()
	select {
	case err := <-done:
		t.Fatalf("t2 committed before t1 decided: %v", err)
	default:
	}
	must(t, t1.Commit())
	if err := <-done; err != nil {
		t.Fatalf("t2 commit after t1 commit: %v", err)
	}
}

func TestNoPrivConflictAbort(t *testing.T) {
	db := NewNoPriv(storage.NewMemBackend(0))
	defer db.Close()
	setup := db.Begin()
	must(t, setup.Write("d", []byte("d0")))
	must(t, setup.Commit())
	t2 := db.Begin()
	t3 := db.Begin()
	if _, _, err := t3.Read("d"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("d", []byte("late")); !errors.Is(err, ErrAborted) {
		t.Fatalf("late write: %v", err)
	}
	must(t, t3.Commit())
}

func TestTwoPLWaitDie(t *testing.T) {
	db := NewTwoPL(storage.NewMemBackend(0))
	defer db.Close()
	older := db.Begin() // smaller ts
	younger := db.Begin()
	must(t, older.Write("k", []byte("older")))
	// Younger requesting a lock held by older must die, not wait.
	err := younger.Write("k", []byte("younger"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("wait-die: younger got %v", err)
	}
	must(t, older.Commit())
}

func TestTwoPLOlderWaits(t *testing.T) {
	db := NewTwoPL(storage.NewMemBackend(0))
	defer db.Close()
	older := db.Begin()
	younger := db.Begin()
	must(t, younger.Write("k", []byte("younger")))
	done := make(chan error, 1)
	go func() { done <- older.Write("k", []byte("older")) }()
	select {
	case err := <-done:
		t.Fatalf("older did not wait: %v", err)
	default:
	}
	must(t, younger.Commit())
	if err := <-done; err != nil {
		t.Fatalf("older write after younger release: %v", err)
	}
	must(t, older.Commit())
}

func TestTwoPLSharedReaders(t *testing.T) {
	db := NewTwoPL(storage.NewMemBackend(0))
	defer db.Close()
	setup := db.Begin()
	must(t, setup.Write("k", []byte("v")))
	must(t, setup.Commit())
	r1 := db.Begin()
	r2 := db.Begin()
	if _, _, err := r1.Read("k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.Read("k"); err != nil {
		t.Fatalf("concurrent shared read blocked: %v", err)
	}
	must(t, r1.Commit())
	must(t, r2.Commit())
}

func TestTwoPLLockUpgrade(t *testing.T) {
	db := NewTwoPL(storage.NewMemBackend(0))
	defer db.Close()
	setup := db.Begin()
	must(t, setup.Write("k", []byte("v")))
	must(t, setup.Commit())
	tx := db.Begin()
	if _, _, err := tx.Read("k"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("k", []byte("v2")); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	must(t, tx.Commit())
}

// TestEnginesConcurrentCorrectness hammers each engine with concurrent
// increments and verifies no lost updates among committed transactions.
func TestEnginesConcurrentCorrectness(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			db := mk(storage.NewMemBackend(0))
			defer db.Close()
			setup := db.Begin()
			must(t, setup.Write("counter", []byte{0}))
			must(t, setup.Commit())
			var mu sync.Mutex
			committed := 0
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(uint64(g), 7))
					for i := 0; i < 25; i++ {
						err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
							v, _, err := tx.Read("counter")
							if err != nil {
								return err
							}
							return tx.Write("counter", []byte{v[0] + 1})
						})
						if err != nil {
							continue
						}
						mu.Lock()
						committed++
						mu.Unlock()
						_ = rng
					}
				}(g)
			}
			wg.Wait()
			check := db.Begin()
			v, _, err := check.Read("counter")
			if err != nil {
				t.Fatal(err)
			}
			check.Commit()
			if int(v[0]) != committed%256 {
				t.Fatalf("counter = %d, committed increments = %d (lost updates)", v[0], committed)
			}
			if committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
