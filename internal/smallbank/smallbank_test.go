package smallbank

import (
	"errors"
	"testing"

	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
)

func testEngines(t *testing.T) []enginetest.Engine {
	t.Helper()
	engines := enginetest.Baselines()
	ob, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: 64, NumBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	ob4, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: 64, NumBlocks: 256, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The same engine reached through the multiplexed wire protocol: the
	// identical business logic must hold over the full client stack.
	obmux, err := enginetest.NewObladiMux(enginetest.ObladiOptions{ValueSize: 64, NumBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	engines = append(engines, ob, ob4, obmux)
	return engines
}

func TestLoadCreatesAccounts(t *testing.T) {
	cfg := Config{Accounts: 20, Seed: 1}
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatal(err)
			}
			total, err := TotalFunds(e.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(cfg.Accounts) * 20000; total != want {
				t.Fatalf("initial funds %d, want %d", total, want)
			}
		})
	}
}

// TestMoneyConservation runs only fund-moving transactions (Amalgamate,
// SendPayment, Balance) and checks the total is invariant.
func TestMoneyConservation(t *testing.T) {
	cfg := Config{Accounts: 12, HotspotPct: 50, Seed: 2}
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatal(err)
			}
			client := NewClient(e.DB, cfg, 11)
			n := 40
			if e.Name == "obladi" {
				n = 12
			}
			for i := 0; i < n; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = client.SendPayment(client.account(), client.account(), 17)
				case 1:
					err = client.Amalgamate(client.account(), client.account())
				default:
					err = client.Balance(client.account())
				}
				if err != nil && !errors.Is(err, kvtxn.ErrAborted) {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			total, err := TotalFunds(e.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(cfg.Accounts) * 20000; total != want {
				t.Fatalf("funds not conserved: %d, want %d", total, want)
			}
			if v := e.Violation(); v != nil {
				t.Fatal(v)
			}
		})
	}
}

func TestFullMixRuns(t *testing.T) {
	cfg := Config{Accounts: 12, HotspotPct: 25, Seed: 3}
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatal(err)
			}
			client := NewClient(e.DB, cfg, 13)
			n := 30
			if e.Name == "obladi" {
				n = 12
			}
			ran := map[string]int{}
			for i := 0; i < n; i++ {
				name, err := client.Next()
				if err != nil && !errors.Is(err, kvtxn.ErrAborted) {
					t.Fatalf("%s: %v", name, err)
				}
				if err == nil {
					ran[name]++
				}
			}
			if len(ran) < 3 {
				t.Fatalf("mix too narrow: %v", ran)
			}
		})
	}
}

func TestDepositChecking(t *testing.T) {
	cfg := Config{Accounts: 4, Seed: 4}
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 5)
	if err := client.DepositChecking(0, 500); err != nil {
		t.Fatal(err)
	}
	total, err := TotalFunds(e.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.Accounts)*20000 + 500; total != want {
		t.Fatalf("after deposit: %d, want %d", total, want)
	}
}

func TestWriteCheckPenalty(t *testing.T) {
	cfg := Config{Accounts: 2, Seed: 5}
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 6)
	// Overdraw: balance is 20000 combined; write a 50000 check.
	if err := client.WriteCheck(0, 50000); err != nil {
		t.Fatal(err)
	}
	total, err := TotalFunds(e.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 50000 + 1 penalty deducted.
	if want := int64(cfg.Accounts)*20000 - 50001; total != want {
		t.Fatalf("after overdraft: %d, want %d", total, want)
	}
}

func TestAmalgamateSelf(t *testing.T) {
	cfg := Config{Accounts: 2, Seed: 6}
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 7)
	if err := client.Amalgamate(1, 1); err != nil {
		t.Fatal(err)
	}
	total, err := TotalFunds(e.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cfg.Accounts) * 20000; total != want {
		t.Fatalf("self-amalgamate lost money: %d, want %d", total, want)
	}
}

func TestHotspotSkew(t *testing.T) {
	cfg := Config{Accounts: 100, HotspotPct: 90, Seed: 7}
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	client := NewClient(e.DB, cfg, 8)
	hot := 0
	for i := 0; i < 1000; i++ {
		if client.account() < 4 {
			hot++
		}
	}
	if hot < 700 {
		t.Fatalf("hotspot hit only %d of 1000", hot)
	}
}
