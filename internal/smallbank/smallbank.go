// Package smallbank implements the SmallBank benchmark (§11 of the paper):
// a simple banking application with checking and savings accounts and six
// transaction types (Balance, DepositChecking, TransactSavings, Amalgamate,
// WriteCheck, SendPayment).
package smallbank

import (
	"fmt"
	"math/rand/v2"

	"obladi/internal/kvtxn"
)

// Config scales the benchmark. The paper runs one million accounts; the
// default here is CI-scale.
type Config struct {
	Accounts int
	// HotspotPct directs this percentage of accesses to the hottest 4% of
	// accounts, as in the original SmallBank definition (0 = uniform).
	HotspotPct int
	Seed       uint64
}

// Defaults returns a CI-scale configuration.
func Defaults() Config {
	return Config{Accounts: 100, HotspotPct: 25, Seed: 1}
}

// MinValueSize is the block size the workload requires.
const MinValueSize = 32

func checkingKey(a int) string { return fmt.Sprintf("sb:c:%d", a) }
func savingsKey(a int) string  { return fmt.Sprintf("sb:s:%d", a) }

// Load creates all accounts with initial balances.
func Load(db kvtxn.DB, cfg Config) error {
	const perTxn = 16
	for start := 0; start < cfg.Accounts; start += perTxn {
		end := start + perTxn
		if end > cfg.Accounts {
			end = cfg.Accounts
		}
		err := kvtxn.RunWithRetries(db, 50, func(tx kvtxn.Txn) error {
			for a := start; a < end; a++ {
				if err := tx.Write(checkingKey(a), kvtxn.Tuple{"10000"}.Encode()); err != nil {
					return err
				}
				if err := tx.Write(savingsKey(a), kvtxn.Tuple{"10000"}.Encode()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Client generates and executes SmallBank transactions.
type Client struct {
	cfg Config
	rng *rand.Rand
	db  kvtxn.DB
}

// NewClient creates a client with its own RNG stream.
func NewClient(db kvtxn.DB, cfg Config, seed uint64) *Client {
	return &Client{cfg: cfg, rng: rand.New(rand.NewPCG(seed, seed^0x2545F491)), db: db}
}

// TxnNames lists the six transaction types.
func TxnNames() []string {
	return []string{"balance", "deposit-checking", "transact-savings", "amalgamate", "write-check", "send-payment"}
}

func (c *Client) account() int {
	if c.cfg.HotspotPct > 0 && c.rng.IntN(100) < c.cfg.HotspotPct {
		hot := c.cfg.Accounts / 25
		if hot < 1 {
			hot = 1
		}
		return c.rng.IntN(hot)
	}
	return c.rng.IntN(c.cfg.Accounts)
}

// Next runs one transaction from a uniform mix and reports its name.
func (c *Client) Next() (string, error) {
	switch c.rng.IntN(6) {
	case 0:
		return "balance", c.Balance(c.account())
	case 1:
		return "deposit-checking", c.DepositChecking(c.account(), int64(1+c.rng.IntN(100)))
	case 2:
		return "transact-savings", c.TransactSavings(c.account(), int64(1+c.rng.IntN(100)))
	case 3:
		return "amalgamate", c.Amalgamate(c.account(), c.account())
	case 4:
		return "write-check", c.WriteCheck(c.account(), int64(1+c.rng.IntN(100)))
	default:
		return "send-payment", c.SendPayment(c.account(), c.account(), int64(1+c.rng.IntN(50)))
	}
}

func readBalance(tx kvtxn.Txn, key string) (int64, error) {
	v, found, err := tx.Read(key)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("smallbank: missing account row %q", key)
	}
	t, err := kvtxn.DecodeTuple(v)
	if err != nil {
		return 0, err
	}
	return t.MustInt(0), nil
}

func writeBalance(tx kvtxn.Txn, key string, v int64) error {
	return tx.Write(key, kvtxn.Tuple{kvtxn.Itoa(v)}.Encode())
}

// Balance reads both balances of an account.
func (c *Client) Balance(a int) error {
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{checkingKey(a), savingsKey(a)})
	if err != nil {
		return err
	}
	for _, r := range res {
		if !r.Found {
			return fmt.Errorf("smallbank: missing row %q", r.Key)
		}
	}
	return tx.Commit()
}

// DepositChecking adds amount to the checking balance.
func (c *Client) DepositChecking(a int, amount int64) error {
	tx := c.db.Begin()
	defer tx.Abort()
	bal, err := readBalance(tx, checkingKey(a))
	if err != nil {
		return err
	}
	if err := writeBalance(tx, checkingKey(a), bal+amount); err != nil {
		return err
	}
	return tx.Commit()
}

// TransactSavings adds amount to the savings balance (may go negative per
// the benchmark definition — the transaction aborts logically but we model
// the simple variant that always applies).
func (c *Client) TransactSavings(a int, amount int64) error {
	tx := c.db.Begin()
	defer tx.Abort()
	bal, err := readBalance(tx, savingsKey(a))
	if err != nil {
		return err
	}
	if err := writeBalance(tx, savingsKey(a), bal+amount); err != nil {
		return err
	}
	return tx.Commit()
}

// Amalgamate moves all funds of account from into the checking of to.
func (c *Client) Amalgamate(from, to int) error {
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{checkingKey(from), savingsKey(from), checkingKey(to)})
	if err != nil {
		return err
	}
	vals := make([]int64, 3)
	for i, r := range res {
		if !r.Found {
			return fmt.Errorf("smallbank: missing row %q", r.Key)
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		vals[i] = t.MustInt(0)
	}
	if from == to {
		// Moving savings into own checking.
		if err := writeBalance(tx, savingsKey(from), 0); err != nil {
			return err
		}
		if err := writeBalance(tx, checkingKey(from), vals[0]+vals[1]); err != nil {
			return err
		}
		return tx.Commit()
	}
	if err := writeBalance(tx, checkingKey(from), 0); err != nil {
		return err
	}
	if err := writeBalance(tx, savingsKey(from), 0); err != nil {
		return err
	}
	if err := writeBalance(tx, checkingKey(to), vals[2]+vals[0]+vals[1]); err != nil {
		return err
	}
	return tx.Commit()
}

// WriteCheck deducts amount from checking, with a $1 penalty when the
// combined balance is insufficient.
func (c *Client) WriteCheck(a int, amount int64) error {
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{checkingKey(a), savingsKey(a)})
	if err != nil {
		return err
	}
	var checking, savings int64
	for i, r := range res {
		if !r.Found {
			return fmt.Errorf("smallbank: missing row %q", r.Key)
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		if i == 0 {
			checking = t.MustInt(0)
		} else {
			savings = t.MustInt(0)
		}
	}
	if checking+savings < amount {
		amount++ // overdraft penalty
	}
	if err := writeBalance(tx, checkingKey(a), checking-amount); err != nil {
		return err
	}
	return tx.Commit()
}

// SendPayment transfers amount between checking accounts.
func (c *Client) SendPayment(from, to int, amount int64) error {
	if from == to {
		return c.DepositChecking(from, 0)
	}
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{checkingKey(from), checkingKey(to)})
	if err != nil {
		return err
	}
	var balFrom, balTo int64
	for i, r := range res {
		if !r.Found {
			return fmt.Errorf("smallbank: missing row %q", r.Key)
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		if i == 0 {
			balFrom = t.MustInt(0)
		} else {
			balTo = t.MustInt(0)
		}
	}
	if err := writeBalance(tx, checkingKey(from), balFrom-amount); err != nil {
		return err
	}
	if err := writeBalance(tx, checkingKey(to), balTo+amount); err != nil {
		return err
	}
	return tx.Commit()
}

// TotalFunds sums every balance; money conservation is the workload's
// cross-transaction invariant (used by tests). Amalgamate, SendPayment and
// deposits/checks move or add money; only deposits, savings transactions and
// write-checks change the total, so tests run conservation-only mixes.
func TotalFunds(db kvtxn.DB, cfg Config) (int64, error) {
	var total int64
	err := kvtxn.RunWithRetries(db, 50, func(tx kvtxn.Txn) error {
		total = 0
		var keys []string
		for a := 0; a < cfg.Accounts; a++ {
			keys = append(keys, checkingKey(a), savingsKey(a))
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		for _, r := range res {
			if !r.Found {
				return fmt.Errorf("smallbank: missing row %q", r.Key)
			}
			t, err := kvtxn.DecodeTuple(r.Value)
			if err != nil {
				return err
			}
			total += t.MustInt(0)
		}
		return nil
	})
	return total, err
}
