// Package core implements the Obladi proxy — the paper's primary
// contribution (§5–§8): a trusted coordinator that runs serializable
// transactions over an oblivious store while revealing nothing about the
// workload beyond a fixed, deterministic batch schedule.
//
// Time is partitioned into epochs. Each epoch issues R fixed-size read
// batches at a fixed interval Δ followed by one fixed-size write batch;
// batches are padded with dummy requests and deduplicated, so the storage
// server observes the same request pattern whatever the transactions do.
// Transactions execute under MVTSO against a version cache; commit decisions
// are delayed to the epoch boundary (delayed visibility), where the epoch's
// final write set is flushed to the ORAM, metadata is checkpointed to the
// recovery unit, and clients are notified.
//
// # Pipelined epoch boundary
//
// The boundary is split into a cheap synchronous seal (decide fates, execute
// the write batch, detach each shard's buffered write-back set, snapshot the
// checkpoint) and a commit stage (flush, durable appends, storage epoch
// commit, client acks) that can run on a background committer, overlapping
// epoch e's write-back and durability round trips with epoch e+1's read
// batches. Delayed visibility makes the overlap safe: clients were only ever
// acknowledged at the boundary, so acknowledging them when the asynchronous
// commit lands changes nothing they can observe, and reads of e+1 that land
// on a not-yet-flushed bucket are served from the sealed buffer. At most one
// boundary is in flight; see BoundaryMode.
//
// # Sharding
//
// The proxy can partition its key space by hash across N independent Ring
// ORAM instances ("shards"), each with its own position map, stash, batch
// scheduler quota, recovery log, and storage backend. MVTSO timestamps stay
// global, so a transaction spanning shards is still serialized once and
// commits (or aborts) atomically at the global epoch boundary. Every shard
// issues exactly R read batches of bread slots and one write batch of bwrite
// slots per epoch regardless of where keys hash, so each shard's observable
// schedule remains workload independent and the shard-selection hash leaks
// nothing beyond what the single-ORAM design already leaked.
//
// Cross-shard durability uses a coordinator-commit protocol: at the epoch
// boundary every shard flushes and appends its checkpoint (prepare), and only
// then are commit records appended, shard 0 first. Shard 0's commit record is
// the global commit point; recovery reads shard 0's committed epoch and
// recovers every other shard with that epoch as a floor (a shard can lag the
// coordinator by at most its own commit record, and its checkpoint for the
// committed epoch is already durable).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/mvtso"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
	"obladi/internal/wal"
)

// Public errors.
var (
	// ErrAborted is returned when a transaction aborts (conflict, cascading
	// abort, epoch boundary, or proxy shutdown).
	ErrAborted = errors.New("obladi: transaction aborted")
	// ErrEpochFull is returned when an epoch ran out of read-batch slots or
	// write-batch capacity for this transaction.
	ErrEpochFull = errors.New("obladi: epoch capacity exhausted")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("obladi: proxy closed")
	// ErrValueTooLarge is returned for values exceeding the ORAM block size.
	ErrValueTooLarge = errors.New("obladi: value exceeds configured ValueSize")
)

// Config assembles a proxy. The batching parameters mirror Table 1 of the
// paper (reproduced in DESIGN.md): R read batches of size bread issued every
// Δ, one write batch of size bwrite. In a sharded proxy every parameter is
// per shard: each shard issues R batches of bread and one write batch of
// bwrite per epoch.
type Config struct {
	// Params configures the underlying Ring ORAM. In a sharded proxy every
	// shard uses this geometry (NumBlocks is per-shard capacity); a non-zero
	// Seed is decorrelated per shard.
	Params ringoram.Params
	// Key encrypts ORAM slots and recovery records. Required unless
	// Params.DisableEncryption is set.
	Key *cryptoutil.Key

	// ReadBatches is R, the number of read batches per epoch (default 4).
	ReadBatches int
	// ReadBatchSize is bread (default 32).
	ReadBatchSize int
	// WriteBatchSize is bwrite (default 32).
	WriteBatchSize int
	// BatchInterval is Δ. Zero selects manual mode: the caller drives
	// batches with StepReadBatch/EndEpoch (tests, deterministic examples).
	BatchInterval time.Duration
	// EagerBatches fires a read batch as soon as one shard's batch fills
	// instead of waiting out Δ. The batch schedule then tracks offered load,
	// which is observable; the paper keeps the schedule fixed, so this knob
	// exists for throughput experiments only.
	EagerBatches bool

	// Parallelism caps concurrent storage operations on the scalar I/O
	// path (per shard); the vectored path issues one call per stage.
	Parallelism int
	// ScalarStorageIO disables the executor's scatter-gather storage calls:
	// every slot read and write-back bucket becomes its own storage call,
	// as before vectorization. Baseline knob for the `vector` benchmark.
	ScalarStorageIO bool
	// WriteThrough disables delayed write-back (Figure 10d ablation).
	WriteThrough bool
	// DisableReadCache makes repeat reads of an epoch-resident key consume
	// a fresh batch slot instead of being served from the version cache
	// (§6.3 ablation).
	DisableReadCache bool

	// Boundary controls epoch-boundary pipelining: whether EndEpoch's
	// commit stage (buffered-bucket flush, checkpoint and commit-record
	// appends, storage epoch commit) overlaps the next epoch's read
	// batches or runs inline. Default BoundaryAuto.
	Boundary BoundaryMode

	// DisableDurability skips the recovery unit entirely (microbenchmarks
	// that isolate ORAM throughput; Figure 10 runs without durability).
	DisableDurability bool
	// FullCheckpointEvery is the full-checkpoint cadence (Figure 11a).
	FullCheckpointEvery int

	// Replicator, when set, mirrors every recovery-log append to a hot
	// standby and gates boundary acks on its Barrier (see Replicator).
	// Ignored with DisableDurability — the WAL is the replication stream,
	// so no WAL means nothing to replicate.
	Replicator Replicator

	// DisableAdmission turns off the overload-control admission gate
	// (admission.go): fetches queue without bound again and excess load
	// dies at the epoch seal with ErrEpochFull instead of being shed
	// immediately with a retry hint. Ablation/back-compat knob; fair
	// per-session scheduling stays on either way.
	DisableAdmission bool
}

// BoundaryMode selects how an epoch boundary's commit stage runs relative
// to the next epoch's read batches. The boundary is always split into a
// cheap synchronous seal (fate decisions, write batch, buffer detach,
// checkpoint snapshot) and a commit (flush, durable appends, storage epoch
// commit, client acks); the mode decides where the commit executes.
type BoundaryMode int

const (
	// BoundaryAuto pipelines boundaries in timer-driven mode
	// (BatchInterval > 0) and keeps them synchronous under manual driving,
	// where single-stepped determinism is the point.
	BoundaryAuto BoundaryMode = iota
	// BoundarySync runs the commit stage inline: EndEpoch returns only
	// after the epoch is durable and its clients are notified. This is the
	// paper's synchronous boundary and the `pipeline` benchmark baseline.
	BoundarySync
	// BoundaryPipelined hands the commit stage to a background committer
	// even under manual driving, so epoch e's write-back and durability
	// round trips overlap epoch e+1's read batches. At most one boundary
	// is in flight: the next EndEpoch waits for the previous commit to
	// land (back-pressure).
	BoundaryPipelined
)

func (c *Config) setDefaults() error {
	if c.ReadBatches <= 0 {
		c.ReadBatches = 4
	}
	if c.ReadBatchSize <= 0 {
		c.ReadBatchSize = 32
	}
	if c.WriteBatchSize <= 0 {
		c.WriteBatchSize = 32
	}
	if c.Key == nil && !c.Params.DisableEncryption {
		return errors.New("core: nil key with encryption enabled")
	}
	return nil
}

// Stats is a snapshot of proxy counters. Executor counters are summed across
// shards; StashPeak is the maximum over shards.
type Stats struct {
	Shards           int
	Epochs           uint64
	Committed        uint64
	Aborted          uint64
	ReadBatchSlots   uint64 // total read-batch slots issued (all shards)
	RealReads        uint64 // slots carrying real requests
	CacheHits        uint64 // reads served from the version cache
	WriteSlots       uint64
	RealWrites       uint64
	ConflictAborts   int64
	CascadingAborts  int64
	Executor         oramexec.Stats
	StashPeak        int
	RecoveryReplayed int

	// Overload-control counters (admission.go). ShedReads counts fetches
	// refused by the admission gate; AdmittedSessions counts sessions that
	// were granted at least one batch slot; ReadQueueDepth is the current
	// number of admitted-but-unscheduled fetch keys across shards (a gauge,
	// bounded by the gate at shards × R × bread).
	ShedReads        uint64
	AdmittedSessions uint64
	ReadQueueDepth   int
}

// fetchWaiter is one transaction blocked on a base-version fetch.
type fetchWaiter struct {
	key  string
	done chan error
}

// shard is one key-space partition: an independent Ring ORAM with its own
// executor, recovery log, storage backend, and per-epoch batch bookkeeping.
type shard struct {
	id    int
	store storage.Backend
	exec  *oramexec.Executor
	rlog  *wal.Log

	// The fields below are guarded by Proxy.mu.

	// Admitted fetch scheduling (admission.go): sessQ/ring hold each
	// session's queued keys in arrival order for round-robin draining,
	// pending dedups keys already scheduled for a fetch this epoch, and
	// queuedKeys counts admitted-but-unscheduled keys (the quantity the
	// admission gate bounds). Waiters live in queued, keyed by key, and
	// are woken when the key's base version installs.
	sessQ      map[mvtso.Timestamp]*sessionFetchQueue
	ring       []*sessionFetchQueue
	rr         int
	pending    map[string]bool
	queuedKeys int
	queued     map[string][]*fetchWaiter
	fetched    map[string]bool // keys whose base version is resident
}

// shardOf routes a key to one of n shards by FNV-1a hash. The mapping is
// public (the adversary may know it); it leaks nothing because every shard's
// request schedule is fixed regardless of routing.
func shardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Proxy is the Obladi trusted proxy.
type Proxy struct {
	cfg    Config
	shards []*shard
	ccu    *mvtso.Manager
	// unified, when non-nil, holds every shard's EpochCommitBatcher face:
	// the stores retire epochs with records on the SAME physical append
	// stream as the recovery log, so the boundary commit can collapse to a
	// single flush wave (see commitUnified). nil selects the inline path.
	unified []storage.EpochCommitBatcher

	// tees are the per-shard replication taps on the recovery logs (nil
	// without a Replicator); armed once primeReplicator has seeded history.
	tees []*replTee

	mu       sync.Mutex
	closed   bool
	draining bool // Shutdown in progress: the epoch loop stops driving
	epoch    uint64
	batchIdx int // read batches already issued this epoch

	// commit waiters, by transaction timestamp.
	waiters map[mvtso.Timestamp]chan error

	// inflight is the sealed boundary whose commit stage has not landed
	// (guarded by mu; at most one). boundaryDone is signaled whenever it
	// clears or the proxy closes, waking a boundary blocked on
	// back-pressure. committers tracks background commit goroutines so
	// Close can drain them.
	inflight     *boundaryJob
	boundaryDone *sync.Cond
	committers   sync.WaitGroup

	kick      chan struct{} // wakes the epoch loop (eager batches, close)
	loop      sync.WaitGroup
	ablateSeq uint64 // unique tokens for the DisableReadCache ablation

	// Overload-control counters. Atomics (the PR 2 Stats-race pattern):
	// sheds are counted on the client-facing fast path and read by Stats
	// snapshots concurrently with batch execution.
	shedReads        atomic.Uint64
	admittedSessions atomic.Uint64

	stats        Stats
	replayedLast int

	// testCommitHook, when set (tests only), runs after each shard's commit
	// record is appended; returning an error simulates a crash torn across
	// the coordinator-commit protocol.
	testCommitHook func(shardID int) error
}

// New creates a single-shard proxy over the given backend, initializing (or
// recovering) the ORAM. If the backend's recovery log already holds a
// committed checkpoint, New recovers from it instead of reinitializing — so
// restarting a crashed proxy against the same storage is exactly Obladi's §8
// recovery.
func New(store storage.Backend, cfg Config) (*Proxy, error) {
	return NewSharded([]storage.Backend{store}, cfg)
}

// NewSharded creates a proxy whose key space is hash-partitioned across
// len(stores) shards, one Ring ORAM per backend. Every shard runs the same
// per-shard configuration (geometry, batch quotas, recovery cadence). Like
// New, it recovers instead of reinitializing when the coordinator shard's
// recovery log holds a committed checkpoint.
func NewSharded(stores []storage.Backend, cfg Config) (*Proxy, error) {
	p, err := newProxy(stores, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.bootstrap(); err != nil {
		return nil, err
	}
	return p.start()
}

// NewShardedFromRecoveries builds a proxy from pre-built recovery states
// instead of scanning the stores' logs: the promotion path of hot-standby
// failover (internal/replica), where the standby has already run
// wal.Recover/RecoverWithFloor over its warm, locally replicated copy of
// every shard's log. recs must be per-shard and coordinator-first, exactly
// what the cold path's phase 1 would have produced; phase 2 (rollback,
// state rebuild, deterministic replay, recovery-epoch commit) then runs
// unchanged against the given stores, so a promoted standby and a
// cold-restarted proxy reach identical state by construction.
func NewShardedFromRecoveries(stores []storage.Backend, cfg Config, recs []*wal.Recovery) (*Proxy, error) {
	p, err := newProxy(stores, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DisableDurability {
		return nil, errors.New("core: recovery injection needs durability enabled")
	}
	if len(recs) != len(stores) {
		return nil, fmt.Errorf("core: %d recoveries for %d stores", len(recs), len(stores))
	}
	if !recs[0].HasCommit {
		return nil, errors.New("core: coordinator recovery has no commit record")
	}
	if err := p.recoverFromRecoveries(recs); err != nil {
		return nil, err
	}
	return p.start()
}

// newProxy runs the construction shared by every entry point: validation,
// shard assembly, recovery-unit creation (tee-wrapped when replicating), and
// the unified-commit probe. The caller then bootstraps or injects recovery
// state and calls start.
func newProxy(stores []storage.Backend, cfg Config) (*Proxy, error) {
	if len(stores) == 0 {
		return nil, errors.New("core: at least one storage backend required")
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:     cfg,
		ccu:     mvtso.NewManager(),
		waiters: make(map[mvtso.Timestamp]chan error),
		kick:    make(chan struct{}, 1),
	}
	p.boundaryDone = sync.NewCond(&p.mu)
	for i, st := range stores {
		sh := &shard{
			id:      i,
			store:   st,
			sessQ:   make(map[mvtso.Timestamp]*sessionFetchQueue),
			pending: make(map[string]bool),
			queued:  make(map[string][]*fetchWaiter),
			fetched: make(map[string]bool),
		}
		if !cfg.DisableDurability {
			var logStore storage.LogStore = st
			if cfg.Replicator != nil {
				tapped, tee := newReplTee(st, i, cfg.Replicator)
				logStore = tapped
				p.tees = append(p.tees, tee)
			}
			wcfg, err := WALConfigFor(cfg, i, len(stores))
			if err != nil {
				return nil, err
			}
			l, err := wal.New(logStore, wcfg)
			if err != nil {
				return nil, err
			}
			sh.rlog = l
		}
		p.shards = append(p.shards, sh)
	}
	if !cfg.DisableDurability {
		p.unified = unifiedCommitStores(stores)
	}
	// Write-batch capacity is enforced inside the CCU, under the lock that
	// also finalizes epochs: a write admitted into a CCU generation is
	// charged against that generation's budget, so boundary races cannot
	// oversubscribe the write batch (see mvtso.SetWriteBudget).
	nshards := len(p.shards)
	p.ccu.SetWriteBudget(nshards, cfg.WriteBatchSize, func(key string) int {
		return shardOf(key, nshards)
	})
	return p, nil
}

// start arms replication and launches the epoch loop once the proxy's state
// is built (bootstrap or injected recovery).
func (p *Proxy) start() (*Proxy, error) {
	if err := p.primeReplicator(); err != nil {
		return nil, err
	}
	if p.cfg.BatchInterval > 0 {
		p.loop.Add(1)
		go p.epochLoop()
	}
	return p, nil
}

// Shards reports the number of key-space partitions.
func (p *Proxy) Shards() int { return len(p.shards) }

// shardParams returns shard i's ORAM parameters: the shared geometry with a
// decorrelated deterministic seed (tests only; a zero seed stays random).
func (p *Proxy) shardParams(i int) ringoram.Params {
	sp := p.cfg.Params
	if sp.Seed != 0 {
		sp.Seed += uint64(i)
	}
	return sp
}

// beginEpochAllLocked opens p.epoch on every shard's executor.
func (p *Proxy) beginEpochAllLocked() {
	for _, sh := range p.shards {
		sh.exec.BeginEpoch(p.epoch)
	}
}

// syncLogsParallel runs one Sync round: every shard without an earlier
// error flushes its recovery log's deferred appends, concurrently. On a
// shared physical log the first Sync's fsync covers every shard and the
// rest return without touching the disk; on independent stores the barriers
// at least overlap. Errors land in errs[i].
func (p *Proxy) syncLogsParallel(shs []*shard, errs []error) {
	var wg sync.WaitGroup
	for i := range shs {
		if errs[i] != nil || shs[i].rlog == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = shs[i].rlog.Sync()
		}(i)
	}
	wg.Wait()
}

// appendCommitAll appends the epoch's commit records, coordinator (shard 0)
// first: the coordinator's record is the global commit point and pays a
// real durability barrier. The other shards' records merely let a shard
// recover without consulting the coordinator's floor — losing one costs a
// floor lookup, not correctness — so they are appended deferred and ride
// whatever flush comes next (the storage-epoch commits that follow, or the
// next epoch's barriers) instead of each paying an fsync.
func (p *Proxy) appendCommitAll(epoch uint64) error {
	commitHook := func(sh *shard) error {
		if p.testCommitHook != nil {
			return p.testCommitHook(sh.id)
		}
		return nil
	}
	if err := p.shards[0].rlog.AppendCommit(epoch); err != nil {
		return err
	}
	if err := commitHook(p.shards[0]); err != nil {
		return err
	}
	for _, sh := range p.shards[1:] {
		if err := sh.rlog.AppendCommitDeferred(epoch); err != nil {
			return err
		}
		if err := commitHook(sh); err != nil {
			return err
		}
	}
	return nil
}

// unifiedCommitStores probes for the single-barrier boundary commit: every
// store must batch epoch commits onto its recovery-log stream
// (EpochCommitBatcher), and in a sharded proxy all shards must share ONE
// physical stream — prefix durability, which is what orders a shard's heap
// commit after the coordinator's WAL commit record without a barrier between
// them, only exists within one physical log. Anything else returns nil and
// the boundary keeps the inline commit path, whose explicit barrier order
// provides the same guarantees at more fsync waves.
func unifiedCommitStores(stores []storage.Backend) []storage.EpochCommitBatcher {
	out := make([]storage.EpochCommitBatcher, len(stores))
	var stream any
	for i, st := range stores {
		ecb, ok := st.(storage.EpochCommitBatcher)
		if !ok {
			return nil
		}
		if i == 0 {
			stream = ecb.CommitStream()
		} else if ecb.CommitStream() != stream {
			return nil
		}
		out[i] = ecb
	}
	return out
}

// bootstrap initializes fresh ORAMs or recovers from the durability logs.
func (p *Proxy) bootstrap() error {
	coord := p.shards[0]
	if coord.rlog != nil {
		rec, err := coord.rlog.Recover()
		switch {
		case err == nil && rec.HasCommit:
			return p.recover(rec)
		case err == nil:
			// Checkpoints but no commit record anywhere: a first boot that
			// died between baseline checkpoints. Nothing committed and a
			// lagging shard's log may be empty — reinitialize rather than
			// recover (the stale checkpoint is superseded by the fresh one).
		case errors.Is(err, wal.ErrNoCheckpoint):
			// Fresh deployment.
		default:
			return err
		}
	}
	for i, sh := range p.shards {
		oram, err := oramexec.InitORAM(sh.store, p.cfg.Key, p.shardParams(i))
		if err != nil {
			return err
		}
		sh.exec = oramexec.New(oram, sh.store, oramexec.Config{
			Parallelism:  p.cfg.Parallelism,
			WriteThrough: p.cfg.WriteThrough,
			ScalarIO:     p.cfg.ScalarStorageIO,
		})
	}
	p.epoch = 1
	p.beginEpochAllLocked()
	if coord.rlog != nil {
		// Baseline checkpoints so a crash before the first epoch commits
		// recovers to an empty store. Prepare everywhere, then commit.
		for _, sh := range p.shards {
			if _, err := sh.rlog.AppendCheckpoint(0, sh.exec.ORAM()); err != nil {
				return err
			}
		}
		if err := p.appendCommitAll(0); err != nil {
			return err
		}
	}
	return nil
}

// recover implements §8 across all shards: roll each shadow-paged tree back
// to the last globally committed epoch (the coordinator's), rebuild proxy
// metadata from per-shard checkpoints, deterministically replay each shard's
// logged reads from the aborted epoch, and commit the replay as a recovery
// epoch under the same coordinator-commit protocol.
func (p *Proxy) recover(coordRec *wal.Recovery) error {
	committed := coordRec.CommittedEpoch
	// Phase 1: per-shard log reconstruction. No cross-shard dependency once
	// the committed epoch is known, so it runs concurrently.
	recs := make([]*wal.Recovery, len(p.shards))
	recs[0] = coordRec
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i := 1; i < len(p.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := p.shards[i].rlog.RecoverWithFloor(committed)
			if err != nil {
				errs[i] = fmt.Errorf("core: recovering shard %d: %w", i, err)
				return
			}
			recs[i] = rec
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return p.recoverFromRecoveries(recs)
}

// recoverFromRecoveries is recovery phase 2, shared by the cold path above
// and the hot-standby promotion path (NewShardedFromRecoveries, which built
// recs from its replicated log copies instead of scanning storage): rollback,
// state rebuild, deterministic replay, and the recovery-epoch commit.
func (p *Proxy) recoverFromRecoveries(recs []*wal.Recovery) error {
	committed := recs[0].CommittedEpoch
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	// The recovery epoch must cover every logged epoch of the dead
	// generation: the pipelined boundary can leave batch records of
	// committed+1 AND committed+2 behind, and the next generation reuses
	// epoch numbers starting after the recovery epoch. Committing the
	// replay under the highest aborted epoch seen on ANY shard pushes the
	// stale records at or below the committed floor, so a later crash can
	// never replay this generation again.
	recoveryEpoch := committed + 1
	for _, rec := range recs {
		if rec.MaxAbortedEpoch > recoveryEpoch {
			recoveryEpoch = rec.MaxAbortedEpoch
		}
	}
	// Phase 2: rollback, state rebuild, deterministic replay (concurrent);
	// only the final checkpoint/commit records below need ordering.
	replayed := make([]int, len(p.shards))
	for i := range p.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := p.shards[i]
			rec := recs[i]
			if err := sh.store.RollbackTo(committed); err != nil {
				errs[i] = err
				return
			}
			oram, err := ringoram.NewFromState(p.cfg.Key, p.shardParams(i), rec.Full, rec.Deltas...)
			if err != nil {
				errs[i] = err
				return
			}
			sh.exec = oramexec.New(oram, sh.store, oramexec.Config{
				Parallelism:  p.cfg.Parallelism,
				WriteThrough: p.cfg.WriteThrough,
				ScalarIO:     p.cfg.ScalarStorageIO,
			})
			sh.exec.BeginEpoch(recoveryEpoch)
			for _, batch := range rec.AbortedBatches {
				if err := sh.exec.ReplayBatch(batch); err != nil {
					errs[i] = fmt.Errorf("core: shard %d replaying aborted epoch: %w", i, err)
					return
				}
				replayed[i] += len(batch)
			}
			if len(rec.AbortedBatches) > 0 {
				if _, err := sh.exec.Flush(); err != nil {
					errs[i] = err
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, n := range replayed {
		p.replayedLast += n
	}
	p.stats.RecoveryReplayed += p.replayedLast
	// Checkpoints are per-shard prepares: independent logs, so they append
	// (and fsync) concurrently. Only the coordinator-first commit records
	// need cross-shard ordering; the storage CommitEpochs after them are
	// again independent barriers and run as one parallel round.
	ckptErrs := make([]error, len(p.shards))
	var ckptWG sync.WaitGroup
	for i := range p.shards {
		ckptWG.Add(1)
		go func(i int) {
			defer ckptWG.Done()
			sh := p.shards[i]
			_, ckptErrs[i] = sh.rlog.AppendCheckpoint(recoveryEpoch, sh.exec.ORAM())
		}(i)
	}
	ckptWG.Wait()
	for _, err := range ckptErrs {
		if err != nil {
			return err
		}
	}
	if err := p.appendCommitAll(recoveryEpoch); err != nil {
		return err
	}
	if err := p.commitStoresParallel(recoveryEpoch); err != nil {
		return err
	}
	p.epoch = recoveryEpoch + 1
	p.beginEpochAllLocked()
	return nil
}

// ReplayedReads reports how many logged entries the last recovery replayed.
func (p *Proxy) ReplayedReads() int { return p.replayedLast }

// Epoch returns the current epoch number.
func (p *Proxy) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// PendingFetches reports how many keys are queued for the next read batches
// across all shards.
func (p *Proxy) PendingFetches() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, sh := range p.shards {
		n += sh.queuedKeys
	}
	return n
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Shards = len(p.shards)
	s.ConflictAborts, s.CascadingAborts = p.ccu.Stats()
	s.ShedReads = p.shedReads.Load()
	s.AdmittedSessions = p.admittedSessions.Load()
	for _, sh := range p.shards {
		s.ReadQueueDepth += sh.queuedKeys
	}
	for _, sh := range p.shards {
		es := sh.exec.Stats()
		s.Executor.RemoteReads += es.RemoteReads
		s.Executor.LocalReads += es.LocalReads
		s.Executor.BucketWrites += es.BucketWrites
		s.Executor.WritesBuffered += es.WritesBuffered
		s.Executor.Evictions += es.Evictions
		s.Executor.Reshuffles += es.Reshuffles
		if peak := sh.exec.ORAM().StashPeak(); peak > s.StashPeak {
			s.StashPeak = peak
		}
	}
	return s
}

// Close shuts the proxy down. In-flight transactions abort (fate sharing:
// no transaction of the unfinished epoch survives). A boundary whose commit
// stage is already in flight is allowed to land first: its transactions are
// durable and their acknowledgements truthful.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.loop.Wait()
		p.committers.Wait()
		return nil
	}
	p.closed = true
	// Wake a boundary blocked on back-pressure so the epoch loop can exit.
	p.boundaryDone.Broadcast()
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	p.loop.Wait()
	p.committers.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failAllLocked(ErrClosed)
	p.ccu.AbortAll()
	return nil
}

// Shutdown drains the proxy: the epoch loop stops driving new slots, the
// current epoch is sealed and committed so every already-accepted commit
// request resolves truthfully, and then the proxy closes. Unlike Close,
// which fate-shares the unfinished epoch (its transactions abort), Shutdown
// is the graceful SIGTERM path — clients that got past Commit's admission
// get a durable epoch, not ErrClosed.
func (p *Proxy) Shutdown() error {
	p.mu.Lock()
	if p.closed || p.draining {
		p.mu.Unlock()
		return p.Close()
	}
	p.draining = true
	p.mu.Unlock()
	// Wake the epoch loop so it observes draining and stops scheduling.
	select {
	case p.kick <- struct{}{}:
	default:
	}
	p.loop.Wait()
	// Seal and commit whatever the final epoch holds. EndEpoch runs the full
	// boundary (write batch, WAL records, storage commit), so transactions
	// admitted before draining commit durably. Errors fail-stop the proxy
	// like any boundary error; Close below still reaps the wreckage.
	err := p.EndEpoch()
	if errors.Is(err, ErrClosed) {
		err = nil
	}
	p.committers.Wait()
	if cerr := p.Close(); err == nil {
		err = cerr
	}
	return err
}

// failAllLocked wakes every fetch and commit waiter with err.
func (p *Proxy) failAllLocked(err error) {
	for _, sh := range p.shards {
		for _, ws := range sh.queued {
			for _, w := range ws {
				w.done <- err
			}
		}
		sh.queued = make(map[string][]*fetchWaiter)
		sh.resetFetchQueuesLocked()
	}
	for ts, ch := range p.waiters {
		ch <- err
		delete(p.waiters, ts)
	}
}

// epochLoop drives the fixed batch schedule in auto mode.
func (p *Proxy) epochLoop() {
	defer p.loop.Done()
	timer := time.NewTimer(p.cfg.BatchInterval)
	defer timer.Stop()
	for {
		p.mu.Lock()
		closed := p.closed || p.draining
		p.mu.Unlock()
		if closed {
			return
		}
		step := p.stepScheduled
		select {
		case <-timer.C:
		case <-p.kick:
			p.mu.Lock()
			closed = p.closed || p.draining
			fire := false
			// An eager kick may only accelerate a read-batch slot. The
			// epoch boundary stays on the Δ timer: routing a full-queue
			// kick into EndEpoch would make the boundary's timing depend
			// on how many keys clients queued — a trace-shape leak (and,
			// pipelined, a premature seal).
			if p.cfg.EagerBatches && p.batchIdx < p.cfg.ReadBatches {
				for _, sh := range p.shards {
					if sh.queuedKeys >= p.cfg.ReadBatchSize {
						fire = true
						break
					}
				}
			}
			p.mu.Unlock()
			if closed {
				return
			}
			if !fire {
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			step = p.StepReadBatch
		}
		if err := step(); err != nil {
			// StepReadBatch and EndEpoch fail-stop the proxy themselves on
			// execution errors; the loop only stops driving the schedule.
			if !errors.Is(err, ErrClosed) {
				p.failBoundary(err)
			}
			return
		}
		timer.Reset(p.cfg.BatchInterval)
	}
}

// Advance moves the fixed schedule forward by one slot: the next read batch,
// or the epoch boundary once all R read batches have fired. It is the manual
// counterpart of the Δ timer (tests, deterministic examples).
func (p *Proxy) Advance() error { return p.stepScheduled() }

// stepScheduled advances the schedule by one slot: a read batch, or the
// epoch boundary once all R read batches have fired.
func (p *Proxy) stepScheduled() error {
	p.mu.Lock()
	last := p.batchIdx >= p.cfg.ReadBatches
	p.mu.Unlock()
	if last {
		return p.EndEpoch()
	}
	return p.StepReadBatch()
}

// shardReadBatch is one shard's share of a read-batch slot: the real keys it
// serves this round and their blocked transactions.
type shardReadBatch struct {
	sh      *shard
	keys    []string
	waiters map[string][]*fetchWaiter
}

// StepReadBatch issues the epoch's next read batch on every shard: up to
// bread queued fetches per shard, padded with dummies, executed in parallel
// across shards. Exported for manual mode and tests.
func (p *Proxy) StepReadBatch() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.batchIdx >= p.cfg.ReadBatches {
		p.mu.Unlock()
		return fmt.Errorf("core: epoch %d already issued all %d read batches", p.epoch, p.cfg.ReadBatches)
	}
	batches := make([]shardReadBatch, len(p.shards))
	for i, sh := range p.shards {
		// Fair drain: one key per session per pass (admission.go), up to
		// bread slots.
		keys := sh.takeBatchLocked(p.cfg.ReadBatchSize)
		waiters := make(map[string][]*fetchWaiter, len(keys))
		for _, k := range keys {
			waiters[k] = sh.queued[k]
			delete(sh.queued, k)
		}
		batches[i] = shardReadBatch{sh: sh, keys: keys, waiters: waiters}
		p.stats.ReadBatchSlots += uint64(p.cfg.ReadBatchSize)
		p.stats.RealReads += uint64(len(keys))
	}
	p.batchIdx++
	batchIdx := p.batchIdx - 1
	epoch := p.epoch
	p.mu.Unlock()

	// Per shard: plan, write-ahead log, execute. The write-ahead rule (§8:
	// the read schedule must be durable before its reads are issued) only
	// orders a shard's own log against its own reads, so planning and
	// execution run concurrently across shards. The log appends, though,
	// are split from their barrier: every shard's schedule record is
	// appended first (deferred), then one Sync round makes them all durable
	// before any read issues. On a shared physical log the round is ONE
	// fsync for all shards — barrier placement, not barrier count, is what
	// the write-ahead rule fixes.
	results := make([][]oramexec.ReadResult, len(batches))
	plans := make([]*oramexec.BatchPlan, len(batches))
	errs := make([]error, len(batches))
	oramexec.RunStages(len(batches), func(i int) {
		b := batches[i]
		ops := make([]oramexec.ReadOp, p.cfg.ReadBatchSize)
		for j, k := range b.keys {
			ops[j].Key = k
		}
		plans[i], errs[i] = b.sh.exec.PlanReadBatch(ops)
	})
	for i, b := range batches {
		if errs[i] != nil || b.sh.rlog == nil {
			continue
		}
		if err := b.sh.rlog.AppendBatchDeferred(epoch, batchIdx, plans[i].Log()); err != nil {
			errs[i] = err
		}
	}
	shs := make([]*shard, len(batches))
	for i, b := range batches {
		shs[i] = b.sh
	}
	p.syncLogsParallel(shs, errs)
	oramexec.RunStages(len(batches), func(i int) {
		if errs[i] != nil {
			return
		}
		results[i], errs[i] = batches[i].sh.exec.Execute(plans[i])
	})

	p.mu.Lock()
	for i, b := range batches {
		if errs[i] != nil {
			continue
		}
		for _, r := range results[i] {
			if r.Key == "" {
				continue
			}
			p.ccu.InstallBase(r.Key, r.Value, r.Found)
			b.sh.fetched[r.Key] = true
			for _, w := range b.waiters[r.Key] {
				w.done <- nil
			}
			delete(b.waiters, r.Key)
		}
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Waiters were already dequeued from sh.queued into the batches, so
		// failAllLocked can no longer reach them: wake every one still
		// unserved (all shards — the batch failed as a unit) or their
		// transactions would block forever.
		for _, b := range batches {
			for _, ws := range b.waiters {
				for _, w := range ws {
					w.done <- firstErr
				}
			}
		}
		// A failed batch leaves planned ORAM metadata with no matching
		// storage reads: the executor state has diverged from the tree, so
		// the proxy fail-stops (crash-and-recover is §8's answer) instead
		// of continuing on a broken schedule.
		p.closed = true
		p.failAllLocked(firstErr)
		p.boundaryDone.Broadcast()
	}
	p.mu.Unlock()
	if firstErr != nil {
		p.ccu.AbortAll()
	}
	return firstErr
}

// boundaryJob carries one sealed epoch from its seal to its commit.
type boundaryJob struct {
	epoch     uint64
	sealed    []*oramexec.SealedEpoch  // per-shard detached write-back sets
	ckpts     []*wal.PendingCheckpoint // per-shard checkpoint snapshots (nil without durability)
	commitAck map[mvtso.Timestamp]chan error
	committed uint64
}

// pipelined reports whether boundary commit stages run on the background
// committer (see BoundaryMode).
func (p *Proxy) pipelined() bool {
	switch p.cfg.Boundary {
	case BoundarySync:
		return false
	case BoundaryPipelined:
		return true
	default:
		return p.cfg.BatchInterval > 0
	}
}

// EndEpoch finalizes the current epoch in two stages. The synchronous SEAL
// decides transaction fates, partitions and executes the write batch,
// detaches every shard's buffered write-back set under a sealed-epoch
// handle, snapshots the checkpoints, and immediately opens the next epoch so
// read batches resume. The COMMIT stage flushes the sealed buckets, appends
// the per-shard checkpoints and the coordinator-first commit records,
// commits the storage epoch, and only then acknowledges the epoch's commit
// waiters — delayed visibility already deferred acks to the boundary, so
// deferring them to the commit's completion changes no client-visible
// semantics. Pipelined, the commit runs on a background committer and
// EndEpoch returns right after the seal, with at most one boundary in
// flight (the next seal waits for the previous commit to land). A boundary
// error in either stage fail-stops the proxy: every fetch and commit waiter
// is woken, in manual mode as much as in auto mode. Exported for manual
// mode and tests.
func (p *Proxy) EndEpoch() error {
	job, err := p.sealEpoch()
	if err != nil {
		return err
	}
	if p.pipelined() {
		p.committers.Add(1)
		go func() {
			defer p.committers.Done()
			p.commitBoundary(job)
		}()
		return nil
	}
	return p.commitBoundary(job)
}

// sealEpoch runs the boundary's synchronous stage and opens the next epoch.
// On return the write batch has executed, every shard's write-back set is
// sealed, the checkpoints are snapshotted, and read batches may resume; the
// returned job is registered as the (single) in-flight boundary.
func (p *Proxy) sealEpoch() (*boundaryJob, error) {
	p.mu.Lock()
	// Back-pressure: at most one boundary in flight. If the previous
	// epoch's commit has not landed yet, this boundary waits here — the
	// current epoch's read batches already ran, so only the seal stalls.
	for p.inflight != nil && !p.closed {
		p.boundaryDone.Wait()
	}
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	epoch := p.epoch
	// Reads that never got a batch slot: their transactions abort with the
	// epoch (fate sharing); wake them now so they observe the abort.
	for _, sh := range p.shards {
		for _, ws := range sh.queued {
			for _, w := range ws {
				w.done <- fmt.Errorf("%w: read batches exhausted", ErrEpochFull)
			}
		}
		sh.queued = make(map[string][]*fetchWaiter)
		sh.resetFetchQueuesLocked()
	}
	p.mu.Unlock()

	// Decide fates. Every transaction that did not request commit aborts.
	out := p.ccu.FinalizeEpoch()

	// Partition the deduplicated write set across shards.
	shardOps := make([][]oramexec.WriteOp, len(p.shards))
	for _, w := range out.Writes {
		i := shardOf(w.Key, len(p.shards))
		if len(shardOps[i]) == p.cfg.WriteBatchSize {
			// Unreachable: the CCU charges every admitted write against the
			// epoch generation's budget under its own lock (SetWriteBudget),
			// so the finalized write set cannot exceed it. Fail-stop if the
			// invariant ever breaks — the epoch cannot commit these writes.
			return nil, p.failBoundary(fmt.Errorf("core: shard %d write set exceeds write batch (%d)", i, p.cfg.WriteBatchSize))
		}
		shardOps[i] = append(shardOps[i], oramexec.WriteOp{Key: w.Key, Value: w.Value, Tombstone: w.Tombstone})
	}
	p.mu.Lock()
	p.stats.WriteSlots += uint64(p.cfg.WriteBatchSize * len(p.shards))
	p.stats.RealWrites += uint64(len(out.Writes))
	p.mu.Unlock()

	// Per-shard seal pipeline (pad, plan, log, execute, seal, checkpoint
	// snapshot) runs concurrently across shards; each stage orders
	// correctly within its shard. The checkpoint must be snapshotted here,
	// before the next epoch mutates the ORAM metadata; its durable append
	// is the commit stage's job.
	job := &boundaryJob{
		epoch:  epoch,
		sealed: make([]*oramexec.SealedEpoch, len(p.shards)),
		ckpts:  make([]*wal.PendingCheckpoint, len(p.shards)),
	}
	// Same staging as StepReadBatch: plan everywhere, append every shard's
	// write-batch schedule deferred, one Sync round (one fsync on a shared
	// log), then execute — the write-ahead rule holds per shard, with the
	// barrier placed once per round instead of once per record.
	errs := make([]error, len(p.shards))
	wplans := make([]*oramexec.BatchPlan, len(p.shards))
	oramexec.RunStages(len(p.shards), func(i int) {
		sh := p.shards[i]
		ops := shardOps[i]
		for len(ops) < p.cfg.WriteBatchSize {
			ops = append(ops, oramexec.WriteOp{})
		}
		wplans[i], errs[i] = sh.exec.PlanWriteBatch(ops)
	})
	for i, sh := range p.shards {
		if errs[i] != nil || sh.rlog == nil {
			continue
		}
		if err := sh.rlog.AppendBatchDeferred(epoch, p.cfg.ReadBatches, wplans[i].Log()); err != nil {
			errs[i] = err
		}
	}
	p.syncLogsParallel(p.shards, errs)
	oramexec.RunStages(len(p.shards), func(i int) {
		if errs[i] != nil {
			return
		}
		sh := p.shards[i]
		if _, err := sh.exec.Execute(wplans[i]); err != nil {
			errs[i] = err
			return
		}
		// Detach the epoch's write-back set. The next epoch's reads
		// that land on a sealed bucket are served from it locally, so
		// they stay correct while the flush is still in flight.
		var err error
		if job.sealed[i], err = sh.exec.SealEpoch(); err != nil {
			errs[i] = err
			return
		}
		if sh.rlog != nil {
			job.ckpts[i], errs[i] = sh.rlog.PrepareCheckpoint(epoch, sh.exec.ORAM())
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, p.failBoundary(err)
		}
	}

	// Collect the epoch's commit waiters for the commit stage, ack its
	// aborts (no durability obligation), and open the next epoch.
	p.mu.Lock()
	job.commitAck = make(map[mvtso.Timestamp]chan error, len(out.Committed))
	job.committed = uint64(len(out.Committed))
	for _, ts := range out.Committed {
		if ch, ok := p.waiters[ts]; ok {
			job.commitAck[ts] = ch
			delete(p.waiters, ts)
		}
	}
	p.stats.Aborted += uint64(len(out.Aborted))
	for _, ts := range out.Aborted {
		if ch, ok := p.waiters[ts]; ok {
			ch <- ErrAborted
			delete(p.waiters, ts)
		}
	}
	// Any waiter left belongs either to a transaction the CCU no longer
	// tracks (abort it now) or to one that began while this boundary was
	// already finalizing: that transaction lives in the next epoch's CCU
	// generation, so its waiter stays registered and the next boundary
	// decides it. Acking such a transaction as aborted here would lie —
	// its writes would still commit next epoch.
	for ts, ch := range p.waiters {
		if st := p.ccu.Status(ts); st == mvtso.StatusActive || st == mvtso.StatusFinished {
			continue
		}
		ch <- ErrAborted
		delete(p.waiters, ts)
	}
	for _, sh := range p.shards {
		sh.fetched = make(map[string]bool)
	}
	p.batchIdx = 0
	p.epoch++
	p.beginEpochAllLocked()
	p.inflight = job
	p.mu.Unlock()
	return job, nil
}

// commitBoundary runs a sealed boundary's commit stage and publishes its
// outcome: on success the epoch's commit waiters are acknowledged; on
// failure they receive the error and the proxy fail-stops (a half-committed
// boundary leaves proxy metadata ahead of storage — §8's answer is to crash
// and recover). Either way the boundary slot is freed for the next seal.
func (p *Proxy) commitBoundary(job *boundaryJob) error {
	err := p.runCommit(job)
	if err == nil && p.cfg.Replicator != nil {
		// Replication barrier: in replica-acked mode the acks below addition-
		// ally stand on the standby holding every record of this epoch. The
		// epoch is already durably committed locally, so Barrier degrades
		// rather than fails (see Replicator) — a non-nil error here means the
		// replicator itself is broken, and fail-stop is the honest outcome.
		err = p.cfg.Replicator.Barrier()
	}
	p.mu.Lock()
	p.inflight = nil
	if err == nil {
		p.stats.Epochs++
		p.stats.Committed += job.committed
		for _, ch := range job.commitAck {
			ch <- nil
		}
	} else {
		for _, ch := range job.commitAck {
			ch <- err
		}
		p.closed = true
		p.failAllLocked(err)
	}
	p.boundaryDone.Broadcast()
	p.mu.Unlock()
	if err != nil {
		p.ccu.AbortAll()
	}
	return err
}

// runCommit makes a sealed epoch durable: flush every shard's sealed
// buckets and append its checkpoint (prepare), then the coordinator-first
// commit records (the global commit point), then commit the storage epoch.
// Per-shard work runs concurrently; only the commit point needs cross-shard
// ordering.
func (p *Proxy) runCommit(job *boundaryJob) error {
	errs := make([]error, len(p.shards))
	oramexec.RunStages(len(p.shards), func(i int) {
		sh := p.shards[i]
		if _, err := sh.exec.FlushSealed(job.sealed[i]); err != nil {
			errs[i] = err
			return
		}
		if !p.pipelined() {
			// A synchronous boundary has no overlap to serve: retire
			// the sealed set so the next epoch reads storage directly,
			// keeping the observable trace (and its crash replay)
			// identical to the unpipelined design.
			sh.exec.ReleaseSealed(job.sealed[i])
		}
	})
	// Prepare: append every shard's checkpoint deferred. On the inline path
	// a Sync round follows, making all prepared records durable before the
	// commit point is written; on the unified path the stream order itself
	// carries prepare-before-commit and the whole boundary stands on one
	// final flush.
	for i, sh := range p.shards {
		if errs[i] != nil || job.ckpts[i] == nil {
			continue
		}
		if _, err := sh.rlog.AppendPreparedDeferred(job.ckpts[i]); err != nil {
			errs[i] = err
		}
	}
	// The test hook's contract is "shard i's commit record is durable, later
	// shards' not yet appended" — only the inline path has that intermediate
	// state, so hooked runs keep it.
	if p.unified != nil && p.shards[0].rlog != nil && p.testCommitHook == nil {
		return p.commitUnified(job, errs)
	}
	p.syncLogsParallel(p.shards, errs)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Global commit point: all shards prepared; the coordinator's commit
	// record decides the epoch for everyone.
	if p.shards[0].rlog != nil {
		if err := p.appendCommitAll(job.epoch); err != nil {
			return err
		}
	}
	return p.commitStoresParallel(job.epoch)
}

// commitUnified retires a sealed boundary with ONE flush wave. In logheap
// mode the epoch's write-back buckets, every shard's checkpoint, the WAL
// commit records, and every shard's storage epoch commit are all records on
// the same physical append stream, so a single fsync makes the entire
// boundary durable at once. Record order carries the protocol that the
// inline path enforces with barriers: checkpoints (prepare) precede the
// coordinator's commit record (the global commit point), which precedes
// every heap commit (epoch retirement) — and crash recovery keeps a prefix
// of the stream, so no record can outlive a crash without every record it
// depends on. A lost suffix therefore always lands BETWEEN protocol steps,
// never inside an inverted one.
func (p *Proxy) commitUnified(job *boundaryJob, errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Coordinator first: within one stream, "appended earlier" is all the
	// ordering the global commit point needs.
	for _, sh := range p.shards {
		if err := sh.rlog.AppendCommitDeferred(job.epoch); err != nil {
			return err
		}
	}
	for i := range p.shards {
		if err := p.unified[i].CommitEpochNoSync(job.epoch); err != nil {
			return err
		}
	}
	p.syncLogsParallel(p.shards, errs)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// commitStoresParallel retires the epoch on every shard's storage
// concurrently. Each CommitEpoch stands on its own fsync barrier; issuing
// them together lets backends sharing a commit-group data dir coalesce the
// whole round into one fsync wave instead of paying one barrier per shard.
func (p *Proxy) commitStoresParallel(epoch uint64) error {
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i := range p.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.shards[i].store.CommitEpoch(epoch)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// failBoundary fail-stops the proxy after a boundary error: every fetch and
// commit waiter is woken with err regardless of mode, so manual-mode
// Advance() callers are never stranded.
func (p *Proxy) failBoundary(err error) error {
	p.mu.Lock()
	p.closed = true
	p.failAllLocked(err)
	p.boundaryDone.Broadcast()
	p.mu.Unlock()
	p.ccu.AbortAll()
	return err
}
