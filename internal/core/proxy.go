// Package core implements the Obladi proxy — the paper's primary
// contribution (§5–§8): a trusted coordinator that runs serializable
// transactions over an oblivious store while revealing nothing about the
// workload beyond a fixed, deterministic batch schedule.
//
// Time is partitioned into epochs. Each epoch issues R fixed-size read
// batches at a fixed interval Δ followed by one fixed-size write batch;
// batches are padded with dummy requests and deduplicated, so the storage
// server observes the same request pattern whatever the transactions do.
// Transactions execute under MVTSO against a version cache; commit decisions
// are delayed to the epoch boundary (delayed visibility), where the epoch's
// final write set is flushed to the ORAM, metadata is checkpointed to the
// recovery unit, and clients are notified.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/mvtso"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
	"obladi/internal/wal"
)

// Public errors.
var (
	// ErrAborted is returned when a transaction aborts (conflict, cascading
	// abort, epoch boundary, or proxy shutdown).
	ErrAborted = errors.New("obladi: transaction aborted")
	// ErrEpochFull is returned when an epoch ran out of read-batch slots or
	// write-batch capacity for this transaction.
	ErrEpochFull = errors.New("obladi: epoch capacity exhausted")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("obladi: proxy closed")
	// ErrValueTooLarge is returned for values exceeding the ORAM block size.
	ErrValueTooLarge = errors.New("obladi: value exceeds configured ValueSize")
)

// Config assembles a proxy. The batching parameters mirror Table 1 of the
// paper: R read batches of size bread issued every Δ, one write batch of
// size bwrite.
type Config struct {
	// Params configures the underlying Ring ORAM.
	Params ringoram.Params
	// Key encrypts ORAM slots and recovery records. Required unless
	// Params.DisableEncryption is set.
	Key *cryptoutil.Key

	// ReadBatches is R, the number of read batches per epoch (default 4).
	ReadBatches int
	// ReadBatchSize is bread (default 32).
	ReadBatchSize int
	// WriteBatchSize is bwrite (default 32).
	WriteBatchSize int
	// BatchInterval is Δ. Zero selects manual mode: the caller drives
	// batches with StepReadBatch/EndEpoch (tests, deterministic examples).
	BatchInterval time.Duration
	// EagerBatches fires a read batch as soon as it fills instead of
	// waiting out Δ. The batch schedule then tracks offered load, which is
	// observable; the paper keeps the schedule fixed, so this knob exists
	// for throughput experiments only.
	EagerBatches bool

	// Parallelism caps concurrent storage operations.
	Parallelism int
	// WriteThrough disables delayed write-back (Figure 10d ablation).
	WriteThrough bool
	// DisableReadCache makes repeat reads of an epoch-resident key consume
	// a fresh batch slot instead of being served from the version cache
	// (§6.3 ablation).
	DisableReadCache bool

	// DisableDurability skips the recovery unit entirely (microbenchmarks
	// that isolate ORAM throughput; Figure 10 runs without durability).
	DisableDurability bool
	// FullCheckpointEvery is the full-checkpoint cadence (Figure 11a).
	FullCheckpointEvery int
}

func (c *Config) setDefaults() error {
	if c.ReadBatches <= 0 {
		c.ReadBatches = 4
	}
	if c.ReadBatchSize <= 0 {
		c.ReadBatchSize = 32
	}
	if c.WriteBatchSize <= 0 {
		c.WriteBatchSize = 32
	}
	if c.Key == nil && !c.Params.DisableEncryption {
		return errors.New("core: nil key with encryption enabled")
	}
	return nil
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	Epochs           uint64
	Committed        uint64
	Aborted          uint64
	ReadBatchSlots   uint64 // total read-batch slots issued
	RealReads        uint64 // slots carrying real requests
	CacheHits        uint64 // reads served from the version cache
	WriteSlots       uint64
	RealWrites       uint64
	ConflictAborts   int64
	CascadingAborts  int64
	Executor         oramexec.Stats
	StashPeak        int
	RecoveryReplayed int
}

// fetchWaiter is one transaction blocked on a base-version fetch.
type fetchWaiter struct {
	key  string
	done chan error
}

// Proxy is the Obladi trusted proxy.
type Proxy struct {
	cfg   Config
	store storage.Backend
	ccu   *mvtso.Manager
	exec  *oramexec.Executor
	rlog  *wal.Log

	mu       sync.Mutex
	closed   bool
	epoch    uint64
	batchIdx int // read batches already issued this epoch

	// fetchQueue holds keys awaiting an ORAM read this epoch, in arrival
	// order, deduplicated; waiters are woken when the key's base installs.
	fetchQueue []string
	queued     map[string][]*fetchWaiter
	fetched    map[string]bool // keys whose base version is resident

	// epochWrites tracks distinct keys written this epoch (bwrite guard).
	epochWrites map[string]bool

	// commit waiters, by transaction timestamp.
	waiters map[mvtso.Timestamp]chan error

	kick      chan struct{} // wakes the epoch loop (eager batches, close)
	loop      sync.WaitGroup
	ablateSeq uint64 // unique tokens for the DisableReadCache ablation

	stats        Stats
	replayedLast int
}

// New creates a proxy over the given backend, initializing (or recovering)
// the ORAM. If the backend's recovery log already holds a committed
// checkpoint, New recovers from it instead of reinitializing — so restarting
// a crashed proxy against the same storage is exactly Obladi's §8 recovery.
func New(store storage.Backend, cfg Config) (*Proxy, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:         cfg,
		store:       store,
		ccu:         mvtso.NewManager(),
		queued:      make(map[string][]*fetchWaiter),
		fetched:     make(map[string]bool),
		epochWrites: make(map[string]bool),
		waiters:     make(map[mvtso.Timestamp]chan error),
		kick:        make(chan struct{}, 1),
	}
	if !cfg.DisableDurability {
		l, err := wal.New(store, wal.Config{
			Key:                 cfg.Key,
			PadPosEntries:       cfg.ReadBatches*cfg.ReadBatchSize + cfg.WriteBatchSize,
			PadStashEntries:     cfg.Params.StashLimit,
			FullCheckpointEvery: cfg.FullCheckpointEvery,
		})
		if err != nil {
			return nil, err
		}
		p.rlog = l
	}
	if err := p.bootstrap(); err != nil {
		return nil, err
	}
	if cfg.BatchInterval > 0 {
		p.loop.Add(1)
		go p.epochLoop()
	}
	return p, nil
}

// bootstrap initializes a fresh ORAM or recovers from the durability log.
func (p *Proxy) bootstrap() error {
	if p.rlog != nil {
		rec, err := p.rlog.Recover()
		switch {
		case err == nil:
			return p.recover(rec)
		case errors.Is(err, wal.ErrNoCheckpoint):
			// Fresh deployment.
		default:
			return err
		}
	}
	oram, err := oramexec.InitORAM(p.store, p.cfg.Key, p.cfg.Params)
	if err != nil {
		return err
	}
	p.exec = oramexec.New(oram, p.store, oramexec.Config{
		Parallelism:  p.cfg.Parallelism,
		WriteThrough: p.cfg.WriteThrough,
	})
	p.epoch = 1
	p.exec.BeginEpoch(p.epoch)
	if p.rlog != nil {
		// Baseline checkpoint so a crash before the first epoch commits
		// recovers to an empty store.
		if _, err := p.rlog.AppendCheckpoint(0, oram); err != nil {
			return err
		}
		if err := p.rlog.AppendCommit(0); err != nil {
			return err
		}
	}
	return nil
}

// recover implements §8: roll the shadow-paged tree back to the last
// committed epoch, rebuild proxy metadata from checkpoints, deterministically
// replay the aborted epoch's logged reads, and commit the replay as a
// recovery epoch.
func (p *Proxy) recover(rec *wal.Recovery) error {
	if err := p.store.RollbackTo(rec.CommittedEpoch); err != nil {
		return err
	}
	oram, err := ringoram.NewFromState(p.cfg.Key, p.cfg.Params, rec.Full, rec.Deltas...)
	if err != nil {
		return err
	}
	p.exec = oramexec.New(oram, p.store, oramexec.Config{
		Parallelism:  p.cfg.Parallelism,
		WriteThrough: p.cfg.WriteThrough,
	})
	recoveryEpoch := rec.CommittedEpoch + 1
	p.exec.BeginEpoch(recoveryEpoch)
	replayed := 0
	for _, batch := range rec.AbortedBatches {
		if err := p.exec.ReplayBatch(batch); err != nil {
			return fmt.Errorf("core: replaying aborted epoch: %w", err)
		}
		replayed += len(batch)
	}
	p.replayedLast = replayed
	p.stats.RecoveryReplayed += replayed
	if len(rec.AbortedBatches) > 0 {
		if _, err := p.exec.Flush(); err != nil {
			return err
		}
	}
	if _, err := p.rlog.AppendCheckpoint(recoveryEpoch, oram); err != nil {
		return err
	}
	if err := p.rlog.AppendCommit(recoveryEpoch); err != nil {
		return err
	}
	if err := p.store.CommitEpoch(recoveryEpoch); err != nil {
		return err
	}
	p.epoch = recoveryEpoch + 1
	p.exec.BeginEpoch(p.epoch)
	return nil
}

// ReplayedReads reports how many logged entries the last recovery replayed.
func (p *Proxy) ReplayedReads() int { return p.replayedLast }

// Epoch returns the current epoch number.
func (p *Proxy) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.ConflictAborts, s.CascadingAborts = p.ccu.Stats()
	s.Executor = p.exec.Stats()
	s.StashPeak = p.exec.ORAM().StashPeak()
	return s
}

// Close shuts the proxy down. In-flight transactions abort (fate sharing:
// no transaction of the unfinished epoch survives).
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	p.loop.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failAllLocked(ErrClosed)
	p.ccu.AbortAll()
	return nil
}

// failAllLocked wakes every fetch and commit waiter with err.
func (p *Proxy) failAllLocked(err error) {
	for _, ws := range p.queued {
		for _, w := range ws {
			w.done <- err
		}
	}
	p.queued = make(map[string][]*fetchWaiter)
	p.fetchQueue = nil
	for ts, ch := range p.waiters {
		ch <- err
		delete(p.waiters, ts)
	}
}

// epochLoop drives the fixed batch schedule in auto mode.
func (p *Proxy) epochLoop() {
	defer p.loop.Done()
	timer := time.NewTimer(p.cfg.BatchInterval)
	defer timer.Stop()
	for {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		select {
		case <-timer.C:
		case <-p.kick:
			p.mu.Lock()
			closed = p.closed
			fire := false
			if p.cfg.EagerBatches && len(p.fetchQueue) >= p.cfg.ReadBatchSize {
				fire = true
			}
			p.mu.Unlock()
			if closed {
				return
			}
			if !fire {
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if err := p.stepScheduled(); err != nil {
			p.mu.Lock()
			p.failAllLocked(err)
			p.closed = true
			p.mu.Unlock()
			return
		}
		timer.Reset(p.cfg.BatchInterval)
	}
}

// Advance moves the fixed schedule forward by one slot: the next read batch,
// or the epoch boundary once all R read batches have fired. It is the manual
// counterpart of the Δ timer (tests, deterministic examples).
func (p *Proxy) Advance() error { return p.stepScheduled() }

// stepScheduled advances the schedule by one slot: a read batch, or the
// epoch boundary once all R read batches have fired.
func (p *Proxy) stepScheduled() error {
	p.mu.Lock()
	last := p.batchIdx >= p.cfg.ReadBatches
	p.mu.Unlock()
	if last {
		return p.EndEpoch()
	}
	return p.StepReadBatch()
}

// StepReadBatch issues the epoch's next read batch: up to bread queued
// fetches, padded with dummies. Exported for manual mode and tests.
func (p *Proxy) StepReadBatch() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.batchIdx >= p.cfg.ReadBatches {
		p.mu.Unlock()
		return fmt.Errorf("core: epoch %d already issued all %d read batches", p.epoch, p.cfg.ReadBatches)
	}
	n := len(p.fetchQueue)
	if n > p.cfg.ReadBatchSize {
		n = p.cfg.ReadBatchSize
	}
	keys := append([]string(nil), p.fetchQueue[:n]...)
	p.fetchQueue = p.fetchQueue[n:]
	waiters := make(map[string][]*fetchWaiter, n)
	for _, k := range keys {
		waiters[k] = p.queued[k]
		delete(p.queued, k)
	}
	p.batchIdx++
	epoch := p.epoch
	p.stats.ReadBatchSlots += uint64(p.cfg.ReadBatchSize)
	p.stats.RealReads += uint64(n)
	p.mu.Unlock()

	ops := make([]oramexec.ReadOp, p.cfg.ReadBatchSize)
	for i, k := range keys {
		ops[i].Key = k
	}
	plan, err := p.exec.PlanReadBatch(ops)
	if err != nil {
		return err
	}
	if p.rlog != nil {
		// Write-ahead: the read schedule must be durable before the reads
		// execute, so recovery can replay them (§8).
		if err := p.rlog.AppendBatch(epoch, p.batchIdx-1, plan.Log()); err != nil {
			return err
		}
	}
	res, err := p.exec.Execute(plan)
	if err != nil {
		return err
	}
	p.mu.Lock()
	for _, r := range res {
		if r.Key == "" {
			continue
		}
		p.ccu.InstallBase(r.Key, r.Value, r.Found)
		p.fetched[r.Key] = true
		for _, w := range waiters[r.Key] {
			w.done <- nil
		}
		delete(waiters, r.Key)
	}
	p.mu.Unlock()
	return nil
}

// EndEpoch finalizes the current epoch: decide transaction fates, flush the
// write batch and buffered buckets, persist the checkpoint and commit
// record, notify clients, and open the next epoch. Exported for manual mode
// and tests.
func (p *Proxy) EndEpoch() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	epoch := p.epoch
	// Reads that never got a batch slot: their transactions abort with the
	// epoch (fate sharing); wake them now so they observe the abort.
	for _, ws := range p.queued {
		for _, w := range ws {
			w.done <- fmt.Errorf("%w: read batches exhausted", ErrEpochFull)
		}
	}
	p.queued = make(map[string][]*fetchWaiter)
	p.fetchQueue = nil
	p.mu.Unlock()

	// Decide fates. Every transaction that did not request commit aborts.
	out := p.ccu.FinalizeEpoch()

	// Build the fixed-size write batch from the deduplicated write set.
	ops := make([]oramexec.WriteOp, 0, p.cfg.WriteBatchSize)
	for _, w := range out.Writes {
		if len(ops) == p.cfg.WriteBatchSize {
			// Capacity guard at Write() keeps this from happening; if a
			// race slips through, the epoch cannot commit these writes.
			return fmt.Errorf("core: write set (%d) exceeds write batch (%d)", len(out.Writes), p.cfg.WriteBatchSize)
		}
		ops = append(ops, oramexec.WriteOp{Key: w.Key, Value: w.Value, Tombstone: w.Tombstone})
	}
	p.mu.Lock()
	p.stats.WriteSlots += uint64(p.cfg.WriteBatchSize)
	p.stats.RealWrites += uint64(len(ops))
	p.mu.Unlock()
	for len(ops) < p.cfg.WriteBatchSize {
		ops = append(ops, oramexec.WriteOp{})
	}
	wplan, err := p.exec.PlanWriteBatch(ops)
	if err != nil {
		return err
	}
	if p.rlog != nil {
		if err := p.rlog.AppendBatch(epoch, p.cfg.ReadBatches, wplan.Log()); err != nil {
			return err
		}
	}
	if _, err := p.exec.Execute(wplan); err != nil {
		return err
	}
	// Epoch write-back: flush buffered buckets, then make the epoch durable.
	if _, err := p.exec.Flush(); err != nil {
		return err
	}
	if p.rlog != nil {
		if _, err := p.rlog.AppendCheckpoint(epoch, p.exec.ORAM()); err != nil {
			return err
		}
		if err := p.rlog.AppendCommit(epoch); err != nil {
			return err
		}
	}
	if err := p.store.CommitEpoch(epoch); err != nil {
		return err
	}

	// Notify clients; reset per-epoch state; open the next epoch.
	p.mu.Lock()
	p.stats.Epochs++
	p.stats.Committed += uint64(len(out.Committed))
	p.stats.Aborted += uint64(len(out.Aborted))
	for _, ts := range out.Committed {
		if ch, ok := p.waiters[ts]; ok {
			ch <- nil
			delete(p.waiters, ts)
		}
	}
	for _, ts := range out.Aborted {
		if ch, ok := p.waiters[ts]; ok {
			ch <- ErrAborted
			delete(p.waiters, ts)
		}
	}
	// Any waiter left belongs to a transaction the CCU no longer tracks.
	for ts, ch := range p.waiters {
		ch <- ErrAborted
		delete(p.waiters, ts)
	}
	p.fetched = make(map[string]bool)
	p.epochWrites = make(map[string]bool)
	p.batchIdx = 0
	p.epoch++
	p.exec.BeginEpoch(p.epoch)
	p.mu.Unlock()
	return nil
}
