// Package core implements the Obladi proxy — the paper's primary
// contribution (§5–§8): a trusted coordinator that runs serializable
// transactions over an oblivious store while revealing nothing about the
// workload beyond a fixed, deterministic batch schedule.
//
// Time is partitioned into epochs. Each epoch issues R fixed-size read
// batches at a fixed interval Δ followed by one fixed-size write batch;
// batches are padded with dummy requests and deduplicated, so the storage
// server observes the same request pattern whatever the transactions do.
// Transactions execute under MVTSO against a version cache; commit decisions
// are delayed to the epoch boundary (delayed visibility), where the epoch's
// final write set is flushed to the ORAM, metadata is checkpointed to the
// recovery unit, and clients are notified.
//
// # Sharding
//
// The proxy can partition its key space by hash across N independent Ring
// ORAM instances ("shards"), each with its own position map, stash, batch
// scheduler quota, recovery log, and storage backend. MVTSO timestamps stay
// global, so a transaction spanning shards is still serialized once and
// commits (or aborts) atomically at the global epoch boundary. Every shard
// issues exactly R read batches of bread slots and one write batch of bwrite
// slots per epoch regardless of where keys hash, so each shard's observable
// schedule remains workload independent and the shard-selection hash leaks
// nothing beyond what the single-ORAM design already leaked.
//
// Cross-shard durability uses a coordinator-commit protocol: at the epoch
// boundary every shard flushes and appends its checkpoint (prepare), and only
// then are commit records appended, shard 0 first. Shard 0's commit record is
// the global commit point; recovery reads shard 0's committed epoch and
// recovers every other shard with that epoch as a floor (a shard can lag the
// coordinator by at most its own commit record, and its checkpoint for the
// committed epoch is already durable).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/mvtso"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
	"obladi/internal/wal"
)

// Public errors.
var (
	// ErrAborted is returned when a transaction aborts (conflict, cascading
	// abort, epoch boundary, or proxy shutdown).
	ErrAborted = errors.New("obladi: transaction aborted")
	// ErrEpochFull is returned when an epoch ran out of read-batch slots or
	// write-batch capacity for this transaction.
	ErrEpochFull = errors.New("obladi: epoch capacity exhausted")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("obladi: proxy closed")
	// ErrValueTooLarge is returned for values exceeding the ORAM block size.
	ErrValueTooLarge = errors.New("obladi: value exceeds configured ValueSize")
)

// Config assembles a proxy. The batching parameters mirror Table 1 of the
// paper (reproduced in DESIGN.md): R read batches of size bread issued every
// Δ, one write batch of size bwrite. In a sharded proxy every parameter is
// per shard: each shard issues R batches of bread and one write batch of
// bwrite per epoch.
type Config struct {
	// Params configures the underlying Ring ORAM. In a sharded proxy every
	// shard uses this geometry (NumBlocks is per-shard capacity); a non-zero
	// Seed is decorrelated per shard.
	Params ringoram.Params
	// Key encrypts ORAM slots and recovery records. Required unless
	// Params.DisableEncryption is set.
	Key *cryptoutil.Key

	// ReadBatches is R, the number of read batches per epoch (default 4).
	ReadBatches int
	// ReadBatchSize is bread (default 32).
	ReadBatchSize int
	// WriteBatchSize is bwrite (default 32).
	WriteBatchSize int
	// BatchInterval is Δ. Zero selects manual mode: the caller drives
	// batches with StepReadBatch/EndEpoch (tests, deterministic examples).
	BatchInterval time.Duration
	// EagerBatches fires a read batch as soon as one shard's batch fills
	// instead of waiting out Δ. The batch schedule then tracks offered load,
	// which is observable; the paper keeps the schedule fixed, so this knob
	// exists for throughput experiments only.
	EagerBatches bool

	// Parallelism caps concurrent storage operations (per shard).
	Parallelism int
	// WriteThrough disables delayed write-back (Figure 10d ablation).
	WriteThrough bool
	// DisableReadCache makes repeat reads of an epoch-resident key consume
	// a fresh batch slot instead of being served from the version cache
	// (§6.3 ablation).
	DisableReadCache bool

	// DisableDurability skips the recovery unit entirely (microbenchmarks
	// that isolate ORAM throughput; Figure 10 runs without durability).
	DisableDurability bool
	// FullCheckpointEvery is the full-checkpoint cadence (Figure 11a).
	FullCheckpointEvery int
}

func (c *Config) setDefaults() error {
	if c.ReadBatches <= 0 {
		c.ReadBatches = 4
	}
	if c.ReadBatchSize <= 0 {
		c.ReadBatchSize = 32
	}
	if c.WriteBatchSize <= 0 {
		c.WriteBatchSize = 32
	}
	if c.Key == nil && !c.Params.DisableEncryption {
		return errors.New("core: nil key with encryption enabled")
	}
	return nil
}

// Stats is a snapshot of proxy counters. Executor counters are summed across
// shards; StashPeak is the maximum over shards.
type Stats struct {
	Shards           int
	Epochs           uint64
	Committed        uint64
	Aborted          uint64
	ReadBatchSlots   uint64 // total read-batch slots issued (all shards)
	RealReads        uint64 // slots carrying real requests
	CacheHits        uint64 // reads served from the version cache
	WriteSlots       uint64
	RealWrites       uint64
	ConflictAborts   int64
	CascadingAborts  int64
	Executor         oramexec.Stats
	StashPeak        int
	RecoveryReplayed int
}

// fetchWaiter is one transaction blocked on a base-version fetch.
type fetchWaiter struct {
	key  string
	done chan error
}

// shard is one key-space partition: an independent Ring ORAM with its own
// executor, recovery log, storage backend, and per-epoch batch bookkeeping.
type shard struct {
	id    int
	store storage.Backend
	exec  *oramexec.Executor
	rlog  *wal.Log

	// The fields below are guarded by Proxy.mu.

	// fetchQueue holds keys awaiting an ORAM read this epoch, in arrival
	// order, deduplicated; waiters are woken when the key's base installs.
	fetchQueue []string
	queued     map[string][]*fetchWaiter
	fetched    map[string]bool // keys whose base version is resident

	// epochWrites tracks distinct keys written this epoch (bwrite guard).
	epochWrites map[string]bool
}

// shardOf routes a key to one of n shards by FNV-1a hash. The mapping is
// public (the adversary may know it); it leaks nothing because every shard's
// request schedule is fixed regardless of routing.
func shardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Proxy is the Obladi trusted proxy.
type Proxy struct {
	cfg    Config
	shards []*shard
	ccu    *mvtso.Manager

	mu       sync.Mutex
	closed   bool
	epoch    uint64
	batchIdx int // read batches already issued this epoch

	// commit waiters, by transaction timestamp.
	waiters map[mvtso.Timestamp]chan error

	kick      chan struct{} // wakes the epoch loop (eager batches, close)
	loop      sync.WaitGroup
	ablateSeq uint64 // unique tokens for the DisableReadCache ablation

	stats        Stats
	replayedLast int

	// testCommitHook, when set (tests only), runs after each shard's commit
	// record is appended; returning an error simulates a crash torn across
	// the coordinator-commit protocol.
	testCommitHook func(shardID int) error
}

// New creates a single-shard proxy over the given backend, initializing (or
// recovering) the ORAM. If the backend's recovery log already holds a
// committed checkpoint, New recovers from it instead of reinitializing — so
// restarting a crashed proxy against the same storage is exactly Obladi's §8
// recovery.
func New(store storage.Backend, cfg Config) (*Proxy, error) {
	return NewSharded([]storage.Backend{store}, cfg)
}

// NewSharded creates a proxy whose key space is hash-partitioned across
// len(stores) shards, one Ring ORAM per backend. Every shard runs the same
// per-shard configuration (geometry, batch quotas, recovery cadence). Like
// New, it recovers instead of reinitializing when the coordinator shard's
// recovery log holds a committed checkpoint.
func NewSharded(stores []storage.Backend, cfg Config) (*Proxy, error) {
	if len(stores) == 0 {
		return nil, errors.New("core: at least one storage backend required")
	}
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:     cfg,
		ccu:     mvtso.NewManager(),
		waiters: make(map[mvtso.Timestamp]chan error),
		kick:    make(chan struct{}, 1),
	}
	for i, st := range stores {
		sh := &shard{
			id:          i,
			store:       st,
			queued:      make(map[string][]*fetchWaiter),
			fetched:     make(map[string]bool),
			epochWrites: make(map[string]bool),
		}
		if !cfg.DisableDurability {
			l, err := wal.New(st, wal.Config{
				Key:                 cfg.Key,
				Shard:               i,
				Shards:              len(stores),
				PadPosEntries:       cfg.ReadBatches*cfg.ReadBatchSize + cfg.WriteBatchSize,
				PadStashEntries:     cfg.Params.StashLimit,
				FullCheckpointEvery: cfg.FullCheckpointEvery,
			})
			if err != nil {
				return nil, err
			}
			sh.rlog = l
		}
		p.shards = append(p.shards, sh)
	}
	if err := p.bootstrap(); err != nil {
		return nil, err
	}
	if cfg.BatchInterval > 0 {
		p.loop.Add(1)
		go p.epochLoop()
	}
	return p, nil
}

// Shards reports the number of key-space partitions.
func (p *Proxy) Shards() int { return len(p.shards) }

// shardParams returns shard i's ORAM parameters: the shared geometry with a
// decorrelated deterministic seed (tests only; a zero seed stays random).
func (p *Proxy) shardParams(i int) ringoram.Params {
	sp := p.cfg.Params
	if sp.Seed != 0 {
		sp.Seed += uint64(i)
	}
	return sp
}

// beginEpochAllLocked opens p.epoch on every shard's executor.
func (p *Proxy) beginEpochAllLocked() {
	for _, sh := range p.shards {
		sh.exec.BeginEpoch(p.epoch)
	}
}

// appendCommitAll appends the epoch's commit records, coordinator (shard 0)
// first: the coordinator's record is the global commit point; the others
// merely let a shard recover without consulting the coordinator's floor.
func (p *Proxy) appendCommitAll(epoch uint64) error {
	for _, sh := range p.shards {
		if err := sh.rlog.AppendCommit(epoch); err != nil {
			return err
		}
		if p.testCommitHook != nil {
			if err := p.testCommitHook(sh.id); err != nil {
				return err
			}
		}
	}
	return nil
}

// bootstrap initializes fresh ORAMs or recovers from the durability logs.
func (p *Proxy) bootstrap() error {
	coord := p.shards[0]
	if coord.rlog != nil {
		rec, err := coord.rlog.Recover()
		switch {
		case err == nil && rec.HasCommit:
			return p.recover(rec)
		case err == nil:
			// Checkpoints but no commit record anywhere: a first boot that
			// died between baseline checkpoints. Nothing committed and a
			// lagging shard's log may be empty — reinitialize rather than
			// recover (the stale checkpoint is superseded by the fresh one).
		case errors.Is(err, wal.ErrNoCheckpoint):
			// Fresh deployment.
		default:
			return err
		}
	}
	for i, sh := range p.shards {
		oram, err := oramexec.InitORAM(sh.store, p.cfg.Key, p.shardParams(i))
		if err != nil {
			return err
		}
		sh.exec = oramexec.New(oram, sh.store, oramexec.Config{
			Parallelism:  p.cfg.Parallelism,
			WriteThrough: p.cfg.WriteThrough,
		})
	}
	p.epoch = 1
	p.beginEpochAllLocked()
	if coord.rlog != nil {
		// Baseline checkpoints so a crash before the first epoch commits
		// recovers to an empty store. Prepare everywhere, then commit.
		for _, sh := range p.shards {
			if _, err := sh.rlog.AppendCheckpoint(0, sh.exec.ORAM()); err != nil {
				return err
			}
		}
		if err := p.appendCommitAll(0); err != nil {
			return err
		}
	}
	return nil
}

// recover implements §8 across all shards: roll each shadow-paged tree back
// to the last globally committed epoch (the coordinator's), rebuild proxy
// metadata from per-shard checkpoints, deterministically replay each shard's
// logged reads from the aborted epoch, and commit the replay as a recovery
// epoch under the same coordinator-commit protocol.
func (p *Proxy) recover(coordRec *wal.Recovery) error {
	committed := coordRec.CommittedEpoch
	recoveryEpoch := committed + 1
	// Per-shard recovery (log scan/decode, rollback, state rebuild, replay)
	// has no cross-shard dependency once the committed epoch is known, so it
	// runs concurrently like every other multi-shard phase; only the final
	// checkpoint/commit records below need ordering.
	replayed := make([]int, len(p.shards))
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i := range p.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := p.shards[i]
			rec := coordRec
			if i > 0 {
				var err error
				rec, err = sh.rlog.RecoverWithFloor(committed)
				if err != nil {
					errs[i] = fmt.Errorf("core: recovering shard %d: %w", i, err)
					return
				}
			}
			if err := sh.store.RollbackTo(committed); err != nil {
				errs[i] = err
				return
			}
			oram, err := ringoram.NewFromState(p.cfg.Key, p.shardParams(i), rec.Full, rec.Deltas...)
			if err != nil {
				errs[i] = err
				return
			}
			sh.exec = oramexec.New(oram, sh.store, oramexec.Config{
				Parallelism:  p.cfg.Parallelism,
				WriteThrough: p.cfg.WriteThrough,
			})
			sh.exec.BeginEpoch(recoveryEpoch)
			for _, batch := range rec.AbortedBatches {
				if err := sh.exec.ReplayBatch(batch); err != nil {
					errs[i] = fmt.Errorf("core: shard %d replaying aborted epoch: %w", i, err)
					return
				}
				replayed[i] += len(batch)
			}
			if len(rec.AbortedBatches) > 0 {
				if _, err := sh.exec.Flush(); err != nil {
					errs[i] = err
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, n := range replayed {
		p.replayedLast += n
	}
	p.stats.RecoveryReplayed += p.replayedLast
	for _, sh := range p.shards {
		if _, err := sh.rlog.AppendCheckpoint(recoveryEpoch, sh.exec.ORAM()); err != nil {
			return err
		}
	}
	if err := p.appendCommitAll(recoveryEpoch); err != nil {
		return err
	}
	for _, sh := range p.shards {
		if err := sh.store.CommitEpoch(recoveryEpoch); err != nil {
			return err
		}
	}
	p.epoch = recoveryEpoch + 1
	p.beginEpochAllLocked()
	return nil
}

// ReplayedReads reports how many logged entries the last recovery replayed.
func (p *Proxy) ReplayedReads() int { return p.replayedLast }

// Epoch returns the current epoch number.
func (p *Proxy) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// PendingFetches reports how many keys are queued for the next read batches
// across all shards.
func (p *Proxy) PendingFetches() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, sh := range p.shards {
		n += len(sh.fetchQueue)
	}
	return n
}

// Stats returns a snapshot of proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Shards = len(p.shards)
	s.ConflictAborts, s.CascadingAborts = p.ccu.Stats()
	for _, sh := range p.shards {
		es := sh.exec.Stats()
		s.Executor.RemoteReads += es.RemoteReads
		s.Executor.LocalReads += es.LocalReads
		s.Executor.BucketWrites += es.BucketWrites
		s.Executor.WritesBuffered += es.WritesBuffered
		s.Executor.Evictions += es.Evictions
		s.Executor.Reshuffles += es.Reshuffles
		if peak := sh.exec.ORAM().StashPeak(); peak > s.StashPeak {
			s.StashPeak = peak
		}
	}
	return s
}

// Close shuts the proxy down. In-flight transactions abort (fate sharing:
// no transaction of the unfinished epoch survives).
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	p.loop.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failAllLocked(ErrClosed)
	p.ccu.AbortAll()
	return nil
}

// failAllLocked wakes every fetch and commit waiter with err.
func (p *Proxy) failAllLocked(err error) {
	for _, sh := range p.shards {
		for _, ws := range sh.queued {
			for _, w := range ws {
				w.done <- err
			}
		}
		sh.queued = make(map[string][]*fetchWaiter)
		sh.fetchQueue = nil
	}
	for ts, ch := range p.waiters {
		ch <- err
		delete(p.waiters, ts)
	}
}

// epochLoop drives the fixed batch schedule in auto mode.
func (p *Proxy) epochLoop() {
	defer p.loop.Done()
	timer := time.NewTimer(p.cfg.BatchInterval)
	defer timer.Stop()
	for {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		select {
		case <-timer.C:
		case <-p.kick:
			p.mu.Lock()
			closed = p.closed
			fire := false
			if p.cfg.EagerBatches {
				for _, sh := range p.shards {
					if len(sh.fetchQueue) >= p.cfg.ReadBatchSize {
						fire = true
						break
					}
				}
			}
			p.mu.Unlock()
			if closed {
				return
			}
			if !fire {
				continue
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		if err := p.stepScheduled(); err != nil {
			p.mu.Lock()
			p.failAllLocked(err)
			p.closed = true
			p.mu.Unlock()
			return
		}
		timer.Reset(p.cfg.BatchInterval)
	}
}

// Advance moves the fixed schedule forward by one slot: the next read batch,
// or the epoch boundary once all R read batches have fired. It is the manual
// counterpart of the Δ timer (tests, deterministic examples).
func (p *Proxy) Advance() error { return p.stepScheduled() }

// stepScheduled advances the schedule by one slot: a read batch, or the
// epoch boundary once all R read batches have fired.
func (p *Proxy) stepScheduled() error {
	p.mu.Lock()
	last := p.batchIdx >= p.cfg.ReadBatches
	p.mu.Unlock()
	if last {
		return p.EndEpoch()
	}
	return p.StepReadBatch()
}

// shardReadBatch is one shard's share of a read-batch slot: the real keys it
// serves this round and their blocked transactions.
type shardReadBatch struct {
	sh      *shard
	keys    []string
	waiters map[string][]*fetchWaiter
}

// StepReadBatch issues the epoch's next read batch on every shard: up to
// bread queued fetches per shard, padded with dummies, executed in parallel
// across shards. Exported for manual mode and tests.
func (p *Proxy) StepReadBatch() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.batchIdx >= p.cfg.ReadBatches {
		p.mu.Unlock()
		return fmt.Errorf("core: epoch %d already issued all %d read batches", p.epoch, p.cfg.ReadBatches)
	}
	batches := make([]shardReadBatch, len(p.shards))
	for i, sh := range p.shards {
		n := len(sh.fetchQueue)
		if n > p.cfg.ReadBatchSize {
			n = p.cfg.ReadBatchSize
		}
		keys := append([]string(nil), sh.fetchQueue[:n]...)
		sh.fetchQueue = sh.fetchQueue[n:]
		waiters := make(map[string][]*fetchWaiter, n)
		for _, k := range keys {
			waiters[k] = sh.queued[k]
			delete(sh.queued, k)
		}
		batches[i] = shardReadBatch{sh: sh, keys: keys, waiters: waiters}
		p.stats.ReadBatchSlots += uint64(p.cfg.ReadBatchSize)
		p.stats.RealReads += uint64(n)
	}
	p.batchIdx++
	batchIdx := p.batchIdx - 1
	epoch := p.epoch
	p.mu.Unlock()

	// Per shard: plan, write-ahead log, execute. The write-ahead rule (§8:
	// the read schedule must be durable before its reads are issued) only
	// orders a shard's own log against its own reads, so the whole pipeline
	// runs concurrently across shards — N storage backends each serve one
	// batch, log append included, in the same latency window.
	results := make([][]oramexec.ReadResult, len(batches))
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := batches[i]
			ops := make([]oramexec.ReadOp, p.cfg.ReadBatchSize)
			for j, k := range b.keys {
				ops[j].Key = k
			}
			plan, err := b.sh.exec.PlanReadBatch(ops)
			if err != nil {
				errs[i] = err
				return
			}
			if b.sh.rlog != nil {
				if err := b.sh.rlog.AppendBatch(epoch, batchIdx, plan.Log()); err != nil {
					errs[i] = err
					return
				}
			}
			results[i], errs[i] = b.sh.exec.Execute(plan)
		}(i)
	}
	wg.Wait()

	p.mu.Lock()
	for i, b := range batches {
		if errs[i] != nil {
			continue
		}
		for _, r := range results[i] {
			if r.Key == "" {
				continue
			}
			p.ccu.InstallBase(r.Key, r.Value, r.Found)
			b.sh.fetched[r.Key] = true
			for _, w := range b.waiters[r.Key] {
				w.done <- nil
			}
			delete(b.waiters, r.Key)
		}
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Waiters were already dequeued from sh.queued into the batches, so
		// failAllLocked can no longer reach them: wake every one still
		// unserved (all shards — the batch failed as a unit) or their
		// transactions would block forever.
		for _, b := range batches {
			for _, ws := range b.waiters {
				for _, w := range ws {
					w.done <- firstErr
				}
			}
		}
	}
	p.mu.Unlock()
	return firstErr
}

// EndEpoch finalizes the current epoch: decide transaction fates, flush every
// shard's write batch and buffered buckets, persist per-shard checkpoints,
// append the coordinator-first commit records, notify clients, and open the
// next epoch. Exported for manual mode and tests.
func (p *Proxy) EndEpoch() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	epoch := p.epoch
	// Reads that never got a batch slot: their transactions abort with the
	// epoch (fate sharing); wake them now so they observe the abort.
	for _, sh := range p.shards {
		for _, ws := range sh.queued {
			for _, w := range ws {
				w.done <- fmt.Errorf("%w: read batches exhausted", ErrEpochFull)
			}
		}
		sh.queued = make(map[string][]*fetchWaiter)
		sh.fetchQueue = nil
	}
	p.mu.Unlock()

	// Decide fates. Every transaction that did not request commit aborts.
	out := p.ccu.FinalizeEpoch()

	// Partition the deduplicated write set across shards.
	shardOps := make([][]oramexec.WriteOp, len(p.shards))
	for _, w := range out.Writes {
		i := shardOf(w.Key, len(p.shards))
		if len(shardOps[i]) == p.cfg.WriteBatchSize {
			// Capacity guard at Write() keeps this from happening; if a
			// race slips through, the epoch cannot commit these writes.
			return fmt.Errorf("core: shard %d write set exceeds write batch (%d)", i, p.cfg.WriteBatchSize)
		}
		shardOps[i] = append(shardOps[i], oramexec.WriteOp{Key: w.Key, Value: w.Value, Tombstone: w.Tombstone})
	}
	p.mu.Lock()
	p.stats.WriteSlots += uint64(p.cfg.WriteBatchSize * len(p.shards))
	p.stats.RealWrites += uint64(len(out.Writes))
	p.mu.Unlock()

	// Per-shard commit pipeline (pad, plan, log, execute, flush, checkpoint)
	// runs concurrently across shards; each stage orders correctly within its
	// shard, and the cross-shard commit point comes after the barrier.
	errs := make([]error, len(p.shards))
	var wg sync.WaitGroup
	for i := range p.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := p.shards[i]
			ops := shardOps[i]
			for len(ops) < p.cfg.WriteBatchSize {
				ops = append(ops, oramexec.WriteOp{})
			}
			wplan, err := sh.exec.PlanWriteBatch(ops)
			if err != nil {
				errs[i] = err
				return
			}
			if sh.rlog != nil {
				if err := sh.rlog.AppendBatch(epoch, p.cfg.ReadBatches, wplan.Log()); err != nil {
					errs[i] = err
					return
				}
			}
			if _, err := sh.exec.Execute(wplan); err != nil {
				errs[i] = err
				return
			}
			// Epoch write-back: flush buffered buckets, then prepare the
			// epoch's durability (checkpoint before any commit record).
			if _, err := sh.exec.Flush(); err != nil {
				errs[i] = err
				return
			}
			if sh.rlog != nil {
				if _, err := sh.rlog.AppendCheckpoint(epoch, sh.exec.ORAM()); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Global commit point: all shards prepared; the coordinator's commit
	// record decides the epoch for everyone.
	if p.shards[0].rlog != nil {
		if err := p.appendCommitAll(epoch); err != nil {
			return err
		}
	}
	for _, sh := range p.shards {
		if err := sh.store.CommitEpoch(epoch); err != nil {
			return err
		}
	}

	// Notify clients; reset per-epoch state; open the next epoch.
	p.mu.Lock()
	p.stats.Epochs++
	p.stats.Committed += uint64(len(out.Committed))
	p.stats.Aborted += uint64(len(out.Aborted))
	for _, ts := range out.Committed {
		if ch, ok := p.waiters[ts]; ok {
			ch <- nil
			delete(p.waiters, ts)
		}
	}
	for _, ts := range out.Aborted {
		if ch, ok := p.waiters[ts]; ok {
			ch <- ErrAborted
			delete(p.waiters, ts)
		}
	}
	// Any waiter left belongs either to a transaction the CCU no longer
	// tracks (abort it now) or to one that began while this boundary was
	// already finalizing: that transaction lives in the next epoch's CCU
	// generation, so its waiter stays registered and the next boundary
	// decides it. Acking such a transaction as aborted here would lie —
	// its writes would still commit next epoch.
	for ts, ch := range p.waiters {
		if st := p.ccu.Status(ts); st == mvtso.StatusActive || st == mvtso.StatusFinished {
			continue
		}
		ch <- ErrAborted
		delete(p.waiters, ts)
	}
	for _, sh := range p.shards {
		sh.fetched = make(map[string]bool)
		sh.epochWrites = make(map[string]bool)
	}
	p.batchIdx = 0
	p.epoch++
	p.beginEpochAllLocked()
	p.mu.Unlock()
	return nil
}
