package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// newAsyncProxy builds a manual-mode single-shard proxy for deterministic
// batch driving.
func newAsyncProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	if cfg.Params.NumBlocks == 0 {
		cfg.Params = ringoram.Params{
			NumBlocks: 256, Z: 8, S: 12, A: 8,
			KeySize: 32, ValueSize: 64, Seed: 1,
		}
	}
	if cfg.Key == nil {
		cfg.Key = cryptoutil.KeyFromSeed([]byte("async-test"))
	}
	cfg.DisableDurability = true
	store := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestReadAsyncSharesOneBatch pins the tentpole property: a transaction's
// whole async read set is served by a single read batch.
func TestReadAsyncSharesOneBatch(t *testing.T) {
	p := newAsyncProxy(t, Config{ReadBatches: 4, ReadBatchSize: 16, WriteBatchSize: 16})

	// Seed some keys.
	seed := p.Begin()
	for i := 0; i < 8; i++ {
		if err := seed.Write(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ch := seed.CommitAsync()
	for i := 0; i < 4; i++ {
		if err := p.StepReadBatch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}

	// Register eight reads before any batch fires, then fire exactly one.
	tx := p.Begin()
	futures := make([]*Future, 8)
	for i := range futures {
		futures[i] = tx.ReadAsync(fmt.Sprintf("k%d", i))
	}
	if got := p.PendingFetches(); got != 8 {
		t.Fatalf("pending fetches = %d, want 8", got)
	}
	if err := p.StepReadBatch(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futures {
		v, found, err := f.Value()
		if err != nil || !found || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("future %d: %v %v %v", i, v, found, err)
		}
	}
	tx.Abort()
}

// TestReadAsyncCancelLeavesScheduleIntact cancels a waiting future and
// checks (a) the wait unblocks with an abort matching the context error, and
// (b) the already-queued slot still executes as a dummy without disturbing
// the proxy.
func TestReadAsyncCancelLeavesScheduleIntact(t *testing.T) {
	p := newAsyncProxy(t, Config{ReadBatches: 4, ReadBatchSize: 8, WriteBatchSize: 8})
	ctx, cancel := context.WithCancel(context.Background())
	tx := p.BeginCtx(ctx)
	f := tx.ReadAsync("pending-key")

	done := make(chan error, 1)
	go func() {
		_, _, err := f.Wait(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not unblock on cancellation")
	}

	// The slot is still queued; the schedule executes it as a dummy.
	if got := p.PendingFetches(); got != 1 {
		t.Fatalf("pending fetches after cancel = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		if err := p.StepReadBatch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EndEpoch(); err != nil {
		t.Fatal(err)
	}

	// The proxy is healthy: a fresh transaction commits.
	tx2 := p.Begin()
	if err := tx2.Write("after-cancel", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	ch := tx2.CommitAsync()
	for i := 0; i < 4; i++ {
		if err := p.StepReadBatch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
}

// TestCommitUnblocksOnContextCancel cancels a context while Commit waits on
// the epoch decision; Commit must return promptly with the context's error
// (outcome unknown), not wait out the epoch.
func TestCommitUnblocksOnContextCancel(t *testing.T) {
	p := newAsyncProxy(t, Config{ReadBatches: 2, ReadBatchSize: 8, WriteBatchSize: 8})
	ctx, cancel := context.WithCancel(context.Background())
	tx := p.BeginCtx(ctx)
	if err := tx.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tx.Commit() }()
	// Nothing drives the manual schedule: without cancellation this would
	// block until the epoch ends.
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("commit after cancel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit did not unblock on cancellation")
	}
}

// TestCheckRejectsCancelledContext: operations on a transaction whose
// context is already done abort immediately.
func TestCheckRejectsCancelledContext(t *testing.T) {
	p := newAsyncProxy(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tx := p.BeginCtx(ctx)
	if err := tx.Write("k", []byte("v")); !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("write on cancelled ctx: %v", err)
	}
	if _, _, err := tx.Read("k"); !errors.Is(err, ErrAborted) {
		t.Fatalf("read on cancelled ctx: %v", err)
	}
}
