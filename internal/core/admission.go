package core

import (
	"fmt"

	"obladi/internal/mvtso"
)

// This file implements the proxy's overload-control plane: bounded per-epoch
// batch-slot queues with a high-water admission gate, and fair per-session
// scheduling of the slots that remain.
//
// # Why shed before the schedule
//
// The batch schedule is fixed: an epoch serves exactly R read batches of
// bread slots per shard, whatever clients ask for. Offered load beyond that
// budget has nowhere to go — before this plane existed it piled up on an
// unbounded per-shard queue and waited out the epoch only to be aborted at
// the seal ("read batches exhausted"), so past saturation every excess
// request paid a full epoch of latency for a guaranteed failure and queue
// memory grew with offered load. The admission gate refuses a fetch the
// moment the epoch's remaining slot budget cannot serve it: the refusal is
// immediate (microseconds, not an epoch), retryable (ShedError wraps
// ErrAborted and ErrEpochFull), and carries a Retry-After-style hint (the
// epoch from which capacity exists again).
//
// Crucially the gate's decision depends only on proxy-internal state the
// adversary already cannot see — queue length and the schedule position —
// and a shed request never touches the schedule: no slot is consumed, no
// batch fires early, no dummy becomes real. Sheds happen strictly before
// scheduling, so the storage trace keeps the exact workload-independent
// shape it has at any other load. (Compare EagerBatches, which deliberately
// trades that property away; admission control does not.)
//
// # Fair slot scheduling
//
// The admitted queue is drained round-robin over *sessions* (transactions),
// not FIFO over operations: each read batch takes one key per session per
// pass. A single client pipelining thousands of reads therefore cannot
// starve thousands of one-read sessions behind it — they are each served on
// the first pass, and the pipelining session gets exactly the slots nobody
// else wanted. Arrival order still breaks ties, so the schedule stays
// deterministic for tests.

// ErrShed is returned when admission control refuses an operation because
// the current epoch's batch-slot budget is already spoken for. It wraps
// ErrAborted and ErrEpochFull (see ShedError), so every existing retry loop
// treats a shed as the retryable abort it is.
var ErrShed = fmt.Errorf("obladi: request shed by admission control (overload)")

// ShedError is the concrete shed error: a retryable abort carrying a
// Retry-After-style hint. RetryEpoch is the first epoch with fresh slot
// budget — the epoch after the one whose budget was exhausted — so a
// co-located retrier can wait for it, and a remote one can treat the hint as
// "back off roughly one epoch".
type ShedError struct {
	// RetryEpoch is the first epoch that has batch-slot budget again.
	RetryEpoch uint64
	// Shard identifies the saturated shard (diagnostics only).
	Shard int
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("%v: shard %d out of read-batch slots, retry at epoch %d", ErrShed, e.Shard, e.RetryEpoch)
}

// Unwrap makes a shed match ErrShed (so callers can apply shed-specific
// backoff), ErrEpochFull (it *is* exhausted epoch capacity, discovered
// early), and ErrAborted (every retry loop in the tree keys off it).
func (e *ShedError) Unwrap() []error {
	return []error{ErrShed, ErrEpochFull, ErrAborted}
}

// sessionFetchQueue holds one session's admitted-but-unscheduled fetch keys,
// in the order the session issued them.
type sessionFetchQueue struct {
	ts   mvtso.Timestamp
	keys []string
}

// admitFetchLocked runs the admission gate for one new fetch key on sh and,
// if admitted, enqueues it under the session's queue. The caller holds
// p.mu. It returns nil on admission and a *ShedError when the epoch's
// remaining read-slot budget is already fully subscribed.
//
// The gate's invariant: the total of admitted-but-unscheduled keys on a
// shard never exceeds the slots its remaining read batches can serve, so
// every admitted fetch is guaranteed a slot this epoch — admission implies
// service, and the only reads that die at the seal are ablation tokens and
// gate-disabled runs.
func (p *Proxy) admitFetchLocked(sh *shard, ts mvtso.Timestamp, key string) error {
	if !p.cfg.DisableAdmission {
		remaining := (p.cfg.ReadBatches - p.batchIdx) * p.cfg.ReadBatchSize
		if sh.queuedKeys >= remaining {
			p.shedReads.Add(1)
			return &ShedError{RetryEpoch: p.epoch + 1, Shard: sh.id}
		}
	}
	sq := sh.sessQ[ts]
	if sq == nil {
		sq = &sessionFetchQueue{ts: ts}
		sh.sessQ[ts] = sq
		sh.ring = append(sh.ring, sq)
		p.admittedSessions.Add(1)
	}
	sq.keys = append(sq.keys, key)
	sh.pending[key] = true
	sh.queuedKeys++
	return nil
}

// takeBatchLocked drains up to n keys from sh's session queues for the next
// read batch, round-robin over sessions: one key per live session per pass,
// starting where the previous batch's cursor stopped. The caller holds p.mu.
func (sh *shard) takeBatchLocked(n int) []string {
	if sh.queuedKeys == 0 || n <= 0 {
		return nil
	}
	if n > sh.queuedKeys {
		n = sh.queuedKeys
	}
	keys := make([]string, 0, n)
	i := sh.rr
	for len(keys) < n && len(sh.ring) > 0 {
		if i >= len(sh.ring) {
			i = 0
		}
		sq := sh.ring[i]
		k := sq.keys[0]
		sq.keys = sq.keys[1:]
		keys = append(keys, k)
		delete(sh.pending, k)
		sh.queuedKeys--
		if len(sq.keys) == 0 {
			// The session is drained: drop it from the ring. The next
			// session slides into position i, so the cursor stays put.
			sh.ring = append(sh.ring[:i], sh.ring[i+1:]...)
			delete(sh.sessQ, sq.ts)
		} else {
			i++
		}
	}
	if len(sh.ring) == 0 {
		sh.rr = 0
	} else {
		sh.rr = i % len(sh.ring)
	}
	return keys
}

// resetFetchQueuesLocked clears a shard's admitted fetch state at the epoch
// boundary (or on failure). Waiters are the caller's problem: they live in
// sh.queued, which outlives scheduling state.
func (sh *shard) resetFetchQueuesLocked() {
	sh.sessQ = make(map[mvtso.Timestamp]*sessionFetchQueue)
	sh.ring = sh.ring[:0]
	sh.rr = 0
	sh.pending = make(map[string]bool)
	sh.queuedKeys = 0
}
