package core

import (
	"fmt"
	"testing"

	"obladi/internal/storage"
)

// openLogHeapGroup opens (or reopens) a logheap-mode disk group sized for the
// test ORAM geometry.
func openLogHeapGroup(t *testing.T, dir string, shards int, cfg Config) *storage.DiskGroup {
	t.Helper()
	g, err := storage.OpenDiskGroupOpts(dir, shards, cfg.Params.Geometry().NumBuckets, storage.DiskOptions{LogHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLogHeapProxyUnifiedCommit drives the proxy end to end over a logheap
// DiskGroup: the stores must be detected as sharing one commit stream (the
// single-barrier boundary path), transactions must commit and read back, and
// a graceful restart must recover every committed epoch from the unified log.
func TestLogHeapProxyUnifiedCommit(t *testing.T) {
	cfg := testConfig(81)
	dir := t.TempDir()
	g := openLogHeapGroup(t, dir, 2, cfg)
	p, err := NewSharded(g.Backends(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.unified == nil {
		t.Fatal("logheap group shards not detected as a unified commit stream")
	}
	kv := map[string]string{}
	for s := 0; s < 2; s++ {
		for i, k := range keysForShard(s, 2, 3) {
			kv[k] = fmt.Sprintf("v%d-%d", s, i)
		}
	}
	commitKV(t, p, kv)
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	got := readAll(t, p, keys...)
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("%s = %q, want %q", k, got[k], v)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := openLogHeapGroup(t, dir, 2, cfg)
	defer g2.Close()
	p2, err := NewSharded(g2.Backends(), cfg)
	if err != nil {
		t.Fatalf("reopening proxy over logheap group: %v", err)
	}
	defer p2.Close()
	got = readAll(t, p2, keys...)
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("after restart %s = %q, want %q", k, got[k], v)
		}
	}
}

// TestLogHeapProxyCrashDropsInFlight kills the proxy (storage survives, proxy
// metadata does not) with an epoch in flight: recovery over the unified log
// must preserve the committed prefix and discard the uncommitted epoch's heap
// versions via index rollback.
func TestLogHeapProxyCrashDropsInFlight(t *testing.T) {
	cfg := testConfig(82)
	dir := t.TempDir()
	g := openLogHeapGroup(t, dir, 2, cfg)
	p1, err := NewSharded(g.Backends(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stable := map[string]string{}
	for s := 0; s < 2; s++ {
		stable[keysForShard(s, 2, 1)[0]] = "committed"
	}
	commitKV(t, p1, stable)

	// In-flight epoch: reads logged and executed, a write buffered, then the
	// proxy disappears without sealing the epoch.
	doomed := keysForShard(0, 2, 2)[1]
	tx := p1.Begin()
	go func() {
		var keys []string
		for k := range stable {
			keys = append(keys, k)
		}
		tx.ReadMany(keys)
		tx.Write(doomed, []byte("doomed"))
		tx.Commit()
	}()
	waitQueued(t, p1, len(stable))
	must(t, p1.StepReadBatch())
	// Crash the proxy: no EndEpoch, no proxy Close. The group closes so the
	// reopen sees exactly what a restarted process would.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := openLogHeapGroup(t, dir, 2, cfg)
	defer g2.Close()
	p2, err := NewSharded(g2.Backends(), cfg)
	if err != nil {
		t.Fatalf("recovery over logheap group: %v", err)
	}
	defer p2.Close()
	if p2.ReplayedReads() == 0 {
		t.Fatal("recovery replayed nothing despite logged batches")
	}
	var keys []string
	for k := range stable {
		keys = append(keys, k)
	}
	got := readAll(t, p2, append(keys, doomed)...)
	for k := range stable {
		if got[k] != "committed" {
			t.Fatalf("%s = %q after recovery", k, got[k])
		}
	}
	if _, leaked := got[doomed]; leaked {
		t.Fatal("in-flight write survived the crash")
	}
}
