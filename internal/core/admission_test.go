package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"obladi/internal/mvtso"
	"obladi/internal/storage"
)

// TestAdmissionShedsBeyondBudget pins the gate: an epoch with R×bread read
// slots admits exactly that many distinct keys and sheds the next one
// immediately — as a retryable abort carrying the retry-epoch hint — instead
// of queueing it to die at the seal.
func TestAdmissionShedsBeyondBudget(t *testing.T) {
	cfg := testConfig(11)
	cfg.ReadBatches = 2
	cfg.ReadBatchSize = 2
	p, _, _ := testProxy(t, cfg)

	budget := cfg.ReadBatches * cfg.ReadBatchSize
	tx := p.Begin()
	defer tx.Abort()
	var futures []*Future
	for i := 0; i < budget; i++ {
		futures = append(futures, tx.ReadAsync(fmt.Sprintf("k%d", i)))
	}
	// The budget is spoken for: the next distinct key must shed, now.
	over := p.Begin()
	defer over.Abort()
	start := time.Now()
	_, _, err := over.ReadAsync("overflow").Wait(context.Background())
	if err == nil {
		t.Fatal("over-budget read admitted")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("shed took %v: must be immediate, not wait out the epoch", time.Since(start))
	}
	if !errors.Is(err, ErrShed) || !errors.Is(err, ErrAborted) || !errors.Is(err, ErrEpochFull) {
		t.Fatalf("shed error %v must match ErrShed, ErrAborted and ErrEpochFull", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("no *ShedError in %v", err)
	}
	if want := p.Epoch() + 1; shed.RetryEpoch != want {
		t.Fatalf("RetryEpoch = %d, want %d", shed.RetryEpoch, want)
	}

	// A key another session already queued costs no new slot: joining its
	// waiters must not shed.
	joiner := p.Begin()
	defer joiner.Abort()
	jf := joiner.ReadAsync("k0")

	// Admission implies service: every admitted read resolves as its batch
	// fires — none aborts with "read batches exhausted".
	done := make(chan error, budget+1)
	for _, f := range append(futures, jf) {
		go func(f *Future) {
			_, _, err := f.Wait(context.Background())
			done <- err
		}(f)
	}
	waitQueued(t, p, budget)
	for i := 0; i < cfg.ReadBatches; i++ {
		if err := p.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < budget+1; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted read aborted: %v", err)
		}
	}

	st := p.Stats()
	if st.ShedReads != 1 {
		t.Fatalf("ShedReads = %d, want 1", st.ShedReads)
	}
	if st.AdmittedSessions != 1 {
		t.Fatalf("AdmittedSessions = %d, want 1 (only tx queued new slots)", st.AdmittedSessions)
	}
}

// TestAdmissionBudgetShrinksWithBatches pins the high-water mark to the
// *remaining* schedule: after a batch fires, the epoch has fewer slots left,
// so the gate tightens accordingly.
func TestAdmissionBudgetShrinksWithBatches(t *testing.T) {
	cfg := testConfig(12)
	cfg.ReadBatches = 2
	cfg.ReadBatchSize = 2
	p, _, _ := testProxy(t, cfg)

	if err := p.Advance(); err != nil { // burn batch 1 empty
		t.Fatal(err)
	}
	tx := p.Begin()
	defer tx.Abort()
	tx.ReadAsync("a")
	tx.ReadAsync("b")
	_, _, err := tx.ReadAsync("c").Wait(context.Background())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("third key after burning one of two batches: got %v, want shed", err)
	}
}

// TestFairSlotSchedulingRoundRobin pins the drain order: one key per session
// per pass, so a pipelining session cannot monopolize a batch ahead of
// single-read sessions that arrived after it.
func TestFairSlotSchedulingRoundRobin(t *testing.T) {
	cfg := testConfig(13)
	cfg.ReadBatches = 2
	cfg.ReadBatchSize = 4
	p, _, _ := testProxy(t, cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	sh := p.shards[0]

	// Session 1 pipelines five keys; sessions 2..4 want one each.
	for i := 0; i < 5; i++ {
		if err := p.admitFetchLocked(sh, mvtso.Timestamp(1), fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 2; s <= 4; s++ {
		if err := p.admitFetchLocked(sh, mvtso.Timestamp(s), fmt.Sprintf("s%d", s)); err != nil {
			t.Fatal(err)
		}
	}

	got := sh.takeBatchLocked(4)
	want := []string{"p0", "s2", "s3", "s4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch 1 = %v, want %v (one key per session per pass)", got, want)
	}
	// Only the pipeliner remains; the next batch is all theirs, in order.
	got = sh.takeBatchLocked(4)
	want = []string{"p1", "p2", "p3", "p4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch 2 = %v, want %v", got, want)
	}
	if sh.queuedKeys != 0 || len(sh.ring) != 0 || len(sh.sessQ) != 0 || len(sh.pending) != 0 {
		t.Fatalf("drain left state: queuedKeys=%d ring=%d sessQ=%d pending=%d",
			sh.queuedKeys, len(sh.ring), len(sh.sessQ), len(sh.pending))
	}
}

// TestFairSchedulingCursorPersists pins that the round-robin cursor carries
// across batches: a session served last in batch n is not served first again
// in batch n+1 while others wait.
func TestFairSchedulingCursorPersists(t *testing.T) {
	cfg := testConfig(14)
	cfg.ReadBatches = 4
	cfg.ReadBatchSize = 2
	p, _, _ := testProxy(t, cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	sh := p.shards[0]

	// Three sessions with two keys each; batches of two.
	for s := 1; s <= 3; s++ {
		for i := 0; i < 2; i++ {
			if err := p.admitFetchLocked(sh, mvtso.Timestamp(s), fmt.Sprintf("s%d-%d", s, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var order []string
	for len(order) < 6 {
		order = append(order, sh.takeBatchLocked(2)...)
	}
	want := []string{"s1-0", "s2-0", "s3-0", "s1-1", "s2-1", "s3-1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("drain order %v, want %v (cursor must persist across batches)", order, want)
	}
}

// TestDisableAdmissionRestoresOldBehavior pins the ablation knob: with the
// gate off, over-budget reads queue unboundedly and die at the seal with
// plain ErrEpochFull, as before this plane existed.
func TestDisableAdmissionRestoresOldBehavior(t *testing.T) {
	cfg := testConfig(15)
	cfg.ReadBatches = 1
	cfg.ReadBatchSize = 1
	cfg.DisableAdmission = true
	p, _, _ := testProxy(t, cfg)

	tx := p.Begin()
	defer tx.Abort()
	tx.ReadAsync("a")
	f := tx.ReadAsync("b") // over budget: queues anyway
	waitQueued(t, p, 2)
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Wait(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("over-budget read resolved early with gate off: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := p.Advance(); err != nil { // the only read batch: serves "a"
		t.Fatal(err)
	}
	if err := p.Advance(); err != nil { // boundary: aborts "b"
		t.Fatal(err)
	}
	err := <-done
	if !errors.Is(err, ErrEpochFull) {
		t.Fatalf("seal abort = %v, want ErrEpochFull", err)
	}
	if errors.Is(err, ErrShed) {
		t.Fatalf("gate off must not shed, got %v", err)
	}
	if st := p.Stats(); st.ShedReads != 0 {
		t.Fatalf("ShedReads = %d with gate off", st.ShedReads)
	}
}

// TestAdmissionStatsCounters exercises the shed/queue-depth/admitted-session
// counters concurrently; run under -race this doubles as the atomic-access
// check the Stats contract requires.
func TestAdmissionStatsCounters(t *testing.T) {
	cfg := testConfig(16)
	cfg.BatchInterval = 300 * time.Microsecond
	cfg.ReadBatches = 2
	cfg.ReadBatchSize = 2
	cfg.DisableDurability = true
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stop := make(chan struct{})
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Stats()
				_ = p.PendingFetches()
			}
		}
	}()
	workers := 8
	workDone := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { workDone <- struct{}{} }()
			deadline := time.Now().Add(100 * time.Millisecond)
			for i := 0; time.Now().Before(deadline); i++ {
				tx := p.Begin()
				tx.Read(fmt.Sprintf("w%d-%d", w, i%8))
				tx.Abort()
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-workDone
	}
	close(stop)
	<-statsDone
	st := p.Stats()
	if st.ShedReads == 0 {
		t.Fatal("8 workers on a 4-slot epoch never shed — gate not engaged")
	}
	if st.AdmittedSessions == 0 {
		t.Fatal("no sessions admitted")
	}
	if st.ReadQueueDepth < 0 {
		t.Fatalf("ReadQueueDepth = %d", st.ReadQueueDepth)
	}
}
