package core

import (
	"sync"
	"sync/atomic"

	"obladi/internal/storage"
	"obladi/internal/wal"
)

// WALConfigFor returns the recovery-unit configuration NewSharded gives
// shard's log under cfg. The replication standby needs an identical config
// over its warm log copies: promotion must open records and verify shard
// pinning exactly as the primary sealed them.
func WALConfigFor(cfg Config, shard, shards int) (wal.Config, error) {
	if err := cfg.setDefaults(); err != nil {
		return wal.Config{}, err
	}
	return wal.Config{
		Key:                 cfg.Key,
		Shard:               shard,
		Shards:              shards,
		PadPosEntries:       cfg.ReadBatches*cfg.ReadBatchSize + cfg.WriteBatchSize,
		PadStashEntries:     cfg.Params.StashLimit,
		FullCheckpointEvery: cfg.FullCheckpointEvery,
	}, nil
}

// Replicator is the proxy's hot-standby replication hook (implemented by
// internal/replica.Sender; core deliberately knows nothing about the wire).
// The recovery log IS the replication stream: every record the proxy appends
// — batch schedules, checkpoints, commit records — is mirrored to the
// replicator in exactly store order, so a standby replaying the stream with
// wal.Recover reconstructs the same state cold recovery would read back from
// storage.
//
// Structural typing keeps the dependency one-way: replica.Sender implements
// these methods without importing core, and core never imports replica.
type Replicator interface {
	// Prime seeds the replicator with shard's full existing log (records
	// holding seqs firstSeq..firstSeq+len(recs)-1). Called once per shard
	// after bootstrap/recovery and before any traffic, so a standby that
	// attaches later can be sent the complete history a fresh wal.Recover
	// needs (the full checkpoint is always inside it).
	Prime(shard int, recs [][]byte, firstSeq uint64) error
	// Mirror reports one appended record. Called with the shard's append
	// lock held: invocation order IS store order per shard. It must not
	// block on the network (buffer and return).
	Mirror(shard int, seq uint64, rec []byte)
	// Barrier is called on the boundary commit path after the epoch is
	// locally durable and before its clients are acknowledged. In
	// replica-acked mode it waits (bounded) until the attached standby has
	// received every record mirrored so far, degrading to local-durable
	// with loud logging when no standby keeps up — it never fails the
	// boundary, because the epoch it gates is already durably committed
	// and an error here would be reported to clients as an abort, which
	// would be a lie.
	Barrier() error
}

// replTee wraps one shard's LogStore so every successful append is mirrored
// to the replicator. The mutex serializes append+mirror pairs: the pipelined
// boundary's committer (checkpoint/commit records of epoch e) races the next
// epoch's batch appends on the same shard log, and the standby must see them
// in the order the store did. The tee starts disarmed — bootstrap's appends
// are covered by Prime's full-history scan — and arms before traffic starts.
type replTee struct {
	storage.LogStore
	shard int
	repl  Replicator
	mu    sync.Mutex
	armed atomic.Bool
}

func (t *replTee) arm() { t.armed.Store(true) }

func (t *replTee) Append(rec []byte) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq, err := t.LogStore.Append(rec)
	if err == nil && t.armed.Load() {
		t.repl.Mirror(t.shard, seq, rec)
	}
	return seq, err
}

// replTeeBatcher is the tee for stores with the LogBatcher capability. A
// plain replTee would hide AppendNoSync from the wal's type probe and
// silently revert every deferred append to an inline fsync; this variant
// forwards the capability, mirroring at append time (the record reaches the
// standby no later than it becomes locally durable — replica-acked mode is
// an additional guarantee on top of the local barrier, not a replacement).
type replTeeBatcher struct {
	replTee
	lb storage.LogBatcher
}

func (t *replTeeBatcher) AppendNoSync(rec []byte) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq, err := t.lb.AppendNoSync(rec)
	if err == nil && t.armed.Load() {
		t.repl.Mirror(t.shard, seq, rec)
	}
	return seq, err
}

func (t *replTeeBatcher) SyncLog() error { return t.lb.SyncLog() }

// newReplTee builds the capability-preserving tee for one shard's store.
func newReplTee(st storage.LogStore, shard int, repl Replicator) (storage.LogStore, *replTee) {
	if lb, ok := st.(storage.LogBatcher); ok {
		t := &replTeeBatcher{replTee: replTee{LogStore: st, shard: shard, repl: repl}, lb: lb}
		return t, &t.replTee
	}
	t := &replTee{LogStore: st, shard: shard, repl: repl}
	return t, t
}

// primeReplicator hands the replicator each shard's complete log history and
// arms the tees. Runs after bootstrap/recovery and before NewSharded returns,
// so no append races the scan: everything before this point is in the scan,
// everything after goes through an armed tee. Seq alignment (standby seq i ==
// store seq i) holds from here on because neither side truncates.
func (p *Proxy) primeReplicator() error {
	if p.cfg.Replicator == nil || p.cfg.DisableDurability {
		return nil
	}
	for _, sh := range p.shards {
		recs, err := sh.store.Scan(0)
		if err != nil {
			return err
		}
		last, err := sh.store.LastSeq()
		if err != nil {
			return err
		}
		first := last - uint64(len(recs)) + 1
		if err := p.cfg.Replicator.Prime(sh.id, recs, first); err != nil {
			return err
		}
	}
	for _, t := range p.tees {
		t.arm()
	}
	return nil
}
