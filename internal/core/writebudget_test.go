package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"obladi/internal/storage"
)

// TestWriteBudgetBoundaryRaceNoFailStop is the regression test for a race
// the 10k-session scale harness exposed: write-slot reservations lived in a
// proxy-side per-epoch map that sealEpoch reset a beat *after*
// ccu.FinalizeEpoch, so a transaction beginning in that window reserved
// against the dying epoch, lost the reservation in the reset, and its writes
// landed in the next epoch's finalize with no slot — tripping the seal's
// "write set exceeds write batch" guard and fail-stopping the whole proxy.
//
// With the budget moved into the CCU (charged and reset under the CCU lock,
// atomically with the generation), the guard is unreachable. The test
// hammers write-commit traffic against a tiny write batch on a fast epoch
// cadence; before the fix it fail-stops within a second or two, after it
// every error is an ordinary retryable abort and the proxy stays up.
func TestWriteBudgetBoundaryRaceNoFailStop(t *testing.T) {
	cfg := testConfig(23)
	cfg.BatchInterval = 300 * time.Microsecond
	cfg.ReadBatches = 1
	cfg.ReadBatchSize = 4
	cfg.WriteBatchSize = 2 // tiny: every epoch's budget is contended
	cfg.DisableDurability = true
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const workers = 8
	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				tx := p.Begin()
				err := tx.Write(fmt.Sprintf("w%d-%d", w, i%8), []byte("v"))
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Abort()
				}
				if err != nil && !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
					errCh <- fmt.Errorf("worker %d txn %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("proxy left the retryable-abort space under boundary churn (old race fail-stopped here): %v", err)
	default:
	}
	if _, _, err := p.Begin().Read("alive"); errors.Is(err, ErrClosed) {
		t.Fatal("proxy fail-stopped during the run")
	}
}

// TestWriteOverBudgetAbortsWholeTxn pins the client-visible contract of a
// budget refusal: ErrEpochFull, and the whole transaction aborts (a txn
// whose writes cannot all land this epoch must not half-commit) — the same
// contract the seed's proxy-side reserveWriteSlot gave.
func TestWriteOverBudgetAbortsWholeTxn(t *testing.T) {
	cfg := testConfig(24)
	cfg.WriteBatchSize = 2
	p, _, _ := testProxy(t, cfg)

	tx := p.Begin()
	if err := tx.Write("k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("k2", []byte("v")); err != nil {
		t.Fatal(err)
	}
	err := tx.Write("k3", []byte("v"))
	if !errors.Is(err, ErrEpochFull) {
		t.Fatalf("over-budget write: %v, want ErrEpochFull", err)
	}
	// The refusal aborted the whole transaction: nothing half-commits.
	if err := p.Advance(); err != nil {
		t.Fatal(err)
	}
}
