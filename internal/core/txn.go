package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"obladi/internal/mvtso"
)

// Txn is a transaction handle bound to the epoch it started in. Operations
// (Read, Write, Commit, …) must not be called concurrently; resolving
// ReadAsync Futures from other goroutines is allowed (see async.go).
type Txn struct {
	p     *Proxy
	inner *mvtso.Txn
	epoch uint64
	ctx   context.Context
	// done flips when the client settles the transaction (Commit/Abort).
	// Atomic because Future waiters may consult the handle while the owning
	// goroutine settles it.
	done atomic.Bool
	// paidSlots tracks keys this txn already spent a batch slot on, for
	// the DisableReadCache ablation. Guarded by p.mu.
	paidSlots map[string]bool
}

// Begin starts a transaction in the current epoch.
func (p *Proxy) Begin() *Txn {
	return p.BeginCtx(context.Background())
}

// TS returns the transaction's serialization timestamp.
func (t *Txn) TS() uint64 { return uint64(t.inner.TS()) }

// Read returns the value of key as visible to this transaction. It blocks
// while the key's base version is fetched from the ORAM (at most until the
// epoch's read batches are exhausted, or the transaction's context is done).
func (t *Txn) Read(key string) ([]byte, bool, error) {
	return t.ReadAsync(key).Wait(t.ctx)
}

// ReadMany reads several independent keys, requesting all missing base
// versions in the same read batch instead of one batch per key. Results are
// parallel to keys. Transactions with many independent reads should prefer
// ReadMany (or ReadAsync): a sequential Read chain consumes one read batch
// per key (§6.4: dependent reads cost batches).
func (t *Txn) ReadMany(keys []string) ([]ReadResult, error) {
	futures := make([]*Future, len(keys))
	for i, k := range keys {
		futures[i] = t.ReadAsync(k)
	}
	out := make([]ReadResult, len(keys))
	for i, f := range futures {
		v, found, err := f.Wait(t.ctx)
		if err != nil {
			return nil, err
		}
		out[i] = ReadResult{Key: keys[i], Value: v, Found: found}
	}
	return out, nil
}

// ReadResult is one key's outcome from ReadMany.
type ReadResult struct {
	Key   string
	Value []byte
	Found bool
}

// Write stores value under key within the transaction.
func (t *Txn) Write(key string, value []byte) error {
	if err := t.check(key); err != nil {
		return err
	}
	if len(value) > t.p.cfg.Params.ValueSize {
		return fmt.Errorf("%w: %d > %d", ErrValueTooLarge, len(value), t.p.cfg.Params.ValueSize)
	}
	if err := t.inner.Write(key, value); err != nil {
		return t.mapWriteErr(err)
	}
	return nil
}

// Delete removes key within the transaction.
func (t *Txn) Delete(key string) error {
	if err := t.check(key); err != nil {
		return err
	}
	if err := t.inner.Delete(key); err != nil {
		return t.mapWriteErr(err)
	}
	return nil
}

// mapWriteErr translates a CCU write refusal into the proxy's error space. A
// write-budget refusal aborts the whole transaction (its writes cannot all
// land this epoch; partial commit is not an option) as a retryable
// epoch-capacity abort.
func (t *Txn) mapWriteErr(err error) error {
	if errors.Is(err, mvtso.ErrWriteBatchFull) {
		t.inner.Abort()
		return fmt.Errorf("%w: %v", ErrEpochFull, err)
	}
	if errors.Is(err, mvtso.ErrAborted) {
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	return err
}

// Commit requests commit and blocks until the epoch decides the
// transaction's fate. nil means durably committed. If the transaction's
// context (BeginCtx) ends while the decision is pending, Commit stops
// waiting and returns the context's error — the outcome is then unknown to
// the caller: the commit request was already registered, and the boundary
// may still commit it.
func (t *Txn) Commit() error {
	ch := t.CommitAsync()
	select {
	case err := <-ch:
		return err
	case <-t.ctx.Done():
		// Best effort: aborts the transaction if the boundary has not
		// decided it yet; a no-op if it has.
		t.inner.Abort()
		return fmt.Errorf("obladi: %w while awaiting epoch decision (outcome unknown)", context.Cause(t.ctx))
	}
}

// CommitAsync requests commit and returns a channel that delivers the
// epoch's decision. Once CommitAsync returns, the commit request is
// registered: the transaction will commit at the epoch boundary unless a
// dependency aborts.
func (t *Txn) CommitAsync() <-chan error {
	ch := make(chan error, 1)
	if !t.done.CompareAndSwap(false, true) {
		ch <- ErrAborted
		return ch
	}
	p := t.p
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.inner.Abort()
		ch <- ErrClosed
		return ch
	}
	if p.epoch != t.epoch {
		// The transaction's epoch already ended: it was aborted there.
		p.mu.Unlock()
		t.inner.Abort()
		ch <- fmt.Errorf("%w: epoch ended before commit", ErrAborted)
		return ch
	}
	p.waiters[t.inner.TS()] = ch
	p.mu.Unlock()
	if err := t.inner.Commit(); err != nil {
		// Only deliver if the waiter is still ours: an epoch boundary
		// sealing in this window may have already aborted the transaction
		// and sent its fate (which is why inner.Commit errored) — a second
		// send would jam the one-slot channel and block this caller.
		p.mu.Lock()
		_, registered := p.waiters[t.inner.TS()]
		delete(p.waiters, t.inner.TS())
		p.mu.Unlock()
		if registered {
			if errors.Is(err, mvtso.ErrAborted) {
				err = fmt.Errorf("%w: %v", ErrAborted, err)
			}
			ch <- err
		}
	}
	return ch
}

// Abort voluntarily aborts the transaction.
func (t *Txn) Abort() {
	if !t.done.CompareAndSwap(false, true) {
		return
	}
	t.inner.Abort()
}

// check validates key, context, and epoch membership for an operation.
func (t *Txn) check(key string) error {
	if t.done.Load() {
		return ErrAborted
	}
	if err := context.Cause(t.ctx); err != nil {
		t.inner.Abort()
		return fmt.Errorf("%w: %w", ErrAborted, err)
	}
	if key == "" {
		return errors.New("obladi: empty key")
	}
	if key[0] == 0 {
		return errors.New("obladi: keys must not start with a NUL byte")
	}
	if len(key) > t.p.cfg.Params.KeySize {
		return fmt.Errorf("obladi: key of %d bytes exceeds KeySize %d", len(key), t.p.cfg.Params.KeySize)
	}
	t.p.mu.Lock()
	live := t.p.epoch == t.epoch && !t.p.closed
	closed := t.p.closed
	t.p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !live {
		t.inner.Abort()
		return fmt.Errorf("%w: transaction spans epochs", ErrAborted)
	}
	return nil
}

// queueFetch enqueues key on its shard's next read batch (under the
// admission gate, filed under the requesting session ts for fair
// scheduling) and returns a channel delivering the fetch outcome, or nil if
// the key is already resident (no fetch needed) or an immediate error
// channel for a dead epoch or a shed.
func (p *Proxy) queueFetch(epoch uint64, ts mvtso.Timestamp, key string) <-chan error {
	p.mu.Lock()
	immediate := func(err error) <-chan error {
		p.mu.Unlock()
		ch := make(chan error, 1)
		ch <- err
		return ch
	}
	if p.closed {
		return immediate(ErrClosed)
	}
	if p.epoch != epoch {
		return immediate(fmt.Errorf("%w: epoch ended during read", ErrAborted))
	}
	sh := p.shards[shardOf(key, len(p.shards))]
	if sh.fetched[key] {
		p.mu.Unlock()
		return nil
	}
	if !sh.pending[key] {
		// The key needs a new batch slot — ask the admission gate.
		if err := p.admitFetchLocked(sh, ts, key); err != nil {
			return immediate(err)
		}
	}
	// Already scheduled by another session: just join its waiters — no new
	// slot is consumed, so no gate check.
	w := &fetchWaiter{key: key, done: make(chan error, 1)}
	sh.queued[key] = append(sh.queued[key], w)
	full := sh.queuedKeys >= p.cfg.ReadBatchSize
	p.mu.Unlock()
	if full && p.cfg.EagerBatches {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return w.done
}

// payCacheSlot consumes one read-batch slot for a key whose base version is
// already resident, by enqueueing a unique padding token on the key's shard.
// It returns a channel delivering the slot's batch outcome, or nil when no
// payment is due: the key has not been fetched this epoch (the real fetch
// pays) or this transaction already paid for it. The caller waits — with its
// context, so cancellation is not blocked on the batch.
func (t *Txn) payCacheSlot(key string) <-chan error {
	p := t.p
	p.mu.Lock()
	sh := p.shards[shardOf(key, len(p.shards))]
	if !sh.fetched[key] || t.paidSlots[key] {
		p.mu.Unlock()
		return nil
	}
	if t.paidSlots == nil {
		t.paidSlots = make(map[string]bool)
	}
	t.paidSlots[key] = true
	p.ablateSeq++
	token := fmt.Sprintf("\x00rc-%d", p.ablateSeq)
	if err := p.admitFetchLocked(sh, t.inner.TS(), token); err != nil {
		delete(t.paidSlots, key)
		p.mu.Unlock()
		ch := make(chan error, 1)
		ch <- err
		return ch
	}
	w := &fetchWaiter{key: token, done: make(chan error, 1)}
	sh.queued[token] = append(sh.queued[token], w)
	p.mu.Unlock()
	return w.done
}
