package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"

	"obladi/internal/oramexec"
	"obladi/internal/storage"
	"obladi/internal/wal"
)

// shardedBackends builds n independent checked in-memory backends for a
// sharded proxy.
func shardedBackends(cfg Config, n int) ([]storage.Backend, []*storage.InvariantChecker) {
	stores := make([]storage.Backend, n)
	checkers := make([]*storage.InvariantChecker, n)
	for i := range stores {
		checkers[i] = storage.NewInvariantChecker(storage.NewMemBackend(cfg.Params.Geometry().NumBuckets))
		stores[i] = checkers[i]
	}
	return stores, checkers
}

func checkAll(t *testing.T, checkers []*storage.InvariantChecker) {
	t.Helper()
	for i, c := range checkers {
		if v := c.Violation(); v != nil {
			t.Fatalf("shard %d: %v", i, v)
		}
	}
}

// keysForShard returns count distinct keys that hash to the given shard.
func keysForShard(shard, shards, count int) []string {
	var out []string
	for i := 0; len(out) < count; i++ {
		k := fmt.Sprintf("sk-%d-%d", shard, i)
		if shardOf(k, shards) == shard {
			out = append(out, k)
		}
	}
	return out
}

func TestShardOfStableAndBounded(t *testing.T) {
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := shardOf(k, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("shardOf(%q, 4) = %d", k, s)
		}
		if s != shardOf(k, 4) {
			t.Fatalf("shardOf not deterministic for %q", k)
		}
		seen[s]++
	}
	// FNV over 4K keys must spread across all shards reasonably evenly.
	for s := 0; s < 4; s++ {
		if seen[s] < 512 {
			t.Fatalf("shard %d got only %d of 4096 keys: %v", s, seen[s], seen)
		}
	}
	if shardOf("anything", 1) != 0 {
		t.Fatal("single shard must map everything to 0")
	}
}

func TestShardedCommitAndReadBack(t *testing.T) {
	cfg := testConfig(51)
	cfg.ReadBatchSize = 16
	cfg.WriteBatchSize = 32
	stores, checkers := shardedBackends(cfg, 4)
	p, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d", p.Shards())
	}
	// One cross-shard transaction writing keys that land on every shard.
	kv := map[string]string{}
	for s := 0; s < 4; s++ {
		for i, k := range keysForShard(s, 4, 3) {
			kv[k] = fmt.Sprintf("v%d-%d", s, i)
		}
	}
	commitKV(t, p, kv)
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	got := readAll(t, p, keys...)
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("%s = %q, want %q", k, got[k], v)
		}
	}
	st := p.Stats()
	if st.Shards != 4 {
		t.Fatalf("stats shards = %d", st.Shards)
	}
	// Each read batch consumes bread slots on EVERY shard.
	if st.ReadBatchSlots%uint64(4*cfg.ReadBatchSize) != 0 {
		t.Fatalf("read slots %d not a multiple of shards*bread", st.ReadBatchSlots)
	}
	checkAll(t, checkers)
}

// TestShardedCrossShardAbortAtomic is the epoch-capacity atomicity check: a
// transaction that overflows ONE shard's write quota must abort as a whole —
// its writes on other shards must not commit.
func TestShardedCrossShardAbortAtomic(t *testing.T) {
	cfg := testConfig(52)
	cfg.WriteBatchSize = 2
	stores, checkers := shardedBackends(cfg, 4)
	p, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	full := keysForShard(1, 4, 2)     // fills shard 1's quota of 2
	other := keysForShard(2, 4, 1)[0] // lands on shard 2
	straw := keysForShard(1, 4, 3)[2] // third distinct shard-1 key

	txA := p.Begin()
	for _, k := range full {
		must(t, txA.Write(k, []byte("a")))
	}
	txB := p.Begin()
	must(t, txB.Write(other, []byte("b")))
	if err := txB.Write(straw, []byte("b")); !errors.Is(err, ErrEpochFull) {
		t.Fatalf("write into full shard: %v", err)
	}
	// txB aborted atomically; txA's writes are unaffected and commit.
	chA := txA.CommitAsync()
	chB := txB.CommitAsync()
	must(t, p.EndEpoch())
	if err := <-chA; err != nil {
		t.Fatalf("txA: %v", err)
	}
	if err := <-chB; !errors.Is(err, ErrAborted) {
		t.Fatalf("txB commit after capacity abort: %v", err)
	}
	got := readAll(t, p, full[0], full[1], other, straw)
	for _, k := range full {
		if got[k] != "a" {
			t.Fatalf("%s = %q, want %q", k, got[k], "a")
		}
	}
	if _, leaked := got[other]; leaked {
		t.Fatalf("aborted cross-shard txn leaked %s on the healthy shard", other)
	}
	if _, leaked := got[straw]; leaked {
		t.Fatalf("aborted cross-shard txn leaked %s", straw)
	}
	checkAll(t, checkers)
}

func TestShardedRecoveryPreservesCommitted(t *testing.T) {
	cfg := testConfig(53)
	stores, checkers := shardedBackends(cfg, 4)
	p1, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kv := map[string]string{}
	for s := 0; s < 4; s++ {
		kv[keysForShard(s, 4, 1)[0]] = fmt.Sprintf("v%d", s)
	}
	commitKV(t, p1, kv)
	// Crash: p1 disappears without Close.

	p2, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("sharded recovery: %v", err)
	}
	defer p2.Close()
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	got := readAll(t, p2, keys...)
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("after recovery %s = %q, want %q", k, got[k], v)
		}
	}
	checkAll(t, checkers)
}

func TestShardedRecoveryDropsInFlightEpoch(t *testing.T) {
	cfg := testConfig(54)
	stores, checkers := shardedBackends(cfg, 4)
	p1, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stable := map[string]string{}
	for s := 0; s < 4; s++ {
		stable[keysForShard(s, 4, 1)[0]] = "committed"
	}
	commitKV(t, p1, stable)

	// In-flight epoch: a cross-shard read batch executes (logged on every
	// shard), writes buffered, then the proxy crashes before the epoch
	// commits.
	doomed := keysForShard(0, 4, 2)[1]
	tx := p1.Begin()
	go func() {
		var keys []string
		for k := range stable {
			keys = append(keys, k)
		}
		tx.ReadMany(keys)
		tx.Write(doomed, []byte("doomed"))
		tx.Commit()
	}()
	waitQueued(t, p1, len(stable))
	must(t, p1.StepReadBatch())
	// Crash now: no EndEpoch, no Close.

	p2, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("sharded recovery: %v", err)
	}
	defer p2.Close()
	if p2.ReplayedReads() == 0 {
		t.Fatal("recovery replayed nothing despite logged batches")
	}
	var keys []string
	for k := range stable {
		keys = append(keys, k)
	}
	got := readAll(t, p2, append(keys, doomed)...)
	for k := range stable {
		if got[k] != "committed" {
			t.Fatalf("%s = %q after recovery", k, got[k])
		}
	}
	if _, leaked := got[doomed]; leaked {
		t.Fatal("in-flight write survived the crash")
	}
	checkAll(t, checkers)
}

// TestShardedTornCommitRecovers exercises the coordinator-commit protocol's
// decision rule: a crash after the coordinator shard's commit record but
// before the remaining shards append theirs must still commit the epoch
// globally — the lagging shards are caught up from their durable checkpoints.
func TestShardedTornCommitRecovers(t *testing.T) {
	cfg := testConfig(55)
	stores, checkers := shardedBackends(cfg, 4)
	p1, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := map[string]string{}
	for s := 0; s < 4; s++ {
		warm[keysForShard(s, 4, 1)[0]] = "warm"
	}
	commitKV(t, p1, warm)

	// Crash exactly after the coordinator's commit record of the next epoch.
	crash := errors.New("injected crash after coordinator commit")
	p1.testCommitHook = func(shardID int) error {
		if shardID == 0 {
			return crash
		}
		return nil
	}
	torn := map[string]string{}
	for s := 0; s < 4; s++ {
		torn[keysForShard(s, 4, 2)[1]] = "torn"
	}
	tx := p1.Begin()
	for k, v := range torn {
		must(t, tx.Write(k, []byte(v)))
	}
	tx.CommitAsync()
	if err := p1.EndEpoch(); !errors.Is(err, crash) {
		t.Fatalf("EndEpoch under injected crash: %v", err)
	}
	// The proxy is now dead mid-commit: shard 0 has the epoch's commit
	// record, shards 1-3 only their checkpoints.

	p2, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("recovery from torn commit: %v", err)
	}
	defer p2.Close()
	var keys []string
	for k := range torn {
		keys = append(keys, k)
	}
	got := readAll(t, p2, keys...)
	for k, v := range torn {
		if got[k] != v {
			t.Fatalf("torn-commit epoch lost on %s: %q (coordinator committed, so the epoch is global)", k, got[k])
		}
	}
	for k, v := range warm {
		if g := readAll(t, p2, k)[k]; g != v {
			t.Fatalf("%s = %q after torn-commit recovery", k, g)
		}
	}
	checkAll(t, checkers)
}

// TestShardConfigMismatchRejected guards the operational trap of restarting
// a sharded deployment with reordered storage addresses or a different shard
// count: key routing would silently change, so recovery must refuse.
func TestShardConfigMismatchRejected(t *testing.T) {
	cfg := testConfig(58)
	stores, _ := shardedBackends(cfg, 2)
	p1, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{
		keysForShard(0, 2, 1)[0]: "a",
		keysForShard(1, 2, 1)[0]: "b",
	})
	p1.Close()

	if _, err := NewSharded([]storage.Backend{stores[1], stores[0]}, cfg); err == nil {
		t.Fatal("restart with swapped storage backends accepted")
	}
	if _, err := NewSharded(stores[:1], cfg); err == nil {
		t.Fatal("restart with fewer shards accepted")
	}
	// The correct configuration still recovers.
	p2, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("correct configuration rejected: %v", err)
	}
	p2.Close()
}

// TestTornFirstBootReinitializes covers a first boot that dies between
// baseline checkpoints: the coordinator's epoch-0 checkpoint is durable, a
// lagging shard's log is still empty, and no commit record exists anywhere.
// Restart must reinitialize (nothing ever committed) rather than recover a
// phantom epoch 0 and fail forever on the empty shard log.
func TestTornFirstBootReinitializes(t *testing.T) {
	cfg := testConfig(57)
	stores, checkers := shardedBackends(cfg, 2)
	l, err := wal.New(stores[0], wal.Config{Key: cfg.Key, Shard: 0, Shards: 2, FullCheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	oram, err := oramexec.InitORAM(stores[0], cfg.Key, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCheckpoint(0, oram); err != nil {
		t.Fatal(err)
	}
	// Crash here: no commit record, shard 1's log empty.

	p, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("restart after torn first boot: %v", err)
	}
	defer p.Close()
	kv := map[string]string{
		keysForShard(0, 2, 1)[0]: "a",
		keysForShard(1, 2, 1)[0]: "b",
	}
	commitKV(t, p, kv)
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	got := readAll(t, p, keys...)
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("%s = %q after reinit", k, got[k])
		}
	}
	checkAll(t, checkers)
}

// TestCommitDuringBoundaryDecidedNextEpoch pins down a race the sharded
// boundary widens: a transaction that begins while EndEpoch is already
// finalizing lives in the next epoch's CCU generation. Its commit must NOT be
// acked as aborted by the boundary it slipped into (its writes would commit
// next epoch regardless — a lying ack); it must be decided by the next
// boundary.
func TestCommitDuringBoundaryDecidedNextEpoch(t *testing.T) {
	cfg := testConfig(56)
	stores, checkers := shardedBackends(cfg, 2)
	p, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var ch <-chan error
	fired := false
	// The hook runs inside EndEpoch after FinalizeEpoch but before waiter
	// notification — exactly the boundary window.
	p.testCommitHook = func(shardID int) error {
		if shardID != 0 || fired {
			return nil
		}
		fired = true
		tx := p.Begin()
		if werr := tx.Write("boundary-key", []byte("v")); werr != nil {
			t.Error(werr)
			return nil
		}
		ch = tx.CommitAsync()
		return nil
	}
	must(t, p.EndEpoch())
	p.testCommitHook = nil
	if !fired {
		t.Fatal("hook never fired")
	}
	select {
	case err := <-ch:
		t.Fatalf("boundary transaction decided by the epoch it slipped into: %v", err)
	default:
	}
	must(t, p.EndEpoch())
	if err := <-ch; err != nil {
		t.Fatalf("boundary transaction at next epoch: %v", err)
	}
	if got := readAll(t, p, "boundary-key"); got["boundary-key"] != "v" {
		t.Fatalf("boundary-key = %q after commit", got["boundary-key"])
	}
	checkAll(t, checkers)
}

// TestShardedScheduleShapeIndependence extends the system-level security test
// to sharded operation: two different transaction mixes — including mixes
// that concentrate all keys on one shard — must produce, on EVERY shard, a
// storage trace with identical workload-visible shape.
func TestShardedScheduleShapeIndependence(t *testing.T) {
	const nshards = 2
	type traceShape struct {
		writes  [][]string // per shard, sorted bucket-write events
		commits []int      // per shard
		reads   int64      // total logical slot reads, all shards
	}
	shape := func(run func(p *Proxy)) traceShape {
		cfg := testConfig(61) // same seed for both mixes
		cfg.DisableDurability = true
		cfg.Params.S = 48 // no early reshuffles in a short run
		var stores []storage.Backend
		var recs []*storage.Recorder
		for i := 0; i < nshards; i++ {
			r := storage.NewRecorder(storage.NewMemBackend(cfg.Params.Geometry().NumBuckets))
			recs = append(recs, r)
			stores = append(stores, r)
		}
		p, err := NewSharded(stores, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for _, r := range recs {
			r.Reset()
		}
		run(p)
		st := p.Stats()
		if st.Executor.Reshuffles != 0 {
			t.Fatalf("unexpected early reshuffles (%d) with S=%d", st.Executor.Reshuffles, cfg.Params.S)
		}
		out := traceShape{writes: make([][]string, nshards), commits: make([]int, nshards)}
		for i, r := range recs {
			for _, ev := range r.Events() {
				switch ev.Op {
				case storage.OpWriteBucket:
					out.writes[i] = append(out.writes[i], fmt.Sprintf("%d", ev.Bucket))
				case storage.OpCommit:
					out.commits[i]++
				}
			}
			sort.Strings(out.writes[i])
		}
		out.reads = st.Executor.RemoteReads + st.Executor.LocalReads
		return out
	}
	fullEpoch := func(p *Proxy, keys []string, writes map[string]string) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			tx := p.Begin()
			for _, k := range keys {
				tx.Read(k)
			}
			for k, v := range writes {
				tx.Write(k, []byte(v))
			}
			tx.Commit()
		}()
		for i := 0; i < p.cfg.ReadBatches; i++ {
			waitQueuedOrDone(p, done)
			if err := p.StepReadBatch(); err != nil {
				t.Error(err)
				return
			}
		}
		if err := p.EndEpoch(); err != nil {
			t.Error(err)
		}
		<-done
	}
	// Mix A: traffic spread across both shards. Mix B: everything on shard 0.
	a := shape(func(p *Proxy) {
		fullEpoch(p,
			[]string{keysForShard(0, nshards, 1)[0], keysForShard(1, nshards, 1)[0]},
			map[string]string{keysForShard(1, nshards, 2)[1]: "1"})
	})
	hot := keysForShard(0, nshards, 4)
	b := shape(func(p *Proxy) {
		fullEpoch(p, hot[:2], map[string]string{hot[2]: "1", hot[3]: "2"})
	})
	if a.reads != b.reads {
		t.Fatalf("logical read totals differ: %d vs %d — batch padding broken", a.reads, b.reads)
	}
	for s := 0; s < nshards; s++ {
		if a.commits[s] != b.commits[s] {
			t.Fatalf("shard %d commit counts differ: %d vs %d", s, a.commits[s], b.commits[s])
		}
		if len(a.writes[s]) != len(b.writes[s]) {
			t.Fatalf("shard %d write-back sets differ in size: %d vs %d (skew is visible!)", s, len(a.writes[s]), len(b.writes[s]))
		}
		for i := range a.writes[s] {
			if a.writes[s][i] != b.writes[s][i] {
				t.Fatalf("shard %d write-back bucket sets differ at %d: %s vs %s", s, i, a.writes[s][i], b.writes[s][i])
			}
		}
	}
}

// TestShardedChaosCrashRecoverLoop is the 4-shard variant of the crash/recover
// stress: concurrent clients, random crash points, every acknowledged commit
// must survive on whichever shard it hashed to.
func TestShardedChaosCrashRecoverLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(88)
	cfg.BatchInterval = 500 * time.Microsecond
	cfg.EagerBatches = true
	cfg.ReadBatchSize = 16
	cfg.WriteBatchSize = 32
	cfg.FullCheckpointEvery = 3
	stores, checkers := shardedBackends(cfg, 4)

	acked := make(map[string]string)
	var ackedMu sync.Mutex

	for round := 0; round < 4; round++ {
		p, err := NewSharded(stores, cfg)
		if err != nil {
			t.Fatalf("round %d: open/recover: %v", round, err)
		}
		rng := rand.New(rand.NewPCG(uint64(round), 23))
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				crng := rand.New(rand.NewPCG(uint64(round*10+c), 5))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					key := fmt.Sprintf("chaos-%d", crng.IntN(16))
					val := fmt.Sprintf("r%d-c%d-i%d", round, c, i)
					tx := p.Begin()
					if _, _, err := tx.Read(key); err != nil {
						continue
					}
					if err := tx.Write(key, []byte(val)); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						ackedMu.Lock()
						acked[key] = val
						ackedMu.Unlock()
					}
				}
			}(c)
		}
		time.Sleep(time.Duration(5+rng.IntN(15)) * time.Millisecond)
		close(stop)
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}

	p, err := NewSharded(stores, cfg)
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer p.Close()
	ackedMu.Lock()
	want := make(map[string]string, len(acked))
	for k, v := range acked {
		want[k] = v
	}
	ackedMu.Unlock()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		t.Skip("no commits acknowledged; host too slow for this schedule")
	}
	got := map[string]string{}
	for attempt := 0; attempt < 20; attempt++ {
		tx := p.Begin()
		res, err := tx.ReadMany(keys)
		tx.Abort()
		if err != nil {
			if errors.Is(err, ErrAborted) || errors.Is(err, ErrEpochFull) {
				continue
			}
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Found {
				got[r.Key] = string(r.Value)
			}
		}
		break
	}
	for k := range want {
		if got[k] == "" {
			t.Fatalf("acknowledged key %q lost after crashes", k)
		}
	}
	checkAll(t, checkers)
}
