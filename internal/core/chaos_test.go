package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"obladi/internal/storage"
)

// TestChaosCrashRecoverLoop runs concurrent clients against an auto-mode
// proxy with durability, kills the proxy at random points, recovers, and
// verifies that every acknowledged commit survives and the bucket invariant
// holds throughout. This is the end-to-end fate-sharing/durability stress.
func TestChaosCrashRecoverLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(77)
	cfg.BatchInterval = 500 * time.Microsecond
	cfg.EagerBatches = true
	cfg.ReadBatchSize = 16
	cfg.WriteBatchSize = 32
	cfg.FullCheckpointEvery = 3
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)

	acked := make(map[string]string) // commit-acknowledged state
	var ackedMu sync.Mutex

	for round := 0; round < 4; round++ {
		p, err := New(checker, cfg)
		if err != nil {
			t.Fatalf("round %d: open/recover: %v", round, err)
		}
		rng := rand.New(rand.NewPCG(uint64(round), 17))
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				crng := rand.New(rand.NewPCG(uint64(round*10+c), 3))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					key := fmt.Sprintf("chaos-%d", crng.IntN(12))
					val := fmt.Sprintf("r%d-c%d-i%d", round, c, i)
					tx := p.Begin()
					if _, _, err := tx.Read(key); err != nil {
						continue
					}
					if err := tx.Write(key, []byte(val)); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						ackedMu.Lock()
						acked[key] = val
						ackedMu.Unlock()
					}
				}
			}(c)
		}
		// Let the system churn, then crash at a random moment.
		time.Sleep(time.Duration(5+rng.IntN(15)) * time.Millisecond)
		close(stop)
		wg.Wait()
		// "Crash": Close stops the epoch loop without flushing or
		// committing anything — exactly a process death from storage's
		// point of view (in-flight epoch state is simply gone). Abandoning
		// the proxy without Close would leave its epoch goroutine running
		// concurrently with the recovered instance, which no real crash
		// does.
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		// The next round's New() recovers. For the last round, verify.
	}

	// Final recovery and verification.
	p, err := New(checker, cfg)
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer p.Close()
	ackedMu.Lock()
	want := make(map[string]string, len(acked))
	for k, v := range acked {
		want[k] = v
	}
	ackedMu.Unlock()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		t.Skip("no commits acknowledged; host too slow for this schedule")
	}
	// The proxy runs in auto mode: its epoch loop drives batches, so the
	// verification transaction simply blocks on ReadMany (driving the
	// schedule manually here would race with the loop).
	got := map[string]string{}
	for attempt := 0; attempt < 20; attempt++ {
		tx := p.Begin()
		res, err := tx.ReadMany(keys)
		tx.Abort()
		if err != nil {
			if errors.Is(err, ErrAborted) || errors.Is(err, ErrEpochFull) {
				continue
			}
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Found {
				got[r.Key] = string(r.Value)
			}
		}
		break
	}
	for k, v := range want {
		// The acknowledged value may have been superseded by a LATER
		// acknowledged commit of the same key; the map holds the last ack
		// per key, but two clients can ack in either order. Accept any
		// acknowledged value for the key from the same round structure:
		// at minimum the key must exist with some committed value.
		if got[k] == "" {
			t.Fatalf("acknowledged key %q lost after crashes (last acked %q)", k, v)
		}
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

// TestChaosPipelinedCommitCrashLoop extends the crash/recover stress to the
// pipelined boundary's riskiest window: every round arms the commit gate so
// some boundary's commit record fails mid-flight — the proxy dies with one
// epoch sealed (flushed, checkpointed) but uncommitted while the next epoch
// is already issuing read batches. Every acknowledged commit must still
// survive recovery, and the bucket invariant must hold throughout.
func TestChaosPipelinedCommitCrashLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig(91)
	cfg.BatchInterval = 500 * time.Microsecond
	cfg.EagerBatches = true
	cfg.ReadBatchSize = 16
	cfg.WriteBatchSize = 32
	cfg.FullCheckpointEvery = 3
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	gate := &commitGate{Backend: checker}

	acked := make(map[string]string)
	var ackedMu sync.Mutex

	for round := 0; round < 3; round++ {
		p, err := New(gate, cfg)
		if err != nil {
			t.Fatalf("round %d: open/recover: %v", round, err)
		}
		rng := rand.New(rand.NewPCG(uint64(round), 29))
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				crng := rand.New(rand.NewPCG(uint64(round*10+c), 7))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					key := fmt.Sprintf("pchaos-%d", crng.IntN(12))
					val := fmt.Sprintf("r%d-c%d-i%d", round, c, i)
					tx := p.Begin()
					if _, _, err := tx.Read(key); err != nil {
						continue
					}
					if err := tx.Write(key, []byte(val)); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						ackedMu.Lock()
						acked[key] = val
						ackedMu.Unlock()
					}
				}
			}(c)
		}
		// Let the system churn, then fail the next commit record: the proxy
		// fail-stops between a boundary's seal and its commit.
		time.Sleep(time.Duration(5+rng.IntN(10)) * time.Millisecond)
		gate.arm(true)
		time.Sleep(5 * time.Millisecond)
		close(stop)
		wg.Wait()
		// Close drains the epoch loop and committer (the dying commit has
		// already delivered its error to its waiters).
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		gate.arm(false)
	}

	p, err := New(gate, cfg)
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer p.Close()
	ackedMu.Lock()
	want := make(map[string]string, len(acked))
	for k, v := range acked {
		want[k] = v
	}
	ackedMu.Unlock()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		t.Skip("no commits acknowledged; host too slow for this schedule")
	}
	got := map[string]string{}
	for attempt := 0; attempt < 20; attempt++ {
		tx := p.Begin()
		res, err := tx.ReadMany(keys)
		tx.Abort()
		if err != nil {
			if errors.Is(err, ErrAborted) || errors.Is(err, ErrEpochFull) {
				continue
			}
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Found {
				got[r.Key] = string(r.Value)
			}
		}
		break
	}
	for k := range want {
		if got[k] == "" {
			t.Fatalf("acknowledged key %q lost after a mid-commit crash", k)
		}
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

// TestEagerBatchesFireEarly verifies that a full batch fires before Δ in
// eager mode.
func TestEagerBatchesFireEarly(t *testing.T) {
	cfg := testConfig(78)
	cfg.BatchInterval = time.Second // Δ is huge; only eager firing can help
	cfg.EagerBatches = true
	cfg.ReadBatchSize = 2
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			tx := p.Begin()
			defer tx.Abort()
			_, _, err := tx.Read(fmt.Sprintf("k%d", i))
			done <- err
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, ErrAborted) {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("full batch did not fire before Δ in eager mode")
		}
	}
}

// TestEagerKickNeverFiresBoundary is the regression test for a trace-shape
// leak: a full-queue eager kick arriving after all R read batches had fired
// used to route into EndEpoch, so the epoch boundary's timing depended on
// how many keys clients had queued. Eager mode may only accelerate
// read-batch slots; the boundary must wait out its Δ slot.
func TestEagerKickNeverFiresBoundary(t *testing.T) {
	cfg := testConfig(92)
	cfg.BatchInterval = time.Minute // Δ is huge: only a kick could end the epoch early
	cfg.EagerBatches = true
	cfg.ReadBatches = 1
	cfg.ReadBatchSize = 1
	// Admission control would shed the over-budget read before it queues;
	// the leak this test pins needs a key queued past the slot budget.
	cfg.DisableAdmission = true
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := p.Epoch()
	// The first read fills the queue; its eager kick legitimately fires the
	// epoch's only read batch.
	r1 := make(chan error, 1)
	go func() {
		tx := p.Begin()
		defer tx.Abort()
		_, _, rerr := tx.Read("a")
		r1 <- rerr
	}()
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	// All of the epoch's read-batch slots are spent, so the only schedule
	// slot a kick could fire now is the boundary. Queue another read to
	// fill the queue and kick again; the epoch must not advance before Δ.
	go func() {
		tx := p.Begin()
		defer tx.Abort()
		tx.Read("b") // woken with an abort when the proxy closes
	}()
	waitQueued(t, p, 1)
	time.Sleep(20 * time.Millisecond)
	if got := p.Epoch(); got != start {
		t.Fatalf("epoch advanced %d -> %d on an eager kick: boundary timing depends on queued keys", start, got)
	}
}

// TestManyEpochsStatsConsistent sanity-checks the accounting over a longer
// auto-mode run.
func TestManyEpochsStatsConsistent(t *testing.T) {
	cfg := testConfig(79)
	cfg.BatchInterval = 200 * time.Microsecond
	cfg.DisableDurability = true
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		tx := p.Begin()
		tx.Write(fmt.Sprintf("k%d", time.Now().UnixNano()%32), []byte("v"))
		tx.Commit()
	}
	st := p.Stats()
	if st.Epochs < 2 {
		t.Fatalf("only %d epochs in 50ms at Δ=200µs", st.Epochs)
	}
	if st.RealReads > st.ReadBatchSlots {
		t.Fatalf("real reads %d exceed slots %d", st.RealReads, st.ReadBatchSlots)
	}
	if st.RealWrites > st.WriteSlots {
		t.Fatalf("real writes %d exceed slots %d", st.RealWrites, st.WriteSlots)
	}
	if st.Committed == 0 {
		t.Fatal("nothing committed")
	}
}
