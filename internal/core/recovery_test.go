package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"obladi/internal/storage"
	"obladi/internal/wal"
)

// commitKV commits a set of writes in one transaction, driving the schedule
// manually.
func commitKV(t *testing.T, p *Proxy, kv map[string]string) {
	t.Helper()
	tx := p.Begin()
	for k, v := range kv {
		must(t, tx.Write(k, []byte(v)))
	}
	ch := tx.CommitAsync()
	must(t, p.EndEpoch())
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
}

// readAll reads keys in one transaction, driving the schedule manually.
// Retries if the transaction straddles an epoch boundary.
func readAll(t *testing.T, p *Proxy, keys ...string) map[string]string {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		out := make(map[string]string)
		done := make(chan error, 1)
		go func() {
			tx := p.Begin()
			defer tx.Abort()
			res, err := tx.ReadMany(keys)
			if err != nil {
				done <- err
				return
			}
			for _, r := range res {
				if r.Found {
					out[r.Key] = string(r.Value)
				}
			}
			done <- nil
		}()
		var err error
	drive:
		for {
			select {
			case err = <-done:
				break drive
			default:
				must(t, p.Advance())
				time.Sleep(200 * time.Microsecond)
			}
		}
		if err == nil {
			return out
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
			t.Fatal(err)
		}
	}
	t.Fatal("readAll: aborted on every attempt")
	return nil
}

func TestRecoveryPreservesCommitted(t *testing.T) {
	cfg := testConfig(31)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)

	p1, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"})
	// Crash: p1 simply disappears (no Close, buffer and metadata lost).

	p2, err := New(checker, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	got := readAll(t, p2, "k1", "k2", "k3")
	want := map[string]string{"k1": "v1", "k2": "v2", "k3": "v3"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("after recovery %s = %q, want %q", k, got[k], v)
		}
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestRecoveryDropsInFlightEpoch(t *testing.T) {
	cfg := testConfig(32)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)

	p1, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"stable": "committed"})

	// In-flight epoch: a read batch executes (logged!), writes buffered,
	// then the proxy crashes before the epoch commits.
	tx := p1.Begin()
	go func() {
		tx.Read("stable")
		tx.Write("stable", []byte("doomed"))
		tx.Write("new-key", []byte("doomed-too"))
		tx.Commit()
	}()
	must(t, p1.StepReadBatch())
	// Crash now: no EndEpoch, no Close.

	p2, err := New(checker, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	if p2.ReplayedReads() == 0 {
		t.Fatal("recovery replayed nothing despite a logged batch")
	}
	got := readAll(t, p2, "stable", "new-key")
	if got["stable"] != "committed" {
		t.Fatalf("stable = %q after recovery", got["stable"])
	}
	if _, leaked := got["new-key"]; leaked {
		t.Fatal("in-flight write survived the crash")
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

// TestRecoveryReplaysObservedTrace verifies §8's security core: the reads a
// recovering proxy issues are exactly the reads the adversary already saw in
// the aborted epoch.
func TestRecoveryReplaysObservedTrace(t *testing.T) {
	cfg := testConfig(33)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	rec := storage.NewRecorder(storage.NewInvariantChecker(backend))

	p1, err := New(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"})

	// Aborted epoch: two read batches.
	rec.Reset()
	for _, keys := range [][]string{{"a", "c"}, {"b", "d"}} {
		tx := p1.Begin()
		go func(keys []string) {
			tx.ReadMany(keys)
		}(keys)
		// Give the reads a moment to enqueue, then fire the batch.
		waitQueued(t, p1, len(keys))
		must(t, p1.StepReadBatch())
	}
	aborted := slotMultiset(rec.Events())
	// Crash.

	rec.Reset()
	p2, err := New(rec, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	replayEvents := rec.Events()
	replay := slotMultiset(replayEvents)
	if len(replay) == 0 {
		t.Fatal("recovery issued no reads")
	}
	for k, n := range aborted {
		if replay[k] != n {
			t.Fatalf("replay diverges at %s: aborted epoch read it %d times, replay %d", k, n, replay[k])
		}
	}
	for k := range replay {
		if _, ok := aborted[k]; !ok {
			t.Fatalf("replay read %s, which the aborted epoch never touched", k)
		}
	}
}

// waitQueued blocks until n fetches are queued at the proxy.
func waitQueued(t *testing.T, p *Proxy, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.PendingFetches() >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("fetches never queued")
}

func slotMultiset(evs []storage.Event) map[string]int {
	out := make(map[string]int)
	for _, ev := range evs {
		if ev.Op == storage.OpReadSlot {
			out[fmt.Sprintf("%d/%d", ev.Bucket, ev.Slot)]++
		}
	}
	return out
}

func TestRecoveryIdempotent(t *testing.T) {
	// Crashing during recovery and recovering again must work and preserve
	// data (the paper: "it is possible to crash while recovering").
	cfg := testConfig(34)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)

	p1, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"k": "v"})
	tx := p1.Begin()
	go func() { tx.Read("k") }()
	waitQueued(t, p1, 1)
	must(t, p1.StepReadBatch())
	// Crash 1. Recover, then "crash" again immediately (p2 never serves).
	p2, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = p2 // crash 2: p2 abandoned without Close
	p3, err := New(checker, cfg)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer p3.Close()
	got := readAll(t, p3, "k")
	if got["k"] != "v" {
		t.Fatalf("k = %q after double recovery", got["k"])
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestRecoveryAcrossManyEpochs(t *testing.T) {
	cfg := testConfig(35)
	cfg.FullCheckpointEvery = 3
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	p1, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for e := 0; e < 7; e++ {
		kv := map[string]string{}
		for i := 0; i < 3; i++ {
			k := fmt.Sprintf("k%d", (e*3+i)%10)
			v := fmt.Sprintf("v%d-%d", e, i)
			kv[k] = v
			want[k] = v
		}
		commitKV(t, p1, kv)
	}
	p2, err := New(checker, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	got := readAll(t, p2, keys...)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %q, want %q", k, got[k], v)
		}
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestRecoveryWithoutDurabilityFails(t *testing.T) {
	cfg := testConfig(36)
	cfg.DisableDurability = true
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p1, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"k": "v"})
	// Without a recovery log, a restarted proxy reinitializes from scratch:
	// prior data is gone (fresh tree) — documenting the knob's semantics.
	p2, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := readAll(t, p2, "k")
	if _, ok := got["k"]; ok {
		t.Fatal("data survived without a durability log (tree should have been reinitialized)")
	}
}

// TestProxyTraceShapeIndependence is the system-level security test: two
// different transaction mixes with the same configuration must produce
// storage traces whose workload-visible shape is identical. The number of
// physical reads varies only with the ORAM's own randomness (reads whose
// random path crosses a buffered bucket are served locally), so the
// invariants are: identical deterministic write-back sets, identical commit
// counts, and an identical total of logical slot reads (remote + local).
func TestProxyTraceShapeIndependence(t *testing.T) {
	type traceShape struct {
		writes     []string // ordered bucket-write events
		commits    int
		totalReads int64 // remote + locally-served slot reads
	}
	shape := func(seed uint64, run func(p *Proxy)) traceShape {
		cfg := testConfig(seed)
		cfg.DisableDurability = true // isolate the data-path trace
		// Early reshuffles depend on random slot-consumption spikes, not on
		// the workload; with a large S none occur in a short run.
		cfg.Params.S = 48
		backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
		rec := storage.NewRecorder(backend)
		p, err := New(rec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rec.Reset()
		run(p)
		st := p.Stats()
		if st.Executor.Reshuffles != 0 {
			t.Fatalf("unexpected early reshuffles (%d) with S=%d", st.Executor.Reshuffles, cfg.Params.S)
		}
		var out traceShape
		for _, ev := range rec.Events() {
			switch ev.Op {
			case storage.OpWriteBucket:
				out.writes = append(out.writes, fmt.Sprintf("%d", ev.Bucket))
			case storage.OpCommit:
				out.commits++
			}
		}
		sort.Strings(out.writes)
		out.totalReads = st.Executor.RemoteReads + st.Executor.LocalReads
		return out
	}
	fullEpoch := func(p *Proxy, keys []string, writes map[string]string) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			tx := p.Begin()
			for _, k := range keys {
				tx.Read(k)
			}
			for k, v := range writes {
				tx.Write(k, []byte(v))
			}
			tx.Commit()
		}()
		for i := 0; i < p.cfg.ReadBatches; i++ {
			waitQueuedOrDone(p, done)
			if err := p.StepReadBatch(); err != nil {
				t.Error(err)
				return
			}
		}
		if err := p.EndEpoch(); err != nil {
			t.Error(err)
		}
		<-done
	}
	a := shape(41, func(p *Proxy) {
		fullEpoch(p, []string{"x1", "x2", "x3"}, map[string]string{"w": "1"})
	})
	b := shape(42, func(p *Proxy) {
		fullEpoch(p, []string{"hot"}, map[string]string{"a": "1", "b": "2", "c": "3"})
	})
	if a.commits != b.commits {
		t.Fatalf("commit counts differ: %d vs %d", a.commits, b.commits)
	}
	if a.totalReads != b.totalReads {
		t.Fatalf("logical read totals differ: %d vs %d — batch padding broken", a.totalReads, b.totalReads)
	}
	if len(a.writes) != len(b.writes) {
		t.Fatalf("write-back sets differ in size: %d vs %d", len(a.writes), len(b.writes))
	}
	for i := range a.writes {
		if a.writes[i] != b.writes[i] {
			t.Fatalf("write-back bucket sets differ at %d: %s vs %s", i, a.writes[i], b.writes[i])
		}
	}
}

// waitQueuedOrDone waits briefly for fetches to enqueue (or the txn to
// finish enqueuing everything it will). The wait must be time-bounded, not
// iteration-bounded: with vectored storage I/O a batch completes in
// microseconds, so a fixed spin count can elapse before the just-woken
// client goroutine gets scheduled to queue its next read — and a fetch that
// misses the epoch's last batch waits for the next epoch, which a manually
// driven test never starts.
func waitQueuedOrDone(p *Proxy, done chan struct{}) {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-done:
			return
		default:
		}
		if p.PendingFetches() > 0 {
			return
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// commitGate wraps a backend and, when armed, fails every commit-record
// append — freezing a boundary exactly between its prepare (batch records,
// flush and checkpoints durable) and its commit point. Record kinds are
// plaintext framing, so the "storage server" can target them precisely.
type commitGate struct {
	storage.Backend
	mu    sync.Mutex
	armed bool
}

var errCommitGate = errors.New("injected storage failure before commit record")

func (g *commitGate) arm(on bool) {
	g.mu.Lock()
	g.armed = on
	g.mu.Unlock()
}

func (g *commitGate) Append(rec []byte) (uint64, error) {
	g.mu.Lock()
	armed := g.armed
	g.mu.Unlock()
	if armed && wal.IsCommitRecord(rec) {
		return 0, errCommitGate
	}
	return g.Backend.Append(rec)
}

// TestCrashBetweenSealAndCommit kills a pipelined boundary in its riskiest
// window: epoch e is sealed (write batch executed, buckets flushing,
// checkpoint prepared) and epoch e+1 is already open, but the coordinator's
// commit record never lands. The commit waiter must be woken with the
// failure (not acked, not stranded), and recovery must roll back to the last
// committed epoch, drop the sealed epoch's writes, and replay its logged
// reads.
func TestCrashBetweenSealAndCommit(t *testing.T) {
	cfg := testConfig(38)
	cfg.Boundary = BoundaryPipelined
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	gate := &commitGate{Backend: checker}

	p1, err := New(gate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"stable": "committed"})

	// Doomed epoch: a logged read batch, two writes, then a boundary whose
	// asynchronous commit dies before the commit record.
	gate.arm(true)
	tx := p1.Begin()
	readDone := make(chan error, 1)
	go func() {
		_, rerr := tx.ReadMany([]string{"stable"})
		readDone <- rerr
	}()
	waitQueued(t, p1, 1)
	must(t, p1.StepReadBatch())
	must(t, <-readDone)
	must(t, tx.Write("stable", []byte("doomed")))
	must(t, tx.Write("fresh", []byte("doomed-too")))
	ch := tx.CommitAsync()
	// The seal succeeds and epoch e+1 opens immediately; the background
	// commit then hits the gate.
	must(t, p1.EndEpoch())
	// Reads of the next epoch may already be running when the commit dies;
	// either they work or the proxy has fail-stopped by then.
	if err := p1.StepReadBatch(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("read batch during async commit: %v", err)
	}
	select {
	case err := <-ch:
		if err == nil {
			t.Fatal("commit acknowledged although the commit record never landed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit waiter stranded after a mid-commit crash")
	}
	p1.Close()

	gate.arm(false)
	p2, err := New(gate, cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer p2.Close()
	if p2.ReplayedReads() == 0 {
		t.Fatal("recovery replayed nothing despite logged batches")
	}
	got := readAll(t, p2, "stable", "fresh")
	if got["stable"] != "committed" {
		t.Fatalf("stable = %q after recovery, want the last committed value", got["stable"])
	}
	if _, leaked := got["fresh"]; leaked {
		t.Fatal("write of the sealed-but-uncommitted epoch survived the crash")
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestRecoveryStatsExposed(t *testing.T) {
	cfg := testConfig(37)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p1, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commitKV(t, p1, map[string]string{"k": "v"})
	tx := p1.Begin()
	go func() { tx.Read("k") }()
	waitQueued(t, p1, 1)
	must(t, p1.StepReadBatch())

	p2, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Stats().RecoveryReplayed == 0 {
		t.Fatal("recovery stats not recorded")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("unexpected closed error")
	}
}
