package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"obladi/internal/mvtso"
)

// This file implements the asynchronous read plane of the client API: a
// transaction can register its whole read set with ReadAsync before the first
// read batch fires, then resolve the Futures as batches execute. The
// synchronous Read/ReadMany paths are thin wrappers over it.
//
// Asynchrony changes nothing the storage side observes: a Future only
// registers the key on its shard's fetch queue, exactly as a blocking Read
// would, and the fixed batch schedule executes regardless of who is waiting.
// In particular, cancelling a Future (or the transaction's context) aborts
// the MVTSO transaction but leaves the queued slot in place — it executes as
// a dummy from the schedule's point of view, so cancellation is invisible in
// the trace.

// BeginCtx starts a transaction bound to ctx. Cancellation or deadline
// expiry aborts the transaction at its next operation, and unblocks Future
// waits and Commit instead of letting them wait out the epoch. The proxy's
// oblivious schedule is unaffected: slots the transaction already queued
// still execute (as dummies).
func (p *Proxy) BeginCtx(ctx context.Context) *Txn {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	return &Txn{p: p, inner: p.ccu.Begin(), epoch: epoch, ctx: ctx}
}

// Future is the pending result of a ReadAsync. It resolves when the read's
// batch executes (or the transaction dies first). A Future belongs to its
// transaction's epoch like every other operation: if the epoch ends before
// the batch serves it, Wait reports the abort.
//
// Wait may be called from a different goroutine than the transaction's, and
// multiple Futures of one transaction may be waited concurrently; concurrent
// Waits on the *same* Future are serialized.
type Future struct {
	t   *Txn
	key string

	mu       sync.Mutex
	ch       <-chan error // pending fetch; nil once consumed or when resident
	hadFetch bool         // this future's read queued the key's real fetch
	done     bool
	value    []byte
	found    bool
	err      error
}

// ReadAsync registers a read of key and returns immediately. The returned
// Future resolves when the key's base version is resident (for keys already
// fetched this epoch, immediately). Issuing a transaction's independent reads
// through ReadAsync before the first Wait packs them into the same read
// batch, like ReadMany, without requiring the key set up front.
func (t *Txn) ReadAsync(key string) *Future {
	f := &Future{t: t, key: key}
	if err := t.check(key); err != nil {
		f.done, f.err = true, err
		return f
	}
	f.ch = t.p.queueFetch(t.epoch, t.inner.TS(), key)
	f.hadFetch = f.ch != nil
	return f
}

// Value resolves the Future under the transaction's own context (Background
// for Begin). Equivalent to Wait with that context.
func (f *Future) Value() ([]byte, bool, error) {
	return f.Wait(f.t.ctx)
}

// Wait blocks until the Future resolves or ctx is done, whichever is first.
// A nil ctx means the transaction's own context (Background for Begin). On
// cancellation the transaction aborts (its queued batch slots still execute
// as dummies) and Wait returns an error matching both ErrAborted and the
// context's error.
func (f *Future) Wait(ctx context.Context) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return f.value, f.found, f.err
	}
	t := f.t
	if ctx == nil {
		ctx = t.ctx
	}
	for {
		if f.ch != nil {
			select {
			case err := <-f.ch:
				f.ch = nil
				if err != nil {
					t.inner.Abort()
					return f.resolve(nil, false, err)
				}
			case <-ctx.Done():
				t.inner.Abort()
				return f.resolve(nil, false, fmt.Errorf("%w: %w", ErrAborted, context.Cause(ctx)))
			case <-t.ctx.Done():
				t.inner.Abort()
				return f.resolve(nil, false, fmt.Errorf("%w: %w", ErrAborted, context.Cause(t.ctx)))
			}
		}
		if t.p.cfg.DisableReadCache && !f.hadFetch {
			// Ablation (§6.3): a version-cache hit still consumes a read-batch
			// slot. A future that carried the key's real fetch already paid
			// with that slot. The payment waits through the same select as a
			// fetch, so cancellation unblocks it too; payCacheSlot marks the
			// slot paid, making the next loop iteration skip this branch.
			if ch := t.payCacheSlot(f.key); ch != nil {
				f.ch = ch
				continue
			}
		}
		v, found, err := t.inner.Read(f.key)
		switch {
		case err == nil:
			return f.resolve(v, found, nil)
		case errors.Is(err, mvtso.ErrNeedFetch):
			// The version cache no longer holds the base (possible only
			// across batch races); queue again and keep waiting.
			f.ch = t.p.queueFetch(t.epoch, t.inner.TS(), f.key)
		case errors.Is(err, mvtso.ErrAborted):
			return f.resolve(nil, false, fmt.Errorf("%w: %v", ErrAborted, err))
		default:
			return f.resolve(nil, false, err)
		}
	}
}

// resolve records the Future's final value; the caller holds f.mu.
func (f *Future) resolve(value []byte, found bool, err error) ([]byte, bool, error) {
	f.done = true
	f.value, f.found, f.err = value, found, err
	return value, found, err
}
