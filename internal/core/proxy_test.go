package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

func testConfig(seed uint64) Config {
	return Config{
		Params: ringoram.Params{
			NumBlocks: 128,
			Z:         4,
			S:         6,
			A:         4,
			KeySize:   24,
			ValueSize: 64,
			Seed:      seed,
		},
		Key:            cryptoutil.KeyFromSeed([]byte("core")),
		ReadBatches:    4,
		ReadBatchSize:  8,
		WriteBatchSize: 8,
	}
}

// testProxy builds a proxy over a checked in-memory backend.
func testProxy(t *testing.T, cfg Config) (*Proxy, *storage.InvariantChecker, storage.Backend) {
	t.Helper()
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	p, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, checker, checker
}

// pump drives the proxy schedule in the background until stopped.
func pump(t *testing.T, p *Proxy) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := p.Advance(); err != nil && !errors.Is(err, ErrClosed) {
				select {
				case <-done:
					return
				default:
					t.Errorf("pump: %v", err)
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

func TestCommitWriteThenRead(t *testing.T) {
	p, checker, _ := testProxy(t, testConfig(1))
	stop := pump(t, p)
	defer stop()

	tx := p.Begin()
	if err := tx.Write("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	tx2 := p.Begin()
	v, found, err := tx2.Read("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !found || string(v) != "one" {
		t.Fatalf("read = %q %v", v, found)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(2))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	if err := tx.Write("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tx.Read("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("own write: %q %v %v", v, found, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnknownKey(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(3))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	_, found, err := tx.Read("never-written")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("unknown key found")
	}
	tx.Abort()
}

func TestDeleteVisibleAfterCommit(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(4))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	must(t, tx.Write("k", []byte("v")))
	must(t, tx.Commit())
	tx2 := p.Begin()
	must(t, tx2.Delete("k"))
	must(t, tx2.Commit())
	tx3 := p.Begin()
	_, found, err := tx3.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("deleted key still visible")
	}
	tx3.Abort()
}

func TestUncommittedInvisibleAcrossEpochs(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(5))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	must(t, tx.Write("ghost", []byte("v")))
	// No commit: the epoch boundary aborts it.
	deadline := time.Now().Add(5 * time.Second)
	for p.Epoch() == tx.epoch && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tx2 := p.Begin()
	_, found, err := tx2.Read("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("uncommitted write survived the epoch")
	}
	tx2.Abort()
}

func TestTxnSpanningEpochsAborts(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(6))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	must(t, tx.Write("a", []byte("1")))
	deadline := time.Now().Add(5 * time.Second)
	for p.Epoch() == tx.epoch && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := tx.Write("b", []byte("2"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("cross-epoch write: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("cross-epoch commit: %v", err)
	}
}

func TestConflictAbort(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(7))
	stop := pump(t, p)
	defer stop()
	setup := p.Begin()
	must(t, setup.Write("d", []byte("d0")))
	must(t, setup.Commit())

	t2 := p.Begin() // earlier timestamp
	t3 := p.Begin() // later timestamp
	if _, _, err := t3.Read("d"); err != nil {
		t.Fatal(err)
	}
	err := t2.Write("d", []byte("d2"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("read-marker conflict not surfaced: %v", err)
	}
	must(t, t3.Commit())
}

func TestCascadingAbortAtEpochEnd(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(8))
	stop := pump(t, p)
	defer stop()
	t1 := p.Begin()
	must(t, t1.Write("x", []byte("from-t1")))
	t2 := p.Begin()
	v, found, err := t2.Read("x")
	if err != nil || !found || string(v) != "from-t1" {
		t.Fatalf("t2 read: %q %v %v", v, found, err)
	}
	// t2 commits, t1 never does: both must abort.
	if err := t2.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("t2 commit: %v (depends on unfinished t1)", err)
	}
}

func TestWriteBatchCapacity(t *testing.T) {
	cfg := testConfig(9)
	cfg.WriteBatchSize = 2
	p, _, _ := testProxy(t, cfg)
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	must(t, tx.Write("a", []byte("1")))
	must(t, tx.Write("b", []byte("2")))
	err := tx.Write("c", []byte("3"))
	if !errors.Is(err, ErrEpochFull) {
		t.Fatalf("write over capacity: %v", err)
	}
}

func TestValueTooLarge(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(10))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	err := tx.Write("k", make([]byte, p.cfg.Params.ValueSize+1))
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	tx.Abort()
}

func TestKeyValidation(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(11))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	if err := tx.Write("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tx.Write("\x00sneaky", []byte("v")); err == nil {
		t.Fatal("NUL-prefixed key accepted")
	}
	if err := tx.Write(string(make([]byte, 1000)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	tx.Abort()
}

func TestConcurrentClients(t *testing.T) {
	cfg := testConfig(12)
	cfg.BatchInterval = time.Millisecond
	cfg.ReadBatchSize = 16
	cfg.WriteBatchSize = 32
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	checker := storage.NewInvariantChecker(backend)
	p, err := New(checker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const clients = 8
	var wg sync.WaitGroup
	var committed, aborted int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tx := p.Begin()
				key := fmt.Sprintf("acct-%d", (c+i)%6)
				_, _, err := tx.Read(key)
				if err != nil {
					continue // aborted read; try next iteration
				}
				if err := tx.Write(key, []byte(fmt.Sprintf("c%d-i%d", c, i))); err != nil {
					continue
				}
				err = tx.Commit()
				mu.Lock()
				if err == nil {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatalf("no transaction committed (aborted=%d)", aborted)
	}
	if v := checker.Violation(); v != nil {
		t.Fatal(v)
	}
	st := p.Stats()
	if st.Committed == 0 || st.Epochs == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBatchPaddingFixedSlots(t *testing.T) {
	// Every issued read batch consumes exactly ReadBatchSize slots
	// regardless of load.
	p, _, _ := testProxy(t, testConfig(13))
	stop := pump(t, p)
	defer stop()
	tx := p.Begin()
	if _, _, err := tx.Read("solo"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	st := p.Stats()
	if st.ReadBatchSlots == 0 {
		t.Fatal("no batch slots recorded")
	}
	if st.ReadBatchSlots%uint64(p.cfg.ReadBatchSize) != 0 {
		t.Fatalf("slots %d not a multiple of bread %d", st.ReadBatchSlots, p.cfg.ReadBatchSize)
	}
	if st.RealReads >= st.ReadBatchSlots {
		t.Fatalf("padding missing: real=%d slots=%d", st.RealReads, st.ReadBatchSlots)
	}
}

func TestVersionCacheServesRepeatReads(t *testing.T) {
	p, _, _ := testProxy(t, testConfig(14))
	stop := pump(t, p)
	defer stop()
	setup := p.Begin()
	must(t, setup.Write("hot", []byte("v")))
	must(t, setup.Commit())

	// First read fetches; subsequent reads in the same epoch hit the cache.
	tx := p.Begin()
	if _, _, err := tx.Read("hot"); err != nil {
		t.Fatal(err)
	}
	before := p.Stats().RealReads
	tx2 := p.Begin()
	start := time.Now()
	if _, _, err := tx2.Read("hot"); err != nil {
		if !errors.Is(err, ErrAborted) {
			t.Fatal(err)
		}
		// Epoch may have rolled between the two reads; retry once.
		tx2 = p.Begin()
		if _, _, err := tx2.Read("hot"); err != nil {
			t.Fatal(err)
		}
	}
	_ = start
	after := p.Stats().RealReads
	if after > before+1 {
		t.Fatalf("repeat read consumed %d extra real slots", after-before)
	}
	tx.Abort()
	tx2.Abort()
}

func TestManualModeDeterministic(t *testing.T) {
	cfg := testConfig(15)
	p, checker, _ := testProxy(t, cfg)

	// Write-only transactions never block before Commit. CommitAsync
	// registers the commit synchronously, so the manually driven schedule
	// below cannot outrun it (a goroutine calling Commit could lose the
	// race against a fast epoch and be aborted as "epoch ended").
	tx1 := p.Begin()
	must(t, tx1.Write("m1", []byte("v1")))
	tx2 := p.Begin()
	must(t, tx2.Write("m2", []byte("v2")))
	c1, c2 := tx1.CommitAsync(), tx2.CommitAsync()
	// Drive a full epoch by hand: R read batches + boundary.
	for i := 0; i < cfg.ReadBatches; i++ {
		must(t, p.Advance())
	}
	must(t, p.Advance()) // epoch boundary
	for i, ch := range []<-chan error{c1, c2} {
		if err := <-ch; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// Read both back, again by hand.
	done := make(chan error, 1)
	go func() {
		tx := p.Begin()
		v1, f1, err := tx.Read("m1")
		if err != nil {
			done <- err
			return
		}
		v2, f2, err := tx.Read("m2")
		if err != nil {
			done <- err
			return
		}
		if !f1 || !f2 || string(v1) != "v1" || string(v2) != "v2" {
			done <- fmt.Errorf("read back %q/%v %q/%v", v1, f1, v2, f2)
			return
		}
		done <- tx.Commit()
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if v := checker.Violation(); v != nil {
				t.Fatal(v)
			}
			return
		case <-deadline:
			t.Fatal("deadlock driving manual epoch")
		default:
			must(t, p.Advance())
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestDisableReadCacheConsumesSlots(t *testing.T) {
	run := func(disable bool) uint64 {
		cfg := testConfig(16)
		cfg.DisableReadCache = disable
		cfg.ReadBatchSize = 4
		p, _, _ := testProxy(t, cfg)
		stop := pump(t, p)
		defer stop()
		setup := p.Begin()
		must(t, setup.Write("hot", []byte("v")))
		must(t, setup.Commit())
		// Several transactions read the same hot key within one epoch.
		var txs []*Txn
		for i := 0; i < 3; i++ {
			tx := p.Begin()
			if _, _, err := tx.Read("hot"); err != nil {
				i--
				continue
			}
			txs = append(txs, tx)
		}
		for _, tx := range txs {
			tx.Abort()
		}
		return p.Stats().RealReads
	}
	with := run(false)
	without := run(true)
	if without <= with {
		t.Fatalf("DisableReadCache consumed %d slots, cache mode %d", without, with)
	}
}

func TestCloseAbortsInFlight(t *testing.T) {
	cfg := testConfig(17)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	must(t, tx.Write("k", []byte("v")))
	commitErr := make(chan error, 1)
	go func() { commitErr <- tx.Commit() }()
	time.Sleep(5 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-commitErr; err == nil {
		t.Fatal("commit succeeded after close")
	}
	if _, _, err := p.Begin().Read("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

// TestStatsConcurrentWithBatches races Stats snapshots against batch
// execution and the background committer. Executor counters are mutated
// from per-shard goroutines that do not hold the proxy mutex, so this test
// is only meaningful under -race (the CI race job runs it): it pins down
// that Stats is atomically readable mid-batch.
func TestStatsConcurrentWithBatches(t *testing.T) {
	cfg := testConfig(18)
	cfg.Boundary = BoundaryPipelined
	p, _, _ := testProxy(t, cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = p.Stats()
		}
	}()
	for e := 0; e < 3; e++ {
		tx := p.Begin()
		must(t, tx.Write(fmt.Sprintf("k%d", e), []byte("v")))
		ch := tx.CommitAsync()
		for b := 0; b < cfg.ReadBatches; b++ {
			must(t, p.StepReadBatch())
		}
		must(t, p.EndEpoch())
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	st := p.Stats()
	if st.Epochs == 0 || st.Committed == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestManualBoundaryErrorFailsProxy pins down fail-stop at the boundary: a
// mid-boundary failure in manual mode must wake commit waiters and close
// the proxy, not strand Advance() callers forever.
func TestManualBoundaryErrorFailsProxy(t *testing.T) {
	cfg := testConfig(19)
	backend := storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
	p, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	boom := errors.New("injected boundary failure")
	p.testCommitHook = func(shardID int) error { return boom }
	tx := p.Begin()
	must(t, tx.Write("k", []byte("v")))
	ch := tx.CommitAsync()
	if err := p.EndEpoch(); !errors.Is(err, boom) {
		t.Fatalf("EndEpoch under injected failure: %v", err)
	}
	select {
	case err := <-ch:
		if !errors.Is(err, boom) {
			t.Fatalf("commit waiter woke with %v, want the boundary error", err)
		}
	default:
		t.Fatal("commit waiter stranded after a mid-boundary error")
	}
	if err := p.Advance(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Advance after boundary failure: %v", err)
	}
	if _, _, err := p.Begin().Read("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after boundary failure: %v", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
