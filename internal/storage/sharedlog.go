package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// SharedLog multiplexes several shards' recovery-log streams onto ONE
// physical segmented log (the owner backend's). This is what makes group
// commit actually coalesce across shards: with per-shard log files, two
// shards' epoch-boundary appends land on different files and their fsyncs
// can never merge — the scheduler only amortizes barriers on the same file.
// With every stream in one file, a read round's two schedule appends, the
// prepare round's two checkpoints, and a commit record plus whatever else is
// in flight all stand on one flush wave.
//
// Sharing one file also strengthens the sharded commit protocol for free:
// the coordinator's commit-record fsync covers every other shard's prepared
// record (they sit earlier in the same file), so the global commit point's
// single flush is exactly the durability the protocol's recovery floor
// assumes.
//
// Stream records are the owner's physical records with a 4-byte stream-id
// prefix. Each stream presents the LogStore contract with its own dense
// sequence numbers. Sequence numbers restart from the surviving record
// count at reopen; that is sound because the WAL layer persists no sequence
// numbers across restarts — every recovery derives state from a fresh
// Scan(0), and checkpoints identify epochs, not sequences.
//
// A torn physical tail truncates a suffix of the physical log, which is a
// suffix of every stream in append order — each stream recovers to a prefix,
// exactly the write-ahead contract, and the cross-shard recovery floor logic
// raises lagging shards afterwards.
type SharedLog struct {
	owner *DiskBackend

	mu      sync.Mutex
	streams []logStream
	// heapStreams counts bucket-data streams (logheap mode); they occupy
	// stream ids len(streams)..len(streams)+heapStreams-1. Heap streams have
	// no logical sequence mapping — the logheap index addresses records by
	// physical location, its checkpoint watermark bounds replay, and the
	// segment retention gate (not Truncate) governs their lifetime.
	heapStreams int
}

type logStream struct {
	phys  []uint64 // physical seq of each live record; logical seq = floor+i
	floor uint64   // logical seq of phys[0] (1 when nothing truncated)
	last  uint64   // last logical seq handed out
}

const sharedLogHdrSize = 4

// NewSharedLog builds the multiplexer over owner's physical log, which must
// only ever be written through the returned views (raw appends would be
// unparseable stream records). Existing physical records are demuxed to
// rebuild each stream's state — including after a crash, where the owner's
// own open already handled torn tails and damaged segments.
func NewSharedLog(owner *DiskBackend, streams int) (*SharedLog, error) {
	return newSharedLogOpts(owner, streams, 0, sharedLogReplay{})
}

// sharedLogReplay feeds bucket-data records to the logheap rebuild during
// the open-time demux scan. heapFloor(i) is heap stream i's checkpoint
// watermark W: own-stream records with physical sequence <= W are already
// reflected in the loaded checkpoint and are skipped; onHeap receives every
// record above it, with its physical location (the body slice is only valid
// for the duration of the call).
type sharedLogReplay struct {
	heapFloor func(i int) uint64
	onHeap    func(i int, seq, segBase uint64, off int64, body []byte) error
}

// newSharedLogOpts builds the multiplexer over walStreams WAL streams plus
// heapStreams bucket-data streams. The demux scan starts at the lowest
// sequence any consumer still needs — the WAL truncation point, or a heap
// stream's checkpoint watermark, whichever is lower (the retention gate
// keeps those segments on disk) — and WAL streams simply skip the
// logically-truncated records below the truncation point.
func newSharedLogOpts(owner *DiskBackend, walStreams, heapStreams int, rp sharedLogReplay) (*SharedLog, error) {
	if walStreams <= 0 {
		return nil, fmt.Errorf("storage: shared log needs a positive stream count (got %d)", walStreams)
	}
	s := &SharedLog{owner: owner, streams: make([]logStream, walStreams), heapStreams: heapStreams}
	for i := range s.streams {
		s.streams[i].floor = 1
	}
	trunc := owner.truncFloor()
	from := trunc
	for i := 0; i < heapStreams; i++ {
		if w := rp.heapFloor(i) + 1; w < from {
			from = w
		}
	}
	total := walStreams + heapStreams
	err := owner.scanLog(from, func(seq, segBase uint64, off int64, rec []byte) error {
		id, body, err := splitSharedRecord(rec)
		if err != nil {
			return fmt.Errorf("storage: shared log physical record %d: %w", seq, err)
		}
		if int(id) >= total {
			return fmt.Errorf("storage: shared log record for stream %d but only %d streams opened", id, total)
		}
		if int(id) < walStreams {
			if seq < trunc {
				return nil // logically truncated; retained only for heap data
			}
			st := &s.streams[id]
			st.phys = append(st.phys, seq)
			st.last++
			return nil
		}
		h := int(id) - walStreams
		if seq <= rp.heapFloor(h) {
			return nil // already covered by the index checkpoint
		}
		return rp.onHeap(h, seq, segBase, off, body)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// appendHeapStream appends one bucket-data record to heap stream i without
// standing on a barrier, returning where it landed; the caller owns
// durability (notePending now, SyncLog at the commit barrier). Called with
// the owning LogHeap's mutex held — lock order is heap mu → s.mu → the
// owner's logMu.
func (s *SharedLog) appendHeapStream(i int, rec []byte) (logAppendRes, error) {
	if i < 0 || i >= s.heapStreams {
		return logAppendRes{}, fmt.Errorf("storage: shared log heap stream %d of %d", i, s.heapStreams)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.owner.appendLogUnsynced(wrapSharedRecord(uint32(len(s.streams)+i), rec))
}

func wrapSharedRecord(id uint32, rec []byte) []byte {
	out := make([]byte, sharedLogHdrSize+len(rec))
	binary.BigEndian.PutUint32(out, id)
	copy(out[sharedLogHdrSize:], rec)
	return out
}

func splitSharedRecord(rec []byte) (uint32, []byte, error) {
	if len(rec) < sharedLogHdrSize {
		return 0, nil, fmt.Errorf("record shorter than its stream header (%d bytes)", len(rec))
	}
	return binary.BigEndian.Uint32(rec), rec[sharedLogHdrSize:], nil
}

// View returns stream i's LogStore face.
func (s *SharedLog) View(i int) *LogView {
	if i < 0 || i >= len(s.streams) {
		panic(fmt.Sprintf("storage: shared log stream %d of %d", i, len(s.streams)))
	}
	return &LogView{log: s, id: uint32(i)}
}

// LogView is one stream's LogStore over the shared physical log.
type LogView struct {
	log *SharedLog
	id  uint32
}

// Append writes the record into the shared physical log and blocks on a
// flush wave of that log's active segment. The mapping update and the
// physical append stay under one lock (stream order == physical order, the
// invariant torn-tail recovery leans on), but the barrier runs outside it —
// that is the whole point: every stream's barrier lands on the same file and
// coalesces.
func (v *LogView) Append(record []byte) (uint64, error) {
	s := v.log
	s.mu.Lock()
	res, err := s.owner.appendLogUnsynced(wrapSharedRecord(v.id, record))
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	st := &s.streams[v.id]
	st.phys = append(st.phys, res.seq)
	st.last++
	seq := st.last
	s.mu.Unlock()
	if err := s.owner.barrierTicket(res.f, res.ticket); err != nil {
		return 0, s.owner.wedge(err)
	}
	return seq, nil
}

// AppendNoSync implements LogBatcher: the record lands in the shared
// physical log but its durability waits for a SyncLog — from ANY view.
// This is the cross-shard barrier-placement primitive: N shards append
// their records back to back, then the first SyncLog's single fsync makes
// all of them durable and the remaining N-1 calls return without touching
// the disk.
func (v *LogView) AppendNoSync(record []byte) (uint64, error) {
	s := v.log
	s.mu.Lock()
	res, err := s.owner.appendLogUnsynced(wrapSharedRecord(v.id, record))
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	st := &s.streams[v.id]
	st.phys = append(st.phys, res.seq)
	st.last++
	seq := st.last
	s.mu.Unlock()
	// The pending-barrier ledger is the owner's: it is per physical log
	// (which is exactly the coalescing domain) and it already forgets
	// obligations on retired segment files.
	s.owner.notePending(res.f, res.ticket)
	return seq, nil
}

// SyncLog implements LogBatcher: every deferred append across ALL streams
// becomes durable — they share one physical file, so one barrier covers
// them and the other views' SyncLog calls become no-ops. Usually one fsync;
// one per file only when deferred appends straddled a segment rotation.
func (v *LogView) SyncLog() error {
	return v.log.owner.SyncLog()
}

// Scan returns this stream's records with sequence >= from, in order,
// demuxed from one physical scan.
func (v *LogView) Scan(from uint64) ([][]byte, error) {
	s := v.log
	s.mu.Lock()
	defer s.mu.Unlock()
	// Checked here and not only by the owner's Scan: the empty-stream early
	// return below must still report a closed store.
	if err := s.owner.checkUsable(); err != nil {
		return nil, err
	}
	st := &s.streams[v.id]
	if from < st.floor {
		from = st.floor
	}
	if from > st.last {
		return nil, nil
	}
	firstPhys := st.phys[from-st.floor]
	recs, err := s.owner.Scan(firstPhys)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, st.last-from+1)
	for _, rec := range recs {
		id, body, err := splitSharedRecord(rec)
		if err != nil {
			return nil, err
		}
		if id == v.id {
			out = append(out, body)
		}
	}
	return out, nil
}

// Truncate logically drops this stream's records below before, then
// truncates the physical log to the floor no remaining stream record sits
// under. One stream truncating never strands another: the physical floor is
// the minimum over every stream's first retained record.
func (v *LogView) Truncate(before uint64) error {
	s := v.log
	s.mu.Lock()
	defer s.mu.Unlock()
	// Same reasoning as Scan: the no-op path must still see ErrClosed.
	if err := s.owner.checkUsable(); err != nil {
		return err
	}
	st := &s.streams[v.id]
	if before > st.last+1 {
		before = st.last + 1
	}
	if before <= st.floor {
		return nil
	}
	st.phys = st.phys[before-st.floor:]
	st.floor = before
	physFloor, err := s.owner.LastSeq()
	if err != nil {
		return err
	}
	physFloor++ // nothing retained: everything below the next append may go
	for i := range s.streams {
		if p := s.streams[i].phys; len(p) > 0 && p[0] < physFloor {
			physFloor = p[0]
		}
	}
	return s.owner.Truncate(physFloor)
}

// LastSeq reports the stream's last assigned sequence number.
func (v *LogView) LastSeq() (uint64, error) {
	s := v.log
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.owner.checkUsable(); err != nil {
		return 0, err
	}
	return s.streams[v.id].last, nil
}
