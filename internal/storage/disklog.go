package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file holds DiskBackend's recovery log (segmented append-only files
// with an fsync barrier per append) and the NoPriv baseline's KV namespace
// (an append-only put/delete journal with an in-memory map).

// ---- KV namespace ----

func (b *DiskBackend) openKV() error {
	f, err := b.fsys.OpenFile(joinPath(b.dir, kvFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening kv log: %w", err)
	}
	b.kvf = f
	size, err := f.Size()
	if err != nil {
		return err
	}
	if size < fileHeaderSize {
		// Same argument as the bucket heap: a sub-header file means creation
		// never durably completed.
		if err := f.Truncate(0); err != nil {
			return err
		}
		hdr := encodeFileHeader(kvMagic, 0, 0)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("storage: initializing kv log: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
		b.kvSize = fileHeaderSize
		return nil
	}
	hdr, err := readFileRange(f, 0, fileHeaderSize)
	if err != nil {
		return err
	}
	if _, _, err := decodeFileHeader(hdr, kvMagic); err != nil {
		return fmt.Errorf("storage: kv log: %w", err)
	}
	sc := newRecordScanner(f, fileHeaderSize, size)
	off := int64(fileHeaderSize)
	for off < size {
		body, total, err := sc.next()
		if err != nil {
			if errors.Is(err, errTornRecord) {
				break
			}
			return fmt.Errorf("storage: kv log at offset %d: %w", off, err)
		}
		kind, key, value, err := parseKVBody(body)
		if err != nil {
			return fmt.Errorf("storage: kv log at offset %d: %w", off, err)
		}
		b.applyKVLocked(kind, key, value, int64(total))
		off += int64(total)
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("storage: truncating torn kv tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	b.kvSize = off
	return nil
}

func (b *DiskBackend) applyKVLocked(kind byte, key string, value []byte, recSize int64) {
	if old, ok := b.kv[key]; ok {
		b.kvDead += old.recSize
		b.kvLive -= old.recSize
	}
	switch kind {
	case kvKindPut:
		b.kv[key] = kvEntry{value: value, recSize: recSize}
		b.kvLive += recSize
	case kvKindDel:
		delete(b.kv, key)
		b.kvDead += recSize
	}
}

// Get implements KVStore.
func (b *DiskBackend) Get(key string) ([]byte, bool, error) {
	b.kvMu.RLock()
	defer b.kvMu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, false, err
	}
	e, ok := b.kv[key]
	return e.value, ok, nil
}

// Put implements KVStore: the entry is durable — covered by an fsync of the
// journal, inline or via the shared commit group — before the call returns.
func (b *DiskBackend) Put(key string, value []byte) error {
	return b.kvAppend(kvKindPut, key, value)
}

// Delete implements KVStore.
func (b *DiskBackend) Delete(key string) error {
	return b.kvAppend(kvKindDel, key, nil)
}

func (b *DiskBackend) kvAppend(kind byte, key string, value []byte) error {
	b.kvMu.Lock()
	if err := b.checkUsable(); err != nil {
		b.kvMu.Unlock()
		return err
	}
	if kind == kvKindDel {
		if _, ok := b.kv[key]; !ok {
			b.kvMu.Unlock()
			return nil // nothing to make durable
		}
	}
	framed := encodeRecord(nil, encodeKVBody(kind, key, value))
	if _, err := b.kvf.WriteAt(framed, b.kvSize); err != nil {
		b.kvMu.Unlock()
		return b.wedge(err)
	}
	b.kvSize += int64(len(framed))
	b.applyKVLocked(kind, key, value, int64(len(framed)))
	// Without a group the fsync stays under the lock — KV writers serialize
	// on one file anyway; with a group the lock drops so barriers from other
	// shards (and the heap/log) coalesce into one flush wave. Either way the
	// entry is durable before compaction may fold it into a rewritten
	// journal, so the compacted file only ever holds acknowledged entries.
	if b.group == nil {
		err := b.kvf.Sync()
		if err != nil {
			b.kvMu.Unlock()
			return b.wedge(err)
		}
		b.maybeCompactKVLocked()
		b.kvMu.Unlock()
		return nil
	}
	f := b.kvf
	ticket := b.stamp(f)
	b.kvMu.Unlock()
	if err := b.group.BarrierTicket(f, ticket); err != nil {
		return b.wedge(err)
	}
	b.kvMu.Lock()
	b.maybeCompactKVLocked()
	b.kvMu.Unlock()
	return nil
}

// maybeCompactKVLocked rewrites the journal as one put per live key when
// dead entries dominate. Same crash argument as the heap: the old journal
// replays to the identical map, so losing the rename is harmless.
func (b *DiskBackend) maybeCompactKVLocked() {
	if b.kvDead < b.kvCompactMin || b.kvDead <= b.kvLive {
		return
	}
	tmpName := joinPath(b.dir, kvFileName+tmpSuffix)
	tf, err := b.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	abort := func() {
		tf.Close()
		_ = b.fsys.Remove(tmpName)
	}
	keys := make([]string, 0, len(b.kv))
	for k := range b.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	off := int64(0)
	buf := encodeFileHeader(kvMagic, 0, 0)
	sizes := make(map[string]int64, len(keys))
	for _, k := range keys {
		body := encodeKVBody(kvKindPut, k, b.kv[k].value)
		sizes[k] = int64(recordFrameSize + len(body))
		buf = encodeRecord(buf, body)
		if len(buf) >= 1<<20 {
			if _, err := tf.WriteAt(buf, off); err != nil {
				abort()
				return
			}
			off += int64(len(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := tf.WriteAt(buf, off); err != nil {
			abort()
			return
		}
		off += int64(len(buf))
	}
	if err := tf.Sync(); err != nil {
		abort()
		return
	}
	if err := b.fsys.Rename(tmpName, joinPath(b.dir, kvFileName)); err != nil {
		abort()
		return
	}
	_ = b.fsys.SyncDir(b.dir)
	b.kvf.Close()
	b.forgetFile(b.kvf)
	b.kvf = tf
	b.kvSize = off
	b.kvLive = 0
	b.kvDead = 0
	for k, e := range b.kv {
		e.recSize = sizes[k]
		b.kv[k] = e
		b.kvLive += e.recSize
	}
}

// ---- recovery log ----

func segName(base uint64) string {
	return segPrefix + fmt.Sprintf("%020d", base) + segSuffix
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	base, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// errSegDamaged marks structural damage in a log segment (sub-header file,
// bad header, corrupt mid-file record): the segment and its successors are
// an orphaned suffix that recovery drops. Any *other* error — a transient
// open failure, fd exhaustion, a read error — must fail the open loudly
// instead: deleting acknowledged log records over an EIO blip is how
// recovery tools destroy the data they exist to protect.
var errSegDamaged = errors.New("storage: damaged log segment")

// openLog rebuilds the segment chain with prefix semantics: segments are
// kept while each one is intact and contiguous with its predecessor; the
// first structurally broken or gapped segment and everything after it are
// dropped. With honest fsyncs only the *last* segment can ever be torn (a
// segment's header is synced before its first record, and a successor is
// only created after the predecessor filled), so nothing acknowledged is
// lost; the drop path only fires on damage that already lost data — exactly
// the point-in-time prefix a write-ahead log must recover to.
// Segment replay — scanning every record frame and checking its crc32c —
// dominates recovery time on a long log, and segments are independent
// files, so the scan fans out across b.recoveryWorkers (pFSCK-style);
// only the chain-prefix decision below stays sequential.
func (b *DiskBackend) openLog(names []string) error {
	var bases []uint64
	for _, n := range names {
		if base, ok := parseSegName(n); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	segs := make([]*segment, len(bases))
	segErrs := make([]error, len(bases))
	if workers := b.recoveryWorkers; workers > 1 && len(bases) > 1 {
		if workers > len(bases) {
			workers = len(bases)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					segs[i], segErrs[i] = b.openSegment(bases[i])
				}
			}()
		}
		for i := range bases {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i, base := range bases {
			segs[i], segErrs[i] = b.openSegment(base)
		}
	}
	closeRest := func(from int) {
		for j := from; j < len(segs); j++ {
			if segs[j] != nil {
				segs[j].f.Close()
			}
		}
	}
	for i := range bases {
		seg, err := segs[i], segErrs[i]
		if err != nil && !errors.Is(err, errSegDamaged) {
			closeRest(i)
			return err
		}
		gap := err == nil && len(b.segs) > 0 &&
			b.segs[len(b.segs)-1].base+uint64(len(b.segs[len(b.segs)-1].offs)) != seg.base
		if err != nil || gap {
			// Orphaned suffix: remove it so the next open sees a clean chain.
			closeRest(i)
			for _, orphan := range bases[i:] {
				_ = b.fsys.Remove(joinPath(b.dir, segName(orphan)))
			}
			break
		}
		b.segs = append(b.segs, seg)
	}
	if len(b.segs) == 0 {
		b.lastSeq = b.truncBefore - 1
	} else {
		last := b.segs[len(b.segs)-1]
		b.lastSeq = last.base + uint64(len(last.offs)) - 1
		if b.lastSeq < b.truncBefore-1 {
			b.lastSeq = b.truncBefore - 1
		}
	}
	// A crash between the meta update and segment deletion can leave whole
	// segments below the truncation point; finish the job. In logheap mode
	// the retention gate is only installed after the heap index is rebuilt,
	// so the open-time pass is deferred until then — dropping a segment here
	// could delete live bucket versions the WAL no longer needs.
	if !b.keepDeadSegs {
		b.dropDeadSegmentsLocked()
	}
	return nil
}

// openSegment opens one segment, truncating a torn tail at the first invalid
// record. Structural damage (sub-header file, bad header, corrupt mid-file
// record) returns an error wrapping errSegDamaged — the caller drops the
// segment as an orphan; every other failure is a real I/O error and
// propagates as-is.
func (b *DiskBackend) openSegment(base uint64) (*segment, error) {
	name := segName(base)
	f, err := b.fsys.OpenFile(joinPath(b.dir, name), os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log segment %s: %w", name, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segment{f: f, name: name, base: base}
	fail := func(err error) (*segment, error) {
		f.Close()
		return nil, err
	}
	damaged := func(format string, args ...any) (*segment, error) {
		f.Close()
		return nil, fmt.Errorf("%w: %s", errSegDamaged, fmt.Sprintf(format, args...))
	}
	if size < fileHeaderSize {
		return damaged("segment %s truncated below its header", name)
	}
	hdr, err := readFileRange(f, 0, fileHeaderSize)
	if err != nil {
		return fail(err)
	}
	_, storedBase, err := decodeFileHeader(hdr, segMagic)
	if err != nil {
		return damaged("segment %s: %v", name, err)
	}
	if storedBase != base {
		return damaged("segment %s header claims base %d", name, storedBase)
	}
	sc := newRecordScanner(f, fileHeaderSize, size)
	off := int64(fileHeaderSize)
	for off < size {
		_, total, err := sc.next()
		if err != nil {
			if errors.Is(err, errTornRecord) {
				break
			}
			if errors.Is(err, errBadRecord) {
				return damaged("segment %s at offset %d: %v", name, off, err)
			}
			return fail(fmt.Errorf("storage: log segment %s at offset %d: %w", name, off, err))
		}
		seg.offs = append(seg.offs, off)
		seg.lens = append(seg.lens, int32(total))
		off += int64(total)
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	seg.size = off
	return seg, nil
}

// Append implements LogStore: the record's covering fsync — issued inline,
// or by the shared commit group — returns before the sequence number does.
// The log is the recovery unit, so an acknowledged append must survive any
// crash. The log lives on its own lock (logMu) and its own files, so log
// appends and bucket-heap writes inside one epoch boundary overlap instead
// of serializing on a shared mutex.
func (b *DiskBackend) Append(record []byte) (uint64, error) {
	res, err := b.appendLogUnsynced(record)
	if err != nil {
		return 0, err
	}
	// The lock is already dropped before standing on the barrier, so appends
	// from other namespaces/shards coalesce into (and parallelize within)
	// one flush wave. The sequence number is only returned after a flush
	// covering this record's write ticket lands, so the ack contract holds.
	if err := b.barrierTicket(res.f, res.ticket); err != nil {
		return 0, b.wedge(err)
	}
	return res.seq, nil
}

// AppendNoSync implements LogBatcher: the record is written to the active
// segment but its durability waits for the next SyncLog. Until then the
// sequence number is provisional — a crash may lose the record (and recovery
// will trim it with the torn tail), which is exactly why the LogStore ack
// contract moves to SyncLog's return.
func (b *DiskBackend) AppendNoSync(record []byte) (uint64, error) {
	res, err := b.appendLogUnsynced(record)
	if err != nil {
		return 0, err
	}
	b.notePending(res.f, res.ticket)
	return res.seq, nil
}

// SyncLog implements LogBatcher: every append deferred since the last call
// becomes durable. Usually one barrier; two only when appends straddled a
// segment rotation (each file needs its own flush — the outgoing segment's
// tail is not covered by the new segment's barrier).
func (b *DiskBackend) SyncLog() error {
	b.pendMu.Lock()
	pend := b.pendLog
	b.pendLog = nil
	b.pendMu.Unlock()
	for _, p := range pend {
		if err := b.barrierTicket(p.f, p.ticket); err != nil {
			return b.wedge(err)
		}
	}
	return nil
}

// notePending records a deferred append's barrier obligation.
func (b *DiskBackend) notePending(f vfile, ticket uint64) {
	b.pendMu.Lock()
	if n := len(b.pendLog); n > 0 && b.pendLog[n-1].f == f {
		if ticket > b.pendLog[n-1].ticket {
			b.pendLog[n-1].ticket = ticket
		}
	} else {
		b.pendLog = append(b.pendLog, fileTicket{f: f, ticket: ticket})
	}
	b.pendMu.Unlock()
}

// logAppendRes describes where one framed record landed in the physical
// log: its sequence number, the segment (by base) and byte offset of the
// frame, the framed length, and the file+ticket the caller stands on (or
// defers) for durability. The location fields are what lets the logheap
// index point straight back into the log.
type logAppendRes struct {
	seq     uint64
	segBase uint64
	off     int64
	n       int
	f       vfile
	ticket  uint64
}

// appendLogUnsynced writes one framed record to the active segment and
// stamps it, leaving durability to the caller's barrierTicket on the
// returned file. It is the seam the shared group log builds on: several
// shards' streams append into one physical log here and then stand on the
// same file's flush wave together.
func (b *DiskBackend) appendLogUnsynced(record []byte) (logAppendRes, error) {
	b.logMu.Lock()
	defer b.logMu.Unlock()
	if err := b.checkUsable(); err != nil {
		return logAppendRes{}, err
	}
	seg, err := b.activeSegmentLocked()
	if err != nil {
		return logAppendRes{}, err
	}
	framed := encodeRecord(nil, record)
	off := seg.size
	if _, err := seg.f.WriteAt(framed, off); err != nil {
		return logAppendRes{}, b.wedge(err)
	}
	seg.offs = append(seg.offs, off)
	seg.lens = append(seg.lens, int32(len(framed)))
	seg.size += int64(len(framed))
	b.lastSeq++
	return logAppendRes{
		seq:     b.lastSeq,
		segBase: seg.base,
		off:     off,
		n:       len(framed),
		f:       seg.f,
		ticket:  b.stamp(seg.f),
	}, nil
}

// activeSegmentLocked returns the tail segment, rolling to a fresh file once
// the current one exceeds segMaxBytes.
func (b *DiskBackend) activeSegmentLocked() (*segment, error) {
	if n := len(b.segs); n > 0 && b.segs[n-1].size < b.segMaxBytes {
		return b.segs[n-1], nil
	}
	base := b.lastSeq + 1
	name := segName(base)
	f, err := b.fsys.OpenFile(joinPath(b.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, b.wedge(err)
	}
	hdr := encodeFileHeader(segMagic, 0, base)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, b.wedge(err)
	}
	// Reserve the whole segment up front so per-record appends never
	// allocate blocks — the per-barrier fsync then flushes data, not
	// allocation metadata. The header sync below also settles this.
	preallocate(f, 0, b.segMaxBytes)
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, b.wedge(err)
	}
	if err := b.fsys.SyncDir(b.dir); err != nil {
		f.Close()
		return nil, b.wedge(err)
	}
	seg := &segment{f: f, name: name, base: base, size: fileHeaderSize}
	b.segs = append(b.segs, seg)
	return seg, nil
}

// Scan implements LogStore: all records with sequence number >= from, in
// order. Each overlapping segment is served with one ranged pread.
func (b *DiskBackend) Scan(from uint64) ([][]byte, error) {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	if from < b.truncBefore {
		from = b.truncBefore
	}
	var out [][]byte
	err := b.scanLogLocked(from, func(_, _ uint64, _ int64, rec []byte) error {
		out = append(out, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanLog streams every retained record with sequence number >= from, in
// order, passing each record's physical location alongside its body. Unlike
// Scan it does NOT clamp to the WAL truncation point: in logheap mode the
// retention gate keeps whole segments below truncBefore alive because they
// still hold live bucket versions, and index replay must see them. The body
// slice is only valid for the duration of the callback.
func (b *DiskBackend) scanLog(from uint64, fn func(seq, segBase uint64, off int64, rec []byte) error) error {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	return b.scanLogLocked(from, fn)
}

func (b *DiskBackend) scanLogLocked(from uint64, fn func(seq, segBase uint64, off int64, rec []byte) error) error {
	for _, seg := range b.segs {
		n := uint64(len(seg.offs))
		if n == 0 || seg.base+n <= from {
			continue
		}
		start := 0
		if from > seg.base {
			start = int(from - seg.base)
		}
		lo := seg.offs[start]
		buf, err := readFileRange(seg.f, lo, int(seg.size-lo))
		if err != nil {
			return err
		}
		seq := seg.base + uint64(start)
		off := lo
		for rest := buf; len(rest) > 0; {
			body, total, err := decodeRecord(rest)
			if err != nil {
				return fmt.Errorf("storage: log segment %s: %w", seg.name, err)
			}
			if err := fn(seq, seg.base, off, body); err != nil {
				return err
			}
			seq++
			off += int64(total)
			rest = rest[total:]
		}
	}
	return nil
}

// readLogRange serves one ranged pread out of a retained segment, addressed
// by the (segBase, offset) an appendLogUnsynced or scanLog reported. Every
// retained record's crc32c was verified when its segment was opened (or the
// bytes were written by this process), so the logheap read path slices the
// returned frame without re-checking.
func (b *DiskBackend) readLogRange(segBase uint64, off int64, n int) ([]byte, error) {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	i := sort.Search(len(b.segs), func(i int) bool { return b.segs[i].base >= segBase })
	if i >= len(b.segs) || b.segs[i].base != segBase {
		return nil, fmt.Errorf("storage: log segment with base %d is gone", segBase)
	}
	seg := b.segs[i]
	if off < int64(fileHeaderSize) || n < 0 || off+int64(n) > seg.size {
		return nil, fmt.Errorf("storage: read [%d,+%d) outside log segment %s", off, n, seg.name)
	}
	return readFileRange(seg.f, off, n)
}

// Truncate implements LogStore: the truncation point lands durably in the
// meta file first, then whole segments below it are deleted. A crash in
// between just leaves dead segments for the next open to finish removing.
func (b *DiskBackend) Truncate(before uint64) error {
	b.logMu.Lock()
	defer b.logMu.Unlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	if before > b.lastSeq+1 {
		before = b.lastSeq + 1
	}
	if before <= b.truncBefore {
		return nil
	}
	old := b.truncBefore
	b.truncBefore = before
	if err := b.writeMeta(); err != nil {
		b.truncBefore = old
		// The rename is atomic — the on-disk meta is either the old or the
		// new truncation point, both consistent — but we no longer know
		// which, so the in-memory view may diverge: fail stop.
		return b.wedge(err)
	}
	b.dropDeadSegmentsLocked()
	return nil
}

// setSegRetain installs the logheap retention gate: a function returning
// the first physical sequence number that must stay on disk regardless of
// the WAL truncation point (live bucket versions, and records above the
// index checkpoint watermark). The gate is called while logMu is held, so
// it must only read atomics — never take a lock that can itself wait on
// the log (lock order is heap mu → shared log mu → logMu).
func (b *DiskBackend) setSegRetain(gate func() uint64) {
	b.logMu.Lock()
	b.segRetain = gate
	b.logMu.Unlock()
}

// dropDeadSegments re-runs dead-segment collection outside any truncation;
// the logheap GC pokes it after the retention gate rises.
func (b *DiskBackend) dropDeadSegments() {
	b.logMu.Lock()
	if b.checkUsable() == nil {
		b.dropDeadSegmentsLocked()
	}
	b.logMu.Unlock()
}

// dropDeadSegmentsLocked removes segments whose every record is below both
// the truncation point and the logheap retention gate. The tail segment
// survives even when fully dead so the next Append can keep extending it.
func (b *DiskBackend) dropDeadSegmentsLocked() {
	keep := b.truncBefore
	if b.segRetain != nil {
		if g := b.segRetain(); g < keep {
			keep = g
		}
	}
	drop := func(seg *segment) {
		seg.f.Close()
		b.forgetFile(seg.f)
		_ = b.fsys.Remove(joinPath(b.dir, seg.name)) // reopen filters it anyway
	}
	for len(b.segs) > 1 {
		seg := b.segs[0]
		if seg.base+uint64(len(seg.offs)) > keep {
			break
		}
		drop(seg)
		b.segs = b.segs[1:]
	}
	if len(b.segs) == 1 {
		seg := b.segs[0]
		if seg.base+uint64(len(seg.offs)) <= keep {
			drop(seg)
			b.segs = nil
		}
	}
}

// activeSegBase returns the base of the tail segment — the one still taking
// appends; the logheap GC only considers strictly older segments as
// victims. Zero when the log holds no segments.
func (b *DiskBackend) activeSegBase() uint64 {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if len(b.segs) == 0 {
		return 0
	}
	return b.segs[len(b.segs)-1].base
}

// gcCandidate reports the oldest retained segment when it is not the active
// tail; ok=false means there is nothing a copy-forward pass could free.
func (b *DiskBackend) gcCandidate() (base uint64, ok bool) {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if len(b.segs) < 2 {
		return 0, false
	}
	return b.segs[0].base, true
}

// truncFloor returns the WAL truncation point (first retained WAL
// sequence).
func (b *DiskBackend) truncFloor() uint64 {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	return b.truncBefore
}

// LastSeq implements LogStore.
func (b *DiskBackend) LastSeq() (uint64, error) {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return 0, err
	}
	return b.lastSeq, nil
}
