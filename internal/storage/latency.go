package storage

import (
	"runtime"
	"sync"
	"time"
)

// Profile models a storage backend's latency and concurrency behaviour.
// These correspond to the four backends of the paper's Figure 10:
//
//	dummy      — local, zero latency (measures proxy CPU)
//	server     — remote in-memory server, 0.3 ms ping
//	server WAN — remote in-memory server, 10 ms ping
//	dynamo     — DynamoDB-like: 1 ms reads, 3 ms writes, limited parallel
//	             request slots (models its blocking HTTP client)
type Profile struct {
	Name string
	// Read and Write are the per-request round-trip latencies. A request is
	// one storage call: a scalar op or a whole vectored op. This is what
	// makes the latency model honest for batched I/O — a vectored call pays
	// the round trip once, not once per element.
	Read  time.Duration
	Write time.Duration
	// ReadPerSlot and WritePerBucket are per-item service times charged on
	// top of the round trip: a vectored read of n slots costs
	// Read + n*ReadPerSlot, a vectored write-back of b buckets costs
	// Write + b*WritePerBucket, and scalar ops carry one item each. They
	// keep vectored calls from being modeled as free.
	ReadPerSlot    time.Duration
	WritePerBucket time.Duration
	// MaxConcurrent caps in-flight requests (0 means unlimited). A vectored
	// call occupies a single request slot.
	MaxConcurrent int
}

// Canonical profiles. Round trips follow §11 of the paper; per-item service
// times model the storage-side cost of carrying more items per request
// (in-memory server lookups, DynamoDB batch item charges).
var (
	ProfileDummy     = Profile{Name: "dummy"}
	ProfileServer    = Profile{Name: "server", Read: 300 * time.Microsecond, Write: 300 * time.Microsecond, ReadPerSlot: 2 * time.Microsecond, WritePerBucket: 10 * time.Microsecond}
	ProfileServerWAN = Profile{Name: "server WAN", Read: 10 * time.Millisecond, Write: 10 * time.Millisecond, ReadPerSlot: 2 * time.Microsecond, WritePerBucket: 10 * time.Microsecond}
	ProfileDynamo    = Profile{Name: "dynamo", Read: 1 * time.Millisecond, Write: 3 * time.Millisecond, ReadPerSlot: 5 * time.Microsecond, WritePerBucket: 25 * time.Microsecond, MaxConcurrent: 128}
)

// Profiles lists the canonical profiles in the order the paper plots them.
func Profiles() []Profile {
	return []Profile{ProfileDummy, ProfileServer, ProfileServerWAN, ProfileDynamo}
}

// Scaled returns a copy of the profile with latencies multiplied by factor.
// The benchmark harness uses factors < 1 to keep paper-scale experiments
// CI-friendly while preserving latency ratios between backends.
func (p Profile) Scaled(factor float64) Profile {
	q := p
	q.Read = time.Duration(float64(p.Read) * factor)
	q.Write = time.Duration(float64(p.Write) * factor)
	q.ReadPerSlot = time.Duration(float64(p.ReadPerSlot) * factor)
	q.WritePerBucket = time.Duration(float64(p.WritePerBucket) * factor)
	return q
}

// Latency wraps a Backend, injecting the profile's per-operation latency and
// concurrency cap. Sleeps happen outside the inner backend's locks, so
// independent operations overlap exactly as they would against a remote
// server with the given round-trip time.
type Latency struct {
	inner Backend
	prof  Profile
	slots chan struct{} // nil when unlimited
	group *LatencyGroup // nil: every durability op pays its own round trip
}

var _ Backend = (*Latency)(nil)

// WithLatency wraps inner with the given profile.
func WithLatency(inner Backend, prof Profile) *Latency {
	l := &Latency{inner: inner, prof: prof}
	if prof.MaxConcurrent > 0 {
		l.slots = make(chan struct{}, prof.MaxConcurrent)
	}
	return l
}

// WithLatencyGroup wraps inner like WithLatency, but routes the durability
// round trips (CommitEpoch, RollbackTo, Append, Put, Delete) through a shared
// LatencyGroup: wrappers sharing one group model shards whose fsync barriers
// coalesce in a commit group, so a wave of concurrent commits is priced as
// ONE injected round trip shared across shards — not one per shard. Without
// this, a mem-vs-disk comparison at N shards would overcharge the mem side N×
// for a barrier the disk side pays once.
func WithLatencyGroup(inner Backend, prof Profile, group *LatencyGroup) *Latency {
	l := WithLatency(inner, prof)
	l.group = group
	return l
}

// LatencyGroup coalesces injected durability delays across the Latency
// wrappers sharing it, mirroring CommitGroup's flush waves: the first caller
// of a wave pays the full round trip, callers arriving while that wave is in
// flight ride it and return when it lands.
type LatencyGroup struct {
	mu   sync.Mutex
	wave chan struct{} // non-nil while a wave's delay is being paid
}

// NewLatencyGroup returns an empty group.
func NewLatencyGroup() *LatencyGroup { return &LatencyGroup{} }

func (g *LatencyGroup) ride(l *Latency, d time.Duration) {
	g.mu.Lock()
	if wave := g.wave; wave != nil {
		g.mu.Unlock()
		<-wave
		return
	}
	wave := make(chan struct{})
	g.wave = wave
	g.mu.Unlock()
	l.delay(d)
	g.mu.Lock()
	g.wave = nil
	g.mu.Unlock()
	close(wave)
}

// syncDelay prices one durability barrier: through the shared group when the
// wrapper has one, standalone otherwise.
func (l *Latency) syncDelay(d time.Duration) {
	if l.group != nil {
		l.group.ride(l, d)
		return
	}
	l.delay(d)
}

// Profile returns the wrapper's profile.
func (l *Latency) Profile() Profile { return l.prof }

func (l *Latency) acquire() func() {
	if l.slots == nil {
		return func() {}
	}
	l.slots <- struct{}{}
	return func() { <-l.slots }
}

// sleepGranularity is the portion of a delay left to a calibrated
// spin-wait: time.Sleep on stock Linux kernels rounds small sleeps up to
// roughly a tick (~1ms), which would erase the difference between the
// "server" (0.3ms) and "server WAN" (10ms) profiles.
const sleepGranularity = 1500 * time.Microsecond

func (l *Latency) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > sleepGranularity {
		time.Sleep(d - sleepGranularity)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

func (l *Latency) ReadSlot(bucket, slot int) ([]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read + l.prof.ReadPerSlot)
	return l.inner.ReadSlot(bucket, slot)
}

// ReadSlots charges one round trip for the whole vector plus per-slot
// service time, occupying a single concurrency slot: the vectored call is
// one request on the wire.
func (l *Latency) ReadSlots(refs []SlotRef) ([][]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read + time.Duration(len(refs))*l.prof.ReadPerSlot)
	return l.inner.ReadSlots(refs)
}

func (l *Latency) ReadBucket(bucket int) ([][]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.ReadBucket(bucket)
}

func (l *Latency) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write + l.prof.WritePerBucket)
	return l.inner.WriteBucket(bucket, epoch, slots)
}

// WriteBuckets charges one round trip for the whole write-back vector plus
// per-bucket service time, occupying a single concurrency slot.
func (l *Latency) WriteBuckets(writes []BucketWrite) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write + time.Duration(len(writes))*l.prof.WritePerBucket)
	return l.inner.WriteBuckets(writes)
}

func (l *Latency) CommitEpoch(epoch uint64) error {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	return l.inner.CommitEpoch(epoch)
}

func (l *Latency) RollbackTo(epoch uint64) error {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	return l.inner.RollbackTo(epoch)
}

func (l *Latency) NumBuckets() (int, error) {
	return l.inner.NumBuckets()
}

func (l *Latency) Get(key string) ([]byte, bool, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.Get(key)
}

func (l *Latency) Put(key string, value []byte) error {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	return l.inner.Put(key, value)
}

func (l *Latency) Delete(key string) error {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	return l.inner.Delete(key)
}

func (l *Latency) Append(record []byte) (uint64, error) {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	return l.inner.Append(record)
}

// AppendNoSync implements LogBatcher: a deferred append models a pipelined,
// unacknowledged send — no round trip is charged until the SyncLog barrier.
func (l *Latency) AppendNoSync(record []byte) (uint64, error) {
	if lb, ok := l.inner.(LogBatcher); ok {
		return lb.AppendNoSync(record)
	}
	return l.inner.Append(record)
}

// SyncLog implements LogBatcher: the durability barrier is where the round
// trip is paid — once per wave when wrappers share a LatencyGroup, exactly
// how a commit group prices a coalesced fsync.
func (l *Latency) SyncLog() error {
	release := l.acquire()
	defer release()
	l.syncDelay(l.prof.Write)
	if lb, ok := l.inner.(LogBatcher); ok {
		return lb.SyncLog()
	}
	return nil
}

func (l *Latency) Scan(from uint64) ([][]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.Scan(from)
}

func (l *Latency) Truncate(before uint64) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.Truncate(before)
}

func (l *Latency) LastSeq() (uint64, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.LastSeq()
}

func (l *Latency) Close() error { return l.inner.Close() }
