package storage

import (
	"runtime"
	"time"
)

// Profile models a storage backend's latency and concurrency behaviour.
// These correspond to the four backends of the paper's Figure 10:
//
//	dummy      — local, zero latency (measures proxy CPU)
//	server     — remote in-memory server, 0.3 ms ping
//	server WAN — remote in-memory server, 10 ms ping
//	dynamo     — DynamoDB-like: 1 ms reads, 3 ms writes, limited parallel
//	             request slots (models its blocking HTTP client)
type Profile struct {
	Name string
	// Read and Write are the one-way request latencies injected per
	// operation.
	Read  time.Duration
	Write time.Duration
	// MaxConcurrent caps in-flight operations (0 means unlimited).
	MaxConcurrent int
}

// Canonical profiles. Latencies follow §11 of the paper.
var (
	ProfileDummy     = Profile{Name: "dummy"}
	ProfileServer    = Profile{Name: "server", Read: 300 * time.Microsecond, Write: 300 * time.Microsecond}
	ProfileServerWAN = Profile{Name: "server WAN", Read: 10 * time.Millisecond, Write: 10 * time.Millisecond}
	ProfileDynamo    = Profile{Name: "dynamo", Read: 1 * time.Millisecond, Write: 3 * time.Millisecond, MaxConcurrent: 128}
)

// Profiles lists the canonical profiles in the order the paper plots them.
func Profiles() []Profile {
	return []Profile{ProfileDummy, ProfileServer, ProfileServerWAN, ProfileDynamo}
}

// Scaled returns a copy of the profile with latencies multiplied by factor.
// The benchmark harness uses factors < 1 to keep paper-scale experiments
// CI-friendly while preserving latency ratios between backends.
func (p Profile) Scaled(factor float64) Profile {
	q := p
	q.Read = time.Duration(float64(p.Read) * factor)
	q.Write = time.Duration(float64(p.Write) * factor)
	return q
}

// Latency wraps a Backend, injecting the profile's per-operation latency and
// concurrency cap. Sleeps happen outside the inner backend's locks, so
// independent operations overlap exactly as they would against a remote
// server with the given round-trip time.
type Latency struct {
	inner Backend
	prof  Profile
	slots chan struct{} // nil when unlimited
}

var _ Backend = (*Latency)(nil)

// WithLatency wraps inner with the given profile.
func WithLatency(inner Backend, prof Profile) *Latency {
	l := &Latency{inner: inner, prof: prof}
	if prof.MaxConcurrent > 0 {
		l.slots = make(chan struct{}, prof.MaxConcurrent)
	}
	return l
}

// Profile returns the wrapper's profile.
func (l *Latency) Profile() Profile { return l.prof }

func (l *Latency) acquire() func() {
	if l.slots == nil {
		return func() {}
	}
	l.slots <- struct{}{}
	return func() { <-l.slots }
}

// sleepGranularity is the portion of a delay left to a calibrated
// spin-wait: time.Sleep on stock Linux kernels rounds small sleeps up to
// roughly a tick (~1ms), which would erase the difference between the
// "server" (0.3ms) and "server WAN" (10ms) profiles.
const sleepGranularity = 1500 * time.Microsecond

func (l *Latency) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > sleepGranularity {
		time.Sleep(d - sleepGranularity)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

func (l *Latency) ReadSlot(bucket, slot int) ([]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.ReadSlot(bucket, slot)
}

func (l *Latency) ReadBucket(bucket int) ([][]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.ReadBucket(bucket)
}

func (l *Latency) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.WriteBucket(bucket, epoch, slots)
}

func (l *Latency) CommitEpoch(epoch uint64) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.CommitEpoch(epoch)
}

func (l *Latency) RollbackTo(epoch uint64) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.RollbackTo(epoch)
}

func (l *Latency) NumBuckets() (int, error) {
	return l.inner.NumBuckets()
}

func (l *Latency) Get(key string) ([]byte, bool, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.Get(key)
}

func (l *Latency) Put(key string, value []byte) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.Put(key, value)
}

func (l *Latency) Delete(key string) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.Delete(key)
}

func (l *Latency) Append(record []byte) (uint64, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.Append(record)
}

func (l *Latency) Scan(from uint64) ([][]byte, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.Scan(from)
}

func (l *Latency) Truncate(before uint64) error {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Write)
	return l.inner.Truncate(before)
}

func (l *Latency) LastSeq() (uint64, error) {
	release := l.acquire()
	defer release()
	l.delay(l.prof.Read)
	return l.inner.LastSeq()
}

func (l *Latency) Close() error { return l.inner.Close() }
