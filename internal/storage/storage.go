// Package storage implements Obladi's untrusted cloud-storage substrate.
//
// The storage server is honest-but-curious: it stores encrypted ORAM buckets,
// a plain key-value namespace (used only by the non-private NoPriv baseline),
// and the recovery unit's write-ahead log. Buckets are shadow-paged (§8 of the
// paper): every write installs a new version tagged with the epoch that
// produced it, so the proxy can revert the whole tree to the last committed
// epoch after a crash simply by discarding newer versions.
//
// The package also provides the latency-profile wrappers used throughout the
// paper's evaluation (dummy / server / server WAN / dynamo), a trace recorder,
// and an invariant checker that enforces Ring ORAM's bucket invariant from the
// adversary's vantage point.
package storage

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrNoSuchBucket is returned for out-of-range bucket indices.
	ErrNoSuchBucket = errors.New("storage: no such bucket")
	// ErrNoSuchSlot is returned for out-of-range slot indices.
	ErrNoSuchSlot = errors.New("storage: no such slot")
	// ErrClosed is returned by operations on a closed backend.
	ErrClosed = errors.New("storage: backend closed")
	// ErrFenced is returned for mutating operations issued through a fence
	// view whose generation has been superseded (see Fenceable): a newer
	// proxy generation owns the store, and the older generation must
	// fail-stop rather than corrupt the log or bucket tree it no longer owns.
	ErrFenced = errors.New("storage: fenced: a newer proxy generation owns this store")
)

// SlotRef addresses one physical slot of a bucket for a vectored read.
type SlotRef struct {
	Bucket int
	Slot   int
}

// BucketWrite is one bucket of a vectored write-back: a new version of the
// bucket tagged with the epoch that produced it.
type BucketWrite struct {
	Bucket int
	Epoch  uint64
	Slots  [][]byte
}

// BucketStore is the shadow-paged ORAM bucket tree.
//
// Buckets are addressed 0..NumBuckets()-1 in heap order (0 is the root).
// Every bucket version holds a fixed number of equally sized encrypted slots;
// the server never interprets slot contents.
type BucketStore interface {
	// ReadSlot returns the requested slot of the newest version of the
	// bucket. The returned slice must not be modified by the caller.
	ReadSlot(bucket, slot int) ([]byte, error)

	// ReadSlots performs a vectored read: one storage call returning the
	// requested slots in ref order (result[i] answers refs[i]). The whole
	// vector fails atomically at the call level — a single bad ref errors
	// the call (no partial results). The returned slices must not be
	// modified by the caller.
	ReadSlots(refs []SlotRef) ([][]byte, error)

	// WriteBuckets performs a vectored write-back: every bucket write of a
	// stage (typically one sealed epoch's deduplicated write-back set) in
	// one storage call. The store takes ownership of the slot slices. The
	// same per-bucket epoch-ordering rules as WriteBucket apply; writes are
	// installed in vector order and the call stops at the first failing
	// entry, so a mid-vector error may leave a prefix installed (shadow
	// paging makes that harmless: RollbackTo discards it).
	WriteBuckets(writes []BucketWrite) error

	// ReadBucket returns all slots of the newest version of the bucket.
	ReadBucket(bucket int) ([][]byte, error)

	// WriteBucket installs a new version of the bucket tagged with epoch.
	// The store takes ownership of the slot slices. Per bucket, writes
	// arrive in non-decreasing epoch order: the pipelined proxy keeps at
	// most two live (uncommitted) epochs — the sealed epoch a background
	// committer is flushing and its successor — and flushes them in epoch
	// order, so a lower-epoch write after a higher-epoch one can only be a
	// pipelining bug and implementations may reject it.
	WriteBucket(bucket int, epoch uint64, slots [][]byte) error

	// CommitEpoch makes every version tagged <= epoch durable and allows the
	// store to garbage-collect versions that are superseded within the
	// committed prefix.
	CommitEpoch(epoch uint64) error

	// RollbackTo discards all bucket versions tagged with an epoch > epoch.
	// It implements crash recovery's shadow-paging revert.
	RollbackTo(epoch uint64) error

	// NumBuckets reports the size of the tree.
	NumBuckets() (int, error)
}

// KVStore is the plain (non-oblivious) key-value namespace used by the
// NoPriv baseline. Obladi itself never calls it.
type KVStore interface {
	Get(key string) (value []byte, found bool, err error)
	Put(key string, value []byte) error
	Delete(key string) error
}

// LogStore is the recovery unit: an append-only, durable record log.
// Sequence numbers start at 1 and increase by one per Append.
type LogStore interface {
	Append(record []byte) (seq uint64, err error)
	// Scan returns all records with sequence number >= from, in order.
	Scan(from uint64) ([][]byte, error)
	// Truncate drops all records with sequence number < before.
	Truncate(before uint64) error
	LastSeq() (uint64, error)
}

// Backend is the full untrusted storage service: ORAM tree + recovery unit +
// baseline KV namespace.
type Backend interface {
	BucketStore
	KVStore
	LogStore
	Close() error
}

// LogBatcher is an optional LogStore capability that splits an append from
// its durability barrier: AppendNoSync writes the record without waiting for
// a flush, and a later SyncLog makes every deferred append durable at once.
// The point is barrier placement — a caller appending several records (or
// several shards appending into one shared physical log) can stand them all
// on ONE flush instead of paying one per record. A record's sequence number
// is assigned at append time, but the LogStore ack contract (an acknowledged
// record survives any crash) transfers to SyncLog's return.
//
// Stores without this capability simply keep Append's inline durability;
// callers probe with a type assertion and fall back.
type LogBatcher interface {
	AppendNoSync(record []byte) (seq uint64, err error)
	SyncLog() error
}

// EpochCommitBatcher is an optional BucketStore capability for stores whose
// epoch commit is a log record on the SAME append stream as the recovery
// log (the log-structured heap): CommitEpochNoSync appends and applies the
// commit but leaves its durability to the caller's next SyncLog, so N
// shards' epoch commits and the round's WAL records all stand on ONE fsync
// wave. Only stores that can guarantee the commit record is ordered AFTER
// the WAL commit record it depends on (prefix durability in one stream)
// may implement this — a store with a separate heap file must not, since
// deferring would let the heap commit become durable first.
//
// Callers probe with a type assertion and fall back to CommitEpoch's
// inline barrier.
type EpochCommitBatcher interface {
	CommitEpochNoSync(epoch uint64) error
	// CommitStream identifies the physical append stream the store's commit
	// records ride (comparable; same value ⟺ same stream). A sharded caller
	// must verify every shard reports the SAME stream before deferring the
	// round's barriers: the prefix durability that orders a shard's heap
	// commit after the coordinator's WAL commit record only exists within
	// one physical log. Shards on distinct streams fall back to inline
	// commits, where explicit barrier order supplies the same guarantee.
	CommitStream() any
}

// Fenceable is an optional Backend capability for proxy-generation fencing,
// the storage half of hot-standby failover (internal/replica). AcquireFence
// registers a new proxy generation with the store: the returned token is
// strictly greater than every token issued before, and the returned view is
// bound to it. Mutating operations (bucket writes, epoch commit/rollback, log
// append/truncate, KV writes) issued through a view whose token has been
// superseded fail with ErrFenced; reads stay unfenced (the store is untrusted
// and readable by anyone holding the wire anyway).
//
// The contract is the standard fencing one: an operation concurrent with an
// AcquireFence may be admitted as if it preceded the acquisition, but every
// mutating operation STARTED after AcquireFence returns on a stale view
// fails. A promoted standby therefore acquires its fence first and only then
// reads the log tail and rolls the tree back — anything a zombie primary
// slipped in before the fence is observed by that scan, and anything after
// it fails loudly (the proxy fail-stops on any boundary error).
//
// Backends without the capability (plain disk dirs opened in-process) simply
// do not fence; the remote Server fences at the wire for whatever backend it
// serves, which covers every multi-proxy deployment.
type Fenceable interface {
	AcquireFence() (view Backend, token uint64, err error)
}

func checkBucket(bucket, n int) error {
	if bucket < 0 || bucket >= n {
		return fmt.Errorf("%w: %d (have %d)", ErrNoSuchBucket, bucket, n)
	}
	return nil
}

// CloseAll closes every backend of a sharded deployment, returning the first
// error encountered.
func CloseAll(backends []Backend) error {
	var first error
	for _, b := range backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
