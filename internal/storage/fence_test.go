package storage

import (
	"errors"
	"testing"
)

// TestMemFence pins the in-process fencing contract: a newer acquisition
// fences every older view's mutations, reads stay open, and the raw backend
// (token 0) is never fenced — deployments that don't opt in are unaffected.
func TestMemFence(t *testing.T) {
	m := NewMemBackend(8)
	defer m.Close()

	v1, t1, err := m.AcquireFence()
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if _, err := v1.Append([]byte("a")); err != nil {
		t.Fatalf("append through live fence view: %v", err)
	}

	v2, t2, err := m.AcquireFence()
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if t2 <= t1 {
		t.Fatalf("tokens must strictly increase: %d then %d", t1, t2)
	}

	if _, err := v1.Append([]byte("b")); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale view append: got %v, want ErrFenced", err)
	}
	if err := v1.WriteBucket(0, 1, [][]byte{{1}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale view bucket write: got %v, want ErrFenced", err)
	}
	if err := v1.CommitEpoch(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale view commit: got %v, want ErrFenced", err)
	}
	if err := v1.RollbackTo(0); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale view rollback: got %v, want ErrFenced", err)
	}
	// Reads through the stale view keep working: the fenced-out generation
	// may still observe state while failing over, it just cannot change it.
	if _, err := v1.Scan(0); err != nil {
		t.Fatalf("stale view scan: %v", err)
	}
	if _, err := v1.LastSeq(); err != nil {
		t.Fatalf("stale view last-seq: %v", err)
	}

	if _, err := v2.Append([]byte("c")); err != nil {
		t.Fatalf("current view append: %v", err)
	}
	// The raw backend never acquired a fence and stays writable (token 0).
	if _, err := m.Append([]byte("raw")); err != nil {
		t.Fatalf("raw backend append: %v", err)
	}
	// Closing the stale view must not close the shared store.
	if err := v1.Close(); err != nil {
		t.Fatalf("stale view close: %v", err)
	}
	if _, err := v2.Append([]byte("d")); err != nil {
		t.Fatalf("append after stale view close: %v", err)
	}
}

// TestRemoteFence pins wire-level fencing: the server tracks the highest
// token per served backend, binds acquisitions to connections, and rejects
// mutations from superseded connections with an error that still satisfies
// errors.Is(err, ErrFenced) client-side.
func TestRemoteFence(t *testing.T) {
	srv, err := NewServer(NewMemBackend(8), "127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()

	primary, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer primary.Close()
	standby, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial standby: %v", err)
	}
	defer standby.Close()
	legacy, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial legacy: %v", err)
	}
	defer legacy.Close()

	pv, t1, err := primary.AcquireFence()
	if err != nil {
		t.Fatalf("primary fence: %v", err)
	}
	if _, err := pv.Append([]byte("a")); err != nil {
		t.Fatalf("primary append: %v", err)
	}

	sv, t2, err := standby.AcquireFence()
	if err != nil {
		t.Fatalf("standby fence: %v", err)
	}
	if t2 <= t1 {
		t.Fatalf("tokens must strictly increase: %d then %d", t1, t2)
	}

	if _, err := pv.Append([]byte("b")); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie append: got %v, want ErrFenced", err)
	}
	if err := pv.CommitEpoch(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie commit: got %v, want ErrFenced", err)
	}
	// The zombie can still read — promotion's log-tail top-up depends on
	// reads surviving a lost fence, and ciphertext was never secret from
	// the wire anyway.
	recs, err := pv.Scan(0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("zombie scan: %v (%d records)", err, len(recs))
	}

	if _, err := sv.Append([]byte("c")); err != nil {
		t.Fatalf("promoted append: %v", err)
	}
	// A connection that never fenced is a legacy client and stays writable.
	if _, err := legacy.Append([]byte("d")); err != nil {
		t.Fatalf("legacy append: %v", err)
	}
}
