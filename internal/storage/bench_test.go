package storage

import (
	"fmt"
	"testing"
)

// buildRecoveryStore populates dir with a bucket heap and a many-segment
// recovery log sized so that segment replay dominates a reopen.
func buildRecoveryStore(tb testing.TB, dir string) {
	tb.Helper()
	b, err := OpenDiskBackendOpts(dir, 64, DiskOptions{SegMaxBytes: 32 << 10})
	if err != nil {
		tb.Fatal(err)
	}
	payload := make([]byte, 512)
	for e := uint64(1); e <= 16; e++ {
		var writes []BucketWrite
		for bucket := 0; bucket < 64; bucket++ {
			writes = append(writes, BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{payload, payload}})
		}
		if err := b.WriteBuckets(writes); err != nil {
			tb.Fatal(err)
		}
		for r := 0; r < 64; r++ {
			if _, err := b.Append(payload); err != nil {
				tb.Fatal(err)
			}
		}
		if err := b.CommitEpoch(e); err != nil {
			tb.Fatal(err)
		}
	}
	if len(b.segs) < 8 {
		tb.Fatalf("recovery store built only %d segments; replay would not dominate", len(b.segs))
	}
	if err := b.Close(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkRecovery measures a full reopen — heap replay, KV replay and
// segmented log replay with crc verification — at 1, 2 and 4 recovery
// workers. Workers == 1 is the serial baseline; higher counts fan the
// per-segment scan out pFSCK-style.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	buildRecoveryStore(b, dir)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := OpenDiskBackendOpts(dir, 0, DiskOptions{RecoveryWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteReadSlot measures one pipelined TCP slot read.
func BenchmarkRemoteReadSlot(b *testing.B) {
	backend := NewMemBackend(16)
	for i := 0; i < 16; i++ {
		if err := backend.WriteBucket(i, 1, [][]byte{make([]byte, 256)}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadSlot(i%16, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteReadSlotParallel measures pipelining headroom.
func BenchmarkRemoteReadSlotParallel(b *testing.B) {
	backend := NewMemBackend(16)
	for i := 0; i < 16; i++ {
		if err := backend.WriteBucket(i, 1, [][]byte{make([]byte, 256)}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.ReadSlot(i%16, 0); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
