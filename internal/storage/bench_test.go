package storage

import "testing"

// BenchmarkRemoteReadSlot measures one pipelined TCP slot read.
func BenchmarkRemoteReadSlot(b *testing.B) {
	backend := NewMemBackend(16)
	for i := 0; i < 16; i++ {
		if err := backend.WriteBucket(i, 1, [][]byte{make([]byte, 256)}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadSlot(i%16, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteReadSlotParallel measures pipelining headroom.
func BenchmarkRemoteReadSlotParallel(b *testing.B) {
	backend := NewMemBackend(16)
	for i := 0; i < 16; i++ {
		if err := backend.WriteBucket(i, 1, [][]byte{make([]byte, 256)}); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.ReadSlot(i%16, 0); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
