package storage

import (
	"fmt"
	"sync"
	"time"
)

// This file holds the group-commit scheduler: a per-data-dir fsync coalescer
// shared by every DiskBackend shard rooted under one directory. Shards append
// their commit records (and log/KV records) unsynced and then stand on a
// Barrier; the scheduler runs one syncer per file with pending barriers, so
// every barrier that lands on a file while its fsync is in flight (or within
// the growth window) rides the next fsync of that file together — and fsyncs
// of *different* files never wait on one another. The ack contract is
// unchanged: nothing is acknowledged before its covering barrier lands; what
// moves is how many acks one fsync covers.

// GroupConfig tunes a CommitGroup.
type GroupConfig struct {
	// Window is how long a file's syncer waits after the first pending
	// barrier for more to pile on before fsyncing. Zero still coalesces:
	// barriers arriving while the file's fsync is in flight batch into its
	// next round.
	Window time.Duration
	// MaxBatch fsyncs immediately once this many barriers are pending on one
	// file, without waiting out the window (0 = DefaultGroupMaxBatch).
	MaxBatch int
}

// DefaultGroupWindow is zero: in-flight coalescing alone captures the
// amortization (concurrent committers pile onto the fsync already running)
// without taxing a lone committer's latency. Deployments whose shards reach
// epoch boundaries in loose lockstep can widen it to trade commit latency
// for bigger waves.
const DefaultGroupWindow time.Duration = 0

// DefaultGroupMaxBatch caps how many barriers one fsync round gathers.
const DefaultGroupMaxBatch = 64

// GroupStats counts a CommitGroup's work. Barriers/Syncs is the
// amortization factor the scheduler achieved.
type GroupStats struct {
	Barriers uint64        // barrier requests served
	Syncs    uint64        // fsyncs issued
	Waves    uint64        // fsync rounds (== Syncs: one round syncs one file once)
	SyncTime time.Duration // cumulative time spent inside fsync calls
}

type groupReq struct {
	ticket uint64
	done   chan error
}

// fileSync is the per-file barrier queue; its syncer goroutine lives exactly
// as long as the file has pending barriers. The entry itself persists until
// Forget — the ticket counters must outlive idle gaps, or a ticket stamped
// before a retire could never be matched again.
type fileSync struct {
	pending []*groupReq
	written uint64        // write tickets issued for this file (see Wrote)
	acked   uint64        // highest ticket covered by a *successful* fsync
	syncing bool          // a runFile goroutine is serving this file
	arrived chan struct{} // capacity 1: "pending grew" edge signal
}

// CommitGroup is the shared fsync scheduler. Each file with pending barriers
// gets a syncer goroutine; Close drains every accepted barrier before
// returning.
type CommitGroup struct {
	mu     sync.Mutex
	files  map[vfile]*fileSync
	closed bool
	stats  GroupStats

	wg       sync.WaitGroup
	window   time.Duration
	maxBatch int
}

// NewCommitGroup starts a scheduler with the given config.
func NewCommitGroup(cfg GroupConfig) *CommitGroup {
	g := &CommitGroup{
		files:    make(map[vfile]*fileSync),
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
	}
	if g.maxBatch <= 0 {
		g.maxBatch = DefaultGroupMaxBatch
	}
	return g
}

// Wrote records that the caller just finished writing bytes to f and returns
// a ticket for them. A later BarrierTicket with that ticket is satisfied by
// any fsync of f *issued* after Wrote returned — including one already in
// flight when the barrier arrives, which is the classic group-commit ride:
// the flush was issued after the bytes landed, so it covers them.
func (g *CommitGroup) Wrote(f vfile) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	fs := g.fileLocked(f)
	fs.written++
	return fs.written
}

// fileLocked returns (creating if needed) f's queue. A queue created here
// with no pending barriers has no syncer yet; Barrier spawns one on demand.
func (g *CommitGroup) fileLocked(f vfile) *fileSync {
	fs := g.files[f]
	if fs == nil {
		fs = &fileSync{arrived: make(chan struct{}, 1)}
		g.files[f] = fs
	}
	return fs
}

// Barrier blocks until an fsync of f issued at or after this call returns,
// and reports that fsync's error. It is the durability point every group-
// routed ack stands on.
func (g *CommitGroup) Barrier(f vfile) error {
	return g.BarrierTicket(f, g.Wrote(f))
}

// BarrierTicket is Barrier for bytes stamped by an earlier Wrote: it blocks
// until an fsync of f issued after that ticket returns. Callers that stamp
// right after their write ride fsyncs a plain Barrier would have to wait
// out — and return immediately when a successful fsync already covered the
// ticket. Each ticket backs at most one BarrierTicket call.
func (g *CommitGroup) BarrierTicket(f vfile, ticket uint64) error {
	req := &groupReq{ticket: ticket, done: make(chan error, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("storage: commit group: %w", ErrClosed)
	}
	fs := g.fileLocked(f)
	if ticket <= fs.acked {
		g.stats.Barriers++
		g.mu.Unlock()
		return nil
	}
	fs.pending = append(fs.pending, req)
	if !fs.syncing {
		fs.syncing = true
		g.wg.Add(1)
		go g.runFile(f, fs)
	} else {
		select {
		case fs.arrived <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
	return <-req.done
}

// Forget drops f's queue entry. Call only once f is closed and nothing can
// stamp or barrier it again (segment dropped, compacted file swapped out);
// without it a long-lived group accumulates an entry per retired file.
func (g *CommitGroup) Forget(f vfile) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fs := g.files[f]; fs != nil && !fs.syncing && len(fs.pending) == 0 {
		delete(g.files, f)
	}
}

// Stats snapshots the scheduler's counters.
func (g *CommitGroup) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close rejects new barriers, waits for every barrier already accepted to be
// served, and stops the syncers. Backends using the group must be closed
// first (or be prepared to see ErrClosed from in-flight barriers).
func (g *CommitGroup) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.wg.Wait()
	return nil
}

// runFile serves one file's barriers: snapshot the write-ticket frontier,
// fsync once, answer every pending barrier whose ticket that fsync covers —
// including barriers that arrived while it was in flight, as long as their
// bytes were written before it was issued — then repeat until nothing is
// pending and retire. Clearing syncing under the same lock as the emptiness
// check keeps the invariant exact: a barrier either queues behind this
// goroutine or spawns the next one.
func (g *CommitGroup) runFile(f vfile, fs *fileSync) {
	defer g.wg.Done()
	for {
		if g.window > 0 {
			g.grow(fs)
		}
		g.mu.Lock()
		if len(fs.pending) == 0 {
			fs.syncing = false
			g.mu.Unlock()
			return
		}
		syncTicket := fs.written
		g.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		elapsed := time.Since(start)
		g.mu.Lock()
		var ack []*groupReq
		keep := fs.pending[:0]
		for _, r := range fs.pending {
			// Every request pending when the frontier was snapshotted has
			// ticket <= syncTicket (tickets are stamped before queueing,
			// under the same lock); only mid-flight arrivals can exceed it.
			if r.ticket <= syncTicket {
				ack = append(ack, r)
			} else {
				keep = append(keep, r)
			}
		}
		fs.pending = keep
		if err == nil && syncTicket > fs.acked {
			fs.acked = syncTicket
		}
		g.stats.Barriers += uint64(len(ack))
		g.stats.Syncs++
		g.stats.Waves++
		g.stats.SyncTime += elapsed
		g.mu.Unlock()
		for _, r := range ack {
			r.done <- err
		}
	}
}

// grow waits out the window (or the batch gate) so near-simultaneous
// barriers on one file share its next fsync.
func (g *CommitGroup) grow(fs *fileSync) {
	timer := time.NewTimer(g.window)
	defer timer.Stop()
	for {
		g.mu.Lock()
		n := len(fs.pending)
		g.mu.Unlock()
		if n == 0 || n >= g.maxBatch {
			return
		}
		select {
		case <-timer.C:
			return
		case <-fs.arrived:
		}
	}
}

// ---- DiskGroup: N shards sharing one directory and one scheduler ----

// DiskGroup is the deployment unit for group commit: n DiskBackend shards
// rooted in subdirectories of one data dir, all routing their durability
// barriers through one CommitGroup so commits arriving together across
// shards share a single fsync wave — and all multiplexing their recovery-log
// streams into shard 0's physical log (see SharedLog), so cross-shard log
// barriers land on one file and actually coalesce instead of merely running
// in parallel.
type DiskGroup struct {
	group  *CommitGroup
	shards []*DiskBackend
	shared *SharedLog
	views  []*GroupShard
}

// GroupShard is one shard of a DiskGroup as the proxy consumes it: the
// shard's own DiskBackend for buckets and KV, with the recovery-log face
// rerouted onto the group's shared physical log.
type GroupShard struct {
	*DiskBackend
	logView *LogView
}

func (s *GroupShard) Append(record []byte) (uint64, error) { return s.logView.Append(record) }
func (s *GroupShard) Scan(from uint64) ([][]byte, error)   { return s.logView.Scan(from) }
func (s *GroupShard) Truncate(before uint64) error         { return s.logView.Truncate(before) }
func (s *GroupShard) LastSeq() (uint64, error)             { return s.logView.LastSeq() }

// The deferred-barrier capability routes through the shared log too — this
// is where it earns its keep: shards append back to back and the first
// SyncLog's lone fsync covers the whole round.
func (s *GroupShard) AppendNoSync(record []byte) (uint64, error) {
	return s.logView.AppendNoSync(record)
}
func (s *GroupShard) SyncLog() error { return s.logView.SyncLog() }

// OpenDiskGroup opens (or creates) shards backends under dir/shard-<i>,
// each provisioned with numBuckets buckets, sharing a scheduler with the
// default window.
func OpenDiskGroup(dir string, shards, numBuckets int) (*DiskGroup, error) {
	return OpenDiskGroupOpts(dir, shards, numBuckets, DiskOptions{})
}

// OpenDiskGroupOpts is OpenDiskGroup with per-shard options. A nil
// opts.Group gets a fresh scheduler owned (and closed) by the group.
func OpenDiskGroupOpts(dir string, shards, numBuckets int, opts DiskOptions) (*DiskGroup, error) {
	return openDiskGroupOpts(osFS{}, dir, shards, numBuckets, diskOpts{
		group:       opts.Group,
		workers:     opts.RecoveryWorkers,
		segMaxBytes: opts.SegMaxBytes,
		autoCompact: true,
	})
}

// openDiskGroupOpts is the vfs-injectable group constructor (the crash sweep
// opens groups on its fault-modeling filesystem through it).
func openDiskGroupOpts(fsys vfs, dir string, shards, numBuckets int, opts diskOpts) (*DiskGroup, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("storage: disk group needs a positive shard count (got %d)", shards)
	}
	if opts.group == nil {
		opts.group = NewCommitGroup(GroupConfig{Window: DefaultGroupWindow})
	}
	g := &DiskGroup{group: opts.group}
	for i := 0; i < shards; i++ {
		b, err := openDiskBackendOpts(fsys, joinPath(dir, fmt.Sprintf("shard-%03d", i)), numBuckets, opts)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("storage: opening disk group shard %d: %w", i, err)
		}
		g.shards = append(g.shards, b)
	}
	shared, err := NewSharedLog(g.shards[0], shards)
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("storage: opening disk group shared log: %w", err)
	}
	g.shared = shared
	for i, b := range g.shards {
		g.views = append(g.views, &GroupShard{DiskBackend: b, logView: shared.View(i)})
	}
	return g, nil
}

// Shards returns the group's backends in shard order. Log methods on these
// raw backends bypass the shared log; use Backends for the proxy-facing
// shape.
func (g *DiskGroup) Shards() []*DiskBackend { return g.shards }

// Backends returns the shards as Backend values (the shape core.NewSharded
// and the bench harness consume), each with its log stream routed through
// the group's shared physical log.
func (g *DiskGroup) Backends() []Backend {
	out := make([]Backend, len(g.views))
	for i, v := range g.views {
		out[i] = v
	}
	return out
}

// Group returns the shared scheduler (stats live there).
func (g *DiskGroup) Group() *CommitGroup { return g.group }

// Close closes every shard, then the scheduler.
func (g *DiskGroup) Close() error {
	var first error
	for _, b := range g.shards {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := g.group.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
