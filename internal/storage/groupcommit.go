package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the group-commit scheduler: a per-data-dir fsync coalescer
// shared by every DiskBackend shard rooted under one directory. Shards append
// their commit records (and log/KV records) unsynced and then stand on a
// Barrier; the scheduler runs one syncer per file with pending barriers, so
// every barrier that lands on a file while its fsync is in flight (or within
// the growth window) rides the next fsync of that file together — and fsyncs
// of *different* files never wait on one another. The ack contract is
// unchanged: nothing is acknowledged before its covering barrier lands; what
// moves is how many acks one fsync covers.

// GroupConfig tunes a CommitGroup.
type GroupConfig struct {
	// Window is how long a file's syncer waits after the first pending
	// barrier for more to pile on before fsyncing. Zero still coalesces:
	// barriers arriving while the file's fsync is in flight batch into its
	// next round.
	Window time.Duration
	// MaxBatch fsyncs immediately once this many barriers are pending on one
	// file, without waiting out the window (0 = DefaultGroupMaxBatch).
	MaxBatch int
}

// DefaultGroupWindow is zero: in-flight coalescing alone captures the
// amortization (concurrent committers pile onto the fsync already running)
// without taxing a lone committer's latency. Deployments whose shards reach
// epoch boundaries in loose lockstep can widen it to trade commit latency
// for bigger waves.
const DefaultGroupWindow time.Duration = 0

// DefaultGroupMaxBatch caps how many barriers one fsync round gathers.
const DefaultGroupMaxBatch = 64

// GroupStats counts a CommitGroup's work. Barriers/Syncs is the
// amortization factor the scheduler achieved.
type GroupStats struct {
	Barriers uint64        // barrier requests served
	Syncs    uint64        // fsyncs issued
	Waves    uint64        // fsync rounds (== Syncs: one round syncs one file once)
	SyncTime time.Duration // cumulative time spent inside fsync calls
}

type groupReq struct {
	ticket uint64
	done   chan error
}

// fileSync is the per-file barrier queue; its syncer goroutine lives exactly
// as long as the file has pending barriers. The entry itself persists until
// Forget — the ticket counters must outlive idle gaps, or a ticket stamped
// before a retire could never be matched again.
type fileSync struct {
	pending []*groupReq
	written uint64        // write tickets issued for this file (see Wrote)
	acked   uint64        // highest ticket covered by a *successful* fsync
	syncing bool          // a runFile goroutine is serving this file
	arrived chan struct{} // capacity 1: "pending grew" edge signal
}

// CommitGroup is the shared fsync scheduler. Each file with pending barriers
// gets a syncer goroutine; Close drains every accepted barrier before
// returning.
type CommitGroup struct {
	mu     sync.Mutex
	files  map[vfile]*fileSync
	closed bool
	stats  GroupStats

	wg       sync.WaitGroup
	window   time.Duration
	maxBatch int
}

// NewCommitGroup starts a scheduler with the given config.
func NewCommitGroup(cfg GroupConfig) *CommitGroup {
	g := &CommitGroup{
		files:    make(map[vfile]*fileSync),
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
	}
	if g.maxBatch <= 0 {
		g.maxBatch = DefaultGroupMaxBatch
	}
	return g
}

// Wrote records that the caller just finished writing bytes to f and returns
// a ticket for them. A later BarrierTicket with that ticket is satisfied by
// any fsync of f *issued* after Wrote returned — including one already in
// flight when the barrier arrives, which is the classic group-commit ride:
// the flush was issued after the bytes landed, so it covers them.
func (g *CommitGroup) Wrote(f vfile) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	fs := g.fileLocked(f)
	fs.written++
	return fs.written
}

// fileLocked returns (creating if needed) f's queue. A queue created here
// with no pending barriers has no syncer yet; Barrier spawns one on demand.
func (g *CommitGroup) fileLocked(f vfile) *fileSync {
	fs := g.files[f]
	if fs == nil {
		fs = &fileSync{arrived: make(chan struct{}, 1)}
		g.files[f] = fs
	}
	return fs
}

// Barrier blocks until an fsync of f issued at or after this call returns,
// and reports that fsync's error. It is the durability point every group-
// routed ack stands on.
func (g *CommitGroup) Barrier(f vfile) error {
	return g.BarrierTicket(f, g.Wrote(f))
}

// BarrierTicket is Barrier for bytes stamped by an earlier Wrote: it blocks
// until an fsync of f issued after that ticket returns. Callers that stamp
// right after their write ride fsyncs a plain Barrier would have to wait
// out — and return immediately when a successful fsync already covered the
// ticket. Each ticket backs at most one BarrierTicket call.
func (g *CommitGroup) BarrierTicket(f vfile, ticket uint64) error {
	req := &groupReq{ticket: ticket, done: make(chan error, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("storage: commit group: %w", ErrClosed)
	}
	fs := g.fileLocked(f)
	if ticket <= fs.acked {
		g.stats.Barriers++
		g.mu.Unlock()
		return nil
	}
	fs.pending = append(fs.pending, req)
	if !fs.syncing {
		fs.syncing = true
		g.wg.Add(1)
		go g.runFile(f, fs)
	} else {
		select {
		case fs.arrived <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
	return <-req.done
}

// Forget drops f's queue entry. Call only once f is closed and nothing can
// stamp or barrier it again (segment dropped, compacted file swapped out);
// without it a long-lived group accumulates an entry per retired file.
func (g *CommitGroup) Forget(f vfile) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fs := g.files[f]; fs != nil && !fs.syncing && len(fs.pending) == 0 {
		delete(g.files, f)
	}
}

// Stats snapshots the scheduler's counters.
func (g *CommitGroup) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close rejects new barriers, waits for every barrier already accepted to be
// served, and stops the syncers. Backends using the group must be closed
// first (or be prepared to see ErrClosed from in-flight barriers).
func (g *CommitGroup) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.wg.Wait()
	return nil
}

// runFile serves one file's barriers: snapshot the write-ticket frontier,
// fsync once, answer every pending barrier whose ticket that fsync covers —
// including barriers that arrived while it was in flight, as long as their
// bytes were written before it was issued — then repeat until nothing is
// pending and retire. Clearing syncing under the same lock as the emptiness
// check keeps the invariant exact: a barrier either queues behind this
// goroutine or spawns the next one.
func (g *CommitGroup) runFile(f vfile, fs *fileSync) {
	defer g.wg.Done()
	for {
		if g.window > 0 {
			g.grow(fs)
		}
		g.mu.Lock()
		if len(fs.pending) == 0 {
			fs.syncing = false
			g.mu.Unlock()
			return
		}
		syncTicket := fs.written
		g.mu.Unlock()
		start := time.Now()
		err := f.Sync()
		elapsed := time.Since(start)
		g.mu.Lock()
		var ack []*groupReq
		keep := fs.pending[:0]
		for _, r := range fs.pending {
			// Every request pending when the frontier was snapshotted has
			// ticket <= syncTicket (tickets are stamped before queueing,
			// under the same lock); only mid-flight arrivals can exceed it.
			if r.ticket <= syncTicket {
				ack = append(ack, r)
			} else {
				keep = append(keep, r)
			}
		}
		fs.pending = keep
		if err == nil && syncTicket > fs.acked {
			fs.acked = syncTicket
		}
		g.stats.Barriers += uint64(len(ack))
		g.stats.Syncs++
		g.stats.Waves++
		g.stats.SyncTime += elapsed
		g.mu.Unlock()
		for _, r := range ack {
			r.done <- err
		}
	}
}

// grow waits out the window (or the batch gate) so near-simultaneous
// barriers on one file share its next fsync.
func (g *CommitGroup) grow(fs *fileSync) {
	timer := time.NewTimer(g.window)
	defer timer.Stop()
	for {
		g.mu.Lock()
		n := len(fs.pending)
		g.mu.Unlock()
		if n == 0 || n >= g.maxBatch {
			return
		}
		select {
		case <-timer.C:
			return
		case <-fs.arrived:
		}
	}
}

// ---- DiskGroup: N shards sharing one directory and one scheduler ----

// DiskGroup is the deployment unit for group commit: n DiskBackend shards
// rooted in subdirectories of one data dir, all routing their durability
// barriers through one CommitGroup so commits arriving together across
// shards share a single fsync wave — and all multiplexing their recovery-log
// streams into shard 0's physical log (see SharedLog), so cross-shard log
// barriers land on one file and actually coalesce instead of merely running
// in parallel.
type DiskGroup struct {
	group  *CommitGroup
	shards []*DiskBackend
	shared *SharedLog
	views  []*GroupShard
	heaps  []*LogHeap // logheap mode: one per shard, else nil

	// Background logheap maintenance (checkpoint + segment GC); nil
	// channels when off (crash-harness opens drive Checkpoint /
	// EvacuateSegment explicitly for determinism).
	maintainKick chan struct{}
	maintainStop chan struct{}
	maintainWG   sync.WaitGroup
}

// GroupShard is one shard of a DiskGroup as the proxy consumes it: the
// shard's own DiskBackend for buckets and KV, with the recovery-log face
// rerouted onto the group's shared physical log — and, in logheap mode,
// the bucket face rerouted onto the shard's LogHeap.
type GroupShard struct {
	*DiskBackend
	logView *LogView
	heap    *LogHeap // logheap mode only
	// closed marks this shard logically closed in logheap mode. The
	// underlying files belong to the physical log the OTHER shards still
	// share, so Close cannot close them; the flag keeps the per-shard
	// ErrClosed contract (every op on a closed shard fails, the siblings
	// keep working) that DiskBackend.Close provides in per-shard-file mode.
	closed atomic.Bool
}

// guard is the logheap-mode closed check; per-shard-file mode relies on the
// embedded backend's own state.
func (s *GroupShard) guard() error {
	if s.heap != nil && s.closed.Load() {
		return ErrClosed
	}
	return nil
}

func (s *GroupShard) Append(record []byte) (uint64, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	return s.logView.Append(record)
}
func (s *GroupShard) Scan(from uint64) ([][]byte, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	return s.logView.Scan(from)
}
func (s *GroupShard) Truncate(before uint64) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.logView.Truncate(before)
}
func (s *GroupShard) LastSeq() (uint64, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	return s.logView.LastSeq()
}

// The deferred-barrier capability routes through the shared log too — this
// is where it earns its keep: shards append back to back and the first
// SyncLog's lone fsync covers the whole round.
func (s *GroupShard) AppendNoSync(record []byte) (uint64, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	return s.logView.AppendNoSync(record)
}
func (s *GroupShard) SyncLog() error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.logView.SyncLog()
}

// Bucket ops route to the LogHeap in logheap mode.

func (s *GroupShard) NumBuckets() (int, error) {
	if err := s.guard(); err != nil {
		return 0, err
	}
	if s.heap != nil {
		return s.heap.NumBuckets()
	}
	return s.DiskBackend.NumBuckets()
}
func (s *GroupShard) ReadSlot(bucket, slot int) ([]byte, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	if s.heap != nil {
		return s.heap.ReadSlot(bucket, slot)
	}
	return s.DiskBackend.ReadSlot(bucket, slot)
}
func (s *GroupShard) ReadSlots(refs []SlotRef) ([][]byte, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	if s.heap != nil {
		return s.heap.ReadSlots(refs)
	}
	return s.DiskBackend.ReadSlots(refs)
}
func (s *GroupShard) ReadBucket(bucket int) ([][]byte, error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	if s.heap != nil {
		return s.heap.ReadBucket(bucket)
	}
	return s.DiskBackend.ReadBucket(bucket)
}
func (s *GroupShard) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	if err := s.guard(); err != nil {
		return err
	}
	if s.heap != nil {
		return s.heap.WriteBucket(bucket, epoch, slots)
	}
	return s.DiskBackend.WriteBucket(bucket, epoch, slots)
}
func (s *GroupShard) WriteBuckets(writes []BucketWrite) error {
	if err := s.guard(); err != nil {
		return err
	}
	if s.heap != nil {
		return s.heap.WriteBuckets(writes)
	}
	return s.DiskBackend.WriteBuckets(writes)
}
func (s *GroupShard) CommitEpoch(epoch uint64) error {
	if err := s.guard(); err != nil {
		return err
	}
	if s.heap != nil {
		return s.heap.CommitEpoch(epoch)
	}
	return s.DiskBackend.CommitEpoch(epoch)
}
func (s *GroupShard) RollbackTo(epoch uint64) error {
	if err := s.guard(); err != nil {
		return err
	}
	if s.heap != nil {
		return s.heap.RollbackTo(epoch)
	}
	return s.DiskBackend.RollbackTo(epoch)
}

// CommittedEpoch / VersionCount mirror the DiskBackend test helpers.
func (s *GroupShard) CommittedEpoch() uint64 {
	if s.heap != nil {
		return s.heap.CommittedEpoch()
	}
	return s.DiskBackend.CommittedEpoch()
}
func (s *GroupShard) VersionCount(bucket int) int {
	if s.heap != nil {
		return s.heap.VersionCount(bucket)
	}
	return s.DiskBackend.VersionCount(bucket)
}

// KV ops stay on the shard's own journal, but honor the logical close.
func (s *GroupShard) Get(key string) ([]byte, bool, error) {
	if err := s.guard(); err != nil {
		return nil, false, err
	}
	return s.DiskBackend.Get(key)
}
func (s *GroupShard) Put(key string, value []byte) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.DiskBackend.Put(key, value)
}
func (s *GroupShard) Delete(key string) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.DiskBackend.Delete(key)
}

// Close closes the shard. In logheap mode the shard's bucket data and log
// stream live inside files the sibling shards still share, so only the
// logical flag flips; the physical files close with the group.
func (s *GroupShard) Close() error {
	if s.heap != nil {
		s.closed.Store(true)
		return nil
	}
	return s.DiskBackend.Close()
}

// logHeapShard is the Backend face of a logheap-mode shard. It is a
// distinct type so that only logheap shards expose CommitEpochNoSync: a
// per-shard-file GroupShard must NOT satisfy EpochCommitBatcher — deferring
// its commit barrier would let a bucket heap become durably committed ahead
// of the WAL commit record it depends on, exactly the ordering inversion
// the unified log exists to make impossible (commit records ride the same
// stream, so prefix durability orders them for free).
type logHeapShard struct{ *GroupShard }

// CommitEpochNoSync implements EpochCommitBatcher.
func (s logHeapShard) CommitEpochNoSync(epoch uint64) error {
	if err := s.guard(); err != nil {
		return err
	}
	return s.heap.CommitEpochNoSync(epoch)
}

// CommitStream implements EpochCommitBatcher: every shard of a logheap group
// appends into the owner backend's one physical log.
func (s logHeapShard) CommitStream() any { return s.heap.owner }

// OpenDiskGroup opens (or creates) shards backends under dir/shard-<i>,
// each provisioned with numBuckets buckets, sharing a scheduler with the
// default window.
func OpenDiskGroup(dir string, shards, numBuckets int) (*DiskGroup, error) {
	return OpenDiskGroupOpts(dir, shards, numBuckets, DiskOptions{})
}

// OpenDiskGroupOpts is OpenDiskGroup with per-shard options. A nil
// opts.Group gets a fresh scheduler owned (and closed) by the group.
func OpenDiskGroupOpts(dir string, shards, numBuckets int, opts DiskOptions) (*DiskGroup, error) {
	return openDiskGroupOpts(osFS{}, dir, shards, numBuckets, diskOpts{
		group:       opts.Group,
		workers:     opts.RecoveryWorkers,
		segMaxBytes: opts.SegMaxBytes,
		autoCompact: true,
		logHeap:     opts.LogHeap,
	})
}

// logHeapMarker is the group-dir marker distinguishing logheap data dirs
// from per-shard-file ones. Opening a dir in the wrong mode must fail
// loudly — a logheap dir's bucket data is invisible to the per-shard-file
// layout (and vice versa), so proceeding would silently serve an empty
// store over live data.
const logHeapMarker = "logheap"

// checkGroupMode enforces the marker, creating it for a fresh logheap dir.
func checkGroupMode(fsys vfs, dir string, logHeap bool) error {
	names, err := fsys.List(dir)
	if err != nil {
		return fmt.Errorf("storage: listing group dir: %w", err)
	}
	hasMarker, hasShard := false, false
	for _, n := range names {
		switch {
		case n == logHeapMarker:
			hasMarker = true
		case len(n) >= 6 && n[:6] == "shard-":
			hasShard = true
		}
	}
	switch {
	case logHeap && hasMarker, !logHeap && !hasMarker:
		return nil
	case logHeap && hasShard:
		return fmt.Errorf("storage: data dir %s holds a per-shard-file group; refusing to open it in logheap mode", dir)
	case !logHeap:
		return fmt.Errorf("storage: data dir %s holds a logheap group; open it with DiskOptions.LogHeap", dir)
	}
	f, err := fsys.OpenFile(joinPath(dir, logHeapMarker), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating logheap marker: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// openDiskGroupOpts is the vfs-injectable group constructor (the crash sweep
// opens groups on its fault-modeling filesystem through it).
func openDiskGroupOpts(fsys vfs, dir string, shards, numBuckets int, opts diskOpts) (*DiskGroup, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("storage: disk group needs a positive shard count (got %d)", shards)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating group dir: %w", err)
	}
	if err := checkGroupMode(fsys, dir, opts.logHeap); err != nil {
		return nil, err
	}
	if opts.group == nil {
		opts.group = NewCommitGroup(GroupConfig{Window: DefaultGroupWindow})
	}
	shardOpts := opts
	if opts.logHeap {
		// Logheap shards keep no buckets.heap (versions ride the shared
		// log), and the owner's open-time segment collection waits until the
		// retention gate knows which old segments still hold live versions.
		shardOpts.noHeap = true
		shardOpts.keepSegs = true
	}
	g := &DiskGroup{group: opts.group}
	shardDir := func(i int) string { return joinPath(dir, fmt.Sprintf("shard-%03d", i)) }
	for i := 0; i < shards; i++ {
		b, err := openDiskBackendOpts(fsys, shardDir(i), numBuckets, shardOpts)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("storage: opening disk group shard %d: %w", i, err)
		}
		g.shards = append(g.shards, b)
	}
	owner := g.shards[0]
	nb := g.shards[0].numBuckets // openMeta resolved 0 to the stored count
	var shared *SharedLog
	if opts.logHeap {
		for i := 0; i < shards; i++ {
			lh, err := newLogHeap(owner, fsys, shardDir(i), i, nb)
			if err != nil {
				g.Close()
				return nil, fmt.Errorf("storage: opening disk group shard %d logheap: %w", i, err)
			}
			g.heaps = append(g.heaps, lh)
		}
		var err error
		shared, err = newSharedLogOpts(owner, shards, shards, sharedLogReplay{
			heapFloor: func(i int) uint64 { return g.heaps[i].ckptW },
			onHeap: func(i int, seq, segBase uint64, off int64, body []byte) error {
				return g.heaps[i].replayRecord(seq, segBase, off, body)
			},
		})
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("storage: opening disk group shared log: %w", err)
		}
		for _, lh := range g.heaps {
			lh.finishOpen()
		}
		heaps := g.heaps
		owner.setSegRetain(func() uint64 {
			floor := ^uint64(0)
			for _, lh := range heaps {
				if f := lh.retainFloor.Load(); f < floor {
					floor = f
				}
			}
			return floor
		})
		// The open-time dead-segment pass the shards deferred: with the gate
		// installed, anything below both the truncation point and every
		// heap's retention floor can finally go.
		owner.dropDeadSegments()
	} else {
		var err error
		shared, err = NewSharedLog(owner, shards)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("storage: opening disk group shared log: %w", err)
		}
	}
	g.shared = shared
	for i, b := range g.shards {
		v := &GroupShard{DiskBackend: b, logView: shared.View(i)}
		if opts.logHeap {
			v.heap = g.heaps[i]
		}
		g.views = append(g.views, v)
	}
	if opts.logHeap && opts.autoCompact {
		g.maintainKick = make(chan struct{}, 1)
		g.maintainStop = make(chan struct{})
		kick := func() {
			select {
			case g.maintainKick <- struct{}{}:
			default:
			}
		}
		for _, lh := range g.heaps {
			lh.attach(shared, kick)
		}
		g.maintainWG.Add(1)
		go g.maintainLoop()
	} else if opts.logHeap {
		for _, lh := range g.heaps {
			lh.attach(shared, nil)
		}
	}
	return g, nil
}

// maintainLoop runs logheap maintenance off the commit path: checkpoints
// heaps whose un-checkpointed backlog is due, then tries to evacuate and
// drop the oldest segment while the heap gate — not the WAL — is what keeps
// it alive.
func (g *DiskGroup) maintainLoop() {
	defer g.maintainWG.Done()
	for {
		select {
		case <-g.maintainStop:
			return
		case <-g.maintainKick:
		}
		g.maintainOnce()
	}
}

func (g *DiskGroup) maintainOnce() {
	for _, lh := range g.heaps {
		lh.mu.RLock()
		due := lh.dirty >= maintainEvery
		lh.mu.RUnlock()
		if due {
			if err := lh.Checkpoint(); err != nil {
				return // wedged or closing; the next kick retries
			}
		}
	}
	owner := g.shards[0]
	for {
		base, ok := owner.gcCandidate()
		if !ok || base >= owner.truncFloor() {
			return // the WAL still needs the oldest segment; GC frees nothing
		}
		for _, lh := range g.heaps {
			if _, err := lh.EvacuateSegment(base); err != nil {
				return
			}
		}
		owner.dropDeadSegments()
		if nb, ok := owner.gcCandidate(); !ok || nb == base {
			return // nothing came free (WAL floor mid-segment); stop here
		}
	}
}

// Shards returns the group's backends in shard order. Log methods on these
// raw backends bypass the shared log; use Backends for the proxy-facing
// shape.
func (g *DiskGroup) Shards() []*DiskBackend { return g.shards }

// Backends returns the shards as Backend values (the shape core.NewSharded
// and the bench harness consume), each with its log stream routed through
// the group's shared physical log. Logheap shards come wrapped in the type
// that additionally satisfies EpochCommitBatcher.
func (g *DiskGroup) Backends() []Backend {
	out := make([]Backend, len(g.views))
	for i, v := range g.views {
		if v.heap != nil {
			out[i] = logHeapShard{v}
		} else {
			out[i] = v
		}
	}
	return out
}

// Group returns the shared scheduler (stats live there).
func (g *DiskGroup) Group() *CommitGroup { return g.group }

// Close closes every shard, then the scheduler. Logheap heaps checkpoint
// first (best effort — replay would rebuild the same state, a checkpoint
// just makes the next open cheap), while the owner's files are still open.
func (g *DiskGroup) Close() error {
	if g.maintainStop != nil {
		close(g.maintainStop)
		g.maintainWG.Wait()
		g.maintainStop = nil
	}
	for _, lh := range g.heaps {
		_ = lh.Checkpoint()
	}
	var first error
	for _, b := range g.shards {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := g.group.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
