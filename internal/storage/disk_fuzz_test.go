package storage

import (
	"bytes"
	"testing"
)

// FuzzDiskRecordDecode hammers the on-disk decoders with arbitrary bytes
// (mirroring the client plane's FuzzDecodeFrame): record framing, file
// headers, heap bodies and KV bodies must either decode a value that
// re-encodes to the identical bytes, or fail — never panic, never
// mis-deserialize.
func FuzzDiskRecordDecode(f *testing.F) {
	// Valid records of every kind.
	f.Add(encodeRecord(nil, encodeVersionBody(3, 7, [][]byte{[]byte("slot0"), {}, []byte("slot2")})))
	f.Add(encodeRecord(nil, encodeVersionBody(0, 0, nil)))
	f.Add(encodeRecord(nil, encodeVersionBodyKind(heapKindGCCopy, 2, 5, [][]byte{[]byte("moved"), []byte("fwd")})))
	f.Add(encodeRecord(nil, encodeEpochBody(heapKindCommit, 42)))
	f.Add(encodeRecord(nil, encodeEpochBody(heapKindRollback, 1)))
	f.Add(encodeRecord(nil, encodeEpochBody(lhixKindState, 42)))
	f.Add(encodeRecord(nil, encodeLhixVersion(3, 7, 128, 44, 61, []uint32{5, 0, 5})))
	f.Add(encodeRecord(nil, encodeLhixVersion(0, 0, 0, 0, 0, nil)))
	f.Add(encodeRecord(nil, encodeKVBody(kvKindPut, "key", []byte("value"))))
	f.Add(encodeRecord(nil, encodeKVBody(kvKindDel, "key", nil)))
	f.Add(encodeRecord(nil, []byte("raw log record")))
	f.Add(encodeFileHeader(heapMagic, 64, 0))
	f.Add(encodeFileHeader(segMagic, 0, 17))
	f.Add(encodeFileHeader(lhixMagic, 5, 99))
	// Damaged variants: truncation, zero fill, flipped bytes.
	rec := encodeRecord(nil, encodeVersionBody(1, 2, [][]byte{[]byte("abc")}))
	f.Add(rec[:len(rec)-2])
	f.Add(make([]byte, 32))
	flipped := append([]byte(nil), rec...)
	flipped[recordFrameSize] ^= 0xff
	f.Add(flipped)
	lrec := encodeRecord(nil, encodeLhixVersion(1, 2, 64, 8, 30, []uint32{3}))
	f.Add(lrec[:len(lrec)-2])
	lflipped := append([]byte(nil), lrec...)
	lflipped[recordFrameSize] ^= 0xff
	f.Add(lflipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		body, size, err := decodeRecord(data)
		if err == nil {
			if size > len(data) {
				t.Fatalf("decodeRecord consumed %d of %d bytes", size, len(data))
			}
			// The framing must round-trip exactly.
			if re := encodeRecord(nil, body); !bytes.Equal(re, data[:size]) {
				t.Fatalf("record did not round-trip: %x vs %x", re, data[:size])
			}
			if rec, err := parseHeapBody(body); err == nil {
				switch rec.kind {
				case heapKindVersion, heapKindGCCopy:
					// Reconstruct the slots from the parsed lengths; the
					// re-encoded record must be byte-identical, proving the
					// parse kept every boundary exactly.
					slots := make([][]byte, len(rec.slotLens))
					off := heapVersionDataStart
					for i, l := range rec.slotLens {
						off += 4
						if off+int(l) > len(body) {
							t.Fatalf("slot %d (len %d) overruns accepted body (%d)", i, l, len(body))
						}
						slots[i] = body[off : off+int(l)]
						off += int(l)
					}
					if re := encodeVersionBodyKind(rec.kind, rec.bucket, rec.epoch, slots); !bytes.Equal(re, body) {
						t.Fatalf("version body did not round-trip")
					}
				case heapKindCommit, heapKindRollback:
					if re := encodeEpochBody(rec.kind, rec.epoch); !bytes.Equal(re, body) {
						t.Fatalf("epoch body did not round-trip")
					}
				default:
					t.Fatalf("parseHeapBody accepted unknown kind %d", rec.kind)
				}
			}
			if rec, err := parseLhixBody(body); err == nil {
				switch rec.kind {
				case lhixKindState:
					if re := encodeEpochBody(lhixKindState, rec.committed); !bytes.Equal(re, body) {
						t.Fatalf("checkpoint state body did not round-trip")
					}
				case lhixKindVersion:
					re := encodeLhixVersion(rec.bucket, rec.epoch, rec.segBase, rec.off, rec.recLen, rec.slotLens)
					if !bytes.Equal(re, body) {
						t.Fatalf("checkpoint version body did not round-trip")
					}
				default:
					t.Fatalf("parseLhixBody accepted unknown kind %d", rec.kind)
				}
			}
			if kind, key, value, err := parseKVBody(body); err == nil {
				if re := encodeKVBody(kind, key, value); !bytes.Equal(re, body) {
					t.Fatalf("kv body did not round-trip")
				}
			}
		}
		// File headers on the same bytes: decode or error, never panic.
		for _, magic := range []string{heapMagic, segMagic, kvMagic, metaMagic} {
			a, b, err := decodeFileHeader(data, magic)
			if err == nil {
				if re := encodeFileHeader(magic, a, b); !bytes.Equal(re, data[:fileHeaderSize]) {
					t.Fatalf("file header did not round-trip")
				}
			}
		}
	})
}
