package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// DiskBackend is a durable, crash-atomic implementation of the full Backend
// interface. Unlike MemBackend's whole-store gob snapshot, it persists
// incrementally:
//
//   - buckets.heap — a slotted heap of shadow-paged bucket versions.
//     WriteBuckets appends version records (no fsync: shadow paging makes
//     uncommitted versions discardable); CommitEpoch appends a commit record
//     and fsyncs — the durability barrier a commit ack stands on; RollbackTo
//     appends a rollback record and fsyncs. Superseded committed versions are
//     garbage-collected logically on commit and physically by compaction.
//   - wal-<base>.seg — segmented append-only log files for the recovery
//     unit. Append fsyncs before acking (the log IS the durability point for
//     the proxy's write-ahead records); Truncate drops whole dead segments.
//   - kv.log — an append-only put/delete journal for the NoPriv baseline's
//     namespace, compacted when dead entries dominate.
//   - meta — a tiny atomically-replaced file holding the bucket count and
//     the log truncation point.
//
// Every record is length-prefixed and checksummed; replay stops at the first
// invalid record and truncates the torn tail, so reopening after a crash at
// any point recovers exactly the state of the last completed fsync barrier.
// All I/O goes through the vfs abstraction so tests can interpose fault
// injection.
type DiskBackend struct {
	mu     sync.RWMutex
	fsys   vfs
	dir    string
	closed bool
	ioErr  error // sticky: a failed write may leave memory ahead of disk

	numBuckets int

	// Bucket heap.
	heap           vfile
	heapSize       int64
	index          [][]diskVersion // per bucket: version stack, oldest first
	committed      uint64
	heapLive       int64 // bytes of records still referenced by the index
	heapDead       int64 // bytes of superseded/rolled-back/control records
	heapCompactMin int64 // compact only past this much dead data

	// KV namespace.
	kvf          vfile
	kvSize       int64
	kv           map[string]kvEntry
	kvLive       int64
	kvDead       int64
	kvCompactMin int64

	// Recovery log.
	segs        []*segment
	lastSeq     uint64
	truncBefore uint64 // sequence numbers below this are logically gone
	segMaxBytes int64
}

// diskVersion locates one shadow-paged bucket version inside the heap file.
type diskVersion struct {
	epoch    uint64
	dataOff  int64 // file offset of the first slot's length prefix
	recSize  int64 // framed record size, for garbage accounting
	slotLens []uint32
}

type kvEntry struct {
	value   []byte
	recSize int64
}

type segment struct {
	f    vfile
	name string
	base uint64  // sequence number of the first record
	offs []int64 // frame offset of each record
	lens []int32 // framed length of each record
	size int64
}

var _ Backend = (*DiskBackend)(nil)

const (
	heapFileName = "buckets.heap"
	kvFileName   = "kv.log"
	metaFileName = "meta"
	segPrefix    = "wal-"
	segSuffix    = ".seg"
	tmpSuffix    = ".tmp"
)

const (
	defaultHeapCompactMin = 1 << 20
	defaultKVCompactMin   = 1 << 18
	defaultSegMaxBytes    = 4 << 20
	// readCoalesceGap merges vectored slot reads whose file ranges are
	// within this many bytes into one pread.
	readCoalesceGap = 4096
)

// OpenDiskBackend opens (or creates) a durable backend rooted at dir.
// numBuckets fixes the tree size at creation; reopening an existing store
// with a different non-zero numBuckets fails loudly (0 adopts the stored
// size).
func OpenDiskBackend(dir string, numBuckets int) (*DiskBackend, error) {
	return openDiskBackend(osFS{}, dir, numBuckets)
}

func openDiskBackend(fsys vfs, dir string, numBuckets int) (*DiskBackend, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir: %w", err)
	}
	b := &DiskBackend{
		fsys:           fsys,
		dir:            dir,
		kv:             make(map[string]kvEntry),
		heapCompactMin: defaultHeapCompactMin,
		kvCompactMin:   defaultKVCompactMin,
		segMaxBytes:    defaultSegMaxBytes,
		truncBefore:    1,
	}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing data dir: %w", err)
	}
	for _, n := range names {
		// A crashed compaction or meta update leaves a stray temp file;
		// it was never renamed into place, so it is dead weight.
		if len(n) > len(tmpSuffix) && n[len(n)-len(tmpSuffix):] == tmpSuffix {
			_ = fsys.Remove(joinPath(dir, n))
		}
	}
	if err := b.openMeta(numBuckets); err != nil {
		return nil, err
	}
	if err := b.openHeap(); err != nil {
		return nil, err
	}
	if err := b.openKV(); err != nil {
		return nil, err
	}
	if err := b.openLog(names); err != nil {
		return nil, err
	}
	// Creating buckets.heap / kv.log fsyncs their contents, but on ext4 a
	// new file's *directory entry* is only durable after a directory fsync;
	// without it, an acked first commit or Put could vanish with the whole
	// file on power loss. One barrier covers everything open created.
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	return b, nil
}

// ---- meta ----

func (b *DiskBackend) openMeta(numBuckets int) error {
	f, err := b.fsys.OpenFile(joinPath(b.dir, metaFileName), os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		if numBuckets <= 0 {
			return fmt.Errorf("storage: creating a disk backend needs a positive bucket count (got %d)", numBuckets)
		}
		b.numBuckets = numBuckets
		return b.writeMeta()
	}
	if err != nil {
		return fmt.Errorf("storage: opening meta: %w", err)
	}
	size, serr := f.Size()
	if serr == nil && size == 0 {
		// A crash can install the meta rename before the file's content ever
		// became durable (e.g. a dropped fsync); an empty meta is the
		// pre-creation state, not corruption.
		f.Close()
		if numBuckets <= 0 {
			return fmt.Errorf("storage: creating a disk backend needs a positive bucket count (got %d)", numBuckets)
		}
		b.numBuckets = numBuckets
		return b.writeMeta()
	}
	buf, rerr := readFileRange(f, 0, fileHeaderSize)
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	if rerr != nil {
		return fmt.Errorf("storage: reading meta: %w", rerr)
	}
	if cerr != nil {
		return cerr
	}
	stored, trunc, err := decodeFileHeader(buf, metaMagic)
	if err != nil {
		return fmt.Errorf("storage: meta file: %w", err)
	}
	if numBuckets != 0 && int(stored) != numBuckets {
		return fmt.Errorf("storage: data dir holds %d buckets but %d requested (refusing to silently resize)", stored, numBuckets)
	}
	b.numBuckets = int(stored)
	if trunc > 0 {
		b.truncBefore = trunc
	}
	return nil
}

// writeMeta atomically replaces the meta file: temp file, fsync, rename,
// directory fsync. Callers hold the write lock (or are inside open).
func (b *DiskBackend) writeMeta() error {
	tmp := joinPath(b.dir, metaFileName+tmpSuffix)
	f, err := b.fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating meta: %w", err)
	}
	hdr := encodeFileHeader(metaMagic, uint32(b.numBuckets), b.truncBefore)
	if _, err := f.WriteAt(hdr, 0); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = b.fsys.Remove(tmp)
		return fmt.Errorf("storage: writing meta: %w", err)
	}
	if err := b.fsys.Rename(tmp, joinPath(b.dir, metaFileName)); err != nil {
		_ = b.fsys.Remove(tmp)
		return fmt.Errorf("storage: installing meta: %w", err)
	}
	return b.fsys.SyncDir(b.dir)
}

// ---- heap open / replay ----

func (b *DiskBackend) openHeap() error {
	f, err := b.fsys.OpenFile(joinPath(b.dir, heapFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening bucket heap: %w", err)
	}
	b.heap = f
	b.index = make([][]diskVersion, b.numBuckets)
	size, err := f.Size()
	if err != nil {
		return err
	}
	if size < fileHeaderSize {
		// Empty, or shorter than a header: creation never durably completed
		// (the header is synced before any record can follow it), so no
		// committed data can exist — initialize fresh.
		if err := f.Truncate(0); err != nil {
			return err
		}
		hdr := encodeFileHeader(heapMagic, uint32(b.numBuckets), 0)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("storage: initializing bucket heap: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
		b.heapSize = fileHeaderSize
		return nil
	}
	hdr, err := readFileRange(f, 0, fileHeaderSize)
	if err != nil {
		return err
	}
	nb, _, err := decodeFileHeader(hdr, heapMagic)
	if err != nil {
		return fmt.Errorf("storage: bucket heap: %w", err)
	}
	if int(nb) != b.numBuckets {
		return fmt.Errorf("storage: bucket heap holds %d buckets but meta says %d", nb, b.numBuckets)
	}
	end, err := b.replayHeap(f, size)
	if err != nil {
		return err
	}
	if end < size {
		// Torn tail from a crash between the last fsync barrier and the
		// crash point; every record past end is unreachable by replay.
		if err := f.Truncate(end); err != nil {
			return fmt.Errorf("storage: truncating torn heap tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	b.heapSize = end
	return nil
}

// replayHeap scans heap records from the header to the first invalid record,
// rebuilding the version index, and returns the offset replay stopped at.
func (b *DiskBackend) replayHeap(f vfile, size int64) (int64, error) {
	sc := newRecordScanner(f, fileHeaderSize, size)
	off := int64(fileHeaderSize)
	for off < size {
		body, total, err := sc.next()
		if err != nil {
			if errors.Is(err, errTornRecord) {
				return off, nil
			}
			return 0, fmt.Errorf("storage: bucket heap at offset %d: %w", off, err)
		}
		rec, err := parseHeapBody(body)
		if err != nil {
			// A structurally invalid body under a valid checksum is not a
			// torn write — it is corruption, and must fail loudly.
			return 0, fmt.Errorf("storage: bucket heap at offset %d: %w", off, err)
		}
		switch rec.kind {
		case heapKindVersion:
			if rec.bucket < 0 || rec.bucket >= b.numBuckets {
				return 0, fmt.Errorf("storage: bucket heap references bucket %d of %d", rec.bucket, b.numBuckets)
			}
			v := diskVersion{
				epoch:    rec.epoch,
				dataOff:  off + recordFrameSize + heapVersionDataStart,
				recSize:  int64(total),
				slotLens: rec.slotLens,
			}
			if err := b.installVersionLocked(rec.bucket, v); err != nil {
				return 0, fmt.Errorf("storage: bucket heap replay: %w", err)
			}
		case heapKindCommit:
			b.applyCommitLocked(rec.epoch)
			b.heapDead += int64(total)
		case heapKindRollback:
			b.applyRollbackLocked(rec.epoch)
			b.heapDead += int64(total)
		}
		off += int64(total)
	}
	return off, nil
}

// installVersionLocked applies one version to the index with MemBackend's
// shadow-paging rules: same-epoch writes supersede in place, lower-epoch
// writes after a higher epoch are rejected.
func (b *DiskBackend) installVersionLocked(bucket int, v diskVersion) error {
	vs := b.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch == v.epoch {
		b.heapDead += vs[n-1].recSize
		b.heapLive += v.recSize - vs[n-1].recSize
		vs[n-1] = v
		return nil
	}
	if n := len(vs); n > 0 && vs[n-1].epoch > v.epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, v.epoch, vs[n-1].epoch)
	}
	b.index[bucket] = append(vs, v)
	b.heapLive += v.recSize
	return nil
}

// applyCommitLocked advances the committed frontier and garbage-collects
// superseded versions inside the committed prefix (index only; bytes become
// dead and are reclaimed by compaction).
func (b *DiskBackend) applyCommitLocked(epoch uint64) {
	if epoch > b.committed {
		b.committed = epoch
	}
	for i, vs := range b.index {
		keep := -1
		for j := len(vs) - 1; j >= 0; j-- {
			if vs[j].epoch <= b.committed {
				keep = j
				break
			}
		}
		if keep > 0 {
			for _, v := range vs[:keep] {
				b.heapDead += v.recSize
				b.heapLive -= v.recSize
			}
			b.index[i] = append(vs[:0], vs[keep:]...)
		}
	}
}

func (b *DiskBackend) applyRollbackLocked(epoch uint64) {
	for i, vs := range b.index {
		n := len(vs)
		for n > 0 && vs[n-1].epoch > epoch {
			n--
			b.heapDead += vs[n].recSize
			b.heapLive -= vs[n].recSize
		}
		b.index[i] = vs[:n]
	}
	if b.committed > epoch {
		b.committed = epoch
	}
}

// ---- common guards ----

func (b *DiskBackend) checkUsable() error {
	if b.closed {
		return ErrClosed
	}
	return b.ioErr
}

// wedge marks the backend unusable: after a failed write the in-memory index
// may be ahead of the file, and continuing could ack operations the disk
// never saw. Fail-stop is the honest behaviour; reopening replays the file
// back to a consistent state.
func (b *DiskBackend) wedge(err error) error {
	if b.ioErr == nil {
		b.ioErr = fmt.Errorf("storage: disk backend disabled by I/O error: %w", err)
	}
	return err
}

// appendHeapLocked appends pre-framed bytes to the heap file (no fsync).
func (b *DiskBackend) appendHeapLocked(framed []byte) error {
	if _, err := b.heap.WriteAt(framed, b.heapSize); err != nil {
		return b.wedge(err)
	}
	b.heapSize += int64(len(framed))
	return nil
}

// ---- BucketStore ----

// NumBuckets implements BucketStore.
func (b *DiskBackend) NumBuckets() (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return 0, err
	}
	return b.numBuckets, nil
}

func (b *DiskBackend) newestVersionLocked(bucket int) (*diskVersion, error) {
	if err := checkBucket(bucket, b.numBuckets); err != nil {
		return nil, err
	}
	vs := b.index[bucket]
	if len(vs) == 0 {
		return nil, nil
	}
	return &vs[len(vs)-1], nil
}

// slotRange locates slot within v: file offset of the slot's data bytes and
// its length.
func (v *diskVersion) slotRange(slot int) (off int64, n int) {
	off = v.dataOff
	for i := 0; i < slot; i++ {
		off += 4 + int64(v.slotLens[i])
	}
	return off + 4, int(v.slotLens[slot])
}

// span reports the file range covering all of v's slots.
func (v *diskVersion) span() (off int64, n int) {
	off = v.dataOff
	for _, l := range v.slotLens {
		n += 4 + int(l)
	}
	return off, n
}

// resolveSlotLocked maps a SlotRef to its file range.
func (b *DiskBackend) resolveSlotLocked(bucket, slot int) (off int64, n int, err error) {
	v, err := b.newestVersionLocked(bucket)
	if err != nil {
		return 0, 0, err
	}
	if v == nil {
		return 0, 0, fmt.Errorf("%w: bucket %d never written", ErrNoSuchSlot, bucket)
	}
	if slot < 0 || slot >= len(v.slotLens) {
		return 0, 0, fmt.Errorf("%w: bucket %d slot %d (have %d)", ErrNoSuchSlot, bucket, slot, len(v.slotLens))
	}
	off, n = v.slotRange(slot)
	return off, n, nil
}

// ReadSlot implements BucketStore.
func (b *DiskBackend) ReadSlot(bucket, slot int) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	off, n, err := b.resolveSlotLocked(bucket, slot)
	if err != nil {
		return nil, err
	}
	return readFileRange(b.heap, off, n)
}

// ReadSlots implements BucketStore: the whole vector resolves under one lock
// acquisition and is served scatter-gather style — refs are sorted by file
// offset and adjacent ranges coalesce into shared preads, so a stage's reads
// cost a handful of syscalls instead of one per slot. The vector fails
// atomically: every ref is validated before any I/O.
func (b *DiskBackend) ReadSlots(refs []SlotRef) ([][]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	type slotRead struct {
		resIdx int
		off    int64
		n      int
	}
	reads := make([]slotRead, len(refs))
	for i, r := range refs {
		off, n, err := b.resolveSlotLocked(r.Bucket, r.Slot)
		if err != nil {
			return nil, err
		}
		reads[i] = slotRead{resIdx: i, off: off, n: n}
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].off < reads[j].off })
	out := make([][]byte, len(refs))
	for start := 0; start < len(reads); {
		end := start
		runEnd := reads[start].off + int64(reads[start].n)
		for end+1 < len(reads) && reads[end+1].off <= runEnd+readCoalesceGap {
			end++
			if e := reads[end].off + int64(reads[end].n); e > runEnd {
				runEnd = e
			}
		}
		base := reads[start].off
		buf, err := readFileRange(b.heap, base, int(runEnd-base))
		if err != nil {
			return nil, err
		}
		for i := start; i <= end; i++ {
			lo := reads[i].off - base
			out[reads[i].resIdx] = buf[lo : lo+int64(reads[i].n)]
		}
		start = end + 1
	}
	return out, nil
}

// ReadBucket implements BucketStore with a single pread covering the whole
// newest version.
func (b *DiskBackend) ReadBucket(bucket int) ([][]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	v, err := b.newestVersionLocked(bucket)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return b.readVersionSlotsLocked(v)
}

func (b *DiskBackend) readVersionSlotsLocked(v *diskVersion) ([][]byte, error) {
	off, n := v.span()
	buf, err := readFileRange(b.heap, off, n)
	if err != nil {
		return nil, err
	}
	slots := make([][]byte, len(v.slotLens))
	pos := 0
	for i, l := range v.slotLens {
		pos += 4
		slots[i] = buf[pos : pos+int(l)]
		pos += int(l)
	}
	return slots, nil
}

func (b *DiskBackend) validateWriteLocked(bucket int, epoch uint64) error {
	if err := checkBucket(bucket, b.numBuckets); err != nil {
		return err
	}
	vs := b.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch > epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, epoch, vs[n-1].epoch)
	}
	return nil
}

// WriteBucket implements BucketStore.
func (b *DiskBackend) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	return b.WriteBuckets([]BucketWrite{{Bucket: bucket, Epoch: epoch, Slots: slots}})
}

// WriteBuckets implements BucketStore: the whole vector is encoded into one
// buffer and appended with a single write syscall (no fsync — CommitEpoch is
// the durability barrier; shadow paging makes an unsynced or partially
// persisted version harmless). Writes install in vector order and the call
// stops at the first failing entry, leaving the validated prefix installed,
// exactly like MemBackend.
func (b *DiskBackend) WriteBuckets(writes []BucketWrite) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	var buf []byte
	var firstErr error
	for _, w := range writes {
		if err := b.validateWriteLocked(w.Bucket, w.Epoch); err != nil {
			firstErr = err
			break
		}
		body := encodeVersionBody(w.Bucket, w.Epoch, w.Slots)
		recOff := b.heapSize + int64(len(buf))
		buf = encodeRecord(buf, body)
		v := diskVersion{
			epoch:    w.Epoch,
			dataOff:  recOff + recordFrameSize + heapVersionDataStart,
			recSize:  int64(recordFrameSize + len(body)),
			slotLens: make([]uint32, len(w.Slots)),
		}
		for i, s := range w.Slots {
			v.slotLens[i] = uint32(len(s))
		}
		if err := b.installVersionLocked(w.Bucket, v); err != nil {
			// validateWriteLocked already screened the failure modes.
			firstErr = err
			break
		}
	}
	if len(buf) > 0 {
		if err := b.appendHeapLocked(buf); err != nil {
			return err
		}
	}
	return firstErr
}

// CommitEpoch implements BucketStore. The commit record plus fsync is the
// barrier that makes every version tagged <= epoch durable: replay only
// learns a commit from its record, and any record written before it is
// covered by the same fsync.
func (b *DiskBackend) CommitEpoch(epoch uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	if epoch > b.committed {
		framed := encodeRecord(nil, encodeEpochBody(heapKindCommit, epoch))
		if err := b.appendHeapLocked(framed); err != nil {
			return err
		}
		if err := b.heap.Sync(); err != nil {
			return b.wedge(err)
		}
		b.heapDead += int64(len(framed))
	}
	b.applyCommitLocked(epoch)
	b.maybeCompactHeapLocked()
	return nil
}

// RollbackTo implements BucketStore: crash recovery's shadow-paging revert.
// The rollback record is made durable before the index mutates, so a crash
// in between replays to a superset the next rollback discards again.
func (b *DiskBackend) RollbackTo(epoch uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	framed := encodeRecord(nil, encodeEpochBody(heapKindRollback, epoch))
	if err := b.appendHeapLocked(framed); err != nil {
		return err
	}
	if err := b.heap.Sync(); err != nil {
		return b.wedge(err)
	}
	b.heapDead += int64(len(framed))
	b.applyRollbackLocked(epoch)
	return nil
}

// CommittedEpoch reports the highest committed epoch (parity with
// MemBackend's test helper; recovery uses it to pick its revert target).
func (b *DiskBackend) CommittedEpoch() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.committed
}

// VersionCount reports how many shadow versions a bucket currently holds.
// Test helper.
func (b *DiskBackend) VersionCount(bucket int) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if bucket < 0 || bucket >= len(b.index) {
		return 0
	}
	return len(b.index[bucket])
}

// ---- heap compaction ----

// maybeCompactHeapLocked rewrites the heap when dead bytes dominate live
// ones. Compaction is pure garbage collection: the old file replays to the
// identical logical state, so a crash anywhere during compaction — before or
// after the rename — recovers correctly; the temp file is discarded on open.
func (b *DiskBackend) maybeCompactHeapLocked() {
	if b.heapDead < b.heapCompactMin || b.heapDead <= b.heapLive {
		return
	}
	// A failed compaction (before the rename) leaves the old file intact;
	// skip and retry at a later commit rather than wedging the store.
	_ = b.compactHeapLocked()
}

func (b *DiskBackend) compactHeapLocked() error {
	tmpName := joinPath(b.dir, heapFileName+tmpSuffix)
	tf, err := b.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tf.Close()
		_ = b.fsys.Remove(tmpName)
		return err
	}
	off := int64(0)
	write := func(p []byte) error {
		if _, err := tf.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
		return nil
	}
	if err := write(encodeFileHeader(heapMagic, uint32(b.numBuckets), 0)); err != nil {
		return abort(err)
	}
	newIndex := make([][]diskVersion, b.numBuckets)
	var newLive int64
	for bucket, vs := range b.index {
		for i := range vs {
			slots, err := b.readVersionSlotsLocked(&vs[i])
			if err != nil {
				return abort(err)
			}
			body := encodeVersionBody(bucket, vs[i].epoch, slots)
			nv := diskVersion{
				epoch:    vs[i].epoch,
				dataOff:  off + recordFrameSize + heapVersionDataStart,
				recSize:  int64(recordFrameSize + len(body)),
				slotLens: vs[i].slotLens,
			}
			if err := write(encodeRecord(nil, body)); err != nil {
				return abort(err)
			}
			newIndex[bucket] = append(newIndex[bucket], nv)
			newLive += nv.recSize
		}
	}
	var ctrl int64
	if b.committed > 0 {
		framed := encodeRecord(nil, encodeEpochBody(heapKindCommit, b.committed))
		if err := write(framed); err != nil {
			return abort(err)
		}
		ctrl = int64(len(framed))
	}
	if err := tf.Sync(); err != nil {
		return abort(err)
	}
	if err := b.fsys.Rename(tmpName, joinPath(b.dir, heapFileName)); err != nil {
		return abort(err)
	}
	// Rename durability is best-effort: if the directory sync fails and the
	// rename is lost in a crash, the old heap file replays to the same
	// logical state (compaction removed only dead bytes).
	_ = b.fsys.SyncDir(b.dir)
	b.heap.Close()
	b.heap = tf
	b.heapSize = off
	b.index = newIndex
	b.heapLive = newLive
	b.heapDead = ctrl
	return nil
}

// ---- Close ----

// Close implements Backend. Appended-but-unsynced bucket versions are not
// flushed: they are uncommitted by definition, and the durability contract
// only covers acknowledged commits, log appends and KV writes.
func (b *DiskBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if b.heap != nil {
		keep(b.heap.Close())
	}
	if b.kvf != nil {
		keep(b.kvf.Close())
	}
	for _, s := range b.segs {
		keep(s.f.Close())
	}
	return first
}
