package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sort"
	"sync"
)

// DiskBackend is a durable, crash-atomic implementation of the full Backend
// interface. Unlike MemBackend's whole-store gob snapshot, it persists
// incrementally:
//
//   - buckets.heap — a slotted heap of shadow-paged bucket versions.
//     WriteBuckets appends version records (no fsync: shadow paging makes
//     uncommitted versions discardable); CommitEpoch appends a commit record
//     and fsyncs — the durability barrier a commit ack stands on; RollbackTo
//     appends a rollback record and fsyncs. Superseded committed versions are
//     garbage-collected logically on commit and physically by compaction.
//   - wal-<base>.seg — segmented append-only log files for the recovery
//     unit. Append fsyncs before acking (the log IS the durability point for
//     the proxy's write-ahead records); Truncate drops whole dead segments.
//   - kv.log — an append-only put/delete journal for the NoPriv baseline's
//     namespace, compacted when dead entries dominate.
//   - meta — a tiny atomically-replaced file holding the bucket count and
//     the log truncation point.
//
// Every record is length-prefixed and checksummed; replay stops at the first
// invalid record and truncates the torn tail, so reopening after a crash at
// any point recovers exactly the state of the last completed fsync barrier.
// All I/O goes through the vfs abstraction so tests can interpose fault
// injection.
type DiskBackend struct {
	fsys vfs
	dir  string

	// closed/ioErr have their own tiny mutex so every path — heap, log, KV —
	// shares one wedge without sharing a data lock.
	stMu   sync.Mutex
	closed bool
	ioErr  error // sticky: a failed write may leave memory ahead of disk

	numBuckets int // immutable after open

	// group, when set, is the shared fsync scheduler: CommitEpoch,
	// RollbackTo, Append and Put append unsynced and stand on a group
	// barrier instead of issuing their own fsync, so barriers from shards
	// sharing a data dir coalesce into one flush wave.
	group *CommitGroup

	// recoveryWorkers bounds the worker pool that replays log segments (and
	// opens the heap/KV/log files concurrently) at open; 1 means serial.
	recoveryWorkers int

	// commitMu serializes the heap's durability barriers — CommitEpoch,
	// RollbackTo and the compaction swap — against each other, so the heap
	// file handle is stable across a barrier even though mu is released
	// while the fsync is in flight.
	commitMu sync.Mutex

	// Bucket heap (guarded by mu).
	mu             sync.RWMutex
	heap           vfile
	heapSize       int64
	heapReserved   int64           // preallocated frontier (>= heapSize when reserved ahead)
	index          [][]diskVersion // per bucket: version stack, oldest first
	committed      uint64
	heapLive       int64 // bytes of records still referenced by the index
	heapDead       int64 // bytes of superseded/rolled-back/control records
	heapCompactMin int64 // compact only past this much dead data

	// Background heap compactor (nil channels when off: tests drive
	// CompactNow explicitly for determinism).
	compactKick chan struct{}
	compactStop chan struct{}
	compactWG   sync.WaitGroup

	// presync, when on, schedules a best-effort background fsync of the
	// heap after bucket appends, so the epoch's write-back bytes are
	// already clean when CommitEpoch's barrier fsyncs. Purely a latency
	// optimization: the barrier's own fsync is still what acks stand on,
	// and a presync failure simply resurfaces there. presyncing (guarded
	// by mu) keeps at most one in flight.
	presync    bool
	presyncing bool

	// KV namespace (guarded by kvMu).
	kvMu         sync.RWMutex
	kvf          vfile
	kvSize       int64
	kv           map[string]kvEntry
	kvLive       int64
	kvDead       int64
	kvCompactMin int64

	// Recovery log (guarded by logMu, so log appends — and their fsyncs —
	// no longer serialize behind heap writes).
	logMu       sync.RWMutex
	segs        []*segment
	lastSeq     uint64
	truncBefore uint64 // sequence numbers below this are logically gone
	segMaxBytes int64
	// segRetain, when set (logheap mode), is the retention gate: segments
	// holding any sequence number >= segRetain() survive truncation because
	// they still carry live bucket versions or un-checkpointed index state.
	// Called under logMu; must only read atomics.
	segRetain func() uint64
	// keepDeadSegs defers open-time dead-segment collection until the
	// retention gate is installed (logheap mode).
	keepDeadSegs bool

	// Deferred log appends awaiting a SyncLog barrier, oldest first. Almost
	// always one entry; a second appears only when unsynced appends straddle
	// a segment rotation (rotation does not flush the outgoing tail).
	pendMu  sync.Mutex
	pendLog []fileTicket
}

// fileTicket records a deferred append's durability obligation: a flush of f
// covering ticket. One entry per file — later appends to the same file just
// advance the ticket, since a barrier on the newest ticket covers them all.
type fileTicket struct {
	f      vfile
	ticket uint64
}

// diskVersion locates one shadow-paged bucket version inside the heap file.
type diskVersion struct {
	epoch    uint64
	dataOff  int64 // file offset of the first slot's length prefix
	recSize  int64 // framed record size, for garbage accounting
	slotLens []uint32
	// cached mirrors this version's slot bytes in memory. The cache is
	// write-through only: WriteBuckets installs the bytes it just encoded,
	// recovery replay leaves it nil (those reads fall back to preads). Live
	// versions therefore keep about one store's worth of bytes resident —
	// the warm-page-cache case made explicit and deterministic — and the
	// read path skips the syscall entirely when the mirror is present.
	cached [][]byte
}

type kvEntry struct {
	value   []byte
	recSize int64
}

type segment struct {
	f    vfile
	name string
	base uint64  // sequence number of the first record
	offs []int64 // frame offset of each record
	lens []int32 // framed length of each record
	size int64
}

var _ Backend = (*DiskBackend)(nil)

const (
	heapFileName = "buckets.heap"
	kvFileName   = "kv.log"
	metaFileName = "meta"
	segPrefix    = "wal-"
	segSuffix    = ".seg"
	tmpSuffix    = ".tmp"
)

const (
	defaultHeapCompactMin = 1 << 20
	defaultKVCompactMin   = 1 << 18
	defaultSegMaxBytes    = 4 << 20
	// readCoalesceGap merges vectored slot reads whose file ranges are
	// within this many bytes into one pread.
	readCoalesceGap = 4096
)

// DiskOptions tunes OpenDiskBackendOpts beyond the defaults.
type DiskOptions struct {
	// Group routes every durability barrier through a shared fsync
	// scheduler (nil = each barrier fsyncs inline).
	Group *CommitGroup
	// RecoveryWorkers bounds the pool that replays and crc-verifies log
	// segments (and opens the heap/KV/log files concurrently) at open.
	// 0 picks a default from GOMAXPROCS; 1 forces serial recovery.
	RecoveryWorkers int
	// SegMaxBytes overrides the log segment roll-over size (0 = default).
	// Exposed for recovery benchmarks that need many segments.
	SegMaxBytes int64
	// LogHeap selects the log-structured bucket heap for a DiskGroup:
	// bucket version records ride the shared physical log alongside the
	// recovery-log streams, so an epoch's heap commit and its log barrier
	// share a single fsync wave. Only meaningful to OpenDiskGroupOpts; a
	// data dir is created in one mode and refuses to open in the other.
	LogHeap bool
}

// OpenDiskBackend opens (or creates) a durable backend rooted at dir.
// numBuckets fixes the tree size at creation; reopening an existing store
// with a different non-zero numBuckets fails loudly (0 adopts the stored
// size).
func OpenDiskBackend(dir string, numBuckets int) (*DiskBackend, error) {
	return OpenDiskBackendOpts(dir, numBuckets, DiskOptions{})
}

// OpenDiskBackendOpts is OpenDiskBackend with options.
func OpenDiskBackendOpts(dir string, numBuckets int, opts DiskOptions) (*DiskBackend, error) {
	return openDiskBackendOpts(osFS{}, dir, numBuckets, diskOpts{
		group:       opts.Group,
		workers:     opts.RecoveryWorkers,
		segMaxBytes: opts.SegMaxBytes,
		autoCompact: true,
		presync:     false,
	})
}

// diskOpts is the internal option set; crash-harness opens leave
// autoCompact and presync off (and workers at 1) so the swept op sequence
// stays deterministic, driving CompactNow explicitly instead.
type diskOpts struct {
	group       *CommitGroup
	workers     int
	segMaxBytes int64
	autoCompact bool
	presync     bool
	// noHeap skips buckets.heap entirely: the shard's bucket data lives in
	// the shared physical log (LogHeap) and the per-shard heap file is never
	// created. Bucket ops on the raw DiskBackend are invalid in this mode —
	// the owning GroupShard routes them to the LogHeap.
	noHeap bool
	// keepSegs defers open-time dead-segment collection until the logheap
	// retention gate is installed.
	keepSegs bool
	// logHeap selects the log-structured bucket heap for group opens (see
	// DiskOptions.LogHeap); openDiskGroupOpts derives noHeap/keepSegs for
	// the per-shard opens from it.
	logHeap bool
}

func openDiskBackend(fsys vfs, dir string, numBuckets int) (*DiskBackend, error) {
	return openDiskBackendOpts(fsys, dir, numBuckets, diskOpts{workers: 1})
}

func openDiskBackendOpts(fsys vfs, dir string, numBuckets int, opts diskOpts) (*DiskBackend, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating data dir: %w", err)
	}
	b := &DiskBackend{
		fsys:            fsys,
		dir:             dir,
		group:           opts.group,
		recoveryWorkers: opts.workers,
		presync:         opts.presync,
		kv:              make(map[string]kvEntry),
		heapCompactMin:  defaultHeapCompactMin,
		kvCompactMin:    defaultKVCompactMin,
		segMaxBytes:     defaultSegMaxBytes,
		truncBefore:     1,
		keepDeadSegs:    opts.keepSegs,
	}
	if opts.segMaxBytes > 0 {
		b.segMaxBytes = opts.segMaxBytes
	}
	if b.recoveryWorkers <= 0 {
		b.recoveryWorkers = defaultRecoveryWorkers()
	}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: listing data dir: %w", err)
	}
	for _, n := range names {
		// A crashed compaction or meta update leaves a stray temp file;
		// it was never renamed into place, so it is dead weight.
		if len(n) > len(tmpSuffix) && n[len(n)-len(tmpSuffix):] == tmpSuffix {
			_ = fsys.Remove(joinPath(dir, n))
		}
	}
	if err := b.openMeta(numBuckets); err != nil {
		return nil, err
	}
	// The heap, KV journal and log touch disjoint files and disjoint state:
	// with a worker budget they open (replay + crc verify) concurrently,
	// pFSCK-style. Serial order is preserved at workers == 1 so the crash
	// harness's op sequence stays deterministic.
	opens := []func() error{b.openKV, func() error { return b.openLog(names) }}
	if !opts.noHeap {
		opens = append([]func() error{b.openHeap}, opens...)
	}
	if b.recoveryWorkers > 1 {
		var wg sync.WaitGroup
		errs := make([]error, len(opens))
		for i, fn := range opens {
			wg.Add(1)
			go func(i int, fn func() error) {
				defer wg.Done()
				errs[i] = fn()
			}(i, fn)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for _, fn := range opens {
			if err := fn(); err != nil {
				return nil, err
			}
		}
	}
	// Creating buckets.heap / kv.log fsyncs their contents, but on ext4 a
	// new file's *directory entry* is only durable after a directory fsync;
	// without it, an acked first commit or Put could vanish with the whole
	// file on power loss. One barrier covers everything open created.
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	if opts.autoCompact {
		b.compactKick = make(chan struct{}, 1)
		b.compactStop = make(chan struct{})
		b.compactWG.Add(1)
		go b.compactLoop()
	}
	return b, nil
}

// defaultRecoveryWorkers sizes the replay pool: parallel crc verification
// saturates quickly, so a small pool captures most of the win.
func defaultRecoveryWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ---- meta ----

func (b *DiskBackend) openMeta(numBuckets int) error {
	f, err := b.fsys.OpenFile(joinPath(b.dir, metaFileName), os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		if numBuckets <= 0 {
			return fmt.Errorf("storage: creating a disk backend needs a positive bucket count (got %d)", numBuckets)
		}
		b.numBuckets = numBuckets
		return b.writeMeta()
	}
	if err != nil {
		return fmt.Errorf("storage: opening meta: %w", err)
	}
	size, serr := f.Size()
	if serr == nil && size == 0 {
		// A crash can install the meta rename before the file's content ever
		// became durable (e.g. a dropped fsync); an empty meta is the
		// pre-creation state, not corruption.
		f.Close()
		if numBuckets <= 0 {
			return fmt.Errorf("storage: creating a disk backend needs a positive bucket count (got %d)", numBuckets)
		}
		b.numBuckets = numBuckets
		return b.writeMeta()
	}
	buf, rerr := readFileRange(f, 0, fileHeaderSize)
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	if rerr != nil {
		return fmt.Errorf("storage: reading meta: %w", rerr)
	}
	if cerr != nil {
		return cerr
	}
	stored, trunc, err := decodeFileHeader(buf, metaMagic)
	if err != nil {
		return fmt.Errorf("storage: meta file: %w", err)
	}
	if numBuckets != 0 && int(stored) != numBuckets {
		return fmt.Errorf("storage: data dir holds %d buckets but %d requested (refusing to silently resize)", stored, numBuckets)
	}
	b.numBuckets = int(stored)
	if trunc > 0 {
		b.truncBefore = trunc
	}
	return nil
}

// writeMeta atomically replaces the meta file: temp file, fsync, rename,
// directory fsync. Callers hold the write lock (or are inside open).
func (b *DiskBackend) writeMeta() error {
	tmp := joinPath(b.dir, metaFileName+tmpSuffix)
	f, err := b.fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating meta: %w", err)
	}
	hdr := encodeFileHeader(metaMagic, uint32(b.numBuckets), b.truncBefore)
	if _, err := f.WriteAt(hdr, 0); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = b.fsys.Remove(tmp)
		return fmt.Errorf("storage: writing meta: %w", err)
	}
	if err := b.fsys.Rename(tmp, joinPath(b.dir, metaFileName)); err != nil {
		_ = b.fsys.Remove(tmp)
		return fmt.Errorf("storage: installing meta: %w", err)
	}
	return b.fsys.SyncDir(b.dir)
}

// ---- heap open / replay ----

func (b *DiskBackend) openHeap() error {
	f, err := b.fsys.OpenFile(joinPath(b.dir, heapFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("storage: opening bucket heap: %w", err)
	}
	b.heap = f
	b.index = make([][]diskVersion, b.numBuckets)
	size, err := f.Size()
	if err != nil {
		return err
	}
	if size < fileHeaderSize {
		// Empty, or shorter than a header: creation never durably completed
		// (the header is synced before any record can follow it), so no
		// committed data can exist — initialize fresh.
		if err := f.Truncate(0); err != nil {
			return err
		}
		hdr := encodeFileHeader(heapMagic, uint32(b.numBuckets), 0)
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return fmt.Errorf("storage: initializing bucket heap: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
		b.heapSize = fileHeaderSize
		b.heapReserved = fileHeaderSize
		return nil
	}
	hdr, err := readFileRange(f, 0, fileHeaderSize)
	if err != nil {
		return err
	}
	nb, _, err := decodeFileHeader(hdr, heapMagic)
	if err != nil {
		return fmt.Errorf("storage: bucket heap: %w", err)
	}
	if int(nb) != b.numBuckets {
		return fmt.Errorf("storage: bucket heap holds %d buckets but meta says %d", nb, b.numBuckets)
	}
	end, err := b.replayHeap(f, size)
	if err != nil {
		return err
	}
	if end < size {
		// Torn tail from a crash between the last fsync barrier and the
		// crash point; every record past end is unreachable by replay.
		if err := f.Truncate(end); err != nil {
			return fmt.Errorf("storage: truncating torn heap tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	b.heapSize = end
	b.heapReserved = end
	return nil
}

// replayHeap scans heap records from the header to the first invalid record,
// rebuilding the version index, and returns the offset replay stopped at.
func (b *DiskBackend) replayHeap(f vfile, size int64) (int64, error) {
	sc := newRecordScanner(f, fileHeaderSize, size)
	off := int64(fileHeaderSize)
	for off < size {
		body, total, err := sc.next()
		if err != nil {
			if errors.Is(err, errTornRecord) {
				return off, nil
			}
			return 0, fmt.Errorf("storage: bucket heap at offset %d: %w", off, err)
		}
		rec, err := parseHeapBody(body)
		if err != nil {
			// A structurally invalid body under a valid checksum is not a
			// torn write — it is corruption, and must fail loudly.
			return 0, fmt.Errorf("storage: bucket heap at offset %d: %w", off, err)
		}
		switch rec.kind {
		case heapKindVersion:
			if rec.bucket < 0 || rec.bucket >= b.numBuckets {
				return 0, fmt.Errorf("storage: bucket heap references bucket %d of %d", rec.bucket, b.numBuckets)
			}
			v := diskVersion{
				epoch:    rec.epoch,
				dataOff:  off + recordFrameSize + heapVersionDataStart,
				recSize:  int64(total),
				slotLens: rec.slotLens,
			}
			if err := b.installVersionLocked(rec.bucket, v); err != nil {
				return 0, fmt.Errorf("storage: bucket heap replay: %w", err)
			}
		case heapKindCommit:
			b.applyCommitLocked(rec.epoch)
			b.heapDead += int64(total)
		case heapKindRollback:
			b.applyRollbackLocked(rec.epoch)
			b.heapDead += int64(total)
		}
		off += int64(total)
	}
	return off, nil
}

// installVersionLocked applies one version to the index with MemBackend's
// shadow-paging rules: same-epoch writes supersede in place, lower-epoch
// writes after a higher epoch are rejected.
func (b *DiskBackend) installVersionLocked(bucket int, v diskVersion) error {
	vs := b.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch == v.epoch {
		b.heapDead += vs[n-1].recSize
		b.heapLive += v.recSize - vs[n-1].recSize
		vs[n-1] = v
		return nil
	}
	if n := len(vs); n > 0 && vs[n-1].epoch > v.epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, v.epoch, vs[n-1].epoch)
	}
	b.index[bucket] = append(vs, v)
	b.heapLive += v.recSize
	return nil
}

// applyCommitLocked advances the committed frontier and garbage-collects
// superseded versions inside the committed prefix (index only; bytes become
// dead and are reclaimed by compaction).
func (b *DiskBackend) applyCommitLocked(epoch uint64) {
	if epoch > b.committed {
		b.committed = epoch
	}
	for i, vs := range b.index {
		keep := -1
		for j := len(vs) - 1; j >= 0; j-- {
			if vs[j].epoch <= b.committed {
				keep = j
				break
			}
		}
		if keep > 0 {
			for _, v := range vs[:keep] {
				b.heapDead += v.recSize
				b.heapLive -= v.recSize
			}
			b.index[i] = append(vs[:0], vs[keep:]...)
		}
	}
}

func (b *DiskBackend) applyRollbackLocked(epoch uint64) {
	for i, vs := range b.index {
		n := len(vs)
		for n > 0 && vs[n-1].epoch > epoch {
			n--
			b.heapDead += vs[n].recSize
			b.heapLive -= vs[n].recSize
		}
		b.index[i] = vs[:n]
	}
	if b.committed > epoch {
		b.committed = epoch
	}
}

// ---- common guards ----

func (b *DiskBackend) checkUsable() error {
	b.stMu.Lock()
	defer b.stMu.Unlock()
	if b.closed {
		return ErrClosed
	}
	return b.ioErr
}

// wedge marks the backend unusable: after a failed write the in-memory index
// may be ahead of the file, and continuing could ack operations the disk
// never saw. Fail-stop is the honest behaviour; reopening replays the file
// back to a consistent state.
func (b *DiskBackend) wedge(err error) error {
	b.stMu.Lock()
	defer b.stMu.Unlock()
	if b.ioErr == nil {
		b.ioErr = fmt.Errorf("storage: disk backend disabled by I/O error: %w", err)
	}
	return err
}

// stamp tickets bytes the caller just wrote to f, so the matching
// barrierTicket can ride an fsync already in flight when it arrives (0
// without a group: the inline fsync needs no ticket).
func (b *DiskBackend) stamp(f vfile) uint64 {
	if b.group != nil {
		return b.group.Wrote(f)
	}
	return 0
}

// barrierTicket makes the bytes stamped by ticket durable: through the
// shared scheduler when the backend belongs to a commit group, with an
// inline fsync otherwise. The caller's ack stands on this call returning
// nil.
func (b *DiskBackend) barrierTicket(f vfile, ticket uint64) error {
	if b.group != nil {
		return b.group.BarrierTicket(f, ticket)
	}
	return f.Sync()
}

// forgetFile releases a retired file's scheduler state (rolled-over
// segments, compacted-away heaps and journals). Call after f is closed.
func (b *DiskBackend) forgetFile(f vfile) {
	if b.group != nil {
		b.group.Forget(f)
	}
	// Drop any deferred-barrier obligation on the retired file: its records
	// were only ever retired because they are logically gone (truncation,
	// compaction), so there is nothing left to make durable — and a later
	// SyncLog must not fsync a closed handle.
	b.pendMu.Lock()
	keep := b.pendLog[:0]
	for _, p := range b.pendLog {
		if p.f != f {
			keep = append(keep, p)
		}
	}
	b.pendLog = keep
	b.pendMu.Unlock()
}

// appendHeapLocked appends pre-framed bytes to the heap file (no fsync).
// heapPreallocChunk is how much backing store the heap reserves ahead of
// its append frontier, so write-backs land in preallocated blocks and the
// epoch barriers flush data without allocation-metadata journal commits.
const heapPreallocChunk = 4 << 20

func (b *DiskBackend) appendHeapLocked(framed []byte) error {
	if end := b.heapSize + int64(len(framed)); end > b.heapReserved {
		r := end + heapPreallocChunk
		preallocate(b.heap, b.heapReserved, r-b.heapReserved)
		// Advance regardless of fallocate support: on the fallback path the
		// reservation is notional and writes allocate as they always did.
		b.heapReserved = r
	}
	if _, err := b.heap.WriteAt(framed, b.heapSize); err != nil {
		return b.wedge(err)
	}
	b.heapSize += int64(len(framed))
	return nil
}

// ---- BucketStore ----

// NumBuckets implements BucketStore.
func (b *DiskBackend) NumBuckets() (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return 0, err
	}
	return b.numBuckets, nil
}

func (b *DiskBackend) newestVersionLocked(bucket int) (*diskVersion, error) {
	if err := checkBucket(bucket, b.numBuckets); err != nil {
		return nil, err
	}
	vs := b.index[bucket]
	if len(vs) == 0 {
		return nil, nil
	}
	return &vs[len(vs)-1], nil
}

// slotRange locates slot within v: file offset of the slot's data bytes and
// its length.
func (v *diskVersion) slotRange(slot int) (off int64, n int) {
	off = v.dataOff
	for i := 0; i < slot; i++ {
		off += 4 + int64(v.slotLens[i])
	}
	return off + 4, int(v.slotLens[slot])
}

// span reports the file range covering all of v's slots.
func (v *diskVersion) span() (off int64, n int) {
	off = v.dataOff
	for _, l := range v.slotLens {
		n += 4 + int(l)
	}
	return off, n
}

// lookupSlotLocked finds the newest version of bucket and bounds-checks slot
// against it.
func (b *DiskBackend) lookupSlotLocked(bucket, slot int) (*diskVersion, error) {
	v, err := b.newestVersionLocked(bucket)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("%w: bucket %d never written", ErrNoSuchSlot, bucket)
	}
	if slot < 0 || slot >= len(v.slotLens) {
		return nil, fmt.Errorf("%w: bucket %d slot %d (have %d)", ErrNoSuchSlot, bucket, slot, len(v.slotLens))
	}
	return v, nil
}

// ReadSlot implements BucketStore.
func (b *DiskBackend) ReadSlot(bucket, slot int) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	v, err := b.lookupSlotLocked(bucket, slot)
	if err != nil {
		return nil, err
	}
	if v.cached != nil {
		return v.cached[slot], nil
	}
	off, n := v.slotRange(slot)
	return readFileRange(b.heap, off, n)
}

// ReadSlots implements BucketStore: the whole vector resolves under one lock
// acquisition. Refs whose version carries the in-memory mirror are answered
// from it outright; the remainder (post-recovery versions) are served
// scatter-gather style — sorted by file offset, adjacent ranges coalescing
// into shared preads — so a stage's reads cost at most a handful of syscalls
// and usually none. The vector fails atomically: every ref is validated
// before any I/O.
func (b *DiskBackend) ReadSlots(refs []SlotRef) ([][]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	type slotRead struct {
		resIdx int
		off    int64
		n      int
	}
	reads := make([]slotRead, 0, len(refs))
	out := make([][]byte, len(refs))
	for i, r := range refs {
		v, err := b.lookupSlotLocked(r.Bucket, r.Slot)
		if err != nil {
			return nil, err
		}
		if v.cached != nil {
			out[i] = v.cached[r.Slot]
			continue
		}
		off, n := v.slotRange(r.Slot)
		reads = append(reads, slotRead{resIdx: i, off: off, n: n})
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].off < reads[j].off })
	for start := 0; start < len(reads); {
		end := start
		runEnd := reads[start].off + int64(reads[start].n)
		for end+1 < len(reads) && reads[end+1].off <= runEnd+readCoalesceGap {
			end++
			if e := reads[end].off + int64(reads[end].n); e > runEnd {
				runEnd = e
			}
		}
		base := reads[start].off
		buf, err := readFileRange(b.heap, base, int(runEnd-base))
		if err != nil {
			return nil, err
		}
		for i := start; i <= end; i++ {
			lo := reads[i].off - base
			out[reads[i].resIdx] = buf[lo : lo+int64(reads[i].n)]
		}
		start = end + 1
	}
	return out, nil
}

// ReadBucket implements BucketStore with a single pread covering the whole
// newest version.
func (b *DiskBackend) ReadBucket(bucket int) ([][]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.checkUsable(); err != nil {
		return nil, err
	}
	v, err := b.newestVersionLocked(bucket)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return b.readVersionSlotsLocked(v)
}

func (b *DiskBackend) readVersionSlotsLocked(v *diskVersion) ([][]byte, error) {
	if v.cached != nil {
		return v.cached, nil
	}
	off, n := v.span()
	buf, err := readFileRange(b.heap, off, n)
	if err != nil {
		return nil, err
	}
	slots := make([][]byte, len(v.slotLens))
	pos := 0
	for i, l := range v.slotLens {
		pos += 4
		slots[i] = buf[pos : pos+int(l)]
		pos += int(l)
	}
	return slots, nil
}

func (b *DiskBackend) validateWriteLocked(bucket int, epoch uint64) error {
	if err := checkBucket(bucket, b.numBuckets); err != nil {
		return err
	}
	vs := b.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch > epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, epoch, vs[n-1].epoch)
	}
	return nil
}

// WriteBucket implements BucketStore.
func (b *DiskBackend) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	return b.WriteBuckets([]BucketWrite{{Bucket: bucket, Epoch: epoch, Slots: slots}})
}

// WriteBuckets implements BucketStore: the whole vector is encoded into one
// buffer and appended with a single write syscall (no fsync — CommitEpoch is
// the durability barrier; shadow paging makes an unsynced or partially
// persisted version harmless). Writes install in vector order and the call
// stops at the first failing entry, leaving the validated prefix installed,
// exactly like MemBackend.
func (b *DiskBackend) WriteBuckets(writes []BucketWrite) error {
	// Encode the whole vector before taking the heap lock: a record's frame
	// (crc included) is independent of its file offset, so the kilobytes of
	// copy + checksum work need no exclusivity. Only validation, index
	// installation and the append run under mu — concurrent read batches
	// overlap the write-back's encoding instead of stalling behind it. If
	// validation stops mid-vector, the encoded suffix is simply not
	// appended (records concatenate in vector order).
	type pendingWrite struct {
		relOff   int64
		recSize  int64
		slotLens []uint32
	}
	var buf []byte
	pend := make([]pendingWrite, len(writes))
	for i, w := range writes {
		body := encodeVersionBody(w.Bucket, w.Epoch, w.Slots)
		pend[i].relOff = int64(len(buf))
		buf = encodeRecord(buf, body)
		pend[i].recSize = int64(recordFrameSize + len(body))
		pend[i].slotLens = make([]uint32, len(w.Slots))
		for j, s := range w.Slots {
			pend[i].slotLens[j] = uint32(len(s))
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkUsable(); err != nil {
		return err
	}
	var firstErr error
	end := int64(len(buf))
	for i, w := range writes {
		if err := b.validateWriteLocked(w.Bucket, w.Epoch); err != nil {
			firstErr = err
			end = pend[i].relOff
			break
		}
		v := diskVersion{
			epoch:    w.Epoch,
			dataOff:  b.heapSize + pend[i].relOff + recordFrameSize + heapVersionDataStart,
			recSize:  pend[i].recSize,
			slotLens: pend[i].slotLens,
			// Take ownership of the caller's slices, like MemBackend does.
			cached: w.Slots,
		}
		if err := b.installVersionLocked(w.Bucket, v); err != nil {
			// validateWriteLocked already screened the failure modes.
			firstErr = err
			end = pend[i].relOff
			break
		}
	}
	if end > 0 {
		if err := b.appendHeapLocked(buf[:end]); err != nil {
			return err
		}
		b.kickPresyncLocked()
	}
	return firstErr
}

// kickPresyncLocked starts (at most one) background fsync of the heap so
// the write-back bytes just appended are clean by the time the epoch's
// commit barrier runs. The error is deliberately dropped: durability is
// still decided by the barrier's own fsync, which will see the same failure
// and wedge the backend.
func (b *DiskBackend) kickPresyncLocked() {
	if !b.presync || b.presyncing {
		return
	}
	b.presyncing = true
	f := b.heap
	go func() {
		_ = f.Sync()
		b.mu.Lock()
		b.presyncing = false
		b.mu.Unlock()
	}()
}

// CommitEpoch implements BucketStore. The commit record plus its covering
// fsync is the barrier that makes every version tagged <= epoch durable:
// replay only learns a commit from its record, and any record written before
// it is covered by the same fsync. The record is appended *unsynced* under
// the heap lock, which is then released for the barrier itself — reads,
// bucket writes and other shards' commits proceed while the fsync (or the
// shared group's coalesced fsync wave) is in flight. commitMu keeps the heap
// handle stable and the commit/rollback record order equal to the barrier
// order.
func (b *DiskBackend) CommitEpoch(epoch uint64) error {
	return b.heapBarrierOp(heapKindCommit, epoch)
}

// RollbackTo implements BucketStore: crash recovery's shadow-paging revert.
// The rollback record is made durable before the index mutates, so a crash
// in between replays to a superset the next rollback discards again.
func (b *DiskBackend) RollbackTo(epoch uint64) error {
	return b.heapBarrierOp(heapKindRollback, epoch)
}

// heapBarrierOp appends a commit or rollback record and applies it to the
// index in one critical section (so the record order always equals the index
// mutation order replay will reproduce), then stands on the barrier with the
// heap lock released. Nothing is acknowledged before the barrier returns: a
// pre-barrier crash loses an unacked record (replay recovers the previous
// barrier's state), a post-barrier crash preserves the acked epoch. The
// swept crash windows are append-unsynced, pre-fsync and post-fsync-pre-ack.
// If the barrier fails, the in-memory index is ahead of disk — wedge.
func (b *DiskBackend) heapBarrierOp(kind byte, epoch uint64) error {
	b.commitMu.Lock()
	defer b.commitMu.Unlock()
	b.mu.Lock()
	if err := b.checkUsable(); err != nil {
		b.mu.Unlock()
		return err
	}
	// An already-covered commit needs no new record or barrier; rollbacks
	// always log (the index shrinks, and replay must see that).
	needBarrier := kind == heapKindRollback || epoch > b.committed
	heap := b.heap
	var ticket uint64
	if needBarrier {
		framed := encodeRecord(nil, encodeEpochBody(kind, epoch))
		if err := b.appendHeapLocked(framed); err != nil {
			b.mu.Unlock()
			return err
		}
		b.heapDead += int64(len(framed))
		ticket = b.stamp(heap)
	}
	if kind == heapKindCommit {
		b.applyCommitLocked(epoch)
	} else {
		b.applyRollbackLocked(epoch)
	}
	b.noteCompactLocked()
	b.mu.Unlock()
	if needBarrier {
		if err := b.barrierTicket(heap, ticket); err != nil {
			return b.wedge(err)
		}
	}
	return nil
}

// CommittedEpoch reports the highest committed epoch (parity with
// MemBackend's test helper; recovery uses it to pick its revert target).
func (b *DiskBackend) CommittedEpoch() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.committed
}

// VersionCount reports how many shadow versions a bucket currently holds.
// Test helper.
func (b *DiskBackend) VersionCount(bucket int) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if bucket < 0 || bucket >= len(b.index) {
		return 0
	}
	return len(b.index[bucket])
}

// ---- heap compaction ----

// Compaction is incremental and runs OFF the commit path: commits and
// rollbacks only flip a kick channel; a background goroutine (or an explicit
// CompactNow in tests and the crash harness) does the rewrite, holding the
// heap lock only to snapshot the index and to swap files at the end. The
// bulk copy — every live version record, verbatim — happens without any
// lock, racing only against appends, which are safe to race: the heap file
// is append-only, so every offset below the snapshot size is immutable.

// noteCompactLocked kicks the background compactor when dead bytes dominate
// live ones. No-op when auto-compaction is off (crash-harness opens).
func (b *DiskBackend) noteCompactLocked() {
	if b.compactKick == nil {
		return
	}
	if b.heapDead < b.heapCompactMin || b.heapDead <= b.heapLive {
		return
	}
	select {
	case b.compactKick <- struct{}{}:
	default:
	}
}

func (b *DiskBackend) compactLoop() {
	defer b.compactWG.Done()
	for {
		select {
		case <-b.compactStop:
			return
		case <-b.compactKick:
		}
		b.mu.RLock()
		due := b.heapDead >= b.heapCompactMin && b.heapDead > b.heapLive
		b.mu.RUnlock()
		if due {
			// A failed compaction (before the rename) leaves the old file
			// intact; skip and retry at a later kick rather than wedging.
			_ = b.CompactNow()
		}
	}
}

// CompactNow rewrites the heap to its live contents synchronously. It is
// crash-atomic at every step: the new file replays to the identical logical
// state as the old one, the rename is the switch-over point, and a crashed
// attempt leaves a stray temp file the next open discards.
func (b *DiskBackend) CompactNow() error {
	b.commitMu.Lock()
	defer b.commitMu.Unlock()
	return b.compactHeap()
}

// compactHeap runs with commitMu held (no commit/rollback barrier can be in
// flight, and the heap handle cannot change under us) but takes the heap
// lock only at the edges:
//
//  1. Snapshot the index and file size under a read lock.
//  2. Copy every snapshotted live version record verbatim into a temp file,
//     unlocked: offsets below the snapshot size are stable (append-only
//     file), so concurrent bucket appends cannot disturb the copy. A
//     synthetic commit record pins the snapshot's committed frontier.
//  3. Under the write lock, copy the tail delta — everything appended since
//     the snapshot, verbatim, commits/rollbacks/rewrites included, so the
//     new file replays through the exact same logical suffix — then fsync,
//     rename, and swap the in-memory index to rebased offsets.
func (b *DiskBackend) compactHeap() error {
	b.mu.RLock()
	if err := b.checkUsable(); err != nil {
		b.mu.RUnlock()
		return err
	}
	heap := b.heap // stable: commitMu is held, and Close waits for it
	snapSize := b.heapSize
	snapCommitted := b.committed
	snapIndex := make([][]diskVersion, len(b.index))
	for i, vs := range b.index {
		snapIndex[i] = append([]diskVersion(nil), vs...)
	}
	b.mu.RUnlock()

	tmpName := joinPath(b.dir, heapFileName+tmpSuffix)
	tf, err := b.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tf.Close()
		_ = b.fsys.Remove(tmpName)
		return err
	}
	off := int64(0)
	write := func(p []byte) error {
		if _, err := tf.WriteAt(p, off); err != nil {
			return err
		}
		off += int64(len(p))
		return nil
	}
	if err := write(encodeFileHeader(heapMagic, uint32(b.numBuckets), 0)); err != nil {
		return abort(err)
	}
	// Phase 2: verbatim copy of every snapshotted record, remembering where
	// each landed. Only records fully below the snapshot size qualify (a
	// record at or past it is part of the tail delta and is copied there).
	remap := make(map[int64]int64)
	for bucket, vs := range snapIndex {
		for i := range vs {
			v := &vs[i]
			recOff := v.dataOff - recordFrameSize - heapVersionDataStart
			if recOff >= snapSize {
				continue
			}
			rec, err := readFileRange(heap, recOff, int(v.recSize))
			if err != nil {
				return abort(fmt.Errorf("storage: compacting bucket %d: %w", bucket, err))
			}
			remap[v.dataOff] = off + recordFrameSize + heapVersionDataStart
			if err := write(rec); err != nil {
				return abort(err)
			}
		}
	}
	if snapCommitted > 0 {
		framed := encodeRecord(nil, encodeEpochBody(heapKindCommit, snapCommitted))
		if err := write(framed); err != nil {
			return abort(err)
		}
	}

	// Phase 3: under the write lock, append the tail delta and swap.
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkUsable(); err != nil {
		return abort(err)
	}
	tailStart := off
	if b.heapSize > snapSize {
		tail, err := readFileRange(heap, snapSize, int(b.heapSize-snapSize))
		if err != nil {
			return abort(err)
		}
		if err := write(tail); err != nil {
			return abort(err)
		}
	}
	shift := tailStart - snapSize
	if err := tf.Sync(); err != nil {
		return abort(err)
	}
	if err := b.fsys.Rename(tmpName, joinPath(b.dir, heapFileName)); err != nil {
		return abort(err)
	}
	// Rename durability is best-effort: if the directory sync fails and the
	// rename is lost in a crash, the old heap file replays to the same
	// logical state (compaction removed only dead bytes).
	_ = b.fsys.SyncDir(b.dir)
	var newLive int64
	for bucket, vs := range b.index {
		for i := range vs {
			v := &vs[i]
			if v.dataOff-recordFrameSize-heapVersionDataStart >= snapSize {
				v.dataOff += shift
			} else if mapped, ok := remap[v.dataOff]; ok {
				v.dataOff = mapped
			} else {
				// Every pre-snapshot index entry was live at snapshot time
				// (appends only ever reference fresh offsets), so a miss is
				// an invariant violation; the new file is already installed,
				// so serving stale offsets would corrupt reads. Fail stop.
				return b.wedge(fmt.Errorf("storage: compaction lost bucket %d version at offset %d", bucket, v.dataOff))
			}
			newLive += v.recSize
		}
	}
	b.heap.Close()
	b.forgetFile(b.heap)
	b.heap = tf
	b.heapSize = off
	b.heapReserved = off
	b.heapLive = newLive
	b.heapDead = b.heapSize - fileHeaderSize - newLive
	return nil
}

// ---- Close ----

// Close implements Backend. Appended-but-unsynced bucket versions are not
// flushed: they are uncommitted by definition, and the durability contract
// only covers acknowledged commits, log appends and KV writes. The shared
// commit group (if any) is NOT closed — it belongs to the directory, not
// the shard; DiskGroup.Close owns that.
func (b *DiskBackend) Close() error {
	b.stMu.Lock()
	if b.closed {
		b.stMu.Unlock()
		return nil
	}
	b.closed = true
	b.stMu.Unlock()
	// Stop the background compactor before taking the data locks: a running
	// compaction takes commitMu + mu itself and must finish (or abort) first.
	if b.compactStop != nil {
		close(b.compactStop)
		b.compactWG.Wait()
	}
	b.commitMu.Lock()
	defer b.commitMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.kvMu.Lock()
	defer b.kvMu.Unlock()
	b.logMu.Lock()
	defer b.logMu.Unlock()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if b.heap != nil {
		keep(b.heap.Close())
	}
	if b.kvf != nil {
		keep(b.kvf.Close())
	}
	for _, s := range b.segs {
		keep(s.f.Close())
	}
	return first
}
