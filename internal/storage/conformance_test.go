package storage

import (
	"testing"
)

// The conformance suite runs against every Backend implementation in the
// package, replacing the ad-hoc per-backend coverage that let contract edges
// drift apart.

func TestBackendConformanceMem(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		return NewMemBackend(ConformanceMinBuckets)
	})
}

func TestBackendConformanceDisk(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		b, err := OpenDiskBackend(t.TempDir(), ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	})
}

// The disk backend must also pass the suite after a close/reopen cycle at
// the start, proving a recovered store honors the same contract.
func TestBackendConformanceDiskReopened(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		dir := t.TempDir()
		b, err := OpenDiskBackend(dir, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		b, err = OpenDiskBackend(dir, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	})
}

func TestBackendConformanceDummy(t *testing.T) {
	RunBackendConformanceOpts(t, func(t *testing.T) Backend {
		return NewDummyBackend(ConformanceMinBuckets, 64)
	}, ConformanceOptions{BucketDataDiscarded: true})
}

func TestBackendConformanceLatency(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		return WithLatency(NewMemBackend(ConformanceMinBuckets), Profile{Name: "conformance"})
	})
}

func TestBackendConformanceRemote(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		inner := NewMemBackend(ConformanceMinBuckets)
		srv, err := NewServer(inner, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(srv.Addr())
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Close()
			srv.Close()
		})
		return c
	})
}

// The remote client over a DiskBackend is the deployment obladi-storage
// -data-dir actually serves; the composition must hold the contract too.
func TestBackendConformanceRemoteDisk(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		inner, err := OpenDiskBackend(t.TempDir(), ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(inner, "127.0.0.1:0")
		if err != nil {
			inner.Close()
			t.Fatal(err)
		}
		c, err := Dial(srv.Addr())
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Close()
			srv.Close()
		})
		return c
	})
}
