package storage

import (
	"testing"
)

// The conformance suite runs against every Backend implementation in the
// package, replacing the ad-hoc per-backend coverage that let contract edges
// drift apart.

func TestBackendConformanceMem(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		return NewMemBackend(ConformanceMinBuckets)
	})
}

func TestBackendConformanceDisk(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		b, err := OpenDiskBackend(t.TempDir(), ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	})
}

// The disk backend must also pass the suite after a close/reopen cycle at
// the start, proving a recovered store honors the same contract.
func TestBackendConformanceDiskReopened(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		dir := t.TempDir()
		b, err := OpenDiskBackend(dir, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		b, err = OpenDiskBackend(dir, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	})
}

func TestBackendConformanceDummy(t *testing.T) {
	RunBackendConformanceOpts(t, func(t *testing.T) Backend {
		return NewDummyBackend(ConformanceMinBuckets, 64)
	}, ConformanceOptions{BucketDataDiscarded: true})
}

func TestBackendConformanceLatency(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		return WithLatency(NewMemBackend(ConformanceMinBuckets), Profile{Name: "conformance"})
	})
}

func TestBackendConformanceRemote(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		inner := NewMemBackend(ConformanceMinBuckets)
		srv, err := NewServer(inner, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(srv.Addr())
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Close()
			srv.Close()
		})
		return c
	})
}

// A shard routing its barriers through a commit group must be contract-
// indistinguishable from one issuing its own fsyncs — the whole single-shard
// suite runs against a group-backed shard to prove it.
func TestBackendConformanceDiskGrouped(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		g, err := OpenDiskGroup(t.TempDir(), 1, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()[0]
	})
}

// A logheap shard — bucket versions as records on the shared physical log —
// must be contract-indistinguishable from the bucket-heap-file backends.
func TestBackendConformanceLogHeap(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		g, err := OpenDiskGroupOpts(t.TempDir(), 1, ConformanceMinBuckets, DiskOptions{LogHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()[0]
	})
}

// The logheap contract must also survive a close/reopen cycle: the reopened
// store rebuilds its bucket index from the index checkpoint plus a replay of
// the shared log's bucket-data streams.
func TestBackendConformanceLogHeapReopened(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		dir := t.TempDir()
		g, err := OpenDiskGroupOpts(dir, 1, ConformanceMinBuckets, DiskOptions{LogHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		g, err = OpenDiskGroupOpts(dir, 1, ConformanceMinBuckets, DiskOptions{LogHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()[0]
	})
}

// Group-commit conformance: N disk shards on one data dir sharing one
// CommitGroup scheduler.
func TestBackendConformanceGroupDisk(t *testing.T) {
	RunGroupCommitConformance(t, 3, func(t *testing.T, n int) []Backend {
		g, err := OpenDiskGroup(t.TempDir(), n, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()
	})
}

// The same contract must hold with a tight window (every barrier races the
// flusher) — the degenerate scheduling the crash sweep leans on.
func TestBackendConformanceGroupDiskZeroWindow(t *testing.T) {
	RunGroupCommitConformance(t, 3, func(t *testing.T, n int) []Backend {
		cg := NewCommitGroup(GroupConfig{Window: 0})
		g, err := OpenDiskGroupOpts(t.TempDir(), n, ConformanceMinBuckets, DiskOptions{Group: cg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()
	})
}

// Logheap group-commit conformance: every shard's bucket versions, epoch
// commits, and log stream ride ONE physical log. Epoch-order rejection,
// rollback after a partially installed write vector, and closed-shard
// isolation must hold exactly as they do with per-shard heap files.
func TestBackendConformanceGroupLogHeap(t *testing.T) {
	RunGroupCommitConformance(t, 3, func(t *testing.T, n int) []Backend {
		g, err := OpenDiskGroupOpts(t.TempDir(), n, ConformanceMinBuckets, DiskOptions{LogHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		return g.Backends()
	})
}

// Mem shards sharing a LatencyGroup: the bench harness's "honest mem side"
// must satisfy the same group contract it is compared against.
func TestBackendConformanceGroupMemLatency(t *testing.T) {
	RunGroupCommitConformance(t, 3, func(t *testing.T, n int) []Backend {
		lg := NewLatencyGroup()
		out := make([]Backend, n)
		for i := range out {
			out[i] = WithLatencyGroup(NewMemBackend(ConformanceMinBuckets), Profile{Name: "conformance"}, lg)
		}
		return out
	})
}

// Remote clients over disk shards sharing one CommitGroup — the deployment
// obladi-storage -shards N -data-dir serves. The wire layer must not disturb
// the group contract.
func TestBackendConformanceGroupRemoteDisk(t *testing.T) {
	RunGroupCommitConformance(t, 2, func(t *testing.T, n int) []Backend {
		g, err := OpenDiskGroup(t.TempDir(), n, ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { g.Close() })
		out := make([]Backend, n)
		// Serve the shared-log views, exactly as obladi-storage -shards
		// does: raw shard access would write unwrapped records into the
		// shared physical log.
		for i, shard := range g.Backends() {
			srv, err := NewServer(shard, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			c, err := Dial(srv.Addr())
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			t.Cleanup(func() {
				c.Close()
				srv.Close()
			})
			out[i] = c
		}
		return out
	})
}

// The remote client over a DiskBackend is the deployment obladi-storage
// -data-dir actually serves; the composition must hold the contract too.
func TestBackendConformanceRemoteDisk(t *testing.T) {
	RunBackendConformance(t, func(t *testing.T) Backend {
		inner, err := OpenDiskBackend(t.TempDir(), ConformanceMinBuckets)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(inner, "127.0.0.1:0")
		if err != nil {
			inner.Close()
			t.Fatal(err)
		}
		c, err := Dial(srv.Addr())
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Close()
			srv.Close()
		})
		return c
	})
}
