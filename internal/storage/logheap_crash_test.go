package storage

import (
	"errors"
	"fmt"
	"testing"
)

// The unified-log sweep: crashes a logheap-mode DiskGroup — bucket version
// records, epoch commit/rollback records, and every shard's WAL stream all
// riding ONE physical segmented log — at every mutation point in every fault
// mode. On top of the shared-log sweep's surface (deferred rounds closed by
// one SyncLog) this covers what only logheap mode has: deferred bucket
// writes made durable by the round's single barrier, unified epoch commits
// (CommitEpochNoSync + SyncLog, the proxy's single-barrier boundary), the
// atomically-replaced index checkpoint, and segment GC's copy-forward pass —
// with crash points landing mid-checkpoint-replace and mid-evacuation.
//
// The workload is strictly serial, so the global mutation-op counter indexes
// crash points deterministically; the group opens with maintenance off and
// drives Checkpoint / EvacuateSegment explicitly for the same reason.
//
// Like the shared-log sweep, the workload never truncates the WAL (stream
// floors are not persisted, so a reopen would renumber streams and
// desynchronize the oracle's seq-indexed log check). One consequence is that
// dropDeadSegments never finds a removable segment here — the WAL floor
// pins them all — so the swept GC surface is the copy-forward pass and its
// checkpoint, which is also the only part of GC that mutates heap state;
// the drop itself is a journaled remove of bytes nothing references.

const logHeapSweepShards = 2

// openLogHeapSweepGroup opens the group the sweep drives: logheap mode,
// serial recovery, background maintenance off.
func openLogHeapSweepGroup(fsys *crashFS) (*DiskGroup, error) {
	return openDiskGroupOpts(fsys, "data", logHeapSweepShards, 5, diskOpts{workers: 1, logHeap: true})
}

// runLogHeapCrashWorkload opens a logheap DiskGroup on the fault-injecting
// fs and drives the deterministic serial workload. Acked operations mirror
// into per-shard oracles; a crash during the open leaves every oracle at
// epoch 0, which is what each shard must then recover to.
func runLogHeapCrashWorkload(t *testing.T, fsys *crashFS) []*sweepOracle {
	t.Helper()
	oracles := make([]*sweepOracle, logHeapSweepShards)
	for i := range oracles {
		oracles[i] = newSweepOracle(5)
	}
	g, err := openLogHeapSweepGroup(fsys)
	if err != nil {
		if !errors.Is(err, errInjectedCrash) {
			t.Fatalf("logheap group open failed oddly: %v", err)
		}
		return oracles
	}
	defer g.Close()
	for _, b := range g.shards {
		shrinkDiskKnobs(b) // tiny segments: the one physical log rotates constantly
	}
	logHeapWorkload(g, oracles)
	return oracles
}

// logHeapWorkload drives epochs of the proxy's logheap boundary: deferred
// bucket writes and same-epoch rewrites per shard, a deferred WAL round,
// then the unified commit — every shard's CommitEpochNoSync followed by ONE
// SyncLog that makes the whole epoch durable. Epoch 3 aborts and is
// reverted by index rollback; checkpoints and a GC evacuation run at fixed
// epochs so their crash windows sit at deterministic sweep indices. It
// stops at the first error (the injected crash wedges the group).
func logHeapWorkload(g *DiskGroup, oracles []*sweepOracle) {
	const numBuckets = 5
	views := g.views
	n := len(views)
	for e := uint64(1); e <= 6; e++ {
		for i, v := range views {
			var writes []BucketWrite
			for k := 0; k < 2; k++ {
				bucket := (int(e) + k) % numBuckets
				writes = append(writes, BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{
					[]byte(fmt.Sprintf("g%d-e%d-b%d-s0", i, e, bucket)),
					[]byte(fmt.Sprintf("g%d-e%d-b%d-s1", i, e, bucket)),
				}})
			}
			if v.WriteBuckets(writes) != nil {
				return
			}
			oracles[i].mem.WriteBuckets(writes)
			// Same-epoch rewrite (recovery replay does this): the newer
			// version record supersedes the older within the epoch.
			re := BucketWrite{Bucket: int(e) % numBuckets, Epoch: e,
				Slots: [][]byte{[]byte(fmt.Sprintf("g%d-e%d-rewrite", i, e)), []byte("s1")}}
			if v.WriteBucket(re.Bucket, re.Epoch, re.Slots) != nil {
				return
			}
			oracles[i].mem.WriteBucket(re.Bucket, re.Epoch, re.Slots)
		}
		// The deferred WAL round the commit wave will close.
		for i, v := range views {
			rec := []byte(fmt.Sprintf("g%d-wal-%d", i, e))
			if _, err := v.AppendNoSync(rec); err != nil {
				return
			}
			oracles[i].logRecs = append(oracles[i].logRecs, rec)
		}
		if e%2 == 0 {
			i := int(e) % n
			k, val := fmt.Sprintf("g%d-key%d", i, e), fmt.Sprintf("g%d-val%d", i, e)
			if views[i].Put(k, []byte(val)) != nil {
				return
			}
			oracles[i].kv[k] = val
		}
		if e == 3 {
			// Epoch 3 aborts on every shard: shadow-paging revert by index
			// rollback; its version and WAL records stay in the log —
			// recovery filters by epoch, not by position.
			for i, v := range views {
				if v.RollbackTo(2) != nil {
					return
				}
				oracles[i].mem.RollbackTo(2)
			}
			// Checkpoint over the rolled-back garbage: the snapshot must
			// reflect the reverted index, and replay above its watermark
			// must not resurrect epoch 3.
			if g.heaps[0].Checkpoint() != nil {
				return
			}
			continue
		}
		// The unified commit: one record per shard, all deferred, one
		// barrier for the round — bucket versions, WAL records and commit
		// records become durable together, in stream order. The commit
		// mirrors into the oracle at issue (a rotation's seal fsync may
		// persist it before the barrier); the ack waits for SyncLog.
		for i := range views {
			if (logHeapShard{views[i]}).CommitEpochNoSync(e) != nil {
				return
			}
			oracles[i].mem.CommitEpoch(e)
			oracles[i].snapshot(e)
			oracles[i].commitIssued = e
		}
		if views[int(e)%n].SyncLog() != nil {
			return
		}
		for _, o := range oracles {
			o.logAcked = len(o.logRecs)
			o.lastCommit = e
		}
		if e == 2 {
			// Checkpoint every shard with committed and superseded versions
			// in the index: the atomic replace (write tmp, fsync, rename,
			// dir sync) is swept window by window.
			for _, lh := range g.heaps {
				if lh.Checkpoint() != nil {
					return
				}
			}
		}
		if e == 4 {
			// An inline synced commit path also exists (bootstrap and the
			// hooked proxy use it): a plain synced append interleaved on
			// the same stream must not disturb the deferred rounds.
			for i, v := range views {
				rec := []byte(fmt.Sprintf("g%d-wal-%d-b", i, e))
				if _, err := v.Append(rec); err != nil {
					return
				}
				oracles[i].logRecs = append(oracles[i].logRecs, rec)
				oracles[i].logAcked = len(oracles[i].logRecs)
			}
		}
		if e == 5 {
			// Segment GC's copy-forward pass: evacuate the oldest sealed
			// segment on every heap. Each live version is re-appended as a
			// GC-copy record and its index entry flipped; the closing
			// checkpoint makes the relocation durable. Crash points land
			// between any two of those steps.
			if base, ok := g.shards[0].gcCandidate(); ok {
				for _, lh := range g.heaps {
					if _, err := lh.EvacuateSegment(base); err != nil {
						return
					}
				}
				g.shards[0].dropDeadSegments()
			}
		}
	}
}

// verifyLogHeapRecovered reopens the whole group on the durable snapshot —
// checkpoint load, mixed WAL+bucket segment scan, index rebuild — and
// checks every shard view against its oracle.
func verifyLogHeapRecovered(t *testing.T, snap *crashFS, oracles []*sweepOracle, strict bool, tag string) {
	t.Helper()
	g, err := openLogHeapSweepGroup(snap)
	if err != nil {
		t.Fatalf("%s: recovered logheap group failed to open: %v", tag, err)
	}
	defer g.Close()
	for i, v := range g.views {
		verifyRecoveredState(t, v, oracles[i], strict, fmt.Sprintf("%s shard %d", tag, i))
	}
}

// countLogHeapWorkloadOps dry-runs the workload fault-free to learn the
// swept surface, sanity-checking the harness along the way.
func countLogHeapWorkloadOps(t *testing.T) int {
	plan := &faultPlan{mode: crashFailStop, crashAt: 1 << 30}
	fsys := newCrashFS(plan)
	oracles := runLogHeapCrashWorkload(t, fsys)
	for i, o := range oracles {
		if o.lastCommit != 6 {
			t.Fatalf("fault-free shard %d committed through epoch %d, want 6", i, o.lastCommit)
		}
	}
	verifyLogHeapRecovered(t, fsys.snapshot(), oracles, true, "fault-free")
	return plan.ops
}

// TestCrashPointSweepLogHeap crashes the unified-log pipeline at every
// mutation point in every fault mode and asserts each shard recovers to a
// prefix-consistent acked commit: in strict modes exactly the last acked
// one, in dropped-fsync mode some acked one (recency may be lost,
// consistency may not).
func TestCrashPointSweepLogHeap(t *testing.T) {
	total := countLogHeapWorkloadOps(t)
	if total < 60 {
		t.Fatalf("logheap workload only has %d mutation points; the sweep would prove little", total)
	}
	modes := []struct {
		name   string
		mode   int
		strict bool
	}{
		{"fail-stop", crashFailStop, true},
		{"torn-write", crashTorn, true},
		{"dropped-fsync", crashDropSync, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for k := 1; k <= total; k++ {
				plan := &faultPlan{mode: m.mode, crashAt: k}
				fsys := newCrashFS(plan)
				oracles := runLogHeapCrashWorkload(t, fsys)
				verifyLogHeapRecovered(t, fsys.snapshot(), oracles,
					m.strict, fmt.Sprintf("crash point %d", k))
			}
		})
	}
}
