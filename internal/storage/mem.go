package storage

import (
	"fmt"
	"sync"
)

// bucketVersion is one shadow-paged copy of a bucket.
type bucketVersion struct {
	epoch uint64
	slots [][]byte
}

// MemBackend is an in-memory Backend. It is the reference implementation that
// both the in-process benchmarks and the TCP storage server build on.
type MemBackend struct {
	mu        sync.RWMutex
	closed    bool
	buckets   [][]bucketVersion // per bucket: version stack, oldest first
	committed uint64

	kv map[string][]byte

	log     [][]byte
	logBase uint64 // sequence number of log[0]

	fence fenceRegister // proxy-generation fencing (see Fenceable)
}

var _ Backend = (*MemBackend)(nil)

// NewMemBackend creates a backend with numBuckets empty buckets. Buckets start
// with a single version (epoch 0) of nil slots; the ORAM client initializes
// them explicitly.
func NewMemBackend(numBuckets int) *MemBackend {
	b := &MemBackend{
		buckets: make([][]bucketVersion, numBuckets),
		kv:      make(map[string][]byte),
		logBase: 1,
	}
	return b
}

func (m *MemBackend) checkOpen() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}

// ReadSlot implements BucketStore.
func (m *MemBackend) ReadSlot(bucket, slot int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	return m.readSlotLocked(bucket, slot)
}

func (m *MemBackend) readSlotLocked(bucket, slot int) ([]byte, error) {
	if err := checkBucket(bucket, len(m.buckets)); err != nil {
		return nil, err
	}
	vs := m.buckets[bucket]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: bucket %d never written", ErrNoSuchSlot, bucket)
	}
	slots := vs[len(vs)-1].slots
	if slot < 0 || slot >= len(slots) {
		return nil, fmt.Errorf("%w: bucket %d slot %d (have %d)", ErrNoSuchSlot, bucket, slot, len(slots))
	}
	return slots[slot], nil
}

// ReadSlots implements BucketStore: the whole vector is served under one
// lock acquisition, so it is atomic with respect to concurrent writes.
func (m *MemBackend) ReadSlots(refs []SlotRef) ([][]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(refs))
	for i, r := range refs {
		d, err := m.readSlotLocked(r.Bucket, r.Slot)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// ReadBucket implements BucketStore.
func (m *MemBackend) ReadBucket(bucket int) ([][]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	if err := checkBucket(bucket, len(m.buckets)); err != nil {
		return nil, err
	}
	vs := m.buckets[bucket]
	if len(vs) == 0 {
		return nil, nil
	}
	return vs[len(vs)-1].slots, nil
}

// WriteBucket implements BucketStore.
func (m *MemBackend) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	return m.writeBucketLocked(bucket, epoch, slots)
}

// WriteBuckets implements BucketStore: the whole vector installs under one
// lock acquisition, in vector order.
func (m *MemBackend) WriteBuckets(writes []BucketWrite) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	for _, w := range writes {
		if err := m.writeBucketLocked(w.Bucket, w.Epoch, w.Slots); err != nil {
			return err
		}
	}
	return nil
}

func (m *MemBackend) writeBucketLocked(bucket int, epoch uint64, slots [][]byte) error {
	if err := checkBucket(bucket, len(m.buckets)); err != nil {
		return err
	}
	vs := m.buckets[bucket]
	// Writes within the same epoch supersede each other in place: the proxy
	// deduplicates bucket writes, but recovery replay may rewrite a bucket.
	if n := len(vs); n > 0 && vs[n-1].epoch == epoch {
		vs[n-1].slots = slots
		return nil
	}
	// Shadow-paging keeps version stacks epoch-ordered so RollbackTo can
	// pop from the top. The pipelined proxy may have two live epochs (the
	// sealed one flushing plus its successor) but flushes them in order; a
	// write that would bury a newer version is a pipelining bug.
	if n := len(vs); n > 0 && vs[n-1].epoch > epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, epoch, vs[n-1].epoch)
	}
	m.buckets[bucket] = append(vs, bucketVersion{epoch: epoch, slots: slots})
	return nil
}

// CommitEpoch implements BucketStore. Superseded versions within the
// committed prefix are garbage-collected.
func (m *MemBackend) CommitEpoch(epoch uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if epoch > m.committed {
		m.committed = epoch
	}
	for i, vs := range m.buckets {
		// Find the newest version with epoch <= committed; drop older ones.
		keep := -1
		for j := len(vs) - 1; j >= 0; j-- {
			if vs[j].epoch <= m.committed {
				keep = j
				break
			}
		}
		if keep > 0 {
			m.buckets[i] = append(vs[:0], vs[keep:]...)
		}
	}
	return nil
}

// RollbackTo implements BucketStore.
func (m *MemBackend) RollbackTo(epoch uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	for i, vs := range m.buckets {
		n := len(vs)
		for n > 0 && vs[n-1].epoch > epoch {
			n--
		}
		m.buckets[i] = vs[:n]
	}
	if m.committed > epoch {
		m.committed = epoch
	}
	return nil
}

// NumBuckets implements BucketStore.
func (m *MemBackend) NumBuckets() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return 0, err
	}
	return len(m.buckets), nil
}

// CommittedEpoch reports the highest committed epoch. Test helper.
func (m *MemBackend) CommittedEpoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.committed
}

// VersionCount reports how many shadow versions a bucket currently holds.
// Test helper.
func (m *MemBackend) VersionCount(bucket int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if bucket < 0 || bucket >= len(m.buckets) {
		return 0
	}
	return len(m.buckets[bucket])
}

// Get implements KVStore.
func (m *MemBackend) Get(key string) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return nil, false, err
	}
	v, ok := m.kv[key]
	return v, ok, nil
}

// Put implements KVStore.
func (m *MemBackend) Put(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	m.kv[key] = value
	return nil
}

// Delete implements KVStore.
func (m *MemBackend) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	delete(m.kv, key)
	return nil
}

// Append implements LogStore.
func (m *MemBackend) Append(record []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return 0, err
	}
	m.log = append(m.log, record)
	return m.logBase + uint64(len(m.log)) - 1, nil
}

// Scan implements LogStore.
func (m *MemBackend) Scan(from uint64) ([][]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	if from < m.logBase {
		from = m.logBase
	}
	idx := int(from - m.logBase)
	if idx >= len(m.log) {
		return nil, nil
	}
	out := make([][]byte, len(m.log)-idx)
	copy(out, m.log[idx:])
	return out, nil
}

// Truncate implements LogStore.
func (m *MemBackend) Truncate(before uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if before <= m.logBase {
		return nil
	}
	drop := before - m.logBase
	if drop > uint64(len(m.log)) {
		drop = uint64(len(m.log))
	}
	m.log = append([][]byte(nil), m.log[drop:]...)
	m.logBase += drop
	return nil
}

// LastSeq implements LogStore.
func (m *MemBackend) LastSeq() (uint64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkOpen(); err != nil {
		return 0, err
	}
	return m.logBase + uint64(len(m.log)) - 1, nil
}

// Close implements Backend.
func (m *MemBackend) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// DummyBackend responds to every slot read with a static value and ignores
// writes; it is the "dummy" backend of Figure 10, used to measure proxy CPU
// costs with zero storage cost. Log and KV operations are served from memory
// so durability code paths still function.
type DummyBackend struct {
	*MemBackend
	static []byte
}

// NewDummyBackend creates a dummy backend whose slot reads return a static
// slot of the given size.
func NewDummyBackend(numBuckets, slotSize int) *DummyBackend {
	return &DummyBackend{
		MemBackend: NewMemBackend(numBuckets),
		static:     make([]byte, slotSize),
	}
}

// ReadSlot returns the static slot regardless of location.
func (d *DummyBackend) ReadSlot(bucket, slot int) ([]byte, error) {
	return d.static, nil
}

// ReadSlots returns the static slot for every ref.
func (d *DummyBackend) ReadSlots(refs []SlotRef) ([][]byte, error) {
	out := make([][]byte, len(refs))
	for i := range out {
		out[i] = d.static
	}
	return out, nil
}

// ReadBucket returns nil: dummy buckets have no recoverable contents.
func (d *DummyBackend) ReadBucket(bucket int) ([][]byte, error) {
	return nil, nil
}

// WriteBucket discards the write.
func (d *DummyBackend) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	return nil
}

// WriteBuckets discards the writes.
func (d *DummyBackend) WriteBuckets(writes []BucketWrite) error {
	return nil
}
