package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// This file exports a conformance suite for the Backend contract, so every
// implementation — MemBackend, DiskBackend, DummyBackend, the latency
// wrapper, the remote client/server pair, and any future store — is held to
// the same edge cases instead of each accumulating ad-hoc coverage.
//
// The suite asserts error *presence*, not error identity, for range checks:
// the remote client flattens server errors into ErrRemote strings. ErrClosed
// is the exception — every backend must report it recognizably via
// errors.Is.

// ConformanceMinBuckets is the minimum bucket count a conformance factory
// must provision.
const ConformanceMinBuckets = 8

// ConformanceOptions tunes the suite for intentionally lossy backends.
type ConformanceOptions struct {
	// BucketDataDiscarded marks backends that ignore bucket writes and
	// serve synthetic reads (DummyBackend): read-back, epoch-ordering and
	// vector-atomicity checks are skipped, while log, KV, NumBuckets and
	// close semantics still apply.
	BucketDataDiscarded bool
}

// RunBackendConformance exercises every Backend contract edge against fresh
// instances produced by factory. The factory must return an empty, open
// backend with at least ConformanceMinBuckets buckets and register any
// cleanup on t.
func RunBackendConformance(t *testing.T, factory func(t *testing.T) Backend) {
	RunBackendConformanceOpts(t, factory, ConformanceOptions{})
}

// RunBackendConformanceOpts is RunBackendConformance with options.
func RunBackendConformanceOpts(t *testing.T, factory func(t *testing.T) Backend, opts ConformanceOptions) {
	type check struct {
		name    string
		buckets bool // requires faithful bucket storage
		run     func(t *testing.T, b Backend)
	}
	checks := []check{
		{"num-buckets", false, conformNumBuckets},
		{"bucket-round-trip", true, conformBucketRoundTrip},
		{"epoch-order-rejection", true, conformEpochOrder},
		{"vector-read-atomicity", true, conformVectorReadAtomicity},
		{"rollback-after-partial-vector", true, conformPartialVectorRollback},
		{"commit-rollback-visibility", true, conformCommitRollback},
		{"log-sequence", false, conformLogSequence},
		{"log-truncate", false, conformLogTruncate},
		{"kv", false, conformKV},
		{"closed", false, func(t *testing.T, b Backend) { conformClosed(t, b, opts) }},
	}
	for _, c := range checks {
		if c.buckets && opts.BucketDataDiscarded {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			c.run(t, factory(t))
		})
	}
}

func conformSlots(tag string, n int) [][]byte {
	slots := make([][]byte, n)
	for i := range slots {
		slots[i] = []byte(fmt.Sprintf("%s-slot%d", tag, i))
	}
	return slots
}

func conformNumBuckets(t *testing.T, b Backend) {
	n, err := b.NumBuckets()
	if err != nil {
		t.Fatalf("NumBuckets: %v", err)
	}
	if n < ConformanceMinBuckets {
		t.Fatalf("NumBuckets = %d, conformance factories must provision at least %d", n, ConformanceMinBuckets)
	}
}

func conformBucketRoundTrip(t *testing.T, b Backend) {
	slots := conformSlots("e1b0", 3)
	if err := b.WriteBucket(0, 1, slots); err != nil {
		t.Fatalf("WriteBucket: %v", err)
	}
	for i, want := range slots {
		got, err := b.ReadSlot(0, i)
		if err != nil {
			t.Fatalf("ReadSlot(0,%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadSlot(0,%d) = %q, want %q", i, got, want)
		}
	}
	all, err := b.ReadBucket(0)
	if err != nil {
		t.Fatalf("ReadBucket: %v", err)
	}
	if len(all) != len(slots) {
		t.Fatalf("ReadBucket returned %d slots, want %d", len(all), len(slots))
	}
	for i := range slots {
		if !bytes.Equal(all[i], slots[i]) {
			t.Fatalf("ReadBucket slot %d = %q, want %q", i, all[i], slots[i])
		}
	}
	got, err := b.ReadSlots([]SlotRef{{Bucket: 0, Slot: 2}, {Bucket: 0, Slot: 0}})
	if err != nil {
		t.Fatalf("ReadSlots: %v", err)
	}
	if !bytes.Equal(got[0], slots[2]) || !bytes.Equal(got[1], slots[0]) {
		t.Fatalf("ReadSlots out of ref order: %q", got)
	}
	// Contract edges on untouched buckets.
	if _, err := b.ReadSlot(1, 0); err == nil {
		t.Fatal("ReadSlot on a never-written bucket succeeded")
	}
	if all, err := b.ReadBucket(1); err != nil || len(all) != 0 {
		t.Fatalf("ReadBucket on a never-written bucket = %v, %v (want empty, nil)", all, err)
	}
	if _, err := b.ReadSlot(-1, 0); err == nil {
		t.Fatal("ReadSlot(-1, 0) succeeded")
	}
	if _, err := b.ReadSlot(1<<30, 0); err == nil {
		t.Fatal("ReadSlot on an out-of-range bucket succeeded")
	}
	if err := b.WriteBucket(1<<30, 1, conformSlots("x", 1)); err == nil {
		t.Fatal("WriteBucket on an out-of-range bucket succeeded")
	}
}

func conformEpochOrder(t *testing.T, b Backend) {
	if err := b.WriteBucket(2, 5, conformSlots("e5", 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBucket(2, 4, conformSlots("e4", 2)); err == nil {
		t.Fatal("lower-epoch write after a higher epoch was accepted")
	}
	if err := b.WriteBuckets([]BucketWrite{{Bucket: 2, Epoch: 3, Slots: conformSlots("e3", 2)}}); err == nil {
		t.Fatal("lower-epoch vectored write after a higher epoch was accepted")
	}
	// Same-epoch writes supersede in place (recovery replay rewrites buckets).
	rewritten := conformSlots("e5-rewrite", 2)
	if err := b.WriteBucket(2, 5, rewritten); err != nil {
		t.Fatalf("same-epoch rewrite rejected: %v", err)
	}
	got, err := b.ReadSlot(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rewritten[0]) {
		t.Fatalf("same-epoch rewrite did not supersede: got %q", got)
	}
	// A fresh bucket may still accept epochs at or below the frontier.
	if err := b.WriteBucket(3, 4, conformSlots("fresh", 1)); err != nil {
		t.Fatalf("write to an untouched bucket at a lower epoch rejected: %v", err)
	}
}

func conformVectorReadAtomicity(t *testing.T, b Backend) {
	if err := b.WriteBucket(0, 1, conformSlots("a", 2)); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 1 << 30, Slot: 0}, {Bucket: 0, Slot: 1}})
	if err == nil {
		t.Fatal("vector with an out-of-range ref succeeded")
	}
	if got != nil {
		t.Fatalf("failed vector returned partial results: %v", got)
	}
	got, err = b.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 0, Slot: 7}})
	if err == nil {
		t.Fatal("vector with an out-of-range slot succeeded")
	}
	if got != nil {
		t.Fatalf("failed vector returned partial results: %v", got)
	}
}

func conformPartialVectorRollback(t *testing.T, b Backend) {
	// Epoch 1 is the committed baseline.
	base0, base1 := conformSlots("e1b0", 2), conformSlots("e1b1", 2)
	if err := b.WriteBuckets([]BucketWrite{
		{Bucket: 0, Epoch: 1, Slots: base0},
		{Bucket: 1, Epoch: 1, Slots: base1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitEpoch(1); err != nil {
		t.Fatal(err)
	}
	// An epoch-2 vector that fails mid-way may leave a prefix installed.
	err := b.WriteBuckets([]BucketWrite{
		{Bucket: 0, Epoch: 2, Slots: conformSlots("e2b0", 2)},
		{Bucket: 1 << 30, Epoch: 2, Slots: conformSlots("bad", 2)},
		{Bucket: 1, Epoch: 2, Slots: conformSlots("e2b1", 2)},
	})
	if err == nil {
		t.Fatal("vectored write with an out-of-range bucket succeeded")
	}
	// Shadow paging makes the partial prefix harmless: revert to epoch 1.
	if err := b.RollbackTo(1); err != nil {
		t.Fatalf("RollbackTo after partial vector: %v", err)
	}
	for bucket, want := range map[int][][]byte{0: base0, 1: base1} {
		got, err := b.ReadBucket(bucket)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
			t.Fatalf("bucket %d after rollback = %q, want %q", bucket, got, want)
		}
	}
}

func conformCommitRollback(t *testing.T, b Backend) {
	if err := b.WriteBucket(0, 1, conformSlots("e1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.CommitEpoch(1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBucket(0, 2, conformSlots("e2", 1)); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "e2-slot0" {
		t.Fatalf("newest version not served: %q", got)
	}
	if err := b.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	got, err = b.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "e1-slot0" {
		t.Fatalf("rollback did not restore the committed version: %q", got)
	}
	// Rolling back to the committed frontier is a no-op.
	if err := b.RollbackTo(1); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.ReadSlot(0, 0); string(got) != "e1-slot0" {
		t.Fatalf("idempotent rollback changed state: %q", got)
	}
	// Committing again is idempotent too.
	if err := b.CommitEpoch(1); err != nil {
		t.Fatal(err)
	}
}

func conformLogSequence(t *testing.T, b Backend) {
	if seq, err := b.LastSeq(); err != nil || seq != 0 {
		t.Fatalf("fresh LastSeq = %d, %v (want 0)", seq, err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := b.Append([]byte(fmt.Sprintf("rec%d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
	recs, err := b.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || string(recs[0]) != "rec1" || string(recs[4]) != "rec5" {
		t.Fatalf("Scan(0) = %q", recs)
	}
	recs, err = b.Scan(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "rec4" {
		t.Fatalf("Scan(4) = %q", recs)
	}
	if recs, err := b.Scan(99); err != nil || len(recs) != 0 {
		t.Fatalf("Scan past the end = %q, %v", recs, err)
	}
}

func conformLogTruncate(t *testing.T, b Backend) {
	for i := 1; i <= 5; i++ {
		if _, err := b.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Truncate(3); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[0]) != "rec3" {
		t.Fatalf("Scan after Truncate(3) = %q", recs)
	}
	if seq, _ := b.LastSeq(); seq != 5 {
		t.Fatalf("LastSeq after truncate = %d, want 5", seq)
	}
	// Truncation beyond the end clamps: sequence numbers keep counting.
	if err := b.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if recs, _ := b.Scan(0); len(recs) != 0 {
		t.Fatalf("Scan after truncate-all = %q", recs)
	}
	if seq, _ := b.LastSeq(); seq != 5 {
		t.Fatalf("LastSeq after truncate-all = %d, want 5", seq)
	}
	seq, err := b.Append([]byte("rec6"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("Append after truncate-all returned seq %d, want 6", seq)
	}
	// Truncate never rewinds.
	if err := b.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if recs, _ := b.Scan(0); len(recs) != 1 || string(recs[0]) != "rec6" {
		t.Fatalf("Scan after no-op truncate = %q", recs)
	}
}

func conformKV(t *testing.T, b Backend) {
	if _, found, err := b.Get("missing"); err != nil || found {
		t.Fatalf("Get(missing) = %v, %v", found, err)
	}
	if err := b.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := b.Get("k"); err != nil || !found || string(v) != "v1" {
		t.Fatalf("Get(k) = %q, %v, %v", v, found, err)
	}
	if err := b.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := b.Get("k"); string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := b.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if _, found, err := b.Get("empty"); err != nil || !found {
		t.Fatalf("empty value not found: %v, %v", found, err)
	}
	if err := b.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := b.Get("k"); found {
		t.Fatal("deleted key still found")
	}
	if err := b.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of a missing key errored: %v", err)
	}
}

// ---- group-commit conformance ----

// RunGroupCommitConformance exercises the Backend contract edges that only
// appear when several shards share one durability scheduler (a CommitGroup
// over one data dir, or a LatencyGroup over mem shards). The factory must
// return n open, empty backends whose durability barriers coalesce, and
// register cleanup on t. The contract under test: coalescing is invisible —
// concurrent CommitEpoch calls from every shard succeed and each shard still
// observes its *own* epoch-order rejection and ErrClosed semantics,
// unchanged from the single-shard suite.
func RunGroupCommitConformance(t *testing.T, n int, factory func(t *testing.T, n int) []Backend) {
	if n < 2 {
		t.Fatalf("group conformance needs at least 2 shards (got %d)", n)
	}
	newShards := func(t *testing.T) []Backend {
		shards := factory(t, n)
		if len(shards) != n {
			t.Fatalf("factory returned %d shards, want %d", len(shards), n)
		}
		return shards
	}

	t.Run("concurrent-commit", func(t *testing.T) {
		shards := newShards(t)
		const epochs = 8
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, b := range shards {
			wg.Add(1)
			go func(i int, b Backend) {
				defer wg.Done()
				for e := uint64(1); e <= epochs; e++ {
					slots := conformSlots(fmt.Sprintf("s%d-e%d", i, e), 2)
					if err := b.WriteBucket(0, e, slots); err != nil {
						errs[i] = err
						return
					}
					if err := b.CommitEpoch(e); err != nil {
						errs[i] = err
						return
					}
				}
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
		}
		for i, b := range shards {
			got, err := b.ReadSlot(0, 0)
			if err != nil {
				t.Fatalf("shard %d read-back: %v", i, err)
			}
			want := fmt.Sprintf("s%d-e%d-slot0", i, epochs)
			if string(got) != want {
				t.Fatalf("shard %d newest slot = %q, want %q", i, got, want)
			}
		}
	})

	t.Run("per-shard-epoch-order", func(t *testing.T) {
		// Every shard races ahead to its own epoch frontier; a stale write on
		// one shard must be rejected by THAT shard's frontier regardless of
		// what its groupmates are committing at the same moment.
		shards := newShards(t)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, b := range shards {
			wg.Add(1)
			go func(i int, b Backend) {
				defer wg.Done()
				frontier := uint64(i + 2) // distinct per shard
				if err := b.WriteBucket(1, frontier, conformSlots("hi", 1)); err != nil {
					errs[i] = err
					return
				}
				if err := b.CommitEpoch(frontier); err != nil {
					errs[i] = err
					return
				}
				if err := b.WriteBucket(1, frontier-1, conformSlots("stale", 1)); err == nil {
					errs[i] = fmt.Errorf("shard %d accepted an epoch-%d write after epoch %d", i, frontier-1, frontier)
					return
				}
				// Re-committing at or below the frontier stays idempotent.
				if err := b.CommitEpoch(frontier - 1); err != nil {
					errs[i] = err
				}
			}(i, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("concurrent-append-and-commit", func(t *testing.T) {
		// Mixed namespaces standing on the same scheduler: each shard's log
		// sequence must stay dense and private while everyone commits.
		shards := newShards(t)
		const records = 16
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, b := range shards {
			wg.Add(1)
			go func(i int, b Backend) {
				defer wg.Done()
				for r := 1; r <= records; r++ {
					seq, err := b.Append([]byte(fmt.Sprintf("s%d-r%d", i, r)))
					if err != nil {
						errs[i] = err
						return
					}
					if seq != uint64(r) {
						errs[i] = fmt.Errorf("shard %d append %d returned seq %d", i, r, seq)
						return
					}
					if r%4 == 0 {
						if err := b.Put(fmt.Sprintf("k%d", r), []byte("v")); err != nil {
							errs[i] = err
							return
						}
						if err := b.CommitEpoch(uint64(r / 4)); err != nil {
							errs[i] = err
							return
						}
					}
				}
			}(i, b)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
		}
		for i, b := range shards {
			recs, err := b.Scan(0)
			if err != nil {
				t.Fatalf("shard %d scan: %v", i, err)
			}
			if len(recs) != records {
				t.Fatalf("shard %d recovered %d records, want %d", i, len(recs), records)
			}
			for r, rec := range recs {
				if want := fmt.Sprintf("s%d-r%d", i, r+1); string(rec) != want {
					t.Fatalf("shard %d record %d = %q, want %q", i, r, rec, want)
				}
			}
		}
	})

	t.Run("closed-shard-isolation", func(t *testing.T) {
		// Closing one shard must not take the scheduler (or its groupmates)
		// down with it, and the closed shard must keep reporting ErrClosed.
		shards := newShards(t)
		if err := shards[0].Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := shards[0].CommitEpoch(1); !errors.Is(err, ErrClosed) {
			t.Fatalf("CommitEpoch on closed shard = %v, want ErrClosed", err)
		}
		if _, err := shards[0].Append([]byte("r")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Append on closed shard = %v, want ErrClosed", err)
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 1; i < n; i++ {
			wg.Add(1)
			go func(i int, b Backend) {
				defer wg.Done()
				for e := uint64(1); e <= 4; e++ {
					if err := b.WriteBucket(0, e, conformSlots("live", 1)); err != nil {
						errs[i] = err
						return
					}
					if err := b.CommitEpoch(e); err != nil {
						errs[i] = err
						return
					}
				}
			}(i, shards[i])
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("surviving shard %d: %v", i, err)
			}
		}
	})

	t.Run("deferred-append-sync", func(t *testing.T) {
		// The deferred-barrier capability (LogBatcher): every shard appends
		// without syncing, ONE shard's SyncLog closes the round, and each
		// stream must still read back dense, private, in-order — the
		// barrier placement the proxy's epoch schedule relies on. Skipped
		// for factories whose shards don't expose the capability.
		shards := newShards(t)
		batchers := make([]LogBatcher, n)
		for i, b := range shards {
			lb, ok := b.(LogBatcher)
			if !ok {
				t.Skipf("shard type %T lacks LogBatcher", b)
			}
			batchers[i] = lb
		}
		const rounds = 5
		for r := 1; r <= rounds; r++ {
			// Mix synced and deferred appends: odd rounds also exercise the
			// plain Append path to prove the two interleave correctly.
			for i, lb := range batchers {
				seq, err := lb.AppendNoSync([]byte(fmt.Sprintf("s%d-r%d-a", i, r)))
				if err != nil {
					t.Fatalf("shard %d round %d AppendNoSync: %v", i, r, err)
				}
				if want := uint64((r-1)*2 + 1); seq != want {
					t.Fatalf("shard %d round %d AppendNoSync seq = %d, want %d", i, r, seq, want)
				}
			}
			// One shard's barrier covers the whole round.
			if err := batchers[r%n].SyncLog(); err != nil {
				t.Fatalf("round %d SyncLog: %v", r, err)
			}
			for i, b := range shards {
				seq, err := b.Append([]byte(fmt.Sprintf("s%d-r%d-b", i, r)))
				if err != nil {
					t.Fatalf("shard %d round %d Append: %v", i, r, err)
				}
				if want := uint64(r * 2); seq != want {
					t.Fatalf("shard %d round %d Append seq = %d, want %d", i, r, seq, want)
				}
			}
		}
		// A SyncLog with nothing pending must be a cheap no-op, not an error.
		for i, lb := range batchers {
			if err := lb.SyncLog(); err != nil {
				t.Fatalf("shard %d idle SyncLog: %v", i, err)
			}
		}
		for i, b := range shards {
			recs, err := b.Scan(0)
			if err != nil {
				t.Fatalf("shard %d scan: %v", i, err)
			}
			if len(recs) != rounds*2 {
				t.Fatalf("shard %d has %d records, want %d", i, len(recs), rounds*2)
			}
			for r := 1; r <= rounds; r++ {
				wantA := fmt.Sprintf("s%d-r%d-a", i, r)
				wantB := fmt.Sprintf("s%d-r%d-b", i, r)
				if got := string(recs[(r-1)*2]); got != wantA {
					t.Fatalf("shard %d record %d = %q, want %q", i, (r-1)*2, got, wantA)
				}
				if got := string(recs[(r-1)*2+1]); got != wantB {
					t.Fatalf("shard %d record %d = %q, want %q", i, (r-1)*2+1, got, wantB)
				}
			}
			last, err := b.LastSeq()
			if err != nil {
				t.Fatalf("shard %d LastSeq: %v", i, err)
			}
			if last != uint64(rounds*2) {
				t.Fatalf("shard %d LastSeq = %d, want %d", i, last, rounds*2)
			}
		}
	})
}

func conformClosed(t *testing.T, b Backend, opts ConformanceOptions) {
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	checkClosed := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("%s after Close = %v, want ErrClosed", op, err)
		}
	}
	if !opts.BucketDataDiscarded {
		_, err := b.ReadSlot(0, 0)
		checkClosed("ReadSlot", err)
		_, err = b.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}})
		checkClosed("ReadSlots", err)
		_, err = b.ReadBucket(0)
		checkClosed("ReadBucket", err)
		checkClosed("WriteBucket", b.WriteBucket(0, 1, conformSlots("x", 1)))
		checkClosed("WriteBuckets", b.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 1, Slots: conformSlots("x", 1)}}))
	}
	checkClosed("CommitEpoch", b.CommitEpoch(1))
	checkClosed("RollbackTo", b.RollbackTo(0))
	_, err := b.NumBuckets()
	checkClosed("NumBuckets", err)
	_, _, err = b.Get("k")
	checkClosed("Get", err)
	checkClosed("Put", b.Put("k", []byte("v")))
	checkClosed("Delete", b.Delete("k"))
	_, err = b.Append([]byte("r"))
	checkClosed("Append", err)
	_, err = b.Scan(0)
	checkClosed("Scan", err)
	checkClosed("Truncate", b.Truncate(1))
	_, err = b.LastSeq()
	checkClosed("LastSeq", err)
}
