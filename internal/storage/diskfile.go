package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// This file defines the narrow file abstraction DiskBackend performs all its
// I/O through, plus the length-prefixed, checksummed record framing shared by
// every on-disk file. Keeping the surface small serves two masters: the
// crash-point test harness interposes an in-memory fault-injecting
// implementation behind the same interface, and the durability argument only
// has to reason about five primitives (write-at, sync, truncate, rename,
// directory sync).

// vfile is one open file. DiskBackend only ever appends at a tracked offset
// (WriteAt), reads with positional reads (ReadAt), truncates torn tails on
// open, and syncs at durability barriers; there is no seek state to reason
// about.
type vfile interface {
	io.ReaderAt
	io.WriterAt
	// Truncate cuts the file to size bytes (used to drop torn tails).
	Truncate(size int64) error
	// Sync is the durability barrier: on return, all previously written
	// bytes of this file must survive a crash.
	Sync() error
	// Size reports the current file length.
	Size() (int64, error)
	Close() error
}

// vfs is the file-system surface DiskBackend uses. Path arguments are
// regular slash paths inside the backend's data directory.
type vfs interface {
	OpenFile(name string, flag int, perm os.FileMode) (vfile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// List returns the file names (not paths) inside dir.
	List(dir string) ([]string, error)
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir makes directory metadata (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// preallocator is an optional vfile capability: reserve backing store for
// [off, off+n) so later in-range appends don't allocate blocks. On ext4
// every append into unreserved space dirties allocation metadata, and the
// next fsync pays a journal commit for it — measurably more than flushing
// the data alone. Reserving a segment (or a heap growth chunk) up front
// moves that cost off the per-barrier path. Purely a performance lever:
// reserved-but-unwritten space reads as zeros, which the record framing
// already rejects as a torn tail (the CRC covers the length prefix), so
// recovery is unchanged.
type preallocator interface {
	Preallocate(off, n int64) error
}

// preallocate best-effort reserves [off, off+n) of f's backing store. A
// file or platform without the capability (or a failing fallocate — e.g. an
// unsupported filesystem) degrades to ordinary allocate-on-write.
func preallocate(f vfile, off, n int64) {
	if n <= 0 {
		return
	}
	if p, ok := f.(preallocator); ok {
		_ = p.Preallocate(off, n)
	}
}

// osFS is the real file system.
type osFS struct{}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (vfile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir fsyncs the directory so renames and file creations inside it are
// durable (a rename without a directory sync is the classic crash-consistency
// bug: the new name can vanish on power loss even though the data survived).
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir is a package-level helper for callers outside DiskBackend (the
// MemBackend snapshot path) that need the same rename-durability barrier.
func syncDir(dir string) error { return osFS{}.SyncDir(dir) }

// ---- record framing ----
//
// Every on-disk file is a fixed header followed by framed records:
//
//	u32 body length | u32 crc32c(body) | body
//
// A record is valid only if it fits the file and its checksum matches; the
// first invalid record terminates replay. Because every durability barrier
// (fsync) happens after complete records, a crash can only produce a torn
// *suffix*, which open discards by truncating at the first invalid record.

var diskCRC = crc32.MakeTable(crc32.Castagnoli)

const (
	recordFrameSize = 8 // u32 len | u32 crc
	// maxRecordSize bounds one record (a bucket version, a log record, or a
	// KV entry); it matches the wire protocol's frame bound.
	maxRecordSize = 64 << 20
)

var (
	// errTornRecord marks an incomplete record at the end of a file: the
	// expected crash signature, repaired by truncation.
	errTornRecord = errors.New("storage: torn disk record")
	// errBadRecord marks a structurally invalid record body under a valid
	// checksum: real corruption, which must fail loudly.
	errBadRecord = errors.New("storage: corrupt disk record")
)

// recordCRC covers the length prefix as well as the body. Covering the
// length matters for crash recovery: a zero-filled region (an unsynced gap a
// torn write can leave behind) would otherwise decode as a valid empty
// record — length 0, checksum 0, crc32c("") == 0 — and replay would march
// through garbage instead of stopping.
func recordCRC(lenPrefix, body []byte) uint32 {
	return crc32.Update(crc32.Checksum(lenPrefix, diskCRC), diskCRC, body)
}

// encodeRecord appends the framed record to dst and returns the extended
// slice.
func encodeRecord(dst, body []byte) []byte {
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(body)))
	dst = append(dst, lenb[:]...)
	dst = binary.BigEndian.AppendUint32(dst, recordCRC(lenb[:], body))
	return append(dst, body...)
}

// decodeRecord parses one framed record from the front of buf. The returned
// body aliases buf; size is the total framed length consumed.
func decodeRecord(buf []byte) (body []byte, size int, err error) {
	if len(buf) < recordFrameSize {
		return nil, 0, errTornRecord
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	if n > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: %d byte record exceeds limit", errBadRecord, n)
	}
	if len(buf)-recordFrameSize < n {
		return nil, 0, errTornRecord
	}
	body = buf[recordFrameSize : recordFrameSize+n]
	if recordCRC(buf[:4], body) != binary.BigEndian.Uint32(buf[4:8]) {
		return nil, 0, errTornRecord
	}
	return body, recordFrameSize + n, nil
}

// ---- file headers ----
//
// Every file starts with a 24-byte header: 8-byte magic, a u32 and a u64
// parameter (meaning depends on the file kind), and a crc32c over the first
// 20 bytes.

const fileHeaderSize = 24

const (
	heapMagic = "OBHEAP01"
	segMagic  = "OBSEG001"
	kvMagic   = "OBKV0001"
	metaMagic = "OBMETA01"
	// lhixMagic heads a LogHeap index checkpoint: u32 = bucket count,
	// u64 = physical-log watermark W (every own-stream record with physical
	// sequence <= W is reflected in the checkpointed index).
	lhixMagic = "OBLHIX01"
)

func encodeFileHeader(magic string, a uint32, b uint64) []byte {
	hdr := make([]byte, 0, fileHeaderSize)
	hdr = append(hdr, magic...)
	hdr = binary.BigEndian.AppendUint32(hdr, a)
	hdr = binary.BigEndian.AppendUint64(hdr, b)
	return binary.BigEndian.AppendUint32(hdr, crc32.Checksum(hdr, diskCRC))
}

func decodeFileHeader(buf []byte, magic string) (a uint32, b uint64, err error) {
	if len(buf) < fileHeaderSize {
		return 0, 0, fmt.Errorf("%w: short file header", errBadRecord)
	}
	if string(buf[:8]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic %q (want %q)", errBadRecord, buf[:8], magic)
	}
	if crc32.Checksum(buf[:20], diskCRC) != binary.BigEndian.Uint32(buf[20:24]) {
		return 0, 0, fmt.Errorf("%w: file header checksum mismatch", errBadRecord)
	}
	return binary.BigEndian.Uint32(buf[8:12]), binary.BigEndian.Uint64(buf[12:20]), nil
}

// ---- heap record bodies ----

const (
	heapKindVersion  = 1 // u32 bucket | u64 epoch | u32 nslots | (u32 len | bytes)*
	heapKindCommit   = 2 // u64 epoch
	heapKindRollback = 3 // u64 epoch
	// heapKindGCCopy is a version record re-appended by LogHeap segment GC
	// (same layout as heapKindVersion). Replay applies it only when the index
	// still holds an entry for the same bucket+epoch — it relocates data, it
	// never introduces a version shadow paging didn't already install.
	heapKindGCCopy = 4
)

// heapVersionDataStart is the offset, within a version record body, of the
// first slot's length prefix.
const heapVersionDataStart = 1 + 4 + 8 + 4

// encodeVersionBody builds a heapKindVersion record body.
func encodeVersionBody(bucket int, epoch uint64, slots [][]byte) []byte {
	return encodeVersionBodyKind(heapKindVersion, bucket, epoch, slots)
}

// encodeVersionBodyKind is encodeVersionBody with an explicit kind, so
// LogHeap GC can emit heapKindGCCopy records with the same layout.
func encodeVersionBodyKind(kind byte, bucket int, epoch uint64, slots [][]byte) []byte {
	n := heapVersionDataStart
	for _, s := range slots {
		n += 4 + len(s)
	}
	body := make([]byte, 0, n)
	body = append(body, kind)
	body = binary.BigEndian.AppendUint32(body, uint32(bucket))
	body = binary.BigEndian.AppendUint64(body, epoch)
	body = binary.BigEndian.AppendUint32(body, uint32(len(slots)))
	for _, s := range slots {
		body = binary.BigEndian.AppendUint32(body, uint32(len(s)))
		body = append(body, s...)
	}
	return body
}

func encodeEpochBody(kind byte, epoch uint64) []byte {
	body := make([]byte, 0, 9)
	body = append(body, kind)
	return binary.BigEndian.AppendUint64(body, epoch)
}

// heapRec is a parsed heap record body.
type heapRec struct {
	kind     byte
	bucket   int
	epoch    uint64
	slotLens []uint32 // version records only
}

// parseHeapBody decodes a heap record body, bounds-checking everything so a
// corrupt body errors instead of mis-deserializing.
func parseHeapBody(body []byte) (heapRec, error) {
	if len(body) == 0 {
		return heapRec{}, fmt.Errorf("%w: empty heap record", errBadRecord)
	}
	switch body[0] {
	case heapKindCommit, heapKindRollback:
		if len(body) != 9 {
			return heapRec{}, fmt.Errorf("%w: epoch record of %d bytes", errBadRecord, len(body))
		}
		return heapRec{kind: body[0], epoch: binary.BigEndian.Uint64(body[1:9])}, nil
	case heapKindVersion, heapKindGCCopy:
		if len(body) < heapVersionDataStart {
			return heapRec{}, fmt.Errorf("%w: short version record", errBadRecord)
		}
		rec := heapRec{
			kind:   body[0],
			bucket: int(binary.BigEndian.Uint32(body[1:5])),
			epoch:  binary.BigEndian.Uint64(body[5:13]),
		}
		nslots := int(binary.BigEndian.Uint32(body[13:17]))
		if nslots < 0 || nslots > maxVector {
			return heapRec{}, fmt.Errorf("%w: version record with %d slots", errBadRecord, nslots)
		}
		rec.slotLens = make([]uint32, nslots)
		off := heapVersionDataStart
		for i := 0; i < nslots; i++ {
			if len(body)-off < 4 {
				return heapRec{}, fmt.Errorf("%w: truncated slot table", errBadRecord)
			}
			l := binary.BigEndian.Uint32(body[off : off+4])
			off += 4
			if int64(l) > int64(len(body)-off) {
				return heapRec{}, fmt.Errorf("%w: slot length %d overruns record", errBadRecord, l)
			}
			rec.slotLens[i] = l
			off += int(l)
		}
		if off != len(body) {
			return heapRec{}, fmt.Errorf("%w: %d trailing bytes in version record", errBadRecord, len(body)-off)
		}
		return rec, nil
	default:
		return heapRec{}, fmt.Errorf("%w: unknown heap record kind %d", errBadRecord, body[0])
	}
}

// ---- LogHeap index-checkpoint record bodies ----
//
// A LogHeap index checkpoint is an atomically-replaced file (lhixMagic
// header carrying the bucket count and the watermark W) holding framed
// records: one state record with the committed epoch frontier, then one
// version record per live index entry in bucket order, stack order (oldest
// first). It stores *locations* into the shared physical log, never slot
// bytes, so replay after the checkpoint is bounded to own-stream records
// with physical sequence > W.

const (
	lhixKindState   = 1 // u64 committed epoch
	lhixKindVersion = 2 // u32 bucket | u64 epoch | u64 segBase | u64 off | u32 recLen | u32 nslots | u32 len*
)

// lhixVersionDataStart is the offset, within a checkpoint version record
// body, of the first slot-length entry.
const lhixVersionDataStart = 1 + 4 + 8 + 8 + 8 + 4 + 4

func encodeLhixVersion(bucket int, epoch, segBase uint64, off int64, recLen int, slotLens []uint32) []byte {
	body := make([]byte, 0, lhixVersionDataStart+4*len(slotLens))
	body = append(body, lhixKindVersion)
	body = binary.BigEndian.AppendUint32(body, uint32(bucket))
	body = binary.BigEndian.AppendUint64(body, epoch)
	body = binary.BigEndian.AppendUint64(body, segBase)
	body = binary.BigEndian.AppendUint64(body, uint64(off))
	body = binary.BigEndian.AppendUint32(body, uint32(recLen))
	body = binary.BigEndian.AppendUint32(body, uint32(len(slotLens)))
	for _, l := range slotLens {
		body = binary.BigEndian.AppendUint32(body, l)
	}
	return body
}

// lhixRec is a parsed checkpoint record body.
type lhixRec struct {
	kind      byte
	committed uint64 // state records
	bucket    int    // version records from here down
	epoch     uint64
	segBase   uint64
	off       int64
	recLen    int
	slotLens  []uint32
}

// parseLhixBody decodes a checkpoint record body. Like parseHeapBody, every
// field is bounds-checked: a structurally invalid body under a valid frame
// checksum is corruption and must fail loudly, not mis-deserialize.
func parseLhixBody(body []byte) (lhixRec, error) {
	if len(body) == 0 {
		return lhixRec{}, fmt.Errorf("%w: empty index checkpoint record", errBadRecord)
	}
	switch body[0] {
	case lhixKindState:
		if len(body) != 9 {
			return lhixRec{}, fmt.Errorf("%w: checkpoint state record of %d bytes", errBadRecord, len(body))
		}
		return lhixRec{kind: lhixKindState, committed: binary.BigEndian.Uint64(body[1:9])}, nil
	case lhixKindVersion:
		if len(body) < lhixVersionDataStart {
			return lhixRec{}, fmt.Errorf("%w: short checkpoint version record", errBadRecord)
		}
		rec := lhixRec{
			kind:    lhixKindVersion,
			bucket:  int(binary.BigEndian.Uint32(body[1:5])),
			epoch:   binary.BigEndian.Uint64(body[5:13]),
			segBase: binary.BigEndian.Uint64(body[13:21]),
			off:     int64(binary.BigEndian.Uint64(body[21:29])),
			recLen:  int(binary.BigEndian.Uint32(body[29:33])),
		}
		if rec.off < 0 || rec.recLen < 0 || rec.recLen > maxRecordSize {
			return lhixRec{}, fmt.Errorf("%w: checkpoint version location out of range", errBadRecord)
		}
		nslots := int(binary.BigEndian.Uint32(body[33:37]))
		if nslots < 0 || nslots > maxVector {
			return lhixRec{}, fmt.Errorf("%w: checkpoint version with %d slots", errBadRecord, nslots)
		}
		if len(body)-lhixVersionDataStart != 4*nslots {
			return lhixRec{}, fmt.Errorf("%w: checkpoint slot table size mismatch", errBadRecord)
		}
		rec.slotLens = make([]uint32, nslots)
		for i := 0; i < nslots; i++ {
			rec.slotLens[i] = binary.BigEndian.Uint32(body[lhixVersionDataStart+4*i:])
		}
		return rec, nil
	default:
		return lhixRec{}, fmt.Errorf("%w: unknown index checkpoint record kind %d", errBadRecord, body[0])
	}
}

// ---- KV record bodies ----

const (
	kvKindPut = 1 // u32 klen | key | u32 vlen | value
	kvKindDel = 2 // u32 klen | key
)

func encodeKVBody(kind byte, key string, value []byte) []byte {
	n := 1 + 4 + len(key)
	if kind == kvKindPut {
		n += 4 + len(value)
	}
	body := make([]byte, 0, n)
	body = append(body, kind)
	body = binary.BigEndian.AppendUint32(body, uint32(len(key)))
	body = append(body, key...)
	if kind == kvKindPut {
		body = binary.BigEndian.AppendUint32(body, uint32(len(value)))
		body = append(body, value...)
	}
	return body
}

// parseKVBody decodes a KV record body.
func parseKVBody(body []byte) (kind byte, key string, value []byte, err error) {
	if len(body) < 5 {
		return 0, "", nil, fmt.Errorf("%w: short kv record", errBadRecord)
	}
	kind = body[0]
	klen := int(binary.BigEndian.Uint32(body[1:5]))
	if klen < 0 || len(body)-5 < klen {
		return 0, "", nil, fmt.Errorf("%w: kv key length %d overruns record", errBadRecord, klen)
	}
	key = string(body[5 : 5+klen])
	rest := body[5+klen:]
	switch kind {
	case kvKindDel:
		if len(rest) != 0 {
			return 0, "", nil, fmt.Errorf("%w: trailing bytes in kv delete", errBadRecord)
		}
		return kind, key, nil, nil
	case kvKindPut:
		if len(rest) < 4 {
			return 0, "", nil, fmt.Errorf("%w: truncated kv value", errBadRecord)
		}
		vlen := int(binary.BigEndian.Uint32(rest[:4]))
		if vlen < 0 || len(rest)-4 != vlen {
			return 0, "", nil, fmt.Errorf("%w: kv value length %d mismatches record", errBadRecord, vlen)
		}
		value = make([]byte, vlen)
		copy(value, rest[4:])
		return kind, key, value, nil
	default:
		return 0, "", nil, fmt.Errorf("%w: unknown kv record kind %d", errBadRecord, kind)
	}
}

// recordScanner sequentially decodes framed records from a vfile using
// chunked buffered reads, so replaying a large file costs one syscall per
// chunk instead of two per record. The body returned by next aliases the
// scanner's buffer and is only valid until the following call.
type recordScanner struct {
	f        vfile
	size     int64 // scan stops here
	bufStart int64 // file offset of buf[0]
	buf      []byte
	pos      int // parse position within buf
}

const scannerChunk = 256 << 10

func newRecordScanner(f vfile, off, size int64) *recordScanner {
	return &recordScanner{f: f, size: size, bufStart: off}
}

// ensure makes at least n unparsed bytes available in the buffer (bounded by
// the file size). It returns the number actually available.
func (s *recordScanner) ensure(n int) (int, error) {
	if avail := len(s.buf) - s.pos; avail >= n {
		return avail, nil
	}
	// Compact the consumed prefix away, then read a chunk.
	s.buf = append(s.buf[:0], s.buf[s.pos:]...)
	s.bufStart += int64(s.pos)
	s.pos = 0
	want := n - len(s.buf)
	if want < scannerChunk {
		want = scannerChunk
	}
	if left := s.size - s.bufStart - int64(len(s.buf)); int64(want) > left {
		want = int(left)
	}
	if want > 0 {
		ext, err := readFileRange(s.f, s.bufStart+int64(len(s.buf)), want)
		if err != nil {
			return 0, err
		}
		s.buf = append(s.buf, ext...)
	}
	return len(s.buf), nil
}

// next decodes the next record, returning its body and total framed size.
// It returns errTornRecord at a torn tail and errBadRecord on structural
// corruption, exactly like decodeRecord.
func (s *recordScanner) next() (body []byte, size int, err error) {
	avail, err := s.ensure(recordFrameSize)
	if err != nil {
		return nil, 0, err
	}
	if avail < recordFrameSize {
		return nil, 0, errTornRecord
	}
	n := int(binary.BigEndian.Uint32(s.buf[s.pos : s.pos+4]))
	if n > maxRecordSize {
		return nil, 0, fmt.Errorf("%w: %d byte record exceeds limit", errBadRecord, n)
	}
	avail, err = s.ensure(recordFrameSize + n)
	if err != nil {
		return nil, 0, err
	}
	if avail < recordFrameSize+n {
		return nil, 0, errTornRecord
	}
	body, size, err = decodeRecord(s.buf[s.pos : s.pos+recordFrameSize+n])
	if err != nil {
		return nil, 0, err
	}
	s.pos += size
	return body, size, nil
}

// readFileRange reads [off, off+n) from f, failing on short reads.
func readFileRange(f vfile, off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := f.ReadAt(buf, off)
	if got == n {
		return buf, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}

func joinPath(dir, name string) string { return filepath.Join(dir, name) }
