package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"sync"
	"testing"
	"time"
)

// This file is the crash-point sweep harness: an in-memory vfs that models
// the durability semantics of a real disk (written data is volatile until
// fsync; metadata operations are journaled) with injectable faults — fail
// after N operations, a torn final write, silently dropped fsyncs — plus a
// sweep that crashes DiskBackend at *every* mutation point of a
// write→seal→commit workload and asserts that reopening recovers exactly the
// state of the last durable commit.

var errInjectedCrash = errors.New("injected crash")

const (
	crashFailStop = iota // ops from the crash point on fail; volatile data lost
	crashTorn            // like failStop, but the crashing write tears: a prefix persists
	crashDropSync        // fsyncs from the point on silently lie; no op ever fails
)

type faultPlan struct {
	mode    int
	crashAt int // 1-based index of the first affected operation
	ops     int
	crashed bool
}

// op accounts one mutation and reports whether it must fail.
func (p *faultPlan) op() error {
	if p == nil {
		return nil
	}
	p.ops++
	if p.mode == crashDropSync {
		return nil // dropped-fsync runs never fail operations outright
	}
	if p.ops >= p.crashAt {
		p.crashed = true
		return errInjectedCrash
	}
	return nil
}

// crashFS is an in-memory vfs. Each file tracks the process view (data) and
// the durable view (what survives a crash, advanced only by Sync). Metadata
// operations — create, rename, remove — are modeled as journaled: durable
// once performed, which is exactly the model under which forgetting to fsync
// *file contents* before a rename still loses data.
type crashFS struct {
	mu    sync.Mutex
	nodes map[string]*crashNode
	plan  *faultPlan
}

type crashNode struct {
	data    []byte
	durable []byte
}

func newCrashFS(plan *faultPlan) *crashFS {
	return &crashFS{nodes: make(map[string]*crashNode), plan: plan}
}

// snapshot materializes the durable state as a fresh, fault-free crashFS:
// what a machine would find on its disk after power loss.
func (c *crashFS) snapshot() *crashFS {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := newCrashFS(nil)
	for name, n := range c.nodes {
		d := append([]byte(nil), n.durable...)
		s.nodes[name] = &crashNode{data: append([]byte(nil), d...), durable: d}
	}
	return s
}

type crashFile struct {
	fs   *crashFS
	node *crashNode
}

func (c *crashFS) OpenFile(name string, flag int, perm os.FileMode) (vfile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name = path.Clean(name)
	n, ok := c.nodes[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		if err := c.plan.op(); err != nil {
			return nil, err
		}
		n = &crashNode{}
		c.nodes[name] = n
	} else if flag&os.O_TRUNC != 0 {
		if err := c.plan.op(); err != nil {
			return nil, err
		}
		n.data = nil
		n.durable = nil
	}
	return &crashFile{fs: c, node: n}, nil
}

func (c *crashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.plan.op(); err != nil {
		return err
	}
	oldpath, newpath = path.Clean(oldpath), path.Clean(newpath)
	n, ok := c.nodes[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(c.nodes, oldpath)
	c.nodes[newpath] = n
	return nil
}

func (c *crashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.plan.op(); err != nil {
		return err
	}
	name = path.Clean(name)
	if _, ok := c.nodes[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(c.nodes, name)
	return nil
}

func (c *crashFS) List(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dir = path.Clean(dir)
	var names []string
	for name := range c.nodes {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	return names, nil
}

func (c *crashFS) MkdirAll(dir string, perm os.FileMode) error { return nil }

func (c *crashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Metadata is journaled in this model; the sync only counts as an op so
	// crashes can land on it.
	return c.plan.op()
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	plan := f.fs.plan
	if err := plan.op(); err != nil {
		if plan.mode == crashTorn && plan.ops == plan.crashAt {
			// The crashing write tears: its first half reaches the platter
			// even though the process sees a failure.
			frag := p[:len(p)/2]
			f.node.durable = writeAtInto(f.node.durable, frag, off)
		}
		return 0, err
	}
	f.node.data = writeAtInto(f.node.data, p, off)
	return len(p), nil
}

func writeAtInto(dst, p []byte, off int64) []byte {
	end := off + int64(len(p))
	for int64(len(dst)) < end {
		dst = append(dst, 0)
	}
	copy(dst[off:end], p)
	return dst
}

func (f *crashFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.plan.op(); err != nil {
		return err
	}
	if int64(len(f.node.data)) > size {
		f.node.data = f.node.data[:size]
	}
	return nil
}

func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	plan := f.fs.plan
	if plan != nil && plan.mode == crashDropSync {
		plan.ops++
		if plan.ops >= plan.crashAt {
			return nil // the dropped fsync: success reported, nothing persisted
		}
	} else if err := plan.op(); err != nil {
		return err
	}
	f.node.durable = append(f.node.durable[:0:0], f.node.data...)
	return nil
}

func (f *crashFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.node.data)), nil
}

func (f *crashFile) Close() error { return nil }

// ---- the sweep ----

// sweepOracle mirrors every operation the disk backend acknowledged into a
// MemBackend (the reference implementation) and snapshots the full committed
// state at each acked commit.
type sweepOracle struct {
	mem        *MemBackend
	numBuckets int
	snaps      map[uint64][][][]byte // committed epoch -> bucket -> slots
	lastCommit uint64
	logRecs    [][]byte // record with sequence i+1 at index i (issued, maybe unacked)
	// logAcked counts the logRecs prefix whose durability was acknowledged
	// (inline for Append; at SyncLog's return for deferred appends). Records
	// beyond it were issued but never acked: recovery may keep or drop them
	// — a SyncLog spanning a segment rotation can persist its first file and
	// crash on the second — but what it keeps must match what was issued.
	logAcked int
	// truncAttempted is the highest Truncate argument ever issued: an
	// unacknowledged truncation may still have landed durably (the meta
	// rename raced the crash), so recovery may truncate up to here.
	truncAttempted uint64
	// commitIssued is the highest epoch whose commit record was issued as a
	// DEFERRED append (CommitEpochNoSync accepted it; the closing barrier
	// never acked). A segment rotation's seal fsync can make such a record
	// durable before the barrier, so recovery may land past lastCommit — up
	// to here — without anything having been invented. Zero for workloads
	// that only commit inline.
	commitIssued uint64
	kv           map[string]string
}

func newSweepOracle(numBuckets int) *sweepOracle {
	o := &sweepOracle{
		mem:            NewMemBackend(numBuckets),
		numBuckets:     numBuckets,
		snaps:          make(map[uint64][][][]byte),
		truncAttempted: 1,
		kv:             make(map[string]string),
	}
	o.snapshot(0)
	return o
}

func (o *sweepOracle) snapshot(epoch uint64) {
	state := make([][][]byte, o.numBuckets)
	for b := 0; b < o.numBuckets; b++ {
		slots, err := o.mem.ReadBucket(b)
		if err != nil {
			panic(err)
		}
		cp := make([][]byte, len(slots))
		for i, s := range slots {
			cp[i] = append([]byte(nil), s...)
		}
		state[b] = cp
	}
	o.snaps[epoch] = state
}

// shrinkDiskKnobs forces compaction and segment rollover inside the tiny
// sweep workload, so their crash windows are part of the swept surface.
func shrinkDiskKnobs(b *DiskBackend) {
	b.heapCompactMin = 64
	b.kvCompactMin = 64
	b.segMaxBytes = 128
}

// crashWorkload drives b through write→seal→commit cycles with same-epoch
// rewrites, a mid-stream rollback, log appends, truncation, KV churn and two
// explicit heap compactions (the background compactor is off in harness
// opens, so CompactNow puts compaction's crash windows at deterministic
// sweep indices). Acked operations mirror into the oracle; the workload
// stops at the first error (the injected crash wedges the backend). salt
// prefixes every payload so multi-shard runs store distinct bytes per shard;
// single-digit shard salts keep record sizes — and so each shard's op
// sequence — identical across shards.
func crashWorkload(b *DiskBackend, o *sweepOracle, salt string) {
	const numBuckets = 5
	slotsFor := func(e uint64, bucket int) [][]byte {
		return [][]byte{
			[]byte(fmt.Sprintf("%se%d-b%d-s0", salt, e, bucket)),
			[]byte(fmt.Sprintf("%se%d-b%d-s1", salt, e, bucket)),
		}
	}
	for e := uint64(1); e <= 6; e++ {
		var writes []BucketWrite
		for i := 0; i < 3; i++ {
			bucket := (int(e) + i) % numBuckets
			writes = append(writes, BucketWrite{Bucket: bucket, Epoch: e, Slots: slotsFor(e, bucket)})
		}
		if b.WriteBuckets(writes) != nil {
			return
		}
		o.mem.WriteBuckets(writes)
		// Same-epoch rewrite (recovery replay does this).
		re := BucketWrite{Bucket: int(e) % numBuckets, Epoch: e,
			Slots: [][]byte{[]byte(fmt.Sprintf("%se%d-rewrite", salt, e)), []byte("s1")}}
		if b.WriteBucket(re.Bucket, re.Epoch, re.Slots) != nil {
			return
		}
		o.mem.WriteBucket(re.Bucket, re.Epoch, re.Slots)
		rec := []byte(fmt.Sprintf("%swal-%d", salt, e))
		if _, err := b.Append(rec); err != nil {
			return
		}
		o.logRecs = append(o.logRecs, rec)
		o.logAcked = len(o.logRecs)
		if e%2 == 0 {
			k, v := salt+fmt.Sprintf("key%d", e/2), fmt.Sprintf("%sval%d", salt, e)
			if b.Put(k, []byte(v)) != nil {
				return
			}
			o.kv[k] = v
		}
		if e == 5 {
			if b.Delete(salt+"key1") != nil {
				return
			}
			delete(o.kv, salt+"key1")
		}
		if e == 3 {
			// Epoch 3 aborts: revert instead of committing (the paper's §8).
			if b.RollbackTo(2) != nil {
				return
			}
			o.mem.RollbackTo(2)
			// Compact over the rolled-back garbage: the incremental rewrite
			// must be crash-atomic with dead rollback bytes in flight.
			if b.CompactNow() != nil {
				return
			}
			continue
		}
		if b.CommitEpoch(e) != nil {
			return
		}
		o.mem.CommitEpoch(e)
		o.lastCommit = e
		o.snapshot(e)
		if e == 4 {
			o.truncAttempted = 3
			if b.Truncate(3) != nil {
				return
			}
		}
		if e == 5 {
			// Compact mid-stream with committed, superseded and truncated
			// state all present.
			if b.CompactNow() != nil {
				return
			}
		}
	}
}

// verifyRecovered opens the durable snapshot and checks it against the
// oracle. strict is true for fault modes with honest fsyncs, where recovery
// must land exactly on the last acknowledged commit.
func verifyRecovered(t *testing.T, snap *crashFS, dir string, o *sweepOracle, strict bool, tag string) {
	t.Helper()
	// A crash during the store's very creation can leave no meta file; the
	// operator reopens with the configured geometry, so pass it here too.
	r, err := openDiskBackend(snap, dir, 5)
	if err != nil {
		t.Fatalf("%s: recovered store failed to open: %v", tag, err)
	}
	defer r.Close()
	verifyRecoveredState(t, r, o, strict, tag)
}

// recoveredStore is what the verifier needs from a reopened shard: the full
// Backend contract plus its recovered commit point. Both a raw DiskBackend
// and a shared-log GroupShard satisfy it.
type recoveredStore interface {
	Backend
	CommittedEpoch() uint64
}

// verifyRecoveredState checks an already-reopened store against the oracle
// (the group sweep opens a whole DiskGroup and verifies each shard view).
func verifyRecoveredState(t *testing.T, r recoveredStore, o *sweepOracle, strict bool, tag string) {
	t.Helper()
	const numBuckets = 5

	c := r.CommittedEpoch()
	if strict && c != o.lastCommit && (c < o.lastCommit || c > o.commitIssued) {
		t.Fatalf("%s: recovered committed epoch %d, want %d (or an issued deferred commit up to %d)",
			tag, c, o.lastCommit, o.commitIssued)
	}
	want, ok := o.snaps[c]
	if !ok {
		t.Fatalf("%s: recovered to epoch %d, which was never acknowledged committed", tag, c)
	}
	// Recovery's revert: discard whatever uncommitted versions survived.
	if err := r.RollbackTo(c); err != nil {
		t.Fatalf("%s: rollback to %d: %v", tag, c, err)
	}
	for bucket := 0; bucket < numBuckets; bucket++ {
		got, err := r.ReadBucket(bucket)
		if err != nil {
			t.Fatalf("%s: ReadBucket(%d): %v", tag, bucket, err)
		}
		if len(got) != len(want[bucket]) {
			t.Fatalf("%s: bucket %d has %d slots, want %d", tag, bucket, len(got), len(want[bucket]))
		}
		for s := range got {
			if !bytes.Equal(got[s], want[bucket][s]) {
				t.Fatalf("%s: bucket %d slot %d = %q, want %q", tag, bucket, s, got[s], want[bucket][s])
			}
		}
	}
	// Log: every record present must match the oracle at its sequence
	// number; with honest fsyncs the acked suffix must be fully present.
	last, err := r.LastSeq()
	if err != nil {
		t.Fatalf("%s: LastSeq: %v", tag, err)
	}
	if last > uint64(len(o.logRecs)) {
		t.Fatalf("%s: recovered %d log records but only %d were ever appended", tag, last, len(o.logRecs))
	}
	if strict && last < uint64(o.logAcked) {
		t.Fatalf("%s: recovered LastSeq %d, want at least %d (acked appends lost)", tag, last, o.logAcked)
	}
	recs, err := r.Scan(0)
	if err != nil {
		t.Fatalf("%s: Scan: %v", tag, err)
	}
	firstSeq := last - uint64(len(recs)) + 1
	if len(recs) == 0 {
		firstSeq = last + 1
	}
	if strict && len(recs) > 0 && firstSeq > o.truncAttempted {
		t.Fatalf("%s: log truncated to %d, beyond any requested truncation point (%d)", tag, firstSeq, o.truncAttempted)
	}
	for i, rec := range recs {
		seq := firstSeq + uint64(i)
		if !bytes.Equal(rec, o.logRecs[seq-1]) {
			t.Fatalf("%s: log record %d = %q, want %q", tag, seq, rec, o.logRecs[seq-1])
		}
	}
	if strict {
		for k, v := range o.kv {
			got, found, err := r.Get(k)
			if err != nil || !found || string(got) != v {
				t.Fatalf("%s: kv %q = %q, %v, %v (want %q)", tag, k, got, found, err, v)
			}
		}
		if _, found, _ := r.Get("key1"); found && o.lastCommit >= 5 {
			t.Fatalf("%s: acked delete of key1 lost", tag)
		}
	}
}

// countWorkloadOps dry-runs the workload to learn how many mutation points
// there are to crash at.
func countWorkloadOps(t *testing.T) int {
	plan := &faultPlan{mode: crashFailStop, crashAt: 1 << 30}
	fsys := newCrashFS(plan)
	b, err := openDiskBackend(fsys, "data", 5)
	if err != nil {
		t.Fatal(err)
	}
	shrinkDiskKnobs(b)
	o := newSweepOracle(5)
	crashWorkload(b, o, "")
	b.Close()
	if o.lastCommit != 6 {
		t.Fatalf("fault-free workload committed through epoch %d, want 6", o.lastCommit)
	}
	// Sanity-check the harness against an uncrashed snapshot.
	verifyRecovered(t, fsys.snapshot(), "data", o, true, "fault-free")
	return plan.ops
}

// TestCrashPointSweep reopens the store after a crash injected at every
// mutation point, in each fault mode, and asserts recovery lands on the last
// durably committed epoch with all checksums intact.
func TestCrashPointSweep(t *testing.T) {
	total := countWorkloadOps(t)
	if total < 30 {
		t.Fatalf("workload only has %d mutation points; the sweep would prove little", total)
	}
	modes := []struct {
		name   string
		mode   int
		strict bool
	}{
		{"fail-stop", crashFailStop, true},
		{"torn-write", crashTorn, true},
		// Dropped fsyncs lose recency, never consistency: the store must
		// still open cleanly and land on *an* acknowledged commit.
		{"dropped-fsync", crashDropSync, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for k := 1; k <= total; k++ {
				plan := &faultPlan{mode: m.mode, crashAt: k}
				fsys := newCrashFS(plan)
				b, err := openDiskBackend(fsys, "data", 5)
				o := newSweepOracle(5)
				if err == nil {
					shrinkDiskKnobs(b)
					crashWorkload(b, o, "")
					b.Close()
				} else if !errors.Is(err, errInjectedCrash) {
					t.Fatalf("crash point %d: open failed oddly: %v", k, err)
				}
				verifyRecovered(t, fsys.snapshot(), "data", o, m.strict, fmt.Sprintf("crash point %d", k))
			}
		})
	}
}

// ---- the group-commit sweep ----

const groupSweepShards = 3

// groupShardDir names shard i's data dir in the group sweep.
func groupShardDir(i int) string { return fmt.Sprintf("data/shard-%d", i) }

// runGroupCrashWorkload opens groupSweepShards backends on one crashFS, all
// routed through one CommitGroup, and drives the standard workload on every
// shard CONCURRENTLY — commits, log appends and KV puts race into shared
// flush waves. Each shard mirrors its acked ops into its own oracle. A crash
// during a shard's open leaves that shard's oracle empty (epoch 0), which is
// exactly what its directory must recover to.
//
// Determinism: the sweep indexes crash points by a global op counter, so the
// total must not depend on goroutine interleaving. It doesn't: each shard's
// own op sequence is fixed, shards share no files, and a group barrier
// always costs exactly one fsync of its own file — sequential barriers from
// one shard can never share a wave (Barrier blocks until its wave lands),
// and cross-shard wave-mates sync different files — so coalescing changes
// *when* fsyncs happen, never how many. The three swept windows per barrier
// — record appended unsynced, pre-fsync, post-fsync-pre-ack — fall at
// consecutive global indices whatever the interleaving.
func runGroupCrashWorkload(t *testing.T, fsys *crashFS) []*sweepOracle {
	t.Helper()
	// A tight window keeps the sweep fast while MaxBatch == shard count still
	// lets a wave gather every shard when they arrive together.
	cg := NewCommitGroup(GroupConfig{Window: 50 * time.Microsecond, MaxBatch: groupSweepShards})
	defer cg.Close()
	oracles := make([]*sweepOracle, groupSweepShards)
	backends := make([]*DiskBackend, groupSweepShards)
	for i := range oracles {
		oracles[i] = newSweepOracle(5)
		b, err := openDiskBackendOpts(fsys, groupShardDir(i), 5, diskOpts{group: cg, workers: 1})
		if err != nil {
			if !errors.Is(err, errInjectedCrash) {
				t.Fatalf("group shard %d open failed oddly: %v", i, err)
			}
			continue
		}
		shrinkDiskKnobs(b)
		backends[i] = b
	}
	var wg sync.WaitGroup
	for i, b := range backends {
		if b == nil {
			continue
		}
		wg.Add(1)
		go func(i int, b *DiskBackend) {
			defer wg.Done()
			crashWorkload(b, oracles[i], fmt.Sprintf("s%d-", i))
		}(i, b)
	}
	wg.Wait()
	for _, b := range backends {
		if b != nil {
			b.Close()
		}
	}
	return oracles
}

// countGroupWorkloadOps dry-runs the concurrent group workload fault-free to
// learn the total mutation-point count, and sanity-checks that every shard's
// recovered directory matches its oracle.
func countGroupWorkloadOps(t *testing.T) int {
	plan := &faultPlan{mode: crashFailStop, crashAt: 1 << 30}
	fsys := newCrashFS(plan)
	oracles := runGroupCrashWorkload(t, fsys)
	snap := fsys.snapshot()
	for i, o := range oracles {
		if o.lastCommit != 6 {
			t.Fatalf("fault-free shard %d committed through epoch %d, want 6", i, o.lastCommit)
		}
		verifyRecovered(t, snap, groupShardDir(i), o, true, fmt.Sprintf("fault-free shard %d", i))
	}
	return plan.ops
}

// TestCrashPointSweepGroupCommit crashes the multi-shard group-commit
// pipeline at every mutation point in every fault mode and asserts each
// shard's recovery lands on a prefix-consistent set of that shard's acked
// commits: in strict modes exactly the last acked commit (nothing acked is
// lost, nothing unacked is invented), in dropped-fsync mode some acked
// commit (recency may be lost, consistency may not).
func TestCrashPointSweepGroupCommit(t *testing.T) {
	total := countGroupWorkloadOps(t)
	if total < 3*30 {
		t.Fatalf("group workload only has %d mutation points; the sweep would prove little", total)
	}
	modes := []struct {
		name   string
		mode   int
		strict bool
	}{
		{"fail-stop", crashFailStop, true},
		{"torn-write", crashTorn, true},
		{"dropped-fsync", crashDropSync, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for k := 1; k <= total; k++ {
				plan := &faultPlan{mode: m.mode, crashAt: k}
				fsys := newCrashFS(plan)
				oracles := runGroupCrashWorkload(t, fsys)
				snap := fsys.snapshot()
				for i, o := range oracles {
					verifyRecovered(t, snap, groupShardDir(i), o, m.strict,
						fmt.Sprintf("crash point %d shard %d", k, i))
				}
			}
		})
	}
}

// segOpenFailFS fails OpenFile for one specific file name with a transient
// (non-structural) error.
type segOpenFailFS struct {
	vfs
	failName string
}

func (f segOpenFailFS) OpenFile(name string, flag int, perm os.FileMode) (vfile, error) {
	if path.Base(path.Clean(name)) == f.failName {
		return nil, errors.New("transient EIO")
	}
	return f.vfs.OpenFile(name, flag, perm)
}

// buildSegmentedStore creates a store with several log segments on a clean
// in-memory fs and returns the fs and the acked records.
func buildSegmentedStore(t *testing.T) (*crashFS, [][]byte) {
	t.Helper()
	fsys := newCrashFS(nil)
	b, err := openDiskBackend(fsys, "data", 4)
	if err != nil {
		t.Fatal(err)
	}
	b.segMaxBytes = 128
	var recs [][]byte
	for i := 0; i < 12; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-%032d", i, i))
		if _, err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(b.segs) < 3 {
		t.Fatalf("want several segments, got %d", len(b.segs))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return fsys, recs
}

// TestOpenLogTransientErrorDoesNotDeleteSegments pins the recovery tool's
// first duty: a transient I/O error while opening a segment must fail the
// open loudly, not silently delete acknowledged log records as "orphans".
func TestOpenLogTransientErrorDoesNotDeleteSegments(t *testing.T) {
	fsys, recs := buildSegmentedStore(t)
	var segNames []string
	names, _ := fsys.List("data")
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segNames = append(segNames, n)
		}
	}
	sort.Strings(segNames)
	if _, err := openDiskBackend(segOpenFailFS{vfs: fsys, failName: segNames[0]}, "data", 4); err == nil {
		t.Fatal("open succeeded despite a transient segment open failure")
	}
	// Every segment must still be on disk, and a clean reopen sees all data.
	after, _ := fsys.List("data")
	for _, want := range segNames {
		found := false
		for _, n := range after {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("segment %s was deleted on a transient open error", want)
		}
	}
	r, err := openDiskBackend(fsys, "data", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[len(got)-1], recs[len(recs)-1]) {
		t.Fatalf("records lost after transient error: got %d of %d", len(got), len(recs))
	}
}

// TestOpenLogStructuralDamageDropsOrphanSuffix: a structurally damaged
// middle segment makes everything after it an orphaned suffix; recovery
// keeps the intact prefix and opens cleanly.
func TestOpenLogStructuralDamageDropsOrphanSuffix(t *testing.T) {
	fsys, recs := buildSegmentedStore(t)
	var bases []uint64
	names, _ := fsys.List("data")
	for _, n := range names {
		if base, ok := parseSegName(n); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	// Zero the second segment's header: structural damage, not a torn tail.
	f, err := fsys.OpenFile(joinPath("data", segName(bases[1])), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, fileHeaderSize), 0); err != nil {
		t.Fatal(err)
	}
	r, err := openDiskBackend(fsys, "data", 4)
	if err != nil {
		t.Fatalf("open failed on a droppable orphan suffix: %v", err)
	}
	defer r.Close()
	got, err := r.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	kept := int(bases[1] - bases[0])
	if len(got) != kept {
		t.Fatalf("kept %d records, want the intact prefix of %d", len(got), kept)
	}
	for i := range got {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("prefix record %d = %q, want %q", i, got[i], recs[i])
		}
	}
}

// TestCrashFSModelsDurability pins the harness's own semantics: volatile
// writes vanish, synced writes survive, torn writes persist a prefix.
func TestCrashFSModelsDurability(t *testing.T) {
	fsys := newCrashFS(nil)
	f, err := fsys.OpenFile("data/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("synced"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("volatile"), 6); err != nil {
		t.Fatal(err)
	}
	snap := fsys.snapshot()
	sf, err := snap.OpenFile("data/x", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := sf.Size()
	if size != 6 {
		t.Fatalf("unsynced write survived the crash: %d bytes durable", size)
	}

	// Torn write: the write at the crash point persists its first half even
	// though the process sees an error. Ops: create=1, write=2, sync=3,
	// write=4 (crashes, torn).
	plan := &faultPlan{mode: crashTorn, crashAt: 4}
	fsys = newCrashFS(plan)
	f, err = fsys.OpenFile("data/y", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("AAAA"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("BBBB"), 4); err == nil {
		t.Fatal("write at the crash point succeeded")
	}
	snap = fsys.snapshot()
	sf, err = snap.OpenFile("data/y", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := sf.ReadAt(buf, 0)
	if string(buf[:n]) != "AAAABB" {
		t.Fatalf("torn write durable state = %q, want synced prefix plus half the torn write", buf[:n])
	}
}
