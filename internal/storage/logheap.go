package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// LogHeap is the log-structured bucket heap: one shard's BucketStore whose
// version records ride the SAME physical segmented log as the group's
// recovery-log streams (a dedicated bucket-data stream id on the
// SharedLog). That is the whole point of the design — an epoch's bucket
// commit record and its WAL commit record land in one file, so the round's
// single deferred-barrier fsync covers both: heap commit and log barrier
// share a wave instead of each costing one.
//
// State is an in-memory index (bucket → version stack, newest last, each
// entry locating a version record in the shared log) plus a committed-epoch
// frontier, exactly MemBackend's shadow-paging shape. Nothing on disk is
// ever mutated in place:
//
//   - WriteBuckets appends a version record per bucket (no fsync — shadow
//     paging makes an unsynced version harmless) and installs its location.
//   - CommitEpoch appends one commit record; the barrier that makes the
//     epoch durable is the log's ordinary SyncLog wave. Replay only learns
//     a commit from its record, and every version record precedes it in the
//     same stream, so the one fsync covers the full FITO ordering an ack
//     stands on.
//   - RollbackTo appends a rollback record and reverts the index — the
//     shadow-page discard, as a log record.
//   - Segment GC re-appends live versions (kind heapKindGCCopy) out of old
//     segments and flips their index entries; the copy is crash-safe at
//     every point because replay relocates a copy only when the entry it
//     copied is still current.
//
// At open the index is rebuilt from an atomically-replaced checkpoint file
// (heapIndexName, watermark W) plus a replay of own-stream records above W,
// so recovery work is bounded by checkpoint cadence, not log length. The
// owner's segment retention gate (retainFloor) keeps any segment holding a
// live version or an un-checkpointed record alive past WAL truncation.
type LogHeap struct {
	owner  *DiskBackend // shard 0's backend: owns the physical log
	shared *SharedLog
	stream int // bucket-data stream index on shared

	fsys       vfs
	dir        string // this shard's directory; holds the index checkpoint
	numBuckets int

	// commitMu serializes the stream-order-sensitive multi-step operations
	// — commit/rollback barriers, checkpointing, segment GC — against each
	// other, mirroring DiskBackend.commitMu.
	commitMu sync.Mutex

	mu        sync.RWMutex
	index     [][]logVersion // per bucket: version stack, oldest first
	committed uint64
	lastPhys  uint64 // physical seq of this stream's newest record
	ckptW     uint64 // watermark of the installed index checkpoint
	dirty     int    // own-stream records appended since that checkpoint

	// retainFloor is the segment retention gate's input: the first physical
	// sequence this heap still needs on disk (lowest live version's segment
	// base, or ckptW+1 for un-checkpointed records, whichever is lower).
	// Atomic because the gate reads it while holding the owner's logMu,
	// which is *below* mu in the lock order.
	retainFloor atomic.Uint64

	// kick, when set, nudges the group's background maintenance loop after
	// a commit finds the un-checkpointed backlog past maintainEvery.
	kick func()
}

// heapIndexName is the checkpoint file inside the shard directory.
const heapIndexName = "heapindex"

// maintainEvery is how many own-stream records may accumulate past the
// checkpoint watermark before a commit kicks background maintenance.
const maintainEvery = 4096

// logVersion locates one shadow-paged bucket version inside the shared
// physical log.
type logVersion struct {
	epoch    uint64
	segBase  uint64
	off      int64 // frame offset of the whole record within its segment
	recLen   int   // framed record length
	slotLens []uint32
	// cached mirrors the slot bytes in memory, write-through only (same
	// policy as diskVersion): WriteBuckets installs what it just encoded,
	// replay leaves nil and those reads fall back to preads.
	cached [][]byte
}

// dataOff is the file offset of the version's first slot-length prefix:
// past the record frame, the stream-id header and the version-body header.
func (v *logVersion) dataOff() int64 {
	return v.off + recordFrameSize + sharedLogHdrSize + heapVersionDataStart
}

func (v *logVersion) slotRange(slot int) (off int64, n int) {
	off = v.dataOff()
	for i := 0; i < slot; i++ {
		off += 4 + int64(v.slotLens[i])
	}
	return off + 4, int(v.slotLens[slot])
}

func (v *logVersion) span() (off int64, n int) {
	off = v.dataOff()
	for _, l := range v.slotLens {
		n += 4 + int(l)
	}
	return off, n
}

var _ BucketStore = (*LogHeap)(nil)

// newLogHeap loads the shard's index checkpoint; the caller then replays
// own-stream records above the returned watermark through replayRecord (via
// the SharedLog demux scan) and finally attaches the shared log.
func newLogHeap(owner *DiskBackend, fsys vfs, dir string, stream, numBuckets int) (*LogHeap, error) {
	lh := &LogHeap{
		owner:      owner,
		stream:     stream,
		fsys:       fsys,
		dir:        dir,
		numBuckets: numBuckets,
		index:      make([][]logVersion, numBuckets),
	}
	if err := lh.loadCheckpoint(); err != nil {
		return nil, err
	}
	lh.lastPhys = lh.ckptW
	lh.recomputeRetainLocked()
	return lh, nil
}

// loadCheckpoint reads the heapindex file. A missing file, or one whose
// header never became durable (lying fsync under the rename), loads as
// empty — replay from the log's start rebuilds everything still on disk. A
// torn record tail discards the whole checkpoint the same way: a partially
// loaded index with a high watermark would silently drop the missing
// buckets, and the previous checkpoint is gone (the rename replaced it), so
// full replay is the only sound fallback. A structurally invalid record
// under a valid checksum is corruption and fails loudly.
func (lh *LogHeap) loadCheckpoint() error {
	f, err := lh.fsys.OpenFile(joinPath(lh.dir, heapIndexName), os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: opening heap index checkpoint: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	if size < fileHeaderSize {
		return nil // creation never durably completed
	}
	hdr, err := readFileRange(f, 0, fileHeaderSize)
	if err != nil {
		return err
	}
	nb, w, err := decodeFileHeader(hdr, lhixMagic)
	if err != nil {
		return nil // installed but never durable: pre-checkpoint state
	}
	if int(nb) != lh.numBuckets {
		return fmt.Errorf("storage: heap index checkpoint holds %d buckets but meta says %d", nb, lh.numBuckets)
	}
	index := make([][]logVersion, lh.numBuckets)
	var committed uint64
	sc := newRecordScanner(f, fileHeaderSize, size)
	off := int64(fileHeaderSize)
	for off < size {
		body, total, err := sc.next()
		if err != nil {
			if errors.Is(err, errTornRecord) {
				return nil // discard: see doc comment
			}
			return fmt.Errorf("storage: heap index checkpoint at offset %d: %w", off, err)
		}
		rec, err := parseLhixBody(body)
		if err != nil {
			return fmt.Errorf("storage: heap index checkpoint at offset %d: %w", off, err)
		}
		switch rec.kind {
		case lhixKindState:
			committed = rec.committed
		case lhixKindVersion:
			if rec.bucket < 0 || rec.bucket >= lh.numBuckets {
				return fmt.Errorf("storage: heap index checkpoint references bucket %d of %d", rec.bucket, lh.numBuckets)
			}
			index[rec.bucket] = append(index[rec.bucket], logVersion{
				epoch:    rec.epoch,
				segBase:  rec.segBase,
				off:      rec.off,
				recLen:   rec.recLen,
				slotLens: rec.slotLens,
			})
		}
		off += int64(total)
	}
	lh.index = index
	lh.committed = committed
	lh.ckptW = w
	return nil
}

// attach wires the replayed heap to its shared log and maintenance hook.
func (lh *LogHeap) attach(shared *SharedLog, kick func()) {
	lh.shared = shared
	lh.kick = kick
}

// replayRecord applies one own-stream record during the open-time demux
// scan. Record order equals the original mutation order (appends and index
// mutations happen under one lock at runtime), so replay reproduces the
// exact index state as of the log's end.
func (lh *LogHeap) replayRecord(seq, segBase uint64, off int64, body []byte) error {
	rec, err := parseHeapBody(body)
	if err != nil {
		return fmt.Errorf("storage: bucket stream %d at physical seq %d: %w", lh.stream, seq, err)
	}
	switch rec.kind {
	case heapKindVersion, heapKindGCCopy:
		if rec.bucket < 0 || rec.bucket >= lh.numBuckets {
			return fmt.Errorf("storage: bucket stream %d references bucket %d of %d", lh.stream, rec.bucket, lh.numBuckets)
		}
		v := logVersion{
			epoch:    rec.epoch,
			segBase:  segBase,
			off:      off,
			recLen:   recordFrameSize + sharedLogHdrSize + len(body),
			slotLens: rec.slotLens,
		}
		if rec.kind == heapKindGCCopy {
			// A GC copy re-locates the version it copied, and only if that
			// version is still the bucket's entry for its epoch: at runtime
			// the copy was appended under the lock only while the entry
			// matched, so by induction a mismatch here means a later record
			// already superseded or rolled the version back — ignore.
			vs := lh.index[rec.bucket]
			for j := len(vs) - 1; j >= 0; j-- {
				if vs[j].epoch == rec.epoch {
					vs[j] = v
					break
				}
				if vs[j].epoch < rec.epoch {
					break
				}
			}
		} else if err := lh.installVersionLocked(rec.bucket, v); err != nil {
			return fmt.Errorf("storage: bucket stream %d replay: %w", lh.stream, err)
		}
	case heapKindCommit:
		lh.applyCommitLocked(rec.epoch)
	case heapKindRollback:
		lh.applyRollbackLocked(rec.epoch)
	}
	lh.lastPhys = seq
	lh.dirty++
	return nil
}

// finishOpen recomputes the retention floor once replay is done; the group
// installs the gate right after.
func (lh *LogHeap) finishOpen() {
	lh.mu.Lock()
	lh.recomputeRetainLocked()
	lh.mu.Unlock()
}

// recomputeRetainLocked refreshes the retention floor: the lowest segment
// base holding a live version, or ckptW+1 (the first record replay would
// need), whichever is lower. Any physical sequence >= the floor survives
// segment collection. Only ever called with mu held; the gate itself just
// reads the atomic.
func (lh *LogHeap) recomputeRetainLocked() {
	floor := lh.ckptW + 1
	for _, vs := range lh.index {
		for i := range vs {
			if vs[i].segBase < floor {
				floor = vs[i].segBase
			}
		}
	}
	lh.retainFloor.Store(floor)
}

// ---- shadow-paging index transitions (same rules as DiskBackend) ----

func (lh *LogHeap) installVersionLocked(bucket int, v logVersion) error {
	vs := lh.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch == v.epoch {
		vs[n-1] = v
		return nil
	}
	if n := len(vs); n > 0 && vs[n-1].epoch > v.epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, v.epoch, vs[n-1].epoch)
	}
	lh.index[bucket] = append(vs, v)
	return nil
}

func (lh *LogHeap) applyCommitLocked(epoch uint64) {
	if epoch > lh.committed {
		lh.committed = epoch
	}
	for i, vs := range lh.index {
		keep := -1
		for j := len(vs) - 1; j >= 0; j-- {
			if vs[j].epoch <= lh.committed {
				keep = j
				break
			}
		}
		if keep > 0 {
			lh.index[i] = append(vs[:0], vs[keep:]...)
		}
	}
}

func (lh *LogHeap) applyRollbackLocked(epoch uint64) {
	for i, vs := range lh.index {
		n := len(vs)
		for n > 0 && vs[n-1].epoch > epoch {
			n--
		}
		lh.index[i] = vs[:n]
	}
	if lh.committed > epoch {
		lh.committed = epoch
	}
}

// ---- BucketStore reads ----

// NumBuckets implements BucketStore.
func (lh *LogHeap) NumBuckets() (int, error) {
	if err := lh.owner.checkUsable(); err != nil {
		return 0, err
	}
	return lh.numBuckets, nil
}

func (lh *LogHeap) newestVersionLocked(bucket int) (*logVersion, error) {
	if err := checkBucket(bucket, lh.numBuckets); err != nil {
		return nil, err
	}
	vs := lh.index[bucket]
	if len(vs) == 0 {
		return nil, nil
	}
	return &vs[len(vs)-1], nil
}

func (lh *LogHeap) lookupSlotLocked(bucket, slot int) (*logVersion, error) {
	v, err := lh.newestVersionLocked(bucket)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, fmt.Errorf("%w: bucket %d never written", ErrNoSuchSlot, bucket)
	}
	if slot < 0 || slot >= len(v.slotLens) {
		return nil, fmt.Errorf("%w: bucket %d slot %d (have %d)", ErrNoSuchSlot, bucket, slot, len(v.slotLens))
	}
	return v, nil
}

// ReadSlot implements BucketStore.
func (lh *LogHeap) ReadSlot(bucket, slot int) ([]byte, error) {
	lh.mu.RLock()
	defer lh.mu.RUnlock()
	if err := lh.owner.checkUsable(); err != nil {
		return nil, err
	}
	v, err := lh.lookupSlotLocked(bucket, slot)
	if err != nil {
		return nil, err
	}
	if v.cached != nil {
		return v.cached[slot], nil
	}
	off, n := v.slotRange(slot)
	return lh.owner.readLogRange(v.segBase, off, n)
}

// ReadSlots implements BucketStore. The vector fails atomically (every ref
// validated before any I/O); refs carrying the write-through mirror are
// answered from memory, the rest — only versions installed by recovery
// replay — fall back to per-version preads out of the shared log.
func (lh *LogHeap) ReadSlots(refs []SlotRef) ([][]byte, error) {
	lh.mu.RLock()
	defer lh.mu.RUnlock()
	if err := lh.owner.checkUsable(); err != nil {
		return nil, err
	}
	type slotRead struct {
		resIdx  int
		segBase uint64
		off     int64
		n       int
	}
	reads := make([]slotRead, 0, len(refs))
	out := make([][]byte, len(refs))
	for i, r := range refs {
		v, err := lh.lookupSlotLocked(r.Bucket, r.Slot)
		if err != nil {
			return nil, err
		}
		if v.cached != nil {
			out[i] = v.cached[r.Slot]
			continue
		}
		off, n := v.slotRange(r.Slot)
		reads = append(reads, slotRead{resIdx: i, segBase: v.segBase, off: off, n: n})
	}
	sort.Slice(reads, func(i, j int) bool {
		if reads[i].segBase != reads[j].segBase {
			return reads[i].segBase < reads[j].segBase
		}
		return reads[i].off < reads[j].off
	})
	for start := 0; start < len(reads); {
		end := start
		runEnd := reads[start].off + int64(reads[start].n)
		for end+1 < len(reads) && reads[end+1].segBase == reads[start].segBase &&
			reads[end+1].off <= runEnd+readCoalesceGap {
			end++
			if e := reads[end].off + int64(reads[end].n); e > runEnd {
				runEnd = e
			}
		}
		base := reads[start].off
		buf, err := lh.owner.readLogRange(reads[start].segBase, base, int(runEnd-base))
		if err != nil {
			return nil, err
		}
		for i := start; i <= end; i++ {
			lo := reads[i].off - base
			out[reads[i].resIdx] = buf[lo : lo+int64(reads[i].n)]
		}
		start = end + 1
	}
	return out, nil
}

// ReadBucket implements BucketStore.
func (lh *LogHeap) ReadBucket(bucket int) ([][]byte, error) {
	lh.mu.RLock()
	defer lh.mu.RUnlock()
	if err := lh.owner.checkUsable(); err != nil {
		return nil, err
	}
	v, err := lh.newestVersionLocked(bucket)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return lh.readVersionSlotsLocked(v)
}

func (lh *LogHeap) readVersionSlotsLocked(v *logVersion) ([][]byte, error) {
	if v.cached != nil {
		return v.cached, nil
	}
	off, n := v.span()
	buf, err := lh.owner.readLogRange(v.segBase, off, n)
	if err != nil {
		return nil, err
	}
	slots := make([][]byte, len(v.slotLens))
	pos := 0
	for i, l := range v.slotLens {
		pos += 4
		slots[i] = buf[pos : pos+int(l)]
		pos += int(l)
	}
	return slots, nil
}

// ---- BucketStore writes ----

func (lh *LogHeap) validateWriteLocked(bucket int, epoch uint64) error {
	if err := checkBucket(bucket, lh.numBuckets); err != nil {
		return err
	}
	vs := lh.index[bucket]
	if n := len(vs); n > 0 && vs[n-1].epoch > epoch {
		return fmt.Errorf("storage: bucket %d write for epoch %d after epoch %d already written (out-of-order shadow-page write)", bucket, epoch, vs[n-1].epoch)
	}
	return nil
}

// WriteBucket implements BucketStore.
func (lh *LogHeap) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	return lh.WriteBuckets([]BucketWrite{{Bucket: bucket, Epoch: epoch, Slots: slots}})
}

// WriteBuckets implements BucketStore: one version record per bucket into
// the shared log, no fsync (CommitEpoch's wave is the barrier; shadow
// paging makes a torn or unsynced version harmless). Bodies are encoded
// outside the lock; append + index install stay atomic under it, so the
// stream's record order equals the index mutation order replay will
// reproduce — and so lastPhys (the checkpoint watermark source) never runs
// behind an installed record. Writes install in vector order and stop at
// the first failing entry, leaving the validated prefix installed.
func (lh *LogHeap) WriteBuckets(writes []BucketWrite) error {
	bodies := make([][]byte, len(writes))
	lens := make([][]uint32, len(writes))
	for i, w := range writes {
		bodies[i] = encodeVersionBody(w.Bucket, w.Epoch, w.Slots)
		lens[i] = make([]uint32, len(w.Slots))
		for j, s := range w.Slots {
			lens[i][j] = uint32(len(s))
		}
	}
	lh.mu.Lock()
	defer lh.mu.Unlock()
	for i, w := range writes {
		if err := lh.validateWriteLocked(w.Bucket, w.Epoch); err != nil {
			return err
		}
		res, err := lh.shared.appendHeapStream(lh.stream, bodies[i])
		if err != nil {
			return err
		}
		lh.owner.notePending(res.f, res.ticket)
		v := logVersion{
			epoch:    w.Epoch,
			segBase:  res.segBase,
			off:      res.off,
			recLen:   res.n,
			slotLens: lens[i],
			cached:   w.Slots, // take ownership, like MemBackend
		}
		if err := lh.installVersionLocked(w.Bucket, v); err != nil {
			return err
		}
		lh.lastPhys = res.seq
		lh.dirty++
	}
	return nil
}

// CommitEpoch implements BucketStore: one commit record, then the log's
// ordinary barrier. SyncLog drains every deferred obligation on the
// physical log — this epoch's version records (wherever segment rotation
// put them), the commit record, and whatever WAL records shared the round —
// in one wave; nothing is acknowledged before it returns.
func (lh *LogHeap) CommitEpoch(epoch uint64) error {
	needBarrier, err := lh.appendEpochRecord(heapKindCommit, epoch)
	if err != nil {
		return err
	}
	if needBarrier {
		if err := lh.owner.SyncLog(); err != nil {
			return err
		}
	}
	lh.maybeKick()
	return nil
}

// CommitEpochNoSync implements EpochCommitBatcher: the commit record is
// appended and applied but its durability rides the caller's next SyncLog —
// the proxy's round barrier, where N shards' commits and the coordinator's
// WAL commit record all stand on one fsync.
func (lh *LogHeap) CommitEpochNoSync(epoch uint64) error {
	if _, err := lh.appendEpochRecord(heapKindCommit, epoch); err != nil {
		return err
	}
	lh.maybeKick()
	return nil
}

// RollbackTo implements BucketStore. Rollbacks always log and always
// barrier: the index shrinks, and replay must see that before the caller
// builds on the reverted state.
func (lh *LogHeap) RollbackTo(epoch uint64) error {
	if _, err := lh.appendEpochRecord(heapKindRollback, epoch); err != nil {
		return err
	}
	return lh.owner.SyncLog()
}

// appendEpochRecord appends a commit/rollback record and applies it to the
// index in one critical section. An already-covered commit (epoch <=
// committed) appends nothing and needs no barrier, mirroring DiskBackend.
func (lh *LogHeap) appendEpochRecord(kind byte, epoch uint64) (appended bool, err error) {
	lh.commitMu.Lock()
	defer lh.commitMu.Unlock()
	lh.mu.Lock()
	defer lh.mu.Unlock()
	if err := lh.owner.checkUsable(); err != nil {
		return false, err
	}
	needRecord := kind == heapKindRollback || epoch > lh.committed
	if needRecord {
		res, err := lh.shared.appendHeapStream(lh.stream, encodeEpochBody(kind, epoch))
		if err != nil {
			return false, err
		}
		lh.owner.notePending(res.f, res.ticket)
		lh.lastPhys = res.seq
		lh.dirty++
	}
	if kind == heapKindCommit {
		lh.applyCommitLocked(epoch)
	} else {
		lh.applyRollbackLocked(epoch)
		// Entries above the rollback target are gone; the floor may rise,
		// but more importantly replay must re-see the rollback record, which
		// ckptW+1 <= lastPhys already guarantees.
		lh.recomputeRetainLocked()
	}
	return needRecord, nil
}

func (lh *LogHeap) maybeKick() {
	lh.mu.RLock()
	due := lh.dirty >= maintainEvery
	lh.mu.RUnlock()
	if due && lh.kick != nil {
		lh.kick()
	}
}

// CommittedEpoch reports the highest committed epoch (test/recovery
// helper, parity with DiskBackend).
func (lh *LogHeap) CommittedEpoch() uint64 {
	lh.mu.RLock()
	defer lh.mu.RUnlock()
	return lh.committed
}

// VersionCount reports how many shadow versions a bucket holds. Test
// helper.
func (lh *LogHeap) VersionCount(bucket int) int {
	lh.mu.RLock()
	defer lh.mu.RUnlock()
	if bucket < 0 || bucket >= len(lh.index) {
		return 0
	}
	return len(lh.index[bucket])
}

// ---- index checkpoint ----

// Checkpoint atomically replaces the shard's index checkpoint with the
// current index and a watermark W = lastPhys, then raises the retention
// floor so segments holding only pre-W records (and no live versions)
// become collectible. Ordering is what makes it crash-safe:
//
//  1. Snapshot index + W under the read lock — W covers exactly the
//     records the snapshot reflects, never more, because append + install
//     + lastPhys update are atomic under mu.
//  2. SyncLog. Every own-stream record <= W is now durable, so the
//     checkpoint never points at (or bounds replay past) data a crash
//     could still tear.
//  3. Write tmp, fsync, rename, dir-sync — the install is atomic; a crash
//     before the rename leaves the old checkpoint, after it the new one,
//     and either replays to the same state (replay above the respective W
//     fills the difference).
func (lh *LogHeap) Checkpoint() error {
	lh.commitMu.Lock()
	defer lh.commitMu.Unlock()
	return lh.checkpointLocked()
}

func (lh *LogHeap) checkpointLocked() error {
	lh.mu.RLock()
	if err := lh.owner.checkUsable(); err != nil {
		lh.mu.RUnlock()
		return err
	}
	w := lh.lastPhys
	committed := lh.committed
	snap := make([][]logVersion, len(lh.index))
	for i, vs := range lh.index {
		snap[i] = append([]logVersion(nil), vs...)
	}
	dirtyAt := lh.dirty
	lh.mu.RUnlock()

	if err := lh.owner.SyncLog(); err != nil {
		return err
	}

	tmpName := joinPath(lh.dir, heapIndexName+tmpSuffix)
	tf, err := lh.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		tf.Close()
		_ = lh.fsys.Remove(tmpName)
		return err
	}
	buf := encodeFileHeader(lhixMagic, uint32(lh.numBuckets), w)
	buf = encodeRecord(buf, encodeEpochBody(lhixKindState, committed))
	off := int64(0)
	flush := func() error {
		if _, err := tf.WriteAt(buf, off); err != nil {
			return err
		}
		off += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for bucket, vs := range snap {
		for i := range vs {
			v := &vs[i]
			buf = encodeRecord(buf, encodeLhixVersion(bucket, v.epoch, v.segBase, v.off, v.recLen, v.slotLens))
			if len(buf) >= 1<<20 {
				if err := flush(); err != nil {
					return abort(err)
				}
			}
		}
	}
	if len(buf) > 0 {
		if err := flush(); err != nil {
			return abort(err)
		}
	}
	if err := tf.Sync(); err != nil {
		return abort(err)
	}
	if err := lh.fsys.Rename(tmpName, joinPath(lh.dir, heapIndexName)); err != nil {
		return abort(err)
	}
	if err := lh.fsys.SyncDir(lh.dir); err != nil {
		tf.Close()
		return err
	}
	tf.Close()

	lh.mu.Lock()
	if w > lh.ckptW {
		lh.ckptW = w
	}
	if lh.dirty >= dirtyAt {
		lh.dirty -= dirtyAt
	} else {
		lh.dirty = 0
	}
	lh.recomputeRetainLocked()
	lh.mu.Unlock()
	return nil
}

// ---- segment GC ----

// EvacuateSegment copies this heap's live versions out of the segment based
// at segBase, re-appending each as a heapKindGCCopy record at the log head
// and flipping its index entry — the only mutation, so a crash anywhere
// leaves either the old location (still on disk: the floor has not risen)
// or the new one. Each copy happens under the lock against the entry it
// copies, so a copy record in the log always reflects the entry's state at
// append time; replay leans on that to relocate exactly the still-current
// copies. Returns how many versions moved.
func (lh *LogHeap) EvacuateSegment(segBase uint64) (int, error) {
	lh.commitMu.Lock()
	defer lh.commitMu.Unlock()

	type ref struct {
		bucket int
		stack  int
		epoch  uint64
		off    int64
		recLen int
	}
	lh.mu.RLock()
	if err := lh.owner.checkUsable(); err != nil {
		lh.mu.RUnlock()
		return 0, err
	}
	var refs []ref
	for bucket, vs := range lh.index {
		for i := range vs {
			if vs[i].segBase == segBase {
				refs = append(refs, ref{bucket: bucket, stack: i, epoch: vs[i].epoch, off: vs[i].off, recLen: vs[i].recLen})
			}
		}
	}
	lh.mu.RUnlock()

	moved := 0
	for _, r := range refs {
		lh.mu.Lock()
		vs := lh.index[r.bucket]
		// Re-find the entry: commits/rollbacks may have shifted the stack
		// since the snapshot. Identity is (epoch, location).
		cur := -1
		for j := range vs {
			if vs[j].epoch == r.epoch && vs[j].segBase == segBase && vs[j].off == r.off {
				cur = j
				break
			}
		}
		if cur < 0 {
			lh.mu.Unlock()
			continue // superseded or rolled back since the snapshot
		}
		frame, err := lh.owner.readLogRange(segBase, r.off, r.recLen)
		if err != nil {
			lh.mu.Unlock()
			return moved, err
		}
		body, _, err := decodeRecord(frame)
		if err != nil {
			lh.mu.Unlock()
			return moved, fmt.Errorf("storage: GC re-reading segment %d offset %d: %w", segBase, r.off, err)
		}
		if len(body) <= sharedLogHdrSize {
			lh.mu.Unlock()
			return moved, fmt.Errorf("storage: GC re-reading segment %d offset %d: record shorter than its stream header", segBase, r.off)
		}
		copyBody := append([]byte(nil), body[sharedLogHdrSize:]...)
		copyBody[0] = heapKindGCCopy
		res, err := lh.shared.appendHeapStream(lh.stream, copyBody)
		if err != nil {
			lh.mu.Unlock()
			return moved, err
		}
		lh.owner.notePending(res.f, res.ticket)
		v := &lh.index[r.bucket][cur]
		v.segBase = res.segBase
		v.off = res.off
		v.recLen = res.n
		lh.lastPhys = res.seq
		lh.dirty++
		lh.mu.Unlock()
		moved++
	}
	if moved > 0 {
		// The copies must be durable — and the checkpoint that stops
		// pointing into the old segment installed — before the floor rises
		// and the segment can be collected; checkpointLocked does both in
		// order.
		if err := lh.checkpointLocked(); err != nil {
			return moved, err
		}
	}
	return moved, nil
}
