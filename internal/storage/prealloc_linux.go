//go:build linux

package storage

import "syscall"

// Preallocate implements the optional preallocator capability with
// fallocate(2) in its default mode: blocks are reserved and the file size
// extends to cover them, so appends within the region change no allocation
// metadata and their fsyncs skip the journal commit for it. The region
// reads as zeros until written, which record replay already treats as a
// torn tail.
func (o osFile) Preallocate(off, n int64) error {
	return syscall.Fallocate(int(o.f.Fd()), 0, off, n)
}
