package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// This file implements the wire protocol between the trusted proxy and the
// untrusted storage server. The protocol is a simple length-prefixed binary
// framing over TCP with request pipelining: many requests may be in flight on
// one connection, and responses carry the request id they answer.
//
// Request frame:  len(u32) | op(u8) | reqID(u64) | payload
// Response frame: len(u32) | status(u8) | reqID(u64) | payload
// len counts everything after the length field itself.

type wireOp uint8

const (
	wireReadSlot wireOp = iota + 1
	wireReadBucket
	wireWriteBucket
	wireCommitEpoch
	wireRollbackTo
	wireNumBuckets
	wireKVGet
	wireKVPut
	wireKVDelete
	wireLogAppend
	wireLogScan
	wireLogTruncate
	wireLogLastSeq
	// Vector ops: a whole stage's slot reads (or a sealed epoch's bucket
	// write-backs) packed into one frame, so batches cross the wire as
	// batches instead of one frame + round trip per slot.
	wireReadSlots
	wireWriteBuckets
	// wireFence acquires a proxy-generation fence token (see Fenceable):
	// the server binds the new token to this connection and from then on
	// rejects mutating ops from any connection holding an older token.
	wireFence
)

const (
	statusOK  = 0
	statusErr = 1
)

// maxFrame bounds a single protocol frame; large enough for a full bucket of
// big slots, a log scan chunk, or a vectored stage of slot reads.
const maxFrame = 64 << 20

// maxVector bounds the element count of a single vectored request.
const maxVector = 1 << 20

// vectorChunkBytes is the client-side payload threshold at which a vectored
// call is split into several frames: a sealed epoch's write-back set can
// exceed maxFrame with large slots, and one poison frame would tear down
// the connection (erroring every pipelined request) instead of failing one
// call. Chunks still travel back-to-back on one connection, so a chunked
// vector pays one round trip of wall clock, and layers above (executor
// stats, trace recorder) keep counting one storage call.
const vectorChunkBytes = maxFrame / 4

// vectorChunkRefs bounds refs per ReadSlots frame: the request side is tiny
// (12 bytes/ref) but the response size is slot-size dependent and unknown to
// the client, so the count is kept low enough that even MiB-scale slots fit
// a response frame.
const vectorChunkRefs = 1 << 12

// serverMaxHandlers bounds concurrent request handlers per connection: the
// server fans pipelined (and vectored) requests out to goroutines, and the
// bound keeps a flood of frames from spawning an unbounded worker set.
const serverMaxHandlers = 256

// ErrRemote wraps an error string returned by the storage server.
var ErrRemote = errors.New("storage: remote error")

// wireBuf is a pooled wire buffer: request frames read off a connection,
// response payloads, and encode scratch all recycle through one pool so the
// steady-state wire path performs no per-frame allocation. A frame decoded
// from a wireBuf aliases it; whoever consumes the frame releases the buffer
// once every alias is dead.
type wireBuf struct{ b []byte }

var wireBufPool = sync.Pool{New: func() any { return new(wireBuf) }}

func getWireBuf() *wireBuf { return wireBufPool.Get().(*wireBuf) }

// putWireBuf recycles buf, keeping whatever backing array it last held.
func putWireBuf(buf *wireBuf) { wireBufPool.Put(buf) }

// Server serves a Backend over TCP.
type Server struct {
	backend Backend
	ln      net.Listener

	// fence is the served backend's proxy-generation register: fencing at
	// the wire covers any backend (disk groups included) without the backend
	// itself implementing Fenceable, and a zombie proxy's stale connection
	// is exactly the thing being fenced.
	fence fenceRegister

	mu    sync.Mutex
	conns map[net.Conn]bool
	done  chan struct{}
	wg    sync.WaitGroup
}

// connState is per-connection protocol state: the fence token this
// connection most recently acquired (0 = never fenced; such connections are
// legacy/unfenced and always pass, so non-HA deployments are unaffected).
// Handlers for one connection run concurrently, hence the lock.
type connState struct {
	mu    sync.Mutex
	token uint64
}

func (cs *connState) setToken(t uint64) {
	cs.mu.Lock()
	cs.token = t
	cs.mu.Unlock()
}

func (cs *connState) getToken() uint64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.token
}

// NewServer starts serving backend on the given address ("host:port"; use
// ":0" for an ephemeral port).
func NewServer(backend Backend, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("storage: listen: %w", err)
	}
	s := &Server{
		backend: backend,
		ln:      ln,
		conns:   make(map[net.Conn]bool),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Drain stops accepting new connections, waits up to grace for the existing
// ones to finish on their own (clients closing after their last request),
// then closes whatever is left. Graceful shutdown (SIGTERM) uses it so a
// proxy's in-flight epoch-boundary barrier is answered rather than torn.
func (s *Server) Drain(grace time.Duration) error {
	close(s.done)
	err := s.ln.Close()
	deadline := time.Now().Add(grace)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 1<<16)
	var wmu sync.Mutex
	w := bufio.NewWriterSize(conn, 1<<16)
	cs := &connState{}
	var handlers sync.WaitGroup
	defer handlers.Wait()
	// Bounded worker pool: slow backends (e.g. latency-injected) must not
	// serialize pipelined requests, but a frame flood must not spawn an
	// unbounded goroutine set either. Acquiring before the spawn exerts
	// back-pressure on the connection's read loop.
	sem := make(chan struct{}, serverMaxHandlers)
	for {
		fb, err := readFrame(r)
		if err != nil {
			return
		}
		if len(fb.b) < 9 {
			putWireBuf(fb)
			return
		}
		op := wireOp(fb.b[0])
		reqID := binary.BigEndian.Uint64(fb.b[1:9])
		payload := fb.b[9:]
		handlers.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() {
				<-sem
				handlers.Done()
			}()
			// The response encodes into a pooled scratch; the request frame
			// releases after handle (which copies anything it retains) and
			// the response write both finish with its bytes.
			defer putWireBuf(fb)
			rb := getWireBuf()
			status, resp := s.handle(cs, op, payload, rb.b[:0])
			if len(resp)+9 > maxFrame {
				// A response the peer's readFrame would reject must become a
				// clean per-request error, not a connection-killing frame.
				status, resp = statusErr, []byte(fmt.Sprintf("storage: response of %d bytes exceeds frame limit", len(resp)))
			}
			wmu.Lock()
			err := writeResponse(w, status, reqID, resp)
			if err == nil {
				w.Flush()
			}
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
			if resp != nil {
				// Keep whichever backing the handler ended up with (error
				// strings included — any byte slice is a fine future frame).
				rb.b = resp[:0]
			}
			putWireBuf(rb)
		}()
	}
}

// mutatingOp reports whether an op changes store state and is therefore
// subject to proxy-generation fencing. Reads stay unfenced: the store is
// untrusted and its ciphertext readable by anyone on the wire anyway.
func mutatingOp(op wireOp) bool {
	switch op {
	case wireWriteBucket, wireWriteBuckets, wireCommitEpoch, wireRollbackTo,
		wireKVPut, wireKVDelete, wireLogAppend, wireLogTruncate:
		return true
	}
	return false
}

// handle executes one request. The payload may alias a pooled frame: every
// slice handed to the backend is copied out first (copyBytes/str), so the
// caller may release the frame as soon as handle returns. The response is
// encoded into scratch (a pooled buffer's spare capacity) and returned.
func (s *Server) handle(cs *connState, op wireOp, payload, scratch []byte) (byte, []byte) {
	enc := encoder{buf: scratch}
	fail := func(err error) (byte, []byte) {
		return statusErr, []byte(err.Error())
	}
	if mutatingOp(op) {
		if err := s.fence.check(cs.getToken()); err != nil {
			return fail(err)
		}
	}
	d := decoder{buf: payload}
	switch op {
	case wireFence:
		token := s.fence.acquire()
		cs.setToken(token)
		enc.u64(token)
	case wireReadSlot:
		bucket, slot := int(d.u32()), int(d.u32())
		if d.err != nil {
			return fail(d.err)
		}
		data, err := s.backend.ReadSlot(bucket, slot)
		if err != nil {
			return fail(err)
		}
		enc.bytes(data)
	case wireReadBucket:
		bucket := int(d.u32())
		if d.err != nil {
			return fail(d.err)
		}
		slots, err := s.backend.ReadBucket(bucket)
		if err != nil {
			return fail(err)
		}
		enc.u32(uint32(len(slots)))
		for _, sl := range slots {
			enc.bytes(sl)
		}
	case wireWriteBucket:
		bucket := int(d.u32())
		epoch := d.u64()
		n := int(d.u32())
		if d.err != nil || n < 0 || n > maxVector {
			return fail(fmt.Errorf("storage: bad write-bucket frame"))
		}
		slots := make([][]byte, n)
		for i := range slots {
			slots[i] = d.copyBytes()
		}
		if d.err != nil {
			return fail(d.err)
		}
		if err := s.backend.WriteBucket(bucket, epoch, slots); err != nil {
			return fail(err)
		}
	case wireReadSlots:
		n := int(d.u32())
		if d.err != nil || n < 0 || n > maxVector {
			return fail(fmt.Errorf("storage: bad read-slots frame"))
		}
		refs := make([]SlotRef, n)
		for i := range refs {
			refs[i] = SlotRef{Bucket: int(d.u32()), Slot: int(d.u32())}
		}
		if d.err != nil {
			return fail(d.err)
		}
		data, err := s.backend.ReadSlots(refs)
		if err != nil {
			return fail(err)
		}
		enc.u32(uint32(len(data)))
		for _, sl := range data {
			enc.bytes(sl)
		}
	case wireWriteBuckets:
		n := int(d.u32())
		if d.err != nil || n < 0 || n > maxVector {
			return fail(fmt.Errorf("storage: bad write-buckets frame"))
		}
		writes := make([]BucketWrite, n)
		for i := range writes {
			writes[i].Bucket = int(d.u32())
			writes[i].Epoch = d.u64()
			ns := int(d.u32())
			if d.err != nil || ns < 0 || ns > maxVector {
				return fail(fmt.Errorf("storage: bad write-buckets frame"))
			}
			slots := make([][]byte, ns)
			for j := range slots {
				slots[j] = d.copyBytes()
			}
			writes[i].Slots = slots
		}
		if d.err != nil {
			return fail(d.err)
		}
		if err := s.backend.WriteBuckets(writes); err != nil {
			return fail(err)
		}
	case wireCommitEpoch:
		if err := s.backend.CommitEpoch(d.u64()); err != nil {
			return fail(err)
		}
	case wireRollbackTo:
		if err := s.backend.RollbackTo(d.u64()); err != nil {
			return fail(err)
		}
	case wireNumBuckets:
		n, err := s.backend.NumBuckets()
		if err != nil {
			return fail(err)
		}
		enc.u32(uint32(n))
	case wireKVGet:
		key := d.str()
		if d.err != nil {
			return fail(d.err)
		}
		v, found, err := s.backend.Get(key)
		if err != nil {
			return fail(err)
		}
		if found {
			enc.u8(1)
			enc.bytes(v)
		} else {
			enc.u8(0)
		}
	case wireKVPut:
		key := d.str()
		val := d.copyBytes()
		if d.err != nil {
			return fail(d.err)
		}
		if err := s.backend.Put(key, val); err != nil {
			return fail(err)
		}
	case wireKVDelete:
		key := d.str()
		if d.err != nil {
			return fail(d.err)
		}
		if err := s.backend.Delete(key); err != nil {
			return fail(err)
		}
	case wireLogAppend:
		rec := d.copyBytes()
		if d.err != nil {
			return fail(d.err)
		}
		seq, err := s.backend.Append(rec)
		if err != nil {
			return fail(err)
		}
		enc.u64(seq)
	case wireLogScan:
		from := d.u64()
		if d.err != nil {
			return fail(d.err)
		}
		recs, err := s.backend.Scan(from)
		if err != nil {
			return fail(err)
		}
		enc.u32(uint32(len(recs)))
		for _, rec := range recs {
			enc.bytes(rec)
		}
	case wireLogTruncate:
		if err := s.backend.Truncate(d.u64()); err != nil {
			return fail(err)
		}
	case wireLogLastSeq:
		seq, err := s.backend.LastSeq()
		if err != nil {
			return fail(err)
		}
		enc.u64(seq)
	default:
		return fail(fmt.Errorf("storage: unknown op %d", op))
	}
	if d.err != nil {
		return fail(d.err)
	}
	return statusOK, enc.buf
}

// readFrame reads one frame into a pooled buffer: the length prefix is
// peeked out of the bufio window (no scratch copy) and the body lands in a
// recycled wireBuf. The caller owns the returned buffer and must putWireBuf
// it once done with every slice aliasing it.
func readFrame(r *bufio.Reader) (*wireBuf, error) {
	prefix, err := r.Peek(4)
	if err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n > maxFrame {
		return nil, fmt.Errorf("storage: frame of %d bytes exceeds limit", n)
	}
	if _, err := r.Discard(4); err != nil {
		return nil, err
	}
	buf := getWireBuf()
	if cap(buf.b) < int(n) {
		buf.b = make([]byte, n)
	}
	buf.b = buf.b[:n]
	if _, err := io.ReadFull(r, buf.b); err != nil {
		putWireBuf(buf)
		return nil, err
	}
	return buf, nil
}

func writeResponse(w *bufio.Writer, status byte, reqID uint64, payload []byte) error {
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(9+len(payload)))
	hdr[4] = status
	binary.BigEndian.PutUint64(hdr[5:13], reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a Backend implemented against a remote Server. It is safe for
// concurrent use; concurrent calls are pipelined over a single connection.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	readErr error
}

// response is one decoded server reply. Its payload aliases a pooled frame
// buffer; the consumer calls release after copying out whatever it keeps.
type response struct {
	status  byte
	payload []byte
	buf     *wireBuf
}

// release returns the response's pooled buffer. Idempotent per value; safe
// on zero responses.
func (r *response) release() {
	if r.buf != nil {
		putWireBuf(r.buf)
		r.buf = nil
		r.payload = nil
	}
}

var _ Backend = (*Client)(nil)

// DialMulti connects to one storage server per shard. Addresses may carry
// surrounding whitespace (comma-separated flag values). On any failure the
// already-established connections are closed before returning.
func DialMulti(addrs []string) ([]Backend, error) {
	backends := make([]Backend, 0, len(addrs))
	for _, a := range addrs {
		c, err := Dial(strings.TrimSpace(a))
		if err != nil {
			CloseAll(backends)
			return nil, err
		}
		backends = append(backends, c)
	}
	return backends, nil
}

// DialTimeout bounds how long Dial waits for a TCP connection. A dead shard
// address must fail proxy startup loudly, not hang it forever.
const DialTimeout = 10 * time.Second

// Dial connects to a storage server, failing after DialTimeout.
func Dial(addr string) (*Client, error) {
	return DialWithTimeout(addr, DialTimeout)
}

// DialWithTimeout connects to a storage server with an explicit connect
// timeout (0 or negative selects DialTimeout).
func DialWithTimeout(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("storage: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// The protocol is request/response with explicit flushes; Nagle
		// buffering would add delayed-ACK stalls to every small frame.
		tc.SetNoDelay(true)
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	r := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		fb, err := readFrame(r)
		if err != nil {
			c.fail(err)
			return
		}
		if len(fb.b) < 9 {
			putWireBuf(fb)
			c.fail(fmt.Errorf("storage: short response frame"))
			return
		}
		status := fb.b[0]
		reqID := binary.BigEndian.Uint64(fb.b[1:9])
		c.mu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- response{status: status, payload: fb.b[9:], buf: fb}
		} else {
			putWireBuf(fb)
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// call sends one request and waits for its reply. The returned response's
// payload borrows a pooled buffer: the caller parses (copying whatever it
// keeps) and then releases it. The request payload is fully consumed before
// call returns, so callers may recycle its backing immediately.
func (c *Client) call(op wireOp, payload []byte) (response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		// Closing the client also tears down the read loop, which records a
		// connection error; an explicitly closed client must still report
		// ErrClosed, not whichever teardown error won the race.
		c.mu.Unlock()
		return response{}, ErrClosed
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return response{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	if len(payload)+9 > maxFrame {
		// Refuse rather than send: the server would reject the frame and
		// kill the connection; a u32 header could even wrap past 4 GiB.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, fmt.Errorf("storage: request of %d bytes exceeds frame limit", len(payload))
	}
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(9+len(payload)))
	hdr[4] = byte(op)
	binary.BigEndian.PutUint64(hdr[5:13], id)

	c.wmu.Lock()
	_, err := c.w.Write(hdr[:])
	if err == nil {
		_, err = c.w.Write(payload)
	}
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, fmt.Errorf("storage: send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return response{}, fmt.Errorf("storage: connection lost: %w", err)
	}
	if resp.status != statusOK {
		msg := string(resp.payload)
		err := fmt.Errorf("%w: %s", ErrRemote, msg)
		if strings.HasPrefix(msg, ErrFenced.Error()) {
			// Reconstruct the sentinel so errors.Is(err, ErrFenced) holds
			// across the wire: a fenced-out proxy must be able to tell "I am
			// a zombie" from an ordinary storage failure.
			err = fmt.Errorf("%w: %w", ErrRemote, ErrFenced)
		}
		resp.release()
		return response{}, err
	}
	return resp, nil
}

// AcquireFence implements Fenceable over the wire: the server binds the new
// token to THIS connection, so the client itself is the returned view — its
// later mutating ops are checked server-side against the highest token
// issued for the served backend.
func (c *Client) AcquireFence() (Backend, uint64, error) {
	resp, err := c.call(wireFence, nil)
	if err != nil {
		return nil, 0, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	token := d.u64()
	if d.err != nil {
		return nil, 0, d.err
	}
	return c, token, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) ReadSlot(bucket, slot int) ([]byte, error) {
	rq := getWireBuf()
	enc := encoder{buf: rq.b[:0]}
	enc.u32(uint32(bucket))
	enc.u32(uint32(slot))
	resp, err := c.call(wireReadSlot, enc.buf)
	rq.b = enc.buf
	putWireBuf(rq)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: resp.payload}
	data := d.copyBytes()
	err = d.err
	resp.release()
	return data, err
}

// ReadSlots packs the whole vector into a single request frame: one wire op
// and one round trip however many slots the stage reads. Vectors larger
// than vectorChunkRefs are split across frames (sent back-to-back, still
// ~one round trip) so a response can never exceed the frame limit.
func (c *Client) ReadSlots(refs []SlotRef) ([][]byte, error) {
	if len(refs) > vectorChunkRefs {
		out := make([][]byte, 0, len(refs))
		for start := 0; start < len(refs); start += vectorChunkRefs {
			end := start + vectorChunkRefs
			if end > len(refs) {
				end = len(refs)
			}
			part, err := c.readSlotsFrame(refs[start:end])
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil
	}
	return c.readSlotsFrame(refs)
}

func (c *Client) readSlotsFrame(refs []SlotRef) ([][]byte, error) {
	rq := getWireBuf()
	enc := encoder{buf: rq.b[:0]}
	enc.u32(uint32(len(refs)))
	for _, r := range refs {
		enc.u32(uint32(r.Bucket))
		enc.u32(uint32(r.Slot))
	}
	resp, err := c.call(wireReadSlots, enc.buf)
	rq.b = enc.buf
	putWireBuf(rq)
	if err != nil {
		return nil, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	n := int(d.u32())
	if d.err != nil || n != len(refs) {
		return nil, fmt.Errorf("storage: bad read-slots response (%d results for %d refs)", n, len(refs))
	}
	// The whole vector copies out of the pooled frame into one contiguous
	// arena: two allocations per call instead of one per slot. The arena is
	// pre-sized, so the handed-out subslices never move.
	arena := make([]byte, 0, len(resp.payload))
	data := make([][]byte, n)
	for i := range data {
		b := d.view()
		if d.err != nil {
			return nil, d.err
		}
		off := len(arena)
		arena = append(arena, b...)
		data[i] = arena[off:len(arena):len(arena)]
	}
	return data, nil
}

func (c *Client) ReadBucket(bucket int) ([][]byte, error) {
	var enc encoder
	enc.u32(uint32(bucket))
	resp, err := c.call(wireReadBucket, enc.buf)
	if err != nil {
		return nil, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("storage: bad read-bucket response")
	}
	slots := make([][]byte, n)
	for i := range slots {
		slots[i] = d.copyBytes()
	}
	return slots, d.err
}

func (c *Client) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	rq := getWireBuf()
	enc := encoder{buf: rq.b[:0]}
	enc.u32(uint32(bucket))
	enc.u64(epoch)
	enc.u32(uint32(len(slots)))
	for _, s := range slots {
		enc.bytes(s)
	}
	resp, err := c.call(wireWriteBucket, enc.buf)
	rq.b = enc.buf
	putWireBuf(rq)
	resp.release()
	return err
}

// WriteBuckets ships a whole write-back set in one request frame, splitting
// into several frames (sent back-to-back) only when the encoded payload
// would approach the frame limit — the exact size is known client-side.
// Buckets install in vector order either way.
func (c *Client) WriteBuckets(writes []BucketWrite) error {
	rq, ob := getWireBuf(), getWireBuf()
	defer func() { putWireBuf(rq); putWireBuf(ob) }()
	// The chunk's element count lives in the payload's first four bytes,
	// patched at flush time, so the whole request encodes into one pooled
	// buffer with no per-chunk assembly copy.
	enc := encoder{buf: append(rq.b[:0], 0, 0, 0, 0)}
	start := 0
	flush := func(end int) error {
		if end == start && len(writes) > 0 {
			return nil
		}
		binary.BigEndian.PutUint32(enc.buf[:4], uint32(end-start))
		resp, err := c.call(wireWriteBuckets, enc.buf)
		resp.release()
		rq.b = enc.buf
		enc.buf = enc.buf[:4]
		start = end
		return err
	}
	for i, w := range writes {
		one := encoder{buf: ob.b[:0]}
		one.u32(uint32(w.Bucket))
		one.u64(w.Epoch)
		one.u32(uint32(len(w.Slots)))
		for _, s := range w.Slots {
			one.bytes(s)
		}
		ob.b = one.buf
		if len(enc.buf) > 4 && len(enc.buf)+len(one.buf) > vectorChunkBytes {
			if err := flush(i); err != nil {
				return err
			}
		}
		enc.buf = append(enc.buf, one.buf...)
	}
	return flush(len(writes))
}

func (c *Client) CommitEpoch(epoch uint64) error {
	rq := getWireBuf()
	enc := encoder{buf: rq.b[:0]}
	enc.u64(epoch)
	resp, err := c.call(wireCommitEpoch, enc.buf)
	rq.b = enc.buf
	putWireBuf(rq)
	resp.release()
	return err
}

func (c *Client) RollbackTo(epoch uint64) error {
	var enc encoder
	enc.u64(epoch)
	resp, err := c.call(wireRollbackTo, enc.buf)
	resp.release()
	return err
}

func (c *Client) NumBuckets() (int, error) {
	resp, err := c.call(wireNumBuckets, nil)
	if err != nil {
		return 0, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	n := int(d.u32())
	return n, d.err
}

func (c *Client) Get(key string) ([]byte, bool, error) {
	var enc encoder
	enc.str(key)
	resp, err := c.call(wireKVGet, enc.buf)
	if err != nil {
		return nil, false, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	if d.u8() == 0 {
		return nil, false, d.err
	}
	v := d.copyBytes()
	return v, true, d.err
}

func (c *Client) Put(key string, value []byte) error {
	var enc encoder
	enc.str(key)
	enc.bytes(value)
	resp, err := c.call(wireKVPut, enc.buf)
	resp.release()
	return err
}

func (c *Client) Delete(key string) error {
	var enc encoder
	enc.str(key)
	resp, err := c.call(wireKVDelete, enc.buf)
	resp.release()
	return err
}

func (c *Client) Append(record []byte) (uint64, error) {
	var enc encoder
	enc.bytes(record)
	resp, err := c.call(wireLogAppend, enc.buf)
	if err != nil {
		return 0, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	seq := d.u64()
	return seq, d.err
}

func (c *Client) Scan(from uint64) ([][]byte, error) {
	var enc encoder
	enc.u64(from)
	resp, err := c.call(wireLogScan, enc.buf)
	if err != nil {
		return nil, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	n := int(d.u32())
	if d.err != nil || n < 0 {
		return nil, fmt.Errorf("storage: bad log-scan response")
	}
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = d.copyBytes()
	}
	return recs, d.err
}

func (c *Client) Truncate(before uint64) error {
	var enc encoder
	enc.u64(before)
	resp, err := c.call(wireLogTruncate, enc.buf)
	resp.release()
	return err
}

func (c *Client) LastSeq() (uint64, error) {
	resp, err := c.call(wireLogLastSeq, nil)
	if err != nil {
		return 0, err
	}
	defer resp.release()
	d := decoder{buf: resp.payload}
	seq := d.u64()
	return seq, d.err
}

// encoder builds wire payloads.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder parses wire payloads.
type decoder struct {
	buf []byte
	err error
}

var errShort = errors.New("storage: short payload")

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf) < n {
		d.err = errShort
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) copyBytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// view reads a length-prefixed byte field without copying; the result
// aliases the decoder's buffer (a pooled frame — dead once it releases).
func (d *decoder) view() []byte {
	n := int(d.u32())
	return d.take(n)
}

func (d *decoder) str() string {
	n := int(d.u32())
	b := d.take(n)
	return string(b)
}
