package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func slots(vals ...string) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = []byte(v)
	}
	return out
}

func TestMemBackendReadWrite(t *testing.T) {
	m := NewMemBackend(3)
	if err := m.WriteBucket(1, 1, slots("a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadSlot(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "c" {
		t.Fatalf("ReadSlot = %q, want %q", got, "c")
	}
	all, err := m.ReadBucket(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || string(all[0]) != "a" {
		t.Fatalf("ReadBucket = %q", all)
	}
}

func TestMemBackendBucketBounds(t *testing.T) {
	m := NewMemBackend(2)
	if _, err := m.ReadSlot(5, 0); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("out-of-range bucket: %v", err)
	}
	if _, err := m.ReadSlot(-1, 0); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("negative bucket: %v", err)
	}
	if err := m.WriteBucket(2, 1, nil); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("write out-of-range: %v", err)
	}
	if err := m.WriteBucket(0, 1, slots("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadSlot(0, 1); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("out-of-range slot: %v", err)
	}
	if _, err := m.ReadSlot(1, 0); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("never-written bucket should have no slots: %v", err)
	}
}

func TestMemBackendNewestVersionWins(t *testing.T) {
	m := NewMemBackend(1)
	if err := m.WriteBucket(0, 1, slots("old")); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBucket(0, 2, slots("new")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("read %q, want newest version", got)
	}
}

func TestMemBackendSameEpochSupersedes(t *testing.T) {
	m := NewMemBackend(1)
	must(t, m.WriteBucket(0, 3, slots("a")))
	must(t, m.WriteBucket(0, 3, slots("b")))
	if n := m.VersionCount(0); n != 1 {
		t.Fatalf("same-epoch rewrite kept %d versions, want 1", n)
	}
	got, _ := m.ReadSlot(0, 0)
	if string(got) != "b" {
		t.Fatalf("read %q", got)
	}
}

func TestMemBackendRollback(t *testing.T) {
	m := NewMemBackend(1)
	must(t, m.WriteBucket(0, 1, slots("committed")))
	must(t, m.CommitEpoch(1))
	must(t, m.WriteBucket(0, 2, slots("aborted")))
	must(t, m.RollbackTo(1))
	got, err := m.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed" {
		t.Fatalf("after rollback read %q, want committed version", got)
	}
	if m.CommittedEpoch() != 1 {
		t.Fatalf("committed epoch = %d", m.CommittedEpoch())
	}
}

func TestMemBackendRollbackAllVersions(t *testing.T) {
	m := NewMemBackend(1)
	must(t, m.WriteBucket(0, 5, slots("x")))
	must(t, m.RollbackTo(2))
	if _, err := m.ReadSlot(0, 0); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("bucket should be empty after full rollback, got %v", err)
	}
}

func TestMemBackendCommitGarbageCollects(t *testing.T) {
	m := NewMemBackend(1)
	for e := uint64(1); e <= 5; e++ {
		must(t, m.WriteBucket(0, e, slots(fmt.Sprintf("v%d", e))))
	}
	if n := m.VersionCount(0); n != 5 {
		t.Fatalf("have %d versions before commit", n)
	}
	must(t, m.CommitEpoch(4))
	// Versions 1..3 are superseded by 4 within the committed prefix;
	// version 5 is uncommitted and must survive.
	if n := m.VersionCount(0); n != 2 {
		t.Fatalf("have %d versions after commit, want 2", n)
	}
	must(t, m.RollbackTo(4))
	got, _ := m.ReadSlot(0, 0)
	if string(got) != "v4" {
		t.Fatalf("read %q after rollback, want v4", got)
	}
}

func TestMemBackendKV(t *testing.T) {
	m := NewMemBackend(0)
	if _, found, err := m.Get("missing"); err != nil || found {
		t.Fatalf("Get(missing) = found=%v err=%v", found, err)
	}
	must(t, m.Put("k", []byte("v")))
	v, found, err := m.Get("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get(k) = %q found=%v err=%v", v, found, err)
	}
	must(t, m.Delete("k"))
	if _, found, _ := m.Get("k"); found {
		t.Fatal("key survives Delete")
	}
	must(t, m.Delete("k")) // idempotent
}

func TestMemBackendLog(t *testing.T) {
	m := NewMemBackend(0)
	if last, err := m.LastSeq(); err != nil || last != 0 {
		t.Fatalf("empty log LastSeq = %d, %v", last, err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := m.Append([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	recs, err := m.Scan(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != 3 {
		t.Fatalf("Scan(3) = %v", recs)
	}
	must(t, m.Truncate(4))
	recs, err = m.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0][0] != 4 {
		t.Fatalf("after truncate Scan = %v", recs)
	}
	seq, err := m.Append([]byte{9})
	if err != nil || seq != 6 {
		t.Fatalf("Append after truncate: seq=%d err=%v", seq, err)
	}
	if last, _ := m.LastSeq(); last != 6 {
		t.Fatalf("LastSeq = %d", last)
	}
}

func TestMemBackendTruncateBeyondEnd(t *testing.T) {
	m := NewMemBackend(0)
	m.Append([]byte{1})
	must(t, m.Truncate(100))
	recs, _ := m.Scan(0)
	if len(recs) != 0 {
		t.Fatalf("log not empty: %v", recs)
	}
	if seq, _ := m.Append([]byte{2}); seq != 2 {
		t.Fatalf("seq after over-truncate = %d", seq)
	}
}

func TestMemBackendClosed(t *testing.T) {
	m := NewMemBackend(1)
	must(t, m.Close())
	if _, err := m.ReadSlot(0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadSlot after close: %v", err)
	}
	if err := m.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := m.Append(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
}

func TestMemBackendConcurrent(t *testing.T) {
	m := NewMemBackend(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Each goroutine owns two buckets so its epoch tags stay
				// monotone per bucket (the shadow-paging write order the
				// backend enforces); the log is shared by all.
				b := g*2 + i%2
				if err := m.WriteBucket(b, uint64(i+1), slots("x", "y")); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.ReadSlot(b, 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Append([]byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if last, _ := m.LastSeq(); last != 8*200 {
		t.Fatalf("LastSeq = %d, want %d", last, 8*200)
	}
}

func TestDummyBackendIgnoresWrites(t *testing.T) {
	d := NewDummyBackend(4, 32)
	must(t, d.WriteBucket(0, 1, slots("real")))
	got, err := d.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatalf("dummy backend returned %q", got)
	}
	// Log still works (durability code path).
	if seq, err := d.Append([]byte("rec")); err != nil || seq != 1 {
		t.Fatalf("dummy log append: %d %v", seq, err)
	}
}

// TestTwoLiveEpochsShadowPaging models the pipelined boundary's storage
// footprint: the sealed epoch's flush and the next epoch's writes coexist as
// uncommitted shadow versions, rollback discards both, commit in epoch order
// garbage-collects superseded prefixes, and an out-of-order (lower-epoch)
// write that would bury a newer version is rejected.
func TestTwoLiveEpochsShadowPaging(t *testing.T) {
	m := NewMemBackend(2)
	must(t, m.WriteBucket(0, 1, slots("e1")))
	must(t, m.CommitEpoch(1))

	// Two live (uncommitted) epochs on the same bucket, flushed in order.
	must(t, m.WriteBucket(0, 2, slots("e2")))
	must(t, m.WriteBucket(0, 3, slots("e3")))
	if got, _ := m.ReadSlot(0, 0); string(got) != "e3" {
		t.Fatalf("newest version = %q, want e3", got)
	}
	if n := m.VersionCount(0); n != 3 {
		t.Fatalf("version count = %d, want 3 (committed + two live epochs)", n)
	}

	// A write for an older epoch arriving after a newer one is a pipelining
	// bug: the version stack would no longer be epoch-ordered.
	if err := m.WriteBucket(0, 2, slots("stale")); err == nil {
		t.Fatal("out-of-order shadow-page write accepted")
	}

	// Crash before either commit: both live epochs disappear.
	must(t, m.RollbackTo(1))
	if got, _ := m.ReadSlot(0, 0); string(got) != "e1" {
		t.Fatalf("after rollback = %q, want e1", got)
	}

	// Same shape again, this time committing in epoch order.
	must(t, m.WriteBucket(0, 2, slots("e2")))
	must(t, m.WriteBucket(0, 3, slots("e3")))
	must(t, m.CommitEpoch(2))
	must(t, m.CommitEpoch(3))
	if got, _ := m.ReadSlot(0, 0); string(got) != "e3" {
		t.Fatalf("after commits = %q, want e3", got)
	}
	if n := m.VersionCount(0); n != 1 {
		t.Fatalf("version count after GC = %d, want 1", n)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
