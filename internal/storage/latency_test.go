package storage

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyInjectsDelay(t *testing.T) {
	inner := NewMemBackend(1)
	must(t, inner.WriteBucket(0, 1, slots("x")))
	prof := Profile{Name: "slow", Read: 5 * time.Millisecond, Write: 5 * time.Millisecond}
	l := WithLatency(inner, prof)
	start := time.Now()
	if _, err := l.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("read returned after %v, want >= ~5ms", d)
	}
}

func TestLatencyOpsOverlap(t *testing.T) {
	inner := NewMemBackend(8)
	for b := 0; b < 8; b++ {
		must(t, inner.WriteBucket(b, 1, slots("x")))
	}
	l := WithLatency(inner, Profile{Name: "p", Read: 10 * time.Millisecond})
	start := time.Now()
	var wg sync.WaitGroup
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			l.ReadSlot(b, 0)
		}(b)
	}
	wg.Wait()
	// 8 concurrent 10ms reads should take ~10ms, not 80ms.
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("8 parallel reads took %v; latency wrapper serializes", d)
	}
}

func TestLatencyConcurrencyCap(t *testing.T) {
	inner := NewMemBackend(8)
	for b := 0; b < 8; b++ {
		must(t, inner.WriteBucket(b, 1, slots("x")))
	}
	l := WithLatency(inner, Profile{Name: "capped", Read: 10 * time.Millisecond, MaxConcurrent: 2})
	start := time.Now()
	var wg sync.WaitGroup
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			l.ReadSlot(b, 0)
		}(b)
	}
	wg.Wait()
	// 8 reads at concurrency 2 need 4 waves of ~10ms.
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Fatalf("8 capped reads finished in %v; cap not enforced", d)
	}
}

func TestProfileScaled(t *testing.T) {
	p := ProfileServerWAN.Scaled(0.1)
	if p.Read != time.Millisecond || p.Write != time.Millisecond {
		t.Fatalf("scaled profile: %v/%v", p.Read, p.Write)
	}
	if p.Name != ProfileServerWAN.Name {
		t.Fatal("scaling changed the profile name")
	}
	if ProfileServerWAN.Read != 10*time.Millisecond {
		t.Fatal("Scaled mutated the original profile")
	}
}

func TestProfilesOrder(t *testing.T) {
	ps := Profiles()
	want := []string{"dummy", "server", "server WAN", "dynamo"}
	if len(ps) != len(want) {
		t.Fatalf("Profiles() = %d entries", len(ps))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Fatalf("profile %d = %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestLatencyPassthrough(t *testing.T) {
	inner := NewMemBackend(1)
	l := WithLatency(inner, ProfileDummy)
	must(t, l.Put("k", []byte("v")))
	v, found, err := l.Get("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get through wrapper: %q %v %v", v, found, err)
	}
	seq, err := l.Append([]byte("r"))
	if err != nil || seq != 1 {
		t.Fatalf("Append through wrapper: %d %v", seq, err)
	}
	must(t, l.WriteBucket(0, 1, slots("s")))
	must(t, l.CommitEpoch(1))
	must(t, l.RollbackTo(1))
	n, err := l.NumBuckets()
	if err != nil || n != 1 {
		t.Fatalf("NumBuckets: %d %v", n, err)
	}
}
