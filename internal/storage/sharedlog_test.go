package storage

import (
	"bytes"
	"fmt"
	"path"
	"strings"
	"testing"
)

// Unit tests for the shared-log multiplexer: stream isolation, reopen demux,
// truncation floors, deferred barriers, and torn-tail recovery. They run on
// the crashFS vfs so durability (what a power loss keeps) is modeled exactly.

func openSharedOwner(t *testing.T, fsys vfs, dir string, streams int) (*DiskBackend, *SharedLog) {
	t.Helper()
	owner, err := openDiskBackendOpts(fsys, dir, 8, diskOpts{workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSharedLog(owner, streams)
	if err != nil {
		owner.Close()
		t.Fatal(err)
	}
	return owner, s
}

func scanStrings(t *testing.T, v *LogView, from uint64) []string {
	t.Helper()
	recs, err := v.Scan(from)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func wantStrings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSharedLogStreamIsolation(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 3)
	defer owner.Close()

	// Interleave appends across streams; each stream must see only its own
	// records, densely numbered from 1.
	views := []*LogView{s.View(0), s.View(1), s.View(2)}
	for round := 1; round <= 4; round++ {
		for i, v := range views {
			seq, err := v.Append([]byte(fmt.Sprintf("s%d-r%d", i, round)))
			if err != nil {
				t.Fatal(err)
			}
			if seq != uint64(round) {
				t.Fatalf("stream %d round %d seq = %d, want %d", i, round, seq, round)
			}
		}
	}
	for i, v := range views {
		wantStrings(t, scanStrings(t, v, 0),
			fmt.Sprintf("s%d-r1", i), fmt.Sprintf("s%d-r2", i),
			fmt.Sprintf("s%d-r3", i), fmt.Sprintf("s%d-r4", i))
		wantStrings(t, scanStrings(t, v, 3), fmt.Sprintf("s%d-r3", i), fmt.Sprintf("s%d-r4", i))
		last, err := v.LastSeq()
		if err != nil {
			t.Fatal(err)
		}
		if last != 4 {
			t.Fatalf("stream %d LastSeq = %d, want 4", i, last)
		}
	}
}

func TestSharedLogReopenRebuildsStreams(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 2)
	if _, err := s.View(0).Append([]byte("a0")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(1).Append([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(0).Append([]byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}

	owner, s = openSharedOwner(t, fsys, "data", 2)
	defer owner.Close()
	wantStrings(t, scanStrings(t, s.View(0), 0), "a0", "a1")
	wantStrings(t, scanStrings(t, s.View(1), 0), "b0")
	// Sequence numbers restart dense from the surviving count (the WAL layer
	// persists none, so renumbering is invisible to every consumer).
	seq, err := s.View(1).Append([]byte("b1"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("stream 1 post-reopen seq = %d, want 2", seq)
	}
	wantStrings(t, scanStrings(t, s.View(1), 0), "b0", "b1")
}

func TestSharedLogTruncateIsolatesStreams(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 2)
	defer owner.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.View(0).Append([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.View(1).Append([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Stream 0 drops its first two records; stream 1 must be untouched even
	// though its records interleave physically with the dropped ones.
	if err := s.View(0).Truncate(3); err != nil {
		t.Fatal(err)
	}
	wantStrings(t, scanStrings(t, s.View(0), 0), "a2")
	wantStrings(t, scanStrings(t, s.View(1), 0), "b0", "b1", "b2")
	last, err := s.View(0).LastSeq()
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Fatalf("stream 0 LastSeq after truncate = %d, want 3", last)
	}
	// Truncating the already-truncated prefix (or beyond the tail) is a
	// bounded no-op, not an error.
	if err := s.View(0).Truncate(1); err != nil {
		t.Fatal(err)
	}
	if err := s.View(1).Truncate(99); err != nil {
		t.Fatal(err)
	}
	wantStrings(t, scanStrings(t, s.View(1), 0))
	wantStrings(t, scanStrings(t, s.View(0), 0), "a2")
}

// One SyncLog from ANY view must make every stream's deferred appends
// durable (they share a physical file); deferred appends never synced must
// vanish at a crash without tearing the surviving prefix.
func TestSharedLogDeferredBarrier(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 2)
	defer owner.Close()
	if _, err := s.View(0).Append([]byte("a-durable")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(0).AppendNoSync([]byte("a-deferred")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(1).AppendNoSync([]byte("b-deferred")); err != nil {
		t.Fatal(err)
	}
	// Before any SyncLog: a crash now must keep only the synced record.
	crash := fsys.snapshot()
	rOwner, rs := openSharedOwner(t, crash, "data", 2)
	wantStrings(t, scanStrings(t, rs.View(0), 0), "a-durable")
	wantStrings(t, scanStrings(t, rs.View(1), 0))
	rOwner.Close()

	// Stream 1's barrier covers stream 0's deferred record too.
	if err := s.View(1).SyncLog(); err != nil {
		t.Fatal(err)
	}
	crash = fsys.snapshot()
	rOwner, rs = openSharedOwner(t, crash, "data", 2)
	wantStrings(t, scanStrings(t, rs.View(0), 0), "a-durable", "a-deferred")
	wantStrings(t, scanStrings(t, rs.View(1), 0), "b-deferred")
	rOwner.Close()
}

// A torn physical tail (power loss mid-write) must truncate to a prefix of
// EACH stream: the physical suffix that is lost is a suffix of every stream
// in append order.
func TestSharedLogTornTailRecoversStreamPrefixes(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 2)
	order := []struct {
		stream int
		rec    string
	}{{0, "a0"}, {1, "b0"}, {0, "a1"}, {1, "b1"}}
	for _, op := range order {
		if _, err := s.View(op.stream).Append([]byte(op.rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the newest segment: chop a few bytes off its tail, leaving the
	// final physical record (stream 1's "b1") half-written.
	fsys.mu.Lock()
	var segNode *crashNode
	var segPath string
	for name, n := range fsys.nodes {
		if strings.HasPrefix(path.Base(name), segPrefix) && name > segPath {
			segPath, segNode = name, n
		}
	}
	if segNode == nil {
		fsys.mu.Unlock()
		t.Fatal("no log segment found")
	}
	if len(segNode.data) < 3 {
		fsys.mu.Unlock()
		t.Fatalf("segment %s too short to tear (%d bytes)", segPath, len(segNode.data))
	}
	segNode.data = segNode.data[:len(segNode.data)-3]
	segNode.durable = segNode.durable[:len(segNode.durable)-3]
	fsys.mu.Unlock()

	owner, s = openSharedOwner(t, fsys, "data", 2)
	defer owner.Close()
	wantStrings(t, scanStrings(t, s.View(0), 0), "a0", "a1")
	wantStrings(t, scanStrings(t, s.View(1), 0), "b0")
	// The log stays appendable after truncating the torn record.
	seq, err := s.View(1).Append([]byte("b1-retry"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("stream 1 retry seq = %d, want 2", seq)
	}
}

// A physical log written in the old per-shard raw format (or by raw Append
// on the owner, bypassing the views) must fail loudly at open — silently
// misparsing stream ids would corrupt recovery.
func TestSharedLogRejectsUnwrappedRecords(t *testing.T) {
	t.Run("short-record", func(t *testing.T) {
		fsys := newCrashFS(nil)
		owner, err := openDiskBackendOpts(fsys, "data", 8, diskOpts{workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer owner.Close()
		if _, err := owner.Append([]byte("x")); err != nil { // 1 byte < stream header
			t.Fatal(err)
		}
		if _, err := NewSharedLog(owner, 2); err == nil {
			t.Fatal("NewSharedLog accepted a record shorter than its stream header")
		}
	})
	t.Run("stream-out-of-range", func(t *testing.T) {
		fsys := newCrashFS(nil)
		owner, err := openDiskBackendOpts(fsys, "data", 8, diskOpts{workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer owner.Close()
		// An old-format raw record: its first 4 bytes decode to a stream id
		// far beyond the opened stream count.
		if _, err := owner.Append([]byte("epoch=7 commit")); err != nil {
			t.Fatal(err)
		}
		if _, err := NewSharedLog(owner, 2); err == nil {
			t.Fatal("NewSharedLog accepted a record for an out-of-range stream")
		}
	})
}

// The shared log's physical floor tracks the minimum across streams: one
// stream truncating everything must not strand another stream's records,
// and the truncated state must survive reopen.
func TestSharedLogTruncateThenReopen(t *testing.T) {
	fsys := newCrashFS(nil)
	owner, s := openSharedOwner(t, fsys, "data", 2)
	for i := 0; i < 4; i++ {
		if _, err := s.View(0).Append([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.View(1).Append([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	if err := s.View(0).Truncate(5); err != nil { // drop all of stream 0
		t.Fatal(err)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}

	owner, s = openSharedOwner(t, fsys, "data", 2)
	defer owner.Close()
	wantStrings(t, scanStrings(t, s.View(0), 0))
	wantStrings(t, scanStrings(t, s.View(1), 0), "b0")
	recs, err := s.View(1).Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("b0")) {
		t.Fatalf("stream 1 after reopen = %q", recs)
	}
}
