package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")

	m := NewMemBackend(4)
	must(t, m.WriteBucket(0, 1, slots("a", "b")))
	must(t, m.WriteBucket(3, 2, slots("c")))
	must(t, m.CommitEpoch(1))
	must(t, m.Put("kv-key", []byte("kv-value")))
	if _, err := m.Append([]byte("log-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]byte("log-2")); err != nil {
		t.Fatal(err)
	}
	must(t, m.Truncate(2))
	if err := m.SaveTo(path); err != nil {
		t.Fatal(err)
	}

	r, err := LoadMemBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := r.NumBuckets(); n != 4 {
		t.Fatalf("buckets = %d", n)
	}
	v, err := r.ReadSlot(0, 1)
	if err != nil || string(v) != "b" {
		t.Fatalf("slot: %q %v", v, err)
	}
	if r.CommittedEpoch() != 1 {
		t.Fatalf("committed = %d", r.CommittedEpoch())
	}
	kv, found, err := r.Get("kv-key")
	if err != nil || !found || string(kv) != "kv-value" {
		t.Fatalf("kv: %q %v %v", kv, found, err)
	}
	// Log sequence numbers survive (needed for recovery correctness).
	recs, err := r.Scan(0)
	if err != nil || len(recs) != 1 || string(recs[0]) != "log-2" {
		t.Fatalf("log: %q %v", recs, err)
	}
	seq, err := r.Append([]byte("log-3"))
	if err != nil || seq != 3 {
		t.Fatalf("append after restore: seq=%d %v", seq, err)
	}
	// The uncommitted version structure survives too.
	must(t, r.WriteBucket(0, 5, slots("new")))
	must(t, r.RollbackTo(1))
	v, _ = r.ReadSlot(0, 0)
	if string(v) != "a" {
		t.Fatalf("rollback after restore: %q", v)
	}
}

func TestSaveToAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.snap")
	m := NewMemBackend(1)
	must(t, m.WriteBucket(0, 1, slots("v1")))
	must(t, m.SaveTo(path))
	// Overwrite with new state; the temp file must not linger.
	must(t, m.WriteBucket(0, 2, slots("v2")))
	must(t, m.SaveTo(path))
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	r, err := LoadMemBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadSlot(0, 0)
	if string(v) != "v2" {
		t.Fatalf("loaded %q, want latest snapshot", v)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadMemBackend(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMemBackend(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
