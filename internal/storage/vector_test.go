package storage

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestMemReadSlotsVector(t *testing.T) {
	m := NewMemBackend(4)
	must(t, m.WriteBucket(0, 1, slots("a0", "a1")))
	must(t, m.WriteBucket(2, 1, slots("c0", "c1", "c2")))
	got, err := m.ReadSlots([]SlotRef{{Bucket: 2, Slot: 2}, {Bucket: 0, Slot: 0}, {Bucket: 2, Slot: 0}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c2", "a0", "c0"}
	if len(got) != len(want) {
		t.Fatalf("ReadSlots returned %d results, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("result %d = %q, want %q (results must be in ref order)", i, got[i], w)
		}
	}
}

func TestMemReadSlotsBadRefFailsWholeVector(t *testing.T) {
	m := NewMemBackend(2)
	must(t, m.WriteBucket(0, 1, slots("x")))
	if _, err := m.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 9, Slot: 0}}); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("bad bucket ref: %v", err)
	}
	if _, err := m.ReadSlots([]SlotRef{{Bucket: 0, Slot: 5}}); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("bad slot ref: %v", err)
	}
	if out, err := m.ReadSlots(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty vector: %v %v", out, err)
	}
}

func TestMemWriteBucketsVector(t *testing.T) {
	m := NewMemBackend(4)
	must(t, m.WriteBuckets([]BucketWrite{
		{Bucket: 0, Epoch: 1, Slots: slots("a")},
		{Bucket: 1, Epoch: 1, Slots: slots("b")},
		{Bucket: 3, Epoch: 1, Slots: slots("d")},
	}))
	got, err := m.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 1, Slot: 0}, {Bucket: 3, Slot: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []string{"a", "b", "d"} {
		if string(got[i]) != w {
			t.Fatalf("slot %d = %q, want %q", i, got[i], w)
		}
	}
}

func TestMemWriteBucketsKeepsEpochOrdering(t *testing.T) {
	m := NewMemBackend(2)
	must(t, m.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 2, Slots: slots("new")}}))
	// A lower-epoch write after a higher-epoch one is an out-of-order
	// shadow-page write whether it arrives scalar or vectored.
	if err := m.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 1, Slots: slots("old")}}); err == nil {
		t.Fatal("out-of-order vectored write accepted")
	}
	// Same-epoch rewrite supersedes in place, as with scalar writes.
	must(t, m.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 2, Slots: slots("newer")}}))
	if n := m.VersionCount(0); n != 1 {
		t.Fatalf("same-epoch vectored rewrite left %d versions", n)
	}
}

func TestDummyBackendVector(t *testing.T) {
	d := NewDummyBackend(4, 8)
	got, err := d.ReadSlots(make([]SlotRef, 3))
	if err != nil || len(got) != 3 || len(got[0]) != 8 {
		t.Fatalf("dummy ReadSlots: %v %v", got, err)
	}
	must(t, d.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 1, Slots: slots("ignored")}}))
}

func TestRecorderExpandsVectorOps(t *testing.T) {
	r := NewRecorder(NewMemBackend(4))
	must(t, r.WriteBuckets([]BucketWrite{
		{Bucket: 1, Epoch: 3, Slots: slots("x", "y")},
		{Bucket: 2, Epoch: 3, Slots: slots("z")},
	}))
	if _, err := r.ReadSlots([]SlotRef{{Bucket: 1, Slot: 0}, {Bucket: 2, Slot: 0}}); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Op: OpWriteBucket, Bucket: 1, Epoch: 3},
		{Op: OpWriteBucket, Bucket: 2, Epoch: 3},
		{Op: OpReadSlot, Bucket: 1, Slot: 0},
		{Op: OpReadSlot, Bucket: 2, Slot: 0},
	}
	ev := r.Events()
	if len(ev) != len(want) {
		t.Fatalf("recorded %d events, want %d: %v", len(ev), len(want), ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v (vector ops must expand per slot)", i, ev[i], want[i])
		}
	}
	calls := r.Calls()
	if calls.ReadSlots != 1 || calls.WriteBuckets != 1 || calls.ReadSlot != 0 || calls.WriteBucket != 0 {
		t.Fatalf("call counters: %+v", calls)
	}
	r.Reset()
	if c := r.Calls(); c != (CallStats{}) {
		t.Fatalf("Reset left call counters: %+v", c)
	}
}

func TestInvariantCheckerVectorDoubleRead(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(2))
	must(t, c.WriteBucket(0, 1, slots("a", "b")))
	if _, err := c.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 0, Slot: 1}}); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("distinct slots in one vector flagged: %v", v)
	}
	if _, err := c.ReadSlots([]SlotRef{{Bucket: 0, Slot: 1}}); err != nil {
		t.Fatal(err)
	}
	if c.Violation() == nil {
		t.Fatal("double read across vector calls not detected")
	}
}

func TestInvariantCheckerVectorWriteResets(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(2))
	must(t, c.WriteBucket(0, 1, slots("a")))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, c.WriteBuckets([]BucketWrite{{Bucket: 0, Epoch: 2, Slots: slots("a2")}}))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("read after vectored rewrite flagged: %v", v)
	}
}

func TestLatencyVectorOneRoundTrip(t *testing.T) {
	inner := NewMemBackend(8)
	for b := 0; b < 8; b++ {
		must(t, inner.WriteBucket(b, 1, slots("x")))
	}
	// With MaxConcurrent 1, eight scalar reads would serialize into 8 round
	// trips (~80ms); one vectored read is a single request in a single slot.
	l := WithLatency(inner, Profile{Name: "p", Read: 10 * time.Millisecond, MaxConcurrent: 1})
	refs := make([]SlotRef, 8)
	for i := range refs {
		refs[i] = SlotRef{Bucket: i, Slot: 0}
	}
	start := time.Now()
	if _, err := l.ReadSlots(refs); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 8*time.Millisecond || d > 40*time.Millisecond {
		t.Fatalf("vectored read of 8 slots took %v, want ~one 10ms round trip", d)
	}
}

func TestLatencyVectorPerItemService(t *testing.T) {
	inner := NewMemBackend(8)
	for b := 0; b < 8; b++ {
		must(t, inner.WriteBucket(b, 1, slots("x")))
	}
	l := WithLatency(inner, Profile{Name: "p", ReadPerSlot: 2 * time.Millisecond, WritePerBucket: 2 * time.Millisecond})
	refs := make([]SlotRef, 8)
	for i := range refs {
		refs[i] = SlotRef{Bucket: i, Slot: 0}
	}
	start := time.Now()
	if _, err := l.ReadSlots(refs); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 14*time.Millisecond {
		t.Fatalf("vectored read of 8 slots with 2ms/slot service took %v, want >= ~16ms (vector calls are not free)", d)
	}
	writes := make([]BucketWrite, 8)
	for i := range writes {
		writes[i] = BucketWrite{Bucket: i, Epoch: 2, Slots: slots("y")}
	}
	start = time.Now()
	must(t, l.WriteBuckets(writes))
	if d := time.Since(start); d < 14*time.Millisecond {
		t.Fatalf("vectored write of 8 buckets with 2ms/bucket service took %v, want >= ~16ms", d)
	}
}

func TestProfileScaledVectorFields(t *testing.T) {
	p := Profile{Read: 10 * time.Millisecond, ReadPerSlot: 10 * time.Microsecond, WritePerBucket: 20 * time.Microsecond}
	q := p.Scaled(0.1)
	if q.ReadPerSlot != time.Microsecond || q.WritePerBucket != 2*time.Microsecond {
		t.Fatalf("Scaled did not scale per-item service times: %v/%v", q.ReadPerSlot, q.WritePerBucket)
	}
}

func TestRemoteVectorRoundTrip(t *testing.T) {
	c, backend := newRemotePair(t, 8)
	writes := make([]BucketWrite, 8)
	for i := range writes {
		writes[i] = BucketWrite{Bucket: i, Epoch: 1, Slots: slots(fmt.Sprintf("b%d-0", i), fmt.Sprintf("b%d-1", i))}
	}
	must(t, c.WriteBuckets(writes))
	if n := backend.VersionCount(3); n != 1 {
		t.Fatalf("vectored write did not reach backend: bucket 3 has %d versions", n)
	}
	var refs []SlotRef
	for i := 7; i >= 0; i-- {
		refs = append(refs, SlotRef{Bucket: i, Slot: 1})
	}
	got, err := c.ReadSlots(refs)
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range refs {
		if want := fmt.Sprintf("b%d-1", r.Bucket); string(got[k]) != want {
			t.Fatalf("vector result %d = %q, want %q", k, got[k], want)
		}
	}
	// An empty vector is legal and cheap.
	if out, err := c.ReadSlots(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty vector over the wire: %v %v", out, err)
	}
	must(t, c.WriteBuckets(nil))
}

// TestRemoteVectorChunking drives a read vector past the per-frame ref
// bound: the client must split it across frames transparently, preserving
// ref order end-to-end.
func TestRemoteVectorChunking(t *testing.T) {
	c, _ := newRemotePair(t, 64)
	for b := 0; b < 64; b++ {
		must(t, c.WriteBucket(b, 1, slots(fmt.Sprintf("s%d", b))))
	}
	n := vectorChunkRefs*2 + 17
	refs := make([]SlotRef, n)
	for i := range refs {
		refs[i] = SlotRef{Bucket: i % 64, Slot: 0}
	}
	got, err := c.ReadSlots(refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("chunked vector returned %d of %d results", len(got), n)
	}
	for i := 0; i < n; i += 997 {
		if want := fmt.Sprintf("s%d", i%64); string(got[i]) != want {
			t.Fatalf("result %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestRemoteVectorErrorsPropagate(t *testing.T) {
	c, _ := newRemotePair(t, 2)
	must(t, c.WriteBucket(0, 1, slots("x")))
	_, err := c.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}, {Bucket: 99, Slot: 0}})
	if err == nil || !errors.Is(err, ErrRemote) {
		t.Fatalf("expected remote error for bad ref in vector, got %v", err)
	}
	if err := c.WriteBuckets([]BucketWrite{{Bucket: 99, Epoch: 1, Slots: slots("x")}}); err == nil {
		t.Fatal("vectored write to bad bucket succeeded")
	}
}

// TestRemoteVectorStressWithServerClose interleaves pipelined scalar calls,
// vector calls, and a mid-flight server close under -race: every in-flight
// caller must get an error or a result (no stranded waiters), and the client
// must fan the connection loss out cleanly.
func TestRemoteVectorStressWithServerClose(t *testing.T) {
	backend := NewMemBackend(64)
	for b := 0; b < 64; b++ {
		must(t, backend.WriteBucket(b, 1, slots("s0", "s1")))
	}
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				var err error
				switch (g + i) % 3 {
				case 0:
					_, err = c.ReadSlot((g+i)%64, i%2)
				case 1:
					refs := make([]SlotRef, 1+(i%17))
					for k := range refs {
						refs[k] = SlotRef{Bucket: (g + k) % 64, Slot: k % 2}
					}
					_, err = c.ReadSlots(refs)
				case 2:
					err = c.WriteBuckets([]BucketWrite{{Bucket: (g + i) % 64, Epoch: 1, Slots: slots("w0", "w1")}})
				}
				if err != nil {
					// Connection torn down mid-flight: the error must be
					// surfaced, not hung on.
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(20 * time.Millisecond)
	srv.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stranded waiters: workers still blocked 10s after server close")
	}
	// New calls on the dead connection fail fast rather than queueing.
	if _, err := c.ReadSlots([]SlotRef{{Bucket: 0, Slot: 0}}); err == nil {
		t.Fatal("vector call succeeded after connection loss")
	}
}

// TestDialTimeout covers the startup-hang fix: dialing a dead address must
// return within the configured timeout instead of blocking forever. A
// listener with a zero backlog whose accept queue is pre-filled models the
// dead shard: further SYNs are dropped, so an untimed dial would hang.
func TestDialTimeout(t *testing.T) {
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer syscall.Close(fd)
	if err := syscall.Bind(fd, &syscall.SockaddrInet4{Addr: [4]byte{127, 0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Listen(fd, 0); err != nil {
		t.Fatal(err)
	}
	sa, err := syscall.Getsockname(fd)
	if err != nil {
		t.Fatal(err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", sa.(*syscall.SockaddrInet4).Port)
	// Fill the accept queue so subsequent handshakes stall.
	for i := 0; i < 4; i++ {
		if conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond); err == nil {
			defer conn.Close()
		} else {
			break // queue already full
		}
	}
	start := time.Now()
	_, err = DialWithTimeout(addr, 300*time.Millisecond)
	if err == nil {
		t.Skip("kernel accepted past the zero backlog; cannot simulate a hanging dial here")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("dial took %v despite 300ms timeout", d)
	}
}

func TestDialTimeoutConnectsToLiveServer(t *testing.T) {
	srv, err := NewServer(NewMemBackend(1), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialWithTimeout(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := c.NumBuckets(); err != nil || n != 1 {
		t.Fatalf("NumBuckets over timed dial: %d %v", n, err)
	}
}
