package storage

import (
	"errors"
	"fmt"
	"testing"
)

// The shared-log group sweep: crashes the REAL DiskGroup deployment shape —
// N shards, one data dir, recovery-log streams multiplexed into shard 0's
// physical log, deferred appends closed by one SyncLog per round — at every
// mutation point in every fault mode. The private-dir group sweep
// (TestCrashPointSweepGroupCommit) covers the scheduler; this one covers
// what the scheduler coalesces ON: the shared physical log and the
// deferred-barrier rounds the proxy stands its epoch acks on.
//
// The workload is strictly serial (one goroutine drives all shards), so the
// global mutation-op counter indexes crash points deterministically.
//
// The workload deliberately never truncates: stream-level logical floors are
// not persisted (the WAL layer re-derives its position from epochs, not
// sequences), so a reopen renumbers each stream from its surviving records —
// sound for the WAL but it would desynchronize the oracle's seq-indexed
// content check. Truncation crash windows are swept by the single-backend
// sweep (where sequences are physical and stable) and exercised logically by
// the shared-log unit tests.

const sharedSweepShards = 2

// runSharedGroupCrashWorkload opens a DiskGroup on the fault-injecting fs
// and drives a deterministic serial workload across its shard views. Each
// shard's acked operations mirror into its own oracle; a crash during the
// group open leaves every oracle at epoch 0, which is what each shard
// directory must then recover to.
func runSharedGroupCrashWorkload(t *testing.T, fsys *crashFS) []*sweepOracle {
	t.Helper()
	oracles := make([]*sweepOracle, sharedSweepShards)
	for i := range oracles {
		oracles[i] = newSweepOracle(5)
	}
	g, err := openDiskGroupOpts(fsys, "data", sharedSweepShards, 5, diskOpts{workers: 1})
	if err != nil {
		if !errors.Is(err, errInjectedCrash) {
			t.Fatalf("shared group open failed oddly: %v", err)
		}
		return oracles
	}
	defer g.Close()
	for _, b := range g.shards {
		shrinkDiskKnobs(b) // tiny segments: the shared log rotates mid-round
	}
	sharedGroupWorkload(g.views, oracles)
	return oracles
}

// sharedGroupWorkload drives epochs of the proxy's barrier placement: bucket
// writes per shard, a deferred append round closed by ONE shard's SyncLog, a
// synced append interleaved on the same physical log, KV churn, a mid-stream
// rollback, and per-shard commits. It stops at the first error (the injected
// crash wedges the group).
func sharedGroupWorkload(views []*GroupShard, oracles []*sweepOracle) {
	const numBuckets = 5
	n := len(views)
	for e := uint64(1); e <= 4; e++ {
		for i, v := range views {
			var writes []BucketWrite
			for k := 0; k < 2; k++ {
				bucket := (int(e) + k) % numBuckets
				writes = append(writes, BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{
					[]byte(fmt.Sprintf("g%d-e%d-b%d-s0", i, e, bucket)),
					[]byte(fmt.Sprintf("g%d-e%d-b%d-s1", i, e, bucket)),
				}})
			}
			if v.WriteBuckets(writes) != nil {
				return
			}
			oracles[i].mem.WriteBuckets(writes)
		}
		// The deferred round: every shard appends unsynced — records issued
		// but unacked — then one shard's SyncLog makes the whole round
		// durable and acks it for everyone.
		for i, v := range views {
			rec := []byte(fmt.Sprintf("g%d-wal-%d", i, e))
			if _, err := v.AppendNoSync(rec); err != nil {
				return
			}
			oracles[i].logRecs = append(oracles[i].logRecs, rec)
		}
		if views[int(e)%n].SyncLog() != nil {
			return
		}
		for _, o := range oracles {
			o.logAcked = len(o.logRecs)
		}
		// A plain synced append on the same physical log: the two paths must
		// interleave without disturbing each other's durability.
		for i, v := range views {
			rec := []byte(fmt.Sprintf("g%d-wal-%d-b", i, e))
			if _, err := v.Append(rec); err != nil {
				return
			}
			oracles[i].logRecs = append(oracles[i].logRecs, rec)
			oracles[i].logAcked = len(oracles[i].logRecs)
		}
		if e%2 == 0 {
			i := int(e) % n
			k, val := fmt.Sprintf("g%d-key%d", i, e), fmt.Sprintf("g%d-val%d", i, e)
			if views[i].Put(k, []byte(val)) != nil {
				return
			}
			oracles[i].kv[k] = val
		}
		if e == 3 {
			// Epoch 3 aborts on every shard (the paper's §8 revert); its log
			// records stay — recovery filters by epoch, not by sequence.
			for i, v := range views {
				if v.RollbackTo(2) != nil {
					return
				}
				oracles[i].mem.RollbackTo(2)
			}
			continue
		}
		for i, v := range views {
			if v.CommitEpoch(e) != nil {
				return
			}
			oracles[i].mem.CommitEpoch(e)
			oracles[i].lastCommit = e
			oracles[i].snapshot(e)
		}
	}
}

// verifySharedGroupRecovered reopens the whole group on the durable snapshot
// — shared-log demux included — and checks every shard view against its
// oracle.
func verifySharedGroupRecovered(t *testing.T, snap *crashFS, oracles []*sweepOracle, strict bool, tag string) {
	t.Helper()
	g, err := openDiskGroupOpts(snap, "data", sharedSweepShards, 5, diskOpts{workers: 1})
	if err != nil {
		t.Fatalf("%s: recovered group failed to open: %v", tag, err)
	}
	defer g.Close()
	for i, v := range g.views {
		verifyRecoveredState(t, v, oracles[i], strict, fmt.Sprintf("%s shard %d", tag, i))
	}
}

// countSharedGroupWorkloadOps dry-runs the workload fault-free to learn the
// swept surface, sanity-checking the harness along the way.
func countSharedGroupWorkloadOps(t *testing.T) int {
	plan := &faultPlan{mode: crashFailStop, crashAt: 1 << 30}
	fsys := newCrashFS(plan)
	oracles := runSharedGroupCrashWorkload(t, fsys)
	for i, o := range oracles {
		if o.lastCommit != 4 {
			t.Fatalf("fault-free shard %d committed through epoch %d, want 4", i, o.lastCommit)
		}
	}
	verifySharedGroupRecovered(t, fsys.snapshot(), oracles, true, "fault-free")
	return plan.ops
}

func TestCrashPointSweepSharedLogGroup(t *testing.T) {
	total := countSharedGroupWorkloadOps(t)
	if total < 40 {
		t.Fatalf("shared-log workload only has %d mutation points; the sweep would prove little", total)
	}
	modes := []struct {
		name   string
		mode   int
		strict bool
	}{
		{"fail-stop", crashFailStop, true},
		{"torn-write", crashTorn, true},
		{"dropped-fsync", crashDropSync, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for k := 1; k <= total; k++ {
				plan := &faultPlan{mode: m.mode, crashAt: k}
				fsys := newCrashFS(plan)
				oracles := runSharedGroupCrashWorkload(t, fsys)
				verifySharedGroupRecovered(t, fsys.snapshot(), oracles,
					m.strict, fmt.Sprintf("crash point %d", k))
			}
		})
	}
}
