package storage

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// This file adds whole-store snapshot persistence to MemBackend, so a
// standalone obladi-storage server can survive restarts (the cloud side is
// the durable entity in Obladi's model). The format is a single gob stream.
//
// Durability contract: SaveTo is crash-atomic and durable on return. The
// snapshot is written to a temp file which is fsynced *before* the rename
// (rename-without-fsync is the classic crash-consistency bug: metadata
// journaling can commit the rename while the data blocks are still in the
// page cache, leaving a zero-length "snapshot" after power loss), and the
// parent directory is fsynced *after* the rename so the new name itself
// survives. A crash at any point leaves either the complete old snapshot or
// the complete new one. Note the contract covers SaveTo/LoadMemBackend
// pairs only — MemBackend loses everything between snapshots; DiskBackend
// is the incremental, always-durable alternative.

// memSnapshot is the serializable image of a MemBackend.
type memSnapshot struct {
	Buckets   [][]snapVersion
	Committed uint64
	KV        map[string][]byte
	Log       [][]byte
	LogBase   uint64
}

type snapVersion struct {
	Epoch uint64
	Slots [][]byte
}

// SaveTo writes the backend's full state to path atomically.
func (m *MemBackend) SaveTo(path string) error {
	m.mu.RLock()
	snap := memSnapshot{
		Buckets:   make([][]snapVersion, len(m.buckets)),
		Committed: m.committed,
		KV:        make(map[string][]byte, len(m.kv)),
		Log:       append([][]byte(nil), m.log...),
		LogBase:   m.logBase,
	}
	for i, vs := range m.buckets {
		out := make([]snapVersion, len(vs))
		for j, v := range vs {
			out[j] = snapVersion{Epoch: v.epoch, Slots: v.slots}
		}
		snap.Buckets[i] = out
	}
	for k, v := range m.kv {
		snap.KV[k] = v
	}
	m.mu.RUnlock()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: encoding snapshot: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// LoadMemBackend restores a backend saved with SaveTo.
func LoadMemBackend(path string) (*MemBackend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer f.Close()
	var snap memSnapshot
	if err := gob.NewDecoder(bufio.NewReaderSize(f, 1<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	m := NewMemBackend(len(snap.Buckets))
	m.committed = snap.Committed
	m.kv = snap.KV
	if m.kv == nil {
		m.kv = make(map[string][]byte)
	}
	m.log = snap.Log
	if snap.LogBase > 0 {
		m.logBase = snap.LogBase
	}
	for i, vs := range snap.Buckets {
		out := make([]bucketVersion, len(vs))
		for j, v := range vs {
			out[j] = bucketVersion{epoch: v.Epoch, slots: v.Slots}
		}
		m.buckets[i] = out
	}
	return m, nil
}
