package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openDisk(t *testing.T, dir string, buckets int) *DiskBackend {
	t.Helper()
	b, err := OpenDiskBackend(dir, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDiskReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 8)
	for e := uint64(1); e <= 3; e++ {
		var writes []BucketWrite
		for bucket := 0; bucket < 4; bucket++ {
			writes = append(writes, BucketWrite{
				Bucket: bucket, Epoch: e,
				Slots: [][]byte{[]byte(fmt.Sprintf("e%d-b%d", e, bucket))},
			})
		}
		if err := b.WriteBuckets(writes); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append([]byte(fmt.Sprintf("log-%d", e))); err != nil {
			t.Fatal(err)
		}
		if err := b.CommitEpoch(e); err != nil {
			t.Fatal(err)
		}
	}
	must(t, b.Put("alpha", []byte("1")))
	must(t, b.Put("beta", []byte("2")))
	must(t, b.Delete("alpha"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDisk(t, dir, 8)
	defer r.Close()
	if got := r.CommittedEpoch(); got != 3 {
		t.Fatalf("recovered committed epoch = %d, want 3", got)
	}
	for bucket := 0; bucket < 4; bucket++ {
		got, err := r.ReadSlot(bucket, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("e3-b%d", bucket)
		if string(got) != want {
			t.Fatalf("bucket %d = %q, want %q", bucket, got, want)
		}
	}
	recs, err := r.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2]) != "log-3" {
		t.Fatalf("recovered log = %q", recs)
	}
	if seq, _ := r.LastSeq(); seq != 3 {
		t.Fatalf("recovered LastSeq = %d", seq)
	}
	if _, found, _ := r.Get("alpha"); found {
		t.Fatal("deleted key resurrected on reopen")
	}
	if v, found, _ := r.Get("beta"); !found || string(v) != "2" {
		t.Fatalf("recovered kv beta = %q, %v", v, found)
	}
}

func TestDiskUncommittedVersionsSurviveReopenUntilRollback(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 2)
	must(t, b.WriteBucket(0, 1, [][]byte{[]byte("e1")}))
	must(t, b.CommitEpoch(1))
	must(t, b.WriteBucket(0, 2, [][]byte{[]byte("e2-uncommitted")}))
	// The uncommitted version is not fsynced, but closing cleanly does not
	// crash the process; a reopen may or may not see it. Force durability by
	// committing a *different* epoch? No — instead exercise the documented
	// recovery path: reopen, then roll back to the committed frontier.
	must(t, b.Close())

	r := openDisk(t, dir, 2)
	defer r.Close()
	if got := r.CommittedEpoch(); got != 1 {
		t.Fatalf("committed = %d, want 1", got)
	}
	must(t, r.RollbackTo(r.CommittedEpoch()))
	got, err := r.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "e1" {
		t.Fatalf("after rollback: %q", got)
	}
}

func TestDiskRollbackSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 2)
	must(t, b.WriteBucket(0, 1, [][]byte{[]byte("e1")}))
	must(t, b.CommitEpoch(1))
	must(t, b.WriteBucket(0, 2, [][]byte{[]byte("e2")}))
	must(t, b.RollbackTo(1))
	// Epochs may be reused after a rollback (recovery replay does this).
	must(t, b.WriteBucket(0, 2, [][]byte{[]byte("e2-replayed")}))
	must(t, b.CommitEpoch(2))
	must(t, b.Close())

	r := openDisk(t, dir, 2)
	defer r.Close()
	if got := r.CommittedEpoch(); got != 2 {
		t.Fatalf("committed = %d, want 2", got)
	}
	got, err := r.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "e2-replayed" {
		t.Fatalf("replayed epoch lost: %q", got)
	}
}

func TestDiskTornHeapTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 2)
	must(t, b.WriteBucket(0, 1, [][]byte{[]byte("survives")}))
	must(t, b.CommitEpoch(1))
	must(t, b.Close())

	path := filepath.Join(dir, heapFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record: a plausible length prefix with garbage behind it.
	if _, err := f.Write([]byte{0, 0, 0, 40, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openDisk(t, dir, 2)
	defer r.Close()
	got, err := r.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives" {
		t.Fatalf("state after torn tail: %q", got)
	}
	// The tail must be physically gone so new appends extend a valid file.
	must(t, r.WriteBucket(1, 2, [][]byte{[]byte("after")}))
	must(t, r.CommitEpoch(2))
	must(t, r.Close())
	r2 := openDisk(t, dir, 2)
	defer r2.Close()
	if got, _ := r2.ReadSlot(1, 0); string(got) != "after" {
		t.Fatalf("append after torn-tail repair lost: %q", got)
	}
}

func TestDiskStructuralCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 2)
	must(t, b.WriteBucket(0, 1, [][]byte{[]byte("x")}))
	must(t, b.CommitEpoch(1))
	must(t, b.Close())

	// Rewrite the version record's kind byte to garbage and fix up the
	// checksum: a structurally invalid body under a valid crc is corruption,
	// not a torn write, and must refuse to open.
	path := filepath.Join(dir, heapFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := data[fileHeaderSize+recordFrameSize:]
	// First record is the version record; find its body length.
	n := int(uint32(data[fileHeaderSize])<<24 | uint32(data[fileHeaderSize+1])<<16 |
		uint32(data[fileHeaderSize+2])<<8 | uint32(data[fileHeaderSize+3]))
	body = body[:n]
	body[0] = 99
	reframed := encodeRecord(nil, body)
	copy(data[fileHeaderSize:], reframed)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskBackend(dir, 2); err == nil {
		t.Fatal("open succeeded on a structurally corrupt heap")
	}
}

func TestDiskNumBucketsMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 8)
	must(t, b.Close())
	if _, err := OpenDiskBackend(dir, 16); err == nil {
		t.Fatal("reopen with a different bucket count succeeded")
	}
	// Zero adopts the stored geometry.
	r := openDisk(t, dir, 0)
	defer r.Close()
	if n, _ := r.NumBuckets(); n != 8 {
		t.Fatalf("adopted bucket count = %d", n)
	}
}

func TestDiskHeapCompaction(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 4)
	defer b.Close()
	b.heapCompactMin = 1 << 10
	payload := bytes.Repeat([]byte("p"), 256)
	for e := uint64(1); e <= 64; e++ {
		var writes []BucketWrite
		for bucket := 0; bucket < 4; bucket++ {
			writes = append(writes, BucketWrite{Bucket: bucket, Epoch: e, Slots: [][]byte{payload, []byte(fmt.Sprintf("e%d-b%d", e, bucket))}})
		}
		must(t, b.WriteBuckets(writes))
		must(t, b.CommitEpoch(e))
	}
	// 64 epochs × 4 buckets × ~280 bytes ≈ 70 KiB of versions, all but the
	// last 4 dead: compaction runs off the commit path now, so poll for the
	// background compactor to catch up with the kicks the commits issued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.RLock()
		size := b.heapSize
		b.mu.RUnlock()
		if size <= 8<<10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heap not compacted: %d bytes", size)
		}
		time.Sleep(time.Millisecond)
	}
	for bucket := 0; bucket < 4; bucket++ {
		got, err := b.ReadSlot(bucket, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("e64-b%d", bucket); string(got) != want {
			t.Fatalf("bucket %d after compaction = %q, want %q", bucket, got, want)
		}
	}
	must(t, b.Close())
	r := openDisk(t, dir, 4)
	defer r.Close()
	if got := r.CommittedEpoch(); got != 64 {
		t.Fatalf("committed after compacted reopen = %d", got)
	}
	for bucket := 0; bucket < 4; bucket++ {
		got, err := r.ReadSlot(bucket, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("e64-b%d", bucket); string(got) != want {
			t.Fatalf("bucket %d after reopen = %q, want %q", bucket, got, want)
		}
	}
}

func TestDiskLogSegmentsRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 1)
	b.segMaxBytes = 256
	var seqs []uint64
	for i := 0; i < 40; i++ {
		seq, err := b.Append([]byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte("x"), 32))))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if seqs[39] != 40 {
		t.Fatalf("last seq = %d", seqs[39])
	}
	if len(b.segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(b.segs))
	}
	segsBefore := len(b.segs)
	must(t, b.Truncate(30))
	if len(b.segs) >= segsBefore {
		t.Fatalf("truncate dropped no segments (%d -> %d)", segsBefore, len(b.segs))
	}
	recs, err := b.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 || !bytes.HasPrefix(recs[0], []byte("record-29")) {
		t.Fatalf("after truncate: %d records, first %q", len(recs), recs[0])
	}
	must(t, b.Close())

	r := openDisk(t, dir, 1)
	r.segMaxBytes = 256
	if seq, _ := r.LastSeq(); seq != 40 {
		t.Fatalf("reopened LastSeq = %d", seq)
	}
	recs, err = r.Scan(35)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || !bytes.HasPrefix(recs[0], []byte("record-34")) {
		t.Fatalf("reopened Scan(35): %d records, first %q", len(recs), recs[0])
	}
	// Truncating everything keeps the sequence counter across a reopen.
	must(t, r.Truncate(41))
	must(t, r.Close())
	r2 := openDisk(t, dir, 1)
	defer r2.Close()
	if seq, _ := r2.LastSeq(); seq != 40 {
		t.Fatalf("LastSeq after truncate-all reopen = %d", seq)
	}
	seq, err := r2.Append([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 41 {
		t.Fatalf("Append after truncate-all reopen = %d, want 41", seq)
	}
}

func TestDiskKVCompaction(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 1)
	b.kvCompactMin = 1 << 10
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < 64; i++ {
		must(t, b.Put("churn", append([]byte(fmt.Sprintf("%02d-", i)), val...)))
	}
	must(t, b.Put("stable", []byte("keep")))
	if b.kvSize > 4<<10 {
		t.Fatalf("kv journal not compacted: %d bytes", b.kvSize)
	}
	must(t, b.Close())
	r := openDisk(t, dir, 1)
	defer r.Close()
	if v, found, _ := r.Get("churn"); !found || !bytes.HasPrefix(v, []byte("63-")) {
		t.Fatalf("churn after compaction = %q, %v", v, found)
	}
	if v, _, _ := r.Get("stable"); string(v) != "keep" {
		t.Fatalf("stable after compaction = %q", v)
	}
}

func TestDiskReadSlotsCoalescesAndHandlesDuplicates(t *testing.T) {
	b := openDisk(t, t.TempDir(), 8)
	defer b.Close()
	for bucket := 0; bucket < 8; bucket++ {
		slots := make([][]byte, 4)
		for s := range slots {
			slots[s] = []byte(fmt.Sprintf("b%d-s%d", bucket, s))
		}
		must(t, b.WriteBucket(bucket, 1, slots))
	}
	refs := []SlotRef{
		{Bucket: 7, Slot: 3}, {Bucket: 0, Slot: 0}, {Bucket: 3, Slot: 2},
		{Bucket: 0, Slot: 0}, // duplicate ref
		{Bucket: 7, Slot: 0}, {Bucket: 1, Slot: 1},
	}
	got, err := b.ReadSlots(refs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b7-s3", "b0-s0", "b3-s2", "b0-s0", "b7-s0", "b1-s1"}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("ReadSlots[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDiskWedgesAfterIOError(t *testing.T) {
	dir := t.TempDir()
	b := openDisk(t, dir, 2)
	must(t, b.WriteBucket(0, 1, [][]byte{[]byte("x")}))
	must(t, b.CommitEpoch(1))
	// Close the heap file behind the backend's back; the next write must
	// fail and wedge the store (fail-stop beats acking into the void).
	b.heap.Close()
	if err := b.CommitEpoch(2); err == nil {
		t.Fatal("commit succeeded on a closed file")
	}
	if err := b.Put("k", []byte("v")); err == nil {
		t.Fatal("kv write succeeded on a wedged backend")
	}
	if _, err := b.ReadSlot(0, 0); err == nil {
		t.Fatal("read succeeded on a wedged backend")
	}
}
