package storage

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// newRemotePair starts a server over a fresh MemBackend and returns a
// connected client plus the backend for white-box inspection.
func newRemotePair(t *testing.T, numBuckets int) (*Client, *MemBackend) {
	t.Helper()
	backend := NewMemBackend(numBuckets)
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, backend
}

func TestRemoteBucketRoundTrip(t *testing.T) {
	c, _ := newRemotePair(t, 4)
	if err := c.WriteBucket(2, 7, slots("alpha", "beta")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadSlot(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "beta" {
		t.Fatalf("ReadSlot = %q", got)
	}
	all, err := c.ReadBucket(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || string(all[0]) != "alpha" {
		t.Fatalf("ReadBucket = %q", all)
	}
	n, err := c.NumBuckets()
	if err != nil || n != 4 {
		t.Fatalf("NumBuckets = %d, %v", n, err)
	}
}

func TestRemoteCommitRollback(t *testing.T) {
	c, backend := newRemotePair(t, 1)
	must(t, c.WriteBucket(0, 1, slots("keep")))
	must(t, c.CommitEpoch(1))
	must(t, c.WriteBucket(0, 2, slots("drop")))
	must(t, c.RollbackTo(1))
	got, err := c.ReadSlot(0, 0)
	if err != nil || string(got) != "keep" {
		t.Fatalf("after rollback: %q, %v", got, err)
	}
	if backend.CommittedEpoch() != 1 {
		t.Fatalf("backend committed epoch = %d", backend.CommittedEpoch())
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	c, _ := newRemotePair(t, 1)
	_, err := c.ReadSlot(99, 0)
	if err == nil || !errors.Is(err, ErrRemote) {
		t.Fatalf("expected remote error, got %v", err)
	}
	if !strings.Contains(err.Error(), "no such bucket") {
		t.Fatalf("error does not carry server message: %v", err)
	}
}

func TestRemoteKV(t *testing.T) {
	c, _ := newRemotePair(t, 0)
	if _, found, err := c.Get("nope"); err != nil || found {
		t.Fatalf("Get(nope) = %v %v", found, err)
	}
	must(t, c.Put("key", []byte("value")))
	v, found, err := c.Get("key")
	if err != nil || !found || string(v) != "value" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	must(t, c.Delete("key"))
	if _, found, _ := c.Get("key"); found {
		t.Fatal("key survives delete")
	}
}

func TestRemoteEmptyValues(t *testing.T) {
	c, _ := newRemotePair(t, 1)
	must(t, c.Put("empty", nil))
	v, found, err := c.Get("empty")
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty value: %q %v %v", v, found, err)
	}
	must(t, c.WriteBucket(0, 1, [][]byte{nil, {}}))
	a, err := c.ReadSlot(0, 0)
	if err != nil || len(a) != 0 {
		t.Fatalf("nil slot: %q %v", a, err)
	}
}

func TestRemoteLog(t *testing.T) {
	c, _ := newRemotePair(t, 0)
	seq, err := c.Append([]byte("one"))
	if err != nil || seq != 1 {
		t.Fatalf("Append = %d %v", seq, err)
	}
	seq, err = c.Append([]byte("two"))
	if err != nil || seq != 2 {
		t.Fatalf("Append = %d %v", seq, err)
	}
	recs, err := c.Scan(1)
	if err != nil || len(recs) != 2 || string(recs[1]) != "two" {
		t.Fatalf("Scan = %q %v", recs, err)
	}
	must(t, c.Truncate(2))
	recs, err = c.Scan(0)
	if err != nil || len(recs) != 1 || string(recs[0]) != "two" {
		t.Fatalf("after truncate: %q %v", recs, err)
	}
	last, err := c.LastSeq()
	if err != nil || last != 2 {
		t.Fatalf("LastSeq = %d %v", last, err)
	}
}

func TestRemoteLargeSlots(t *testing.T) {
	c, _ := newRemotePair(t, 1)
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	must(t, c.WriteBucket(0, 1, [][]byte{big}))
	got, err := c.ReadSlot(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("1 MiB slot corrupted in transit")
	}
}

func TestRemotePipelining(t *testing.T) {
	c, _ := newRemotePair(t, 64)
	for b := 0; b < 64; b++ {
		must(t, c.WriteBucket(b, 1, slots(fmt.Sprintf("bucket-%d", b))))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64*50)
	for g := 0; g < 50; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 64; b++ {
				got, err := c.ReadSlot(b, 0)
				if err != nil {
					errs <- err
					return
				}
				if string(got) != fmt.Sprintf("bucket-%d", b) {
					errs <- fmt.Errorf("bucket %d returned %q", b, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRemoteMultipleClients(t *testing.T) {
	backend := NewMemBackend(1)
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	must(t, c1.Put("shared", []byte("from-c1")))
	v, found, err := c2.Get("shared")
	if err != nil || !found || string(v) != "from-c1" {
		t.Fatalf("c2 sees %q %v %v", v, found, err)
	}
}

func TestRemoteClientAfterServerClose(t *testing.T) {
	backend := NewMemBackend(1)
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	must(t, c.Put("a", []byte("b")))
	srv.Close()
	if err := c.Put("x", []byte("y")); err == nil {
		t.Fatal("Put succeeded after server close")
	}
}

func TestRemoteCallAfterClientClose(t *testing.T) {
	c, _ := newRemotePair(t, 1)
	c.Close()
	if _, err := c.NumBuckets(); err == nil {
		t.Fatal("call succeeded on closed client")
	}
}
