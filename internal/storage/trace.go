package storage

import (
	"fmt"
	"sync"
)

// Op identifies a storage operation kind in a recorded trace.
type Op uint8

// Trace operation kinds.
const (
	OpReadSlot Op = iota
	OpReadBucket
	OpWriteBucket
	OpCommit
	OpRollback
)

func (o Op) String() string {
	switch o {
	case OpReadSlot:
		return "read-slot"
	case OpReadBucket:
		return "read-bucket"
	case OpWriteBucket:
		return "write-bucket"
	case OpCommit:
		return "commit"
	case OpRollback:
		return "rollback"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one adversary-visible storage access.
type Event struct {
	Op     Op
	Bucket int
	Slot   int
	Epoch  uint64
}

// CallStats counts actual backend invocations (wire ops on a remote
// deployment), as opposed to the per-slot events of the trace. Vectored
// calls count once however many items they carry — this is the measurement
// behind the "one storage call per stage" batching guarantee.
type CallStats struct {
	ReadSlot     int // scalar slot reads
	ReadSlots    int // vectored slot reads
	ReadBucket   int
	WriteBucket  int // scalar bucket writes
	WriteBuckets int // vectored bucket write-backs
	Commit       int
	Rollback     int
}

// Recorder wraps a Backend and records the adversary-visible bucket access
// trace. It is the measurement device behind the workload-independence tests:
// two executions are indistinguishable to the honest-but-curious server
// exactly when their recorded traces have the same shape. Vectored calls are
// expanded into per-slot / per-bucket events in vector order, so scalar and
// vectored executions of the same plan record identical traces (vectoring
// changes the framing, not which versions of which slots are touched); the
// call-level difference is visible through Calls.
type Recorder struct {
	Backend
	mu     sync.Mutex
	events []Event
	calls  CallStats
}

// NewRecorder wraps inner.
func NewRecorder(inner Backend) *Recorder {
	return &Recorder{Backend: inner}
}

// Events returns a copy of the recorded trace.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Calls returns the backend-invocation counters.
func (r *Recorder) Calls() CallStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Reset clears the trace and the call counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.calls = CallStats{}
	r.mu.Unlock()
}

func (r *Recorder) ReadSlot(bucket, slot int) ([]byte, error) {
	r.mu.Lock()
	r.calls.ReadSlot++
	r.events = append(r.events, Event{Op: OpReadSlot, Bucket: bucket, Slot: slot})
	r.mu.Unlock()
	return r.Backend.ReadSlot(bucket, slot)
}

func (r *Recorder) ReadSlots(refs []SlotRef) ([][]byte, error) {
	r.mu.Lock()
	r.calls.ReadSlots++
	for _, ref := range refs {
		r.events = append(r.events, Event{Op: OpReadSlot, Bucket: ref.Bucket, Slot: ref.Slot})
	}
	r.mu.Unlock()
	return r.Backend.ReadSlots(refs)
}

func (r *Recorder) ReadBucket(bucket int) ([][]byte, error) {
	r.mu.Lock()
	r.calls.ReadBucket++
	r.events = append(r.events, Event{Op: OpReadBucket, Bucket: bucket})
	r.mu.Unlock()
	return r.Backend.ReadBucket(bucket)
}

func (r *Recorder) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	r.mu.Lock()
	r.calls.WriteBucket++
	r.events = append(r.events, Event{Op: OpWriteBucket, Bucket: bucket, Epoch: epoch})
	r.mu.Unlock()
	return r.Backend.WriteBucket(bucket, epoch, slots)
}

func (r *Recorder) WriteBuckets(writes []BucketWrite) error {
	r.mu.Lock()
	r.calls.WriteBuckets++
	for _, w := range writes {
		r.events = append(r.events, Event{Op: OpWriteBucket, Bucket: w.Bucket, Epoch: w.Epoch})
	}
	r.mu.Unlock()
	return r.Backend.WriteBuckets(writes)
}

func (r *Recorder) CommitEpoch(epoch uint64) error {
	r.mu.Lock()
	r.calls.Commit++
	r.events = append(r.events, Event{Op: OpCommit, Epoch: epoch})
	r.mu.Unlock()
	return r.Backend.CommitEpoch(epoch)
}

func (r *Recorder) RollbackTo(epoch uint64) error {
	r.mu.Lock()
	r.calls.Rollback++
	r.events = append(r.events, Event{Op: OpRollback, Epoch: epoch})
	r.mu.Unlock()
	return r.Backend.RollbackTo(epoch)
}

// InvariantChecker wraps a Backend and enforces Ring ORAM's bucket invariant
// from the server's point of view: between two writes of a bucket, no slot of
// that bucket may be read twice. A violation would let the adversary
// distinguish real from dummy accesses; the ORAM client must never produce
// one.
type InvariantChecker struct {
	Backend
	mu        sync.Mutex
	readSlots map[int]map[int]bool // bucket -> slots read since last write
	violation error
}

// NewInvariantChecker wraps inner.
func NewInvariantChecker(inner Backend) *InvariantChecker {
	return &InvariantChecker{
		Backend:   inner,
		readSlots: make(map[int]map[int]bool),
	}
}

// Violation returns the first recorded invariant violation, or nil.
func (c *InvariantChecker) Violation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violation
}

func (c *InvariantChecker) checkReadLocked(bucket, slot int) {
	set := c.readSlots[bucket]
	if set == nil {
		set = make(map[int]bool)
		c.readSlots[bucket] = set
	}
	if set[slot] && c.violation == nil {
		c.violation = fmt.Errorf("storage: bucket invariant violated: bucket %d slot %d read twice between writes", bucket, slot)
	}
	set[slot] = true
}

func (c *InvariantChecker) ReadSlot(bucket, slot int) ([]byte, error) {
	c.mu.Lock()
	c.checkReadLocked(bucket, slot)
	c.mu.Unlock()
	return c.Backend.ReadSlot(bucket, slot)
}

// ReadSlots applies the per-slot invariant to every ref: packing reads into
// one frame changes nothing about what the adversary sees touched.
func (c *InvariantChecker) ReadSlots(refs []SlotRef) ([][]byte, error) {
	c.mu.Lock()
	for _, r := range refs {
		c.checkReadLocked(r.Bucket, r.Slot)
	}
	c.mu.Unlock()
	return c.Backend.ReadSlots(refs)
}

func (c *InvariantChecker) ReadBucket(bucket int) ([][]byte, error) {
	// Full-bucket reads only occur during recovery or initialization; they
	// reveal nothing beyond the write that must follow, so they reset the
	// bucket's read-set like a write does.
	c.mu.Lock()
	delete(c.readSlots, bucket)
	c.mu.Unlock()
	return c.Backend.ReadBucket(bucket)
}

func (c *InvariantChecker) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	c.mu.Lock()
	delete(c.readSlots, bucket)
	c.mu.Unlock()
	return c.Backend.WriteBucket(bucket, epoch, slots)
}

// WriteBuckets resets the read-set of every written bucket, like the scalar
// write does.
func (c *InvariantChecker) WriteBuckets(writes []BucketWrite) error {
	c.mu.Lock()
	for _, w := range writes {
		delete(c.readSlots, w.Bucket)
	}
	c.mu.Unlock()
	return c.Backend.WriteBuckets(writes)
}

func (c *InvariantChecker) RollbackTo(epoch uint64) error {
	// A rollback reverts buckets to their last committed contents; the slot
	// read-sets restart (the recovery protocol re-reads logged paths, which
	// the adversary has already seen, against restored bucket versions).
	c.mu.Lock()
	c.readSlots = make(map[int]map[int]bool)
	c.mu.Unlock()
	return c.Backend.RollbackTo(epoch)
}
