package storage

import (
	"fmt"
	"sync"
)

// Op identifies a storage operation kind in a recorded trace.
type Op uint8

// Trace operation kinds.
const (
	OpReadSlot Op = iota
	OpReadBucket
	OpWriteBucket
	OpCommit
	OpRollback
)

func (o Op) String() string {
	switch o {
	case OpReadSlot:
		return "read-slot"
	case OpReadBucket:
		return "read-bucket"
	case OpWriteBucket:
		return "write-bucket"
	case OpCommit:
		return "commit"
	case OpRollback:
		return "rollback"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one adversary-visible storage access.
type Event struct {
	Op     Op
	Bucket int
	Slot   int
	Epoch  uint64
}

// Recorder wraps a Backend and records the adversary-visible bucket access
// trace. It is the measurement device behind the workload-independence tests:
// two executions are indistinguishable to the honest-but-curious server
// exactly when their recorded traces have the same shape.
type Recorder struct {
	Backend
	mu     sync.Mutex
	events []Event
}

// NewRecorder wraps inner.
func NewRecorder(inner Backend) *Recorder {
	return &Recorder{Backend: inner}
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded trace.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset clears the trace.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

func (r *Recorder) ReadSlot(bucket, slot int) ([]byte, error) {
	r.record(Event{Op: OpReadSlot, Bucket: bucket, Slot: slot})
	return r.Backend.ReadSlot(bucket, slot)
}

func (r *Recorder) ReadBucket(bucket int) ([][]byte, error) {
	r.record(Event{Op: OpReadBucket, Bucket: bucket})
	return r.Backend.ReadBucket(bucket)
}

func (r *Recorder) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	r.record(Event{Op: OpWriteBucket, Bucket: bucket, Epoch: epoch})
	return r.Backend.WriteBucket(bucket, epoch, slots)
}

func (r *Recorder) CommitEpoch(epoch uint64) error {
	r.record(Event{Op: OpCommit, Epoch: epoch})
	return r.Backend.CommitEpoch(epoch)
}

func (r *Recorder) RollbackTo(epoch uint64) error {
	r.record(Event{Op: OpRollback, Epoch: epoch})
	return r.Backend.RollbackTo(epoch)
}

// InvariantChecker wraps a Backend and enforces Ring ORAM's bucket invariant
// from the server's point of view: between two writes of a bucket, no slot of
// that bucket may be read twice. A violation would let the adversary
// distinguish real from dummy accesses; the ORAM client must never produce
// one.
type InvariantChecker struct {
	Backend
	mu        sync.Mutex
	readSlots map[int]map[int]bool // bucket -> slots read since last write
	violation error
}

// NewInvariantChecker wraps inner.
func NewInvariantChecker(inner Backend) *InvariantChecker {
	return &InvariantChecker{
		Backend:   inner,
		readSlots: make(map[int]map[int]bool),
	}
}

// Violation returns the first recorded invariant violation, or nil.
func (c *InvariantChecker) Violation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.violation
}

func (c *InvariantChecker) ReadSlot(bucket, slot int) ([]byte, error) {
	c.mu.Lock()
	set := c.readSlots[bucket]
	if set == nil {
		set = make(map[int]bool)
		c.readSlots[bucket] = set
	}
	if set[slot] && c.violation == nil {
		c.violation = fmt.Errorf("storage: bucket invariant violated: bucket %d slot %d read twice between writes", bucket, slot)
	}
	set[slot] = true
	c.mu.Unlock()
	return c.Backend.ReadSlot(bucket, slot)
}

func (c *InvariantChecker) ReadBucket(bucket int) ([][]byte, error) {
	// Full-bucket reads only occur during recovery or initialization; they
	// reveal nothing beyond the write that must follow, so they reset the
	// bucket's read-set like a write does.
	c.mu.Lock()
	delete(c.readSlots, bucket)
	c.mu.Unlock()
	return c.Backend.ReadBucket(bucket)
}

func (c *InvariantChecker) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	c.mu.Lock()
	delete(c.readSlots, bucket)
	c.mu.Unlock()
	return c.Backend.WriteBucket(bucket, epoch, slots)
}

func (c *InvariantChecker) RollbackTo(epoch uint64) error {
	// A rollback reverts buckets to their last committed contents; the slot
	// read-sets restart (the recovery protocol re-reads logged paths, which
	// the adversary has already seen, against restored bucket versions).
	c.mu.Lock()
	c.readSlots = make(map[int]map[int]bool)
	c.mu.Unlock()
	return c.Backend.RollbackTo(epoch)
}
