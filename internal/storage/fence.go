package storage

import "sync"

// fenceRegister is the generation counter behind Fenceable: acquire bumps it
// and returns the new token, check compares a view's token against the
// highest issued. One register guards one store (a MemBackend, or one served
// backend inside a remote Server).
type fenceRegister struct {
	mu      sync.Mutex
	highest uint64
}

// acquire issues the next fence token. Tokens are strictly increasing, so
// each acquisition fences every view issued before it — two proxies racing a
// promotion cannot end up with equal tokens.
func (r *fenceRegister) acquire() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.highest++
	return r.highest
}

// check reports ErrFenced when token has been superseded. Token 0 means "not
// a fence view" and always passes: deployments that never fence keep working.
func (r *fenceRegister) check(token uint64) error {
	if token == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if token < r.highest {
		return ErrFenced
	}
	return nil
}

// AcquireFence implements Fenceable for the in-memory backend: in-process
// failover tests share one *MemBackend between a primary and a standby, so
// the register lives on the backend and the returned view carries the token.
func (m *MemBackend) AcquireFence() (Backend, uint64, error) {
	m.mu.RLock()
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, 0, ErrClosed
	}
	token := m.fence.acquire()
	return &fencedMem{m: m, token: token}, token, nil
}

// fencedMem is a MemBackend view bound to one fence generation. Reads pass
// through; mutations check the fence first. The check-then-delegate pair is
// not atomic with the mutation, which is exactly the Fenceable contract: an
// op concurrent with a newer AcquireFence may land as if it preceded the
// acquisition (the acquirer's subsequent log scan observes it), but every
// mutation started after the acquisition fails.
type fencedMem struct {
	m     *MemBackend
	token uint64
}

var _ Backend = (*fencedMem)(nil)

func (f *fencedMem) checkFence() error { return f.m.fence.check(f.token) }

func (f *fencedMem) ReadSlot(bucket, slot int) ([]byte, error) { return f.m.ReadSlot(bucket, slot) }
func (f *fencedMem) ReadSlots(refs []SlotRef) ([][]byte, error) {
	return f.m.ReadSlots(refs)
}
func (f *fencedMem) ReadBucket(bucket int) ([][]byte, error) { return f.m.ReadBucket(bucket) }
func (f *fencedMem) NumBuckets() (int, error)                { return f.m.NumBuckets() }
func (f *fencedMem) Get(key string) ([]byte, bool, error)    { return f.m.Get(key) }
func (f *fencedMem) Scan(from uint64) ([][]byte, error)      { return f.m.Scan(from) }
func (f *fencedMem) LastSeq() (uint64, error)                { return f.m.LastSeq() }

func (f *fencedMem) WriteBucket(bucket int, epoch uint64, slots [][]byte) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.WriteBucket(bucket, epoch, slots)
}

func (f *fencedMem) WriteBuckets(writes []BucketWrite) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.WriteBuckets(writes)
}

func (f *fencedMem) CommitEpoch(epoch uint64) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.CommitEpoch(epoch)
}

func (f *fencedMem) RollbackTo(epoch uint64) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.RollbackTo(epoch)
}

func (f *fencedMem) Put(key string, value []byte) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.Put(key, value)
}

func (f *fencedMem) Delete(key string) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.Delete(key)
}

func (f *fencedMem) Append(record []byte) (uint64, error) {
	if err := f.checkFence(); err != nil {
		return 0, err
	}
	return f.m.Append(record)
}

func (f *fencedMem) Truncate(before uint64) error {
	if err := f.checkFence(); err != nil {
		return err
	}
	return f.m.Truncate(before)
}

// Close closes the view only, never the shared backend: the fenced-out
// generation tearing itself down must not take the store away from the
// generation that owns it.
func (f *fencedMem) Close() error { return nil }
