package storage

import (
	"testing"
)

func TestRecorderCapturesEvents(t *testing.T) {
	r := NewRecorder(NewMemBackend(4))
	must(t, r.WriteBucket(1, 3, slots("x", "y")))
	if _, err := r.ReadSlot(1, 0); err != nil {
		t.Fatal(err)
	}
	must(t, r.CommitEpoch(3))
	must(t, r.RollbackTo(3))
	ev := r.Events()
	want := []Event{
		{Op: OpWriteBucket, Bucket: 1, Epoch: 3},
		{Op: OpReadSlot, Bucket: 1, Slot: 0},
		{Op: OpCommit, Epoch: 3},
		{Op: OpRollback, Epoch: 3},
	}
	if len(ev) != len(want) {
		t.Fatalf("recorded %d events, want %d: %v", len(ev), len(want), ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev[i], want[i])
		}
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpReadSlot:    "read-slot",
		OpReadBucket:  "read-bucket",
		OpWriteBucket: "write-bucket",
		OpCommit:      "commit",
		OpRollback:    "rollback",
		Op(99):        "op(99)",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Fatalf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestInvariantCheckerDetectsDoubleRead(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(2))
	must(t, c.WriteBucket(0, 1, slots("a", "b", "c")))
	if _, err := c.ReadSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadSlot(0, 2); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("distinct slots flagged: %v", v)
	}
	if _, err := c.ReadSlot(0, 1); err != nil {
		t.Fatal(err)
	}
	if c.Violation() == nil {
		t.Fatal("double read of slot 1 not detected")
	}
}

func TestInvariantCheckerResetOnWrite(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(1))
	must(t, c.WriteBucket(0, 1, slots("a")))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, c.WriteBucket(0, 2, slots("a2")))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("read after rewrite flagged: %v", v)
	}
}

func TestInvariantCheckerResetOnRollback(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(1))
	must(t, c.WriteBucket(0, 1, slots("a")))
	must(t, c.CommitEpoch(1))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	must(t, c.RollbackTo(1))
	// Recovery replays the same path: same slot read again is legitimate.
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("replayed read flagged: %v", v)
	}
}

func TestInvariantCheckerDistinctBuckets(t *testing.T) {
	c := NewInvariantChecker(NewMemBackend(2))
	must(t, c.WriteBucket(0, 1, slots("a")))
	must(t, c.WriteBucket(1, 1, slots("b")))
	if _, err := c.ReadSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadSlot(1, 0); err != nil {
		t.Fatal(err)
	}
	if v := c.Violation(); v != nil {
		t.Fatalf("same slot index in different buckets flagged: %v", v)
	}
}
