package tpcc

import (
	"errors"
	"testing"

	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
)

func testEngines(t *testing.T) []enginetest.Engine {
	t.Helper()
	engines := enginetest.Baselines()
	ob, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: MinValueSize * 2})
	if err != nil {
		t.Fatal(err)
	}
	ob4, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: MinValueSize * 2, NumBlocks: 2048, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The same engine reached through the multiplexed wire protocol: the
	// identical business logic must hold over the full client stack.
	obmux, err := enginetest.NewObladiMux(enginetest.ObladiOptions{ValueSize: MinValueSize * 2})
	if err != nil {
		t.Fatal(err)
	}
	engines = append(engines, ob, ob4, obmux)
	return engines
}

func TestLoadAndVerify(t *testing.T) {
	cfg := Defaults()
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatalf("load: %v", err)
			}
			if err := Verify(e.DB, cfg); err != nil {
				t.Fatalf("verify after load: %v", err)
			}
			if v := e.Violation(); v != nil {
				t.Fatal(v)
			}
		})
	}
}

func TestTransactionMix(t *testing.T) {
	cfg := Defaults()
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatalf("load: %v", err)
			}
			client := NewClient(e.DB, cfg, 7)
			n := 40
			if e.Name == "obladi" {
				n = 15 // epoched engine is slower per txn in tests
			}
			ran := make(map[string]int)
			for i := 0; i < n; i++ {
				name, err := client.Next()
				if err != nil && !errors.Is(err, kvtxn.ErrAborted) {
					t.Fatalf("txn %d (%s): %v", i, name, err)
				}
				if err == nil {
					ran[name]++
				}
			}
			if len(ran) < 2 {
				t.Fatalf("mix too narrow: %v", ran)
			}
			if err := Verify(e.DB, cfg); err != nil {
				t.Fatalf("verify after mix: %v", err)
			}
			if v := e.Violation(); v != nil {
				t.Fatal(v)
			}
		})
	}
}

func TestNewOrderAdvancesOrderID(t *testing.T) {
	cfg := Defaults()
	engines := enginetest.Baselines()
	e := engines[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 3)
	before := districtNextOID(t, e.DB, cfg)
	ordersRun := 0
	for i := 0; i < 20 && ordersRun < 5; i++ {
		if err := client.NewOrder(); err == nil {
			ordersRun++
		}
	}
	after := districtNextOID(t, e.DB, cfg)
	if after <= before {
		t.Fatalf("nextOID did not advance: %d -> %d", before, after)
	}
	if err := Verify(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
}

// districtNextOID sums nextOID across districts.
func districtNextOID(t *testing.T, db kvtxn.DB, cfg Config) int64 {
	t.Helper()
	var total int64
	err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
		total = 0
		for w := 0; w < cfg.Warehouses; w++ {
			for d := 0; d < cfg.DistrictsPerWH; d++ {
				dt, err := readTuple(tx, districtKey(w, d))
				if err != nil {
					return err
				}
				total += dt.MustInt(2)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestDeliveryDrainsQueue(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 5)
	// Deliver more times than there are preloaded orders; queue must drain
	// without violating the queue-window invariant.
	for i := 0; i < cfg.Warehouses*cfg.DistrictsPerWH*(cfg.InitialOrders+2); i++ {
		if err := client.Delivery(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	if err := Verify(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 9)
	for i := 0; i < 10; i++ {
		if err := client.Payment(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
	}
	// Warehouse YTD must have grown.
	var ytd int64
	err := kvtxn.RunWithRetries(e.DB, 20, func(tx kvtxn.Txn) error {
		ytd = 0
		for w := 0; w < cfg.Warehouses; w++ {
			wt, err := readTuple(tx, warehouseKey(w))
			if err != nil {
				return err
			}
			ytd += wt.MustInt(2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ytd == 0 {
		t.Fatal("no payment applied")
	}
}

func TestLastName(t *testing.T) {
	if lastName(0) != "BARBARBAR" {
		t.Fatalf("lastName(0) = %q", lastName(0))
	}
	if lastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("lastName(371) = %q", lastName(371))
	}
	// 30 distinct names for the first 30 numbers is what the loader uses.
	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		seen[lastName(i)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct last names in loader range", len(seen))
	}
}
